#include "src/obs/telemetry.hpp"

#include <cstdio>
#include <sstream>

#include "src/util/table.hpp"

namespace slim::obs {

namespace {

JsonValue stage_to_json(const StageLive& s) {
  JsonValue v = JsonValue::make_object();
  v.set("stage", JsonValue::make_number(s.stage));
  v.set("pid", JsonValue::make_number(static_cast<double>(s.pid)));
  v.set("state", JsonValue::make_string(s.state));
  v.set("beat_age_seconds", JsonValue::make_number(s.beat_age_seconds));
  v.set("messages", JsonValue::make_number(static_cast<double>(s.messages)));
  v.set("done_f", JsonValue::make_number(s.done_f));
  v.set("want_f", JsonValue::make_number(s.want_f));
  v.set("done_b", JsonValue::make_number(s.done_b));
  v.set("want_b", JsonValue::make_number(s.want_b));
  v.set("live", JsonValue::make_number(s.live));
  v.set("live_cap", JsonValue::make_number(s.live_cap));
  v.set("queue", JsonValue::make_number(s.queue));
  v.set("deferred", JsonValue::make_number(s.deferred));
  v.set("committed", JsonValue::make_number(s.committed));
  v.set("committed_total", JsonValue::make_number(s.committed_total));
  v.set("frames_out",
        JsonValue::make_number(static_cast<double>(s.frames_out)));
  v.set("frames_in", JsonValue::make_number(static_cast<double>(s.frames_in)));
  v.set("bytes_out", JsonValue::make_number(s.bytes_out));
  v.set("bytes_in", JsonValue::make_number(s.bytes_in));
  v.set("crc_rejects",
        JsonValue::make_number(static_cast<double>(s.crc_rejects)));
  v.set("retries", JsonValue::make_number(static_cast<double>(s.retries)));
  v.set("arena_peak_bytes", JsonValue::make_number(s.arena_peak_bytes));
  v.set("clock_offset_seconds",
        JsonValue::make_number(s.clock_offset_seconds));
  v.set("clock_uncertainty_seconds",
        JsonValue::make_number(s.clock_uncertainty_seconds));
  v.set("flight_events",
        JsonValue::make_number(static_cast<double>(s.flight_events)));
  v.set("respawns", JsonValue::make_number(static_cast<double>(s.respawns)));
  return v;
}

StageLive stage_from_json(const JsonValue& v) {
  StageLive s;
  s.stage = static_cast<int>(v.number_or("stage", 0.0));
  s.pid = static_cast<std::int64_t>(v.number_or("pid", 0.0));
  s.state = v.string_or("state", "");
  s.beat_age_seconds = v.number_or("beat_age_seconds", 0.0);
  s.messages = static_cast<std::int64_t>(v.number_or("messages", 0.0));
  s.done_f = static_cast<std::int32_t>(v.number_or("done_f", 0.0));
  s.want_f = static_cast<std::int32_t>(v.number_or("want_f", 0.0));
  s.done_b = static_cast<std::int32_t>(v.number_or("done_b", 0.0));
  s.want_b = static_cast<std::int32_t>(v.number_or("want_b", 0.0));
  s.live = static_cast<std::int32_t>(v.number_or("live", 0.0));
  s.live_cap = static_cast<std::int32_t>(v.number_or("live_cap", 0.0));
  s.queue = static_cast<std::int32_t>(v.number_or("queue", 0.0));
  s.deferred = static_cast<std::int32_t>(v.number_or("deferred", 0.0));
  s.committed = static_cast<std::int32_t>(v.number_or("committed", 0.0));
  s.committed_total =
      static_cast<std::int32_t>(v.number_or("committed_total", 0.0));
  s.frames_out = static_cast<std::int64_t>(v.number_or("frames_out", 0.0));
  s.frames_in = static_cast<std::int64_t>(v.number_or("frames_in", 0.0));
  s.bytes_out = v.number_or("bytes_out", 0.0);
  s.bytes_in = v.number_or("bytes_in", 0.0);
  s.crc_rejects = static_cast<std::int64_t>(v.number_or("crc_rejects", 0.0));
  s.retries = static_cast<std::int64_t>(v.number_or("retries", 0.0));
  s.arena_peak_bytes = v.number_or("arena_peak_bytes", 0.0);
  s.clock_offset_seconds = v.number_or("clock_offset_seconds", 0.0);
  s.clock_uncertainty_seconds =
      v.number_or("clock_uncertainty_seconds", 0.0);
  s.flight_events =
      static_cast<std::int64_t>(v.number_or("flight_events", 0.0));
  s.respawns = static_cast<std::int64_t>(v.number_or("respawns", 0.0));
  return s;
}

struct Series {
  const char* name;
  const char* help;
  const char* type;  // "gauge" or "counter"
  double (*value)(const StageLive&);
};

// One table drives both the exposition and its golden test. Cumulative
// counters get the conventional _total suffix.
constexpr Series kStageSeries[] = {
    // A dead worker's state is the supervisor's exit description ("killed by
    // signal 9 (...)", "exited with code 2"), so liveness is membership in
    // the worker-loop state set, not a "dead" sentinel.
    {"slimpipe_stage_up", "Worker liveness (1 = worker-loop state).", "gauge",
     [](const StageLive& s) {
       return s.state == "running" || s.state == "waiting" ||
                      s.state == "done" || s.state == "starved" ||
                      s.state == "hung"
                  ? 1.0
                  : 0.0;
     }},
    {"slimpipe_stage_beat_age_seconds",
     "Run-clock seconds since the stage's last heartbeat.", "gauge",
     [](const StageLive& s) { return s.beat_age_seconds; }},
    {"slimpipe_stage_messages_total",
     "Frames processed by the worker loop.", "counter",
     [](const StageLive& s) { return static_cast<double>(s.messages); }},
    {"slimpipe_stage_forward_slices_total",
     "Forward slice passes completed.", "counter",
     [](const StageLive& s) { return static_cast<double>(s.done_f); }},
    {"slimpipe_stage_backward_slices_total",
     "Backward slice passes completed.", "counter",
     [](const StageLive& s) { return static_cast<double>(s.done_b); }},
    {"slimpipe_stage_committed_microbatches",
     "Microbatch gradients committed by this stage.", "gauge",
     [](const StageLive& s) { return static_cast<double>(s.committed); }},
    {"slimpipe_stage_live_slices", "Live slices held (paper Eq.1 window).",
     "gauge", [](const StageLive& s) { return static_cast<double>(s.live); }},
    {"slimpipe_stage_queue_depth", "Inbox queue depth.", "gauge",
     [](const StageLive& s) { return static_cast<double>(s.queue); }},
    {"slimpipe_stage_deferred", "Frames deferred by the live-window cap.",
     "gauge",
     [](const StageLive& s) { return static_cast<double>(s.deferred); }},
    {"slimpipe_stage_frames_out_total", "Wire frames sent on data links.",
     "counter",
     [](const StageLive& s) { return static_cast<double>(s.frames_out); }},
    {"slimpipe_stage_frames_in_total", "Wire frames received on data links.",
     "counter",
     [](const StageLive& s) { return static_cast<double>(s.frames_in); }},
    {"slimpipe_stage_bytes_out_total", "Payload bytes sent on data links.",
     "counter", [](const StageLive& s) { return s.bytes_out; }},
    {"slimpipe_stage_bytes_in_total", "Payload bytes received on data links.",
     "counter", [](const StageLive& s) { return s.bytes_in; }},
    {"slimpipe_stage_crc_rejects_total",
     "Frames rejected by CRC/framing checks.", "counter",
     [](const StageLive& s) { return static_cast<double>(s.crc_rejects); }},
    {"slimpipe_stage_send_retries_total",
     "Retransmits after injected frame drops.", "counter",
     [](const StageLive& s) { return static_cast<double>(s.retries); }},
    {"slimpipe_stage_arena_peak_bytes",
     "Concurrent arena memory high-water, bytes.", "gauge",
     [](const StageLive& s) { return s.arena_peak_bytes; }},
    {"slimpipe_stage_clock_offset_seconds",
     "Estimated worker-clock offset vs the run clock.", "gauge",
     [](const StageLive& s) { return s.clock_offset_seconds; }},
    {"slimpipe_stage_flight_events_total",
     "Flight-recorder events recorded by the worker.", "counter",
     [](const StageLive& s) { return static_cast<double>(s.flight_events); }},
    {"slimpipe_stage_respawns_total", "Times this stage was respawned.",
     "counter",
     [](const StageLive& s) { return static_cast<double>(s.respawns); }},
};

std::string human_bytes(double bytes) {
  const char* unit = "B";
  double v = bytes;
  if (v >= 1024.0 * 1024.0) {
    v /= 1024.0 * 1024.0;
    unit = "MiB";
  } else if (v >= 1024.0) {
    v /= 1024.0;
    unit = "KiB";
  }
  return fmt(v, v >= 100 ? 0 : 1) + unit;
}

}  // namespace

JsonValue snapshot_to_json(const LiveSnapshot& snap) {
  JsonValue root = JsonValue::make_object();
  root.set("slimpipe_live_snapshot", JsonValue::make_number(1));
  root.set("ts", JsonValue::make_number(snap.ts));
  root.set("phase", JsonValue::make_string(snap.phase));
  root.set("attempt", JsonValue::make_number(snap.attempt));
  root.set("microbatches", JsonValue::make_number(snap.microbatches));
  root.set("merged_microbatches",
           JsonValue::make_number(snap.merged_microbatches));
  JsonValue stages = JsonValue::make_array();
  for (const StageLive& s : snap.stages) stages.push_back(stage_to_json(s));
  root.set("stages", std::move(stages));
  return root;
}

bool snapshot_from_json(const JsonValue& value, LiveSnapshot* out) {
  if (!value.is_object() || out == nullptr) return false;
  if (value.find("slimpipe_live_snapshot") == nullptr) return false;
  LiveSnapshot snap;
  snap.ts = value.number_or("ts", 0.0);
  snap.phase = value.string_or("phase", "");
  snap.attempt = static_cast<int>(value.number_or("attempt", 0.0));
  snap.microbatches = static_cast<int>(value.number_or("microbatches", 0.0));
  snap.merged_microbatches =
      static_cast<int>(value.number_or("merged_microbatches", 0.0));
  const JsonValue* stages = value.find("stages");
  if (stages != nullptr) {
    if (!stages->is_array()) return false;
    for (const JsonValue& item : stages->array()) {
      if (!item.is_object()) return false;
      snap.stages.push_back(stage_from_json(item));
    }
  }
  *out = std::move(snap);
  return true;
}

std::string prometheus_text(const LiveSnapshot& snap) {
  std::ostringstream out;
  out << "# HELP slimpipe_snapshot_ts_seconds Run-clock time of this "
         "snapshot.\n";
  out << "# TYPE slimpipe_snapshot_ts_seconds gauge\n";
  out << "slimpipe_snapshot_ts_seconds " << json_number(snap.ts) << "\n";
  out << "# HELP slimpipe_attempt Respawn attempt index.\n";
  out << "# TYPE slimpipe_attempt gauge\n";
  out << "slimpipe_attempt " << snap.attempt << "\n";
  out << "# HELP slimpipe_merged_microbatches Microbatches committed on "
         "every stage.\n";
  out << "# TYPE slimpipe_merged_microbatches gauge\n";
  out << "slimpipe_merged_microbatches " << snap.merged_microbatches << "\n";
  for (const Series& series : kStageSeries) {
    out << "# HELP " << series.name << " " << series.help << "\n";
    out << "# TYPE " << series.name << " " << series.type << "\n";
    for (const StageLive& s : snap.stages) {
      out << series.name << "{stage=\"" << s.stage << "\"} "
          << json_number(series.value(s)) << "\n";
    }
  }
  return out.str();
}

std::string render_top(const LiveSnapshot& snap) {
  std::ostringstream out;
  out << "slimpipe " << snap.phase << "  t=" << fmt(snap.ts, 2) << "s"
      << "  attempt " << snap.attempt << "  merged "
      << snap.merged_microbatches << "/" << snap.microbatches << " mb\n";
  Table table({"stage", "pid", "state", "beat ms", "fwd", "bwd", "commit",
               "live", "queue", "out", "in", "crc", "retry", "arena",
               "clk us"});
  for (const StageLive& s : snap.stages) {
    table.add_row(
        {fmt(static_cast<std::int64_t>(s.stage)),
         fmt(static_cast<std::int64_t>(s.pid)), s.state,
         fmt(s.beat_age_seconds * 1e3, 0),
         fmt(static_cast<std::int64_t>(s.done_f)) + "/" +
             fmt(static_cast<std::int64_t>(s.want_f)),
         fmt(static_cast<std::int64_t>(s.done_b)) + "/" +
             fmt(static_cast<std::int64_t>(s.want_b)),
         fmt(static_cast<std::int64_t>(s.committed)) + "/" +
             fmt(static_cast<std::int64_t>(s.committed_total)),
         fmt(static_cast<std::int64_t>(s.live)) + "/" +
             fmt(static_cast<std::int64_t>(s.live_cap)),
         fmt(static_cast<std::int64_t>(s.queue)),
         human_bytes(s.bytes_out), human_bytes(s.bytes_in),
         fmt(s.crc_rejects), fmt(s.retries),
         human_bytes(s.arena_peak_bytes),
         fmt(s.clock_offset_seconds * 1e6, 1)});
  }
  out << table.to_string();
  return out.str();
}

bool write_atomic(const std::string& path, const std::string& content) {
  const std::string tmp = path + ".tmp";
  std::FILE* f = std::fopen(tmp.c_str(), "wb");
  if (f == nullptr) return false;
  const std::size_t written =
      content.empty() ? 0 : std::fwrite(content.data(), 1, content.size(), f);
  const bool ok = (std::fclose(f) == 0) && written == content.size();
  if (!ok) {
    std::remove(tmp.c_str());
    return false;
  }
  return std::rename(tmp.c_str(), path.c_str()) == 0;
}

}  // namespace slim::obs
