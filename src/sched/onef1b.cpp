#include "src/sched/schemes.hpp"

#include "src/util/logging.hpp"

namespace slim::sched {

std::vector<DeviceProgram> onef1b_programs(const PipelineSpec& spec) {
  SLIM_CHECK(spec.n == 1 && spec.v == 1, "1F1B is microbatch-granular");
  std::vector<DeviceProgram> programs(static_cast<std::size_t>(spec.p));
  for (int dev = 0; dev < spec.p; ++dev) {
    std::vector<Pass> fwd, bwd;
    for (int mb = 0; mb < spec.m; ++mb) {
      fwd.push_back({PassType::Forward, mb, 0, 0});
      bwd.push_back({PassType::Backward, mb, 0, 0});
    }
    // Device r holds at most p - r in-flight microbatches (B-first steady
    // convention: warmup includes the in-flight one).
    const int warmup = spec.p - dev;
    programs[static_cast<std::size_t>(dev)] =
        one_f_one_b_program(fwd, bwd, warmup);
  }
  return programs;
}

ScheduleResult run_onef1b(PipelineSpec spec, bool want_timeline) {
  spec.v = 1;
  spec.n = 1;
  spec.layout = StageLayoutKind::Sequential;
  spec.retain_kv = false;
  spec.context_exchange = false;
  return run_pipeline(spec, onef1b_programs(spec), nullptr,
                      "1F1B (PipeDream-Flush)", want_timeline);
}

std::vector<DeviceProgram> interleaved_programs(const PipelineSpec& spec) {
  SLIM_CHECK(spec.n == 1, "interleaved 1F1B is microbatch-granular");
  SLIM_CHECK(spec.v >= 1, "v must be >= 1");
  SLIM_CHECK(spec.m % spec.p == 0,
             "interleaved 1F1B requires microbatches divisible by p "
             "(Megatron-LM constraint; see paper 6.4 scalability discussion)");
  std::vector<DeviceProgram> programs(static_cast<std::size_t>(spec.p));
  const int groups = spec.m / spec.p;
  for (int dev = 0; dev < spec.p; ++dev) {
    std::vector<Pass> fwd, bwd;
    // Megatron ordering: within each group of p microbatches, iterate
    // chunks; within a chunk, the group's microbatches in order.
    for (int g = 0; g < groups; ++g) {
      for (int chunk = 0; chunk < spec.v; ++chunk) {
        for (int i = 0; i < spec.p; ++i) {
          fwd.push_back({PassType::Forward, g * spec.p + i, 0, chunk});
        }
      }
      for (int chunk = spec.v - 1; chunk >= 0; --chunk) {
        for (int i = 0; i < spec.p; ++i) {
          bwd.push_back({PassType::Backward, g * spec.p + i, 0, chunk});
        }
      }
    }
    const int warmup = (spec.p - dev - 1) * 2 + (spec.v - 1) * spec.p + 1;
    programs[static_cast<std::size_t>(dev)] =
        one_f_one_b_program(fwd, bwd, warmup);
  }
  return programs;
}

ScheduleResult run_interleaved(PipelineSpec spec, bool want_timeline) {
  spec.n = 1;
  spec.layout =
      spec.v == 1 ? StageLayoutKind::Sequential : StageLayoutKind::Interleaved;
  spec.retain_kv = false;
  spec.context_exchange = false;
  if (spec.v == 1) return run_onef1b(spec, want_timeline);
  return run_pipeline(spec, interleaved_programs(spec), nullptr,
                      "Interleaved 1F1B", want_timeline);
}

}  // namespace slim::sched
