#pragma once

// Activation-memory model.
//
// Byte counts follow the paper's implementation notes (§5): cuDNN SDPA (no
// quadratic score matrices stored), SwiGLU recomputed from gate/up outputs,
// memory-efficient RMSNorm (no stored outputs). Keys and values are counted
// as ordinary activations — retaining them for the backward pass is exactly
// what makes SlimPipe's KV cache free of extra memory (§4.1.2).
//
// The paper's own sanity number is reproduced by policy Full:
//   Llama 70B, 1M context, full recompute, t=8:
//   1048576 * 8192 * 80 * 2 / 8 = 160 GiB.

#include <cstdint>

#include "src/model/transformer.hpp"

namespace slim::model {

enum class CheckpointPolicy : std::uint8_t {
  None,       // store all per-layer activations required by backward
  Selective,  // recompute up-projection + SwiGLU of the MLP (paper §6.4)
  Full,       // store only each layer's input; recompute the whole layer
};

const char* to_string(CheckpointPolicy policy);

/// Sequence/tensor sharding applied to activations. `t` includes sequence
/// parallelism (the paper always pairs TP with SP), `c` is context
/// parallelism; both divide activation storage.
struct Shard {
  std::int64_t t = 1;  // tensor parallel
  std::int64_t c = 1;  // context parallel
  std::int64_t e = 1;  // expert parallel
  int gpus_per_node = 8;
};

/// Stored activation bytes per *global* token per layer on one device,
/// excluding keys/values (bf16).
double act_bytes_per_token_layer_no_kv(const TransformerConfig& cfg,
                                       const Shard& shard,
                                       CheckpointPolicy policy);

/// Stored key+value bytes per global token per layer on one device (bf16).
/// These must be retained whenever later slices will attend to this slice,
/// regardless of checkpoint policy.
double kv_bytes_per_token_layer(const TransformerConfig& cfg,
                                const Shard& shard);

/// Total stored activation bytes per global token per layer on one device,
/// with KV retention forced on (SlimPipe) or policy-controlled (classic PP,
/// where under Full checkpointing K/V are re-computed and not retained).
double act_bytes_per_token_layer(const TransformerConfig& cfg,
                                 const Shard& shard, CheckpointPolicy policy,
                                 bool retain_kv);

/// fp32 vocabulary logits bytes for `tokens` global tokens on the device(s)
/// computing the loss, sharded over `vocab_shards` ways (1 = classic PP
/// where the last stage holds everything; p for vocabulary parallelism).
/// The paper's example: 256K context, V=128000, 8-way TP -> ~16 GiB.
double logits_bytes(const TransformerConfig& cfg, const Shard& shard,
                    std::int64_t tokens, std::int64_t vocab_shards);

/// Size of one embedding tensor M_h for `tokens` global tokens (bf16, per
/// device after sharding) — the unit used in Eq. 2's exchange volume.
double embedding_bytes(const TransformerConfig& cfg, const Shard& shard,
                       std::int64_t tokens);

/// Fraction of the stored (non-KV) activation bytes that must be kept until
/// the *weight*-gradient half of a split backward (ZB-V): the inputs of the
/// linear layers. The input-gradient half frees the rest.
double wgrad_kept_fraction(const TransformerConfig& cfg,
                           CheckpointPolicy policy);

/// Model-state bytes per device: bf16 params + grads, fp32 master weights
/// and Adam moments. `layers_local` is the number of transformer layers on
/// the device; embedding/vocab parameters are added for devices that hold
/// them (`vocab_fraction` in [0,1]). Optimizer state is sharded `d_shard`
/// ways (Megatron distributed optimizer / ZeRO-1).
double model_state_bytes(const TransformerConfig& cfg, const Shard& shard,
                         double layers_local, double vocab_fraction,
                         std::int64_t d_shard);

}  // namespace slim::model
