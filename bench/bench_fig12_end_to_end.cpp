// Figure 12: end-to-end system comparison — DeepSpeed (ZeRO-3 + Ulysses),
// Megatron-LM (interleaved 1F1B) and SlimPipe — across four models, context
// lengths 64K..512K and 128/256/512 GPUs, with 4M tokens per iteration and
// per-cell grid-searched hybrid-parallelism configurations.
//
// Cell markers follow the paper: "--" = no viable configuration (green
// triangle), "OOM" = every configuration ran out of memory (red cross).

#include "bench_common.hpp"

using namespace slim;

namespace {

constexpr std::int64_t kTokens = 4 * slimbench::kMiTokens;

struct Cell {
  std::string deepspeed, megatron, slimpipe, speedup;
  std::string slim_cfg;
};

Cell evaluate(const model::TransformerConfig& cfg, int gpus,
              std::int64_t seq) {
  Cell cell;
  const auto gpu = model::hopper80();

  const auto ds = sched::best_ulysses(cfg, gpu, gpus, seq, kTokens);
  switch (ds.status) {
    case sched::UlyssesStatus::Ok:
      cell.deepspeed = format_percent(ds.mfu);
      break;
    case sched::UlyssesStatus::NoViableConfig:
      cell.deepspeed = "--";
      break;
    case sched::UlyssesStatus::Oom:
      cell.deepspeed = "OOM";
      break;
  }

  parallel::SearchOptions opts;
  opts.simulate_top_k = 8;
  const auto mega = parallel::grid_search(cfg, gpu, gpus, seq, kTokens,
                                          core::Scheme::Interleaved1F1B, opts);
  const auto slim = parallel::grid_search(cfg, gpu, gpus, seq, kTokens,
                                          core::Scheme::SlimPipe, opts);
  cell.megatron = mega.status == parallel::SearchStatus::Ok
                      ? format_percent(mega.result.mfu)
                      : (mega.status == parallel::SearchStatus::AllOom ? "OOM"
                                                                       : "--");
  cell.slimpipe = slim.status == parallel::SearchStatus::Ok
                      ? format_percent(slim.result.mfu)
                      : (slim.status == parallel::SearchStatus::AllOom ? "OOM"
                                                                       : "--");
  if (slim.status == parallel::SearchStatus::Ok) {
    cell.slim_cfg = slim.best.describe();
    if (mega.status == parallel::SearchStatus::Ok) {
      cell.speedup = fmt(slim.result.mfu / mega.result.mfu, 2) + "x";
    } else {
      cell.speedup = "(baseline failed)";
    }
  }
  return cell;
}

}  // namespace

static void BM_Fig12Cell(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        evaluate(model::mixtral8x7b(), 128, 256 * 1024));
  }
}
BENCHMARK(BM_Fig12Cell)->Unit(benchmark::kMillisecond);

int main(int argc, char** argv) {
  slimbench::open_report("fig12_end_to_end");
  slimbench::print_banner(
      "Figure 12 — end-to-end MFU: DeepSpeed vs Megatron-LM vs SlimPipe",
      "4M tokens/iteration, grid-searched configurations per cell; "
      "contexts 64K-512K, 128/256/512 GPUs",
      "SlimPipe leads everywhere; the margin grows with context length and "
      "model size (up to ~1.57x in the paper); DeepSpeed hits 'no viable "
      "configuration' at 512K/128+ GPUs; Megatron OOMs on large models at "
      "512K");

  const std::vector<std::pair<model::TransformerConfig, std::vector<int>>>
      grid = {{model::mixtral8x7b(), {128, 256, 512}},
              {model::llama70b(), {128, 256}},
              {model::mixtral8x22b(), {256, 512}},
              {model::llama149b(), {256, 512}}};

  for (const auto& [cfg, gpu_counts] : grid) {
    std::printf("\n--- %s ---\n", cfg.name.c_str());
    for (int gpus : gpu_counts) {
      Table table({"context", "DeepSpeed", "Megatron-LM", "SlimPipe",
                   "speedup", "SlimPipe config"});
      for (std::int64_t seq :
           {64 * 1024, 128 * 1024, 256 * 1024, 512 * 1024}) {
        const Cell cell = evaluate(cfg, gpus, seq);
        table.add_row({format_context(seq), cell.deepspeed, cell.megatron,
                       cell.slimpipe, cell.speedup, cell.slim_cfg});
      }
      slimbench::print_table(std::to_string(gpus) + " GPUs end-to-end", table);
    }
  }

  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
