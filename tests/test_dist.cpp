// Tests for the multi-process pipeline runtime (src/dist): forked stage
// workers over AF_UNIX sockets, supervised with heartbeats, crash
// detection, backoff respawn and crash-consistent microbatch replay.
//
// The load-bearing assertions: (a) the socket backend's gradients are
// bit-identical to the threaded backend's (same seed, same merge order)
// and within float tolerance of the monolithic reference; (b) a worker
// SIGKILLed at ANY protocol phase — before its first forward, on its first
// gradient commit, after its last — is detected, respawned and replayed
// such that the final gradients are STILL bit-identical; (c) a worker that
// hangs (heartbeats stop) is detected within the heartbeat deadline; (d)
// an exhausted respawn budget yields a structured PipelineError with the
// per-stage postmortem table, never a hang.

#include <gtest/gtest.h>

#include <unistd.h>

#include <algorithm>
#include <cmath>
#include <cstring>
#include <map>
#include <numeric>
#include <set>
#include <string>
#include <vector>

#include "src/dist/process_pipeline.hpp"
#include "src/dist/socket.hpp"
#include "src/dist/stage_worker.hpp"
#include "src/dist/wire.hpp"
#include "src/obs/trace.hpp"
#include "src/runtime/pipeline_runtime.hpp"

namespace slim::dist {
namespace {

// ---------------------------------------------------------------------------
// Wire protocol units.

TEST(WireTest, Crc32KnownValue) {
  const char* s = "123456789";
  EXPECT_EQ(crc32(s, 9), 0xCBF43926u);
}

TEST(WireTest, FrameRoundTrip) {
  SocketPair pair = make_socket_pair();
  Frame out;
  out.kind = FrameKind::Forward;
  out.stage = 2;
  out.mb = 5;
  out.slice = 1;
  Writer w;
  num::Tensor t(3, 4);
  for (std::int64_t i = 0; i < t.size(); ++i) {
    t.data()[i] = static_cast<float>(i) * 0.25f - 1.0f;
  }
  w.tensor(t);
  w.str("hello");
  w.i64(-77);
  out.payload = w.take();
  ASSERT_TRUE(send_frame(pair.a.get(), out));

  Frame in;
  ASSERT_EQ(recv_frame(pair.b.get(), &in), IoStatus::Ok);
  EXPECT_EQ(in.kind, FrameKind::Forward);
  EXPECT_EQ(in.stage, 2);
  EXPECT_EQ(in.mb, 5);
  EXPECT_EQ(in.slice, 1);
  Reader r(in.payload);
  const num::Tensor back = r.tensor();
  EXPECT_EQ(back.max_abs_diff(t), 0.0f);  // raw fp32 bytes: bit-exact
  EXPECT_EQ(r.str(), "hello");
  EXPECT_EQ(r.i64(), -77);
  EXPECT_TRUE(r.done());
}

TEST(WireTest, CleanCloseIsEof) {
  SocketPair pair = make_socket_pair();
  pair.a.reset();
  Frame in;
  EXPECT_EQ(recv_frame(pair.b.get(), &in), IoStatus::Eof);
}

TEST(WireTest, TornFrameDetected) {
  // A worker SIGKILLed mid-write leaves a header promising more payload
  // than ever arrives — the reader must report Torn, not hang or accept.
  SocketPair pair = make_socket_pair();
  Frame out;
  out.kind = FrameKind::Commit;
  out.stage = 1;
  out.payload.assign(64, 0xAB);
  // Serialize via a scratch pair to capture the exact on-wire bytes.
  SocketPair scratch = make_socket_pair();
  ASSERT_TRUE(send_frame(scratch.a.get(), out));
  std::vector<std::uint8_t> bytes(36 + 64);
  ASSERT_EQ(recv_all(scratch.b.get(), bytes.data(), bytes.size()),
            IoStatus::Ok);
  // Deliver only the header + half the payload, then die.
  ASSERT_TRUE(send_all(pair.a.get(), bytes.data(), 36 + 32));
  pair.a.reset();
  Frame in;
  EXPECT_EQ(recv_frame(pair.b.get(), &in), IoStatus::Torn);
}

TEST(WireTest, CorruptPayloadDetected) {
  SocketPair pair = make_socket_pair();
  Frame out;
  out.kind = FrameKind::Commit;
  out.stage = 0;
  out.payload.assign(32, 0x5C);
  SocketPair scratch = make_socket_pair();
  ASSERT_TRUE(send_frame(scratch.a.get(), out));
  std::vector<std::uint8_t> bytes(36 + 32);
  ASSERT_EQ(recv_all(scratch.b.get(), bytes.data(), bytes.size()),
            IoStatus::Ok);
  bytes[36 + 7] ^= 0x01;  // flip one payload bit
  ASSERT_TRUE(send_all(pair.a.get(), bytes.data(), bytes.size()));
  Frame in;
  EXPECT_EQ(recv_frame(pair.b.get(), &in), IoStatus::Corrupt);
}

TEST(WireTest, StatusRoundTrip) {
  WireStatus status;
  status.messages = 123;
  status.done_f = 7;
  status.done_b = 6;
  status.live = 3;
  status.queue = 2;
  status.deferred = 1;
  status.committed = 4;
  status.last_mb = 9;
  status.state = static_cast<int>(WorkerState::Waiting);
  status.injected_delay_seconds = 0.125;
  status.prev = {11, 12, 1300, 1400, 2, 3};
  status.next = {21, 22, 2300, 2400, 0, 1};
  status.flight_recorded = 456;
  Writer w;
  write_status(w, status);
  const std::vector<std::uint8_t> bytes = w.take();
  Reader r(bytes);
  const WireStatus back = read_status(r);
  EXPECT_EQ(back.messages, 123);
  EXPECT_EQ(back.done_f, 7);
  EXPECT_EQ(back.done_b, 6);
  EXPECT_EQ(back.live, 3);
  EXPECT_EQ(back.queue, 2);
  EXPECT_EQ(back.deferred, 1);
  EXPECT_EQ(back.committed, 4);
  EXPECT_EQ(back.last_mb, 9);
  EXPECT_EQ(back.state, static_cast<int>(WorkerState::Waiting));
  EXPECT_EQ(back.injected_delay_seconds, 0.125);
  EXPECT_EQ(back.prev.frames_out, 11);
  EXPECT_EQ(back.prev.frames_in, 12);
  EXPECT_EQ(back.prev.bytes_out, 1300);
  EXPECT_EQ(back.prev.bytes_in, 1400);
  EXPECT_EQ(back.prev.crc_rejects, 2);
  EXPECT_EQ(back.prev.retries, 3);
  EXPECT_EQ(back.next.frames_out, 21);
  EXPECT_EQ(back.next.frames_in, 22);
  EXPECT_EQ(back.next.bytes_out, 2300);
  EXPECT_EQ(back.next.bytes_in, 2400);
  EXPECT_EQ(back.next.crc_rejects, 0);
  EXPECT_EQ(back.next.retries, 1);
  EXPECT_EQ(back.flight_recorded, 456);
  EXPECT_TRUE(r.done());
}

TEST(WireTest, CommitRoundTripBitExact) {
  Rng rng(31);
  const num::BlockDims dims{16, 2, 2, 24};
  const rt::PipelineModel model =
      rt::PipelineModel::build(dims, 16, 3, 2, rng);
  rt::StageCommit commit = rt::make_stage_commit(model, 1, false);
  commit.loss = 1.75;
  commit.complete = true;
  for (num::LayerGrads& layer : commit.layers) {
    for (std::int64_t i = 0; i < layer.wq.size(); ++i) {
      layer.wq.data()[i] = static_cast<float>(i) * 1e-3f;
    }
  }
  Writer w;
  write_commit(w, commit);
  const std::vector<std::uint8_t> bytes = w.take();
  Reader r(bytes);
  const rt::StageCommit back = read_commit(r);
  ASSERT_EQ(back.layers.size(), commit.layers.size());
  for (std::size_t i = 0; i < back.layers.size(); ++i) {
    EXPECT_EQ(back.layers[i].max_abs_diff(commit.layers[i]), 0.0f);
  }
  EXPECT_EQ(back.loss, 1.75);
  EXPECT_TRUE(back.complete);
  EXPECT_TRUE(r.done());
}

// ---------------------------------------------------------------------------
// Shared fixtures.

std::vector<std::vector<std::int64_t>> random_batch(Rng& rng, int m, int seq,
                                                    std::int64_t vocab) {
  std::vector<std::vector<std::int64_t>> out(static_cast<std::size_t>(m));
  for (auto& sequence : out) {
    for (int i = 0; i < seq; ++i) {
      sequence.push_back(static_cast<std::int64_t>(
          rng.next_below(static_cast<std::uint64_t>(vocab))));
    }
  }
  return out;
}

struct Workload {
  std::vector<std::vector<std::int64_t>> tokens;
  std::vector<std::vector<std::int64_t>> targets;
};

Workload make_workload(int m, int seq, std::int64_t vocab, int seed) {
  Rng rng(static_cast<std::uint64_t>(seed));
  Workload w;
  w.tokens = random_batch(rng, m, seq, vocab);
  w.targets = random_batch(rng, m, seq, vocab);
  return w;
}

constexpr num::BlockDims kDims{32, 4, 2, 48};
constexpr std::int64_t kVocab = 32;

/// Threaded-backend result for the same seed — the bit-identity yardstick.
rt::ThreadedPipeline::Result threaded_result(int stages, int layers,
                                             int seed, const Workload& w,
                                             int n_slices) {
  Rng rng(static_cast<std::uint64_t>(seed));
  rt::ThreadedPipeline pipe(kDims, kVocab, layers, stages, rng);
  return pipe.run_iteration(w.tokens, w.targets, n_slices);
}

// ---------------------------------------------------------------------------
// Fault-free parity.

struct ParityCase {
  int stages;
  int layers;
  int n_slices;
  int microbatches;
};

class DistParityTest : public ::testing::TestWithParam<ParityCase> {};

TEST_P(DistParityTest, MatchesThreadedBitExactAndReference) {
  const ParityCase c = GetParam();
  const int seed = 900 + c.stages * 13 + c.n_slices;
  const Workload w = make_workload(c.microbatches, 24, kVocab, 901 + c.microbatches);

  Rng rng(static_cast<std::uint64_t>(seed));
  ProcessPipeline pipe(kDims, kVocab, c.layers, c.stages, rng);
  const auto dist = pipe.run_iteration(w.tokens, w.targets, c.n_slices);
  const auto ref = pipe.run_reference(w.tokens, w.targets);
  const auto thr =
      threaded_result(c.stages, c.layers, seed, w, c.n_slices);

  // Same seed, same staged-commit protocol, same merge order: the process
  // boundary (fork + raw-fp32 socket frames) must not change a single bit.
  EXPECT_EQ(dist.grads.max_abs_diff(thr.grads), 0.0f)
      << "stages=" << c.stages << " n=" << c.n_slices;
  EXPECT_DOUBLE_EQ(dist.loss, thr.loss);
  EXPECT_NEAR(dist.loss, ref.loss, 1e-5);
  EXPECT_LT(dist.grads.max_abs_diff(ref.grads), 5e-5f);

  // Schedule-shape metrics survive the process boundary.
  EXPECT_EQ(dist.stats.metrics.substrate, "dist");
  ASSERT_EQ(dist.stats.peak_live_slices.size(),
            static_cast<std::size_t>(c.stages));
  for (int s = 0; s < c.stages; ++s) {
    const int cap = c.n_slices + 2 * (c.stages - 1 - s);
    EXPECT_GE(dist.stats.peak_live_slices[static_cast<std::size_t>(s)], 1);
    EXPECT_LE(dist.stats.peak_live_slices[static_cast<std::size_t>(s)], cap)
        << "stage " << s << " exceeded the Eq. 1 window";
  }
  // Message counts are a schedule-shape invariant; peak live slices are a
  // wall-clock high-water mark (timing-dependent under the cap), so only
  // the Eq. 1 bound above is asserted for them.
  EXPECT_EQ(dist.stats.messages, thr.stats.messages);
  EXPECT_TRUE(dist.stats.replayed_microbatches.empty());
}

INSTANTIATE_TEST_SUITE_P(Sweep, DistParityTest,
                         ::testing::Values(ParityCase{1, 2, 2, 1},
                                           ParityCase{2, 3, 2, 2},
                                           ParityCase{3, 5, 2, 3},
                                           ParityCase{3, 4, 4, 2},
                                           ParityCase{4, 5, 2, 3}));

// ---------------------------------------------------------------------------
// Crash torture: SIGKILL a real stage process at every protocol phase x
// stage index; recovery must reproduce the fault-free gradients bit for
// bit and replay exactly the unretired suffix.

struct KillCase {
  int stage;
  KillSpec::Phase phase;
};

class DistKillTortureTest : public ::testing::TestWithParam<KillCase> {};

TEST_P(DistKillTortureTest, RecoversBitIdentical) {
  const KillCase c = GetParam();
  const int stages = 3, layers = 5, n = 2, m = 4, seed = 1200;
  const Workload w = make_workload(m, 24, kVocab, 1201);
  const auto thr = threaded_result(stages, layers, seed, w, n);

  Rng rng(static_cast<std::uint64_t>(seed));
  ProcessPipeline pipe(kDims, kVocab, layers, stages, rng);
  ProcessOptions options;
  options.n_slices = n;
  options.kill.stage = c.stage;
  options.kill.phase = c.phase;
  options.drain_grace = std::chrono::milliseconds(400);
  options.heartbeat_timeout = std::chrono::milliseconds(2000);
  fault::FaultReport report;
  options.report = &report;

  const auto dist = pipe.run_iteration(w.tokens, w.targets, options);

  // The recovered gradients are the whole point: bit-identical to the
  // fault-free threaded run and to (implicitly) run_reference.
  EXPECT_EQ(dist.grads.max_abs_diff(thr.grads), 0.0f)
      << "stage=" << c.stage << " phase=" << static_cast<int>(c.phase);
  EXPECT_DOUBLE_EQ(dist.loss, thr.loss);

  const std::vector<int>& replay = report.replayed_microbatches;
  switch (c.phase) {
    case KillSpec::Phase::PreForward: {
      // Killed before any forward completed: nothing retired anywhere, the
      // whole iteration replays.
      std::vector<int> all(static_cast<std::size_t>(m));
      std::iota(all.begin(), all.end(), 0);
      EXPECT_EQ(replay, all);
      EXPECT_TRUE(report.has_kind(fault::FaultEvent::Kind::Crash));
      EXPECT_TRUE(report.has_kind(fault::FaultEvent::Kind::Recovery));
      break;
    }
    case KillSpec::Phase::MidCommit: {
      // Killed on the stage's first Commit frame: some prefix of the
      // microbatches retired everywhere (usually at least mb 0 — its
      // remaining backwards were in flight and the drain grace lets
      // survivors finish, though on a loaded machine a survivor can die on
      // a dead-peer send first), the rest replay. The committed set is
      // always a microbatch prefix (retirement follows schedule order), so
      // the replay set must be a contiguous suffix ending at m-1.
      ASSERT_FALSE(replay.empty());
      std::vector<int> suffix;
      for (int mb = replay.front(); mb < m; ++mb) suffix.push_back(mb);
      EXPECT_EQ(replay, suffix);
      EXPECT_TRUE(report.has_kind(fault::FaultEvent::Kind::Recovery));
      break;
    }
    case KillSpec::Phase::PostCommit:
      // Killed after its last commit: every microbatch had retired — the
      // supervisor must skip replay gracefully. (The worker may even have
      // exited cleanly before the SIGKILL landed; both are fine.)
      EXPECT_TRUE(replay.empty());
      break;
    case KillSpec::Phase::None:
      break;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Matrix, DistKillTortureTest,
    ::testing::Values(KillCase{0, KillSpec::Phase::PreForward},
                      KillCase{1, KillSpec::Phase::PreForward},
                      KillCase{2, KillSpec::Phase::PreForward},
                      KillCase{0, KillSpec::Phase::MidCommit},
                      KillCase{1, KillSpec::Phase::MidCommit},
                      KillCase{2, KillSpec::Phase::MidCommit},
                      KillCase{0, KillSpec::Phase::PostCommit},
                      KillCase{1, KillSpec::Phase::PostCommit},
                      KillCase{2, KillSpec::Phase::PostCommit}));

// ---------------------------------------------------------------------------
// Supervision: hang detection, respawn budget, structured failure.

TEST(DistSupervisionTest, HungWorkerDetectedByMissedHeartbeats) {
  const int stages = 3, layers = 4, n = 2, m = 3, seed = 1300;
  const Workload w = make_workload(m, 24, kVocab, 1301);
  const auto thr = threaded_result(stages, layers, seed, w, n);

  fault::FaultPlan plan;
  plan.stage_hangs.push_back({1, 5});

  Rng rng(static_cast<std::uint64_t>(seed));
  ProcessPipeline pipe(kDims, kVocab, layers, stages, rng);
  ProcessOptions options;
  options.n_slices = n;
  options.faults = &plan;
  options.heartbeat_interval = std::chrono::milliseconds(20);
  options.heartbeat_timeout = std::chrono::milliseconds(250);
  options.drain_grace = std::chrono::milliseconds(300);
  fault::FaultReport report;
  options.report = &report;

  const auto start = std::chrono::steady_clock::now();
  const auto dist = pipe.run_iteration(w.tokens, w.targets, options);
  const auto elapsed = std::chrono::steady_clock::now() - start;

  // The parked worker stops heartbeating; the supervisor must notice
  // within the deadline (plus drain/backoff/replay time), SIGKILL it and
  // recover — well under the worker-side starvation timeout.
  EXPECT_LT(elapsed, std::chrono::seconds(10));
  EXPECT_TRUE(report.has_kind(fault::FaultEvent::Kind::Watchdog));
  EXPECT_TRUE(report.has_kind(fault::FaultEvent::Kind::Recovery));
  EXPECT_EQ(dist.grads.max_abs_diff(thr.grads), 0.0f);
  EXPECT_DOUBLE_EQ(dist.loss, thr.loss);
}

TEST(DistSupervisionTest, PlanStageCrashBecomesRealSigkill) {
  const int stages = 3, layers = 4, n = 2, m = 3, seed = 1310;
  const Workload w = make_workload(m, 24, kVocab, 1311);
  const auto thr = threaded_result(stages, layers, seed, w, n);

  fault::FaultPlan plan;
  plan.stage_crashes.push_back({1, 6});

  Rng rng(static_cast<std::uint64_t>(seed));
  ProcessPipeline pipe(kDims, kVocab, layers, stages, rng);
  ProcessOptions options;
  options.n_slices = n;
  options.faults = &plan;
  options.drain_grace = std::chrono::milliseconds(400);
  fault::FaultReport report;
  options.report = &report;

  const auto dist = pipe.run_iteration(w.tokens, w.targets, options);
  EXPECT_TRUE(report.has_kind(fault::FaultEvent::Kind::Crash));
  EXPECT_TRUE(report.has_kind(fault::FaultEvent::Kind::Recovery));
  EXPECT_FALSE(report.replayed_microbatches.empty());
  EXPECT_EQ(dist.stats.replayed_microbatches, report.replayed_microbatches);
  EXPECT_EQ(dist.grads.max_abs_diff(thr.grads), 0.0f);
}

TEST(DistSupervisionTest, RespawnBudgetExhaustionIsStructured) {
  const int stages = 2, layers = 3, n = 2, m = 2, seed = 1320;
  const Workload w = make_workload(m, 24, kVocab, 1321);

  Rng rng(static_cast<std::uint64_t>(seed));
  ProcessPipeline pipe(kDims, kVocab, layers, stages, rng);
  ProcessOptions options;
  options.n_slices = n;
  options.kill.stage = 1;
  options.kill.phase = KillSpec::Phase::PreForward;
  options.kill.persistent = true;  // re-kill every respawn
  options.respawn_budget = 2;
  options.backoff_base = std::chrono::milliseconds(5);
  options.backoff_cap = std::chrono::milliseconds(20);
  options.drain_grace = std::chrono::milliseconds(150);
  fault::FaultReport report;
  options.report = &report;

  try {
    pipe.run_iteration(w.tokens, w.targets, options);
    FAIL() << "expected PipelineError";
  } catch (const rt::PipelineError& error) {
    const std::string what = error.what();
    EXPECT_NE(what.find("respawn budget"), std::string::npos) << what;
    // The postmortem blocked-on table ships inside the error, with the
    // per-channel queue depth and last-received microbatch columns.
    EXPECT_NE(what.find("queue"), std::string::npos);
    EXPECT_NE(what.find("last mb"), std::string::npos);
    EXPECT_FALSE(error.report().blocked_table.empty());
    int recoveries = 0;
    for (const fault::FaultEvent& event : error.report().events) {
      recoveries += event.kind == fault::FaultEvent::Kind::Recovery ? 1 : 0;
    }
    EXPECT_EQ(recoveries, 2);  // budget consumed before the failure
  }
  // The out-param report carries the same postmortem.
  EXPECT_FALSE(report.blocked_table.empty());
}

TEST(DistSupervisionTest, RecoverFalseFailsFastAndStructured) {
  const int stages = 2, layers = 3, n = 2, m = 2, seed = 1330;
  const Workload w = make_workload(m, 24, kVocab, 1331);

  Rng rng(static_cast<std::uint64_t>(seed));
  ProcessPipeline pipe(kDims, kVocab, layers, stages, rng);
  ProcessOptions options;
  options.n_slices = n;
  options.kill.stage = 0;
  options.kill.phase = KillSpec::Phase::PreForward;
  options.recover = false;
  options.drain_grace = std::chrono::milliseconds(150);
  EXPECT_THROW(pipe.run_iteration(w.tokens, w.targets, options),
               rt::PipelineError);
}

// ---------------------------------------------------------------------------
// Socket-level fault rules on the real transport.

TEST(DistSocketFaultTest, InjectedDelayIsMeasurable) {
  const int stages = 2, layers = 3, n = 2, m = 3, seed = 1400;
  const Workload w = make_workload(m, 24, kVocab, 1401);

  auto run = [&](const fault::FaultPlan* plan, obs::Recorder* rec,
                 fault::FaultReport* report) {
    Rng rng(static_cast<std::uint64_t>(seed));
    ProcessPipeline pipe(kDims, kVocab, layers, stages, rng);
    ProcessOptions options;
    options.n_slices = n;
    options.faults = plan;
    options.recorder = rec;
    options.report = report;
    return pipe.run_iteration(w.tokens, w.targets, options);
  };

  const auto baseline = run(nullptr, nullptr, nullptr);

  fault::FaultPlan plan;
  const double delay = 0.004;
  plan.socket_delays.push_back({0, 1, delay});  // every send from stage 0
  obs::Recorder recorder;
  fault::FaultReport report;
  const auto degraded = run(&plan, &recorder, &report);

  // Gradients are latency-invariant.
  EXPECT_EQ(degraded.grads.max_abs_diff(baseline.grads), 0.0f);
  EXPECT_TRUE(report.has_kind(fault::FaultEvent::Kind::SocketDelay));
  EXPECT_GT(report.injected_seconds, 0.0);

  // Stage 0 sends m*n forward frames, each delayed: the added socket
  // latency must show up in the measured comm time...
  const double base_comm = baseline.stats.metrics.stages[0].comm_seconds;
  const double slow_comm = degraded.stats.metrics.stages[0].comm_seconds;
  const double expected = static_cast<double>(m * n) * delay;
  EXPECT_GT(slow_comm - base_comm, 0.5 * expected);

  // ...and in the recorded trace: stage 0's send spans are each at least
  // `delay` long.
  const obs::Trace trace = recorder.snapshot();
  int slow_sends = 0;
  for (const obs::TraceSpan& span : trace.spans) {
    if (span.track == 0 && span.cat == obs::kCatComm &&
        span.name.rfind("send ", 0) == 0 &&
        span.end - span.start >= delay) {
      ++slow_sends;
    }
  }
  EXPECT_EQ(slow_sends, m * n);
}

TEST(DistSocketFaultTest, LinkDegradationAddsSocketLatency) {
  const int stages = 2, layers = 3, n = 2, m = 2, seed = 1410;
  const Workload w = make_workload(m, 24, kVocab, 1411);
  const auto thr = threaded_result(stages, layers, seed, w, n);

  fault::FaultPlan plan;
  fault::LinkFault link;
  link.src = 0;
  link.extra_latency = 0.003;
  plan.links.push_back(link);

  Rng rng(static_cast<std::uint64_t>(seed));
  ProcessPipeline pipe(kDims, kVocab, layers, stages, rng);
  ProcessOptions options;
  options.n_slices = n;
  options.faults = &plan;
  fault::FaultReport report;
  options.report = &report;
  const auto dist = pipe.run_iteration(w.tokens, w.targets, options);

  EXPECT_EQ(dist.grads.max_abs_diff(thr.grads), 0.0f);
  EXPECT_GE(report.injected_seconds,
            static_cast<double>(m * n) * link.extra_latency * 0.99);
  EXPECT_GE(dist.stats.metrics.stages[0].comm_seconds,
            static_cast<double>(m * n) * link.extra_latency * 0.99);
}

TEST(DistSocketFaultTest, DropWithRetryDelivers) {
  const int stages = 2, layers = 3, n = 2, m = 2, seed = 1420;
  const Workload w = make_workload(m, 24, kVocab, 1421);
  const auto thr = threaded_result(stages, layers, seed, w, n);

  fault::FaultPlan plan;
  plan.socket_drops.push_back({0, 3, 2, 5});  // every 3rd send, 2 drops

  Rng rng(static_cast<std::uint64_t>(seed));
  ProcessPipeline pipe(kDims, kVocab, layers, stages, rng);
  ProcessOptions options;
  options.n_slices = n;
  options.faults = &plan;
  fault::FaultReport report;
  options.report = &report;
  const auto dist = pipe.run_iteration(w.tokens, w.targets, options);

  EXPECT_TRUE(report.has_kind(fault::FaultEvent::Kind::SocketDrop));
  EXPECT_EQ(dist.grads.max_abs_diff(thr.grads), 0.0f);
  EXPECT_TRUE(dist.stats.replayed_microbatches.empty());  // retry sufficed
}

TEST(DistSocketFaultTest, DropBudgetExhaustionIsStructured) {
  const int stages = 2, layers = 3, n = 2, m = 2, seed = 1430;
  const Workload w = make_workload(m, 24, kVocab, 1431);

  fault::FaultPlan plan;
  // 100 pending drops against a 2-retry budget: the first affected send
  // fails outright.
  plan.socket_drops.push_back({0, 1, 100, 2});

  Rng rng(static_cast<std::uint64_t>(seed));
  ProcessPipeline pipe(kDims, kVocab, layers, stages, rng);
  ProcessOptions options;
  options.n_slices = n;
  options.faults = &plan;
  options.recover = false;
  options.drain_grace = std::chrono::milliseconds(150);
  try {
    pipe.run_iteration(w.tokens, w.targets, options);
    FAIL() << "expected PipelineError";
  } catch (const rt::PipelineError& error) {
    EXPECT_NE(std::string(error.what()).find("retry budget"),
              std::string::npos)
        << error.what();
  }
}

TEST(DistSocketFaultTest, TransientConnectFailureRetried) {
  const int stages = 3, layers = 4, n = 2, m = 2, seed = 1440;
  const Workload w = make_workload(m, 24, kVocab, 1441);
  const auto thr = threaded_result(stages, layers, seed, w, n);

  fault::FaultPlan plan;
  plan.socket_connect_fails.push_back({1, 2});

  Rng rng(static_cast<std::uint64_t>(seed));
  ProcessPipeline pipe(kDims, kVocab, layers, stages, rng);
  ProcessOptions options;
  options.n_slices = n;
  options.faults = &plan;
  fault::FaultReport report;
  options.report = &report;
  const auto dist = pipe.run_iteration(w.tokens, w.targets, options);

  int retries = 0;
  for (const fault::FaultEvent& event : report.events) {
    retries += event.kind == fault::FaultEvent::Kind::ConnectRetry ? 1 : 0;
  }
  EXPECT_EQ(retries, 2);
  EXPECT_EQ(dist.grads.max_abs_diff(thr.grads), 0.0f);
}

TEST(DistSocketFaultTest, StragglerDelayStillBitIdentical) {
  const int stages = 2, layers = 3, n = 2, m = 2, seed = 1450;
  const Workload w = make_workload(m, 24, kVocab, 1451);
  const auto thr = threaded_result(stages, layers, seed, w, n);

  fault::FaultPlan plan;
  plan.delays.push_back({1, 2, 0.002});

  Rng rng(static_cast<std::uint64_t>(seed));
  ProcessPipeline pipe(kDims, kVocab, layers, stages, rng);
  ProcessOptions options;
  options.n_slices = n;
  options.faults = &plan;
  fault::FaultReport report;
  options.report = &report;
  const auto dist = pipe.run_iteration(w.tokens, w.targets, options);
  EXPECT_TRUE(report.has_kind(fault::FaultEvent::Kind::Delay));
  EXPECT_EQ(dist.grads.max_abs_diff(thr.grads), 0.0f);
}

// ---------------------------------------------------------------------------
// Observability across the process boundary.

TEST(DistObservabilityTest, TraceAndArenaPeaksSurviveTheBoundary) {
  const int stages = 3, layers = 4, n = 2, m = 2, seed = 1500;
  const Workload w = make_workload(m, 24, kVocab, 1501);

  Rng rng(static_cast<std::uint64_t>(seed));
  ProcessPipeline pipe(kDims, kVocab, layers, stages, rng);
  ProcessOptions options;
  options.n_slices = n;
  obs::Recorder recorder;
  options.recorder = &recorder;
  const auto dist = pipe.run_iteration(w.tokens, w.targets, options);

  const obs::Trace trace = recorder.snapshot();
  ASSERT_FALSE(trace.spans.empty());
  // Every stage contributed compute spans and commit instants, re-based
  // onto the supervisor's clock (monotone, non-negative).
  std::vector<int> compute_spans(static_cast<std::size_t>(stages), 0);
  for (const obs::TraceSpan& span : trace.spans) {
    EXPECT_GE(span.start, 0.0);
    EXPECT_GE(span.end, span.start);
    if (span.cat == obs::kCatCompute && span.track >= 0 &&
        span.track < stages) {
      ++compute_spans[static_cast<std::size_t>(span.track)];
    }
  }
  for (int s = 0; s < stages; ++s) {
    EXPECT_EQ(compute_spans[static_cast<std::size_t>(s)], 2 * m * n)
        << "stage " << s;
  }
  int commit_instants = 0;
  for (const obs::TraceInstant& inst : trace.instants) {
    commit_instants += inst.cat == obs::kCatCommit ? 1 : 0;
  }
  EXPECT_EQ(commit_instants, stages * m);

  // Arena peaks measured inside the workers came back via Done frames.
  ASSERT_EQ(dist.stats.metrics.stages.size(),
            static_cast<std::size_t>(stages));
  for (const obs::StageMetrics& sm : dist.stats.metrics.stages) {
    EXPECT_GT(sm.measured_peak_total, 0.0) << "stage " << sm.device;
    EXPECT_FALSE(sm.measured_peak_bytes.empty());
    EXPECT_GT(sm.compute_seconds, 0.0);
  }
}

TEST(DistObservabilityTest, KilledWorkerPostmortemCarriesFlightTail) {
  // A worker SIGKILLed on its first Commit frame flushed its flight
  // recorder right before that frame (same FIFO control socket), so the
  // failure postmortem must show the breadcrumbs leading into the commit —
  // what the dead stage was doing, not just that it died.
  const int stages = 2, layers = 3, n = 2, m = 2, seed = 1600;
  const Workload w = make_workload(m, 24, kVocab, 1601);

  Rng rng(static_cast<std::uint64_t>(seed));
  ProcessPipeline pipe(kDims, kVocab, layers, stages, rng);
  ProcessOptions options;
  options.n_slices = n;
  options.kill.stage = 1;
  options.kill.phase = KillSpec::Phase::MidCommit;
  options.recover = false;
  options.drain_grace = std::chrono::milliseconds(150);
  fault::FaultReport report;
  options.report = &report;
  try {
    pipe.run_iteration(w.tokens, w.targets, options);
    FAIL() << "expected PipelineError";
  } catch (const rt::PipelineError& error) {
    const std::string what = error.what();
    EXPECT_NE(what.find("stage 1 flight recorder tail"), std::string::npos)
        << what;
    // The tail ends at the commit breadcrumb that triggered the kill, with
    // the recomputation spans before it.
    EXPECT_NE(what.find("commit"), std::string::npos) << what;
    EXPECT_NE(what.find("span-begin"), std::string::npos) << what;
  }
  // The out-param report carries the same table.
  EXPECT_NE(report.blocked_table.find("flight recorder tail"),
            std::string::npos);
}

TEST(DistObservabilityTest, MergedTraceHasPerProcessPidsAndFlowArrows) {
  // The merged trace of a 2-process run must keep the workers apart as real
  // OS processes (per-track pids + process_name metadata) and pair each
  // cross-process send with its receive via a shared flow id.
  const int stages = 2, layers = 3, n = 2, m = 2, seed = 1610;
  const Workload w = make_workload(m, 24, kVocab, 1611);

  Rng rng(static_cast<std::uint64_t>(seed));
  ProcessPipeline pipe(kDims, kVocab, layers, stages, rng);
  ProcessOptions options;
  options.n_slices = n;
  obs::Recorder recorder;
  options.recorder = &recorder;
  pipe.run_iteration(w.tokens, w.targets, options);

  const obs::Trace trace = recorder.snapshot();
  // Each stage track maps to its worker's real pid; both differ from the
  // supervisor (pid 0 convention = the recording process).
  std::set<std::int64_t> worker_pids;
  for (int s = 0; s < stages; ++s) {
    const std::int64_t pid = trace.pid_of(s);
    EXPECT_GT(pid, 0) << "stage " << s;
    EXPECT_NE(pid, static_cast<std::int64_t>(::getpid()));
    worker_pids.insert(pid);
  }
  EXPECT_EQ(worker_pids.size(), static_cast<std::size_t>(stages));
  // Process-name metadata for the supervisor and every worker.
  ASSERT_FALSE(trace.process_names.empty());
  bool saw_supervisor = false, saw_worker = false;
  for (const auto& [pid, name] : trace.process_names) {
    saw_supervisor = saw_supervisor || name == "supervisor";
    saw_worker = saw_worker || name.find("worker") != std::string::npos;
  }
  EXPECT_TRUE(saw_supervisor);
  EXPECT_TRUE(saw_worker);

  // Flow arrows: every boundary crossing appears as a begin (send side) and
  // an end (receive side) sharing one deterministic id, on DIFFERENT
  // tracks. m*n forward + m*n backward crossings on the single boundary.
  std::map<std::int64_t, std::vector<const obs::TraceFlowPoint*>> by_id;
  for (const obs::TraceFlowPoint& point : trace.flows) {
    by_id[point.id].push_back(&point);
  }
  int arrows = 0;
  for (const auto& [id, points] : by_id) {
    if (points.size() != 2) continue;
    const obs::TraceFlowPoint* begin = points[0]->begin ? points[0] : points[1];
    const obs::TraceFlowPoint* end = points[0]->begin ? points[1] : points[0];
    if (!begin->begin || end->begin) continue;
    EXPECT_NE(begin->track, end->track) << "flow " << id;
    ++arrows;
  }
  EXPECT_EQ(arrows, 2 * m * n);

  // And the Chrome export renders them: process metadata plus paired
  // "s"/"f" flow events.
  const std::string json = obs::chrome_trace_json(trace);
  EXPECT_NE(json.find("\"process_name\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"s\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"f\""), std::string::npos);
}

TEST(DistObservabilityTest, PingPongAlignsWorkerClocks) {
  const int stages = 2, layers = 3, n = 2, m = 2, seed = 1620;
  const Workload w = make_workload(m, 24, kVocab, 1621);

  Rng rng(static_cast<std::uint64_t>(seed));
  ProcessPipeline pipe(kDims, kVocab, layers, stages, rng);
  ProcessOptions options;
  options.n_slices = n;
  options.ping_interval = std::chrono::milliseconds(5);
  const auto dist = pipe.run_iteration(w.tokens, w.targets, options);

  ASSERT_EQ(dist.stats.metrics.stages.size(),
            static_cast<std::size_t>(stages));
  for (const obs::StageMetrics& sm : dist.stats.metrics.stages) {
    // At least the backdated first ping's pong landed on every worker.
    EXPECT_GE(sm.clock_samples, 1) << "stage " << sm.device;
    // A real round trip takes time: the error bound is positive, and the
    // offset estimate is sane (workers forked seconds, not hours, ago).
    EXPECT_GT(sm.clock_uncertainty_seconds, 0.0) << "stage " << sm.device;
    EXPECT_LT(std::abs(sm.clock_offset_seconds), 60.0)
        << "stage " << sm.device;
  }
}

}  // namespace
}  // namespace slim::dist
