// Figure 10: measured first/last-device memory of SlimPipe vs the
// theoretical curve M_t / p, where M_t is the memory required to train the
// model with 8-way TP alone. The paper uses maximum interleaving
// (stages per device = L / p) and sequence lengths 32K/64K/96K.

#include "bench_common.hpp"

using namespace slim;

namespace {

struct Point {
  double first_dev, last_dev;
};

Point measure(std::int64_t seq, int p) {
  const auto cfg = model::llama13b();
  auto spec = slimbench::base_spec(cfg, 8, p, seq, 4);
  spec.v = static_cast<int>(cfg.layers / p);  // maximum interleaving
  spec.n = 4 * p;
  spec.vocab_parallel = true;
  spec.context_exchange = true;
  const auto r = core::run_scheme(core::Scheme::SlimPipe, spec);
  return {r.first_device_memory, r.last_device_memory};
}

double theoretical_mt(std::int64_t seq) {
  const auto cfg = model::llama13b();
  const model::Shard shard{8, 1, 1, 8};
  const double states = model::model_state_bytes(
      cfg, shard, static_cast<double>(cfg.layers), 1.0, 1);
  const double act =
      model::act_bytes_per_token_layer(cfg, shard,
                                       model::CheckpointPolicy::None, true) *
      static_cast<double>(seq) * static_cast<double>(cfg.layers);
  const double logits = model::logits_bytes(cfg, shard, seq, 1);
  return states + act + logits;
}

}  // namespace

static void BM_Figure10(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(measure(64 * 1024, static_cast<int>(state.range(0))));
  }
}
BENCHMARK(BM_Figure10)->Arg(2)->Arg(4)->Arg(8)->Unit(benchmark::kMillisecond);

int main(int argc, char** argv) {
  slimbench::open_report("fig10_memory_scaling");
  slimbench::print_banner(
      "Figure 10 — memory reduced by the PP size",
      "Llama 13B, t=8, sequences 32K/64K/96K, p from 2 to 8, maximum "
      "interleaving (v = L/p), n = 4p",
      "both devices track M_t/p: nearly all training memory is distributed "
      "by PP; the first device sits slightly above the last "
      "(gap = 2(p-1)M_a/nvp)");

  Table table({"seq", "p", "M_t/p (theory)", "first device", "last device",
               "first/theory"});
  for (std::int64_t seq : {32 * 1024, 64 * 1024, 96 * 1024}) {
    const double mt = theoretical_mt(seq);
    for (int p : {2, 4, 8}) {
      const Point pt = measure(seq, p);
      table.add_row({format_context(seq), fmt(static_cast<std::int64_t>(p)),
                     format_bytes(mt / p), format_bytes(pt.first_dev),
                     format_bytes(pt.last_dev),
                     fmt(pt.first_dev / (mt / p), 2)});
    }
    table.add_separator();
  }
  slimbench::print_table("peak memory scaling with context", table);

  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
