file(REMOVE_RECURSE
  "CMakeFiles/bench_fig1_memory_vs_pp.dir/bench_common.cpp.o"
  "CMakeFiles/bench_fig1_memory_vs_pp.dir/bench_common.cpp.o.d"
  "CMakeFiles/bench_fig1_memory_vs_pp.dir/bench_fig1_memory_vs_pp.cpp.o"
  "CMakeFiles/bench_fig1_memory_vs_pp.dir/bench_fig1_memory_vs_pp.cpp.o.d"
  "bench_fig1_memory_vs_pp"
  "bench_fig1_memory_vs_pp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig1_memory_vs_pp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
