#include "src/parallel/search.hpp"

#include <algorithm>
#include <cmath>

#include "src/core/slice.hpp"
#include "src/core/slice_layout.hpp"
#include "src/model/flops.hpp"
#include "src/sched/builder.hpp"
#include "src/util/logging.hpp"
#include "src/util/math.hpp"
#include "src/util/units.hpp"

namespace slim::parallel {

namespace {

constexpr double kUsableFraction = 0.96;  // leave room for runtime/NCCL
constexpr double kReserveBytes = 3.0 * kGiB;

bool scheme_retains_kv(core::Scheme scheme) {
  return scheme == core::Scheme::SlimPipe || scheme == core::Scheme::TeraPipe;
}

double activation_fraction(const HybridConfig& cfg, std::int64_t m) {
  const int p = static_cast<int>(cfg.p);
  const int mi = static_cast<int>(m);
  switch (cfg.scheme) {
    case core::Scheme::GPipe:
    case core::Scheme::TeraPipe:
      return core::gpipe_activation_fraction(mi, p);
    case core::Scheme::OneF1B:
      return core::onef1b_activation_fraction(mi, p);
    case core::Scheme::Interleaved1F1B:
      return std::min(core::interleaved_activation_fraction(p, cfg.v),
                      static_cast<double>(mi) / p);
    case core::Scheme::ZBV:
      return core::onef1b_activation_fraction(mi, p);
    case core::Scheme::VHalf:
      return std::min(core::vhalf_activation_fraction(p),
                      static_cast<double>(mi) / p);
    case core::Scheme::VMin:
      return std::min(core::vmin_activation_fraction(p),
                      static_cast<double>(mi) / p);
    case core::Scheme::SlimPipe:
      return std::min(core::slimpipe_activation_fraction(p, cfg.n, cfg.v),
                      static_cast<double>(mi) / p);
  }
  return 1.0;
}

double bubble_estimate(const HybridConfig& cfg, std::int64_t m) {
  const int p = static_cast<int>(cfg.p);
  const int mi = std::max<int>(1, static_cast<int>(m));
  double warmup = 0.0;
  switch (cfg.scheme) {
    case core::Scheme::GPipe:
    case core::Scheme::OneF1B:
      warmup = core::onef1b_bubble_fraction(p, mi);
      break;
    case core::Scheme::TeraPipe:
      warmup = static_cast<double>(p - 1) /
               (static_cast<double>(cfg.n) * mi);
      break;
    case core::Scheme::Interleaved1F1B:
      warmup = core::interleaved_bubble_fraction(p, cfg.v, mi);
      break;
    case core::Scheme::ZBV:
      warmup = 0.15 * core::onef1b_bubble_fraction(p, mi) + 0.05;
      break;
    case core::Scheme::VHalf:
      warmup = 0.5 * core::onef1b_bubble_fraction(p, mi) + 0.1;
      break;
    case core::Scheme::VMin:
      warmup = 0.7 * core::onef1b_bubble_fraction(p, mi) + 0.15;
      break;
    case core::Scheme::SlimPipe:
      warmup = core::slimpipe_bubble_bound(p, cfg.n, cfg.v, mi) +
               2.0 * static_cast<double>(p - 1) /
                   (static_cast<double>(cfg.n) * cfg.v * mi *
                    static_cast<double>(cfg.n));
      break;
  }
  return std::min(0.9, warmup / (1.0 + warmup));
}

}  // namespace

const char* to_string(SearchStatus status) {
  switch (status) {
    case SearchStatus::Ok: return "ok";
    case SearchStatus::NoViableConfig: return "no viable configuration";
    case SearchStatus::AllOom: return "out of memory";
  }
  return "?";
}

double estimate_peak_memory(const HybridConfig& cfg,
                            const model::TransformerConfig& model,
                            const model::GpuSpec& gpu, std::int64_t seq,
                            std::int64_t tokens_per_iter) {
  (void)gpu;
  const std::int64_t m = cfg.microbatches(seq, tokens_per_iter);
  const model::Shard shard{cfg.t, cfg.c, cfg.e, 8};
  const bool retain_kv = scheme_retains_kv(cfg.scheme);
  const model::CheckpointPolicy policy =
      (cfg.scheme == core::Scheme::ZBV || cfg.scheme == core::Scheme::VHalf ||
       cfg.scheme == core::Scheme::VMin)
          ? model::CheckpointPolicy::None
          : cfg.policy;
  const double act_tok =
      model::act_bytes_per_token_layer(model, shard, policy, retain_kv);
  const double ma = act_tok * static_cast<double>(seq) *
                    static_cast<double>(model.layers);
  const double act =
      activation_fraction(cfg, m) * ma * (1.0 - cfg.offload_ratio);

  const double layers_local =
      static_cast<double>(model.layers) / static_cast<double>(cfg.p);
  const bool vocab_parallel = cfg.scheme == core::Scheme::SlimPipe;
  const double vocab_frac = vocab_parallel ? 1.0 / static_cast<double>(cfg.p)
                                           : 0.5;
  const double states =
      model::model_state_bytes(model, shard, layers_local, vocab_frac, cfg.d);
  const std::int64_t loss_tokens =
      vocab_parallel ? (seq + cfg.n - 1) / cfg.n : seq;
  const std::int64_t vshards = vocab_parallel ? cfg.p : 1;
  const double logits =
      model::logits_bytes(model, shard, loss_tokens, vshards) *
      (vocab_parallel ? 2.0 : 1.0);
  return act + states + logits;
}

double estimate_iteration_time(const HybridConfig& cfg,
                               const model::TransformerConfig& model,
                               const model::GpuSpec& gpu, std::int64_t seq,
                               std::int64_t tokens_per_iter) {
  const std::int64_t m = cfg.microbatches(seq, tokens_per_iter);
  const model::Shard shard{cfg.t, cfg.c, cfg.e, 8};
  const model::CheckpointPolicy policy =
      (cfg.scheme == core::Scheme::ZBV || cfg.scheme == core::Scheme::VHalf ||
       cfg.scheme == core::Scheme::VMin)
          ? model::CheckpointPolicy::None
          : cfg.policy;
  sched::PipelineSpec probe = make_spec(cfg, model, gpu, seq, tokens_per_iter);
  const model::CostModel cost(model, gpu, sched::pipeline_topology(probe),
                              shard, policy,
                              cfg.scheme == core::Scheme::SlimPipe
                                  ? model::CpMode::Commutated
                                  : model::CpMode::RingKv);
  const std::int64_t layers_dev = model.layers / cfg.p;
  const std::int64_t layers_pass =
      std::max<std::int64_t>(1, model.layers / (cfg.p * cfg.v));
  // Per-microbatch compute on one device, accounting for slicing: short
  // slices pay per-pass overheads and the small-kernel derate, which is
  // exactly the trade-off of Figure 11 — the estimate must see it or the
  // ranking drifts toward pathological n. Slice lengths come from the
  // token-uniform layout (remainder spread over the first slices), so
  // seq % n != 0 is costed exactly rather than truncated.
  const core::SliceLayout layout = core::SliceLayout::uniform(
      seq, static_cast<int>(cfg.n),
      (cfg.c > 1 && seq % cfg.c == 0 && seq / cfg.c >= cfg.n) ? cfg.c : 1);
  const bool vocab_parallel = cfg.scheme == core::Scheme::SlimPipe;
  const std::int64_t vshards = vocab_parallel ? cfg.p : 1;
  const std::int64_t mean_recompute_prefix = (cfg.n / 2) * (seq / cfg.n);
  double per_mb = 0.0;
  for (int i = 0; i < cfg.n; ++i) {
    const std::int64_t len = layout.len(i);
    per_mb += static_cast<double>(cfg.v) *
              (cost.nonattn_time(layers_pass, len, true) +
               cost.nonattn_time(layers_pass, len, false));
    const double kv = model::CostModel::causal_kv_equiv(len, layout.begin(i));
    per_mb += static_cast<double>(layers_dev) *
              (cost.attn_block_time(static_cast<double>(len), kv, true) +
               cost.attn_block_time(static_cast<double>(len), kv, false));
    per_mb += static_cast<double>(cfg.v) *
              cost.recompute_time(layers_pass, len, mean_recompute_prefix);
    per_mb += cost.vocab_forward_time(len, vshards) +
              cost.vocab_backward_time(len, vshards);
  }
  double compute = static_cast<double>(m) * per_mb;
  // Offload exposure (rough): traffic beyond what the compute window hides.
  if (cfg.offload_ratio > 0.0) {
    const double act_tok = model::act_bytes_per_token_layer(
        model, shard, policy, scheme_retains_kv(cfg.scheme));
    const double bytes = act_tok * static_cast<double>(seq) *
                         static_cast<double>(model.layers) /
                         static_cast<double>(cfg.p) * cfg.offload_ratio *
                         static_cast<double>(m) * 2.0;
    compute += std::max(0.0, bytes / gpu.pcie_bandwidth - compute);
  }
  const double bubble = bubble_estimate(cfg, m);
  return compute / (1.0 - bubble);
}

SearchResult grid_search(const model::TransformerConfig& model,
                         const model::GpuSpec& gpu, int num_gpus,
                         std::int64_t seq, std::int64_t tokens_per_iter,
                         core::Scheme scheme, const SearchOptions& options) {
  SearchResult out;
  const double usable =
      std::min(gpu.memory_bytes * kUsableFraction,
               gpu.memory_bytes - kReserveBytes);

  struct Candidate {
    HybridConfig cfg;
    double est_time;
  };
  std::vector<Candidate> fit;

  const std::vector<std::int64_t> t_options = {1, 2, 4, 8};
  const std::vector<std::int64_t> c_options = {1, 2, 4, 8, 16, 32};
  std::vector<std::int64_t> e_options = {1};
  if (model.is_moe()) e_options = {1, 2, 4, 8};

  for (std::int64_t t : t_options) {
    if (options.fixed_t != 0 && t != options.fixed_t) continue;
    for (std::int64_t c : c_options) {
      if (options.fixed_c != 0 && c != options.fixed_c) continue;
      if (options.max_tc_per_node > 0 && t * c > options.max_tc_per_node) {
        continue;
      }
      for (std::int64_t e : e_options) {
        for (std::int64_t p = 1; p <= options.max_p; ++p) {
          if (options.fixed_p != 0 && p != options.fixed_p) continue;
          if (model.layers % p != 0) continue;
          const std::int64_t tcp = t * c * p;
          if (tcp > num_gpus || num_gpus % tcp != 0) continue;
          const std::int64_t d = num_gpus / tcp;

          std::vector<int> v_options = {1};
          if (scheme == core::Scheme::ZBV || scheme == core::Scheme::VHalf ||
              scheme == core::Scheme::VMin) {
            v_options = {2};
          } else if (scheme == core::Scheme::Interleaved1F1B ||
                     scheme == core::Scheme::SlimPipe) {
            v_options.clear();
            for (int v = 1; v <= 10; ++v) {
              if (model.layers % (p * v) == 0) v_options.push_back(v);
            }
          }
          std::vector<int> n_options = {1};
          if (scheme == core::Scheme::SlimPipe ||
              scheme == core::Scheme::TeraPipe) {
            n_options.clear();
            for (std::int64_t mult : {1, 2, 4, 8}) {
              const std::int64_t n = p * mult;
              // seq % n != 0 is fine (remainder-spreading layout); each
              // slice just needs one CP-aligned token block.
              if (seq % c == 0 && seq / c >= n) {
                n_options.push_back(static_cast<int>(n));
              }
            }
            if (n_options.empty()) continue;
          }

          for (int v : v_options) {
            for (int n : n_options) {
              for (auto policy : {model::CheckpointPolicy::None,
                                  model::CheckpointPolicy::Selective,
                                  model::CheckpointPolicy::Full}) {
                for (double offload : options.offload_ratios) {
                  HybridConfig cfg;
                  cfg.t = t;
                  cfg.c = c;
                  cfg.d = d;
                  cfg.e = e;
                  cfg.p = p;
                  cfg.v = v;
                  cfg.n = n;
                  cfg.policy = policy;
                  cfg.offload_ratio = offload;
                  cfg.scheme = scheme;
                  if (!validate(cfg, model, num_gpus, seq, tokens_per_iter)
                           .empty()) {
                    continue;
                  }
                  ++out.candidates_valid;
                  // Keep the simulation tractable: the op graph scales with
                  // the total pass count across devices.
                  const double passes = 2.0 *
                                        static_cast<double>(
                                            cfg.microbatches(seq,
                                                             tokens_per_iter)) *
                                        cfg.n * cfg.v * static_cast<double>(p);
                  if (passes > 1.5e6) continue;
                  const double mem = estimate_peak_memory(
                      cfg, model, gpu, seq, tokens_per_iter);
                  if (mem > usable) continue;
                  ++out.candidates_fit;
                  fit.push_back({cfg, estimate_iteration_time(
                                          cfg, model, gpu, seq,
                                          tokens_per_iter)});
                }
              }
            }
          }
        }
      }
    }
  }

  if (out.candidates_valid == 0) {
    out.status = SearchStatus::NoViableConfig;
    out.note = "no parallelism layout satisfies the structural constraints";
    return out;
  }
  if (fit.empty()) {
    out.status = SearchStatus::AllOom;
    out.note = "all structurally valid configurations exceed device memory";
    return out;
  }

  std::sort(fit.begin(), fit.end(), [](const Candidate& a, const Candidate& b) {
    return a.est_time < b.est_time;
  });
  const int top_k = std::min<int>(options.simulate_top_k,
                                  static_cast<int>(fit.size()));
  bool found = false;
  for (int i = 0; i < top_k; ++i) {
    const HybridConfig& cfg = fit[static_cast<std::size_t>(i)].cfg;
    sched::PipelineSpec spec = make_spec(cfg, model, gpu, seq, tokens_per_iter);
    sched::ScheduleResult r;
    try {
      r = core::run_scheme(scheme, std::move(spec));
    } catch (const std::exception& e) {
      if (options.verbose) {
        SLIM_LOG(Warn) << "candidate " << cfg.describe()
                       << " failed to simulate: " << e.what();
      }
      continue;
    }
    if (r.oom) continue;
    if (!found || r.mfu > out.result.mfu) {
      out.best = cfg;
      out.result = r;
      found = true;
    }
  }
  if (!found) {
    out.status = SearchStatus::AllOom;
    out.note = "top candidates all exceeded device memory when simulated";
    return out;
  }
  out.status = SearchStatus::Ok;
  return out;
}

std::int64_t max_supported_context(core::Scheme scheme,
                                   const model::TransformerConfig& model,
                                   const model::GpuSpec& gpu, std::int64_t t,
                                   std::int64_t p, std::int64_t granularity,
                                   std::int64_t limit) {
  const int num_gpus = static_cast<int>(t * p);
  auto fits = [&](std::int64_t seq) -> bool {
    SearchOptions opts;
    opts.simulate_top_k = 3;
    opts.fixed_t = t;
    opts.fixed_p = p;
    // One microbatch (d = 1), the most memory-thrifty batch shape.
    const SearchResult r =
        grid_search(model, gpu, num_gpus, seq, seq, scheme, opts);
    return r.status == SearchStatus::Ok;
  };
  if (!fits(granularity)) return 0;
  // Exponential growth then bisection on the granularity grid.
  std::int64_t lo = granularity, hi = granularity;
  while (hi < limit && fits(std::min(limit, hi * 2))) {
    hi = std::min(limit, hi * 2);
    lo = hi;
    if (hi == limit) return limit;
  }
  hi = std::min(limit, hi * 2);
  while (hi - lo > granularity) {
    const std::int64_t mid = round_up((lo + hi) / 2, granularity);
    if (fits(mid)) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return lo;
}

}  // namespace slim::parallel
