# Empty compiler generated dependencies file for bench_fig11_slice_length.
# This may be replaced when dependencies are built.
