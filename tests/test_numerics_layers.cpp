// Finite-difference gradient checks for RMSNorm, SwiGLU and RoPE, plus the
// memory-thrifty recompute identities the paper's §5 relies on.

#include <gtest/gtest.h>

#include <cmath>

#include "src/numerics/norm_act.hpp"
#include "src/numerics/rope.hpp"
#include "src/util/rng.hpp"

namespace slim::num {
namespace {

double dot(const Tensor& a, const Tensor& b) {
  double sum = 0.0;
  for (std::int64_t i = 0; i < a.size(); ++i) {
    sum += static_cast<double>(a.data()[i]) * b.data()[i];
  }
  return sum;
}

TEST(RmsNormTest, NormalizesRows) {
  Rng rng(1);
  const Tensor x = Tensor::randn(4, 16, rng, 2.0f);
  Tensor w(1, 16);
  w.fill(1.0f);
  const Tensor y = rmsnorm(x, w);
  for (std::int64_t r = 0; r < 4; ++r) {
    double ms = 0.0;
    for (std::int64_t c = 0; c < 16; ++c) {
      ms += static_cast<double>(y.at(r, c)) * y.at(r, c);
    }
    EXPECT_NEAR(ms / 16.0, 1.0, 1e-3);
  }
}

TEST(RmsNormTest, WeightScales) {
  Rng rng(2);
  const Tensor x = Tensor::randn(2, 8, rng, 1.0f);
  Tensor w1(1, 8), w2(1, 8);
  w1.fill(1.0f);
  w2.fill(2.0f);
  const Tensor y1 = rmsnorm(x, w1);
  const Tensor y2 = rmsnorm(x, w2);
  for (std::int64_t i = 0; i < y1.size(); ++i) {
    EXPECT_NEAR(y2.data()[i], 2.0f * y1.data()[i], 1e-6f);
  }
}

TEST(RmsNormTest, GradCheck) {
  Rng rng(3);
  Tensor x = Tensor::randn(3, 8, rng, 1.0f);
  Tensor w = Tensor::randn(1, 8, rng, 0.5f);
  for (std::int64_t i = 0; i < w.size(); ++i) w.data()[i] += 1.0f;
  const Tensor dy = Tensor::randn(3, 8, rng, 1.0f);

  Tensor dw(1, 8);
  const Tensor dx = rmsnorm_bwd(x, w, dy, dw);

  const float eps = 1e-3f;
  for (std::int64_t i = 0; i < x.size(); i += 2) {
    const float orig = x.data()[i];
    x.data()[i] = orig + eps;
    const double hi = dot(rmsnorm(x, w), dy);
    x.data()[i] = orig - eps;
    const double lo = dot(rmsnorm(x, w), dy);
    x.data()[i] = orig;
    EXPECT_NEAR((hi - lo) / (2.0 * eps), dx.data()[i], 5e-3);
  }
  for (std::int64_t i = 0; i < w.size(); ++i) {
    const float orig = w.data()[i];
    w.data()[i] = orig + eps;
    const double hi = dot(rmsnorm(x, w), dy);
    w.data()[i] = orig - eps;
    const double lo = dot(rmsnorm(x, w), dy);
    w.data()[i] = orig;
    EXPECT_NEAR((hi - lo) / (2.0 * eps), dw.data()[i], 5e-3);
  }
}

TEST(SwigluTest, MatchesDefinition) {
  Rng rng(4);
  const Tensor g = Tensor::randn(2, 6, rng, 1.5f);
  const Tensor u = Tensor::randn(2, 6, rng, 1.5f);
  const Tensor out = swiglu(g, u);
  for (std::int64_t i = 0; i < out.size(); ++i) {
    const float gi = g.data()[i];
    const float expected = gi / (1.0f + std::exp(-gi)) * u.data()[i];
    EXPECT_NEAR(out.data()[i], expected, 1e-6f);
  }
}

TEST(SwigluTest, GradCheck) {
  Rng rng(5);
  Tensor g = Tensor::randn(2, 6, rng, 1.0f);
  Tensor u = Tensor::randn(2, 6, rng, 1.0f);
  const Tensor dout = Tensor::randn(2, 6, rng, 1.0f);
  Tensor dg, du;
  swiglu_bwd(g, u, dout, dg, du);
  const float eps = 1e-3f;
  for (std::int64_t i = 0; i < g.size(); ++i) {
    float orig = g.data()[i];
    g.data()[i] = orig + eps;
    const double hi = dot(swiglu(g, u), dout);
    g.data()[i] = orig - eps;
    const double lo = dot(swiglu(g, u), dout);
    g.data()[i] = orig;
    EXPECT_NEAR((hi - lo) / (2.0 * eps), dg.data()[i], 3e-3);

    orig = u.data()[i];
    u.data()[i] = orig + eps;
    const double hi2 = dot(swiglu(g, u), dout);
    u.data()[i] = orig - eps;
    const double lo2 = dot(swiglu(g, u), dout);
    u.data()[i] = orig;
    EXPECT_NEAR((hi2 - lo2) / (2.0 * eps), du.data()[i], 3e-3);
  }
}

TEST(SiluTest, GradMatchesFiniteDifference) {
  for (float x : {-3.0f, -1.0f, 0.0f, 0.5f, 2.0f}) {
    const float eps = 1e-3f;
    const float fd = (silu(x + eps) - silu(x - eps)) / (2.0f * eps);
    EXPECT_NEAR(silu_grad(x), fd, 1e-3f);
  }
}

TEST(RopeTest, PreservesNorm) {
  Rng rng(6);
  Tensor x = Tensor::randn(5, 8, rng, 1.0f);
  const float before = x.l2norm();
  rope_apply(x, 17);
  EXPECT_NEAR(x.l2norm(), before, 1e-4f);
}

TEST(RopeTest, BackwardIsInverse) {
  Rng rng(7);
  Tensor x = Tensor::randn(5, 8, rng, 1.0f);
  const Tensor orig = x;
  rope_apply(x, 123);
  rope_apply_bwd(x, 123);
  EXPECT_LT(x.max_abs_diff(orig), 1e-5f);
}

TEST(RopeTest, PositionZeroFirstPairIdentity) {
  // theta = 0 at position 0 regardless of frequency: rotation is identity.
  Rng rng(8);
  Tensor x = Tensor::randn(1, 8, rng, 1.0f);
  const Tensor orig = x;
  rope_apply(x, 0);
  EXPECT_LT(x.max_abs_diff(orig), 1e-6f);
}

TEST(RopeTest, RelativePositionProperty) {
  // <rope(q, i), rope(k, j)> depends only on i - j: shifting both
  // positions by the same amount keeps all dot products.
  Rng rng(9);
  const Tensor q0 = Tensor::randn(1, 8, rng, 1.0f);
  const Tensor k0 = Tensor::randn(1, 8, rng, 1.0f);
  auto rotated_dot = [&](std::int64_t qi, std::int64_t kj) {
    Tensor q = q0, k = k0;
    rope_apply(q, qi);
    rope_apply(k, kj);
    double sum = 0.0;
    for (std::int64_t c = 0; c < 8; ++c) {
      sum += static_cast<double>(q.at(0, c)) * k.at(0, c);
    }
    return sum;
  };
  EXPECT_NEAR(rotated_dot(5, 2), rotated_dot(105, 102), 1e-4);
  EXPECT_NEAR(rotated_dot(9, 9), rotated_dot(0, 0), 1e-4);
}

TEST(RopeTest, GradCheck) {
  Rng rng(10);
  Tensor x = Tensor::randn(2, 4, rng, 1.0f);
  const Tensor dout = Tensor::randn(2, 4, rng, 1.0f);
  // d/dx of <rope(x), dout> is rope_bwd(dout).
  Tensor grad = dout;
  rope_apply_bwd(grad, 7);
  const float eps = 1e-3f;
  for (std::int64_t i = 0; i < x.size(); ++i) {
    const float orig = x.data()[i];
    auto value = [&]() {
      Tensor y = x;
      rope_apply(y, 7);
      return dot(y, dout);
    };
    x.data()[i] = orig + eps;
    const double hi = value();
    x.data()[i] = orig - eps;
    const double lo = value();
    x.data()[i] = orig;
    EXPECT_NEAR((hi - lo) / (2.0 * eps), grad.data()[i], 2e-3);
  }
}

}  // namespace
}  // namespace slim::num
