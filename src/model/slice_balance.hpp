#pragma once

// Cost-balanced slice boundaries.
//
// Uniform token splits are cost-imbalanced under causal attention: slice i
// of a uniform layout attends kv_prefix = i * slice_len keys, so later
// slices cost more (paper §4.2.1). The balanced solver equalizes per-slice
// causal-attention FLOPs instead of token counts, reusing the cost model's
// attn_block_flops. Because the causal-attention FLOPs of slice [a, b) are
// exactly F(b) - F(a) for the prefix function
//     F(x) = attn_block_flops(x, causal_kv_equiv(x, 0))
// (the full causal triangle over the first x tokens), equalizing slice
// costs reduces to inverting F at equally spaced targets — early slices
// come out longer, later slices shorter.

#include <cstdint>
#include <vector>

#include "src/core/slice_layout.hpp"
#include "src/model/flops.hpp"

namespace slim::model {

/// Boundaries for one sequence: n slices of (approximately) equal causal
/// attention FLOPs, snapped to multiples of `align` tokens.
core::SliceLayout balanced_layout(const CostModel& cost, std::int64_t seq,
                                  int n, std::int64_t align = 1);

/// Balanced layouts for a batch of per-microbatch sequence lengths.
std::vector<core::SliceLayout> balanced_layouts(
    const CostModel& cost, const std::vector<std::int64_t>& mb_seqs, int n,
    std::int64_t align = 1);

}  // namespace slim::model
