#include "src/fault/fault_sim.hpp"

#include <algorithm>
#include <sstream>

#include "src/util/logging.hpp"
#include "src/util/rng.hpp"

namespace slim::fault {

namespace {

bool filter_matches(OpFilter filter, sim::OpClass cls) {
  switch (filter) {
    case OpFilter::Any:
      return true;
    case OpFilter::Forward:
      return cls == sim::OpClass::Forward || cls == sim::OpClass::Recompute ||
             cls == sim::OpClass::VocabForward;
    case OpFilter::Backward:
      return cls == sim::OpClass::Backward ||
             cls == sim::OpClass::BackwardInput ||
             cls == sim::OpClass::BackwardWeight ||
             cls == sim::OpClass::VocabBackward;
    case OpFilter::Comm:
      return cls == sim::OpClass::Send || cls == sim::OpClass::ExchangeSend ||
             cls == sim::OpClass::Collective;
  }
  return false;
}

bool is_transfer(sim::OpClass cls) {
  return cls == sim::OpClass::Send || cls == sim::OpClass::ExchangeSend;
}

/// Deterministic per-(plan, device, op) jitter draw in [-1, 1].
double jitter_draw(std::uint64_t seed, int device, std::int64_t index) {
  Rng rng(seed ^ (0x9e3779b97f4a7c15ULL * static_cast<std::uint64_t>(device + 2)) ^
          (0xbf58476d1ce4e5b9ULL * static_cast<std::uint64_t>(index + 1)));
  return rng.next_double() * 2.0 - 1.0;
}

}  // namespace

double apply_to_graph(sim::OpGraph& graph, const FaultPlan& plan,
                      FaultReport* report) {
  if (plan.stragglers.empty() && plan.links.empty()) return 0.0;

  struct Tally {
    std::int64_t ops = 0;
    double seconds = 0.0;
  };
  std::vector<Tally> straggler_tally(plan.stragglers.size());
  std::vector<Tally> link_tally(plan.links.size());

  // Per-device event counter over all ops in insertion order — the index
  // space straggler windows select on (comm ops count on the sender).
  std::vector<std::int64_t> next_index;
  double injected = 0.0;

  const std::size_t n = graph.ops().size();
  for (std::size_t i = 0; i < n; ++i) {
    sim::Op& op = graph.op(static_cast<sim::OpId>(i));
    if (static_cast<std::size_t>(op.device) >= next_index.size()) {
      next_index.resize(static_cast<std::size_t>(op.device) + 1, 0);
    }
    const std::int64_t index = next_index[static_cast<std::size_t>(op.device)]++;

    for (std::size_t f = 0; f < plan.stragglers.size(); ++f) {
      const Straggler& s = plan.stragglers[f];
      if (s.device != -1 && s.device != op.device) continue;
      if (!filter_matches(s.ops, op.cls)) continue;
      if (index < s.from_op || (s.to_op >= 0 && index > s.to_op)) continue;
      double factor = s.factor;
      if (s.jitter > 0.0) {
        factor = 1.0 + (s.factor - 1.0) *
                           (1.0 + s.jitter * jitter_draw(plan.seed, op.device,
                                                         index));
        factor = std::max(1.0, factor);
      }
      const double extra = op.duration * (factor - 1.0);
      op.duration += extra;
      injected += extra;
      ++straggler_tally[f].ops;
      straggler_tally[f].seconds += extra;
    }

    if (!is_transfer(op.cls)) continue;
    for (std::size_t f = 0; f < plan.links.size(); ++f) {
      const LinkFault& l = plan.links[f];
      if (l.src != -1 && l.src != op.device) continue;
      const double extra =
          op.duration * (l.slowdown - 1.0) + l.extra_latency;
      op.duration += extra;
      injected += extra;
      ++link_tally[f].ops;
      link_tally[f].seconds += extra;
    }
  }

  if (report != nullptr) {
    for (std::size_t f = 0; f < plan.stragglers.size(); ++f) {
      if (straggler_tally[f].ops == 0) continue;
      const Straggler& s = plan.stragglers[f];
      std::ostringstream detail;
      detail << "x" << s.factor << " on " << op_filter_name(s.ops) << " ops, "
             << straggler_tally[f].ops << " ops slowed by "
             << straggler_tally[f].seconds << " s total";
      report->events.push_back({FaultEvent::Kind::Straggler, s.device, 0.0,
                                s.from_op, detail.str()});
    }
    for (std::size_t f = 0; f < plan.links.size(); ++f) {
      if (link_tally[f].ops == 0) continue;
      const LinkFault& l = plan.links[f];
      std::ostringstream detail;
      detail << "x" << l.slowdown << " +" << l.extra_latency << " s, "
             << link_tally[f].ops << " transfers slowed by "
             << link_tally[f].seconds << " s total";
      report->events.push_back(
          {FaultEvent::Kind::LinkDegraded, l.src, 0.0, -1, detail.str()});
    }
    report->injected_seconds += injected;
  }
  return injected;
}

double recovery_overhead(const sim::OpGraph& graph,
                         const sim::ExecResult& exec, const FaultPlan& plan,
                         FaultReport* report) {
  double overhead = 0.0;
  for (const Crash& crash : plan.crashes) {
    // The device's at_op-th compute op in program order, clamped to its
    // last one (a crash "past the end" fails during the final pass).
    sim::OpId crashing = sim::kInvalidOp;
    std::int64_t seen = 0;
    for (const sim::Op& op : graph.ops()) {
      if (op.device != crash.device || !sim::is_compute_class(op.cls)) {
        continue;
      }
      crashing = op.id;
      if (seen++ == crash.at_op) break;
    }
    SLIM_CHECK(crashing != sim::kInvalidOp,
               "crash device " + std::to_string(crash.device) +
                   " has no compute ops");
    const double crash_time =
        exec.timings[static_cast<std::size_t>(crashing)].end;
    // Checkpoint-restart from the iteration boundary: everything executed
    // since t=0 is lost, plus the respawn cost; the iteration then replays
    // in full (the caller adds the makespan once).
    const double cost = crash_time + crash.restart_cost;
    overhead += cost;
    if (report != nullptr) {
      std::ostringstream detail;
      detail << "lost " << crash_time << " s in-flight + "
             << crash.restart_cost << " s restart; iteration replayed";
      report->events.push_back({FaultEvent::Kind::Crash, crash.device,
                                crash_time, crash.at_op, detail.str()});
    }
  }
  if (report != nullptr) report->recovery_overhead += overhead;
  return overhead;
}

}  // namespace slim::fault
