#pragma once

// Structured results of the static analysis passes (schedule_check,
// graph_check). Each finding names the rule that fired, where it fired and
// why; callers decide whether errors are fatal (sched::compile aborts on
// them, slimpipe_lint reports them and sets the exit code).

#include <string>
#include <vector>

namespace slim::analysis {

enum class Severity : int { Note = 0, Warning = 1, Error = 2 };

const char* severity_name(Severity severity);

struct Finding {
  Severity severity = Severity::Error;
  std::string rule_id;   // stable identifier, e.g. "sched-backward-order"
  std::string location;  // "dev 2 pass 17" / "op 134 (dev 1 mb 3 ...)"
  std::string message;   // what invariant broke and how
};

/// True when any finding has Error severity.
bool has_errors(const std::vector<Finding>& findings);

/// Number of findings at exactly `severity`.
std::size_t count(const std::vector<Finding>& findings, Severity severity);

/// True when some finding carries `rule_id` (test helper).
bool has_rule(const std::vector<Finding>& findings, const std::string& rule_id);

/// Renders the findings as an aligned table (via util::table).
std::string render(const std::vector<Finding>& findings);

/// One line: "<n> findings (<e> errors, <w> warnings)" or "clean".
std::string summary(const std::vector<Finding>& findings);

}  // namespace slim::analysis
