
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/numerics/attention.cpp" "src/numerics/CMakeFiles/slim_numerics.dir/attention.cpp.o" "gcc" "src/numerics/CMakeFiles/slim_numerics.dir/attention.cpp.o.d"
  "/root/repo/src/numerics/context_parallel.cpp" "src/numerics/CMakeFiles/slim_numerics.dir/context_parallel.cpp.o" "gcc" "src/numerics/CMakeFiles/slim_numerics.dir/context_parallel.cpp.o.d"
  "/root/repo/src/numerics/cross_entropy.cpp" "src/numerics/CMakeFiles/slim_numerics.dir/cross_entropy.cpp.o" "gcc" "src/numerics/CMakeFiles/slim_numerics.dir/cross_entropy.cpp.o.d"
  "/root/repo/src/numerics/moe.cpp" "src/numerics/CMakeFiles/slim_numerics.dir/moe.cpp.o" "gcc" "src/numerics/CMakeFiles/slim_numerics.dir/moe.cpp.o.d"
  "/root/repo/src/numerics/norm_act.cpp" "src/numerics/CMakeFiles/slim_numerics.dir/norm_act.cpp.o" "gcc" "src/numerics/CMakeFiles/slim_numerics.dir/norm_act.cpp.o.d"
  "/root/repo/src/numerics/rope.cpp" "src/numerics/CMakeFiles/slim_numerics.dir/rope.cpp.o" "gcc" "src/numerics/CMakeFiles/slim_numerics.dir/rope.cpp.o.d"
  "/root/repo/src/numerics/tensor.cpp" "src/numerics/CMakeFiles/slim_numerics.dir/tensor.cpp.o" "gcc" "src/numerics/CMakeFiles/slim_numerics.dir/tensor.cpp.o.d"
  "/root/repo/src/numerics/transformer_block.cpp" "src/numerics/CMakeFiles/slim_numerics.dir/transformer_block.cpp.o" "gcc" "src/numerics/CMakeFiles/slim_numerics.dir/transformer_block.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/slim_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
