# Empty dependencies file for test_context_parallel.
# This may be replaced when dependencies are built.
