#include "src/parallel/config.hpp"

#include <sstream>

#include "src/util/logging.hpp"
#include "src/util/math.hpp"

namespace slim::parallel {

std::string HybridConfig::describe() const {
  std::ostringstream out;
  out << core::scheme_name(scheme) << " t=" << t << " c=" << c << " d=" << d;
  if (e > 1) out << " e=" << e;
  out << " p=" << p;
  if (v > 1) out << " v=" << v;
  if (n > 1) out << " n=" << n;
  out << " ckpt=" << model::to_string(policy);
  if (offload_ratio > 0.0) {
    out << " offload=" << static_cast<int>(offload_ratio * 100.0) << "%";
  }
  return out.str();
}

std::string validate(const HybridConfig& cfg,
                     const model::TransformerConfig& model, int num_gpus,
                     std::int64_t seq, std::int64_t tokens_per_iter) {
  std::ostringstream err;
  if (cfg.world() != num_gpus) {
    err << "t*c*d*p != world size; ";
  }
  if (model.heads % cfg.t != 0 || model.kv_heads() % cfg.t != 0) {
    err << "attention heads not divisible by TP; ";
  }
  if (cfg.t > 8) err << "TP exceeds the NVLink domain; ";
  if (model.layers % (cfg.p * cfg.v) != 0) {
    err << "layers not divisible by p*v; ";
  }
  if (cfg.e > 1) {
    if (!model.is_moe()) {
      err << "expert parallelism on a dense model; ";
    } else if (model.experts % cfg.e != 0) {
      err << "experts not divisible by e; ";
    } else if ((cfg.c * cfg.d) % cfg.e != 0) {
      err << "e must divide c*d; ";
    }
  }
  const std::int64_t m = cfg.microbatches(seq, tokens_per_iter);
  if (m < 1) {
    err << "global batch smaller than data parallelism; ";
  }
  if (cfg.scheme == core::Scheme::Interleaved1F1B && cfg.v > 1 &&
      m % cfg.p != 0) {
    err << "interleaved 1F1B needs microbatches divisible by p; ";
  }
  if (cfg.scheme == core::Scheme::SlimPipe ||
      cfg.scheme == core::Scheme::TeraPipe) {
    if (cfg.n % cfg.p != 0) err << "n must be a multiple of p; ";
    // seq % n != 0 is legal (the slice layout spreads the remainder); each
    // slice only needs at least one CP-aligned block of tokens.
    if (seq % cfg.c == 0 && seq / cfg.c < cfg.n) {
      err << "fewer CP-aligned token blocks than slices; ";
    }
  } else if (cfg.n != 1) {
    err << "only SlimPipe/TeraPipe slice sequences; ";
  }
  if ((cfg.scheme == core::Scheme::ZBV || cfg.scheme == core::Scheme::VHalf ||
       cfg.scheme == core::Scheme::VMin) &&
      cfg.v != 2) {
    err << "V-shaped schemes use v == 2; ";
  }
  if (seq % cfg.c != 0) err << "sequence not divisible by CP; ";
  return err.str();
}

sched::PipelineSpec make_spec(const HybridConfig& cfg,
                              const model::TransformerConfig& model,
                              const model::GpuSpec& gpu, std::int64_t seq,
                              std::int64_t tokens_per_iter) {
  sched::PipelineSpec spec;
  spec.cfg = model;
  spec.gpu = gpu;
  spec.shard = model::Shard{cfg.t, cfg.c, cfg.e, 8};
  spec.policy = cfg.policy;
  spec.p = static_cast<int>(cfg.p);
  spec.v = cfg.v;
  spec.n = cfg.n;
  spec.seq = seq;
  spec.m = static_cast<int>(cfg.microbatches(seq, tokens_per_iter));
  spec.d = cfg.d;
  spec.offload.ratio = cfg.offload_ratio;
  spec.offload.pcie_bandwidth = gpu.pcie_bandwidth;
  if (cfg.scheme == core::Scheme::SlimPipe) {
    spec.vocab_parallel = true;
    spec.context_exchange = true;
  }
  return spec;
}

}  // namespace slim::parallel
