// Schedule visualizer: renders the paper's timeline figures as ASCII art —
// the default 1F1B schedule vs SlimPipe (Figure 4), the interleaved form
// (Figure 5), and the imbalance bubbles healed by context exchange
// (Figure 7). Optionally dumps a Chrome trace.
//
// Usage:
//   ./build/examples/schedule_visualizer [--trace out.json]

#include <cstdio>
#include <cstring>
#include <fstream>

#include "src/core/runner.hpp"
#include "src/core/slimpipe.hpp"
#include "src/model/transformer.hpp"
#include "src/obs/trace.hpp"
#include "src/sched/builder.hpp"
#include "src/sched/schemes.hpp"
#include "src/sim/trace.hpp"
#include "src/util/units.hpp"

using namespace slim;

namespace {

sched::PipelineSpec base() {
  sched::PipelineSpec spec;
  spec.cfg = model::llama13b();
  spec.gpu = model::hopper80();
  spec.shard = {8, 1, 1, 8};
  spec.policy = model::CheckpointPolicy::None;
  spec.p = 4;
  spec.m = 2;
  spec.seq = 128 * 1024;
  return spec;
}

void show(const char* title, const sched::ScheduleResult& result) {
  std::printf("--- %s ---\n", title);
  std::printf("iteration %s | bubbles %s | MFU %s | peak %s\n",
              format_time(result.iteration_time).c_str(),
              format_percent(result.bubble_fraction).c_str(),
              format_percent(result.mfu).c_str(),
              format_bytes(result.peak_memory).c_str());
  std::printf("%s\n", result.ascii_timeline.c_str());
}

}  // namespace

int main(int argc, char** argv) {
  const char* trace_path = nullptr;
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], "--trace") == 0) trace_path = argv[i + 1];
  }

  // Figure 4 (top): the default 1F1B schedule.
  auto f1b = base();
  f1b.m = 4;
  show("default 1F1B (Figure 4, top)",
       core::run_scheme(core::Scheme::OneF1B, f1b, true));

  // Figure 4 (bottom): SlimPipe with 8 slices per microbatch.
  auto slim4 = base();
  slim4.m = 4;
  slim4.n = 8;
  slim4.vocab_parallel = true;
  slim4.context_exchange = true;
  show("SlimPipe, n=8 (Figure 4, bottom)",
       core::run_scheme(core::Scheme::SlimPipe, slim4, true));

  // Figure 5: the interleaving form, 2 stages per device, 2 microbatches.
  auto slim5 = base();
  slim5.n = 8;
  slim5.v = 2;
  slim5.vocab_parallel = true;
  slim5.context_exchange = true;
  show("interleaved SlimPipe, v=2 (Figure 5)",
       core::run_scheme(core::Scheme::SlimPipe, slim5, true));

  // Figure 7: imbalance bubbles without context exchange.
  auto imbalanced = base();
  imbalanced.seq = 512 * 1024;
  imbalanced.n = 16;
  imbalanced.vocab_parallel = true;
  imbalanced.context_exchange = false;
  show("uniform slicing without exchange (Figure 7)",
       core::run_scheme(core::Scheme::SlimPipe, imbalanced, true));
  imbalanced.context_exchange = true;
  show("with attention context exchange (Figure 8 applied)",
       core::run_scheme(core::Scheme::SlimPipe, imbalanced, true));

  if (trace_path != nullptr) {
    // Re-build the Figure 5 schedule and export a Chrome trace.
    auto spec = slim5;
    spec.layout = sched::StageLayoutKind::Interleaved;
    spec.retain_kv = true;
    const auto programs = core::slimpipe_programs(spec);
    auto built = sched::compile(spec, programs, nullptr);
    const auto exec = sim::execute(*built.graph);
    std::ofstream out(trace_path);
    out << obs::chrome_trace_json(obs::trace_from_sim(*built.graph, exec));
    std::printf("Chrome trace written to %s (open chrome://tracing)\n",
                trace_path);
  }
  return 0;
}
