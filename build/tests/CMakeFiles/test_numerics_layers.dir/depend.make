# Empty dependencies file for test_numerics_layers.
# This may be replaced when dependencies are built.
