// Figures 7–9: imbalance bubbles from causal attention under uniform
// slicing, their elimination by attention context exchange (Figure 8's
// rebalancing), and the vocabulary-parallelism ablation (Figure 9's output
// GEMM). Timelines are printed so the bubble shapes are visible.

#include "bench_common.hpp"

using namespace slim;

namespace {

sched::PipelineSpec fig7_spec() {
  auto spec = slimbench::base_spec(model::llama13b(), 8, 4, 512 * 1024, 2);
  spec.n = 16;
  spec.vocab_parallel = true;
  return spec;
}

}  // namespace

static void BM_Figure7Exchange(benchmark::State& state) {
  auto spec = fig7_spec();
  spec.context_exchange = state.range(0) != 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::run_scheme(core::Scheme::SlimPipe, spec));
  }
}
BENCHMARK(BM_Figure7Exchange)->Arg(0)->Arg(1)->Unit(benchmark::kMillisecond);

int main(int argc, char** argv) {
  slimbench::open_report("fig7_imbalance");
  slimbench::print_banner(
      "Figure 7 + 4.2 — imbalance bubbles and context exchange",
      "Llama 13B, t=8, p=4, m=2, n=16, 512K context",
      "without exchange, later slices straggle and bubbles pervade; with "
      "exchange the passes align and the bubbles vanish");

  auto spec = fig7_spec();
  spec.context_exchange = false;
  const auto off = core::run_scheme(core::Scheme::SlimPipe, spec, true);
  spec.context_exchange = true;
  const auto on = core::run_scheme(core::Scheme::SlimPipe, spec, true);

  Table table({"context exchange", "iteration", "bubble", "MFU",
               "exchange volume (max device)"});
  table.add_row({"off", format_time(off.iteration_time),
                 format_percent(off.bubble_fraction), format_percent(off.mfu),
                 "-"});
  table.add_row({"on", format_time(on.iteration_time),
                 format_percent(on.bubble_fraction), format_percent(on.mfu),
                 format_bytes(on.exchange_bytes_max_device)});
  slimbench::print_table("MFU with/without KV exchange", table);
  slimbench::add_run("exchange off", off);
  slimbench::add_run("exchange on", on);
  std::printf("timeline WITHOUT exchange (imbalance bubbles):\n%s\n",
              off.ascii_timeline.c_str());
  std::printf("timeline WITH exchange:\n%s\n", on.ascii_timeline.c_str());

  // Figure 9: output-layer GEMM on the last device vs distributed.
  slimbench::print_banner(
      "Figure 9 — vocabulary parallelism ablation",
      "same configuration, context exchange on",
      "the last-stage GEMM creates mid-pipeline bubbles; distributing the "
      "vocabulary removes them");
  auto vspec = fig7_spec();
  vspec.context_exchange = true;
  vspec.vocab_parallel = false;
  const auto last_dev = core::run_scheme(core::Scheme::SlimPipe, vspec);
  vspec.vocab_parallel = true;
  const auto distributed = core::run_scheme(core::Scheme::SlimPipe, vspec);
  Table vtable({"output layer", "iteration", "bubble", "MFU",
                "last-device memory"});
  vtable.add_row({"last device only", format_time(last_dev.iteration_time),
                  format_percent(last_dev.bubble_fraction),
                  format_percent(last_dev.mfu),
                  format_bytes(last_dev.last_device_memory)});
  vtable.add_row({"distributed (vocab parallel)",
                  format_time(distributed.iteration_time),
                  format_percent(distributed.bubble_fraction),
                  format_percent(distributed.mfu),
                  format_bytes(distributed.last_device_memory)});
  slimbench::print_table("MFU with/without vocab parallelism", vtable);
  slimbench::add_run("vocab last-device", last_dev);
  slimbench::add_run("vocab distributed", distributed);

  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
