file(REMOVE_RECURSE
  "libslim_memory.a"
)
