# Empty dependencies file for slim_parallel.
# This may be replaced when dependencies are built.
