#include "src/dist/socket.hpp"

#include <cerrno>
#include <chrono>
#include <cstring>
#include <string>
#include <thread>

#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include "src/util/logging.hpp"

namespace slim::dist {

void Fd::reset() {
  if (fd_ >= 0) {
    // Best-effort close; EINTR on close must not retry (POSIX leaves the fd
    // state unspecified and Linux has already released it).
    ::close(fd_);
    fd_ = -1;
  }
}

SocketPair make_socket_pair() {
  int fds[2] = {-1, -1};
  const int rc = ::socketpair(AF_UNIX, SOCK_STREAM, 0, fds);
  SLIM_CHECK(rc == 0, std::string("socketpair failed: ") +
                          std::strerror(errno));
  SocketPair pair;
  pair.a = Fd(fds[0]);
  pair.b = Fd(fds[1]);
  return pair;
}

const char* io_status_name(IoStatus status) {
  switch (status) {
    case IoStatus::Ok: return "ok";
    case IoStatus::Eof: return "eof";
    case IoStatus::Torn: return "torn";
    case IoStatus::Corrupt: return "corrupt";
  }
  return "?";
}

bool send_all(int fd, const void* data, std::size_t n) {
  const char* p = static_cast<const char*>(data);
  std::size_t sent = 0;
  while (sent < n) {
    const ssize_t rc = ::send(fd, p + sent, n - sent, MSG_NOSIGNAL);
    if (rc < 0) {
      if (errno == EINTR) continue;
      if (errno == EPIPE || errno == ECONNRESET) return false;
      SLIM_CHECK(false, std::string("socket send failed: ") +
                            std::strerror(errno));
    }
    sent += static_cast<std::size_t>(rc);
  }
  return true;
}

IoStatus recv_all(int fd, void* data, std::size_t n) {
  char* p = static_cast<char*>(data);
  std::size_t got = 0;
  while (got < n) {
    const ssize_t rc = ::recv(fd, p + got, n - got, 0);
    if (rc < 0) {
      if (errno == EINTR) continue;
      if (errno == ECONNRESET) return got == 0 ? IoStatus::Eof : IoStatus::Torn;
      SLIM_CHECK(false, std::string("socket recv failed: ") +
                            std::strerror(errno));
    }
    if (rc == 0) return got == 0 ? IoStatus::Eof : IoStatus::Torn;
    got += static_cast<std::size_t>(rc);
  }
  return IoStatus::Ok;
}

bool poll_readable(int fd, int timeout_ms) {
  struct pollfd pfd;
  pfd.fd = fd;
  pfd.events = POLLIN;
  pfd.revents = 0;
  for (;;) {
    const int rc = ::poll(&pfd, 1, timeout_ms);
    if (rc < 0) {
      if (errno == EINTR) continue;
      SLIM_CHECK(false, std::string("poll failed: ") + std::strerror(errno));
    }
    return rc > 0;
  }
}

std::vector<bool> poll_readable_many(const std::vector<int>& fds,
                                     int timeout_ms) {
  std::vector<struct pollfd> pfds;
  std::vector<std::size_t> slots;
  for (std::size_t i = 0; i < fds.size(); ++i) {
    if (fds[i] < 0) continue;
    struct pollfd pfd;
    pfd.fd = fds[i];
    pfd.events = POLLIN;
    pfd.revents = 0;
    pfds.push_back(pfd);
    slots.push_back(i);
  }
  std::vector<bool> readable(fds.size(), false);
  if (pfds.empty()) {
    // Nothing to wait on: still honor the timeout so callers' cadence
    // (heartbeat ticks, deadline checks) is preserved.
    if (timeout_ms > 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(timeout_ms));
    }
    return readable;
  }
  for (;;) {
    const int rc = ::poll(pfds.data(), pfds.size(), timeout_ms);
    if (rc < 0) {
      if (errno == EINTR) continue;
      SLIM_CHECK(false, std::string("poll failed: ") + std::strerror(errno));
    }
    break;
  }
  for (std::size_t i = 0; i < pfds.size(); ++i) {
    if ((pfds[i].revents & (POLLIN | POLLHUP | POLLERR)) != 0) {
      readable[slots[i]] = true;
    }
  }
  return readable;
}

SocketPair connect_with_retry(int fail_first, int max_attempts,
                              const std::function<void(int)>& on_retry) {
  SLIM_CHECK(max_attempts >= 1, "connect_with_retry needs >= 1 attempt");
  for (int attempt = 1; attempt <= max_attempts; ++attempt) {
    if (attempt <= fail_first) {
      if (on_retry) on_retry(attempt);
      // Bounded backoff: 1, 2, 4, ... ms capped at 16 ms — enough to model
      // a transient listener, short enough for tests.
      const int shift = attempt < 5 ? attempt - 1 : 4;
      std::this_thread::sleep_for(std::chrono::milliseconds(1 << shift));
      continue;
    }
    return make_socket_pair();
  }
  SLIM_CHECK(false, "transport setup failed after " +
                        std::to_string(max_attempts) + " attempts");
  return {};
}

}  // namespace slim::dist
