file(REMOVE_RECURSE
  "CMakeFiles/slim_util.dir/logging.cpp.o"
  "CMakeFiles/slim_util.dir/logging.cpp.o.d"
  "CMakeFiles/slim_util.dir/table.cpp.o"
  "CMakeFiles/slim_util.dir/table.cpp.o.d"
  "CMakeFiles/slim_util.dir/units.cpp.o"
  "CMakeFiles/slim_util.dir/units.cpp.o.d"
  "libslim_util.a"
  "libslim_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/slim_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
