#include "src/obs/trace.hpp"

#include <sstream>
#include <utility>

#include "src/obs/json.hpp"

namespace slim::obs {

namespace {

std::string op_span_name(const sim::Op& op) {
  std::ostringstream name;
  name << sim::op_class_name(op.cls);
  if (op.microbatch >= 0) name << " mb" << op.microbatch;
  if (op.slice >= 0) name << " s" << op.slice;
  if (op.stage >= 0) name << " st" << op.stage;
  return name.str();
}

bool is_transfer_class(sim::OpClass cls) {
  return cls == sim::OpClass::Send || cls == sim::OpClass::ExchangeSend ||
         cls == sim::OpClass::Collective;
}

}  // namespace

Recorder::Recorder() : epoch_(MonoClock::now()) {}

double Recorder::now() const {
  return std::chrono::duration<double>(MonoClock::now() - epoch_).count();
}

void Recorder::set_track_name(int track, std::string name) {
  std::lock_guard<std::mutex> lock(mutex_);
  trace_.track_names[track] = std::move(name);
}

void Recorder::set_track_pid(int track, std::int64_t pid) {
  std::lock_guard<std::mutex> lock(mutex_);
  trace_.track_pids[track] = pid;
}

void Recorder::set_process_name(std::int64_t pid, std::string name) {
  std::lock_guard<std::mutex> lock(mutex_);
  trace_.process_names[pid] = std::move(name);
}

void Recorder::span(int track, std::string name, std::string cat, double start,
                    double end, std::int32_t microbatch, std::int32_t slice,
                    std::int32_t stage) {
  std::lock_guard<std::mutex> lock(mutex_);
  trace_.spans.push_back({track, start, end, std::move(name), std::move(cat),
                          microbatch, slice, stage});
}

void Recorder::instant(int track, std::string name, std::string cat,
                       std::string detail) {
  const double ts = now();
  std::lock_guard<std::mutex> lock(mutex_);
  trace_.instants.push_back(
      {track, ts, std::move(name), std::move(cat), std::move(detail)});
}

void Recorder::counter(int track, std::string name, double value) {
  const double ts = now();
  std::lock_guard<std::mutex> lock(mutex_);
  trace_.counters.push_back({track, ts, std::move(name), value});
}

std::int64_t Recorder::begin_flow(int track, std::string name) {
  const std::int64_t id = next_flow_.fetch_add(1, std::memory_order_relaxed);
  const double ts = now();
  std::lock_guard<std::mutex> lock(mutex_);
  trace_.flows.push_back({id, track, ts, /*begin=*/true, std::move(name)});
  return id;
}

void Recorder::end_flow(std::int64_t id, int track, double ts) {
  std::lock_guard<std::mutex> lock(mutex_);
  trace_.flows.push_back({id, track, ts, /*begin=*/false, {}});
}

void Recorder::flow_point(std::int64_t id, int track, double ts, bool begin,
                          std::string name) {
  std::lock_guard<std::mutex> lock(mutex_);
  trace_.flows.push_back({id, track, ts, begin, std::move(name)});
}

Trace Recorder::take() {
  std::lock_guard<std::mutex> lock(mutex_);
  return std::exchange(trace_, Trace{});
}

Trace Recorder::snapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return trace_;
}

Trace trace_from_sim(const sim::OpGraph& graph, const sim::ExecResult& result) {
  Trace trace;
  const std::vector<sim::Op>& ops = graph.ops();

  // Compute rows first so devices stay on low track ids.
  int num_devices = 0;
  for (const sim::Op& op : ops) {
    num_devices = std::max(num_devices, op.device + 1);
  }
  for (int d = 0; d < num_devices; ++d) {
    trace.track_names[d] = "dev " + std::to_string(d);
  }

  for (const sim::Op& op : ops) {
    const sim::OpTiming& t = result.timings[static_cast<std::size_t>(op.id)];
    TraceSpan span;
    span.start = t.start;
    span.end = t.end;
    span.name = op_span_name(op);
    span.microbatch = op.microbatch;
    span.slice = op.slice;
    span.stage = op.stage;
    if (sim::is_compute_class(op.cls)) {
      span.track = op.device;
      span.cat = kCatCompute;
    } else {
      // Channels / NICs / PCIe engines are FIFO resources, so one track per
      // resource renders without overlapping slices.
      span.track = kAuxTrackBase + op.resource;
      span.cat = is_transfer_class(op.cls) ? kCatComm : kCatHost;
      auto it = trace.track_names.find(span.track);
      if (it == trace.track_names.end()) {
        std::string name =
            op.peer >= 0
                ? "ch d" + std::to_string(op.device) + "->d" +
                      std::to_string(op.peer)
                : (op.cls == sim::OpClass::Other
                       ? "pcie d" + std::to_string(op.device)
                       : "aux d" + std::to_string(op.device));
        trace.track_names.emplace(span.track, std::move(name));
      }
    }
    trace.spans.push_back(std::move(span));
  }

  // Flow arrows: each cross-device transfer links its span to the start of
  // every dependent op on the receiving device. Dependents are found by a
  // single reverse sweep over the explicit edges.
  for (const sim::Op& op : ops) {
    for (const sim::OpId dep : op.deps) {
      const sim::Op& producer = graph.op(dep);
      if (!is_transfer_class(producer.cls) || producer.peer < 0) continue;
      const sim::OpTiming& pt =
          result.timings[static_cast<std::size_t>(producer.id)];
      const sim::OpTiming& ct = result.timings[static_cast<std::size_t>(op.id)];
      const std::int64_t id = static_cast<std::int64_t>(producer.id);
      const std::string name = sim::op_class_name(producer.cls);
      trace.flows.push_back(
          {id, kAuxTrackBase + producer.resource, pt.start, true, name});
      const int dst_track = sim::is_compute_class(op.cls)
                                ? op.device
                                : kAuxTrackBase + op.resource;
      trace.flows.push_back({id, dst_track, ct.start, false, name});
    }
  }
  return trace;
}

void append_fault_events(Trace& trace,
                         const std::vector<fault::FaultEvent>& events) {
  for (const fault::FaultEvent& event : events) {
    TraceInstant instant;
    instant.track = std::max(0, event.device);
    instant.ts = std::max(0.0, event.time);
    instant.name = fault::event_kind_name(event.kind);
    instant.cat = kCatFault;
    instant.detail = event.detail;
    trace.instants.push_back(std::move(instant));
  }
}

std::string chrome_trace_json(const Trace& trace) {
  std::ostringstream out;
  out << "[";
  bool first = true;
  auto sep = [&] {
    if (!first) out << ",";
    first = false;
    out << "\n";
  };

  for (const auto& [pid, name] : trace.process_names) {
    sep();
    out << "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":" << pid
        << ",\"tid\":0,\"args\":{\"name\":" << json_quote(name) << "}}";
  }
  for (const auto& [track, name] : trace.track_names) {
    sep();
    out << "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":"
        << trace.pid_of(track) << ",\"tid\":" << track
        << ",\"args\":{\"name\":" << json_quote(name) << "}}";
  }
  for (const TraceSpan& span : trace.spans) {
    sep();
    out << "{\"name\":" << json_quote(span.name)
        << ",\"cat\":" << json_quote(span.cat) << ",\"ph\":\"X\",\"ts\":"
        << json_number(span.start * 1e6)
        << ",\"dur\":" << json_number((span.end - span.start) * 1e6)
        << ",\"pid\":" << trace.pid_of(span.track) << ",\"tid\":" << span.track;
    if (span.microbatch >= 0 || span.slice >= 0 || span.stage >= 0) {
      out << ",\"args\":{\"mb\":" << span.microbatch
          << ",\"slice\":" << span.slice << ",\"stage\":" << span.stage << "}";
    }
    out << "}";
  }
  for (const TraceInstant& instant : trace.instants) {
    sep();
    out << "{\"name\":" << json_quote(instant.name)
        << ",\"cat\":" << json_quote(instant.cat)
        << ",\"ph\":\"i\",\"s\":\"t\",\"ts\":" << json_number(instant.ts * 1e6)
        << ",\"pid\":" << trace.pid_of(instant.track)
        << ",\"tid\":" << instant.track;
    if (!instant.detail.empty()) {
      out << ",\"args\":{\"detail\":" << json_quote(instant.detail) << "}";
    }
    out << "}";
  }
  for (const TraceCounter& counter : trace.counters) {
    sep();
    out << "{\"name\":" << json_quote(counter.name)
        << ",\"ph\":\"C\",\"ts\":" << json_number(counter.ts * 1e6)
        << ",\"pid\":" << trace.pid_of(counter.track)
        << ",\"tid\":" << counter.track << ",\"args\":{\"value\":"
        << json_number(counter.value) << "}}";
  }
  for (const TraceFlowPoint& flow : trace.flows) {
    sep();
    out << "{\"name\":" << json_quote(flow.name.empty() ? "flow" : flow.name)
        << ",\"cat\":\"flow\",\"ph\":\"" << (flow.begin ? 's' : 'f') << "\"";
    if (!flow.begin) out << ",\"bp\":\"e\"";
    out << ",\"id\":" << flow.id << ",\"ts\":" << json_number(flow.ts * 1e6)
        << ",\"pid\":" << trace.pid_of(flow.track)
        << ",\"tid\":" << flow.track << "}";
  }
  out << "\n]\n";
  return out.str();
}

std::string chrome_trace_json(const sim::OpGraph& graph,
                              const sim::ExecResult& result) {
  return chrome_trace_json(trace_from_sim(graph, result));
}

}  // namespace slim::obs
