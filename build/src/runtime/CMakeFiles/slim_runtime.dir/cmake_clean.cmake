file(REMOVE_RECURSE
  "CMakeFiles/slim_runtime.dir/pipeline_runtime.cpp.o"
  "CMakeFiles/slim_runtime.dir/pipeline_runtime.cpp.o.d"
  "libslim_runtime.a"
  "libslim_runtime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/slim_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
