#pragma once

// Shared helpers for the benchmark harness. Every bench binary regenerates
// one table or figure from the paper's evaluation: it prints the measured
// series (with the paper's qualitative expectation alongside) and registers
// a google-benchmark timer around the core computation.

#include <benchmark/benchmark.h>

#include <cstdint>
#include <string>

#include "src/core/runner.hpp"
#include "src/core/slice.hpp"
#include "src/model/transformer.hpp"
#include "src/obs/report.hpp"
#include "src/parallel/config.hpp"
#include "src/parallel/search.hpp"
#include "src/sched/schemes.hpp"
#include "src/sched/ulysses.hpp"
#include "src/util/table.hpp"
#include "src/util/units.hpp"

namespace slimbench {

inline constexpr std::int64_t kMiTokens = 1024 * 1024;

/// Standard single-node shard spec (8-way TP, the paper's default).
slim::sched::PipelineSpec base_spec(const slim::model::TransformerConfig& cfg,
                                    std::int64_t t, int p, std::int64_t seq,
                                    int m);

/// Opens this binary's machine-readable report. At process exit the
/// accumulated series/runs are written to
/// $SLIMPIPE_RESULTS_DIR (default "results")/bench_<name>.json in the
/// slimpipe-bench-report schema (src/obs/report.hpp) for slimpipe_report.
void open_report(const std::string& name);

/// Prints the bench banner: which paper artifact this regenerates and what
/// shape to expect. Also recorded in the open report's header.
void print_banner(const std::string& artifact, const std::string& setup,
                  const std::string& paper_expectation);

/// Prints a titled table to stdout AND records it as a series in the open
/// report — the single output path every bench uses instead of ad-hoc
/// printf, so terminal output and the JSON report can never diverge.
void print_table(const std::string& title, const slim::Table& table);

/// Records one labelled configuration's ScheduleResult (with its per-stage
/// obs metrics) in the open report's runs.
void add_run(const std::string& label,
             const slim::sched::ScheduleResult& result);

/// "ok" / "OOM" / "--" cell helper.
std::string status_cell(const slim::sched::ScheduleResult& result);

}  // namespace slimbench
