file(REMOVE_RECURSE
  "CMakeFiles/bench_eq2_exchange_volume.dir/bench_common.cpp.o"
  "CMakeFiles/bench_eq2_exchange_volume.dir/bench_common.cpp.o.d"
  "CMakeFiles/bench_eq2_exchange_volume.dir/bench_eq2_exchange_volume.cpp.o"
  "CMakeFiles/bench_eq2_exchange_volume.dir/bench_eq2_exchange_volume.cpp.o.d"
  "bench_eq2_exchange_volume"
  "bench_eq2_exchange_volume.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_eq2_exchange_volume.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
