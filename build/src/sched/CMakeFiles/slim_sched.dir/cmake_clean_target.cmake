file(REMOVE_RECURSE
  "libslim_sched.a"
)
