#pragma once

// Common pipeline-schedule representation.
//
// Every pipeline scheme (GPipe, TeraPipe, 1F1B, interleaved 1F1B, ZB-V,
// V-Half, SlimPipe) is expressed as a per-device ordered list of passes.
// The builder (builder.hpp) compiles passes into a sim::OpGraph with
// durations from the cost model, inter-stage transfers, and byte-exact
// memory deltas; the executor then measures makespan, bubbles and peak
// memory — nothing about pipeline behaviour is assumed in closed form.

#include <cstdint>
#include <string>
#include <vector>

#include "src/core/slice_layout.hpp"
#include "src/memory/offload.hpp"
#include "src/model/activation.hpp"
#include "src/model/flops.hpp"
#include "src/model/hardware.hpp"
#include "src/model/transformer.hpp"
#include "src/obs/metrics.hpp"
#include "src/obs/report.hpp"
#include "src/sim/topology.hpp"

namespace slim::sched {

enum class PassType : std::uint8_t {
  Forward,
  Backward,
  BackwardInput,   // ZB-V: activation-gradient half
  BackwardWeight,  // ZB-V: weight-gradient half
};

struct Pass {
  PassType type = PassType::Forward;
  std::int32_t microbatch = 0;
  std::int32_t slice = 0;  // 0 for unsliced schemes
  std::int32_t chunk = 0;  // local stage chunk on this device, [0, v)
};

/// Program of one pipeline device: passes in execution order.
using DeviceProgram = std::vector<Pass>;

/// How global stages map onto devices.
enum class StageLayoutKind : std::uint8_t {
  Sequential,   // v == 1: stage r on device r
  Interleaved,  // stage s on device s % p (Megatron interleaving)
  VShape,       // ZB-V: device r holds stages r and 2p-1-r
};

struct StageLayout {
  int p = 1;
  int v = 1;
  StageLayoutKind kind = StageLayoutKind::Sequential;

  int num_stages() const { return p * v; }
  int device_of(int stage) const;
  int chunk_of(int stage) const;          // local chunk index on its device
  int stage_of(int device, int chunk) const;
};

/// Full specification of one pipeline-parallel training iteration.
struct PipelineSpec {
  model::TransformerConfig cfg;
  model::GpuSpec gpu;
  model::Shard shard;                       // t, c, e
  model::CheckpointPolicy policy = model::CheckpointPolicy::None;
  model::CpMode cp_mode = model::CpMode::RingKv;

  int p = 1;                                // pipeline size
  int v = 1;                                // stage chunks per device
  StageLayoutKind layout = StageLayoutKind::Sequential;
  std::int64_t seq = 0;                     // sequence (context) length
  int n = 1;                                // slices per sequence
  int m = 1;                                // microbatches per iteration

  /// Per-microbatch slice boundaries for elastic (variable-length)
  /// workloads: exactly m layouts of n slices each when set. Empty means
  /// every microbatch carries the full `seq` tokens split token-uniformly
  /// into n slices (remainder to the first slices, Megatron-style, in
  /// blocks of shard.c tokens) — no token is ever dropped.
  std::vector<core::SliceLayout> layouts;

  bool retain_kv = false;                   // keep K/V of earlier slices
  bool vocab_parallel = false;              // distribute the output layer
  bool context_exchange = false;            // SlimPipe attention rebalance
  /// Adaptive exchange: skip a cohort's rebalancing when the transfer time
  /// would exceed the imbalance it removes (an extension beyond the paper,
  /// ablated in bench_eq2_exchange_volume).
  bool adaptive_exchange = false;
  mem::OffloadModel offload;

  /// Fraction of data-parallel gradient communication that is exposed
  /// (not overlapped with backward); uniform across schemes.
  double dp_exposed_fraction = 0.25;
  std::int64_t d = 1;                       // data-parallel size (optimizer)

  /// Declared cap on simultaneously-live activation units (slices) per
  /// device. 0 = undeclared; when positive, sched::compile enforces it via
  /// the sched-inflight-bound lint rule. core::plan_scheme fills in each
  /// scheme's analytical cap.
  double max_inflight_units = 0.0;

  /// Base layers per stage (uneven splits give the remainder to the first
  /// stages, Megatron-style).
  std::int64_t layers_per_stage() const {
    return cfg.layers / static_cast<std::int64_t>(p * v);
  }

  /// Layers assigned to a specific global stage.
  std::int64_t layers_of_stage(int stage) const {
    const std::int64_t base = layers_per_stage();
    const std::int64_t rem =
        cfg.layers - base * static_cast<std::int64_t>(p * v);
    return base + (stage < rem ? 1 : 0);
  }
  /// Uniform slice length; only meaningful when uniform_slices() holds
  /// (seq % n == 0 and no explicit layouts).
  std::int64_t slice_len() const { return seq / n; }
  StageLayout stage_layout() const { return StageLayout{p, v, layout}; }

  // ---- elastic slice layouts ----

  bool elastic() const { return !layouts.empty(); }
  /// Layout of microbatch mb; resolves the empty-layouts default.
  core::SliceLayout layout_of(int mb) const;
  /// All m layouts with the default resolved.
  std::vector<core::SliceLayout> resolved_layouts() const;
  /// Tokens in microbatch mb (== seq when layouts is empty).
  std::int64_t seq_of(int mb) const;
  /// Tokens across the whole iteration (all m microbatches).
  std::int64_t total_tokens() const;
  /// True when every microbatch resolves to identical equal-length slices
  /// — the shape context exchange's closed-form rebalancing assumes.
  bool uniform_slices() const;

  /// Validates divisibility and structural constraints; returns an error
  /// message or empty string when valid.
  std::string validate() const;
};

/// Everything measured for one simulated iteration.
struct ScheduleResult {
  std::string scheme;
  double iteration_time = 0.0;          // seconds
  double bubble_fraction = 0.0;         // mean over pipeline devices
  double mfu = 0.0;                     // causal-exact model FLOPs basis
  double peak_memory = 0.0;             // max over devices, bytes
  double first_device_memory = 0.0;     // bytes (Fig. 10 reports both)
  double last_device_memory = 0.0;
  std::vector<double> device_peaks;     // bytes per pipeline device
  double exchange_bytes_max_device = 0.0;  // context-exchange volume
  bool oom = false;
  std::string ascii_timeline;           // filled when requested

  // Fault-injection accounting (zero on fault-free runs). iteration_time
  // already includes both components when a FaultPlan was applied.
  double fault_injected_seconds = 0.0;  // straggler/link time added to ops
  double fault_recovery_seconds = 0.0;  // checkpoint-restart replay cost

  /// Per-stage observability breakdown (same shape as the threaded
  /// runtime's rt::PipelineStats::metrics).
  obs::RunMetrics metrics;

  /// Full analytical memory replay (per-device, per-category peaks) — the
  /// prediction side of measured-vs-analytical footprint reconciliation
  /// (mem::reconcile_peaks against the runtime's arena-measured peaks).
  mem::MemoryReport memory;
};

/// Packs a ScheduleResult into the bench-report run shape.
obs::RunRecord to_run_record(const ScheduleResult& result,
                             const std::string& label);

}  // namespace slim::sched
