#pragma once

// Small integer/math helpers shared across the library.

#include <cstdint>
#include <vector>

#include "src/util/logging.hpp"

namespace slim {

/// Ceiling division for non-negative integers.
constexpr std::int64_t ceil_div(std::int64_t a, std::int64_t b) {
  return (a + b - 1) / b;
}

/// Rounds `a` up to the next multiple of `b` (b > 0).
constexpr std::int64_t round_up(std::int64_t a, std::int64_t b) {
  return ceil_div(a, b) * b;
}

constexpr bool divides(std::int64_t a, std::int64_t b) {
  return a != 0 && b % a == 0;
}

constexpr bool is_power_of_two(std::int64_t x) {
  return x > 0 && (x & (x - 1)) == 0;
}

/// All divisors of n in increasing order.
inline std::vector<std::int64_t> divisors(std::int64_t n) {
  SLIM_CHECK(n > 0, "divisors of non-positive value");
  std::vector<std::int64_t> lo, hi;
  for (std::int64_t d = 1; d * d <= n; ++d) {
    if (n % d == 0) {
      lo.push_back(d);
      if (d != n / d) hi.push_back(n / d);
    }
  }
  for (auto it = hi.rbegin(); it != hi.rend(); ++it) lo.push_back(*it);
  return lo;
}

/// Sum of the arithmetic series a, a+1, ..., b (inclusive); 0 if b < a.
constexpr std::int64_t arith_sum(std::int64_t a, std::int64_t b) {
  return (b < a) ? 0 : (a + b) * (b - a + 1) / 2;
}

}  // namespace slim
