file(REMOVE_RECURSE
  "CMakeFiles/test_numerics_tensor.dir/test_numerics_tensor.cpp.o"
  "CMakeFiles/test_numerics_tensor.dir/test_numerics_tensor.cpp.o.d"
  "test_numerics_tensor"
  "test_numerics_tensor.pdb"
  "test_numerics_tensor[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_numerics_tensor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
