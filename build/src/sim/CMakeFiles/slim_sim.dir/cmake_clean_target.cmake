file(REMOVE_RECURSE
  "libslim_sim.a"
)
