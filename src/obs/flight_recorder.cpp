#include "src/obs/flight_recorder.hpp"

#include <algorithm>
#include <cstring>

#include "src/util/table.hpp"

namespace slim::obs {

const char* flight_kind_name(FlightKind kind) {
  switch (kind) {
    case FlightKind::SpanBegin: return "span-begin";
    case FlightKind::SpanEnd: return "span-end";
    case FlightKind::Send: return "send";
    case FlightKind::Recv: return "recv";
    case FlightKind::Commit: return "commit";
    case FlightKind::Fault: return "fault";
    case FlightKind::Mark: return "mark";
  }
  return "?";
}

void FlightEvent::set_label(std::string_view text) {
  const std::size_t n = std::min(text.size(), kLabelSize - 1);
  std::memcpy(label, text.data(), n);
  std::memset(label + n, 0, kLabelSize - n);
}

std::string FlightEvent::label_str() const {
  return std::string(label, strnlen(label, kLabelSize));
}

FlightRecorder::FlightRecorder(std::size_t capacity)
    : ring_(capacity == 0 ? 1 : capacity) {}

void FlightRecorder::record(FlightKind kind, double ts, std::int32_t mb,
                            std::int32_t slice, std::int64_t value,
                            std::string_view label) {
  FlightEvent& slot = ring_[next_seq_ % ring_.size()];
  slot.ts = ts;
  slot.seq = next_seq_;
  slot.kind = kind;
  slot.mb = mb;
  slot.slice = slice;
  slot.value = value;
  slot.set_label(label);
  ++next_seq_;
}

FlightRecorder::Flush FlightRecorder::flush() {
  Flush out;
  const std::uint64_t oldest =
      next_seq_ > ring_.size() ? next_seq_ - ring_.size() : 0;
  const std::uint64_t first = std::max(flushed_, oldest);
  out.dropped = first - flushed_;
  out.events.reserve(static_cast<std::size_t>(next_seq_ - first));
  for (std::uint64_t seq = first; seq < next_seq_; ++seq) {
    out.events.push_back(ring_[seq % ring_.size()]);
  }
  flushed_ = next_seq_;
  return out;
}

std::vector<FlightEvent> FlightRecorder::tail(std::size_t k) const {
  const std::uint64_t oldest =
      next_seq_ > ring_.size() ? next_seq_ - ring_.size() : 0;
  std::uint64_t first = oldest;
  if (next_seq_ - first > k) first = next_seq_ - k;
  std::vector<FlightEvent> out;
  out.reserve(static_cast<std::size_t>(next_seq_ - first));
  for (std::uint64_t seq = first; seq < next_seq_; ++seq) {
    out.push_back(ring_[seq % ring_.size()]);
  }
  return out;
}

std::string render_flight_tail(const std::vector<FlightEvent>& events) {
  Table table({"seq", "t ms", "kind", "mb", "slice", "value", "label"});
  for (const FlightEvent& ev : events) {
    table.add_row({fmt(static_cast<std::int64_t>(ev.seq)),
                   fmt(ev.ts * 1e3, 3), flight_kind_name(ev.kind),
                   fmt(static_cast<std::int64_t>(ev.mb)),
                   fmt(static_cast<std::int64_t>(ev.slice)),
                   fmt(ev.value), ev.label_str()});
  }
  return table.to_string();
}

}  // namespace slim::obs
