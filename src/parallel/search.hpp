#pragma once

// Grid search over hybrid parallelism configurations (paper §6.4: "their
// hybrid parallelism configurations are baked through grid search").
//
// Structurally valid candidates are filtered with a fast analytic memory
// estimate, ranked with an analytic time estimate, and the best few are
// simulated exactly; the winner (highest MFU, no OOM) is returned. The two
// failure statuses mirror Figure 12's markers: NoViableConfig (green
// triangle) and AllOom (red cross).

#include <cstdint>
#include <string>
#include <vector>

#include "src/parallel/config.hpp"

namespace slim::parallel {

enum class SearchStatus : std::uint8_t { Ok, NoViableConfig, AllOom };

const char* to_string(SearchStatus status);

struct SearchOptions {
  std::vector<double> offload_ratios = {0.0};
  int simulate_top_k = 4;
  std::int64_t max_p = 64;
  // Pin dimensions (0 = search freely) — Figure 2 fixes 8-way TP and PP.
  std::int64_t fixed_t = 0;
  std::int64_t fixed_c = 0;
  std::int64_t fixed_p = 0;
  /// Paper §6.1 deployment rule: "TP, CP and EP should be deployed within
  /// a node" — t * c may not exceed the NVLink domain. Table 4 style
  /// cross-node CP escapes this by constructing configs directly.
  std::int64_t max_tc_per_node = 8;
  bool verbose = false;
};

struct SearchResult {
  SearchStatus status = SearchStatus::NoViableConfig;
  HybridConfig best;
  sched::ScheduleResult result;
  int candidates_valid = 0;   // structurally valid
  int candidates_fit = 0;     // passed the memory estimate
  std::string note;
};

SearchResult grid_search(const model::TransformerConfig& model,
                         const model::GpuSpec& gpu, int num_gpus,
                         std::int64_t seq, std::int64_t tokens_per_iter,
                         core::Scheme scheme, const SearchOptions& options = {});

/// Fast analytic peak-memory estimate of a configuration (bytes, worst
/// device).
double estimate_peak_memory(const HybridConfig& cfg,
                            const model::TransformerConfig& model,
                            const model::GpuSpec& gpu, std::int64_t seq,
                            std::int64_t tokens_per_iter);

/// Fast analytic iteration-time estimate (seconds).
double estimate_iteration_time(const HybridConfig& cfg,
                               const model::TransformerConfig& model,
                               const model::GpuSpec& gpu, std::int64_t seq,
                               std::int64_t tokens_per_iter);

/// Figure 2: largest context (multiple of `granularity` tokens) the scheme
/// can train with fixed t and p on t*p GPUs and one microbatch, using the
/// most memory-thrifty settings available to that scheme.
std::int64_t max_supported_context(core::Scheme scheme,
                                   const model::TransformerConfig& model,
                                   const model::GpuSpec& gpu, std::int64_t t,
                                   std::int64_t p,
                                   std::int64_t granularity = 4096,
                                   std::int64_t limit = 16 * 1024 * 1024);

}  // namespace slim::parallel
