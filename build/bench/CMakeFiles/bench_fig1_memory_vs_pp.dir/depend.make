# Empty dependencies file for bench_fig1_memory_vs_pp.
# This may be replaced when dependencies are built.
