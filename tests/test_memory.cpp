// Unit tests for the memory substrate: timeline replay, the chunked KV pool
// (paper §5) and the offload model.

#include <gtest/gtest.h>

#include "src/memory/kv_pool.hpp"
#include "src/memory/offload.hpp"
#include "src/memory/tracker.hpp"
#include "src/sim/executor.hpp"
#include "src/sim/graph.hpp"

namespace slim::mem {
namespace {

TEST(TrackerTest, PeakTracksAllocFreePairs) {
  sim::OpGraph g(sim::make_cluster(1));
  const auto a = g.add_compute(0, 1.0, sim::OpClass::Forward, {});
  g.add_mem(a, {0, kActivation, 100.0, false});
  const auto b = g.add_compute(0, 1.0, sim::OpClass::Forward, {});
  g.add_mem(b, {0, kActivation, 100.0, false});
  const auto c = g.add_compute(0, 1.0, sim::OpClass::Backward, {});
  g.add_mem(c, {0, kActivation, -200.0, true});
  const auto r = sim::execute(g);
  const MemoryReport report = replay_memory(g, r, 1);
  EXPECT_DOUBLE_EQ(report.devices[0].peak, 200.0);
  EXPECT_DOUBLE_EQ(report.devices[0].end, 0.0);
}

TEST(TrackerTest, FreesApplyBeforeAllocsAtSameTime) {
  sim::OpGraph g(sim::make_cluster(1));
  // Two back-to-back ops: first frees 100 at end, second allocates 100 at
  // start — same timestamp. A caching allocator reuses the block, so the
  // peak must stay at 100.
  const auto a = g.add_compute(0, 1.0, sim::OpClass::Forward, {});
  g.add_mem(a, {0, kKvCache, 100.0, false});
  g.add_mem(a, {0, kKvCache, -100.0, true});
  const auto b = g.add_compute(0, 1.0, sim::OpClass::Forward, {});
  g.add_mem(b, {0, kKvCache, 100.0, false});
  const auto r = sim::execute(g);
  const MemoryReport report = replay_memory(g, r, 1);
  (void)b;
  EXPECT_DOUBLE_EQ(report.devices[0].peak, 100.0);
}

TEST(TrackerTest, BaselineCountsTowardPeak) {
  sim::OpGraph g(sim::make_cluster(2));
  const auto a = g.add_compute(0, 1.0, sim::OpClass::Forward, {});
  g.add_mem(a, {0, kActivation, 50.0, false});
  const auto r = sim::execute(g);
  const MemoryReport report =
      replay_memory(g, r, 2, {{0, kParams, 100.0}, {1, kParams, 30.0}});
  EXPECT_DOUBLE_EQ(report.devices[0].peak, 150.0);
  EXPECT_DOUBLE_EQ(report.devices[1].peak, 30.0);
  EXPECT_EQ(report.argmax_device(), 0);
  EXPECT_DOUBLE_EQ(report.max_peak(), 150.0);
}

TEST(TrackerTest, CategoryBreakdownAtPeak) {
  sim::OpGraph g(sim::make_cluster(1));
  const auto a = g.add_compute(0, 1.0, sim::OpClass::Forward, {});
  g.add_mem(a, {0, kActivation, 70.0, false});
  g.add_mem(a, {0, kKvCache, 30.0, false});
  const auto r = sim::execute(g);
  const MemoryReport report = replay_memory(g, r, 1);
  EXPECT_DOUBLE_EQ(report.devices[0].at_peak[kActivation], 70.0);
  EXPECT_DOUBLE_EQ(report.devices[0].at_peak[kKvCache], 30.0);
  EXPECT_NE(report.summary().find("activation"), std::string::npos);
}

TEST(TrackerTest, SameTimestampDeltasReplayDeterministically) {
  // Two zero-duration ops finishing at the same instant, with their deltas
  // attached in reverse op order. The replay orders same-timestamp events
  // by op id (then insertion order), so repeated replays of the same graph
  // must agree event-for-event — peaks, at-peak breakdowns, everything.
  sim::OpGraph g(sim::make_cluster(1));
  const auto a = g.add_compute(0, 0.0, sim::OpClass::Forward, {});
  const auto b = g.add_compute(0, 0.0, sim::OpClass::Forward, {});
  g.add_mem(b, {0, kKvCache, 60.0, false});
  g.add_mem(a, {0, kActivation, 100.0, false});
  const auto r = sim::execute(g);
  const MemoryReport first = replay_memory(g, r, 1);
  const MemoryReport second = replay_memory(g, r, 1);
  EXPECT_DOUBLE_EQ(first.devices[0].peak, 160.0);
  EXPECT_DOUBLE_EQ(first.devices[0].at_peak[kActivation], 100.0);
  EXPECT_DOUBLE_EQ(first.devices[0].at_peak[kKvCache], 60.0);
  EXPECT_DOUBLE_EQ(first.devices[0].peak, second.devices[0].peak);
  EXPECT_DOUBLE_EQ(first.devices[0].peak_time, second.devices[0].peak_time);
  for (int c = 0; c < kNumCategories; ++c) {
    EXPECT_DOUBLE_EQ(first.devices[0].at_peak[static_cast<std::size_t>(c)],
                     second.devices[0].at_peak[static_cast<std::size_t>(c)]);
    EXPECT_DOUBLE_EQ(
        first.devices[0].category_peak[static_cast<std::size_t>(c)],
        second.devices[0].category_peak[static_cast<std::size_t>(c)]);
  }
}

TEST(KvPoolTest, ReusesFreedChunks) {
  ChunkedKvPool pool(1024.0);
  const int a = pool.acquire();
  const int b = pool.acquire();
  EXPECT_EQ(pool.live_chunks(), 2);
  pool.release(b);
  const int c = pool.acquire();
  EXPECT_EQ(c, b);  // LIFO reuse
  (void)a;
  EXPECT_EQ(pool.allocated_chunks(), 2);
  EXPECT_DOUBLE_EQ(pool.wasted_bytes(), 0.0);
}

TEST(KvPoolTest, SlimPipeSteadyStatePatternHasZeroWaste) {
  // Adjacent microbatches: each backward releases one chunk, the next
  // forward acquires one (paper §5 "Chunked KV Cache").
  ChunkedKvPool pool(4096.0);
  std::vector<int> live;
  const int n = 16;
  for (int i = 0; i < n; ++i) live.push_back(pool.acquire());
  for (int mb = 0; mb < 4; ++mb) {
    for (int i = 0; i < n; ++i) {
      pool.release(live.back());
      live.pop_back();
      live.push_back(pool.acquire());
    }
  }
  // Uniform chunks are perfectly reused: the pool never grows past the
  // warm-up allocation and wastes nothing.
  EXPECT_EQ(pool.allocated_chunks(), n);
  EXPECT_EQ(pool.peak_live(), n);
  EXPECT_DOUBLE_EQ(pool.wasted_bytes(), 0.0);
}

TEST(KvPoolTest, DoubleReleaseCaught) {
  ChunkedKvPool pool(1.0);
  const int a = pool.acquire();
  pool.release(a);
  EXPECT_THROW(pool.release(a), std::logic_error);
  EXPECT_THROW(pool.release(99), std::logic_error);
}

TEST(ContiguousKvTest, GrowthFragments) {
  // A growing contiguous buffer with a non-coalescing allocator strands
  // freed blocks; the chunked pool does not (the paper's motivation).
  ContiguousKvModel contiguous(1024.0);
  for (int mb = 0; mb < 3; ++mb) {
    for (int i = 0; i < 8; ++i) contiguous.grow();
    for (int i = 0; i < 8; ++i) contiguous.shrink();
    contiguous.reset();
  }
  EXPECT_GT(contiguous.fragmentation_bytes(), 0.0);

  ChunkedKvPool pool(1024.0);
  for (int mb = 0; mb < 3; ++mb) {
    std::vector<int> chunks;
    for (int i = 0; i < 8; ++i) chunks.push_back(pool.acquire());
    for (int i = 7; i >= 0; --i) pool.release(chunks[static_cast<std::size_t>(i)]);
  }
  EXPECT_DOUBLE_EQ(pool.wasted_bytes(), 0.0);
}

TEST(ContiguousKvTest, TransientDoubleBuffer) {
  ContiguousKvModel model(100.0);
  model.grow();  // alloc 100
  model.grow();  // alloc 200 while 100 still held -> peak reserved >= 300
  EXPECT_GE(model.peak_reserved_bytes(), 300.0);
  EXPECT_DOUBLE_EQ(model.current_bytes(), 200.0);
}

TEST(OffloadTest, Disabled) {
  OffloadModel off;
  EXPECT_FALSE(off.enabled());
  EXPECT_DOUBLE_EQ(off.resident_bytes(100.0), 100.0);
  EXPECT_DOUBLE_EQ(off.exposed_time(1e9, 0.0), 0.0);
}

TEST(OffloadTest, ResidentAndHostSplit) {
  OffloadModel off{0.75, 55e9};
  EXPECT_DOUBLE_EQ(off.resident_bytes(100.0), 25.0);
  EXPECT_DOUBLE_EQ(off.host_bytes(100.0), 75.0);
}

TEST(OffloadTest, ExposureOnlyBeyondComputeWindow) {
  OffloadModel off{1.0, 100e9};  // 100 GB/s
  // 1 GB to move = 10 ms; window 20 ms hides it fully.
  EXPECT_DOUBLE_EQ(off.exposed_time(1e9, 0.020), 0.0);
  // Window 4 ms exposes 6 ms.
  EXPECT_NEAR(off.exposed_time(1e9, 0.004), 0.006, 1e-9);
}

}  // namespace
}  // namespace slim::mem
