// Fault degradation: how gracefully each pipeline scheme absorbs cluster
// misbehaviour. The same deterministic FaultPlan (src/fault) is applied to
// 1F1B, ZB-V and SlimPipe under four scenarios — a persistent mid-pipeline
// straggler, a transient slowdown window, a degraded inter-stage link, and
// a device crash with checkpoint-restart — and the table reports the
// degraded iteration time next to the fault-free baseline.
//
// Expectation: slowdowns scale with how much of the critical path runs on
// the faulted device. SlimPipe's finer slicing gives it more, shorter ops,
// so a *transient* window of fixed op count hurts it less than schemes with
// coarse passes; a *persistent* straggler degrades every scheme by roughly
// the straggler factor's share of the critical path; crash recovery cost is
// schedule-independent (lost wall-clock + restart), so the scheme with the
// shortest iteration also replays the least.

#include "bench_common.hpp"

#include "src/fault/fault_plan.hpp"

using namespace slim;

namespace {

constexpr int kP = 4, kM = 8, kN = 16, kV = 2;
constexpr std::int64_t kSeq = 64 * 1024;

sched::PipelineSpec spec_for(core::Scheme scheme) {
  auto spec = slimbench::base_spec(model::llama13b(), 8, kP, kSeq, kM);
  switch (scheme) {
    case core::Scheme::SlimPipe:
      spec.n = kN;
      spec.v = kV;
      spec.vocab_parallel = true;
      spec.context_exchange = true;
      break;
    default:
      break;
  }
  return spec;
}

struct Scenario {
  const char* name;
  fault::FaultPlan plan;
};

std::vector<Scenario> scenarios() {
  std::vector<Scenario> out;

  {
    Scenario s{"persistent straggler", {}};
    fault::Straggler st;
    st.device = kP / 2;  // mid-pipeline
    st.factor = 1.3;
    s.plan.stragglers.push_back(st);
    out.push_back(std::move(s));
  }
  {
    Scenario s{"transient window", {}};
    fault::Straggler st;
    st.device = kP / 2;
    st.factor = 2.0;
    st.jitter = 0.25;
    st.from_op = 8;
    st.to_op = 40;  // a fixed op-count window, not a fixed wall-clock one
    s.plan.seed = 7;
    s.plan.stragglers.push_back(st);
    out.push_back(std::move(s));
  }
  {
    Scenario s{"slow link", {}};
    fault::LinkFault link;
    link.src = 1;
    link.slowdown = 4.0;
    link.extra_latency = 1e-4;
    s.plan.links.push_back(link);
    out.push_back(std::move(s));
  }
  {
    Scenario s{"crash + restart", {}};
    fault::Crash crash;
    crash.device = kP - 1;
    crash.at_op = 48;  // ~60% into the last device's compute sequence
    crash.restart_cost = 5.0;
    s.plan.crashes.push_back(crash);
    out.push_back(std::move(s));
  }
  return out;
}

const std::vector<core::Scheme> kSchemes = {
    core::Scheme::OneF1B, core::Scheme::ZBV, core::Scheme::SlimPipe};

}  // namespace

static void BM_FaultDegradation(benchmark::State& state) {
  const auto scens = scenarios();
  for (auto _ : state) {
    for (const auto scheme : kSchemes) {
      for (const auto& scenario : scens) {
        benchmark::DoNotOptimize(core::run_scheme_faulted(
            scheme, spec_for(scheme), scenario.plan));
      }
    }
  }
}
BENCHMARK(BM_FaultDegradation)->Unit(benchmark::kMillisecond);

int main(int argc, char** argv) {
  slimbench::open_report("fault_degradation");
  slimbench::print_banner(
      "Fault degradation — scheme robustness under a shared fault plan",
      "Llama 13B, t=8, p=4, m=8, 64K context; straggler x1.3, transient "
      "x2.0 window, link x4, crash at ~60% + 5 s restart",
      "SlimPipe keeps the shortest degraded iteration across scenarios; "
      "transient windows of fixed op count cost it the least because its "
      "slice-level ops are the shortest");

  Table table({"scheme", "scenario", "iteration", "injected", "recovery",
               "slowdown"});
  for (const auto scheme : kSchemes) {
    const auto baseline = core::run_scheme(scheme, spec_for(scheme));
    table.add_row({core::scheme_name(scheme), "fault-free",
                   format_time(baseline.iteration_time), "--", "--", "x1.00"});
    for (const auto& scenario : scenarios()) {
      const auto r =
          core::run_scheme_faulted(scheme, spec_for(scheme), scenario.plan);
      table.add_row(
          {core::scheme_name(scheme), scenario.name,
           format_time(r.iteration_time),
           format_time(r.fault_injected_seconds),
           format_time(r.fault_recovery_seconds),
           "x" + fmt(r.iteration_time / baseline.iteration_time, 2)});
    }
    table.add_separator();
  }
  slimbench::print_table("throughput degradation under faults", table);

  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
