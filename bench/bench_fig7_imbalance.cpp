// Figures 7–9: imbalance bubbles from causal attention under uniform
// slicing, their elimination by attention context exchange (Figure 8's
// rebalancing), and the vocabulary-parallelism ablation (Figure 9's output
// GEMM). Timelines are printed so the bubble shapes are visible.

#include "bench_common.hpp"

#include "src/core/workload.hpp"
#include "src/model/slice_balance.hpp"
#include "src/sched/builder.hpp"

using namespace slim;

namespace {

sched::PipelineSpec fig7_spec() {
  auto spec = slimbench::base_spec(model::llama13b(), 8, 4, 512 * 1024, 2);
  spec.n = 16;
  spec.vocab_parallel = true;
  return spec;
}

/// Simulated step time of the fig7 pipeline over a packed variable-length
/// batch under explicit per-microbatch slice layouts.
sched::ScheduleResult run_with_layouts(
    const std::vector<core::SliceLayout>& layouts) {
  auto spec = fig7_spec();
  // Custom (non-uniform) layouts and the closed-form exchange planner are
  // mutually exclusive; the balanced boundaries play the same role.
  spec.context_exchange = false;
  spec.m = static_cast<int>(layouts.size());
  spec.layouts = layouts;
  return core::run_scheme(core::Scheme::SlimPipe, spec);
}

}  // namespace

static void BM_Figure7Exchange(benchmark::State& state) {
  auto spec = fig7_spec();
  spec.context_exchange = state.range(0) != 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::run_scheme(core::Scheme::SlimPipe, spec));
  }
}
BENCHMARK(BM_Figure7Exchange)->Arg(0)->Arg(1)->Unit(benchmark::kMillisecond);

int main(int argc, char** argv) {
  slimbench::open_report("fig7_imbalance");
  slimbench::print_banner(
      "Figure 7 + 4.2 — imbalance bubbles and context exchange",
      "Llama 13B, t=8, p=4, m=2, n=16, 512K context",
      "without exchange, later slices straggle and bubbles pervade; with "
      "exchange the passes align and the bubbles vanish");

  auto spec = fig7_spec();
  spec.context_exchange = false;
  const auto off = core::run_scheme(core::Scheme::SlimPipe, spec, true);
  spec.context_exchange = true;
  const auto on = core::run_scheme(core::Scheme::SlimPipe, spec, true);

  Table table({"context exchange", "iteration", "bubble", "MFU",
               "exchange volume (max device)"});
  table.add_row({"off", format_time(off.iteration_time),
                 format_percent(off.bubble_fraction), format_percent(off.mfu),
                 "-"});
  table.add_row({"on", format_time(on.iteration_time),
                 format_percent(on.bubble_fraction), format_percent(on.mfu),
                 format_bytes(on.exchange_bytes_max_device)});
  slimbench::print_table("MFU with/without KV exchange", table);
  slimbench::add_run("exchange off", off);
  slimbench::add_run("exchange on", on);
  std::printf("timeline WITHOUT exchange (imbalance bubbles):\n%s\n",
              off.ascii_timeline.c_str());
  std::printf("timeline WITH exchange:\n%s\n", on.ascii_timeline.c_str());

  // Figure 9: output-layer GEMM on the last device vs distributed.
  slimbench::print_banner(
      "Figure 9 — vocabulary parallelism ablation",
      "same configuration, context exchange on",
      "the last-stage GEMM creates mid-pipeline bubbles; distributing the "
      "vocabulary removes them");
  auto vspec = fig7_spec();
  vspec.context_exchange = true;
  vspec.vocab_parallel = false;
  const auto last_dev = core::run_scheme(core::Scheme::SlimPipe, vspec);
  vspec.vocab_parallel = true;
  const auto distributed = core::run_scheme(core::Scheme::SlimPipe, vspec);
  Table vtable({"output layer", "iteration", "bubble", "MFU",
                "last-device memory"});
  vtable.add_row({"last device only", format_time(last_dev.iteration_time),
                  format_percent(last_dev.bubble_fraction),
                  format_percent(last_dev.mfu),
                  format_bytes(last_dev.last_device_memory)});
  vtable.add_row({"distributed (vocab parallel)",
                  format_time(distributed.iteration_time),
                  format_percent(distributed.bubble_fraction),
                  format_percent(distributed.mfu),
                  format_bytes(distributed.last_device_memory)});
  slimbench::print_table("MFU with/without vocab parallelism", vtable);
  slimbench::add_run("vocab last-device", last_dev);
  slimbench::add_run("vocab distributed", distributed);

  // Variable-length microbatches: uniform token splits vs cost-balanced
  // boundaries (equal per-slice attention FLOPs) under skewed document
  // mixes. Uniform slicing leaves later slices carrying the causal-KV
  // surplus; balancing moves the boundaries instead of the KV.
  slimbench::print_banner(
      "Variable-length mixes — uniform vs cost-balanced slice boundaries",
      "same pipeline, documents packed into 4 microbatches of <= 512K "
      "tokens",
      "balanced boundaries equalize per-slice attention cost and beat "
      "uniform token splits on skewed (zipf) mixes");
  {
    const auto probe = fig7_spec();
    const model::CostModel cost(probe.cfg, probe.gpu,
                                sched::pipeline_topology(probe), probe.shard,
                                probe.policy, probe.cp_mode);
    struct Mix {
      const char* name;
      core::WorkloadSpec spec;
    };
    const std::int64_t cap = 512 * 1024;
    std::vector<Mix> mixes;
    mixes.push_back({"uniform-docs",
                     {core::DocMix::Uniform, 64 * 1024, 256 * 1024, 1.2, 0.1,
                      7}});
    mixes.push_back({"zipf",
                     {core::DocMix::Zipf, 8 * 1024, 384 * 1024, 1.2, 0.1,
                      11}});
    mixes.push_back({"bimodal",
                     {core::DocMix::Bimodal, 32 * 1024, 256 * 1024, 1.2, 0.25,
                      13}});
    auto format_speedup = [](double ratio) {
      char buf[32];
      std::snprintf(buf, sizeof(buf), "%.3fx", ratio);
      return std::string(buf);
    };
    Table mix_table({"doc mix", "packed tokens", "uniform step", "balanced step",
                     "speedup"});
    for (const Mix& mix : mixes) {
      const auto docs = core::sample_doc_lengths(mix.spec, 24);
      const auto packed = core::pack_documents(docs, 4, cap);
      const auto mb_tokens = packed.mb_tokens();
      const auto uniform =
          run_with_layouts(core::uniform_layouts(mb_tokens, 16));
      const auto balanced =
          run_with_layouts(model::balanced_layouts(cost, mb_tokens, 16));
      mix_table.add_row(
          {mix.name, std::to_string(packed.packed_tokens),
           format_time(uniform.iteration_time),
           format_time(balanced.iteration_time),
           format_speedup(uniform.iteration_time / balanced.iteration_time)});
      slimbench::add_run(std::string(mix.name) + " uniform", uniform);
      slimbench::add_run(std::string(mix.name) + " balanced", balanced);
    }
    slimbench::print_table("uniform vs cost-balanced slice boundaries",
                           mix_table);
  }

  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
