#pragma once

// Blocking message channel between pipeline-stage threads — the
// shared-memory analogue of the point-to-point sends a distributed SlimPipe
// implementation posts between pipeline ranks.

#include <chrono>
#include <condition_variable>
#include <deque>
#include <mutex>
#include <optional>
#include <utility>

namespace slim::rt {

template <typename T>
class Channel {
 public:
  /// Appends a message (FIFO order, like a NCCL P2P stream).
  void send(T message) {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      queue_.push_back(std::move(message));
    }
    cv_.notify_one();
  }

  /// Prepends a message: used for stage-local continuations (LIFO backward
  /// triggers) that must run before newly arriving work.
  void send_front(T message) {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      queue_.push_front(std::move(message));
    }
    cv_.notify_one();
  }

  /// Blocks until a message is available.
  T receive() {
    std::unique_lock<std::mutex> lock(mutex_);
    cv_.wait(lock, [&] { return !queue_.empty(); });
    T message = std::move(queue_.front());
    queue_.pop_front();
    return message;
  }

  /// Blocks up to `timeout`; returns nullopt on expiry (deadlock probes).
  template <typename Rep, typename Period>
  std::optional<T> receive_for(std::chrono::duration<Rep, Period> timeout) {
    std::unique_lock<std::mutex> lock(mutex_);
    if (!cv_.wait_for(lock, timeout, [&] { return !queue_.empty(); })) {
      return std::nullopt;
    }
    T message = std::move(queue_.front());
    queue_.pop_front();
    return message;
  }

  /// Non-blocking receive.
  std::optional<T> try_receive() {
    std::lock_guard<std::mutex> lock(mutex_);
    if (queue_.empty()) return std::nullopt;
    T message = std::move(queue_.front());
    queue_.pop_front();
    return message;
  }

  std::size_t size() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return queue_.size();
  }

 private:
  mutable std::mutex mutex_;
  std::condition_variable cv_;
  std::deque<T> queue_;
};

}  // namespace slim::rt
