#pragma once

// Minimal dense float tensor (row-major, rank <= 2 semantics) for the
// numerics substrate. The substrate exists to prove SlimPipe's slice-wise
// math (streaming causal attention, online softmax merges,
// sharded-vocabulary losses, LIFO backward) is bit-for-bit equivalent to
// monolithic execution. The hot kernels run on the shared parallel engine
// (src/util/thread_pool.hpp) under its determinism contract: fixed
// shape-derived chunking, index-ordered reduction, results bit-identical
// across SLIMPIPE_THREADS settings.

#include <cstdint>
#include <vector>

#include "src/util/logging.hpp"
#include "src/util/rng.hpp"

namespace slim::num {

class Tensor {
 public:
  Tensor() = default;
  Tensor(std::int64_t rows, std::int64_t cols)
      : rows_(rows), cols_(cols),
        data_(static_cast<std::size_t>(rows * cols), 0.0f) {
    SLIM_CHECK(rows >= 0 && cols >= 0, "negative tensor shape");
  }

  static Tensor randn(std::int64_t rows, std::int64_t cols, Rng& rng,
                      float scale = 0.1f);

  std::int64_t rows() const { return rows_; }
  std::int64_t cols() const { return cols_; }
  std::int64_t size() const { return rows_ * cols_; }
  bool empty() const { return size() == 0; }

  float* data() { return data_.data(); }
  const float* data() const { return data_.data(); }

  float& at(std::int64_t r, std::int64_t c) {
    return data_[static_cast<std::size_t>(r * cols_ + c)];
  }
  float at(std::int64_t r, std::int64_t c) const {
    return data_[static_cast<std::size_t>(r * cols_ + c)];
  }

  /// Rows [begin, end) as a copy.
  Tensor slice_rows(std::int64_t begin, std::int64_t end) const;

  /// Columns [begin, end) as a copy.
  Tensor slice_cols(std::int64_t begin, std::int64_t end) const;

  /// Stacks `parts` vertically (all must share cols).
  static Tensor vcat(const std::vector<Tensor>& parts);

  void fill(float value);
  void add_(const Tensor& other);          // this += other
  void add_scaled_(const Tensor& other, float scale);
  Tensor transposed() const;

  /// Writes `src` into rows [row_begin, row_begin + src.rows()).
  void assign_rows(std::int64_t row_begin, const Tensor& src);

  /// Writes `src` into columns [col_begin, col_begin + src.cols()) of every
  /// row (row counts must match). Contiguous per-row copies — the writeback
  /// twin of slice_cols.
  void assign_cols(std::int64_t col_begin, const Tensor& src);

  /// Max absolute difference against `other` (shapes must match).
  float max_abs_diff(const Tensor& other) const;
  bool allclose(const Tensor& other, float atol = 1e-5f) const;

  float l2norm() const;

 private:
  std::int64_t rows_ = 0;
  std::int64_t cols_ = 0;
  std::vector<float> data_;
};

// All three matmul variants share one accumulation policy: fp32 partial
// sums in ascending-k order (no double-precision detours, no zero-operand
// fast paths), so forward and backward projections round symmetrically and
// NaN/Inf propagate per IEEE.

/// C = A * B           (m x k) * (k x n)
Tensor matmul(const Tensor& a, const Tensor& b);
/// C = A * B^T         (m x k) * (n x k)^T
Tensor matmul_nt(const Tensor& a, const Tensor& b);
/// C = A^T * B         (k x m)^T * (k x n)
Tensor matmul_tn(const Tensor& a, const Tensor& b);

}  // namespace slim::num
