// Figure 3: pipeline bubble fractions of different PP schemes training
// Llama 13B with PP size 8, 4 microbatches and a 256K context — the
// regime where warm-up bubbles dominate classic schedules. Closed-form
// values (Table 2) are printed next to the simulator's measurement.

#include "bench_common.hpp"

using namespace slim;

namespace {

sched::ScheduleResult run(core::Scheme scheme) {
  auto spec = slimbench::base_spec(model::llama13b(), 8, 8, 256 * 1024, 4);
  spec.policy = model::CheckpointPolicy::Full;
  switch (scheme) {
    case core::Scheme::Interleaved1F1B:
      spec.v = 5;
      break;
    case core::Scheme::TeraPipe:
      spec.n = 32;
      break;
    case core::Scheme::SlimPipe:
      spec.n = 32;
      spec.v = 1;
      spec.vocab_parallel = true;
      spec.context_exchange = true;
      break;
    default:
      break;
  }
  return core::run_scheme(scheme, spec);
}

std::string theory(core::Scheme scheme) {
  const int p = 8, m = 4, v = 5, n = 32;
  switch (scheme) {
    case core::Scheme::GPipe:
    case core::Scheme::OneF1B: {
      const double b = core::onef1b_bubble_fraction(p, m);
      return format_percent(b / (1 + b));
    }
    case core::Scheme::TeraPipe: {
      const double b = static_cast<double>(p - 1) / (n * m);
      return format_percent(b / (1 + b));
    }
    case core::Scheme::Interleaved1F1B: {
      const double b = core::interleaved_bubble_fraction(p, v, m);
      return format_percent(b / (1 + b));
    }
    case core::Scheme::ZBV:
      return "(0, " +
             format_percent(2.0 * (p - 1) / (3.0 * m) /
                            (1 + 2.0 * (p - 1) / (3.0 * m))) +
             ")";
    case core::Scheme::VHalf:
      return "> " + format_percent(p / (2.0 * m) / (1 + p / (2.0 * m)));
    case core::Scheme::VMin:
      return "> " + format_percent(p / (2.0 * m) / (1 + p / (2.0 * m)));
    case core::Scheme::SlimPipe: {
      const double b = core::slimpipe_bubble_bound(p, n, 1, m);
      return "< " + format_percent(b / (1 + b));
    }
  }
  return "-";
}

}  // namespace

static void BM_Figure3(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(run(core::Scheme::SlimPipe));
  }
}
BENCHMARK(BM_Figure3)->Unit(benchmark::kMillisecond);

int main(int argc, char** argv) {
  slimbench::open_report("fig3_bubble_fractions");
  slimbench::print_banner(
      "Figure 3 — bubble fractions of PP schemes",
      "Llama 13B, p=8, m=4, 256K context, full checkpointing "
      "(SlimPipe: n=32, vocab parallel; interleaved: v=5)",
      "1F1B worst (~40%), interleaved moderate, V-shaped schemes limited by "
      "imbalance, SlimPipe near zero");

  Table table({"scheme", "Table 2 bound", "simulated bubble", "MFU"});
  for (const auto scheme : core::all_schemes()) {
    try {
      const auto r = run(scheme);
      table.add_row({core::scheme_name(scheme), theory(scheme),
                     format_percent(r.bubble_fraction),
                     slimbench::status_cell(r)});
    } catch (const std::exception&) {
      // Interleaved 1F1B cannot even be scheduled with m=4 < p=8 — the
      // minimum-microbatch limitation the paper discusses in §6.4.
      table.add_row({core::scheme_name(scheme), theory(scheme),
                     "infeasible (m < p)", "--"});
    }
  }
  slimbench::print_table("bubble fraction by scheme", table);

  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
