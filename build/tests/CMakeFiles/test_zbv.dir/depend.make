# Empty dependencies file for test_zbv.
# This may be replaced when dependencies are built.
