#include "src/core/slimpipe.hpp"

#include <memory>

#include "src/core/context_exchange.hpp"
#include "src/core/slice.hpp"
#include "src/util/logging.hpp"

namespace slim::core {

std::vector<sched::DeviceProgram> slimpipe_programs(
    const sched::PipelineSpec& spec) {
  SLIM_CHECK(spec.n % spec.p == 0, "SlimPipe requires n to be a multiple of p");
  const int p = spec.p;
  const int n = spec.n;
  const int m = spec.m;
  const int v = spec.v;
  const int groups_per_mb = n / p;

  std::vector<sched::DeviceProgram> programs(static_cast<std::size_t>(p));
  for (int dev = 0; dev < p; ++dev) {
    std::vector<sched::Pass> fwd, bwd;
    fwd.reserve(static_cast<std::size_t>(m * n * v));
    bwd.reserve(fwd.capacity());

    // Forward: slice-stream positions in groups of p; within a group all v
    // chunks run before the stream advances (generalizes Megatron's
    // interleaving with slices in place of microbatches; n % p == 0 keeps
    // groups inside a single microbatch).
    for (int mb = 0; mb < m; ++mb) {
      for (int g = 0; g < groups_per_mb; ++g) {
        for (int chunk = 0; chunk < v; ++chunk) {
          for (int i = 0; i < p; ++i) {
            const int slice = g * p + i;
            fwd.push_back({sched::PassType::Forward, mb, slice, chunk});
          }
        }
      }
    }
    // Backward: microbatches in order; within a microbatch strictly LIFO in
    // slices (causal KV gradients) and stages (chunk descending).
    for (int mb = 0; mb < m; ++mb) {
      for (int g = groups_per_mb - 1; g >= 0; --g) {
        for (int chunk = v - 1; chunk >= 0; --chunk) {
          for (int i = p - 1; i >= 0; --i) {
            const int slice = g * p + i;
            bwd.push_back({sched::PassType::Backward, mb, slice, chunk});
          }
        }
      }
    }

    const int warmup = slimpipe_warmup_units(p, dev, n, v);
    programs[static_cast<std::size_t>(dev)] =
        sched::one_f_one_b_program(fwd, bwd, warmup);
  }
  return programs;
}

sched::ScheduleResult run_slimpipe(sched::PipelineSpec spec,
                                   bool want_timeline) {
  spec.layout = spec.v == 1 ? sched::StageLayoutKind::Sequential
                            : sched::StageLayoutKind::Interleaved;
  spec.retain_kv = true;
  spec.cp_mode = model::CpMode::Commutated;
  if (spec.n < spec.p) spec.n = spec.p;
  // Exchange needs a sliced pipeline with at least two devices.
  if (spec.n <= 1 || spec.p <= 1) spec.context_exchange = false;

  std::unique_ptr<ExchangePlanner> planner;
  if (spec.context_exchange && spec.p > 1) {
    planner = std::make_unique<ExchangePlanner>(spec);
  }
  return sched::run_pipeline(spec, slimpipe_programs(spec), planner.get(),
                             "SlimPipe", want_timeline);
}

}  // namespace slim::core
