# Empty dependencies file for bench_fig14_scheme_memory.
# This may be replaced when dependencies are built.
