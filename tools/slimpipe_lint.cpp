// slimpipe_lint — static analysis front-end.
//
// Lints a scheme/spec combination without running the simulator: generates
// the scheme's per-device programs, runs the schedule pass (per-pass
// invariants plus the scheme's declared in-flight activation bound), builds
// the op graph and runs the graph pass (acyclicity, channel FIFO matching,
// memory-ledger conservation). Any Error finding fails the run.
//
//   slimpipe_lint --scheme slimpipe --model 13b --p 4 --n 8 --m 8
//   slimpipe_lint --scheme all --p 8
//   slimpipe_lint --sweep            # acceptance grid, all schemes
//
// Exit status: 0 = clean, 1 = findings, 2 = usage error.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "src/analysis/graph_check.hpp"
#include "src/analysis/schedule_check.hpp"
#include "src/core/context_exchange.hpp"
#include "src/core/runner.hpp"
#include "src/sched/builder.hpp"
#include "src/util/table.hpp"

using namespace slim;

namespace {

void usage() {
  std::printf(R"(usage: slimpipe_lint [options]

model / workload
  --model NAME       7b | 13b | 70b | 149b | 8x7b | 8x22b   (default 13b)
  --seq TOKENS       context length                          (default 131072)
  --m N              microbatches per iteration              (default 4)

scheme / schedule
  --scheme NAME      gpipe | terapipe | 1f1b | interleaved | zbv | vhalf |
                     vmin | slimpipe | all                   (default all)
  --t/--c/--e/--p N  tensor / context / expert / pipeline parallel sizes
  --d N              data parallel size (optimizer sharding) (default 1)
  --v N              stage chunks per device                 (default 1)
  --n N              slices per sequence (slimpipe/terapipe) (default p)
  --ckpt POLICY      none | selective | full                 (default none)
  --offload RATIO    activation offload fraction [0,1)       (default 0)
  --no-exchange      disable attention context exchange
  --no-vocab-par     keep the output layer on the last stage

modes
  --sweep            lint every scheme over p in {2,4,8}, n in {1,4},
                     m in {p, 2p} (other options fix the rest of the spec)
  --verbose          print a line for clean combinations too
)");
}

model::TransformerConfig pick_model(const std::string& name) {
  if (name == "7b") return model::llama7b();
  if (name == "13b") return model::llama13b();
  if (name == "70b") return model::llama70b();
  if (name == "149b") return model::llama149b();
  if (name == "8x7b") return model::mixtral8x7b();
  if (name == "8x22b") return model::mixtral8x22b();
  std::fprintf(stderr, "unknown model '%s'\n", name.c_str());
  std::exit(2);
}

model::CheckpointPolicy pick_policy(const std::string& name) {
  if (name == "none") return model::CheckpointPolicy::None;
  if (name == "selective") return model::CheckpointPolicy::Selective;
  if (name == "full") return model::CheckpointPolicy::Full;
  std::fprintf(stderr, "unknown checkpoint policy '%s'\n", name.c_str());
  std::exit(2);
}

std::vector<core::Scheme> pick_schemes(const std::string& name) {
  if (name == "all") return core::all_schemes();
  if (name == "gpipe") return {core::Scheme::GPipe};
  if (name == "terapipe") return {core::Scheme::TeraPipe};
  if (name == "1f1b") return {core::Scheme::OneF1B};
  if (name == "interleaved") return {core::Scheme::Interleaved1F1B};
  if (name == "zbv") return {core::Scheme::ZBV};
  if (name == "vhalf") return {core::Scheme::VHalf};
  if (name == "vmin") return {core::Scheme::VMin};
  if (name == "slimpipe") return {core::Scheme::SlimPipe};
  std::fprintf(stderr, "unknown scheme '%s'\n", name.c_str());
  std::exit(2);
}

/// Runs both passes over one scheme/spec combination and returns the
/// combined findings. Exceptions from plan generation or graph building
/// (SLIM_CHECK failures) surface as a synthetic `internal-error` finding.
std::vector<analysis::Finding> lint_combo(core::Scheme scheme,
                                          sched::PipelineSpec spec) {
  std::vector<analysis::Finding> findings;
  try {
    const core::SchedulePlan plan = core::plan_scheme(scheme, std::move(spec));

    analysis::ScheduleLintOptions sched_opts;
    sched_opts.max_inflight_units = plan.max_inflight_units;
    findings = analysis::check_schedule(plan.spec, plan.programs, sched_opts);
    // A schedule pass 1 rejects cannot be compiled meaningfully.
    if (analysis::has_errors(findings)) return findings;

    // Build the graph ourselves (lint disabled) so rule violations come
    // back as findings instead of the compile-time SLIM_CHECK abort.
    const bool lint_was_on = sched::compile_lint_enabled();
    sched::set_compile_lint(false);
    std::unique_ptr<core::ExchangePlanner> planner;
    if (plan.spec.context_exchange && plan.spec.p > 1) {
      planner = std::make_unique<core::ExchangePlanner>(plan.spec);
    }
    sched::BuildOutput built;
    try {
      built = sched::compile(plan.spec, plan.programs, planner.get());
    } catch (...) {
      sched::set_compile_lint(lint_was_on);
      throw;
    }
    sched::set_compile_lint(lint_was_on);

    const std::vector<analysis::Finding> graph_findings =
        analysis::check_graph(*built.graph, plan.spec);
    findings.insert(findings.end(), graph_findings.begin(),
                    graph_findings.end());
  } catch (const std::exception& e) {
    findings.push_back({analysis::Severity::Error, "internal-error",
                        std::string(core::scheme_name(scheme)), e.what()});
  }
  return findings;
}

std::string combo_label(core::Scheme scheme, const sched::PipelineSpec& spec) {
  char buf[128];
  std::snprintf(buf, sizeof(buf), "%s p=%d v=%d n=%d m=%d",
                core::scheme_name(scheme), spec.p, spec.v, spec.n, spec.m);
  return buf;
}

}  // namespace

int main(int argc, char** argv) {
  std::string model_name = "13b", scheme_name = "all", ckpt = "none";
  std::int64_t seq = 131072, t = 8, c = 1, e = 1, d = 1;
  int p = 4, v = 1, n = 0, m = 4;
  double offload = 0.0;
  bool sweep = false, verbose = false, exchange = true, vocab_parallel = true;

  for (int i = 1; i < argc; ++i) {
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", argv[i]);
        std::exit(2);
      }
      return argv[++i];
    };
    const std::string arg = argv[i];
    if (arg == "--model") model_name = next();
    else if (arg == "--scheme") scheme_name = next();
    else if (arg == "--seq") seq = std::atoll(next());
    else if (arg == "--t") t = std::atoll(next());
    else if (arg == "--c") c = std::atoll(next());
    else if (arg == "--e") e = std::atoll(next());
    else if (arg == "--d") d = std::atoll(next());
    else if (arg == "--p") p = std::atoi(next());
    else if (arg == "--v") v = std::atoi(next());
    else if (arg == "--n") n = std::atoi(next());
    else if (arg == "--m") m = std::atoi(next());
    else if (arg == "--ckpt") ckpt = next();
    else if (arg == "--offload") offload = std::atof(next());
    else if (arg == "--sweep") sweep = true;
    else if (arg == "--verbose") verbose = true;
    else if (arg == "--no-exchange") exchange = false;
    else if (arg == "--no-vocab-par") vocab_parallel = false;
    else if (arg == "--help" || arg == "-h") { usage(); return 0; }
    else {
      std::fprintf(stderr, "unknown option '%s'\n", arg.c_str());
      usage();
      return 2;
    }
  }

  const auto cfg = pick_model(model_name);
  const auto schemes = pick_schemes(scheme_name);
  const auto gpu = model::hopper80();

  sched::PipelineSpec base;
  base.cfg = cfg;
  base.gpu = gpu;
  base.shard = {t, c, e, 8};
  base.policy = pick_policy(ckpt);
  base.d = d;
  base.seq = seq;
  base.offload.ratio = offload;
  base.offload.pcie_bandwidth = gpu.pcie_bandwidth;
  base.context_exchange = exchange;

  struct Combo {
    core::Scheme scheme;
    sched::PipelineSpec spec;
  };
  std::vector<Combo> combos;
  if (sweep) {
    for (const core::Scheme scheme : schemes) {
      for (const int sp : {2, 4, 8}) {
        for (const int sn : {1, 4}) {
          for (const int sm : {sp, 2 * sp}) {
            sched::PipelineSpec spec = base;
            spec.p = sp;
            spec.v = v;
            spec.n = sn;
            spec.m = sm;
            if (scheme == core::Scheme::TeraPipe && sn > 1 && sn % sp != 0) {
              // Uniform slicing requires n to be a multiple of p; TeraPipe
              // (unlike SlimPipe) does not normalize n, so round it up.
              spec.n = ((sn + sp - 1) / sp) * sp;
            }
            spec.vocab_parallel =
                vocab_parallel && scheme == core::Scheme::SlimPipe;
            combos.push_back({scheme, std::move(spec)});
          }
        }
      }
    }
  } else {
    for (const core::Scheme scheme : schemes) {
      sched::PipelineSpec spec = base;
      spec.p = p;
      spec.v = v;
      spec.n = n > 0 ? n : (scheme == core::Scheme::SlimPipe ? p : 1);
      spec.m = m;
      spec.vocab_parallel = vocab_parallel && scheme == core::Scheme::SlimPipe;
      combos.push_back({scheme, std::move(spec)});
    }
  }

  int dirty = 0;
  std::size_t total_findings = 0;
  for (const Combo& combo : combos) {
    const auto findings = lint_combo(combo.scheme, combo.spec);
    const std::string label = combo_label(combo.scheme, combo.spec);
    if (findings.empty()) {
      if (verbose) std::printf("%-40s clean\n", label.c_str());
      continue;
    }
    ++dirty;
    total_findings += findings.size();
    std::printf("%s: %s\n%s", label.c_str(),
                analysis::summary(findings).c_str(),
                analysis::render(findings).c_str());
  }

  if (dirty == 0) {
    std::printf("%zu combination%s linted, no findings\n", combos.size(),
                combos.size() == 1 ? "" : "s");
    return 0;
  }
  std::printf("%d of %zu combinations with findings (%zu total)\n", dirty,
              combos.size(), total_findings);
  return 1;
}
