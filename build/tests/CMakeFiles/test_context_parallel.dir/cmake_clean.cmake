file(REMOVE_RECURSE
  "CMakeFiles/test_context_parallel.dir/test_context_parallel.cpp.o"
  "CMakeFiles/test_context_parallel.dir/test_context_parallel.cpp.o.d"
  "test_context_parallel"
  "test_context_parallel.pdb"
  "test_context_parallel[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_context_parallel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
