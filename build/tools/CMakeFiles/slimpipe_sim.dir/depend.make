# Empty dependencies file for slimpipe_sim.
# This may be replaced when dependencies are built.
