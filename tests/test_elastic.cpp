// Elastic variable-length microbatches (ROADMAP item 2): explicit
// SliceLayout boundaries, cost-balanced slice solving, skewed workload
// generation/packing, strict env parsing — and the differential sweep
// proving that for any layout the simulator, the threaded runtime and the
// multi-process runtime agree on schedule shape, gradients (bit-identical
// across backends, float-tolerance against the monolithic reference) and
// memory (arena peaks reconcile with the analytical per-slice footprint).

#include <gtest/gtest.h>

#include <cstdlib>

#include <algorithm>
#include <numeric>
#include <thread>
#include <vector>

#include "src/core/runner.hpp"
#include "src/core/slice_layout.hpp"
#include "src/core/workload.hpp"
#include "src/dist/process_pipeline.hpp"
#include "src/memory/reconcile.hpp"
#include "src/model/activation.hpp"
#include "src/model/slice_balance.hpp"
#include "src/model/transformer.hpp"
#include "src/numerics/transformer_block.hpp"
#include "src/runtime/pipeline_runtime.hpp"
#include "src/sched/builder.hpp"
#include "src/util/env.hpp"
#include "src/util/rng.hpp"
#include "src/util/thread_pool.hpp"

namespace slim {
namespace {

// ---------------------------------------------------------------- layouts

TEST(SliceLayoutTest, UniformDistributesRemainderToFirstSlices) {
  const auto layout = core::SliceLayout::uniform(10, 4);
  EXPECT_EQ(layout.lens(), (std::vector<std::int64_t>{3, 3, 2, 2}));
  EXPECT_EQ(layout.seq(), 10);
  EXPECT_EQ(layout.kv_prefix(0), 0);
  EXPECT_EQ(layout.kv_prefix(2), 6);
  EXPECT_FALSE(layout.is_uniform());
  EXPECT_TRUE(core::SliceLayout::uniform(8, 4).is_uniform());
}

TEST(SliceLayoutTest, UniformRespectsAlignment) {
  // 10 blocks of 4 tokens over 3 slices: blocks 4/3/3, boundaries on
  // multiples of 4.
  const auto layout = core::SliceLayout::uniform(40, 3, 4);
  EXPECT_EQ(layout.lens(), (std::vector<std::int64_t>{16, 12, 12}));
  for (int s = 0; s < layout.slices(); ++s) {
    EXPECT_EQ(layout.begin(s) % 4, 0);
  }
  EXPECT_THROW(core::SliceLayout::uniform(10, 4, 4), std::exception);
  EXPECT_THROW(core::SliceLayout::uniform(8, 3, 4), std::exception);
}

TEST(SliceLayoutTest, FromLensAndBoundsValidate) {
  const auto layout = core::SliceLayout::from_lens({5, 3});
  EXPECT_EQ(layout.bounds(), (std::vector<std::int64_t>{0, 5, 8}));
  EXPECT_EQ(layout.describe(), "8=[5 3]");
  EXPECT_THROW(core::SliceLayout({1, 2, 3}), std::exception);  // not from 0
  EXPECT_THROW(core::SliceLayout({0, 2, 2}), std::exception);  // not increasing
  EXPECT_THROW(core::SliceLayout::from_lens({3, 0}), std::exception);
}

TEST(SliceLayoutTest, BalancedInvertsThePrefixFunction) {
  // prefix cost x^2: cost of slice [a,b) is b^2 - a^2 — boundaries must
  // land near sqrt(total * i / n).
  const auto quad = [](std::int64_t x) {
    return static_cast<double>(x) * static_cast<double>(x);
  };
  const auto layout = core::SliceLayout::balanced(100, 4, quad);
  EXPECT_EQ(layout.seq(), 100);
  EXPECT_EQ(layout.slices(), 4);
  EXPECT_EQ(layout.bounds()[1], 50);  // sqrt(1/4) * 100
  EXPECT_EQ(layout.bounds()[2], 71);  // ceil(sqrt(1/2) * 100)
  EXPECT_EQ(layout.bounds()[3], 87);  // ceil(sqrt(3/4) * 100)
  // Quadratic prefix = causal attention shape: early slices are longer.
  const auto lens = layout.lens();
  EXPECT_TRUE(std::is_sorted(lens.rbegin(), lens.rend()));
}

TEST(SliceBalanceTest, BalancedLayoutEqualizesAttentionFlops) {
  const model::TransformerConfig cfg = model::llama13b();
  const model::GpuSpec gpu = model::hopper80();
  sched::PipelineSpec probe;
  probe.cfg = cfg;
  probe.gpu = gpu;
  probe.shard = {8, 1, 1, 8};
  probe.p = 4;
  const model::CostModel cost(cfg, gpu, sched::pipeline_topology(probe),
                              probe.shard, model::CheckpointPolicy::None,
                              model::CpMode::Commutated);
  const std::int64_t seq = 128 * 1024;
  const int n = 16;
  const auto layout = model::balanced_layout(cost, seq, n);
  ASSERT_EQ(layout.slices(), n);
  EXPECT_EQ(layout.seq(), seq);

  // Per-slice causal-attention FLOPs F(b) - F(a) within one boundary step
  // of the mean (the solver is exact up to integer token snapping).
  auto prefix = [&](std::int64_t x) {
    return cost.attn_block_flops(static_cast<double>(x),
                                 model::CostModel::causal_kv_equiv(x, 0));
  };
  const double mean = prefix(seq) / n;
  for (int s = 0; s < n; ++s) {
    const double flops = prefix(layout.end(s)) - prefix(layout.begin(s));
    // One token moved across a boundary changes a slice's cost by at most
    // the cost of a full-prefix row.
    const double step = prefix(seq) - prefix(seq - 1);
    EXPECT_NEAR(flops, mean, 2.0 * step) << "slice " << s;
  }
  // Causal attention grows with the prefix: balanced slices shrink.
  const auto lens = layout.lens();
  EXPECT_TRUE(std::is_sorted(lens.rbegin(), lens.rend()));
  EXPECT_GT(lens.front(), 2 * lens.back());
}

// --------------------------------------------------------------- workload

TEST(WorkloadTest, SamplingIsDeterministicAndInRange) {
  core::WorkloadSpec spec;
  spec.mix = core::DocMix::Zipf;
  spec.min_len = 16;
  spec.max_len = 4096;
  spec.seed = 7;
  const auto a = core::sample_doc_lengths(spec, 64);
  const auto b = core::sample_doc_lengths(spec, 64);
  EXPECT_EQ(a, b);
  for (const std::int64_t len : a) {
    EXPECT_GE(len, spec.min_len);
    EXPECT_LE(len, spec.max_len);
  }
  spec.seed = 8;
  EXPECT_NE(core::sample_doc_lengths(spec, 64), a);
}

TEST(WorkloadTest, ZipfIsSkewedShort) {
  core::WorkloadSpec spec;
  spec.mix = core::DocMix::Zipf;
  spec.min_len = 16;
  spec.max_len = 4096;
  spec.zipf_exponent = 1.2;
  spec.seed = 3;
  const auto lens = core::sample_doc_lengths(spec, 512);
  const double mean =
      static_cast<double>(std::accumulate(lens.begin(), lens.end(),
                                          std::int64_t{0})) /
      static_cast<double>(lens.size());
  // Power-law mass sits near min_len; the arithmetic midpoint would be 2056.
  EXPECT_LT(mean, 512.0);
  EXPECT_GT(*std::max_element(lens.begin(), lens.end()), 1024);
}

TEST(WorkloadTest, BimodalSamplesOnlyTheTwoModes) {
  core::WorkloadSpec spec;
  spec.mix = core::DocMix::Bimodal;
  spec.min_len = 8;
  spec.max_len = 512;
  spec.long_fraction = 0.25;
  spec.seed = 5;
  int longs = 0;
  for (const std::int64_t len : core::sample_doc_lengths(spec, 256)) {
    EXPECT_TRUE(len == 8 || len == 512);
    longs += len == 512 ? 1 : 0;
  }
  EXPECT_GT(longs, 256 / 8);
  EXPECT_LT(longs, 256 / 2);
}

TEST(WorkloadTest, PackingConservesTokensAndNeverTruncates) {
  const std::vector<std::int64_t> docs = {90, 10, 40, 70, 30, 20, 200, 60};
  const auto packed = core::pack_documents(docs, /*m=*/3, /*capacity=*/100);
  ASSERT_EQ(packed.microbatches.size(), 3u);
  // 200 exceeds the capacity outright and 20 no longer fits once every bin
  // reaches 100: both are dropped whole, never clipped.
  EXPECT_EQ(packed.dropped, (std::vector<std::int64_t>{200, 20}));
  std::int64_t input = 0;
  for (const std::int64_t d : docs) input += d;
  std::int64_t out = packed.packed_tokens;
  for (const std::int64_t d : packed.dropped) out += d;
  EXPECT_EQ(out, input);
  for (const auto& mb : packed.microbatches) {
    EXPECT_LE(mb.tokens, 100);
    std::int64_t sum = 0;
    for (const std::int64_t d : mb.doc_lens) sum += d;
    EXPECT_EQ(sum, mb.tokens);
  }
  // LPT keeps the loads balanced: spread at most the smallest doc.
  const auto totals = packed.mb_tokens();
  const auto [lo, hi] = std::minmax_element(totals.begin(), totals.end());
  EXPECT_LE(*hi - *lo, 30);
}

// ------------------------------------------------------------ env parsing

TEST(EnvParseTest, RejectsTrailingGarbageAndEmpty) {
  EXPECT_EQ(util::parse_env_int("8"), 8);
  EXPECT_EQ(util::parse_env_int("-3"), -3);
  EXPECT_EQ(util::parse_env_int("8abc"), std::nullopt);  // strtol said 8
  EXPECT_EQ(util::parse_env_int("abc"), std::nullopt);
  EXPECT_EQ(util::parse_env_int(""), std::nullopt);
  EXPECT_EQ(util::parse_env_int(nullptr), std::nullopt);
  EXPECT_EQ(util::parse_env_int("999999999999999999999999"), std::nullopt);
}

TEST(EnvParseTest, EnvIntOrWarnsAndFallsBack) {
  ::unsetenv("SLIMPIPE_TEST_KNOB");
  EXPECT_EQ(util::env_int_or("SLIMPIPE_TEST_KNOB", 30, 1), 30);
  ::setenv("SLIMPIPE_TEST_KNOB", "12", 1);
  EXPECT_EQ(util::env_int_or("SLIMPIPE_TEST_KNOB", 30, 1), 12);
  ::setenv("SLIMPIPE_TEST_KNOB", "12abc", 1);  // malformed: fallback, loudly
  EXPECT_EQ(util::env_int_or("SLIMPIPE_TEST_KNOB", 30, 1), 30);
  ::setenv("SLIMPIPE_TEST_KNOB", "0", 1);  // below min: fallback
  EXPECT_EQ(util::env_int_or("SLIMPIPE_TEST_KNOB", 30, 1), 30);
  ::unsetenv("SLIMPIPE_TEST_KNOB");
}

// ------------------------------------------------ runtime substrates

constexpr num::BlockDims kDims{32, 4, 2, 48};
constexpr std::int64_t kVocab = 32;
constexpr int kLayers = 4;
constexpr int kStages = 2;

struct Batch {
  std::vector<std::vector<std::int64_t>> tokens;
  std::vector<std::vector<std::int64_t>> targets;
};

Batch make_batch(const std::vector<std::int64_t>& mb_lens, int seed) {
  Rng rng(static_cast<std::uint64_t>(seed));
  Batch batch;
  for (const std::int64_t len : mb_lens) {
    std::vector<std::int64_t> tok, tgt;
    for (std::int64_t i = 0; i < len; ++i) {
      tok.push_back(static_cast<std::int64_t>(rng.next_below(kVocab)));
      tgt.push_back(static_cast<std::int64_t>(rng.next_below(kVocab)));
    }
    batch.tokens.push_back(std::move(tok));
    batch.targets.push_back(std::move(tgt));
  }
  return batch;
}

class PoolWidthGuard {
 public:
  PoolWidthGuard() : previous_(util::ThreadPool::global().max_threads()) {}
  ~PoolWidthGuard() { util::ThreadPool::global().set_threads(previous_); }

 private:
  int previous_;
};

// Regression for the silent `slice_len = seq / n` truncation: seq = 10,
// n = 4 used to drop 2 tokens per microbatch on every substrate. Now the
// remainder-distributing layout trains every token — the pipeline gradients
// match the monolithic reference, which always consumed the full sequence.
TEST(ElasticRuntimeTest, IndivisibleSequenceTrainsEveryToken) {
  const Batch batch = make_batch({10, 10}, 17);
  Rng rng(99);
  rt::ThreadedPipeline pipe(kDims, kVocab, kLayers, kStages, rng);
  const auto ref = pipe.run_reference(batch.tokens, batch.targets);
  const auto run = pipe.run_iteration(batch.tokens, batch.targets,
                                      /*n_slices=*/4);
  EXPECT_LT(run.grads.max_abs_diff(ref.grads), 5e-5f);
  EXPECT_NEAR(run.loss, ref.loss, 1e-5);
}

TEST(ElasticRuntimeTest, TinyModelHonorsExplicitBoundaries) {
  const Batch batch = make_batch({10}, 21);
  Rng rng(7);
  num::TinyModel model(kDims, kVocab, 2, rng);
  auto mono = model.zero_grads();
  const double mono_loss =
      model.train_step(batch.tokens[0], batch.targets[0], 1, mono);
  auto sliced = model.zero_grads();
  const double sliced_loss = model.train_step(
      batch.tokens[0], batch.targets[0],
      core::SliceLayout::from_lens({4, 3, 2, 1}), sliced);
  EXPECT_NEAR(sliced_loss, mono_loss, 1e-6);
  EXPECT_LT(sliced.max_abs_diff(mono), 5e-5f);
}

// The differential sweep: skewed doc mixes packed into ragged microbatches,
// sliced uniformly and cost-balanced, run on every substrate.
struct SweepCase {
  const char* name;
  core::DocMix mix;
  bool balanced;
  bool vocab_parallel;
};

class ElasticSweepTest : public ::testing::TestWithParam<SweepCase> {};

TEST_P(ElasticSweepTest, BackendsAgreeForSkewedPackedBatches) {
  const SweepCase c = GetParam();
  core::WorkloadSpec wl;
  wl.mix = c.mix;
  wl.min_len = 4;
  wl.max_len = 16;
  wl.long_fraction = 0.3;
  wl.seed = 23;
  const auto docs = core::sample_doc_lengths(wl, 12);
  const auto packed = core::pack_documents(docs, /*m=*/3, /*capacity=*/24);
  auto mb_tokens = packed.mb_tokens();
  const int n = 2;
  for (std::int64_t& t : mb_tokens) t = std::max<std::int64_t>(t, n);

  std::vector<core::SliceLayout> layouts;
  if (c.balanced) {
    // Balance on the quadratic causal prefix directly — the miniature
    // model's attention has the same triangle shape as the cost model's.
    for (const std::int64_t t : mb_tokens) {
      layouts.push_back(core::SliceLayout::balanced(
          t, n, [](std::int64_t x) {
            return static_cast<double>(x) * static_cast<double>(x + 1);
          }));
    }
  } else {
    layouts = core::uniform_layouts(mb_tokens, n);
  }

  const Batch batch = make_batch(mb_tokens, 31);
  rt::RunOptions options;
  options.n_slices = n;
  options.layouts = layouts;
  options.vocab_parallel = c.vocab_parallel;

  // Threaded backend across kernel-pool widths: bit-identical gradients
  // (pool width never changes chunk boundaries).
  PoolWidthGuard guard;
  util::ThreadPool& pool = util::ThreadPool::global();
  pool.set_threads(1);
  Rng rng1(55);
  rt::ThreadedPipeline pipe1(kDims, kVocab, kLayers, kStages, rng1);
  const auto base = pipe1.run_iteration(batch.tokens, batch.targets, options);
  const auto ref = pipe1.run_reference(batch.tokens, batch.targets);
  const int hw =
      std::max(2, static_cast<int>(std::thread::hardware_concurrency()));
  for (const int width : {2, hw}) {
    pool.set_threads(width);
    Rng rng(55);
    rt::ThreadedPipeline pipe(kDims, kVocab, kLayers, kStages, rng);
    const auto run = pipe.run_iteration(batch.tokens, batch.targets, options);
    EXPECT_EQ(run.grads.max_abs_diff(base.grads), 0.0f)
        << "pool width " << width;
    EXPECT_EQ(run.loss, base.loss);
  }

  // Monolithic reference: float-tolerance (accumulation order differs).
  EXPECT_LT(base.grads.max_abs_diff(ref.grads), 5e-5f) << "vs reference";
  EXPECT_NEAR(base.loss, ref.loss, 1e-5);

  // Eq. 1 window holds for every stage even with ragged slices.
  for (int s = 0; s < kStages; ++s) {
    const int cap = n + 2 * (kStages - 1 - s);
    EXPECT_LE(base.stats.peak_live_slices[static_cast<std::size_t>(s)], cap);
  }

  // Multi-process backend: bit-identical to threaded (identical float
  // expressions on both sides of the fork). The dist head is the non-vocab
  // one, so compare against a non-vocab threaded run.
  rt::RunOptions thr_opts = options;
  thr_opts.vocab_parallel = false;
  Rng rng_t(55);
  rt::ThreadedPipeline pipe_t(kDims, kVocab, kLayers, kStages, rng_t);
  const auto thr =
      pipe_t.run_iteration(batch.tokens, batch.targets, thr_opts);
  dist::ProcessOptions popt;
  popt.n_slices = n;
  popt.layouts = layouts;
  Rng rng_d(55);
  dist::ProcessPipeline dist_pipe(kDims, kVocab, kLayers, kStages, rng_d);
  const auto dist = dist_pipe.run_iteration(batch.tokens, batch.targets, popt);
  EXPECT_EQ(dist.grads.max_abs_diff(thr.grads), 0.0f) << "dist vs threaded";
  EXPECT_DOUBLE_EQ(dist.loss, thr.loss);
  EXPECT_LT(dist.grads.max_abs_diff(ref.grads), 5e-5f);
  // Cross-stage message counts are a schedule-shape invariant shared by
  // both runtimes regardless of slice lengths.
  EXPECT_EQ(dist.stats.messages, thr.stats.messages);
}

INSTANTIATE_TEST_SUITE_P(
    Mixes, ElasticSweepTest,
    ::testing::Values(SweepCase{"zipf_uniform", core::DocMix::Zipf, false,
                                false},
                      SweepCase{"zipf_balanced", core::DocMix::Zipf, true,
                                false},
                      SweepCase{"bimodal_uniform", core::DocMix::Bimodal,
                                false, true},
                      SweepCase{"bimodal_balanced", core::DocMix::Bimodal,
                                true, true}),
    [](const ::testing::TestParamInfo<SweepCase>& info) {
      return info.param.name;
    });

// Simulator and threaded runtime agree on the discrete schedule shape for
// a shared non-uniform layout (scaled to each substrate's token scale).
TEST(ElasticConsistencyTest, SimAndRuntimeAgreeOnScheduleShape) {
  const std::vector<std::int64_t> rt_lens = {5, 3};
  sched::PipelineSpec spec;
  spec.cfg = model::llama13b();
  spec.gpu = model::hopper80();
  spec.shard = {8, 1, 1, 8};
  spec.policy = model::CheckpointPolicy::None;
  spec.p = 2;
  spec.v = 1;
  spec.n = 2;
  spec.m = 2;
  spec.seq = 8 * 2048;
  spec.vocab_parallel = false;
  spec.context_exchange = false;
  std::vector<std::int64_t> sim_lens;
  for (const std::int64_t len : rt_lens) sim_lens.push_back(len * 2048);
  spec.layouts.assign(2, core::SliceLayout::from_lens(sim_lens));
  ASSERT_EQ(spec.validate(), "");
  const sched::ScheduleResult sim =
      core::run_scheme(core::Scheme::SlimPipe, spec);
  ASSERT_EQ(sim.metrics.stages.size(), 2u);

  const Batch batch = make_batch({8, 8}, 47);
  Rng rng(42);
  rt::ThreadedPipeline pipe(kDims, kVocab, kLayers, kStages, rng);
  rt::RunOptions options;
  options.n_slices = 2;
  options.layouts.assign(2, core::SliceLayout::from_lens(rt_lens));
  const auto run = pipe.run_iteration(batch.tokens, batch.targets, options);
  ASSERT_EQ(run.stats.metrics.stages.size(), 2u);
  for (int s = 0; s < 2; ++s) {
    EXPECT_EQ(run.stats.metrics.stages[static_cast<std::size_t>(s)]
                  .peak_live_slices,
              sim.metrics.stages[static_cast<std::size_t>(s)]
                  .peak_live_slices)
        << "stage " << s;
    EXPECT_EQ(run.stats.metrics.stages[static_cast<std::size_t>(s)]
                  .p2p_messages,
              sim.metrics.stages[static_cast<std::size_t>(s)].p2p_messages)
        << "stage " << s;
  }
}

// Measured arena peaks reconcile with the analytical per-slice footprint
// under a non-uniform layout: both sides normalize by their own
// mean-slice unit bytes and must agree within 0.5 slice units.
TEST(ElasticConsistencyTest, ArenaPeaksReconcileForNonUniformLayouts) {
  const std::vector<std::int64_t> rt_lens = {5, 3};
  sched::PipelineSpec spec;
  spec.cfg = model::llama13b();
  spec.gpu = model::hopper80();
  spec.shard = {8, 1, 1, 8};
  spec.policy = model::CheckpointPolicy::None;
  spec.p = 2;
  spec.v = 1;
  spec.n = 2;
  spec.m = 2;
  spec.seq = 8 * 2048;
  spec.vocab_parallel = false;
  spec.context_exchange = false;
  std::vector<std::int64_t> sim_lens;
  for (const std::int64_t len : rt_lens) sim_lens.push_back(len * 2048);
  spec.layouts.assign(2, core::SliceLayout::from_lens(sim_lens));
  const sched::ScheduleResult sim =
      core::run_scheme(core::Scheme::SlimPipe, spec);
  ASSERT_EQ(sim.memory.devices.size(), 2u);

  const Batch batch = make_batch({8, 8}, 53);
  Rng rng(42);
  rt::ThreadedPipeline pipe(kDims, kVocab, kLayers, kStages, rng);
  rt::RunOptions options;
  options.n_slices = 2;
  options.layouts.assign(2, core::SliceLayout::from_lens(rt_lens));
  const auto run = pipe.run_iteration(batch.tokens, batch.targets, options);

  Rng probe_rng(1);
  num::Layer probe(kDims, num::LayerWeights::random(kDims, probe_rng));
  const double layers_per_stage = 2.0;  // 4 layers over 2 stages
  const double nonkv = model::act_bytes_per_token_layer_no_kv(
      spec.cfg, spec.shard, spec.policy);
  const double kvpt = model::kv_bytes_per_token_layer(spec.cfg, spec.shard);

  std::vector<mem::MeasuredPeak> measured;
  for (int s = 0; s < 2; ++s) {
    const obs::StageMetrics& stage =
        run.stats.metrics.stages[static_cast<std::size_t>(s)];
    const double layers_analytic =
        static_cast<double>(spec.layers_of_stage(s));
    measured.push_back(
        {s, mem::kActivation, stage.measured_peak_bytes[mem::kActivation],
         mem::mean_slice_unit_bytes(
             options.layouts,
             [&](std::int64_t len) {
               return layers_per_stage *
                      static_cast<double>(
                          probe.slice_footprint(len).activation_bytes);
             }),
         mem::mean_slice_unit_bytes(spec.layouts, [&](std::int64_t len) {
           return nonkv * static_cast<double>(len) * layers_analytic;
         })});
    measured.push_back(
        {s, mem::kKvCache, stage.measured_peak_bytes[mem::kKvCache],
         mem::mean_slice_unit_bytes(
             options.layouts,
             [&](std::int64_t len) {
               return layers_per_stage *
                      static_cast<double>(probe.slice_footprint(len).kv_bytes);
             }),
         mem::mean_slice_unit_bytes(spec.layouts, [&](std::int64_t len) {
           return kvpt * static_cast<double>(len) * layers_analytic;
         })});
  }
  const mem::ReconcileReport report =
      mem::reconcile_peaks(sim.memory, measured, /*unit_tolerance=*/0.5);
  EXPECT_TRUE(report.ok()) << report.summary();
}

// Custom non-uniform layouts stay out of the exchange planner and the IR:
// validate() rejects the combination loudly instead of mis-costing it.
TEST(ElasticSpecTest, ValidateRejectsBadLayoutCombos) {
  sched::PipelineSpec spec;
  spec.cfg = model::llama13b();
  spec.gpu = model::hopper80();
  spec.shard = {8, 1, 1, 8};
  spec.policy = model::CheckpointPolicy::None;
  spec.p = 2;
  spec.v = 1;
  spec.n = 2;
  spec.m = 2;
  spec.seq = 16384;
  EXPECT_EQ(spec.validate(), "");

  // seq % n != 0 is now legal (remainder-distributing derived layout)...
  spec.n = 6;
  spec.seq = 16384;  // 16384 % 6 != 0
  EXPECT_EQ(spec.validate(), "");

  // ...but a custom non-uniform layout with context exchange is not.
  spec.n = 2;
  spec.context_exchange = true;
  spec.layouts.assign(2, core::SliceLayout::from_lens({10000, 6384}));
  EXPECT_NE(spec.validate().find("context exchange requires uniform"),
            std::string::npos);
  spec.context_exchange = false;
  EXPECT_EQ(spec.validate(), "");

  // Layout bookkeeping errors are loud.
  spec.layouts.resize(1);
  EXPECT_NE(spec.validate().find("cover all m microbatches"),
            std::string::npos);
  spec.layouts.assign(2, core::SliceLayout::from_lens({16384}));
  EXPECT_NE(spec.validate().find("exactly n slices"), std::string::npos);
}

}  // namespace
}  // namespace slim
