// Tests for the Mixture-of-Experts numerics: routing, per-token vs
// grouped-by-expert (EP order) equivalence, and router/expert gradients
// against finite differences.

#include <gtest/gtest.h>

#include <cmath>

#include "src/numerics/moe.hpp"

namespace slim::num {
namespace {

double dot(const Tensor& a, const Tensor& b) {
  double sum = 0.0;
  for (std::int64_t i = 0; i < a.size(); ++i) {
    sum += static_cast<double>(a.data()[i]) * b.data()[i];
  }
  return sum;
}

TEST(RoutingTest, TopKWeightsNormalized) {
  Rng rng(1);
  const MoeDims dims{16, 24, 8, 2};
  const MoeWeights w = MoeWeights::random(dims, rng);
  const Tensor x = Tensor::randn(10, 16, rng, 1.0f);
  const Routing routing = route(dims, w, x);
  for (std::int64_t t = 0; t < 10; ++t) {
    ASSERT_EQ(routing.expert[static_cast<std::size_t>(t)].size(), 2u);
    float sum = 0.0f;
    for (float v : routing.weight[static_cast<std::size_t>(t)]) {
      EXPECT_GT(v, 0.0f);
      sum += v;
    }
    EXPECT_NEAR(sum, 1.0f, 1e-5f);
    // Distinct experts per token.
    EXPECT_NE(routing.expert[static_cast<std::size_t>(t)][0],
              routing.expert[static_cast<std::size_t>(t)][1]);
  }
}

TEST(RoutingTest, TopOneIsArgmax) {
  Rng rng(2);
  const MoeDims dims{8, 12, 4, 1};
  const MoeWeights w = MoeWeights::random(dims, rng);
  const Tensor x = Tensor::randn(6, 8, rng, 1.0f);
  const Routing routing = route(dims, w, x);
  for (const auto& weights : routing.weight) {
    ASSERT_EQ(weights.size(), 1u);
    EXPECT_NEAR(weights[0], 1.0f, 1e-6f);
  }
}

TEST(RoutingTest, ExpertLoadCountsEveryAssignment) {
  Rng rng(3);
  const MoeDims dims{8, 12, 4, 2};
  const MoeWeights w = MoeWeights::random(dims, rng);
  const Tensor x = Tensor::randn(9, 8, rng, 1.0f);
  const auto load = expert_load(dims, route(dims, w, x));
  std::int64_t total = 0;
  for (std::int64_t l : load) total += l;
  EXPECT_EQ(total, 9 * 2);
}

struct MoeCase {
  std::int64_t tokens;
  std::int64_t experts;
  std::int64_t topk;
};

class MoeEquivalenceTest : public ::testing::TestWithParam<MoeCase> {};

// Grouped (expert-parallel dispatch/combine order) must equal per-token.
TEST_P(MoeEquivalenceTest, GroupedMatchesPerToken) {
  const MoeCase c = GetParam();
  Rng rng(10 + c.tokens + c.experts * 3 + c.topk);
  const MoeDims dims{16, 24, c.experts, c.topk};
  const MoeWeights w = MoeWeights::random(dims, rng);
  const Tensor x = Tensor::randn(c.tokens, 16, rng, 1.0f);
  const Tensor per_token = moe_forward(dims, w, x);
  const Tensor grouped = moe_forward_grouped(dims, w, x);
  EXPECT_LT(grouped.max_abs_diff(per_token), 1e-5f);
}

INSTANTIATE_TEST_SUITE_P(Sweep, MoeEquivalenceTest,
                         ::testing::Values(MoeCase{1, 4, 1}, MoeCase{8, 4, 2},
                                           MoeCase{16, 8, 2}, MoeCase{5, 8, 3},
                                           MoeCase{32, 8, 2},
                                           MoeCase{7, 2, 2}));

TEST(MoeGradientTest, FiniteDifferenceAllParameters) {
  Rng rng(42);
  const MoeDims dims{8, 10, 4, 2};
  MoeWeights w = MoeWeights::random(dims, rng);
  Tensor x = Tensor::randn(5, 8, rng, 0.8f);
  const Tensor dout = Tensor::randn(5, 8, rng, 1.0f);

  MoeGrads grads = MoeGrads::zeros(dims);
  const Tensor dx = moe_backward(dims, w, x, dout, grads);

  const float eps = 1e-3f;
  auto loss = [&]() { return dot(moe_forward(dims, w, x), dout); };

  auto check = [&](Tensor& param, const Tensor& grad, const char* name) {
    for (std::int64_t i = 0; i < param.size(); i += 7) {
      const float orig = param.data()[i];
      param.data()[i] = orig + eps;
      const double hi = loss();
      param.data()[i] = orig - eps;
      const double lo = loss();
      param.data()[i] = orig;
      EXPECT_NEAR((hi - lo) / (2.0 * eps), grad.data()[i], 6e-3)
          << name << "[" << i << "]";
    }
  };
  // Router: the top-k *selection* is non-differentiable, so probe with a
  // small step and accept that a selection flip would show up as a large
  // mismatch (none occurs with this seed).
  check(w.router, grads.router, "router");
  for (std::size_t e = 0; e < w.experts.size(); ++e) {
    check(w.experts[e].w_gate, grads.experts[e].w_gate, "w_gate");
    check(w.experts[e].w_up, grads.experts[e].w_up, "w_up");
    check(w.experts[e].w_down, grads.experts[e].w_down, "w_down");
  }
  // Input gradient.
  for (std::int64_t i = 0; i < x.size(); i += 5) {
    const float orig = x.data()[i];
    x.data()[i] = orig + eps;
    const double hi = loss();
    x.data()[i] = orig - eps;
    const double lo = loss();
    x.data()[i] = orig;
    EXPECT_NEAR((hi - lo) / (2.0 * eps), dx.data()[i], 6e-3) << "dx[" << i << "]";
  }
}

TEST(MoeGradientTest, UnroutedExpertsGetNoGradient) {
  Rng rng(43);
  const MoeDims dims{8, 10, 4, 1};
  const MoeWeights w = MoeWeights::random(dims, rng);
  const Tensor x = Tensor::randn(3, 8, rng, 0.8f);
  const Tensor dout = Tensor::randn(3, 8, rng, 1.0f);
  MoeGrads grads = MoeGrads::zeros(dims);
  (void)moe_backward(dims, w, x, dout, grads);
  const auto load = expert_load(dims, route(dims, w, x));
  for (std::int64_t e = 0; e < dims.experts; ++e) {
    if (load[static_cast<std::size_t>(e)] == 0) {
      EXPECT_FLOAT_EQ(
          grads.experts[static_cast<std::size_t>(e)].w_gate.l2norm(), 0.0f);
      EXPECT_FLOAT_EQ(
          grads.experts[static_cast<std::size_t>(e)].w_down.l2norm(), 0.0f);
    }
  }
}

}  // namespace
}  // namespace slim::num

// ---- sliced MoE model equivalence (appended) ----
#include "src/numerics/transformer_block.hpp"

namespace slim::num {
namespace {

struct MoeModelCase {
  int n_slices;
  int vocab_shards;
  std::int64_t experts;
  std::int64_t topk;
};

class MoeModelEquivalenceTest
    : public ::testing::TestWithParam<MoeModelCase> {};

// A Mixtral-style model (every layer routed) trained slice-by-slice with
// the chunked KV cache and LIFO backward must reproduce monolithic
// execution — the combination the paper's MoE evaluations rely on.
TEST_P(MoeModelEquivalenceTest, SlicedStepMatchesReference) {
  const MoeModelCase c = GetParam();
  Rng rng(500 + c.n_slices + c.experts * 3);
  const BlockDims dims{32, 4, 2, 48};
  const MoeDims moe{32, 40, c.experts, c.topk};
  const std::int64_t vocab = 32;
  TinyModel model(dims, vocab, 2, moe, rng);

  Rng data_rng(501);
  std::vector<std::int64_t> tokens, targets;
  for (int i = 0; i < 24; ++i) {
    tokens.push_back(static_cast<std::int64_t>(data_rng.next_below(32)));
    targets.push_back(static_cast<std::int64_t>(data_rng.next_below(32)));
  }

  auto g_ref = model.zero_grads();
  const double loss_ref = model.train_step(tokens, targets, 1, g_ref);
  auto g_sliced = model.zero_grads();
  const double loss_sliced =
      model.train_step(tokens, targets, c.n_slices, g_sliced, c.vocab_shards);
  EXPECT_NEAR(loss_sliced, loss_ref, 1e-5);
  EXPECT_LT(g_ref.max_abs_diff(g_sliced), 2e-5f);
}

INSTANTIATE_TEST_SUITE_P(Sweep, MoeModelEquivalenceTest,
                         ::testing::Values(MoeModelCase{2, 1, 4, 2},
                                           MoeModelCase{4, 1, 8, 2},
                                           MoeModelCase{8, 4, 4, 1},
                                           MoeModelCase{6, 2, 4, 3}));

TEST(MoeModelTest, SgdLearnsWithRoutedExperts) {
  Rng rng(510);
  const BlockDims dims{32, 4, 2, 48};
  const MoeDims moe{32, 40, 4, 2};
  TinyModel model(dims, 24, 1, moe, rng);
  Rng data_rng(511);
  std::vector<std::int64_t> tokens;
  for (int i = 0; i < 16; ++i) {
    tokens.push_back(static_cast<std::int64_t>(data_rng.next_below(24)));
  }
  const std::vector<std::int64_t> targets = tokens;  // copy task
  double first = 0.0, last = 0.0;
  for (int step = 0; step < 20; ++step) {
    auto grads = model.zero_grads();
    const double loss = model.train_step(tokens, targets, 4, grads);
    if (step == 0) first = loss;
    last = loss;
    model.apply_sgd(grads, 0.5f);
  }
  EXPECT_LT(last, 0.6 * first);
}

}  // namespace
}  // namespace slim::num
