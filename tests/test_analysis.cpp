// Static analysis passes (src/analysis): the schedule lint, the graph lint
// and their wiring into sched::compile.
//
// Strategy: every rule gets one deliberately corrupted fixture asserting the
// exact rule_id, plus a clean sweep over all seed schemes proving the rules
// have no false positives on correct schedules.

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <stdexcept>
#include <utility>
#include <vector>

#include "src/analysis/findings.hpp"
#include "src/analysis/graph_check.hpp"
#include "src/analysis/schedule_check.hpp"
#include "src/core/context_exchange.hpp"
#include "src/core/runner.hpp"
#include "src/memory/tracker.hpp"
#include "src/sched/builder.hpp"
#include "src/sched/schedule.hpp"
#include "src/sim/graph.hpp"

namespace {

using namespace slim;
using analysis::Finding;
using analysis::has_rule;
using analysis::Severity;
using sched::Pass;
using sched::PassType;

sched::PipelineSpec base_spec(int p, int n, int m) {
  sched::PipelineSpec spec;
  spec.cfg = model::llama13b();
  spec.gpu = model::hopper80();
  spec.shard = {8, 1, 1, 8};
  spec.p = p;
  spec.v = 1;
  spec.n = n;
  spec.m = m;
  spec.seq = 131072;
  spec.offload.pcie_bandwidth = spec.gpu.pcie_bandwidth;
  return spec;
}

/// Restores the process-global compile lint toggle on scope exit, so a
/// failing assertion cannot leak a disabled lint into other tests.
struct LintGuard {
  bool saved = sched::compile_lint_enabled();
  ~LintGuard() { sched::set_compile_lint(saved); }
};

/// Compiles a plan with the in-compile lint disabled so rule violations
/// come back from check_graph instead of aborting compile().
sched::BuildOutput compile_unlinted(const core::SchedulePlan& plan) {
  LintGuard guard;
  sched::set_compile_lint(false);
  std::unique_ptr<core::ExchangePlanner> planner;
  if (plan.spec.context_exchange && plan.spec.p > 1) {
    planner = std::make_unique<core::ExchangePlanner>(plan.spec);
  }
  return sched::compile(plan.spec, plan.programs, planner.get());
}

std::vector<Finding> lint_schedule(const core::SchedulePlan& plan) {
  analysis::ScheduleLintOptions options;
  options.max_inflight_units = plan.max_inflight_units;
  return analysis::check_schedule(plan.spec, plan.programs, options);
}

// ---------------------------------------------------------------------------
// Clean sweep: all schemes over the acceptance grid produce zero findings
// from both passes (and the scheme's declared in-flight bound holds).

TEST(AnalysisSweep, AllSchemesCleanAcrossGrid) {
  for (const core::Scheme scheme : core::all_schemes()) {
    for (const int p : {2, 4, 8}) {
      for (int n : {1, 4}) {
        for (const int m : {p, 2 * p}) {
          if (scheme == core::Scheme::TeraPipe && n > 1 && n % p != 0) {
            n = ((n + p - 1) / p) * p;  // uniform slicing: n multiple of p
          }
          sched::PipelineSpec spec = base_spec(p, n, m);
          spec.context_exchange = true;
          spec.vocab_parallel = scheme == core::Scheme::SlimPipe;
          SCOPED_TRACE(std::string(core::scheme_name(scheme)) + " p=" +
                       std::to_string(p) + " n=" + std::to_string(n) +
                       " m=" + std::to_string(m));
          const core::SchedulePlan plan = core::plan_scheme(scheme, spec);
          const auto sched_findings = lint_schedule(plan);
          EXPECT_TRUE(sched_findings.empty())
              << analysis::render(sched_findings);
          const auto built = compile_unlinted(plan);
          const auto graph_findings =
              analysis::check_graph(*built.graph, plan.spec);
          EXPECT_TRUE(graph_findings.empty())
              << analysis::render(graph_findings);
        }
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Pass 1 fixtures: one corrupted schedule per rule.

TEST(ScheduleCheck, DroppedBackwardFiresBackwardMultiplicity) {
  core::SchedulePlan plan =
      core::plan_scheme(core::Scheme::OneF1B, base_spec(2, 1, 4));
  auto& program = plan.programs[0];
  const auto it = std::find_if(
      program.begin(), program.end(),
      [](const Pass& pass) { return pass.type == PassType::Backward; });
  ASSERT_NE(it, program.end());
  program.erase(it);
  const auto findings = lint_schedule(plan);
  EXPECT_TRUE(has_rule(findings, "sched-backward-multiplicity"))
      << analysis::render(findings);
  EXPECT_TRUE(analysis::has_errors(findings));
}

TEST(ScheduleCheck, DuplicatedForwardFiresForwardMultiplicity) {
  core::SchedulePlan plan =
      core::plan_scheme(core::Scheme::OneF1B, base_spec(2, 1, 4));
  auto& program = plan.programs[1];
  ASSERT_EQ(program.front().type, PassType::Forward);
  program.push_back(program.front());
  const auto findings = lint_schedule(plan);
  EXPECT_TRUE(has_rule(findings, "sched-forward-multiplicity"))
      << analysis::render(findings);
}

TEST(ScheduleCheck, ZbvWeightBeforeInputFiresBackwardOrder) {
  core::SchedulePlan plan =
      core::plan_scheme(core::Scheme::ZBV, base_spec(4, 1, 8));
  // Swap the first BackwardInput with its unit's BackwardWeight: the W half
  // then runs before the I half, which ZB-V's split ordering forbids.
  auto& program = plan.programs[0];
  const auto input = std::find_if(
      program.begin(), program.end(),
      [](const Pass& pass) { return pass.type == PassType::BackwardInput; });
  ASSERT_NE(input, program.end());
  const auto weight = std::find_if(
      program.begin(), program.end(), [&](const Pass& pass) {
        return pass.type == PassType::BackwardWeight &&
               pass.microbatch == input->microbatch &&
               pass.slice == input->slice && pass.chunk == input->chunk;
      });
  ASSERT_NE(weight, program.end());
  std::iter_swap(input, weight);
  const auto findings = lint_schedule(plan);
  EXPECT_TRUE(has_rule(findings, "sched-backward-order"))
      << analysis::render(findings);
}

TEST(ScheduleCheck, BackwardBeforeForwardFiresBackwardOrder) {
  core::SchedulePlan plan =
      core::plan_scheme(core::Scheme::OneF1B, base_spec(2, 1, 4));
  // The last stage runs strict 1F1B: F0 B0 F1 B1 ... — swapping the first
  // two passes schedules B0 before its forward.
  auto& program = plan.programs[1];
  ASSERT_GE(program.size(), 2u);
  ASSERT_EQ(program[0].type, PassType::Forward);
  ASSERT_EQ(program[1].type, PassType::Backward);
  std::swap(program[0], program[1]);
  const auto findings = lint_schedule(plan);
  EXPECT_TRUE(has_rule(findings, "sched-backward-order"))
      << analysis::render(findings);
}

TEST(ScheduleCheck, GpipeAccumulationExceedsOneF1bBound) {
  // GPipe holds all m = 8 microbatches; against 1F1B's declared cap of
  // p = 2 the ledger must flag the third warm-up forward.
  const core::SchedulePlan plan =
      core::plan_scheme(core::Scheme::GPipe, base_spec(2, 1, 8));
  analysis::ScheduleLintOptions options;
  options.max_inflight_units = 2.0;
  const auto findings =
      analysis::check_schedule(plan.spec, plan.programs, options);
  EXPECT_TRUE(has_rule(findings, "sched-inflight-bound"))
      << analysis::render(findings);
  // One report per device, not one per excess pass.
  EXPECT_EQ(analysis::count(findings, Severity::Error),
            static_cast<std::size_t>(plan.spec.p));
}

TEST(ScheduleCheck, DeclaredBoundIsTightForOneF1b) {
  // The scheme's own cap passes; cap - 1 fails. Proves the ledger tracks
  // the warm-up depth exactly rather than being merely loose.
  const core::SchedulePlan plan =
      core::plan_scheme(core::Scheme::OneF1B, base_spec(4, 1, 8));
  analysis::ScheduleLintOptions options;
  options.max_inflight_units = plan.max_inflight_units;
  EXPECT_TRUE(
      analysis::check_schedule(plan.spec, plan.programs, options).empty());
  options.max_inflight_units = plan.max_inflight_units - 1.0;
  EXPECT_TRUE(has_rule(
      analysis::check_schedule(plan.spec, plan.programs, options),
      "sched-inflight-bound"));
}

TEST(ScheduleCheck, OutOfRangeChunkFiresPassRange) {
  core::SchedulePlan plan =
      core::plan_scheme(core::Scheme::OneF1B, base_spec(2, 1, 4));
  plan.programs[0][0].chunk = 5;  // v == 1: only chunk 0 exists
  const auto findings = lint_schedule(plan);
  EXPECT_TRUE(has_rule(findings, "sched-pass-range"))
      << analysis::render(findings);
}

TEST(ScheduleCheck, InvalidSpecFiresSpecRule) {
  sched::PipelineSpec spec = base_spec(2, 1, 4);
  spec.seq = 0;
  const auto findings = analysis::check_schedule(spec, {{}, {}});
  EXPECT_TRUE(has_rule(findings, "sched-spec")) << analysis::render(findings);
}

TEST(ScheduleCheck, BrokenLayoutFiresRoundtrip) {
  // Sequential layout with v = 2 maps stages >= p outside the device range:
  // the round-trip rule localizes the inconsistency (alongside sched-spec).
  sched::PipelineSpec spec = base_spec(2, 1, 4);
  spec.v = 2;
  spec.layout = sched::StageLayoutKind::Sequential;
  const auto findings = analysis::check_schedule(spec, {{}, {}});
  EXPECT_TRUE(has_rule(findings, "sched-layout-roundtrip"))
      << analysis::render(findings);
  EXPECT_TRUE(has_rule(findings, "sched-spec"));
}

TEST(ScheduleCheck, WrongProgramCountReported) {
  const core::SchedulePlan plan =
      core::plan_scheme(core::Scheme::OneF1B, base_spec(4, 1, 4));
  std::vector<sched::DeviceProgram> short_programs(plan.programs.begin(),
                                                   plan.programs.end() - 1);
  const auto findings = analysis::check_schedule(plan.spec, short_programs);
  EXPECT_TRUE(analysis::has_errors(findings));
}

// ---------------------------------------------------------------------------
// Pass 2 fixtures: hand-built graphs and mutated compile output.

TEST(GraphCheck, UnmatchedSendReported) {
  sim::OpGraph graph(sim::make_cluster(2));
  const auto f0 = graph.add_compute(0, 1.0, sim::OpClass::Forward, {});
  graph.add_transfer(0, 1, 1e6, sim::OpClass::Send, {f0});  // never consumed
  const auto findings = analysis::check_graph(graph);
  EXPECT_TRUE(has_rule(findings, "graph-unmatched-send"))
      << analysis::render(findings);
}

TEST(GraphCheck, OutOfFifoReceiveReported) {
  sim::OpGraph graph(sim::make_cluster(2));
  const auto f0 = graph.add_compute(0, 1.0, sim::OpClass::Forward, {});
  const auto f1 = graph.add_compute(0, 1.0, sim::OpClass::Forward, {});
  const auto t0 = graph.add_transfer(0, 1, 1e6, sim::OpClass::Send, {f0});
  const auto t1 = graph.add_transfer(0, 1, 1e6, sim::OpClass::Send, {f1});
  // The receiver consumes the second posted transfer first: a rendezvous
  // transport would deadlock here.
  graph.add_compute(1, 1.0, sim::OpClass::Forward, {t1});
  graph.add_compute(1, 1.0, sim::OpClass::Forward, {t0});
  const auto findings = analysis::check_graph(graph);
  EXPECT_TRUE(has_rule(findings, "graph-channel-fifo"))
      << analysis::render(findings);
  EXPECT_TRUE(analysis::has_errors(findings));
}

TEST(GraphCheck, FifoReceiveIsClean) {
  sim::OpGraph graph(sim::make_cluster(2));
  const auto f0 = graph.add_compute(0, 1.0, sim::OpClass::Forward, {});
  const auto f1 = graph.add_compute(0, 1.0, sim::OpClass::Forward, {});
  const auto t0 = graph.add_transfer(0, 1, 1e6, sim::OpClass::Send, {f0});
  const auto t1 = graph.add_transfer(0, 1, 1e6, sim::OpClass::Send, {f1});
  graph.add_compute(1, 1.0, sim::OpClass::Forward, {t0});
  graph.add_compute(1, 1.0, sim::OpClass::Forward, {t1});
  const auto findings = analysis::check_graph(graph);
  EXPECT_TRUE(findings.empty()) << analysis::render(findings);
}

TEST(GraphCheck, DependencyCycleReportsPath) {
  sim::OpGraph graph(sim::make_cluster(2));
  const auto a = graph.add_compute(0, 1.0, sim::OpClass::Forward, {});
  const auto b = graph.add_compute(1, 1.0, sim::OpClass::Forward, {a});
  graph.op(a).deps.push_back(b);  // a -> b -> a
  const auto findings = analysis::check_graph(graph);
  ASSERT_TRUE(has_rule(findings, "graph-acyclic"))
      << analysis::render(findings);
  for (const Finding& finding : findings) {
    if (finding.rule_id == "graph-acyclic") {
      EXPECT_NE(finding.message.find("cycle:"), std::string::npos);
      EXPECT_NE(finding.message.find("op 0"), std::string::npos);
      EXPECT_NE(finding.message.find("op 1"), std::string::npos);
    }
  }
}

TEST(GraphCheck, SelfDependencyReported) {
  sim::OpGraph graph(sim::make_cluster(1));
  const auto a = graph.add_compute(0, 1.0, sim::OpClass::Forward, {});
  graph.op(a).deps.push_back(a);
  const auto findings = analysis::check_graph(graph);
  EXPECT_TRUE(has_rule(findings, "graph-dep-range"))
      << analysis::render(findings);
}

TEST(GraphCheck, LeakedMemDeltaFiresBalance) {
  const core::SchedulePlan plan =
      core::plan_scheme(core::Scheme::OneF1B, base_spec(2, 1, 4));
  const auto built = compile_unlinted(plan);
  EXPECT_TRUE(analysis::check_graph(*built.graph, plan.spec).empty());
  // Leak one activation allocation that no op ever frees.
  built.graph->add_mem(0, {0, mem::kActivation, 4096.0, false});
  const auto findings = analysis::check_graph(*built.graph, plan.spec);
  EXPECT_TRUE(has_rule(findings, "graph-mem-balance"))
      << analysis::render(findings);
}

TEST(GraphCheck, UnbackedFreeFiresNegative) {
  const core::SchedulePlan plan =
      core::plan_scheme(core::Scheme::OneF1B, base_spec(2, 1, 4));
  const auto built = compile_unlinted(plan);
  // A free with no preceding allocation must drive the replayed balance
  // negative no matter the replay order.
  built.graph->add_mem(0, {0, mem::kKvCache, -4096.0, false});
  const auto findings = analysis::check_graph(*built.graph, plan.spec);
  EXPECT_TRUE(has_rule(findings, "graph-mem-negative"))
      << analysis::render(findings);
  EXPECT_TRUE(has_rule(findings, "graph-mem-balance"));
}

TEST(GraphCheck, VocabFlagMismatchReported) {
  // Build a SlimPipe graph WITHOUT vocabulary parallelism (explicit vocab
  // ops exist), then lint it against a spec claiming vocab parallelism.
  sched::PipelineSpec spec = base_spec(2, 2, 2);
  spec.vocab_parallel = false;
  const core::SchedulePlan plan =
      core::plan_scheme(core::Scheme::SlimPipe, spec);
  const auto built = compile_unlinted(plan);
  EXPECT_TRUE(analysis::check_graph(*built.graph, plan.spec).empty());

  sched::PipelineSpec claimed = plan.spec;
  claimed.vocab_parallel = true;
  const auto findings = analysis::check_graph(*built.graph, claimed);
  EXPECT_TRUE(has_rule(findings, "graph-vocab-ops"))
      << analysis::render(findings);

  // And the converse: a vocab-parallel graph has no explicit vocab ops, so
  // a spec claiming otherwise misses its m * n expected ops.
  sched::PipelineSpec par = plan.spec;
  par.vocab_parallel = true;
  const core::SchedulePlan par_plan =
      core::plan_scheme(core::Scheme::SlimPipe, par);
  const auto par_built = compile_unlinted(par_plan);
  EXPECT_TRUE(analysis::check_graph(*par_built.graph, par_plan.spec).empty());
  sched::PipelineSpec unclaimed = par_plan.spec;
  unclaimed.vocab_parallel = false;
  EXPECT_TRUE(has_rule(analysis::check_graph(*par_built.graph, unclaimed),
                       "graph-vocab-ops"));
}

// ---------------------------------------------------------------------------
// Wiring: compile() aborts on corrupted programs when the lint is on and
// accepts them when it is off.

TEST(CompileLint, RejectsCorruptedProgram) {
  LintGuard guard;
  sched::set_compile_lint(true);
  core::SchedulePlan plan =
      core::plan_scheme(core::Scheme::OneF1B, base_spec(2, 1, 4));
  auto& program = plan.programs[0];
  const auto it = std::find_if(
      program.begin(), program.end(),
      [](const Pass& pass) { return pass.type == PassType::Backward; });
  ASSERT_NE(it, program.end());
  program.erase(it);
  EXPECT_THROW(sched::compile(plan.spec, plan.programs, nullptr),
               std::logic_error);
}

TEST(CompileLint, ToggleDisablesTheLint) {
  LintGuard guard;
  core::SchedulePlan plan =
      core::plan_scheme(core::Scheme::OneF1B, base_spec(2, 1, 4));
  plan.programs[0].push_back(plan.programs[0].front());  // duplicate forward
  sched::set_compile_lint(false);
  EXPECT_FALSE(sched::compile_lint_enabled());
  const auto built = sched::compile(plan.spec, plan.programs, nullptr);
  EXPECT_NE(built.graph, nullptr);
  sched::set_compile_lint(true);
  EXPECT_TRUE(sched::compile_lint_enabled());
  EXPECT_THROW(sched::compile(plan.spec, plan.programs, nullptr),
               std::logic_error);
}

// ---------------------------------------------------------------------------
// The scheme's declared in-flight cap travels through the spec: plan_scheme
// stamps it, and compile() enforces it on the main simulation path.

TEST(CompileInflightBound, PlanThreadsDeclaredCapThroughSpec) {
  const core::SchedulePlan plan =
      core::plan_scheme(core::Scheme::GPipe, base_spec(2, 1, 4));
  EXPECT_GT(plan.max_inflight_units, 0.0);
  EXPECT_EQ(plan.spec.max_inflight_units, plan.max_inflight_units);
}

TEST(CompileInflightBound, CompileRejectsScheduleOverDeclaredCap) {
  LintGuard guard;
  sched::set_compile_lint(true);
  core::SchedulePlan plan =
      core::plan_scheme(core::Scheme::GPipe, base_spec(2, 1, 4));
  // The honest cap compiles clean...
  EXPECT_NO_THROW(sched::compile(plan.spec, plan.programs, nullptr));
  // ...an understated one is rejected before any graph is built.
  plan.spec.max_inflight_units = 1.0;  // GPipe holds all m = 4 units
  try {
    sched::compile(plan.spec, plan.programs, nullptr);
    FAIL() << "compile accepted a schedule over its declared in-flight cap";
  } catch (const std::logic_error& e) {
    EXPECT_NE(std::string(e.what()).find("sched-inflight-bound"),
              std::string::npos)
        << e.what();
  }
}

// ---------------------------------------------------------------------------
// Finding plumbing.

TEST(Findings, RenderSummaryAndQueries) {
  std::vector<Finding> findings;
  EXPECT_EQ(analysis::summary(findings), "clean");
  EXPECT_FALSE(analysis::has_errors(findings));
  findings.push_back({Severity::Warning, "graph-channel-fifo", "op 3",
                      "posting order inverted"});
  findings.push_back({Severity::Error, "sched-backward-order", "dev 0 pass 2",
                      "backward before forward"});
  EXPECT_TRUE(analysis::has_errors(findings));
  EXPECT_EQ(analysis::count(findings, Severity::Error), 1u);
  EXPECT_EQ(analysis::count(findings, Severity::Warning), 1u);
  EXPECT_TRUE(has_rule(findings, "sched-backward-order"));
  EXPECT_FALSE(has_rule(findings, "sched-inflight-bound"));
  const std::string table = analysis::render(findings);
  EXPECT_NE(table.find("sched-backward-order"), std::string::npos);
  EXPECT_NE(table.find("dev 0 pass 2"), std::string::npos);
  EXPECT_EQ(analysis::summary(findings), "2 findings (1 errors, 1 warnings)");
}

}  // namespace
