#include "src/obs/json.hpp"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace slim::obs {

std::string json_escape(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (const char raw : text) {
    const unsigned char c = static_cast<unsigned char>(raw);
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += raw;
        }
    }
  }
  return out;
}

std::string json_quote(std::string_view text) {
  return "\"" + json_escape(text) + "\"";
}

std::string json_number(double value) {
  if (!std::isfinite(value)) value = 0.0;
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%.17g", value);
  return buf;
}

const JsonValue* JsonValue::find(std::string_view key) const {
  if (kind_ != Kind::Object) return nullptr;
  for (const auto& [k, v] : object_) {
    if (k == key) return &v;
  }
  return nullptr;
}

std::string JsonValue::string_or(std::string_view key,
                                 std::string fallback) const {
  const JsonValue* v = find(key);
  return v != nullptr && v->is_string() ? v->str() : std::move(fallback);
}

double JsonValue::number_or(std::string_view key, double fallback) const {
  const JsonValue* v = find(key);
  return v != nullptr && v->is_number() ? v->number() : fallback;
}

JsonValue JsonValue::make_string(std::string s) {
  JsonValue v;
  v.kind_ = Kind::String;
  v.string_ = std::move(s);
  return v;
}

JsonValue JsonValue::make_number(double value) {
  JsonValue v;
  v.kind_ = Kind::Number;
  v.number_ = value;
  return v;
}

JsonValue JsonValue::make_bool(bool value) {
  JsonValue v;
  v.kind_ = Kind::Bool;
  v.bool_ = value;
  return v;
}

JsonValue JsonValue::make_array() {
  JsonValue v;
  v.kind_ = Kind::Array;
  return v;
}

JsonValue JsonValue::make_object() {
  JsonValue v;
  v.kind_ = Kind::Object;
  return v;
}

void JsonValue::push_back(JsonValue v) {
  if (kind_ == Kind::Null) kind_ = Kind::Array;
  array_.push_back(std::move(v));
}

void JsonValue::set(std::string_view key, JsonValue v) {
  if (kind_ == Kind::Null) kind_ = Kind::Object;
  for (auto& [k, existing] : object_) {
    if (k == key) {
      existing = std::move(v);
      return;
    }
  }
  object_.emplace_back(std::string(key), std::move(v));
}

namespace {

void dump_impl(const JsonValue& value, std::string* out, int indent,
               int depth) {
  const bool pretty = indent > 0;
  auto newline = [&](int level) {
    if (!pretty) return;
    *out += '\n';
    out->append(static_cast<std::size_t>(indent * level), ' ');
  };
  switch (value.kind()) {
    case JsonValue::Kind::Null: *out += "null"; break;
    case JsonValue::Kind::Bool: *out += value.boolean() ? "true" : "false"; break;
    case JsonValue::Kind::Number: *out += json_number(value.number()); break;
    case JsonValue::Kind::String: *out += json_quote(value.str()); break;
    case JsonValue::Kind::Array: {
      *out += '[';
      bool first = true;
      for (const JsonValue& element : value.array()) {
        if (!first) *out += ',';
        first = false;
        newline(depth + 1);
        dump_impl(element, out, indent, depth + 1);
      }
      if (!first) newline(depth);
      *out += ']';
      break;
    }
    case JsonValue::Kind::Object: {
      *out += '{';
      bool first = true;
      for (const auto& [key, member] : value.object()) {
        if (!first) *out += ',';
        first = false;
        newline(depth + 1);
        *out += json_quote(key);
        *out += pretty ? ": " : ":";
        dump_impl(member, out, indent, depth + 1);
      }
      if (!first) newline(depth);
      *out += '}';
      break;
    }
  }
}

}  // namespace

std::string JsonValue::dump(int indent) const {
  std::string out;
  dump_impl(*this, &out, indent, 0);
  return out;
}

/// Recursive-descent JSON parser over a string_view.
class JsonParser {
 public:
  JsonParser(std::string_view text, std::string* error)
      : text_(text), error_(error) {}

  bool run(JsonValue* out) {
    skip_ws();
    if (!parse_value(out, 0)) return false;
    skip_ws();
    if (pos_ != text_.size()) return fail("trailing characters after value");
    return true;
  }

 private:
  static constexpr int kMaxDepth = 128;

  bool fail(const std::string& message) {
    if (error_ != nullptr) {
      *error_ = message + " at byte " + std::to_string(pos_);
    }
    return false;
  }

  void skip_ws() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c == ' ' || c == '\t' || c == '\n' || c == '\r') {
        ++pos_;
      } else {
        break;
      }
    }
  }

  bool literal(std::string_view word) {
    if (text_.substr(pos_, word.size()) != word) {
      return fail("bad literal");
    }
    pos_ += word.size();
    return true;
  }

  bool parse_string(std::string* out) {
    if (pos_ >= text_.size() || text_[pos_] != '"') {
      return fail("expected string");
    }
    ++pos_;
    out->clear();
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return true;
      if (static_cast<unsigned char>(c) < 0x20) {
        return fail("raw control character in string");
      }
      if (c != '\\') {
        *out += c;
        continue;
      }
      if (pos_ >= text_.size()) return fail("dangling escape");
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': *out += '"'; break;
        case '\\': *out += '\\'; break;
        case '/': *out += '/'; break;
        case 'n': *out += '\n'; break;
        case 't': *out += '\t'; break;
        case 'r': *out += '\r'; break;
        case 'b': *out += '\b'; break;
        case 'f': *out += '\f'; break;
        case 'u': {
          if (pos_ + 4 > text_.size()) return fail("truncated \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') code += static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') code += static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') code += static_cast<unsigned>(h - 'A' + 10);
            else return fail("bad hex digit in \\u escape");
          }
          // Encode as UTF-8 (surrogate pairs kept as-is; we only emit BMP
          // control codes ourselves).
          if (code < 0x80) {
            *out += static_cast<char>(code);
          } else if (code < 0x800) {
            *out += static_cast<char>(0xC0 | (code >> 6));
            *out += static_cast<char>(0x80 | (code & 0x3F));
          } else {
            *out += static_cast<char>(0xE0 | (code >> 12));
            *out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
            *out += static_cast<char>(0x80 | (code & 0x3F));
          }
          break;
        }
        default:
          return fail("unknown escape");
      }
    }
    return fail("unterminated string");
  }

  bool parse_number(JsonValue* out) {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) return fail("expected number");
    const std::string token(text_.substr(start, pos_ - start));
    char* end = nullptr;
    const double value = std::strtod(token.c_str(), &end);
    if (end == nullptr || *end != '\0') return fail("malformed number");
    *out = JsonValue::make_number(value);
    return true;
  }

  bool parse_value(JsonValue* out, int depth) {
    if (depth > kMaxDepth) return fail("nesting too deep");
    skip_ws();
    if (pos_ >= text_.size()) return fail("unexpected end of input");
    const char c = text_[pos_];
    switch (c) {
      case '{': {
        ++pos_;
        out->kind_ = JsonValue::Kind::Object;
        skip_ws();
        if (pos_ < text_.size() && text_[pos_] == '}') {
          ++pos_;
          return true;
        }
        while (true) {
          skip_ws();
          std::string key;
          if (!parse_string(&key)) return false;
          skip_ws();
          if (pos_ >= text_.size() || text_[pos_] != ':') {
            return fail("expected ':' after object key");
          }
          ++pos_;
          JsonValue member;
          if (!parse_value(&member, depth + 1)) return false;
          out->object_.emplace_back(std::move(key), std::move(member));
          skip_ws();
          if (pos_ >= text_.size()) return fail("unterminated object");
          if (text_[pos_] == ',') {
            ++pos_;
            continue;
          }
          if (text_[pos_] == '}') {
            ++pos_;
            return true;
          }
          return fail("expected ',' or '}' in object");
        }
      }
      case '[': {
        ++pos_;
        out->kind_ = JsonValue::Kind::Array;
        skip_ws();
        if (pos_ < text_.size() && text_[pos_] == ']') {
          ++pos_;
          return true;
        }
        while (true) {
          JsonValue element;
          if (!parse_value(&element, depth + 1)) return false;
          out->array_.push_back(std::move(element));
          skip_ws();
          if (pos_ >= text_.size()) return fail("unterminated array");
          if (text_[pos_] == ',') {
            ++pos_;
            continue;
          }
          if (text_[pos_] == ']') {
            ++pos_;
            return true;
          }
          return fail("expected ',' or ']' in array");
        }
      }
      case '"': {
        out->kind_ = JsonValue::Kind::String;
        return parse_string(&out->string_);
      }
      case 't':
        out->kind_ = JsonValue::Kind::Bool;
        out->bool_ = true;
        return literal("true");
      case 'f':
        out->kind_ = JsonValue::Kind::Bool;
        out->bool_ = false;
        return literal("false");
      case 'n':
        out->kind_ = JsonValue::Kind::Null;
        return literal("null");
      default:
        return parse_number(out);
    }
  }

  std::string_view text_;
  std::string* error_;
  std::size_t pos_ = 0;
};

bool JsonValue::parse(std::string_view text, JsonValue* out,
                      std::string* error) {
  *out = JsonValue();
  JsonParser parser(text, error);
  return parser.run(out);
}

}  // namespace slim::obs
