// Arena-based memory ownership for the numerics substrate: scope (mark /
// release) watermark reuse, per-category accounting, uninitialized tensor
// construction, bit-identity of arena-backed execution across pool widths,
// and measured-vs-analytical footprint reconciliation between the threaded
// runtime's arena sinks and the simulator's replayed byte model.

#include <gtest/gtest.h>

#include <cstdint>
#include <thread>
#include <vector>

#include "src/core/runner.hpp"
#include "src/memory/reconcile.hpp"
#include "src/numerics/arena.hpp"
#include "src/numerics/tensor.hpp"
#include "src/numerics/transformer_block.hpp"
#include "src/runtime/pipeline_runtime.hpp"
#include "src/util/rng.hpp"
#include "src/util/thread_pool.hpp"

namespace slim {
namespace {

using num::Arena;
using num::ArenaBinding;
using num::ArenaStats;
using num::Tensor;

TEST(ArenaTest, ScopeReleaseReusesWatermark) {
  Arena arena(nullptr, /*block_bytes=*/1 << 12);
  void* first = arena.allocate(100, mem::kActivation);
  ASSERT_NE(first, nullptr);
  const Arena::Mark mark = arena.mark();
  const std::int64_t live_at_mark = arena.live_bytes();

  void* second = arena.allocate(200, mem::kActivation);
  EXPECT_NE(second, first);
  EXPECT_GT(arena.live_bytes(), live_at_mark);
  arena.release_to(mark);
  EXPECT_EQ(arena.live_bytes(), live_at_mark);

  // Re-allocating after release reuses the same watermark: same address,
  // no new block.
  const std::int64_t reserved = arena.reserved_bytes();
  void* third = arena.allocate(200, mem::kActivation);
  EXPECT_EQ(third, second);
  EXPECT_EQ(arena.reserved_bytes(), reserved);
}

TEST(ArenaTest, ScopesNestLifo) {
  Arena arena;
  const std::int64_t base = arena.live_bytes();
  {
    num::ArenaScope outer(arena);
    arena.allocate(64, mem::kActivation);
    {
      num::ArenaScope inner(arena);
      arena.allocate(64, mem::kKvCache);
      EXPECT_GT(arena.live_bytes(), base);
    }
    EXPECT_EQ(arena.allocation_count(), 1u);
  }
  EXPECT_EQ(arena.live_bytes(), base);
  EXPECT_EQ(arena.allocation_count(), 0u);
}

TEST(ArenaTest, GrowsPastBlockAndReleasesAcrossBlocks) {
  Arena arena(nullptr, /*block_bytes=*/256);
  const Arena::Mark mark = arena.mark();
  // Force several blocks, including an oversized allocation.
  arena.allocate(200, mem::kActivation);
  arena.allocate(200, mem::kActivation);
  arena.allocate(4096, mem::kActivation);
  EXPECT_GE(arena.reserved_bytes(), 4096);
  arena.release_to(mark);
  EXPECT_EQ(arena.live_bytes(), 0);
  // Blocks are retained for reuse, not returned to the OS.
  EXPECT_GE(arena.reserved_bytes(), 4096);
}

TEST(ArenaTest, StatsTrackPerCategoryLiveAndPeak) {
  ArenaStats stats;
  Arena arena(&stats);
  const Arena::Mark mark = arena.mark();
  arena.allocate(1000, mem::kActivation);
  arena.allocate(500, mem::kKvCache);
  // 64-byte alignment rounds the requests up.
  EXPECT_EQ(stats.live_bytes(mem::kActivation), 1024);
  EXPECT_EQ(stats.live_bytes(mem::kKvCache), 512);
  EXPECT_EQ(stats.total_live_bytes(), 1536);
  EXPECT_EQ(stats.total_peak_bytes(), 1536);

  arena.release_to(mark);
  EXPECT_EQ(stats.live_bytes(mem::kActivation), 0);
  EXPECT_EQ(stats.live_bytes(mem::kKvCache), 0);
  EXPECT_EQ(stats.total_live_bytes(), 0);
  // Peaks survive the release.
  EXPECT_EQ(stats.peak_bytes(mem::kActivation), 1024);
  EXPECT_EQ(stats.peak_bytes(mem::kKvCache), 512);
  EXPECT_EQ(stats.total_peak_bytes(), 1536);
}

TEST(ArenaTest, TotalPeakIsConcurrentHighWaterAcrossArenas) {
  // Two arenas sharing one sink: the total peak is the true concurrent
  // maximum, not the sum of per-arena peaks.
  ArenaStats stats;
  Arena a(&stats), b(&stats);
  const Arena::Mark ma = a.mark();
  a.allocate(1024, mem::kActivation);
  a.release_to(ma);                     // a's 1024 is gone...
  b.allocate(512, mem::kActivation);    // ...before b's 512 arrives
  EXPECT_EQ(stats.total_peak_bytes(), 1024);
  EXPECT_EQ(stats.total_live_bytes(), 512);
}

TEST(ArenaTest, TensorBindingRoutesAllocationsAndCountsThem) {
  ArenaStats stats;
  Arena arena(&stats);
  const std::int64_t heap_before = num::tensor_heap_allocs();
  const std::int64_t arena_before = num::tensor_arena_allocs();

  Tensor outside(4, 4);
  EXPECT_FALSE(outside.arena_backed());

  Tensor inside;
  {
    ArenaBinding bind(&arena, mem::kKvCache);
    inside = Tensor(8, 8);
    EXPECT_TRUE(inside.arena_backed());
  }
  EXPECT_EQ(stats.live_bytes(mem::kKvCache), 8 * 8 * 4);
  EXPECT_GE(num::tensor_heap_allocs(), heap_before + 1);
  EXPECT_GE(num::tensor_arena_allocs(), arena_before + 1);

  // Copying OUT of a binding scope deep-copies to the heap: value
  // semantics survive the arena's release.
  Tensor copy = inside;
  EXPECT_FALSE(copy.arena_backed());
  arena.release_all();
  EXPECT_EQ(copy.at(0, 0), 0.0f);
}

TEST(ArenaTest, UninitTensorIsFullyWritable) {
  // uninit skips the zero-fill; every element must still be writable and
  // readable after a full overwrite.
  Tensor t = Tensor::uninit(13, 7);
  for (std::int64_t i = 0; i < t.size(); ++i) {
    t.data()[i] = static_cast<float>(i);
  }
  EXPECT_EQ(t.at(12, 6), static_cast<float>(13 * 7 - 1));
  // Zero-init default stays zero-initialized.
  Tensor z(13, 7);
  for (std::int64_t i = 0; i < z.size(); ++i) EXPECT_EQ(z.data()[i], 0.0f);
}

TEST(ArenaTest, WorkspaceLeaseReleasesOnScopeExit) {
  Arena& ws = num::workspace_arena();
  const std::int64_t live = ws.live_bytes();
  {
    num::WorkspaceLease<float> a(100);
    num::WorkspaceLease<double> b(50);
    a[0] = 1.0f;
    b[49] = 2.0;
    EXPECT_GT(ws.live_bytes(), live);
  }
  EXPECT_EQ(ws.live_bytes(), live);
}

// ---------------------------------------------------------------- layers

std::vector<int> sweep_widths() {
  std::vector<int> widths = {1, 2, 7};
  const int hw = static_cast<int>(std::thread::hardware_concurrency());
  if (hw > 1 && hw != 2 && hw != 7) widths.push_back(hw);
  return widths;
}

class PoolWidthGuard {
 public:
  PoolWidthGuard() : previous_(util::ThreadPool::global().max_threads()) {}
  ~PoolWidthGuard() { util::ThreadPool::global().set_threads(previous_); }

 private:
  int previous_;
};

/// Runs two forward slices + LIFO backward through one layer, optionally
/// arena-backed, and returns the accumulated gradients.
num::LayerGrads run_layer(const num::BlockDims& dims,
                          const num::LayerWeights& weights,
                          const Tensor& x0, const Tensor& x1,
                          ArenaStats* stats) {
  num::Layer layer(dims, weights);
  if (stats != nullptr) layer.set_arena_stats(stats);
  num::LayerGrads grads = num::LayerGrads::zeros(dims);
  const Tensor y0 = layer.forward_slice(x0, 0);
  const Tensor y1 = layer.forward_slice(x1, x0.rows());
  Tensor dy(y1.rows(), y1.cols());
  dy.fill(0.01f);
  layer.backward_slice(dy, grads);
  Tensor dy0(y0.rows(), y0.cols());
  dy0.fill(0.01f);
  layer.backward_slice(dy0, grads);
  EXPECT_EQ(layer.live_slices(), 0);
  return grads;
}

TEST(ArenaLayerTest, ArenaBackedGradientsMatchHeapExactly) {
  Rng rng(7);
  const num::BlockDims dims{16, 2, 2, 24};
  const num::LayerWeights weights = num::LayerWeights::random(dims, rng);
  const Tensor x0 = Tensor::randn(4, 16, rng);
  const Tensor x1 = Tensor::randn(4, 16, rng);

  const num::LayerGrads heap = run_layer(dims, weights, x0, x1, nullptr);
  ArenaStats stats;
  const num::LayerGrads arena = run_layer(dims, weights, x0, x1, &stats);
  EXPECT_EQ(arena.max_abs_diff(heap), 0.0f);
  // The arenas actually saw the retained tensors.
  EXPECT_GT(stats.peak_bytes(mem::kActivation), 0);
  EXPECT_GT(stats.peak_bytes(mem::kKvCache), 0);
  EXPECT_GT(stats.peak_bytes(mem::kGrads), 0);
  EXPECT_EQ(stats.total_live_bytes(), 0);  // LIFO fully unwound
}

TEST(ArenaLayerTest, ArenaBackedExecutionBitIdenticalAcrossWidths) {
  PoolWidthGuard guard;
  Rng rng(9);
  const num::BlockDims dims{16, 2, 2, 24};
  const num::LayerWeights weights = num::LayerWeights::random(dims, rng);
  const Tensor x0 = Tensor::randn(4, 16, rng);
  const Tensor x1 = Tensor::randn(4, 16, rng);

  util::ThreadPool& pool = util::ThreadPool::global();
  pool.set_threads(1);
  ArenaStats serial_stats;
  const num::LayerGrads serial =
      run_layer(dims, weights, x0, x1, &serial_stats);
  for (const int width : sweep_widths()) {
    pool.set_threads(width);
    ArenaStats stats;
    const num::LayerGrads grads = run_layer(dims, weights, x0, x1, &stats);
    EXPECT_EQ(grads.max_abs_diff(serial), 0.0f) << "width " << width;
    // The measured footprint is width-independent too: retained state is a
    // schedule property, not a thread-count property.
    for (int c = 0; c < mem::kNumCategories; ++c) {
      EXPECT_EQ(stats.peak_bytes(c), serial_stats.peak_bytes(c))
          << "category " << mem::category_name(c) << " width " << width;
    }
  }
}

TEST(ArenaLayerTest, MeasuredPeakMatchesSliceFootprint) {
  // Two live slices at peak: measured per-category peaks must equal
  // exactly 2x the analytical slice footprint.
  Rng rng(11);
  const num::BlockDims dims{16, 2, 2, 24};
  const num::LayerWeights weights = num::LayerWeights::random(dims, rng);
  num::Layer layer(dims, weights);
  ArenaStats stats;
  layer.set_arena_stats(&stats);
  const auto fp = layer.slice_footprint(4);
  const Tensor x0 = Tensor::randn(4, 16, rng);
  const Tensor x1 = Tensor::randn(4, 16, rng);
  num::LayerGrads grads = num::LayerGrads::zeros(dims);
  const Tensor y0 = layer.forward_slice(x0, 0);
  const Tensor y1 = layer.forward_slice(x1, 4);
  EXPECT_EQ(stats.live_bytes(mem::kActivation), 2 * fp.activation_bytes);
  EXPECT_EQ(stats.live_bytes(mem::kKvCache), 2 * fp.kv_bytes);
  EXPECT_EQ(stats.live_bytes(mem::kGrads), 2 * fp.grad_bytes);
  Tensor dy(4, 16);
  layer.backward_slice(dy, grads);
  EXPECT_EQ(stats.live_bytes(mem::kActivation), fp.activation_bytes);
  Tensor dy0(4, 16);
  layer.backward_slice(dy0, grads);
  EXPECT_EQ(stats.total_live_bytes(), 0);
  EXPECT_EQ(stats.peak_bytes(mem::kActivation), 2 * fp.activation_bytes);
  EXPECT_EQ(stats.peak_bytes(mem::kKvCache), 2 * fp.kv_bytes);
  EXPECT_EQ(stats.peak_bytes(mem::kGrads), 2 * fp.grad_bytes);
}

// --------------------------------------------- runtime reconciliation

struct RuntimeRun {
  rt::ThreadedPipeline::Result result;
  num::Layer::SliceFootprint footprint;  // per layer, at runtime slice_len
  double layers_per_stage = 0.0;
};

/// Runs the miniature 2-stage pipeline (4 layers, 8-token microbatches)
/// with arena measurement on and returns the measured metrics plus the
/// per-layer analytical slice footprint.
RuntimeRun run_measured_pipeline(int n_slices, int microbatches) {
  Rng rng(42);
  const num::BlockDims dims{16, 2, 2, 24};
  rt::ThreadedPipeline pipe(dims, /*vocab=*/16, /*layers_total=*/4,
                            /*stages=*/2, rng);
  Rng data_rng(43);
  std::vector<std::vector<std::int64_t>> tokens(
      static_cast<std::size_t>(microbatches)),
      targets(static_cast<std::size_t>(microbatches));
  for (int mb = 0; mb < microbatches; ++mb) {
    for (int i = 0; i < 8; ++i) {
      tokens[static_cast<std::size_t>(mb)].push_back(
          static_cast<std::int64_t>(data_rng.next_below(16)));
      targets[static_cast<std::size_t>(mb)].push_back(
          static_cast<std::int64_t>(data_rng.next_below(16)));
    }
  }
  rt::RunOptions options;
  options.n_slices = n_slices;
  RuntimeRun run;
  run.result = pipe.run_iteration(tokens, targets, options);
  Rng probe_rng(1);
  num::Layer probe(dims, num::LayerWeights::random(dims, probe_rng));
  run.footprint = probe.slice_footprint(8 / n_slices);
  run.layers_per_stage = 2.0;  // 4 layers over 2 stages
  return run;
}

// SlimPipe on both substrates (p=2, n=2, m=2): the number of slice-units
// simultaneously live at the peak must agree between the runtime's
// arena-measured bytes and the simulator's analytical byte model, per
// category, within 0.5 slice units (documented tolerance: sub-slice
// bookkeeping such as alignment rounding stays below one unit; the unit
// counts themselves are integers and match exactly in practice).
TEST(ReconcileTest, SlimPipeMeasuredPeaksMatchAnalytical) {
  sched::PipelineSpec spec;
  spec.cfg = model::llama13b();
  spec.gpu = model::hopper80();
  spec.shard = {8, 1, 1, 8};
  spec.policy = model::CheckpointPolicy::None;
  spec.p = 2;
  spec.v = 1;
  spec.n = 2;
  spec.m = 2;
  spec.seq = 2 * 8192;
  spec.vocab_parallel = false;
  spec.context_exchange = false;
  const sched::ScheduleResult sim =
      core::run_scheme(core::Scheme::SlimPipe, spec);
  ASSERT_EQ(sim.memory.devices.size(), 2u);

  // Analytical per-slice unit bytes (the builder's byte model). SlimPipe
  // retains KV, so KV books under kKvCache.
  const double nonkv = model::act_bytes_per_token_layer_no_kv(
      spec.cfg, spec.shard, spec.policy);
  const double kvpt = model::kv_bytes_per_token_layer(spec.cfg, spec.shard);
  const double slice_len = static_cast<double>(spec.seq / spec.n);

  const RuntimeRun run = run_measured_pipeline(/*n_slices=*/2,
                                               /*microbatches=*/2);
  ASSERT_EQ(run.result.stats.metrics.stages.size(), 2u);

  std::vector<mem::MeasuredPeak> measured;
  for (int s = 0; s < 2; ++s) {
    const obs::StageMetrics& stage =
        run.result.stats.metrics.stages[static_cast<std::size_t>(s)];
    ASSERT_EQ(stage.measured_peak_bytes.size(),
              static_cast<std::size_t>(mem::kNumCategories));
    const double layers_analytic =
        static_cast<double>(spec.layers_of_stage(s));
    measured.push_back(
        {s, mem::kActivation, stage.measured_peak_bytes[mem::kActivation],
         run.layers_per_stage *
             static_cast<double>(run.footprint.activation_bytes),
         nonkv * slice_len * layers_analytic});
    measured.push_back(
        {s, mem::kKvCache, stage.measured_peak_bytes[mem::kKvCache],
         run.layers_per_stage * static_cast<double>(run.footprint.kv_bytes),
         kvpt * slice_len * layers_analytic});
  }
  const mem::ReconcileReport report =
      mem::reconcile_peaks(sim.memory, measured, /*unit_tolerance=*/0.5);
  EXPECT_TRUE(report.ok()) << report.summary();

  // Eq. 1 shape: stage 0 peaks at m*n = 4 live slices, stage 1 at 2.
  EXPECT_NEAR(report.entries[0].measured_units, 4.0, 0.5);
  EXPECT_NEAR(report.entries[2].measured_units, 2.0, 0.5);
}

// 1F1B (p=2, n=1, m=2): the analytical model books KV under kActivation
// (retain_kv=false), so the comparison combines the runtime's activation
// and KV peaks into one entry. Peaks co-occur (both sides allocate at
// forward and free at backward), so the combined peak is the sum.
TEST(ReconcileTest, OneF1BMeasuredPeaksMatchAnalytical) {
  sched::PipelineSpec spec;
  spec.cfg = model::llama13b();
  spec.gpu = model::hopper80();
  spec.shard = {8, 1, 1, 8};
  spec.policy = model::CheckpointPolicy::None;
  spec.p = 2;
  spec.v = 1;
  spec.n = 1;
  spec.m = 2;
  spec.seq = 8192;
  spec.vocab_parallel = false;
  spec.context_exchange = false;
  const sched::ScheduleResult sim =
      core::run_scheme(core::Scheme::OneF1B, spec);
  ASSERT_EQ(sim.memory.devices.size(), 2u);

  const double nonkv = model::act_bytes_per_token_layer_no_kv(
      spec.cfg, spec.shard, spec.policy);
  const double kvpt = model::kv_bytes_per_token_layer(spec.cfg, spec.shard);
  const double slice_len = static_cast<double>(spec.seq);  // n = 1

  const RuntimeRun run = run_measured_pipeline(/*n_slices=*/1,
                                               /*microbatches=*/2);
  ASSERT_EQ(run.result.stats.metrics.stages.size(), 2u);

  std::vector<mem::MeasuredPeak> measured;
  for (int s = 0; s < 2; ++s) {
    const obs::StageMetrics& stage =
        run.result.stats.metrics.stages[static_cast<std::size_t>(s)];
    const double layers_analytic =
        static_cast<double>(spec.layers_of_stage(s));
    measured.push_back(
        {s, mem::kActivation,
         stage.measured_peak_bytes[mem::kActivation] +
             stage.measured_peak_bytes[mem::kKvCache],
         run.layers_per_stage *
             static_cast<double>(run.footprint.activation_bytes +
                                 run.footprint.kv_bytes),
         (nonkv + kvpt) * slice_len * layers_analytic});
  }
  const mem::ReconcileReport report =
      mem::reconcile_peaks(sim.memory, measured, /*unit_tolerance=*/0.5);
  EXPECT_TRUE(report.ok()) << report.summary();

  // 1F1B warmup depth: 2 in-flight microbatches on stage 0, 1 on stage 1.
  EXPECT_NEAR(report.entries[0].measured_units, 2.0, 0.5);
  EXPECT_NEAR(report.entries[1].measured_units, 1.0, 0.5);
}

TEST(ReconcileTest, ZeroUnitSizeIsAFailureNotASkip) {
  mem::MemoryReport analytical;
  analytical.devices.resize(1);
  analytical.devices[0].category_peak[mem::kActivation] = 100.0;
  const mem::ReconcileReport report = mem::reconcile_peaks(
      analytical, {{0, mem::kActivation, 100.0, 0.0, 50.0}}, 0.5);
  EXPECT_FALSE(report.ok());
  EXPECT_NE(report.summary().find("MISMATCH"), std::string::npos);
}

TEST(ReconcileTest, MeasuredMetricsSurviveJsonRoundTrip) {
  const RuntimeRun run = run_measured_pipeline(/*n_slices=*/2,
                                               /*microbatches=*/2);
  const obs::JsonValue json =
      obs::run_metrics_to_json(run.result.stats.metrics);
  obs::RunMetrics back;
  ASSERT_TRUE(obs::run_metrics_from_json(json, &back));
  ASSERT_EQ(back.stages.size(), run.result.stats.metrics.stages.size());
  for (std::size_t s = 0; s < back.stages.size(); ++s) {
    const obs::StageMetrics& a = run.result.stats.metrics.stages[s];
    const obs::StageMetrics& b = back.stages[s];
    ASSERT_EQ(a.measured_peak_bytes.size(), b.measured_peak_bytes.size());
    for (std::size_t c = 0; c < a.measured_peak_bytes.size(); ++c) {
      EXPECT_EQ(a.measured_peak_bytes[c], b.measured_peak_bytes[c]);
    }
    EXPECT_EQ(a.measured_peak_total, b.measured_peak_total);
  }
}

}  // namespace
}  // namespace slim
