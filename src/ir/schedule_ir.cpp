#include "src/ir/schedule_ir.hpp"

#include <algorithm>
#include <cstdio>
#include <sstream>
#include <stdexcept>

#include "src/util/logging.hpp"

namespace slim::ir {

namespace {

using sched::PassType;
using sched::StageLayout;
using sched::StageLayoutKind;

PassType parse_kind(const std::string& token, int line) {
  if (token == "F") return PassType::Forward;
  if (token == "B") return PassType::Backward;
  if (token == "BI") return PassType::BackwardInput;
  if (token == "BW") return PassType::BackwardWeight;
  throw std::runtime_error("schedule IR line " + std::to_string(line) +
                           ": unknown row kind '" + token + "'");
}

StageLayoutKind parse_layout(const std::string& token, int line) {
  if (token == "sequential") return StageLayoutKind::Sequential;
  if (token == "interleaved") return StageLayoutKind::Interleaved;
  if (token == "vshape") return StageLayoutKind::VShape;
  throw std::runtime_error("schedule IR line " + std::to_string(line) +
                           ": unknown layout '" + token + "'");
}

model::CheckpointPolicy parse_policy(const std::string& token, int line) {
  if (token == "none") return model::CheckpointPolicy::None;
  if (token == "selective") return model::CheckpointPolicy::Selective;
  if (token == "full") return model::CheckpointPolicy::Full;
  throw std::runtime_error("schedule IR line " + std::to_string(line) +
                           ": unknown checkpoint policy '" + token + "'");
}

const char* policy_name(model::CheckpointPolicy policy) {
  switch (policy) {
    case model::CheckpointPolicy::None: return "none";
    case model::CheckpointPolicy::Selective: return "selective";
    case model::CheckpointPolicy::Full: return "full";
  }
  return "?";
}

model::CpMode parse_cp_mode(const std::string& token, int line) {
  if (token == "ringkv") return model::CpMode::RingKv;
  if (token == "commutated") return model::CpMode::Commutated;
  throw std::runtime_error("schedule IR line " + std::to_string(line) +
                           ": unknown cp-mode '" + token + "'");
}

const char* cp_mode_name(model::CpMode mode) {
  switch (mode) {
    case model::CpMode::RingKv: return "ringkv";
    case model::CpMode::Commutated: return "commutated";
  }
  return "?";
}

/// Endpoint column: a device index, or "." for none.
std::string endpoint_text(int endpoint) {
  return endpoint == kNoEndpoint ? "." : std::to_string(endpoint);
}

int parse_endpoint(const std::string& token, int line) {
  if (token == ".") return kNoEndpoint;
  try {
    std::size_t used = 0;
    const int value = std::stoi(token, &used);
    if (used == token.size()) return value;
  } catch (...) {  // fall through to the shared error below
  }
  throw std::runtime_error("schedule IR line " + std::to_string(line) +
                           ": bad endpoint '" + token + "'");
}

int parse_int(const std::string& token, int line, const char* what) {
  try {
    std::size_t used = 0;
    const int value = std::stoi(token, &used);
    if (used == token.size()) return value;
  } catch (...) {
  }
  throw std::runtime_error("schedule IR line " + std::to_string(line) +
                           ": bad " + what + " '" + token + "'");
}

double parse_double(const std::string& token, int line, const char* what) {
  try {
    std::size_t used = 0;
    const double value = std::stod(token, &used);
    if (used == token.size()) return value;
  } catch (...) {
  }
  throw std::runtime_error("schedule IR line " + std::to_string(line) +
                           ": bad " + what + " '" + token + "'");
}

/// Canonical text for the in-flight cap: integral caps print without a
/// fractional part, fractional ones (e.g. V-Min's 2p/3 + 2) with enough
/// digits to re-parse to the exact same double — either way the round-trip
/// stays byte-identical.
std::string inflight_text(double units) {
  if (units == static_cast<double>(static_cast<long long>(units))) {
    return std::to_string(static_cast<long long>(units));
  }
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", units);
  return buf;
}

}  // namespace

const char* kind_name(PassType kind) {
  switch (kind) {
    case PassType::Forward: return "F";
    case PassType::Backward: return "B";
    case PassType::BackwardInput: return "BI";
    case PassType::BackwardWeight: return "BW";
  }
  return "?";
}

const char* layout_name(StageLayoutKind kind) {
  switch (kind) {
    case StageLayoutKind::Sequential: return "sequential";
    case StageLayoutKind::Interleaved: return "interleaved";
    case StageLayoutKind::VShape: return "vshape";
  }
  return "?";
}

void ScheduleIR::canonicalize() {
  std::stable_sort(rows.begin(), rows.end(),
                   [](const Row& a, const Row& b) {
                     return a.device != b.device ? a.device < b.device
                                                 : a.order < b.order;
                   });
}

ScheduleIR lower(const sched::PipelineSpec& spec,
                 const std::vector<sched::DeviceProgram>& programs,
                 const std::string& scheme_name) {
  SLIM_CHECK(static_cast<int>(programs.size()) == spec.p,
             "lower: one program per pipeline device required");
  ScheduleIR ir;
  ir.scheme = scheme_name;
  ir.p = spec.p;
  ir.v = spec.v;
  ir.n = spec.n;
  ir.m = spec.m;
  ir.layout = spec.layout;
  ir.retain_kv = spec.retain_kv;
  ir.vocab_parallel = spec.vocab_parallel;
  ir.context_exchange = spec.context_exchange;
  ir.policy = spec.policy;
  ir.cp_mode = spec.cp_mode;
  ir.max_inflight_units = spec.max_inflight_units;

  const StageLayout layout = spec.stage_layout();
  const int num_stages = layout.num_stages();
  for (int dev = 0; dev < spec.p; ++dev) {
    const sched::DeviceProgram& program =
        programs[static_cast<std::size_t>(dev)];
    for (std::size_t pos = 0; pos < program.size(); ++pos) {
      const sched::Pass& pass = program[pos];
      Row row;
      row.device = dev;
      row.order = static_cast<int>(pos);
      row.kind = pass.type;
      row.microbatch = pass.microbatch;
      row.slice = pass.slice;
      row.chunk = pass.chunk;
      // Out-of-range chunks cannot be mapped to a stage; keep the row (the
      // verifier will flag it) with the chunk clamped for stage lookup.
      const int chunk =
          std::clamp(static_cast<int>(pass.chunk), 0, spec.v - 1);
      const int stage = layout.stage_of(dev, chunk);
      row.stage = stage;
      // Explicit endpoints from the stage boundary this pass crosses.
      const bool fwd = pass.type == PassType::Forward;
      const bool bwd = pass.type == PassType::Backward ||
                       pass.type == PassType::BackwardInput;
      if (fwd) {
        if (stage > 0) {
          const int peer = layout.device_of(stage - 1);
          if (peer != dev) row.recv_from = peer;
        }
        if (stage < num_stages - 1) {
          const int peer = layout.device_of(stage + 1);
          if (peer != dev) row.send_to = peer;
        }
      } else if (bwd) {
        if (stage < num_stages - 1) {
          const int peer = layout.device_of(stage + 1);
          if (peer != dev) row.recv_from = peer;
        }
        if (stage > 0) {
          const int peer = layout.device_of(stage - 1);
          if (peer != dev) row.send_to = peer;
        }
      }
      ir.rows.push_back(row);
    }
  }
  ir.canonicalize();
  return ir;
}

std::vector<sched::DeviceProgram> to_programs(const ScheduleIR& ir) {
  std::vector<sched::DeviceProgram> programs(
      static_cast<std::size_t>(std::max(1, ir.p)));
  ScheduleIR sorted = ir;
  sorted.canonicalize();
  for (const Row& row : sorted.rows) {
    if (row.device < 0 || row.device >= ir.p) {
      throw std::runtime_error("schedule IR row names device " +
                               std::to_string(row.device) +
                               " outside [0, p=" + std::to_string(ir.p) + ")");
    }
    programs[static_cast<std::size_t>(row.device)].push_back(
        {row.kind, row.microbatch, row.slice, row.chunk});
  }
  return programs;
}

sched::PipelineSpec apply_header(const ScheduleIR& ir,
                                 sched::PipelineSpec base) {
  base.p = ir.p;
  base.v = ir.v;
  base.n = ir.n;
  base.m = ir.m;
  base.layout = ir.layout;
  base.retain_kv = ir.retain_kv;
  base.vocab_parallel = ir.vocab_parallel;
  base.context_exchange = ir.context_exchange;
  base.policy = ir.policy;
  base.cp_mode = ir.cp_mode;
  base.max_inflight_units = ir.max_inflight_units;
  // Slice layouts are a workload knob (kept outside the IR); drop any that
  // no longer match the overlaid schedule shape rather than keep a stale,
  // inconsistent set.
  if (!base.layouts.empty()) {
    bool consistent = static_cast<int>(base.layouts.size()) == base.m;
    for (const auto& layout : base.layouts) {
      consistent = consistent && layout.slices() == base.n;
    }
    if (!consistent) base.layouts.clear();
  }
  return base;
}

std::string export_text(const ScheduleIR& ir) {
  ScheduleIR sorted = ir;
  sorted.canonicalize();
  std::ostringstream out;
  out << "slimpipe-ir 1\n";
  out << "scheme " << sorted.scheme << "\n";
  out << "p " << sorted.p << "\n";
  out << "v " << sorted.v << "\n";
  out << "n " << sorted.n << "\n";
  out << "m " << sorted.m << "\n";
  out << "layout " << layout_name(sorted.layout) << "\n";
  out << "retain-kv " << (sorted.retain_kv ? 1 : 0) << "\n";
  out << "vocab-parallel " << (sorted.vocab_parallel ? 1 : 0) << "\n";
  out << "context-exchange " << (sorted.context_exchange ? 1 : 0) << "\n";
  out << "policy " << policy_name(sorted.policy) << "\n";
  out << "cp-mode " << cp_mode_name(sorted.cp_mode) << "\n";
  out << "max-inflight " << inflight_text(sorted.max_inflight_units) << "\n";
  out << "columns device order kind mb slice chunk stage recv send\n";
  for (const Row& row : sorted.rows) {
    out << "row " << row.device << " " << row.order << " "
        << kind_name(row.kind) << " " << row.microbatch << " " << row.slice
        << " " << row.chunk << " " << row.stage << " "
        << endpoint_text(row.recv_from) << " " << endpoint_text(row.send_to)
        << "\n";
  }
  out << "end\n";
  return out.str();
}

ScheduleIR import_text(const std::string& text) {
  ScheduleIR ir;
  std::istringstream in(text);
  std::string line;
  int lineno = 0;
  bool saw_magic = false, saw_end = false;
  while (std::getline(in, line)) {
    ++lineno;
    // Strip a trailing CR so CRLF files parse.
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (line.empty() || line[0] == '#') continue;
    std::istringstream ls(line);
    std::string key;
    ls >> key;
    auto rest = [&]() {
      std::string value;
      std::getline(ls, value);
      const std::size_t start = value.find_first_not_of(' ');
      return start == std::string::npos ? std::string() : value.substr(start);
    };
    auto token = [&](const char* what) {
      std::string value;
      if (!(ls >> value)) {
        throw std::runtime_error("schedule IR line " + std::to_string(lineno) +
                                 ": missing " + what);
      }
      return value;
    };
    if (!saw_magic) {
      if (key != "slimpipe-ir" || token("version") != "1") {
        throw std::runtime_error(
            "schedule IR line " + std::to_string(lineno) +
            ": expected header 'slimpipe-ir 1'");
      }
      saw_magic = true;
      continue;
    }
    if (saw_end) {
      throw std::runtime_error("schedule IR line " + std::to_string(lineno) +
                               ": content after 'end'");
    }
    if (key == "scheme") {
      ir.scheme = rest();
    } else if (key == "p") {
      ir.p = parse_int(token("p"), lineno, "p");
    } else if (key == "v") {
      ir.v = parse_int(token("v"), lineno, "v");
    } else if (key == "n") {
      ir.n = parse_int(token("n"), lineno, "n");
    } else if (key == "m") {
      ir.m = parse_int(token("m"), lineno, "m");
    } else if (key == "layout") {
      ir.layout = parse_layout(token("layout"), lineno);
    } else if (key == "retain-kv") {
      ir.retain_kv = parse_int(token("retain-kv"), lineno, "retain-kv") != 0;
    } else if (key == "vocab-parallel") {
      ir.vocab_parallel =
          parse_int(token("vocab-parallel"), lineno, "vocab-parallel") != 0;
    } else if (key == "context-exchange") {
      ir.context_exchange =
          parse_int(token("context-exchange"), lineno, "context-exchange") != 0;
    } else if (key == "policy") {
      ir.policy = parse_policy(token("policy"), lineno);
    } else if (key == "cp-mode") {
      ir.cp_mode = parse_cp_mode(token("cp-mode"), lineno);
    } else if (key == "max-inflight") {
      ir.max_inflight_units =
          parse_double(token("max-inflight"), lineno, "max-inflight");
    } else if (key == "columns") {
      const std::string expected = "device order kind mb slice chunk stage recv send";
      if (rest() != expected) {
        throw std::runtime_error("schedule IR line " + std::to_string(lineno) +
                                 ": unsupported column set (expected '" +
                                 expected + "')");
      }
    } else if (key == "row") {
      Row row;
      row.device = parse_int(token("device"), lineno, "device");
      row.order = parse_int(token("order"), lineno, "order");
      row.kind = parse_kind(token("kind"), lineno);
      row.microbatch = parse_int(token("mb"), lineno, "mb");
      row.slice = parse_int(token("slice"), lineno, "slice");
      row.chunk = parse_int(token("chunk"), lineno, "chunk");
      row.stage = parse_int(token("stage"), lineno, "stage");
      row.recv_from = parse_endpoint(token("recv"), lineno);
      row.send_to = parse_endpoint(token("send"), lineno);
      std::string extra;
      if (ls >> extra) {
        throw std::runtime_error("schedule IR line " + std::to_string(lineno) +
                                 ": trailing token '" + extra + "'");
      }
      ir.rows.push_back(row);
    } else if (key == "end") {
      saw_end = true;
    } else {
      throw std::runtime_error("schedule IR line " + std::to_string(lineno) +
                               ": unknown directive '" + key + "'");
    }
  }
  if (!saw_magic) {
    throw std::runtime_error("schedule IR: missing 'slimpipe-ir 1' header");
  }
  if (!saw_end) {
    throw std::runtime_error("schedule IR: missing 'end' terminator");
  }
  if (ir.p < 1) {
    throw std::runtime_error("schedule IR: p must be >= 1");
  }
  ir.canonicalize();
  return ir;
}

}  // namespace slim::ir
