#pragma once

// Deterministic list-scheduling executor for an OpGraph.
//
// Semantics: each resource runs its ops strictly in program order; an op
// starts at max(resource available time, completion of all explicit deps).
// Combined with the explicit dependency edges this forms a DAG (program order
// contributes implicit edges), which is resolved in topological order.
// A cycle — a schedule whose per-device programs are mutually inconsistent —
// is a deadlock and is reported with the blocked ops.

#include <cstdint>
#include <vector>

#include "src/sim/graph.hpp"

namespace slim::sim {

struct OpTiming {
  double start = 0.0;
  double end = 0.0;
};

struct ExecResult {
  std::vector<OpTiming> timings;  // indexed by OpId
  double makespan = 0.0;          // end of the last op

  /// Busy time of each device's *compute* stream (indexed by device id).
  std::vector<double> compute_busy;

  /// Bubble fraction of one device: idle compute time within [0, makespan].
  double bubble_fraction(int device) const;

  /// Mean bubble fraction over devices [0, n).
  double mean_bubble_fraction(int num_devices) const;
};

/// Executes the graph. Throws std::logic_error on deadlock (inconsistent
/// per-resource program orders).
ExecResult execute(const OpGraph& graph);

}  // namespace slim::sim
