file(REMOVE_RECURSE
  "CMakeFiles/bench_fig3_bubble_fractions.dir/bench_common.cpp.o"
  "CMakeFiles/bench_fig3_bubble_fractions.dir/bench_common.cpp.o.d"
  "CMakeFiles/bench_fig3_bubble_fractions.dir/bench_fig3_bubble_fractions.cpp.o"
  "CMakeFiles/bench_fig3_bubble_fractions.dir/bench_fig3_bubble_fractions.cpp.o.d"
  "bench_fig3_bubble_fractions"
  "bench_fig3_bubble_fractions.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3_bubble_fractions.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
