#include "src/numerics/arena.hpp"

#include <algorithm>

#include "src/util/logging.hpp"

namespace slim::num {

namespace {

constexpr std::size_t kAlign = 64;

std::size_t aligned(std::size_t bytes) {
  return (bytes + kAlign - 1) / kAlign * kAlign;
}

// Atomic max without a fetch_max: CAS loop, relaxed — the peak is a
// monotone statistic, not a synchronization edge.
void raise_peak(std::atomic<std::int64_t>& peak, std::int64_t candidate) {
  std::int64_t seen = peak.load(std::memory_order_relaxed);
  while (candidate > seen &&
         !peak.compare_exchange_weak(seen, candidate,
                                     std::memory_order_relaxed)) {
  }
}

thread_local Arena* t_bound_arena = nullptr;
thread_local int t_bound_category = mem::kActivation;

std::atomic<std::int64_t> g_tensor_heap_allocs{0};
std::atomic<std::int64_t> g_tensor_arena_allocs{0};

}  // namespace

void ArenaStats::on_alloc(int category, std::int64_t bytes) {
  SLIM_CHECK(category >= 0 && category < mem::kNumCategories,
             "arena category out of range");
  const std::size_t c = static_cast<std::size_t>(category);
  const std::int64_t cat_live =
      live_[c].fetch_add(bytes, std::memory_order_relaxed) + bytes;
  raise_peak(peak_[c], cat_live);
  const std::int64_t total =
      total_live_.fetch_add(bytes, std::memory_order_relaxed) + bytes;
  raise_peak(total_peak_, total);
}

void ArenaStats::on_free(int category, std::int64_t bytes) {
  const std::size_t c = static_cast<std::size_t>(category);
  live_[c].fetch_sub(bytes, std::memory_order_relaxed);
  total_live_.fetch_sub(bytes, std::memory_order_relaxed);
}

void ArenaStats::reset() {
  for (auto& v : live_) v.store(0, std::memory_order_relaxed);
  for (auto& v : peak_) v.store(0, std::memory_order_relaxed);
  total_live_.store(0, std::memory_order_relaxed);
  total_peak_.store(0, std::memory_order_relaxed);
}

Arena::Arena(ArenaStats* stats, std::size_t block_bytes)
    : stats_(stats), block_bytes_(std::max<std::size_t>(block_bytes, kAlign)) {}

Arena::~Arena() { release_all(); }

void* Arena::allocate(std::size_t bytes, int category) {
  const std::size_t need = aligned(std::max<std::size_t>(bytes, 1));
  // Find room at or after the current block; never rewind past the
  // watermark by reusing an earlier block's tail.
  while (current_ < blocks_.size() &&
         blocks_[current_].used + need > blocks_[current_].capacity) {
    ++current_;
  }
  if (current_ == blocks_.size()) {
    Block block;
    block.capacity = std::max(need, block_bytes_);
    block.data = std::make_unique<unsigned char[]>(block.capacity);
    blocks_.push_back(std::move(block));
  }
  Block& block = blocks_[current_];
  void* ptr = block.data.get() + block.used;
  block.used += need;
  log_.push_back(LogEntry{category, need});
  live_bytes_ += static_cast<std::int64_t>(need);
  ++allocation_count_;
  if (stats_ != nullptr) {
    stats_->on_alloc(category, static_cast<std::int64_t>(need));
  }
  return ptr;
}

Arena::Mark Arena::mark() const {
  Mark m;
  m.block = current_;
  m.used = blocks_.empty() ? 0 : blocks_[current_].used;
  m.log_size = log_.size();
  return m;
}

void Arena::release_to(const Mark& m) {
  SLIM_CHECK(m.log_size <= log_.size() && m.block <= current_,
             "arena scopes must release LIFO");
  for (std::size_t i = m.log_size; i < log_.size(); ++i) {
    live_bytes_ -= static_cast<std::int64_t>(log_[i].bytes);
    --allocation_count_;
    if (stats_ != nullptr) {
      stats_->on_free(log_[i].category,
                      static_cast<std::int64_t>(log_[i].bytes));
    }
  }
  log_.resize(m.log_size);
  for (std::size_t b = m.block + 1; b < blocks_.size(); ++b) {
    blocks_[b].used = 0;
  }
  if (m.block < blocks_.size()) blocks_[m.block].used = m.used;
  current_ = std::min(m.block, blocks_.empty() ? 0 : blocks_.size() - 1);
}

void Arena::release_all() { release_to(Mark{}); }

std::int64_t Arena::reserved_bytes() const {
  std::int64_t total = 0;
  for (const Block& b : blocks_) {
    total += static_cast<std::int64_t>(b.capacity);
  }
  return total;
}

ArenaBinding::ArenaBinding(Arena* arena, int category)
    : prev_arena_(t_bound_arena), prev_category_(t_bound_category) {
  t_bound_arena = arena;
  t_bound_category = category;
}

ArenaBinding::~ArenaBinding() {
  t_bound_arena = prev_arena_;
  t_bound_category = prev_category_;
}

Arena* ArenaBinding::current_arena() { return t_bound_arena; }
int ArenaBinding::current_category() { return t_bound_category; }

ArenaStats& workspace_stats() {
  static ArenaStats stats;
  return stats;
}

Arena& workspace_arena() {
  thread_local Arena arena(&workspace_stats());
  return arena;
}

std::int64_t tensor_heap_allocs() {
  return g_tensor_heap_allocs.load(std::memory_order_relaxed);
}
std::int64_t tensor_arena_allocs() {
  return g_tensor_arena_allocs.load(std::memory_order_relaxed);
}

namespace detail {
void count_tensor_heap_alloc() {
  g_tensor_heap_allocs.fetch_add(1, std::memory_order_relaxed);
}
void count_tensor_arena_alloc() {
  g_tensor_arena_allocs.fetch_add(1, std::memory_order_relaxed);
}
}  // namespace detail

}  // namespace slim::num
