#include "src/analysis/graph_check.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <string>
#include <unordered_map>

#include "src/memory/tracker.hpp"

namespace slim::analysis {

namespace {

using sim::Op;
using sim::OpClass;
using sim::OpGraph;
using sim::OpId;

std::string op_location(const Op& op) {
  std::ostringstream out;
  out << "op " << op.id << " (dev " << op.device;
  if (op.microbatch >= 0) out << " mb " << op.microbatch;
  if (op.slice >= 0) out << " slice " << op.slice;
  if (op.stage >= 0) out << " stage " << op.stage;
  out << ")";
  return out.str();
}

std::string category_label(int category) {
  if (category >= 0 && category < mem::kNumCategories) {
    return mem::category_name(category);
  }
  return "category " + std::to_string(category);
}

bool is_transfer_class(OpClass cls) {
  return cls == OpClass::Send || cls == OpClass::ExchangeSend;
}

struct GraphIndex {
  std::vector<std::size_t> pos_in_resource;  // insertion index on the resource
  std::vector<std::vector<OpId>> consumers;  // ops depending on each op
  std::vector<bool> on_compute_resource;     // resource holds compute ops
};

/// graph-dep-range; returns false when edges are too broken to analyse.
bool check_deps(const OpGraph& graph, const GraphLintOptions& options,
                std::vector<Finding>& findings) {
  const auto& ops = graph.ops();
  const OpId n = static_cast<OpId>(ops.size());
  std::size_t reported = 0;
  for (const Op& op : ops) {
    for (const OpId dep : op.deps) {
      if (dep >= 0 && dep < n && dep != op.id) continue;
      if (reported++ < options.max_findings_per_rule) {
        std::ostringstream msg;
        msg << "dependency id " << dep << " is "
            << (dep == op.id ? "a self-dependency" : "out of range");
        findings.push_back({Severity::Error, "graph-dep-range",
                            op_location(op), msg.str()});
      }
    }
  }
  return reported == 0;
}

void check_resource_order(const OpGraph& graph,
                          const GraphLintOptions& options,
                          std::vector<Finding>& findings) {
  const auto& ops = graph.ops();
  std::vector<int> seen(ops.size(), 0);
  std::size_t reported = 0;
  auto report = [&](const std::string& location, const std::string& message) {
    if (reported++ < options.max_findings_per_rule) {
      findings.push_back(
          {Severity::Error, "graph-resource-order", location, message});
    }
  };
  const auto& programs = graph.programs();
  for (std::size_t r = 0; r < programs.size(); ++r) {
    OpId prev = sim::kInvalidOp;
    for (const OpId id : programs[r]) {
      if (id < 0 || static_cast<std::size_t>(id) >= ops.size()) {
        report("resource " + std::to_string(r),
               "program lists op id " + std::to_string(id) +
                   " which does not exist");
        continue;
      }
      const Op& op = graph.op(id);
      ++seen[static_cast<std::size_t>(id)];
      if (op.resource != static_cast<sim::ResId>(r)) {
        report(op_location(op),
               "listed in the program of resource " + std::to_string(r) +
                   " but assigned to resource " + std::to_string(op.resource));
      }
      if (prev != sim::kInvalidOp && id <= prev) {
        report(op_location(op),
               "program of resource " + std::to_string(r) +
                   " is not in insertion order (op " + std::to_string(prev) +
                   " precedes it)");
      }
      prev = id;
    }
  }
  for (std::size_t i = 0; i < seen.size(); ++i) {
    if (seen[i] != 1) {
      report(op_location(graph.op(static_cast<OpId>(i))),
             "appears " + std::to_string(seen[i]) +
                 " times across resource programs (expected once)");
    }
  }
}

GraphIndex build_index(const OpGraph& graph) {
  GraphIndex index;
  const auto& ops = graph.ops();
  index.pos_in_resource.assign(ops.size(), 0);
  index.consumers.assign(ops.size(), {});
  const auto& programs = graph.programs();
  index.on_compute_resource.assign(programs.size(), false);
  for (const auto& program : programs) {
    for (std::size_t i = 0; i < program.size(); ++i) {
      index.pos_in_resource[static_cast<std::size_t>(program[i])] = i;
    }
  }
  for (const Op& op : ops) {
    if (sim::is_compute_class(op.cls)) {
      index.on_compute_resource[static_cast<std::size_t>(op.resource)] = true;
    }
    for (const OpId dep : op.deps) {
      index.consumers[static_cast<std::size_t>(dep)].push_back(op.id);
    }
  }
  return index;
}

/// Kahn's algorithm over explicit deps + program-order edges. Returns the
/// topological order; on a cycle, appends a graph-acyclic finding naming the
/// cycle path and returns the partial order.
std::vector<OpId> check_acyclic(const OpGraph& graph,
                                std::vector<Finding>& findings) {
  const auto& ops = graph.ops();
  const std::size_t n = ops.size();
  std::vector<std::int32_t> indeg(n, 0);
  std::vector<std::vector<OpId>> dependents(n);
  for (const Op& op : ops) {
    for (const OpId dep : op.deps) {
      dependents[static_cast<std::size_t>(dep)].push_back(op.id);
      ++indeg[static_cast<std::size_t>(op.id)];
    }
  }
  for (const auto& program : graph.programs()) {
    for (std::size_t i = 1; i < program.size(); ++i) {
      dependents[static_cast<std::size_t>(program[i - 1])].push_back(
          program[i]);
      ++indeg[static_cast<std::size_t>(program[i])];
    }
  }

  std::vector<OpId> order;
  order.reserve(n);
  std::vector<OpId> ready;
  for (const Op& op : ops) {
    if (indeg[static_cast<std::size_t>(op.id)] == 0) ready.push_back(op.id);
  }
  while (!ready.empty()) {
    const OpId id = ready.back();
    ready.pop_back();
    order.push_back(id);
    for (const OpId next : dependents[static_cast<std::size_t>(id)]) {
      if (--indeg[static_cast<std::size_t>(next)] == 0) ready.push_back(next);
    }
  }
  if (order.size() == n) return order;

  // Cycle extraction: from any blocked op, repeatedly step to a blocked
  // predecessor (one must exist) until an op repeats.
  std::vector<OpId> program_pred(n, sim::kInvalidOp);
  for (const auto& program : graph.programs()) {
    for (std::size_t i = 1; i < program.size(); ++i) {
      program_pred[static_cast<std::size_t>(program[i])] = program[i - 1];
    }
  }
  OpId start = sim::kInvalidOp;
  for (const Op& op : ops) {
    if (indeg[static_cast<std::size_t>(op.id)] > 0) {
      start = op.id;
      break;
    }
  }
  std::unordered_map<OpId, std::size_t> visited;
  std::vector<OpId> path;
  OpId cur = start;
  while (visited.find(cur) == visited.end()) {
    visited.emplace(cur, path.size());
    path.push_back(cur);
    OpId next = sim::kInvalidOp;
    const OpId pp = program_pred[static_cast<std::size_t>(cur)];
    if (pp != sim::kInvalidOp && indeg[static_cast<std::size_t>(pp)] > 0) {
      next = pp;
    } else {
      for (const OpId dep : graph.op(cur).deps) {
        if (indeg[static_cast<std::size_t>(dep)] > 0) {
          next = dep;
          break;
        }
      }
    }
    if (next == sim::kInvalidOp) break;  // defensive: should not happen
    cur = next;
  }
  std::ostringstream msg;
  msg << (n - order.size()) << " ops are unreachable; cycle:";
  const auto it = visited.find(cur);
  if (it != visited.end()) {
    // path[it->second..] form the cycle, discovered in predecessor order.
    for (std::size_t i = path.size(); i-- > it->second;) {
      msg << " " << op_location(graph.op(path[i])) << " ->";
    }
    msg << " " << op_location(graph.op(cur));
  } else {
    msg << " (not reconstructed)";
  }
  findings.push_back({Severity::Error, "graph-acyclic",
                      op_location(graph.op(start)), msg.str()});
  return order;
}

void check_channels(const OpGraph& graph, const GraphIndex& index,
                    const GraphLintOptions& options,
                    std::vector<Finding>& findings) {
  std::size_t unmatched = 0, fifo = 0, posting = 0;
  const auto& programs = graph.programs();
  for (const auto& program : programs) {
    // A channel resource is one carrying P2P transfer ops.
    bool is_channel = false;
    for (const OpId id : program) {
      if (is_transfer_class(graph.op(id).cls)) {
        is_channel = true;
        break;
      }
    }
    if (!is_channel) continue;

    std::size_t last_consumer_pos = 0;
    bool have_consumer = false;
    std::size_t last_producer_pos = 0;
    bool have_producer = false;
    for (const OpId id : program) {
      const Op& op = graph.op(id);
      if (!is_transfer_class(op.cls)) continue;

      // Receiver side: every transfer must be awaited by some op, and the
      // consumption order on the receiving device must match FIFO delivery.
      const auto& consumers = index.consumers[static_cast<std::size_t>(id)];
      if (consumers.empty()) {
        if (unmatched++ < options.max_findings_per_rule) {
          findings.push_back({Severity::Error, "graph-unmatched-send",
                              op_location(op),
                              "transfer has no consumer: no op ever waits "
                              "for this payload"});
        }
        continue;
      }
      std::size_t consumer_pos = 0;
      bool found = false;
      for (const OpId consumer : consumers) {
        const Op& c = graph.op(consumer);
        if (!index.on_compute_resource[static_cast<std::size_t>(c.resource)]) {
          continue;
        }
        const std::size_t pos =
            index.pos_in_resource[static_cast<std::size_t>(consumer)];
        if (!found || pos < consumer_pos) consumer_pos = pos;
        found = true;
      }
      if (found) {
        if (have_consumer && consumer_pos < last_consumer_pos) {
          if (fifo++ < options.max_findings_per_rule) {
            std::ostringstream msg;
            msg << "receiver consumes this transfer at program position "
                << consumer_pos << ", before the previous transfer on the "
                << "same channel (position " << last_consumer_pos
                << "): out-of-FIFO receive would deadlock a rendezvous "
                << "transport";
            findings.push_back({Severity::Error, "graph-channel-fifo",
                                op_location(op), msg.str()});
          }
        } else {
          last_consumer_pos = consumer_pos;
          have_consumer = true;
        }
      }

      // Sender side: payload production should follow channel posting order.
      std::size_t producer_pos = 0;
      bool produced = false;
      for (const OpId dep : op.deps) {
        const Op& d = graph.op(dep);
        if (d.device != op.device || !sim::is_compute_class(d.cls)) continue;
        const std::size_t pos =
            index.pos_in_resource[static_cast<std::size_t>(dep)];
        if (!produced || pos > producer_pos) producer_pos = pos;
        produced = true;
      }
      if (produced) {
        if (have_producer && producer_pos < last_producer_pos) {
          if (posting++ < options.max_findings_per_rule) {
            std::ostringstream msg;
            msg << "payload is produced at sender position " << producer_pos
                << ", earlier than the previous transfer's producer "
                << "(position " << last_producer_pos
                << "): posting order inverts production order";
            findings.push_back({Severity::Warning, "graph-channel-fifo",
                                op_location(op), msg.str()});
          }
        } else {
          last_producer_pos = producer_pos;
          have_producer = true;
        }
      }
    }
  }
}

void check_memory(const OpGraph& graph, const std::vector<OpId>& topo_order,
                  const GraphLintOptions& options,
                  std::vector<Finding>& findings) {
  int num_devices = 0, num_categories = 0;
  for (const Op& op : graph.ops()) {
    for (const sim::MemDelta& delta : op.mem) {
      num_devices = std::max(num_devices, delta.device + 1);
      num_categories = std::max(num_categories, delta.category + 1);
      if (delta.device < 0 || delta.category < 0) {
        findings.push_back({Severity::Error, "graph-mem-balance",
                            op_location(op),
                            "memory delta with negative device or category"});
        return;
      }
    }
  }
  if (num_devices == 0) return;  // no ledger at all: nothing to check

  const std::size_t slots = static_cast<std::size_t>(num_devices) *
                            static_cast<std::size_t>(num_categories);
  std::vector<double> balance(slots, 0.0);
  std::vector<double> magnitude(slots, 0.0);
  std::vector<bool> dipped(slots, false);
  std::size_t negative_reports = 0;
  // Replay in a dependency-consistent order: in a correct graph every free
  // is ordered after its allocation, so no valid order may dip negative.
  for (const OpId id : topo_order) {
    const Op& op = graph.op(id);
    for (const sim::MemDelta& delta : op.mem) {
      const std::size_t slot =
          static_cast<std::size_t>(delta.device) *
              static_cast<std::size_t>(num_categories) +
          static_cast<std::size_t>(delta.category);
      balance[slot] += delta.bytes;
      magnitude[slot] += std::abs(delta.bytes);
      if (!dipped[slot] &&
          balance[slot] < -options.balance_tolerance_bytes) {
        dipped[slot] = true;
        if (negative_reports++ < options.max_findings_per_rule) {
          std::ostringstream msg;
          msg << category_label(delta.category) << " balance on device "
              << delta.device << " drops to " << balance[slot]
              << " bytes: a free is not ordered after its allocation";
          findings.push_back({Severity::Error, "graph-mem-negative",
                              op_location(op), msg.str()});
        }
      }
    }
  }
  std::size_t balance_reports = 0;
  for (int dev = 0; dev < num_devices; ++dev) {
    for (int cat = 0; cat < num_categories; ++cat) {
      const std::size_t slot = static_cast<std::size_t>(dev) *
                                   static_cast<std::size_t>(num_categories) +
                               static_cast<std::size_t>(cat);
      // Scale-aware slack: exact cancellation is not guaranteed when a
      // slice's bytes are freed in split fractions (ZB-V).
      const double tolerance = options.balance_tolerance_bytes +
                               1e-9 * magnitude[slot];
      if (std::abs(balance[slot]) <= tolerance) continue;
      if (balance_reports++ < options.max_findings_per_rule) {
        std::ostringstream msg;
        msg << category_label(cat) << " on device " << dev << " ends the "
            << "iteration at " << balance[slot]
            << " bytes instead of zero: the ledger leaks "
            << (balance[slot] > 0 ? "allocations" : "frees");
        findings.push_back({Severity::Error, "graph-mem-balance",
                            "dev " + std::to_string(dev), msg.str()});
      }
    }
  }
}

void check_vocab_ops(const OpGraph& graph, const sched::PipelineSpec& spec,
                     std::vector<Finding>& findings) {
  const sched::StageLayout layout = spec.stage_layout();
  const int last_device = layout.device_of(layout.num_stages() - 1);
  std::int64_t vocab_fwd = 0, vocab_bwd = 0;
  bool placement_reported = false;
  for (const Op& op : graph.ops()) {
    const bool vf = op.cls == OpClass::VocabForward;
    const bool vb = op.cls == OpClass::VocabBackward;
    if (!vf && !vb) continue;
    vocab_fwd += vf ? 1 : 0;
    vocab_bwd += vb ? 1 : 0;
    if (spec.vocab_parallel) {
      findings.push_back(
          {Severity::Error, "graph-vocab-ops", op_location(op),
           "explicit vocabulary op in a vocab-parallel schedule (the "
           "sharded output layer folds into every device's passes)"});
      return;
    }
    if (op.device != last_device && !placement_reported) {
      placement_reported = true;
      std::ostringstream msg;
      msg << "vocabulary op on device " << op.device
          << "; without vocabulary parallelism the output layer lives on "
          << "the last stage's device " << last_device;
      findings.push_back(
          {Severity::Error, "graph-vocab-ops", op_location(op), msg.str()});
    }
  }
  if (!spec.vocab_parallel) {
    const std::int64_t expected = static_cast<std::int64_t>(spec.m) * spec.n;
    if (vocab_fwd != expected || vocab_bwd != expected) {
      std::ostringstream msg;
      msg << "expected " << expected << " vocabulary forward and backward "
          << "ops (one per microbatch per slice), found " << vocab_fwd
          << " forward / " << vocab_bwd << " backward";
      findings.push_back(
          {Severity::Error, "graph-vocab-ops", "graph", msg.str()});
    }
  }
}

std::vector<Finding> run_checks(const OpGraph& graph,
                                const sched::PipelineSpec* spec,
                                const GraphLintOptions& options) {
  std::vector<Finding> findings;
  if (!check_deps(graph, options, findings)) return findings;
  check_resource_order(graph, options, findings);

  const std::vector<OpId> topo_order = check_acyclic(graph, findings);
  const GraphIndex index = build_index(graph);
  check_channels(graph, index, options, findings);
  if (topo_order.size() == graph.ops().size()) {
    check_memory(graph, topo_order, options, findings);
  }
  if (spec != nullptr) check_vocab_ops(graph, *spec, findings);
  return findings;
}

}  // namespace

std::vector<Finding> check_graph(const OpGraph& graph,
                                 const GraphLintOptions& options) {
  return run_checks(graph, nullptr, options);
}

std::vector<Finding> check_graph(const OpGraph& graph,
                                 const sched::PipelineSpec& spec,
                                 const GraphLintOptions& options) {
  return run_checks(graph, &spec, options);
}

}  // namespace slim::analysis
