#pragma once

// Compiles per-device pass programs into a sim::OpGraph and runs them.
//
// The builder owns all cross-scheme mechanics: pass durations from the cost
// model, inter-stage activation/gradient transfers, vocabulary output ops,
// activation memory deltas (including the split frees of ZB-V), offload
// exposure, the optimizer tail, and model-state baselines. Scheme-specific
// code only produces DeviceProgram orderings.

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "src/fault/fault_plan.hpp"
#include "src/memory/tracker.hpp"
#include "src/obs/trace.hpp"
#include "src/sched/schedule.hpp"
#include "src/sim/executor.hpp"
#include "src/sim/graph.hpp"

namespace slim::sched {

/// Interface implemented by SlimPipe's context-exchange planner (core
/// module). When present, the attention-core portion of sliced passes is
/// replaced by the planner's balanced time and exchange transfers are added.
class ExchangeOracle {
 public:
  struct Exchange {
    int partner = -1;         // pipeline device exchanged with
    double send_bytes = 0.0;  // bytes this device sends to the partner
    double recv_bytes = 0.0;  // bytes this device receives
  };
  struct PassPlan {
    double attn_time = 0.0;  // balanced attention-core time, seconds
    // One heavy device may shed KV to several light ones (Figure 8 shows
    // a light device absorbing two blocks), so a pass can have multiple
    // exchanges.
    std::vector<Exchange> exchanges;
  };

  virtual ~ExchangeOracle() = default;

  /// Plans the attention work of one pass. `stream` is the slice-stream
  /// index: microbatch * n + slice for forwards, and the backward-order
  /// stream (microbatch * n + (n-1-slice)) for backwards.
  virtual PassPlan plan(int device, std::int64_t stream, bool forward) const = 0;
};

struct BuildOutput {
  std::unique_ptr<sim::OpGraph> graph;
  std::vector<mem::StaticFootprint> baseline;
  double exchange_bytes_max_device = 0.0;
};

/// Compiles programs into an op graph (one compute stream per pipeline
/// device, channels between adjacent ranks). With the compile-time lint
/// enabled (the default), the static analysis passes (src/analysis) verify
/// the schedule and the built graph and any Error finding aborts with the
/// rendered report.
BuildOutput compile(const PipelineSpec& spec,
                    const std::vector<DeviceProgram>& programs,
                    const ExchangeOracle* exchange);

/// Process-global toggle for the static analysis passes inside compile().
/// On by default (every test exercises them); benches turn it off so the
/// large grid sweeps do not pay the extra linear pass per compilation.
void set_compile_lint(bool enabled);
bool compile_lint_enabled();

/// Compiles, executes, replays memory and assembles the full result
/// (including per-stage obs::RunMetrics). When `trace` is non-null it is
/// filled with the executed timeline (obs::trace_from_sim) for export via
/// obs::chrome_trace_json.
ScheduleResult run_pipeline(const PipelineSpec& spec,
                            const std::vector<DeviceProgram>& programs,
                            const ExchangeOracle* exchange,
                            const std::string& scheme_name,
                            bool want_timeline = false,
                            obs::Trace* trace = nullptr);

/// Fault-injecting form: applies the plan to the compiled graph (straggler
/// and link degradation) before executing, then adds the checkpoint-restart
/// recovery cost of any device crashes. iteration_time reports the degraded
/// total; the fault_* fields break out the two overheads. `report`, when
/// set, collects the structured fault events.
/// `trace`, when set, additionally carries the injected fault events as
/// instant markers on the affected devices' tracks.
ScheduleResult run_pipeline_faulted(const PipelineSpec& spec,
                                    const std::vector<DeviceProgram>& programs,
                                    const ExchangeOracle* exchange,
                                    const std::string& scheme_name,
                                    const fault::FaultPlan& faults,
                                    fault::FaultReport* report = nullptr,
                                    bool want_timeline = false,
                                    obs::Trace* trace = nullptr);

/// Shared warmup/steady/cooldown assembly: `fwd` and `bwd` are the
/// device-local unit orders; the first `warmup` forwards run before the
/// first backward, then backwards and forwards alternate (B first), then
/// the remaining backwards drain.
DeviceProgram one_f_one_b_program(const std::vector<Pass>& fwd,
                                  const std::vector<Pass>& bwd, int warmup);

/// Topology of the pipeline group: `p` logical ranks, each owning
/// shard.t * shard.c GPUs; ranks sharing a node get NVLink links.
sim::Topology pipeline_topology(const PipelineSpec& spec);

}  // namespace slim::sched
