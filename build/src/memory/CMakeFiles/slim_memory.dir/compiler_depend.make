# Empty compiler generated dependencies file for slim_memory.
# This may be replaced when dependencies are built.
