#pragma once

// Multi-process SlimPipe pipeline with process supervision.
//
// Each pipeline stage runs in its own forked worker process; adjacent
// stages exchange activation/gradient slices over AF_UNIX stream sockets
// and every worker owns a control socket to the supervisor in the parent.
// The supervisor is a single-threaded poll loop that
//
//  * exchanges heartbeats with every worker (each beat carries the stage's
//    progress snapshot — the source of the postmortem blocked-on table);
//  * detects a SIGKILLed worker (waitpid/EOF), a crashed worker (nonzero
//    exit or Error frame) or a hung worker (missed-heartbeat deadline —
//    the supervisor SIGKILLs it) within a configurable timeout;
//  * deserializes Commit frames into the shared CommitLedger
//    (src/runtime/commit.hpp) as microbatches retire per stage;
//  * on failure drains surviving workers briefly (maximizing the set of
//    retired microbatches), respawns the pipeline with bounded exponential
//    backoff and replays exactly the unretired microbatches — the
//    recovered gradients are bit-identical to the fault-free run;
//  * converts an exhausted respawn budget (or recover=false) into a
//    structured PipelineError with the per-stage postmortem table — never
//    a hang.
//
// Workers inherit the model weights through fork-time copy-on-write memory
// (the parameter snapshot; weights are immutable within an iteration), so
// only activations, gradients, commits and telemetry cross the sockets.

#include <chrono>
#include <cstdint>
#include <string>
#include <vector>

#include "src/fault/fault_plan.hpp"
#include "src/obs/trace.hpp"
#include "src/runtime/pipeline_runtime.hpp"
#include "src/util/rng.hpp"

namespace slim::dist {

/// Supervisor-side SIGKILL test hook: kills the worker of `stage` with a
/// real SIGKILL at a chosen protocol phase. The crash-torture tests sweep
/// this over every (stage, phase) pair.
struct KillSpec {
  int stage = -1;  // -1: disabled
  enum class Phase {
    None,
    PreForward,  // immediately after fork, before any forward completes
    MidCommit,   // on the stage's first Commit frame
    PostCommit,  // on the stage's last Commit frame (all work retired)
  };
  Phase phase = Phase::None;
  /// Re-kill the respawned worker on every attempt — drives the respawn
  /// budget to exhaustion deterministically.
  bool persistent = false;
};

/// Knobs of one multi-process iteration.
struct ProcessOptions {
  int n_slices = 1;
  /// Per-microbatch slice boundaries (same contract as
  /// rt::RunOptions::layouts): one layout per microbatch, each with
  /// n_slices slices covering that microbatch's token count. Empty derives
  /// a token-uniform layout per microbatch, remainder to the first slices.
  std::vector<core::SliceLayout> layouts;
  /// Worker-side starvation watchdog (same semantics as the threaded
  /// runtime's): a stage blocked in receive for this long sends a
  /// structured Error frame. Defaults from SLIMPIPE_STARVATION_TIMEOUT_MS.
  std::chrono::milliseconds starvation_timeout =
      rt::default_starvation_timeout();
  /// Heartbeat cadence (worker -> supervisor).
  std::chrono::milliseconds heartbeat_interval{25};
  /// A worker silent for this long is declared hung and SIGKILLed.
  std::chrono::milliseconds heartbeat_timeout{1000};
  /// After a failure: how long surviving workers may keep retiring
  /// microbatches before teardown (maximizes committed work; makes the
  /// crash-torture replay sets deterministic).
  std::chrono::milliseconds drain_grace{500};
  /// Respawns allowed per iteration before the supervisor gives up with a
  /// structured PipelineError.
  int respawn_budget = 3;
  /// Exponential respawn backoff: min(backoff_base * 2^k, backoff_cap)
  /// before the k-th respawn of a stage.
  std::chrono::milliseconds backoff_base{10};
  std::chrono::milliseconds backoff_cap{250};
  /// Fault plan mapped onto the real transport: stage_crash ->
  /// raise(SIGKILL), stage_hang -> parked process (heartbeats stop), delay
  /// -> receive-side straggler sleep, link extra_latency / socket_delay ->
  /// sender sleeps before the write (measurable socket latency),
  /// socket_drop -> dropped frame with bounded retry, socket_connect ->
  /// transient transport-setup failure.
  const fault::FaultPlan* faults = nullptr;
  /// Respawn + replay after failures (true) or fail the iteration on the
  /// first one (false — still a structured PipelineError).
  bool recover = true;
  /// Filled with observed fault events + replayed microbatches when set.
  fault::FaultReport* report = nullptr;
  /// Optional tracing sink. Worker-local spans/instants ship in the Done
  /// frame and are re-based onto this recorder (track = stage).
  obs::Recorder* recorder = nullptr;
  /// Report per-stage arena peaks through the Done frame.
  bool measure_memory = true;
  /// Crash-torture hook (see KillSpec).
  KillSpec kill;
  /// Worker flight recorder (obs/flight_recorder.hpp): breadcrumb ring
  /// flushed over the control socket; the last flight_tail recovered events
  /// of a dead worker are appended to the postmortem. Off only for overhead
  /// measurement (bench_obs_overhead).
  bool flight = true;
  int flight_capacity = 256;
  int flight_tail = 32;
  /// Clock-alignment ping cadence (supervisor -> worker round trips; an
  /// NTP-style offset estimate re-bases worker trace times onto the run
  /// clock — see obs/clock.hpp).
  std::chrono::milliseconds ping_interval{50};
  /// Live telemetry: when telemetry_json_path is set the supervisor writes
  /// an atomic obs::LiveSnapshot JSON there every telemetry_interval (and a
  /// Prometheus text exposition to telemetry_prom_path when that is set),
  /// plus a final snapshot with phase "done"/"failed". slimpipe_top renders
  /// the JSON file live.
  std::string telemetry_json_path;
  std::string telemetry_prom_path;
  std::chrono::milliseconds telemetry_interval{200};
};

/// Tied-embedding transformer split across `stages` worker processes.
/// Restricted to chunks_per_stage == 1 and the non-vocab-parallel head —
/// the schedule the process-per-stage transport maps onto directly.
class ProcessPipeline {
 public:
  ProcessPipeline(num::BlockDims dims, std::int64_t vocab, int layers_total,
                  int stages, Rng& rng);

  /// Same result shape as the threaded backend — the parity tests compare
  /// the two directly (max_abs_diff == 0).
  using Result = rt::ThreadedPipeline::Result;

  Result run_iteration(const std::vector<std::vector<std::int64_t>>& tokens,
                       const std::vector<std::vector<std::int64_t>>& targets,
                       int n_slices);

  Result run_iteration(const std::vector<std::vector<std::int64_t>>& tokens,
                       const std::vector<std::vector<std::int64_t>>& targets,
                       const ProcessOptions& options);

  /// Monolithic single-thread execution of the same parameters.
  Result run_reference(const std::vector<std::vector<std::int64_t>>& tokens,
                       const std::vector<std::vector<std::int64_t>>& targets);

  int stages() const { return model_.stages; }
  const rt::PipelineModel& model() const { return model_; }

 private:
  rt::PipelineModel model_;
};

}  // namespace slim::dist
