#pragma once

// Crash-surviving flight recorder.
//
// A stage worker is a forked single-threaded process: when the supervisor
// SIGKILLs it (heartbeat deadline, kill torture) everything in its address
// space is gone. The flight recorder makes the last moments recoverable: the
// worker appends compact POD events to a fixed-capacity ring buffer on every
// interesting step (span begin/end, commit, send/recv with byte counts,
// fault hooks) and periodically flushes the unflushed suffix over the
// control socket as a Telemetry wire frame. The supervisor keeps the last K
// events per worker, so a postmortem can show what a dead stage was doing —
// not just that it died.
//
// Single writer, no locks: the worker is single-threaded by construction and
// the supervisor only ever sees serialized copies.

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace slim::obs {

enum class FlightKind : std::uint8_t {
  SpanBegin = 1,  // value = slice payload hint (unused), label = op name
  SpanEnd = 2,
  Send = 3,  // value = payload bytes, label = "fwd"/"bwd"
  Recv = 4,  // value = payload bytes
  Commit = 5,  // value = committed microbatch count so far
  Fault = 6,   // label = fault hook name
  Mark = 7,    // free-form breadcrumb
};

const char* flight_kind_name(FlightKind kind);

/// One breadcrumb. `ts` is seconds on the OWNER's monotonic run clock
/// (see obs/clock.hpp) — the supervisor re-bases it via ClockAligner.
struct FlightEvent {
  static constexpr std::size_t kLabelSize = 24;

  double ts = 0.0;
  std::uint64_t seq = 0;  // assigned by the recorder, strictly increasing
  FlightKind kind = FlightKind::Mark;
  std::int32_t mb = -1;
  std::int32_t slice = -1;
  std::int64_t value = 0;
  char label[kLabelSize] = {};

  void set_label(std::string_view text);
  std::string label_str() const;
};

class FlightRecorder {
 public:
  static constexpr std::size_t kDefaultCapacity = 256;

  explicit FlightRecorder(std::size_t capacity = kDefaultCapacity);

  void record(FlightKind kind, double ts, std::int32_t mb, std::int32_t slice,
              std::int64_t value, std::string_view label);

  /// Total events ever recorded (== next seq to be assigned).
  std::uint64_t recorded() const { return next_seq_; }

  /// Events recorded since the previous flush, oldest first. Events the ring
  /// already overwrote before they could be flushed are counted in
  /// `dropped` — the wire carries that count so the supervisor knows the
  /// stream has a gap rather than silently missing history.
  struct Flush {
    std::uint64_t dropped = 0;
    std::vector<FlightEvent> events;
  };
  Flush flush();

  /// Last min(k, size) events currently in the ring, oldest first. Used for
  /// the worker's own Error-frame postmortem; the supervisor-side tail of a
  /// SIGKILLed worker comes from previously flushed Telemetry frames.
  std::vector<FlightEvent> tail(std::size_t k) const;

  std::size_t capacity() const { return ring_.size(); }

 private:
  std::vector<FlightEvent> ring_;
  std::uint64_t next_seq_ = 0;
  std::uint64_t flushed_ = 0;  // every seq < flushed_ has been flushed
};

/// Renders events as an aligned postmortem table ("seq  t(ms)  kind  mb
/// slice  value  label"), oldest first.
std::string render_flight_tail(const std::vector<FlightEvent>& events);

}  // namespace slim::obs
