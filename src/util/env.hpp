#pragma once

// Strict environment-variable parsing.
//
// The runtimes take tuning knobs from SLIMPIPE_* environment variables.
// `strtol(env, nullptr, 10)` silently accepted trailing garbage
// (SLIMPIPE_THREADS=8abc parsed as 8) and silently fell back on
// non-numeric values; these helpers reject anything that is not a whole
// base-10 integer and warn once per read so misconfigurations are loud.

#include <optional>

namespace slim::util {

/// Parses a base-10 signed integer occupying the entire string. Returns
/// nullopt for null/empty input, trailing garbage, or out-of-range values.
std::optional<long long> parse_env_int(const char* text);

/// Reads environment variable `name`. Unset returns `fallback` silently;
/// set-but-malformed (trailing garbage, empty, out of range) or below
/// `min_value` logs a one-line warning and returns `fallback`.
long long env_int_or(const char* name, long long fallback,
                     long long min_value);

}  // namespace slim::util
