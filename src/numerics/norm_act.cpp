#include "src/numerics/norm_act.hpp"

#include <cmath>
#include <cstring>

#include "src/numerics/arena.hpp"
#include "src/util/thread_pool.hpp"

namespace slim::num {

namespace {

constexpr std::int64_t kRowGrain = 16;
constexpr std::int64_t kFlatGrain = 1 << 14;

util::ThreadPool& pool() { return util::ThreadPool::global(); }

}  // namespace

Tensor rmsnorm(const Tensor& x, const Tensor& weight) {
  SLIM_CHECK(weight.rows() == 1 && weight.cols() == x.cols(),
             "rmsnorm weight shape");
  // Every element of y is written exactly once — uninit is safe.
  Tensor y = Tensor::uninit(x.rows(), x.cols());
  const std::int64_t n = x.cols();
  pool().parallel_for(0, x.rows(), kRowGrain,
                      [&](std::int64_t r0, std::int64_t r1) {
    for (std::int64_t r = r0; r < r1; ++r) {
      double mean_sq = 0.0;
      for (std::int64_t c = 0; c < n; ++c) {
        mean_sq += static_cast<double>(x.at(r, c)) * x.at(r, c);
      }
      mean_sq /= static_cast<double>(n);
      const float inv_rms =
          1.0f / std::sqrt(static_cast<float>(mean_sq) + kRmsEps);
      for (std::int64_t c = 0; c < n; ++c) {
        y.at(r, c) = x.at(r, c) * inv_rms * weight.at(0, c);
      }
    }
  });
  return y;
}

Tensor rmsnorm_bwd(const Tensor& x, const Tensor& weight, const Tensor& dy,
                   Tensor& dweight) {
  SLIM_CHECK(dweight.rows() == 1 && dweight.cols() == x.cols(),
             "rmsnorm dweight shape");
  Tensor dx = Tensor::uninit(x.rows(), x.cols());
  const std::int64_t n = x.cols();
  // dweight is a reduction over rows: each chunk sums into its own partial
  // row, the partials are folded in ascending chunk order afterwards — the
  // thread-count-independent combine. The partial rows come from the
  // CALLER's workspace as one lease; workers zero their own disjoint row.
  const std::int64_t n_chunks = util::chunk_count(0, x.rows(), kRowGrain);
  WorkspaceLease<float> dweight_partials(n_chunks * n);
  pool().parallel_for(0, x.rows(), kRowGrain,
                      [&](std::int64_t r0, std::int64_t r1) {
    float* dw = dweight_partials.data() + (r0 / kRowGrain) * n;
    std::memset(dw, 0, static_cast<std::size_t>(n) * sizeof(float));
    for (std::int64_t r = r0; r < r1; ++r) {
      double mean_sq = 0.0;
      for (std::int64_t c = 0; c < n; ++c) {
        mean_sq += static_cast<double>(x.at(r, c)) * x.at(r, c);
      }
      mean_sq /= static_cast<double>(n);
      const float rms2 = static_cast<float>(mean_sq) + kRmsEps;
      const float inv_rms = 1.0f / std::sqrt(rms2);
      // dot = sum_c x_c * w_c * dy_c
      double dot = 0.0;
      for (std::int64_t c = 0; c < n; ++c) {
        dot += static_cast<double>(x.at(r, c)) * weight.at(0, c) * dy.at(r, c);
        dw[c] += dy.at(r, c) * x.at(r, c) * inv_rms;
      }
      const float k = static_cast<float>(dot) /
                      (static_cast<float>(n) * rms2) * inv_rms;
      for (std::int64_t c = 0; c < n; ++c) {
        dx.at(r, c) = dy.at(r, c) * weight.at(0, c) * inv_rms - x.at(r, c) * k;
      }
    }
  });
  for (std::int64_t ch = 0; ch < n_chunks; ++ch) {
    const float* dw = dweight_partials.data() + ch * n;
    for (std::int64_t c = 0; c < n; ++c) dweight.at(0, c) += dw[c];
  }
  return dx;
}

float silu(float x) { return x / (1.0f + std::exp(-x)); }

float silu_grad(float x) {
  const float s = 1.0f / (1.0f + std::exp(-x));
  return s * (1.0f + x * (1.0f - s));
}

Tensor swiglu(const Tensor& gate, const Tensor& up) {
  SLIM_CHECK(gate.rows() == up.rows() && gate.cols() == up.cols(),
             "swiglu shape mismatch");
  // Every element of out is written exactly once — uninit is safe.
  Tensor out = Tensor::uninit(gate.rows(), gate.cols());
  pool().parallel_for(0, gate.size(), kFlatGrain,
                      [&](std::int64_t lo, std::int64_t hi) {
    for (std::int64_t i = lo; i < hi; ++i) {
      out.data()[i] = silu(gate.data()[i]) * up.data()[i];
    }
  });
  return out;
}

void swiglu_bwd(const Tensor& gate, const Tensor& up, const Tensor& dout,
                Tensor& dgate, Tensor& dup) {
  // Both outputs are fully written — uninit is safe.
  dgate = Tensor::uninit(gate.rows(), gate.cols());
  dup = Tensor::uninit(up.rows(), up.cols());
  pool().parallel_for(0, gate.size(), kFlatGrain,
                      [&](std::int64_t lo, std::int64_t hi) {
    for (std::int64_t i = lo; i < hi; ++i) {
      dgate.data()[i] =
          dout.data()[i] * up.data()[i] * silu_grad(gate.data()[i]);
      dup.data()[i] = dout.data()[i] * silu(gate.data()[i]);
    }
  });
}

}  // namespace slim::num
