// Tests for the baseline pipeline schedules: program structure, Table 2
// activation-memory fractions and warm-up bubble formulas, measured on the
// simulator rather than assumed.

#include <gtest/gtest.h>

#include <map>
#include <tuple>

#include "src/core/slice.hpp"
#include "src/model/transformer.hpp"
#include "src/sched/builder.hpp"
#include "src/sched/schedule.hpp"
#include "src/sched/schemes.hpp"
#include "src/sched/ulysses.hpp"

namespace slim::sched {
namespace {

PipelineSpec small_spec(int p, int m, int v = 1) {
  PipelineSpec spec;
  spec.cfg = model::llama13b();
  spec.gpu = model::hopper80();
  spec.shard = {8, 1, 1, 8};
  spec.policy = model::CheckpointPolicy::None;
  spec.p = p;
  spec.v = v;
  spec.m = m;
  spec.n = 1;
  spec.seq = 32 * 1024;
  return spec;
}

int count_type(const DeviceProgram& program, PassType type) {
  int count = 0;
  for (const Pass& pass : program) count += pass.type == type ? 1 : 0;
  return count;
}

TEST(StageLayoutTest, Sequential) {
  const StageLayout layout{4, 1, StageLayoutKind::Sequential};
  for (int s = 0; s < 4; ++s) {
    EXPECT_EQ(layout.device_of(s), s);
    EXPECT_EQ(layout.chunk_of(s), 0);
  }
}

TEST(StageLayoutTest, Interleaved) {
  const StageLayout layout{4, 2, StageLayoutKind::Interleaved};
  EXPECT_EQ(layout.device_of(0), 0);
  EXPECT_EQ(layout.device_of(4), 0);
  EXPECT_EQ(layout.chunk_of(4), 1);
  EXPECT_EQ(layout.stage_of(2, 1), 6);
}

TEST(StageLayoutTest, VShape) {
  const StageLayout layout{4, 2, StageLayoutKind::VShape};
  EXPECT_EQ(layout.device_of(0), 0);
  EXPECT_EQ(layout.device_of(3), 3);
  EXPECT_EQ(layout.device_of(4), 3);  // back up the V
  EXPECT_EQ(layout.device_of(7), 0);
  EXPECT_EQ(layout.stage_of(0, 1), 7);
  EXPECT_EQ(layout.stage_of(3, 1), 4);
}

TEST(SpecTest, ValidationErrors) {
  PipelineSpec spec = small_spec(3, 2);  // 40 layers not divisible by 3
  EXPECT_TRUE(spec.validate().empty());  // uneven stages supported
  spec = small_spec(4, 2);
  EXPECT_TRUE(spec.validate().empty());
  spec.n = 6;  // not a multiple of p=4
  EXPECT_FALSE(spec.validate().empty());
  spec.n = 8;
  EXPECT_TRUE(spec.validate().empty());
  spec.context_exchange = true;
  spec.n = 1;
  EXPECT_FALSE(spec.validate().empty());
}

TEST(GPipeTest, ProgramShape) {
  const PipelineSpec spec = small_spec(4, 3);
  const auto programs = gpipe_programs(spec);
  ASSERT_EQ(programs.size(), 4u);
  for (const DeviceProgram& program : programs) {
    EXPECT_EQ(program.size(), 6u);
    EXPECT_EQ(count_type(program, PassType::Forward), 3);
    EXPECT_EQ(count_type(program, PassType::Backward), 3);
    // All forwards strictly before all backwards.
    bool seen_backward = false;
    for (const Pass& pass : program) {
      if (pass.type == PassType::Backward) seen_backward = true;
      if (seen_backward) {
        EXPECT_EQ(pass.type, PassType::Backward);
      }
    }
  }
}

TEST(OneF1BTest, WarmupDepthDecreasesWithRank) {
  const PipelineSpec spec = small_spec(4, 8);
  const auto programs = onef1b_programs(spec);
  // Leading forward run length = p - rank.
  for (int dev = 0; dev < 4; ++dev) {
    int lead = 0;
    for (const Pass& pass : programs[static_cast<std::size_t>(dev)]) {
      if (pass.type != PassType::Forward) break;
      ++lead;
    }
    EXPECT_EQ(lead, 4 - dev);
  }
}

TEST(OneF1BTest, FewMicrobatchesClamped) {
  const PipelineSpec spec = small_spec(4, 2);
  const auto programs = onef1b_programs(spec);
  for (const DeviceProgram& program : programs) {
    EXPECT_EQ(program.size(), 4u);
  }
  EXPECT_NO_THROW(run_pipeline(spec, programs, nullptr, "1F1B"));
}

TEST(InterleavedTest, RequiresDivisibleMicrobatches) {
  PipelineSpec spec = small_spec(4, 6, 2);
  spec.layout = StageLayoutKind::Interleaved;
  EXPECT_THROW(interleaved_programs(spec), std::logic_error);
}

TEST(InterleavedTest, UnitCount) {
  PipelineSpec spec = small_spec(4, 8, 2);
  spec.layout = StageLayoutKind::Interleaved;
  const auto programs = interleaved_programs(spec);
  for (const DeviceProgram& program : programs) {
    EXPECT_EQ(count_type(program, PassType::Forward), 16);
    EXPECT_EQ(count_type(program, PassType::Backward), 16);
  }
}

struct BubbleCase {
  int p;
  int m;
  int v;
};

class BubbleFormulaTest : public ::testing::TestWithParam<BubbleCase> {};

// The 1F1B warm-up bubble fraction is (p-1)/m relative to the steady work,
// i.e. (p-1)/(m+p-1) of the makespan. The simulator must land close (the
// deviation comes from backward != forward durations and the vocab stage).
TEST_P(BubbleFormulaTest, OneF1BMatchesClosedForm) {
  const BubbleCase c = GetParam();
  PipelineSpec spec = small_spec(c.p, c.m);
  // Shrink the vocabulary so the last-stage output GEMM does not add the
  // Figure 9 imbalance on top of the warm-up bubble being measured.
  spec.cfg.vocab = 4000;
  const auto r = run_onef1b(spec);
  const double expect = static_cast<double>(c.p - 1) /
                        static_cast<double>(c.m + c.p - 1);
  EXPECT_NEAR(r.bubble_fraction, expect, 0.08)
      << "p=" << c.p << " m=" << c.m;
}

TEST_P(BubbleFormulaTest, InterleavingShrinksBubble) {
  const BubbleCase c = GetParam();
  if (c.m % c.p != 0 || c.v < 2) return;
  PipelineSpec base = small_spec(c.p, c.m);
  const auto flat = run_onef1b(base);
  PipelineSpec inter = small_spec(c.p, c.m, c.v);
  const auto leaved = run_interleaved(inter);
  EXPECT_LT(leaved.bubble_fraction, flat.bubble_fraction + 1e-9);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, BubbleFormulaTest,
    ::testing::Values(BubbleCase{2, 4, 2}, BubbleCase{2, 8, 2},
                      BubbleCase{4, 4, 2}, BubbleCase{4, 8, 5},
                      BubbleCase{4, 16, 2}, BubbleCase{8, 8, 5},
                      BubbleCase{8, 16, 1}, BubbleCase{8, 32, 1}));

struct MemCase {
  int p;
  int m;
};

class ActivationFractionTest : public ::testing::TestWithParam<MemCase> {};

// Table 2: activation peak of 1F1B's first device = min(m, p) microbatches
// of M_a / p each. Measured from the simulator's byte-exact replay.
TEST_P(ActivationFractionTest, OneF1BFirstDevice) {
  const MemCase c = GetParam();
  PipelineSpec spec = small_spec(c.p, c.m);
  const auto programs = onef1b_programs(spec);
  const auto r = run_pipeline(spec, programs, nullptr, "1F1B");

  const double act_per_token = model::act_bytes_per_token_layer(
      spec.cfg, spec.shard, spec.policy, false);
  const double ma = act_per_token * static_cast<double>(spec.seq) *
                    static_cast<double>(spec.cfg.layers);
  const double expected =
      core::onef1b_activation_fraction(c.m, c.p) * ma;
  // Subtract the static model states to isolate activations.
  const double states = r.first_device_memory - expected;
  EXPECT_GT(states, 0.0);
  // Re-run with m+p' more microbatches: activation plateau (does not grow).
  PipelineSpec spec2 = small_spec(c.p, c.m + c.p);
  const auto r2 = run_pipeline(spec2, onef1b_programs(spec2), nullptr, "1F1B");
  if (c.m >= c.p) {
    EXPECT_NEAR(r2.first_device_memory, r.first_device_memory,
                0.01 * r.first_device_memory);
  } else {
    EXPECT_GT(r2.first_device_memory, r.first_device_memory);
  }
}

TEST_P(ActivationFractionTest, GPipeGrowsWithMicrobatches) {
  const MemCase c = GetParam();
  PipelineSpec spec = small_spec(c.p, c.m);
  const auto r1 = run_gpipe(spec);
  PipelineSpec spec2 = small_spec(c.p, 2 * c.m);
  const auto r2 = run_gpipe(spec2);
  EXPECT_GT(r2.first_device_memory, r1.first_device_memory);
}

INSTANTIATE_TEST_SUITE_P(Sweep, ActivationFractionTest,
                         ::testing::Values(MemCase{2, 4}, MemCase{4, 4},
                                           MemCase{4, 8}, MemCase{8, 8},
                                           MemCase{8, 16}));

TEST(TeraPipeTest, AccumulatesEverything) {
  PipelineSpec spec = small_spec(4, 4);
  spec.n = 8;
  spec.retain_kv = true;
  const auto tera = run_terapipe(spec);
  PipelineSpec flat = small_spec(4, 4);
  const auto f1b = run_onef1b(flat);
  // TeraPipe holds all m microbatches; 1F1B only p (= m here would tie,
  // so use m > p).
  PipelineSpec spec2 = small_spec(4, 8);
  spec2.n = 8;
  const auto tera2 = run_terapipe(spec2);
  EXPECT_GT(tera2.first_device_memory, f1b.first_device_memory * 1.5);
  // But its warm-up bubble is much smaller than GPipe's.
  PipelineSpec gspec = small_spec(4, 4);
  const auto gp = run_gpipe(gspec);
  EXPECT_LT(tera.bubble_fraction, gp.bubble_fraction);
}

TEST(UlyssesTest, DegreeBoundedByQueryGroups) {
  const auto gpu = model::hopper80();
  const auto cfg = model::llama70b();  // 8 query groups
  const auto r = run_ulysses(cfg, gpu, 128, 128 * 1024, 4 * 1024 * 1024, 16,
                             model::CheckpointPolicy::Full);
  EXPECT_EQ(r.status, UlyssesStatus::NoViableConfig);
  EXPECT_NE(r.note.find("query groups"), std::string::npos);
}

TEST(UlyssesTest, BatchTooSmallForZero) {
  const auto gpu = model::hopper80();
  const auto cfg = model::mixtral8x7b();
  // 512K context, 4M tokens -> batch 8; u <= 8 -> dz >= 16 > batch.
  const auto r = best_ulysses(cfg, gpu, 128, 512 * 1024, 4 * 1024 * 1024);
  EXPECT_NE(r.status, UlyssesStatus::Ok);
}

TEST(UlyssesTest, ViableAtModerateScale) {
  const auto gpu = model::hopper80();
  const auto cfg = model::llama13b();
  const auto r = best_ulysses(cfg, gpu, 128, 65536, 4 * 1024 * 1024);
  EXPECT_EQ(r.status, UlyssesStatus::Ok);
  EXPECT_GT(r.mfu, 0.05);
  EXPECT_LT(r.mfu, 0.65);
}

TEST(VocabImbalanceTest, LastStageGemmCreatesBubbles) {
  // Figure 9: with the output GEMM on the last device only, other devices
  // wait; distributing it (vocab parallel) removes that wait. Compare
  // bubbles under 1F1B where every microbatch pays the serialized GEMM.
  PipelineSpec spec = small_spec(4, 8);
  spec.seq = 64 * 1024;
  const auto plain = run_onef1b(spec);
  PipelineSpec vp = spec;
  vp.vocab_parallel = true;
  const auto distributed = run_onef1b(vp);
  EXPECT_LT(distributed.iteration_time, plain.iteration_time);
}

}  // namespace
}  // namespace slim::sched
