#pragma once

// One pipeline stage running inside a forked worker process.
//
// The worker inherits the PipelineModel (its parameter snapshot) and the
// iteration inputs through fork-time memory; everything it produces —
// heartbeats, retired-microbatch gradient commits, fault events, metrics,
// trace records — leaves only through its sockets. The worker is strictly
// single-threaded (fork from a threaded parent means no inherited locks
// may be touched, and TSan instruments nothing it can't see), sends
// heartbeats from its main loop, runs its kernels serially, and exits via
// _exit so inherited atexit handlers and stdio buffers never run twice.
//
// The stage discipline is the threaded runtime's, verbatim: forwards in
// slice-stream order appending KV chunks, the SlimPipe live-slice window
// (Eq. 1) deferring younger microbatches' forwards, LIFO backward
// continuations queued ahead of incoming work on the last stage, and a
// Commit frame at microbatch retirement. Per-microbatch staged gradients
// are deterministic regardless of how traffic from the two neighbors
// interleaves (each microbatch owns its accumulators and its slice order
// is fixed by the schedule), which is what makes the recovered gradients
// bit-identical to run_reference.

#include <chrono>
#include <cstdint>
#include <vector>

#include "src/core/slice_layout.hpp"
#include "src/runtime/pipeline_model.hpp"

namespace slim::dist {

/// Worker-local lifecycle state, published in heartbeats (WireStatus.state)
/// and rendered in the supervisor's postmortem table.
enum class WorkerState : int {
  Running = 0,
  Waiting,  // blocked polling the neighbor sockets
  Done,
  Starved,  // worker-side starvation watchdog fired
  Hung,     // injected hang: parked, heartbeats stopped
};

const char* worker_state_name(WorkerState state);

/// Fault-plan rules resolved for one stage, mapped onto the real transport:
/// crashes are raise(SIGKILL), hangs park the process (heartbeats stop),
/// delays and drops act on actual socket writes.
struct WorkerFaults {
  std::int64_t crash_after = -1;  // messages; then raise(SIGKILL)
  std::int64_t hang_after = -1;   // messages; then park silently
  std::int64_t delay_every = 0;   // receive-side straggler sleep
  double delay_seconds = 0.0;
  double link_extra_latency = 0.0;  // per data-frame send (LinkFault)
  struct Drop {
    std::int64_t every = 1;
    int count = 1;
    int max_retries = 3;
  };
  std::vector<Drop> drops;
  struct Delay {
    std::int64_t every = 1;
    double seconds = 0.0;
  };
  std::vector<Delay> socket_delays;
};

struct WorkerConfig {
  const rt::PipelineModel* model = nullptr;
  int stage = 0;
  int n_slices = 1;
  /// Per-microbatch slice boundaries, one layout per *iteration* microbatch
  /// (indexed by global microbatch id, not attempt rank), each with
  /// n_slices slices covering that microbatch's token count. Inherited
  /// through fork-time memory like the model — never serialized.
  std::vector<core::SliceLayout> layouts;
  /// Supervisor respawn attempt index; folded into cross-process flow-arrow
  /// ids (wire_flow_id) so replayed sends never collide with originals.
  int attempt = 0;
  /// Microbatches of this attempt (ascending); slice_weight still uses the
  /// full iteration's microbatch count, so replayed contributions match
  /// the fault-free ones bit for bit.
  std::vector<int> mbs;
  const std::vector<std::vector<std::int64_t>>* tokens = nullptr;
  const std::vector<std::vector<std::int64_t>>* targets = nullptr;
  int prev_fd = -1;     // upstream data socket (-1 on stage 0)
  int next_fd = -1;     // downstream data socket (-1 on the last stage)
  int control_fd = -1;  // heartbeats/commits/events/done to the supervisor
  std::chrono::milliseconds heartbeat_interval{25};
  std::chrono::milliseconds starvation_timeout{30000};
  bool measure_memory = true;
  bool trace = false;  // collect spans/instants/flows into the Done frame
  /// Flight recorder (obs/flight_recorder.hpp): always-on breadcrumb ring,
  /// flushed to the supervisor as Telemetry frames on the heartbeat cadence
  /// and before every Commit. Off only for overhead measurement.
  bool flight = true;
  int flight_capacity = 256;
  WorkerFaults faults;
};

/// Runs the stage to completion. Returns the process exit code: 0 on
/// success (Done frame sent), 2 on a structured failure (Error frame
/// sent). Never throws and never returns via exceptions — the caller
/// passes the result straight to _exit.
int run_stage_worker(const WorkerConfig& config);

}  // namespace slim::dist
