#include "src/memory/reconcile.hpp"

#include <cmath>
#include <limits>
#include <sstream>

#include "src/util/logging.hpp"

namespace slim::mem {

double mean_slice_unit_bytes(
    const std::vector<core::SliceLayout>& layouts,
    const std::function<double(std::int64_t)>& bytes_of_len) {
  SLIM_CHECK(!layouts.empty(), "mean_slice_unit_bytes over no layouts");
  double total = 0.0;
  std::int64_t slices = 0;
  for (const core::SliceLayout& layout : layouts) {
    for (int s = 0; s < layout.slices(); ++s) {
      total += bytes_of_len(layout.len(s));
      ++slices;
    }
  }
  return total / static_cast<double>(slices);
}

bool ReconcileReport::ok() const {
  for (const ReconcileEntry& entry : entries) {
    if (!entry.ok) return false;
  }
  return true;
}

std::string ReconcileReport::summary() const {
  std::ostringstream out;
  out << "measured-vs-analytical peaks (tolerance "
      << unit_tolerance << " slice units):\n";
  for (const ReconcileEntry& entry : entries) {
    out << "  device " << entry.device << " "
        << category_name(entry.category) << ": measured "
        << entry.measured_units << "u vs analytical "
        << entry.analytical_units << "u (|d| = " << entry.deviation_units
        << ") " << (entry.ok ? "OK" : "MISMATCH") << "\n";
  }
  return out.str();
}

ReconcileReport reconcile_peaks(const MemoryReport& analytical,
                                const std::vector<MeasuredPeak>& measured,
                                double unit_tolerance) {
  ReconcileReport report;
  report.unit_tolerance = unit_tolerance;
  for (const MeasuredPeak& peak : measured) {
    SLIM_CHECK(peak.category >= 0 && peak.category < kNumCategories,
               "reconcile category out of range");
    SLIM_CHECK(peak.device >= 0 &&
                   peak.device < static_cast<int>(analytical.devices.size()),
               "reconcile device out of range");
    const DeviceMemory& device =
        analytical.devices[static_cast<std::size_t>(peak.device)];
    ReconcileEntry entry;
    entry.device = peak.device;
    entry.category = peak.category;
    if (peak.measured_unit_bytes <= 0.0 || peak.analytical_unit_bytes <= 0.0) {
      // Nothing to normalize by: report as a failure, not a silent skip.
      entry.deviation_units = std::numeric_limits<double>::infinity();
      entry.ok = false;
      report.entries.push_back(entry);
      continue;
    }
    entry.measured_units = peak.measured_bytes / peak.measured_unit_bytes;
    entry.analytical_units =
        device.category_peak[static_cast<std::size_t>(peak.category)] /
        peak.analytical_unit_bytes;
    entry.deviation_units =
        std::fabs(entry.measured_units - entry.analytical_units);
    entry.ok = entry.deviation_units <= unit_tolerance;
    report.entries.push_back(entry);
  }
  return report;
}

}  // namespace slim::mem
