#pragma once

// Explicit per-microbatch slice boundaries.
//
// SlimPipe splits every microbatch's sequence into n slices. The original
// substrates all derived the split as `slice_len = seq / n`, which silently
// truncates tokens whenever seq % n != 0 and cannot express skewed
// document-length mixes. A SliceLayout makes the boundaries explicit: a
// monotone vector bounds[0..n] with bounds[0] == 0 and bounds[n] == seq,
// where slice i covers tokens [bounds[i], bounds[i+1]). The KV prefix of
// slice i is exactly bounds[i], so causal-attention cost accounting works
// unchanged for any layout.
//
// Header-only so every layer (cost model, simulator, scheduler, runtimes,
// numerics) can share the type without new link edges.

#include <cstdint>
#include <functional>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "src/util/logging.hpp"

namespace slim::core {

class SliceLayout {
 public:
  /// Degenerate empty layout (0 slices over 0 tokens).
  SliceLayout() : bounds_{0} {}

  /// Takes explicit boundaries; must be strictly increasing from 0.
  explicit SliceLayout(std::vector<std::int64_t> bounds)
      : bounds_(std::move(bounds)) {
    SLIM_CHECK(!bounds_.empty() && bounds_.front() == 0,
               "slice layout must start at token 0");
    for (std::size_t i = 1; i < bounds_.size(); ++i) {
      SLIM_CHECK(bounds_[i] > bounds_[i - 1],
                 "slice boundaries must be strictly increasing");
    }
  }

  /// Builds from per-slice lengths (each >= 1).
  static SliceLayout from_lens(const std::vector<std::int64_t>& lens) {
    std::vector<std::int64_t> bounds(lens.size() + 1, 0);
    for (std::size_t i = 0; i < lens.size(); ++i) {
      SLIM_CHECK(lens[i] >= 1, "slice lengths must be positive");
      bounds[i + 1] = bounds[i] + lens[i];
    }
    return SliceLayout(std::move(bounds));
  }

  /// Token-balanced layout: seq tokens into n slices in multiples of
  /// `align` tokens (context-parallel block size), distributing the
  /// remainder to the first slices Megatron-style — no token is dropped.
  static SliceLayout uniform(std::int64_t seq, int n, std::int64_t align = 1) {
    SLIM_CHECK(n >= 1 && align >= 1, "uniform layout needs n, align >= 1");
    SLIM_CHECK(seq % align == 0, "sequence not divisible into aligned blocks");
    const std::int64_t units = seq / align;
    SLIM_CHECK(units >= n, "fewer aligned token blocks than slices");
    const std::int64_t base = units / n;
    const std::int64_t rem = units % n;
    std::vector<std::int64_t> bounds(static_cast<std::size_t>(n) + 1, 0);
    for (int i = 0; i < n; ++i) {
      bounds[i + 1] = bounds[i] + (base + (i < rem ? 1 : 0)) * align;
    }
    return SliceLayout(std::move(bounds));
  }

  /// Cost-balanced layout. `prefix_cost(x)` is the cumulative cost of the
  /// first x tokens and must be non-decreasing in x; because per-slice
  /// causal-attention cost is exactly a difference of such a prefix
  /// function (slice [a,b) costs F(b) - F(a)), equalizing slice costs
  /// reduces to inverting F at equally spaced targets. Boundaries are
  /// snapped to multiples of `align` and each slice keeps >= 1 block.
  static SliceLayout balanced(
      std::int64_t seq, int n,
      const std::function<double(std::int64_t)>& prefix_cost,
      std::int64_t align = 1) {
    SLIM_CHECK(n >= 1 && align >= 1, "balanced layout needs n, align >= 1");
    SLIM_CHECK(seq % align == 0, "sequence not divisible into aligned blocks");
    const std::int64_t units = seq / align;
    SLIM_CHECK(units >= n, "fewer aligned token blocks than slices");
    const double total = prefix_cost(seq);
    std::vector<std::int64_t> bounds(static_cast<std::size_t>(n) + 1, 0);
    bounds[n] = seq;
    for (int i = 1; i < n; ++i) {
      const double target =
          total * static_cast<double>(i) / static_cast<double>(n);
      // Smallest feasible boundary (in align units) whose prefix cost
      // reaches the target; clamped so every later slice keeps one block.
      std::int64_t lo = bounds[i - 1] / align + 1;
      std::int64_t hi = units - (n - i);
      while (lo < hi) {
        const std::int64_t mid = lo + (hi - lo) / 2;
        if (prefix_cost(mid * align) < target) {
          lo = mid + 1;
        } else {
          hi = mid;
        }
      }
      bounds[i] = lo * align;
    }
    return SliceLayout(std::move(bounds));
  }

  int slices() const { return static_cast<int>(bounds_.size()) - 1; }
  std::int64_t seq() const { return bounds_.back(); }
  std::int64_t begin(int slice) const { return bounds_[slice]; }
  std::int64_t end(int slice) const { return bounds_[slice + 1]; }
  std::int64_t len(int slice) const {
    return bounds_[slice + 1] - bounds_[slice];
  }
  /// Causal KV prefix attended by slice `slice` (tokens before it).
  std::int64_t kv_prefix(int slice) const { return bounds_[slice]; }

  const std::vector<std::int64_t>& bounds() const { return bounds_; }

  std::vector<std::int64_t> lens() const {
    std::vector<std::int64_t> out(static_cast<std::size_t>(slices()));
    for (int i = 0; i < slices(); ++i) out[i] = len(i);
    return out;
  }

  /// True when all slices have the same length.
  bool is_uniform() const {
    for (int i = 1; i < slices(); ++i) {
      if (len(i) != len(0)) return false;
    }
    return true;
  }

  bool operator==(const SliceLayout& other) const = default;

  std::string describe() const {
    std::ostringstream os;
    os << seq() << "=[";
    for (int i = 0; i < slices(); ++i) {
      if (i) os << ' ';
      os << len(i);
    }
    os << ']';
    return os.str();
  }

 private:
  std::vector<std::int64_t> bounds_;
};

}  // namespace slim::core
