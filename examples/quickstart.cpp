// Quickstart: simulate one training iteration of Llama 13B at 256K context
// under classic 1F1B and under SlimPipe, and print what SlimPipe buys you.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart

#include <cstdio>

#include "src/core/runner.hpp"
#include "src/model/transformer.hpp"
#include "src/util/table.hpp"
#include "src/util/units.hpp"

using namespace slim;

int main() {
  // 1. Describe the workload: model, accelerator, sharding, schedule knobs.
  sched::PipelineSpec spec;
  spec.cfg = model::llama13b();        // Table 3 model zoo
  spec.gpu = model::hopper80();        // H100-class accelerator
  spec.shard = {8, 1, 1, 8};           // 8-way tensor parallel, one node
  spec.policy = model::CheckpointPolicy::Full;
  spec.p = 8;                          // pipeline depth
  spec.m = 4;                          // microbatches per iteration
  spec.seq = 256 * 1024;               // context length

  // 2. Run the classic baseline.
  const auto f1b = core::run_scheme(core::Scheme::OneF1B, spec);

  // 3. Run SlimPipe: uniform slicing (n slices per sequence), interleaved
  //    stages, attention context exchange and vocabulary parallelism.
  auto slim_spec = spec;
  slim_spec.policy = model::CheckpointPolicy::None;  // the memory headroom
  slim_spec.n = 32;                                  // slices per sequence
  slim_spec.v = 5;                                   // stage chunks/device
  slim_spec.vocab_parallel = true;
  slim_spec.context_exchange = true;
  const auto slim_r = core::run_scheme(core::Scheme::SlimPipe, slim_spec);

  // 4. Compare.
  Table table({"metric", "1F1B (full ckpt)", "SlimPipe (no ckpt)"});
  table.add_row({"iteration time", format_time(f1b.iteration_time),
                 format_time(slim_r.iteration_time)});
  table.add_row({"MFU", format_percent(f1b.mfu), format_percent(slim_r.mfu)});
  table.add_row({"pipeline bubbles", format_percent(f1b.bubble_fraction),
                 format_percent(slim_r.bubble_fraction)});
  table.add_row({"peak device memory", format_bytes(f1b.peak_memory),
                 format_bytes(slim_r.peak_memory)});
  table.add_row({"fits in 80 GiB", f1b.oom ? "no" : "yes",
                 slim_r.oom ? "no" : "yes"});
  std::printf("Llama 13B, 256K context, 8-way TP x 8-way PP, 4 microbatches\n\n%s\n",
              table.to_string().c_str());
  std::printf("SlimPipe speedup: %.2fx\n",
              f1b.iteration_time / slim_r.iteration_time);
  return 0;
}
