#include "src/model/hardware.hpp"

#include <algorithm>

#include "src/util/logging.hpp"

namespace slim::model {

double GpuSpec::efficiency(OpCategory category) const {
  switch (category) {
    case OpCategory::Gemm: return eff_gemm;
    case OpCategory::Attention: return eff_attention;
    case OpCategory::AttentionBwd: return eff_attention_bwd;
    case OpCategory::VocabGemm: return eff_vocab;
    case OpCategory::Elementwise: return 0.02;  // memory bound anyway
  }
  return eff_gemm;
}

double GpuSpec::op_time(double flops, double hbm_bytes,
                        OpCategory category) const {
  SLIM_CHECK(flops >= 0.0 && hbm_bytes >= 0.0, "negative op cost");
  const double compute = flops / (peak_flops * efficiency(category));
  const double memory = hbm_bytes / hbm_bandwidth;
  return std::max(compute, memory);
}

GpuSpec hopper80() { return GpuSpec{}; }

}  // namespace slim::model
