#include "src/numerics/cross_entropy.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "src/numerics/arena.hpp"
#include "src/util/thread_pool.hpp"

namespace slim::num {

namespace {
constexpr float kNegInf = -std::numeric_limits<float>::infinity();
constexpr std::int64_t kTokenGrain = 16;

util::ThreadPool& pool() { return util::ThreadPool::global(); }
}

CeResult cross_entropy(const Tensor& logits,
                       const std::vector<std::int64_t>& targets) {
  SLIM_CHECK(static_cast<std::int64_t>(targets.size()) == logits.rows(),
             "one target per token required");
  CeResult result;
  // Every row of dlogits is fully written by its owning chunk — uninit.
  result.dlogits = Tensor::uninit(logits.rows(), logits.cols());
  const std::int64_t tokens = logits.rows(), vocab = logits.cols();
  const float inv_tokens = 1.0f / static_cast<float>(tokens);
  // The scalar loss is a reduction over tokens: per-chunk partials, folded
  // in ascending chunk order (thread-count independent). Partial slots are
  // workspace-leased; each worker zeroes its own slot before accumulating.
  const std::int64_t n_chunks = util::chunk_count(0, tokens, kTokenGrain);
  WorkspaceLease<double> loss_partials(n_chunks);
  pool().parallel_for(0, tokens, kTokenGrain,
                      [&](std::int64_t t0, std::int64_t t1) {
    double& loss = loss_partials[t0 / kTokenGrain];
    loss = 0.0;
    for (std::int64_t t = t0; t < t1; ++t) {
      const std::int64_t y = targets[static_cast<std::size_t>(t)];
      SLIM_CHECK(y >= 0 && y < vocab, "target out of vocabulary");
      float m = kNegInf;
      for (std::int64_t c = 0; c < vocab; ++c) m = std::max(m, logits.at(t, c));
      double l = 0.0;
      for (std::int64_t c = 0; c < vocab; ++c) {
        l += std::exp(logits.at(t, c) - m);
      }
      loss += std::log(l) + m - logits.at(t, y);
      for (std::int64_t c = 0; c < vocab; ++c) {
        const float p =
            static_cast<float>(std::exp(logits.at(t, c) - m) / l);
        result.dlogits.at(t, c) = (p - (c == y ? 1.0f : 0.0f)) * inv_tokens;
      }
    }
  });
  for (std::int64_t ch = 0; ch < n_chunks; ++ch) {
    result.loss += loss_partials[ch];
  }
  result.loss /= static_cast<double>(tokens);
  return result;
}

CeShardStats ce_shard_stats(const Tensor& shard, std::int64_t col_offset,
                            const std::vector<std::int64_t>& targets) {
  CeShardStats stats;
  const std::int64_t tokens = shard.rows(), width = shard.cols();
  stats.max_logit.assign(static_cast<std::size_t>(tokens), kNegInf);
  stats.sum_exp.assign(static_cast<std::size_t>(tokens), 0.0f);
  stats.target_logit.assign(static_cast<std::size_t>(tokens), kNegInf);
  pool().parallel_for(0, tokens, kTokenGrain,
                      [&](std::int64_t t0, std::int64_t t1) {
    for (std::int64_t t = t0; t < t1; ++t) {
      float m = kNegInf;
      for (std::int64_t c = 0; c < width; ++c) m = std::max(m, shard.at(t, c));
      double l = 0.0;
      for (std::int64_t c = 0; c < width; ++c) {
        l += std::exp(shard.at(t, c) - m);
      }
      stats.max_logit[static_cast<std::size_t>(t)] = m;
      stats.sum_exp[static_cast<std::size_t>(t)] = static_cast<float>(l);
      const std::int64_t y = targets[static_cast<std::size_t>(t)] - col_offset;
      if (y >= 0 && y < width) {
        stats.target_logit[static_cast<std::size_t>(t)] = shard.at(t, y);
      }
    }
  });
  return stats;
}

ShardedCeResult cross_entropy_sharded(
    const std::vector<Tensor>& shards,
    const std::vector<std::int64_t>& targets) {
  SLIM_CHECK(!shards.empty(), "need at least one shard");
  const std::int64_t tokens = shards.front().rows();
  ShardedCeResult result;

  // Phase 1: local statistics (what each PP device computes).
  std::vector<CeShardStats> stats;
  std::vector<std::int64_t> offsets;
  std::int64_t offset = 0;
  for (const Tensor& shard : shards) {
    SLIM_CHECK(shard.rows() == tokens, "shard token-count mismatch");
    offsets.push_back(offset);
    stats.push_back(ce_shard_stats(shard, offset, targets));
    offset += shard.cols();
  }

  // Phase 2: synchronize scalars (the all-reduce of the paper — O(tokens)).
  std::vector<float> gmax(static_cast<std::size_t>(tokens), kNegInf);
  for (const CeShardStats& st : stats) {
    for (std::int64_t t = 0; t < tokens; ++t) {
      gmax[static_cast<std::size_t>(t)] =
          std::max(gmax[static_cast<std::size_t>(t)],
                   st.max_logit[static_cast<std::size_t>(t)]);
    }
  }
  std::vector<double> gsum(static_cast<std::size_t>(tokens), 0.0);
  std::vector<float> gtarget(static_cast<std::size_t>(tokens), kNegInf);
  for (const CeShardStats& st : stats) {
    for (std::int64_t t = 0; t < tokens; ++t) {
      const std::size_t ti = static_cast<std::size_t>(t);
      if (st.sum_exp[ti] > 0.0f) {
        gsum[ti] += static_cast<double>(st.sum_exp[ti]) *
                    std::exp(st.max_logit[ti] - gmax[ti]);
      }
      if (st.target_logit[ti] != kNegInf) gtarget[ti] = st.target_logit[ti];
    }
  }

  // Phase 3: loss and shard-local gradients from the global statistics.
  const float inv_tokens = 1.0f / static_cast<float>(tokens);
  for (std::int64_t t = 0; t < tokens; ++t) {
    const std::size_t ti = static_cast<std::size_t>(t);
    SLIM_CHECK(gtarget[ti] != kNegInf, "target class missing from all shards");
    result.loss += std::log(gsum[ti]) + gmax[ti] - gtarget[ti];
  }
  result.loss /= static_cast<double>(tokens);

  for (std::size_t s = 0; s < shards.size(); ++s) {
    const Tensor& shard = shards[s];
    // Every element of grad is written exactly once — uninit is safe.
    Tensor grad = Tensor::uninit(shard.rows(), shard.cols());
    pool().parallel_for(0, tokens, kTokenGrain,
                        [&](std::int64_t t0, std::int64_t t1) {
      for (std::int64_t t = t0; t < t1; ++t) {
        const std::size_t ti = static_cast<std::size_t>(t);
        const std::int64_t y = targets[ti] - offsets[s];
        for (std::int64_t c = 0; c < shard.cols(); ++c) {
          const float p = static_cast<float>(
              std::exp(shard.at(t, c) - gmax[ti]) / gsum[ti]);
          grad.at(t, c) = (p - (c == y ? 1.0f : 0.0f)) * inv_tokens;
        }
      }
    });
    result.dshards.push_back(std::move(grad));
  }
  return result;
}

}  // namespace slim::num
