#include "src/runtime/pipeline_runtime.hpp"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <condition_variable>
#include <deque>
#include <limits>
#include <mutex>
#include <numeric>
#include <thread>

#include "src/numerics/cross_entropy.hpp"
#include "src/numerics/norm_act.hpp"
#include "src/util/env.hpp"
#include "src/util/logging.hpp"
#include "src/util/table.hpp"
#include "src/util/thread_pool.hpp"

namespace slim::rt {

namespace {

struct Message {
  enum class Kind {
    Forward,
    Backward,
    VocabWork,    // broadcast hidden states -> every shard   (last -> all)
    VocabStats,   // per-token (max, sumexp, target) scalars  (shard -> last)
    VocabGlobal,  // synchronized (max, sumexp) scalars       (last -> all)
    VocabDx,      // partial d(hidden) of one shard           (shard -> last)
  } kind = Kind::Forward;
  int mb = 0;
  int slice = 0;
  int shard = 0;        // sender shard for VocabStats / VocabDx
  int stage = 0;        // global stage index (interleaving routes by it)
  num::Tensor payload;  // activation / gradient / packed scalars
  /// Trace flow id opened by the sender; the receiver closes it so the
  /// exported trace draws a send->recv arrow. -1 when tracing is off or
  /// the message is stage-local.
  std::int64_t flow = -1;
  /// Set by send_to for cross-thread sends, so the receiver can count the
  /// message in its frames_recv/bytes_recv probe without counting
  /// stage-local loopback (keeps the counters comparable with the dist
  /// substrate's per-link wire stats).
  bool cross = false;
};

const char* message_kind_name(Message::Kind kind) {
  switch (kind) {
    case Message::Kind::Forward: return "fwd";
    case Message::Kind::Backward: return "bwd";
    case Message::Kind::VocabWork: return "vocab_work";
    case Message::Kind::VocabStats: return "vocab_stats";
    case Message::Kind::VocabGlobal: return "vocab_global";
    case Message::Kind::VocabDx: return "vocab_dx";
  }
  return "?";
}

/// Always-on per-stage observability counters. Each attempt's worker thread
/// is the sole writer of its stage's probe while running; the parent reads
/// after join (the join is the synchronization point), so plain fields
/// suffice — no atomics on the hot path.
struct StageProbe {
  double busy_seconds = 0.0;         // processing messages
  double blocked_recv_seconds = 0.0; // waiting inside receive
  std::int64_t p2p_messages = 0;     // cross-thread sends from this stage
  double p2p_bytes = 0.0;            // payload volume of those sends
  std::int64_t frames_recv = 0;      // cross-thread receives by this stage
  double bytes_recv = 0.0;           // payload volume of those receives
  std::size_t peak_queue = 0;        // inbox high-water mark
};

/// Thrown when a FaultPlan stage crash fires; the recovery path catches it
/// and respawns the stage.
struct InjectedCrash : std::runtime_error {
  InjectedCrash(int stage_, std::int64_t at_message_)
      : std::runtime_error("injected crash at stage " +
                           std::to_string(stage_) + " after message " +
                           std::to_string(at_message_)),
        stage(stage_),
        at_message(at_message_) {}
  int stage;
  std::int64_t at_message;
};

/// Internal unwind signal for workers poisoned during shutdown; never
/// escapes run_iteration.
struct WorkerAborted {};

enum class StageState : int {
  Running = 0,
  Waiting,  // blocked in receive
  Done,
  Crashed,
  Hung,
  Aborted,  // unwound by channel poisoning
};

const char* state_name(StageState state) {
  switch (state) {
    case StageState::Running: return "running";
    case StageState::Waiting: return "waiting";
    case StageState::Done: return "done";
    case StageState::Crashed: return "crashed";
    case StageState::Hung: return "hung";
    case StageState::Aborted: return "aborted";
  }
  return "?";
}

/// Cross-thread progress snapshot of one stage, published after every
/// message so the watchdog can assemble the blocked-on table.
struct StageStatus {
  std::atomic<int> state{static_cast<int>(StageState::Running)};
  std::atomic<std::int64_t> messages{0};
  std::atomic<int> done_f{0};
  std::atomic<int> done_b{0};
  std::atomic<int> live{0};
  std::atomic<int> peak_live{0};
  std::atomic<int> deferred{0};
  std::atomic<int> committed{0};
  /// Microbatch id of the last message this stage received (-1 before the
  /// first) — pins down where in the schedule a blocked stage stopped.
  std::atomic<int> last_mb{-1};
};

/// Shutdown coordination: the first failing worker records the root cause,
/// poisons every channel and wakes hung stages; peers unwind as Aborted.
struct Control {
  std::atomic<bool> shutdown{false};
  std::mutex error_mutex;
  std::exception_ptr first_error;
  int first_error_stage = -1;
  std::mutex hang_mutex;
  std::condition_variable hang_cv;
};

}  // namespace

ThreadedPipeline::ThreadedPipeline(num::BlockDims dims, std::int64_t vocab,
                                   int layers_total, int stages, Rng& rng,
                                   int chunks_per_stage)
    : model_(PipelineModel::build(dims, vocab, layers_total, stages, rng,
                                  chunks_per_stage)) {}

ThreadedPipeline::Result ThreadedPipeline::run_iteration(
    const std::vector<std::vector<std::int64_t>>& tokens,
    const std::vector<std::vector<std::int64_t>>& targets, int n_slices,
    bool vocab_parallel) {
  RunOptions options;
  options.n_slices = n_slices;
  options.vocab_parallel = vocab_parallel;
  return run_iteration(tokens, targets, options);
}

ThreadedPipeline::Result ThreadedPipeline::run_iteration(
    const std::vector<std::vector<std::int64_t>>& tokens,
    const std::vector<std::vector<std::int64_t>>& targets,
    const RunOptions& options) {
  const int n_slices = options.n_slices;
  const bool vocab_parallel = options.vocab_parallel;
  const int m = static_cast<int>(tokens.size());
  SLIM_CHECK(m >= 1 && targets.size() == tokens.size(), "bad microbatches");
  SLIM_CHECK(n_slices >= 1, "n_slices must be >= 1");
  // Per-microbatch slice boundaries. The default derives a token-uniform
  // layout per microbatch (remainder to the first slices), so uneven
  // seq % n_slices and variable-length microbatches both train on every
  // token instead of silently truncating.
  std::vector<core::SliceLayout> layouts = options.layouts;
  if (layouts.empty()) {
    layouts.reserve(static_cast<std::size_t>(m));
    for (int mb = 0; mb < m; ++mb) {
      layouts.push_back(core::SliceLayout::uniform(
          static_cast<std::int64_t>(tokens[static_cast<std::size_t>(mb)].size()),
          n_slices));
    }
  }
  SLIM_CHECK(static_cast<int>(layouts.size()) == m,
             "one slice layout per microbatch required");
  for (int mb = 0; mb < m; ++mb) {
    const auto& layout = layouts[static_cast<std::size_t>(mb)];
    SLIM_CHECK(layout.slices() == n_slices &&
                   layout.seq() == static_cast<std::int64_t>(
                                       tokens[static_cast<std::size_t>(mb)].size()),
               "slice layout does not match its microbatch");
    SLIM_CHECK(tokens[static_cast<std::size_t>(mb)].size() ==
                   targets[static_cast<std::size_t>(mb)].size(),
               "tokens/targets length mismatch");
  }
  auto len_of = [&layouts](int mb, int slice) {
    return layouts[static_cast<std::size_t>(mb)].len(slice);
  };
  auto pos_of = [&layouts](int mb, int slice) {
    return layouts[static_cast<std::size_t>(mb)].begin(slice);
  };
  const int p = stages();
  SLIM_CHECK(!vocab_parallel || model_.vocab % p == 0,
             "vocabulary must split evenly across stages");
  const std::int64_t shard_width = vocab_parallel ? model_.vocab / p : model_.vocab;
  const fault::FaultPlan* plan = options.faults;
  if (plan != nullptr) {
    const std::vector<fault::PlanIssue> issues = validate(*plan, p);
    SLIM_CHECK(issues.empty(),
               "invalid fault plan:\n" + fault::render(issues));
  }

  Result result;
  result.grads.embedding = num::Tensor(model_.vocab, model_.dims.hidden);
  for (int i = 0; i < model_.layers_total; ++i) {
    result.grads.layers.push_back(num::LayerGrads::zeros(model_.dims));
  }
  result.grads.final_norm = num::Tensor(1, model_.dims.hidden);
  result.stats.peak_live_slices.assign(static_cast<std::size_t>(p), 0);
  result.stats.messages.assign(static_cast<std::size_t>(p), 0);

  // Observability: cheap always-on probes plus the optional span recorder.
  obs::Recorder* const rec = options.recorder;
  std::vector<StageProbe> probes(static_cast<std::size_t>(p));
  double wall_seconds = 0.0;  // summed over attempts
  // Per-stage arena statistics sinks: the measured side of the
  // measured-vs-analytical footprint reconciliation. Shared across attempts
  // (peaks are maxima over attempts; a respawned stage's fresh arenas keep
  // reporting into the same sink). unique_ptr because ArenaStats holds
  // atomics and cannot move.
  std::vector<std::unique_ptr<num::ArenaStats>> arena_stats;
  if (options.measure_memory) {
    for (int s = 0; s < p; ++s) {
      arena_stats.push_back(std::make_unique<num::ArenaStats>());
    }
  }
  if (rec != nullptr) {
    for (int s = 0; s < p; ++s) {
      rec->set_track_name(s, "stage " + std::to_string(s));
    }
  }

  const int v = model_.chunks_per_stage;
  const int total_stages = p * v;
  const int head_thread = model_.head_stage();

  // Global layer ids owned by each stage thread, chunk-major — the index
  // space of the per-microbatch staged gradients.
  const std::vector<std::vector<int>> owned_layers = model_.owned_layers();

  // Cross-attempt accumulators. Output-head gradients stay per stage shard
  // until the final merge (one row-shard per stage under vocabulary
  // parallelism, the full head on the head thread otherwise).
  std::vector<num::Tensor> head_shard_grad;
  for (int s = 0; s < p; ++s) {
    head_shard_grad.emplace_back(vocab_parallel ? shard_width : model_.vocab,
                                 model_.dims.hidden);
  }
  double total_loss = 0.0;
  // Slice (mb, s) contributes len / (seq_mb * m) of the iteration loss.
  // The dist backend evaluates the identical float expression so the two
  // substrates stay bit-identical.
  auto slice_weight_of = [&layouts, m](int mb, int slice) {
    const auto& layout = layouts[static_cast<std::size_t>(mb)];
    return static_cast<float>(layout.len(slice)) /
           (static_cast<float>(layout.seq()) * static_cast<float>(m));
  };
  fault::FaultReport iteration_report;

  // All (stage, microbatch) staged contributions of the iteration — the
  // shared commit protocol (src/runtime/commit.hpp). A slot is merged into
  // the result only when its microbatch fully retired; a crash
  // mid-iteration discards exactly the partial work.
  CommitLedger ledger(model_, m, vocab_parallel);

  struct AttemptOutcome {
    bool crashed = false;
    int crashed_stage = -1;
    std::vector<bool> committed;  // by rank within the attempt's mb list
  };

  // ---- one pipeline attempt over a subset of the microbatches ----
  // `mbs` is ascending; `inject` arms the plan's runtime faults (the replay
  // attempt after a crash runs with them disarmed — the respawned stage).
  auto run_attempt = [&](const std::vector<int>& mbs,
                         bool inject) -> AttemptOutcome {
    const int mk = static_cast<int>(mbs.size());
    SLIM_CHECK(mk >= 1, "attempt without microbatches");
    std::vector<int> rank_of(static_cast<std::size_t>(m), -1);
    for (int r = 0; r < mk; ++r) {
      rank_of[static_cast<std::size_t>(mbs[static_cast<std::size_t>(r)])] = r;
    }

    std::vector<Channel<Message>> inbox(static_cast<std::size_t>(p));
    // Seed stage 0 with every forward slice in slice-stream order.
    for (const int mb : mbs) {
      for (int s = 0; s < n_slices; ++s) {
        inbox[0].send({Message::Kind::Forward, mb, s, 0, 0, {}});
      }
    }

    // Fresh zeroed staging slots for every participating (stage, mb) pair —
    // on the replay attempt this discards the crashed attempt's partials.
    for (int s = 0; s < p; ++s) {
      for (const int mb : mbs) ledger.prepare(s, mb);
    }
    std::vector<StageStatus> statuses(static_cast<std::size_t>(p));
    std::vector<std::vector<fault::FaultEvent>> stage_events(
        static_cast<std::size_t>(p));
    Control ctrl;

    auto request_shutdown = [&] {
      {
        std::lock_guard<std::mutex> lock(ctrl.hang_mutex);
        ctrl.shutdown.store(true);
      }
      for (Channel<Message>& channel : inbox) channel.close();
      ctrl.hang_cv.notify_all();
    };

    const int want_f_per_stage = mk * n_slices * v;
    const int want_b_per_stage = mk * n_slices * v;

    // The watchdog's deadlock report: a snapshot of every stage's progress
    // and blocked-on state, assembled lock-free from the published atomics.
    auto blocked_table = [&]() -> std::string {
      Table table({"stage", "state", "messages", "fwd", "bwd", "live", "cap",
                   "deferred", "queue", "last mb", "committed mbs"});
      for (int s = 0; s < p; ++s) {
        const StageStatus& st = statuses[static_cast<std::size_t>(s)];
        const int cap = n_slices * v + 2 * (p - 1 - s);
        const int last_mb = st.last_mb.load();
        table.add_row(
            {std::to_string(s),
             state_name(static_cast<StageState>(st.state.load())),
             std::to_string(st.messages.load()),
             std::to_string(st.done_f.load()) + "/" +
                 std::to_string(want_f_per_stage),
             std::to_string(st.done_b.load()) + "/" +
                 std::to_string(want_b_per_stage),
             std::to_string(st.live.load()), std::to_string(cap),
             std::to_string(st.deferred.load()),
             std::to_string(inbox[static_cast<std::size_t>(s)].size()),
             last_mb < 0 ? std::string("-") : std::to_string(last_mb),
             std::to_string(st.committed.load()) + "/" + std::to_string(mk)});
      }
      return table.to_string();
    };

    auto worker_body = [&](int stage) {
      // Stage workers run concurrently; cap each one's numerics-kernel
      // fan-out so p stages don't each claim the whole pool. The cap never
      // changes chunk boundaries, so gradients stay bit-identical.
      const int pool_width = util::ThreadPool::global().max_threads();
      const int kernel_cap = options.kernel_threads > 0
                                 ? options.kernel_threads
                                 : std::max(1, pool_width / std::max(1, p));
      util::ScopedKernelThreads kernel_guard(kernel_cap);
      StageStatus& status = statuses[static_cast<std::size_t>(stage)];
      StageProbe& probe = probes[static_cast<std::size_t>(stage)];
      std::vector<fault::FaultEvent>& events =
          stage_events[static_cast<std::size_t>(stage)];

      // Routes a message to another stage thread: counts the cross-stage
      // traffic and opens a trace flow that the receiver closes (the
      // send->recv arrows in the exported trace).
      auto send_to = [&](int dst, Message out) {
        if (dst != stage) {
          ++probe.p2p_messages;
          probe.p2p_bytes += static_cast<double>(out.payload.size()) * 4.0;
          out.cross = true;
          if (rec != nullptr) {
            out.flow = rec->begin_flow(stage, message_kind_name(out.kind));
          }
        }
        inbox[static_cast<std::size_t>(dst)].send(std::move(out));
      };

      // This thread owns global stages stage, p+stage, 2p+stage, ...
      std::vector<std::vector<num::Layer>> chunk_layers(
          static_cast<std::size_t>(v));
      std::vector<int> local_of_global(
          static_cast<std::size_t>(model_.layers_total), -1);
      {
        int local = 0;
        for (int chunk = 0; chunk < v; ++chunk) {
          const int global_stage = chunk * p + stage;
          const auto [clo, chi] =
              model_.stage_layers[static_cast<std::size_t>(global_stage)];
          for (int i = clo; i < chi; ++i) {
            chunk_layers[static_cast<std::size_t>(chunk)].emplace_back(
                model_.dims, model_.layer_weights[static_cast<std::size_t>(i)]);
            if (!arena_stats.empty()) {
              chunk_layers[static_cast<std::size_t>(chunk)]
                  .back()
                  .set_arena_stats(
                      arena_stats[static_cast<std::size_t>(stage)].get());
            }
            local_of_global[static_cast<std::size_t>(i)] = local++;
          }
        }
      }
      const bool is_last = stage == head_thread;
      const std::int64_t shard_lo =
          vocab_parallel ? stage * shard_width : 0;
      const num::Tensor head_shard =
          vocab_parallel
              ? model_.embedding.slice_rows(shard_lo, shard_lo + shard_width)
              : model_.embedding;

      // Last-stage per-(rank, slice) state.
      auto idx = [&](int mb, int slice) {
        return static_cast<std::size_t>(
            rank_of[static_cast<std::size_t>(mb)] * n_slices + slice);
      };
      const std::size_t slots = static_cast<std::size_t>(mk * n_slices);
      std::vector<num::Tensor> head_grad(slots);
      std::vector<bool> head_ready(head_grad.size(), false);
      std::vector<num::Tensor> final_input(is_last ? head_grad.size() : 0);
      std::vector<num::Tensor> dx_sum(is_last ? head_grad.size() : 0);
      std::vector<int> stats_seen(is_last ? head_grad.size() : 0, 0);
      std::vector<int> dx_seen(is_last ? head_grad.size() : 0, 0);
      std::vector<num::CeShardStats> stats_acc(
          is_last ? head_grad.size() : 0);
      // Shard-side stash of hidden states between the two vocabulary phases.
      std::vector<num::Tensor> shard_hidden(
          vocab_parallel ? head_grad.size() : 0);

      // Work targets (loop until every expected action completed).
      const int want_f = want_f_per_stage;
      const int want_b = want_b_per_stage;
      const int want_vocab_work = vocab_parallel ? mk * n_slices : 0;
      const int want_vocab_global = vocab_parallel ? mk * n_slices : 0;
      int done_f = 0, done_b = 0, done_vw = 0, done_vg = 0;

      auto slice_targets_of = [&](int mb, int slice) {
        const std::int64_t pos = pos_of(mb, slice);
        return std::vector<std::int64_t>(
            targets[static_cast<std::size_t>(mb)].begin() + pos,
            targets[static_cast<std::size_t>(mb)].begin() + pos +
                len_of(mb, slice));
      };

      // Runtime fault hooks, armed only on the injecting attempt.
      std::int64_t crash_at = -1, hang_at = -1;
      std::int64_t delay_every = 0;
      double delay_seconds = 0.0;
      if (inject && plan != nullptr) {
        for (const fault::StageCrash& crash : plan->stage_crashes) {
          if (crash.stage == stage) crash_at = crash.after_messages;
        }
        for (const fault::StageHang& hang : plan->stage_hangs) {
          if (hang.stage == stage) hang_at = hang.after_messages;
        }
        for (const fault::MessageDelay& delay : plan->delays) {
          if (delay.stage == -1 || delay.stage == stage) {
            delay_every = delay.every;
            delay_seconds = delay.seconds;
          }
        }
      }
      bool delay_logged = false;

      int live = 0, peak_live = 0;
      int mb_min = 0;  // index into mbs (oldest unretired microbatch)
      std::vector<int> b_done(static_cast<std::size_t>(mk), 0);
      std::int64_t messages = 0;
      // SlimPipe's warm-up window (Eq. 1): stage r holds at most
      // n + 2(p-1-r) live slices; excess forwards wait here until a backward
      // frees a slot. This is what gives the runtime its bounded footprint.
      const int live_cap = n_slices * v + 2 * (p - 1 - stage);
      std::deque<Message> deferred;
      while (done_f < want_f || done_b < want_b || done_vw < want_vocab_work ||
             done_vg < want_vocab_global) {
        if (ctrl.shutdown.load(std::memory_order_relaxed)) {
          throw WorkerAborted{};
        }
        // Oldest microbatch not yet fully retired on this thread: its
        // forwards are always admitted (they are upstream of the backwards
        // that drain the window), so the throttle can never deadlock.
        while (mb_min < mk && b_done[static_cast<std::size_t>(mb_min)] ==
                                  n_slices * v) {
          ++mb_min;
        }
        const int admitted_mb =
            mb_min < mk ? mbs[static_cast<std::size_t>(mb_min)] : -1;
        Message msg;
        bool have = false;
        if (!deferred.empty() &&
            (live < live_cap || deferred.front().mb == admitted_mb)) {
          msg = std::move(deferred.front());
          deferred.pop_front();
          status.deferred.store(static_cast<int>(deferred.size()));
          have = true;
        }
        while (!have) {
          status.state.store(static_cast<int>(StageState::Waiting));
          const double recv_start = rec != nullptr ? rec->now() : 0.0;
          const auto wait_start = std::chrono::steady_clock::now();
          Message received;
          const RecvStatus recv =
              inbox[static_cast<std::size_t>(stage)].receive_status_for(
                  options.starvation_timeout, received);
          probe.blocked_recv_seconds +=
              std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                            wait_start)
                  .count();
          if (rec != nullptr) {
            rec->span(stage, "recv", obs::kCatComm, recv_start, rec->now());
          }
          status.state.store(static_cast<int>(StageState::Running));
          if (recv == RecvStatus::Closed) throw WorkerAborted{};
          if (recv == RecvStatus::Timeout) {
            // Watchdog: this stage starved. Snapshot every stage's
            // blocked-on state and fail the iteration with the table.
            const std::string starved_detail =
                "starved: f=" + std::to_string(done_f) + "/" +
                std::to_string(want_f) + " b=" + std::to_string(done_b) + "/" +
                std::to_string(want_b) + " live=" + std::to_string(live) +
                " cap=" + std::to_string(live_cap);
            if (rec != nullptr) {
              rec->instant(stage, "watchdog", obs::kCatFault, starved_detail);
            }
            fault::FaultReport report;
            report.events.push_back(
                {fault::FaultEvent::Kind::Watchdog, stage,
                 rec != nullptr ? rec->now() : 0.0, messages, starved_detail});
            report.blocked_table = blocked_table();
            throw PipelineError(
                "pipeline stage " + std::to_string(stage) +
                    " starved for " +
                    std::to_string(options.starvation_timeout.count()) +
                    " ms; blocked-on state:\n" + report.blocked_table,
                std::move(report));
          }
          ++messages;
          status.messages.store(messages);
          status.last_mb.store(received.mb);
          if (received.cross) {
            ++probe.frames_recv;
            probe.bytes_recv +=
                static_cast<double>(received.payload.size()) * 4.0;
          }
          if (hang_at > 0 && messages == hang_at) {
            // The stage silently stops making progress; peers starve and
            // the watchdog reports it. Park until the shutdown broadcast.
            status.state.store(static_cast<int>(StageState::Hung));
            if (rec != nullptr) {
              rec->instant(stage, "hang", obs::kCatFault,
                           "stage stopped draining its inbox");
            }
            events.push_back({fault::FaultEvent::Kind::Hang, stage,
                              rec != nullptr ? rec->now() : 0.0,
                              messages, "stage stopped draining its inbox"});
            std::unique_lock<std::mutex> lock(ctrl.hang_mutex);
            ctrl.hang_cv.wait(lock, [&] { return ctrl.shutdown.load(); });
            throw WorkerAborted{};
          }
          if (crash_at > 0 && messages == crash_at) {
            if (rec != nullptr) {
              rec->instant(stage, "crash", obs::kCatFault,
                           "stage worker crashed between messages");
            }
            events.push_back({fault::FaultEvent::Kind::Crash, stage,
                              rec != nullptr ? rec->now() : 0.0,
                              messages,
                              "stage worker crashed between messages"});
            throw InjectedCrash(stage, messages);
          }
          if (delay_every > 0 && messages % delay_every == 0 &&
              delay_seconds > 0.0) {
            if (!delay_logged) {
              const std::string delay_detail =
                  "sleeping " + std::to_string(delay_seconds) + " s every " +
                  std::to_string(delay_every) + " messages";
              if (rec != nullptr) {
                rec->instant(stage, "delay", obs::kCatFault, delay_detail);
              }
              events.push_back({fault::FaultEvent::Kind::Delay, stage,
                                rec != nullptr ? rec->now() : 0.0,
                                messages, delay_detail});
              delay_logged = true;
            }
            std::this_thread::sleep_for(
                std::chrono::duration<double>(delay_seconds));
          }
          // Eq. 1's warm-up window: park forwards of *younger* microbatches
          // while the window is full.
          if (received.kind == Message::Kind::Forward &&
              received.mb != admitted_mb && live >= live_cap) {
            deferred.push_back(std::move(received));
            status.deferred.store(static_cast<int>(deferred.size()));
            continue;
          }
          msg = std::move(received);
          have = true;
        }
        if (rec != nullptr && msg.flow >= 0) {
          rec->end_flow(msg.flow, stage, rec->now());
          msg.flow = -1;
        }
        const Message::Kind processed_kind = msg.kind;
        const int processed_mb = msg.mb;
        const int processed_slice = msg.slice;
        const int processed_stage = msg.stage;
        const double span_start = rec != nullptr ? rec->now() : 0.0;
        const auto busy_start = std::chrono::steady_clock::now();
        const int rank = rank_of[static_cast<std::size_t>(msg.mb)];
        SLIM_CHECK(rank >= 0, "message for a microbatch outside the attempt");
        StageCommit& mb_staged = ledger.slot(stage, msg.mb);
        switch (msg.kind) {
          case Message::Kind::Forward: {
            ++done_f;
            status.done_f.store(done_f);
            ++live;
            status.live.store(live);
            peak_live = std::max(peak_live, live);
            status.peak_live.store(peak_live);
            const std::int64_t pos = pos_of(msg.mb, msg.slice);
            const std::int64_t slice_len = len_of(msg.mb, msg.slice);
            num::Tensor x;
            if (msg.stage == 0) {
              x = num::Tensor(slice_len, model_.dims.hidden);
              const auto& ids = tokens[static_cast<std::size_t>(msg.mb)];
              for (std::int64_t r = 0; r < slice_len; ++r) {
                const std::int64_t id = ids[static_cast<std::size_t>(pos + r)];
                for (std::int64_t c = 0; c < model_.dims.hidden; ++c) {
                  x.at(r, c) = model_.embedding.at(id, c);
                }
              }
            } else {
              x = std::move(msg.payload);
            }
            for (num::Layer& layer :
                 chunk_layers[static_cast<std::size_t>(msg.stage / p)]) {
              x = layer.forward_slice(x, pos, msg.mb);
            }
            if (msg.stage + 1 < total_stages) {
              send_to((msg.stage + 1) % p,
                      {Message::Kind::Forward, msg.mb, msg.slice, 0,
                       msg.stage + 1, std::move(x)});
              break;
            }
            const num::Tensor hidden = num::rmsnorm(x, model_.final_norm);
            if (vocab_parallel) {
              // Phase 1: broadcast the hidden states to every shard.
              final_input[idx(msg.mb, msg.slice)] = std::move(x);
              for (int s = 0; s < p; ++s) {
                send_to(s, {Message::Kind::VocabWork, msg.mb, msg.slice, 0, 0,
                            hidden});
              }
            } else {
              const float slice_weight = slice_weight_of(msg.mb, msg.slice);
              const num::Tensor logits = num::matmul_nt(hidden, model_.embedding);
              num::CeResult ce = num::cross_entropy(
                  logits, slice_targets_of(msg.mb, msg.slice));
              mb_staged.loss +=
                  ce.loss * slice_weight * static_cast<double>(m);
              for (std::int64_t i = 0; i < ce.dlogits.size(); ++i) {
                ce.dlogits.data()[i] *= slice_weight;
              }
              mb_staged.head_shard.add_(num::matmul_tn(ce.dlogits, hidden));
              const num::Tensor dhidden = num::matmul(ce.dlogits, model_.embedding);
              head_grad[idx(msg.mb, msg.slice)] = num::rmsnorm_bwd(
                  x, model_.final_norm, dhidden, mb_staged.final_norm);
              head_ready[idx(msg.mb, msg.slice)] = true;
              if (msg.slice == n_slices - 1) {
                inbox[static_cast<std::size_t>(stage)].send_front(
                    {Message::Kind::Backward, msg.mb, msg.slice, 0,
                     total_stages - 1, {}});
              }
            }
            break;
          }
          case Message::Kind::Backward: {
            const bool head_edge = msg.stage == total_stages - 1;
            if (head_edge && !head_ready[idx(msg.mb, msg.slice)]) {
              // The vocabulary rounds for this slice have not finished yet;
              // revisit after processing more messages.
              inbox[static_cast<std::size_t>(stage)].send(std::move(msg));
              std::this_thread::yield();
              break;
            }
            ++done_b;
            status.done_b.store(done_b);
            --live;
            status.live.store(live);
            ++b_done[static_cast<std::size_t>(rank)];
            num::Tensor dx = head_edge
                                 ? std::move(head_grad[idx(msg.mb, msg.slice)])
                                 : std::move(msg.payload);
            auto& layers =
                chunk_layers[static_cast<std::size_t>(msg.stage / p)];
            const int clo =
                model_.stage_layers[static_cast<std::size_t>(msg.stage)].first;
            for (auto it = layers.rbegin(); it != layers.rend(); ++it) {
              const std::size_t global = static_cast<std::size_t>(
                  clo + static_cast<int>(layers.rend() - it) - 1);
              const int local = local_of_global[global];
              dx = it->backward_slice(
                  dx, mb_staged.layers[static_cast<std::size_t>(local)],
                  msg.mb);
            }
            if (msg.stage > 0) {
              send_to((msg.stage - 1 + p) % p,
                      {Message::Kind::Backward, msg.mb, msg.slice, 0,
                       msg.stage - 1, std::move(dx)});
            } else {
              const auto& ids = tokens[static_cast<std::size_t>(msg.mb)];
              const std::int64_t pos = pos_of(msg.mb, msg.slice);
              const std::int64_t slice_len = len_of(msg.mb, msg.slice);
              for (std::int64_t r = 0; r < slice_len; ++r) {
                const std::int64_t id = ids[static_cast<std::size_t>(pos + r)];
                for (std::int64_t c = 0; c < model_.dims.hidden; ++c) {
                  mb_staged.embed_in.at(id, c) += dx.at(r, c);
                }
              }
            }
            if (b_done[static_cast<std::size_t>(rank)] == n_slices * v) {
              // Microbatch retired on this stage: its staged gradients are
              // final and survive a later crash (commit point).
              mb_staged.complete = true;
              status.committed.fetch_add(1);
              if (rec != nullptr) {
                rec->instant(stage, "commit mb" + std::to_string(msg.mb),
                             obs::kCatCommit);
              }
            }
            if (head_edge && msg.slice > 0) {
              inbox[static_cast<std::size_t>(stage)].send_front(
                  {Message::Kind::Backward, msg.mb, msg.slice - 1, 0,
                   total_stages - 1, {}});
            }
            break;
          }
          case Message::Kind::VocabWork: {
            ++done_vw;
            // Shard pass 1: local logits -> per-token scalar statistics.
            const std::int64_t slice_len = len_of(msg.mb, msg.slice);
            const num::Tensor& hidden = msg.payload;
            const num::Tensor logits = num::matmul_nt(hidden, head_shard);
            const num::CeShardStats st = num::ce_shard_stats(
                logits, shard_lo, slice_targets_of(msg.mb, msg.slice));
            num::Tensor packed(3, slice_len);
            for (std::int64_t i = 0; i < slice_len; ++i) {
              packed.at(0, i) = st.max_logit[static_cast<std::size_t>(i)];
              packed.at(1, i) = st.sum_exp[static_cast<std::size_t>(i)];
              packed.at(2, i) = st.target_logit[static_cast<std::size_t>(i)];
            }
            shard_hidden[idx(msg.mb, msg.slice)] = hidden;
            send_to(head_thread, {Message::Kind::VocabStats, msg.mb,
                                  msg.slice, stage, 0, std::move(packed)});
            break;
          }
          case Message::Kind::VocabStats: {
            // Last stage: synchronize the scalars across shards.
            const std::int64_t slice_len = len_of(msg.mb, msg.slice);
            const std::size_t i = idx(msg.mb, msg.slice);
            num::CeShardStats& acc = stats_acc[i];
            if (stats_seen[i] == 0) {
              acc.max_logit.assign(static_cast<std::size_t>(slice_len),
                                   -std::numeric_limits<float>::infinity());
              acc.sum_exp.assign(static_cast<std::size_t>(slice_len), 0.0f);
              acc.target_logit.assign(
                  static_cast<std::size_t>(slice_len),
                  -std::numeric_limits<float>::infinity());
            }
            // Numerically: combine as running (max, rescaled sum).
            for (std::int64_t t = 0; t < slice_len; ++t) {
              const std::size_t ti = static_cast<std::size_t>(t);
              const float sm = msg.payload.at(0, t);
              const float ss = msg.payload.at(1, t);
              const float stl = msg.payload.at(2, t);
              const float gmax = std::max(acc.max_logit[ti], sm);
              float gsum = 0.0f;
              if (acc.sum_exp[ti] > 0.0f) {
                gsum += acc.sum_exp[ti] * std::exp(acc.max_logit[ti] - gmax);
              }
              if (ss > 0.0f) gsum += ss * std::exp(sm - gmax);
              acc.max_logit[ti] = gmax;
              acc.sum_exp[ti] = gsum;
              acc.target_logit[ti] = std::max(acc.target_logit[ti], stl);
            }
            if (++stats_seen[i] == p) {
              // Loss from the synchronized scalars; broadcast them back.
              double loss = 0.0;
              num::Tensor global(2, slice_len);
              for (std::int64_t t = 0; t < slice_len; ++t) {
                const std::size_t ti = static_cast<std::size_t>(t);
                loss += std::log(acc.sum_exp[ti]) + acc.max_logit[ti] -
                        acc.target_logit[ti];
                global.at(0, t) = acc.max_logit[ti];
                global.at(1, t) = acc.sum_exp[ti];
              }
              mb_staged.loss += loss / static_cast<double>(slice_len) *
                                slice_weight_of(msg.mb, msg.slice) *
                                static_cast<double>(m);
              for (int s = 0; s < p; ++s) {
                send_to(s, {Message::Kind::VocabGlobal, msg.mb, msg.slice, 0,
                            0, global});
              }
            }
            break;
          }
          case Message::Kind::VocabGlobal: {
            ++done_vg;
            // Shard pass 2: gradient of the shard's logits from the global
            // statistics; return the partial d(hidden).
            const std::int64_t slice_len = len_of(msg.mb, msg.slice);
            const float slice_weight = slice_weight_of(msg.mb, msg.slice);
            const std::size_t i = idx(msg.mb, msg.slice);
            const num::Tensor hidden = std::move(shard_hidden[i]);
            const num::Tensor logits = num::matmul_nt(hidden, head_shard);
            const auto slice_targets = slice_targets_of(msg.mb, msg.slice);
            num::Tensor dlogits(slice_len, shard_width);
            for (std::int64_t t = 0; t < slice_len; ++t) {
              const float gmax = msg.payload.at(0, t);
              const float gsum = msg.payload.at(1, t);
              const std::int64_t y =
                  slice_targets[static_cast<std::size_t>(t)] - shard_lo;
              for (std::int64_t ccol = 0; ccol < shard_width; ++ccol) {
                const float prob =
                    std::exp(logits.at(t, ccol) - gmax) / gsum;
                // Mean over the slice's tokens, then the slice's share of
                // the iteration mean — matching the monolithic head exactly.
                dlogits.at(t, ccol) = (prob - (ccol == y ? 1.0f : 0.0f)) *
                                      (slice_weight /
                                       static_cast<float>(slice_len));
              }
            }
            mb_staged.head_shard.add_(num::matmul_tn(dlogits, hidden));
            num::Tensor dx_part = num::matmul(dlogits, head_shard);
            send_to(head_thread, {Message::Kind::VocabDx, msg.mb, msg.slice,
                                  stage, 0, std::move(dx_part)});
            break;
          }
          case Message::Kind::VocabDx: {
            // Last stage: reduce the shards' partial d(hidden).
            const std::size_t i = idx(msg.mb, msg.slice);
            if (dx_seen[i] == 0) {
              dx_sum[i] = std::move(msg.payload);
            } else {
              dx_sum[i].add_(msg.payload);
            }
            if (++dx_seen[i] == p) {
              head_grad[i] = num::rmsnorm_bwd(final_input[i], model_.final_norm,
                                              dx_sum[i],
                                              mb_staged.final_norm);
              head_ready[i] = true;
              final_input[i] = {};
              dx_sum[i] = {};
              if (msg.slice == n_slices - 1) {
                inbox[static_cast<std::size_t>(stage)].send_front(
                    {Message::Kind::Backward, msg.mb, msg.slice, 0,
                     total_stages - 1, {}});
              }
            }
            break;
          }
        }
        probe.busy_seconds +=
            std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                          busy_start)
                .count();
        if (rec != nullptr) {
          // Every processed message is compute work (vocab rounds included:
          // they run the shard GEMMs); waiting shows up as "recv" spans.
          rec->span(stage,
                    std::string(message_kind_name(processed_kind)) + " mb" +
                        std::to_string(processed_mb) + " s" +
                        std::to_string(processed_slice) + " st" +
                        std::to_string(processed_stage),
                    obs::kCatCompute, span_start, rec->now(), processed_mb,
                    processed_slice, processed_stage);
        }
      }
      for (const auto& chunk : chunk_layers) {
        for (const num::Layer& layer : chunk) {
          SLIM_CHECK(layer.live_slices() == 0 && layer.cache_chunks() == 0,
                     "stage leaked slices/chunks");
        }
      }
    };

    auto worker_main = [&](int stage) {
      StageStatus& status = statuses[static_cast<std::size_t>(stage)];
      try {
        worker_body(stage);
        status.state.store(static_cast<int>(StageState::Done));
      } catch (const WorkerAborted&) {
        // Poisoned during shutdown — keep a Hung label if the fault hook
        // set one (the deadlock table should show the root cause).
        if (status.state.load() != static_cast<int>(StageState::Hung)) {
          status.state.store(static_cast<int>(StageState::Aborted));
        }
      } catch (...) {
        status.state.store(static_cast<int>(StageState::Crashed));
        {
          std::lock_guard<std::mutex> lock(ctrl.error_mutex);
          if (!ctrl.first_error) {
            ctrl.first_error = std::current_exception();
            ctrl.first_error_stage = stage;
          }
        }
        request_shutdown();
      }
    };

    std::vector<std::thread> threads;
    threads.reserve(static_cast<std::size_t>(p));
    const auto attempt_start = std::chrono::steady_clock::now();
    for (int s = 0; s < p; ++s) threads.emplace_back(worker_main, s);
    for (std::thread& t : threads) t.join();
    wall_seconds += std::chrono::duration<double>(
                        std::chrono::steady_clock::now() - attempt_start)
                        .count();

    // Fold the attempt's stats and fault events into the iteration totals.
    for (int s = 0; s < p; ++s) {
      const StageStatus& st = statuses[static_cast<std::size_t>(s)];
      result.stats.messages[static_cast<std::size_t>(s)] += st.messages.load();
      result.stats.peak_live_slices[static_cast<std::size_t>(s)] = std::max(
          result.stats.peak_live_slices[static_cast<std::size_t>(s)],
          st.peak_live.load());
      probes[static_cast<std::size_t>(s)].peak_queue =
          std::max(probes[static_cast<std::size_t>(s)].peak_queue,
                   inbox[static_cast<std::size_t>(s)].peak_depth());
      for (fault::FaultEvent& event : stage_events[static_cast<std::size_t>(s)]) {
        iteration_report.events.push_back(std::move(event));
      }
    }

    // Merge one rank's staged contributions in deterministic (stage-major)
    // order; called only for fully retired microbatches.
    auto merge_rank = [&](int rank) {
      ledger.merge_microbatch(mbs[static_cast<std::size_t>(rank)],
                              result.grads, head_shard_grad, total_loss);
    };

    AttemptOutcome outcome;
    outcome.committed.assign(static_cast<std::size_t>(mk), false);

    std::exception_ptr error;
    {
      std::lock_guard<std::mutex> lock(ctrl.error_mutex);
      error = ctrl.first_error;
    }
    if (!error) {
      for (int rank = 0; rank < mk; ++rank) {
        merge_rank(rank);
        outcome.committed[static_cast<std::size_t>(rank)] = true;
      }
      return outcome;
    }

    try {
      std::rethrow_exception(error);
    } catch (const InjectedCrash& crash) {
      if (options.recover) {
        // Checkpoint-replay recovery: keep the microbatches that retired on
        // every stage before the crash, discard all partial work.
        outcome.crashed = true;
        outcome.crashed_stage = crash.stage;
        for (int rank = 0; rank < mk; ++rank) {
          if (ledger.fully_committed(mbs[static_cast<std::size_t>(rank)])) {
            merge_rank(rank);
            outcome.committed[static_cast<std::size_t>(rank)] = true;
          }
        }
        return outcome;
      }
      fault::FaultReport report = iteration_report;
      report.blocked_table = blocked_table();
      throw PipelineError(std::string(crash.what()) +
                              " (recovery disabled); blocked-on state:\n" +
                              report.blocked_table,
                          std::move(report));
    } catch (const PipelineError& pipeline_error) {
      // Watchdog (or nested) structured failure: extend it with the
      // attempt's injected events so the caller sees the full picture.
      fault::FaultReport report = pipeline_error.report();
      report.events.insert(report.events.begin(),
                           iteration_report.events.begin(),
                           iteration_report.events.end());
      throw PipelineError(pipeline_error.what(), std::move(report));
    } catch (const std::exception& exception) {
      // Any other worker exception (SLIM_CHECK violations included): wrap
      // into the structured form instead of terminating.
      fault::FaultReport report = iteration_report;
      report.blocked_table = blocked_table();
      throw PipelineError(std::string("pipeline worker failed: ") +
                              exception.what() + "\nblocked-on state:\n" +
                              report.blocked_table,
                          std::move(report));
    }
  };

  // ---- attempt 1: all microbatches, faults armed ----
  std::vector<int> all_mbs(static_cast<std::size_t>(m));
  std::iota(all_mbs.begin(), all_mbs.end(), 0);
  const bool inject = plan != nullptr && !plan->empty();
  AttemptOutcome first = run_attempt(all_mbs, inject);

  if (first.crashed) {
    // ---- respawn + replay: the crashed stage restarts from the parameter
    // snapshot (weights are immutable within the iteration) and the
    // pipeline replays every microbatch that had not fully retired. ----
    std::vector<int> replay;
    for (int mb = 0; mb < m; ++mb) {
      if (!first.committed[static_cast<std::size_t>(mb)]) {
        replay.push_back(mb);
      }
    }
    SLIM_CHECK(!replay.empty(),
               "crash after full retirement should not reach recovery");
    std::string detail = "stage " + std::to_string(first.crashed_stage) +
                         " respawned; replaying microbatches";
    for (const int mb : replay) detail += " " + std::to_string(mb);
    if (rec != nullptr) {
      rec->instant(first.crashed_stage, "recovery", obs::kCatFault, detail);
    }
    iteration_report.events.push_back({fault::FaultEvent::Kind::Recovery,
                                       first.crashed_stage,
                                       rec != nullptr ? rec->now() : 0.0,
                                       static_cast<std::int64_t>(replay.size()),
                                       detail});
    iteration_report.replayed_microbatches = replay;
    result.stats.replayed_microbatches = replay;
    run_attempt(replay, /*inject=*/false);
  }

  if (vocab_parallel) {
    for (int s = 0; s < p; ++s) {
      result.grads.embedding.assign_rows(
          s * shard_width, [&] {
            num::Tensor merged =
                result.grads.embedding.slice_rows(s * shard_width,
                                                  (s + 1) * shard_width);
            merged.add_(head_shard_grad[static_cast<std::size_t>(s)]);
            return merged;
          }());
    }
  } else {
    result.grads.embedding.add_(
        head_shard_grad[static_cast<std::size_t>(head_thread)]);
  }
  // Assemble the per-stage metrics in the shared obs shape. Timing fields
  // are wall-clock (this substrate's clock); the discrete schedule-shape
  // fields (peak live slices, message counts) are what the consistency
  // tests compare against the simulator.
  result.stats.metrics.substrate = "runtime";
  result.stats.metrics.scheme = v > 1 ? "slimpipe-interleaved" : "slimpipe";
  result.stats.metrics.makespan = wall_seconds;
  for (int s = 0; s < p; ++s) {
    const StageProbe& probe = probes[static_cast<std::size_t>(s)];
    obs::StageMetrics stage_metrics;
    stage_metrics.device = s;
    stage_metrics.compute_seconds = probe.busy_seconds;
    stage_metrics.idle_seconds =
        std::max(0.0, wall_seconds - probe.busy_seconds);
    stage_metrics.bubble_fraction =
        wall_seconds > 0.0 ? stage_metrics.idle_seconds / wall_seconds : 0.0;
    stage_metrics.blocked_recv_seconds = probe.blocked_recv_seconds;
    stage_metrics.peak_live_slices =
        result.stats.peak_live_slices[static_cast<std::size_t>(s)];
    stage_metrics.p2p_messages = probe.p2p_messages;
    stage_metrics.p2p_bytes = probe.p2p_bytes;
    // Same counter names as the dist substrate's wire stats: a cross-thread
    // message is this substrate's "frame".
    stage_metrics.frames_sent = probe.p2p_messages;
    stage_metrics.frames_recv = probe.frames_recv;
    stage_metrics.bytes_recv = probe.bytes_recv;
    stage_metrics.peak_queue_depth = static_cast<int>(probe.peak_queue);
    if (!arena_stats.empty()) {
      const num::ArenaStats& measured =
          *arena_stats[static_cast<std::size_t>(s)];
      for (int c = 0; c < mem::kNumCategories; ++c) {
        stage_metrics.measured_peak_bytes.push_back(
            static_cast<double>(measured.peak_bytes(c)));
      }
      stage_metrics.measured_peak_total =
          static_cast<double>(measured.total_peak_bytes());
    }
    result.stats.metrics.stages.push_back(stage_metrics);
  }
  result.loss = total_loss / static_cast<double>(m);
  if (options.report != nullptr) {
    options.report->events.insert(options.report->events.end(),
                                  iteration_report.events.begin(),
                                  iteration_report.events.end());
    options.report->replayed_microbatches =
        iteration_report.replayed_microbatches;
  }
  return result;
}

ThreadedPipeline::Result ThreadedPipeline::run_reference(
    const std::vector<std::vector<std::int64_t>>& tokens,
    const std::vector<std::vector<std::int64_t>>& targets) {
  ReferenceResult reference = reference_run(model_, tokens, targets);
  Result result;
  result.loss = reference.loss;
  result.grads = std::move(reference.grads);
  return result;
}

std::chrono::milliseconds default_starvation_timeout() {
  return std::chrono::milliseconds(
      util::env_int_or("SLIMPIPE_STARVATION_TIMEOUT_MS", 30000, 1));
}

}  // namespace slim::rt
