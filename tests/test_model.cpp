// Unit tests for the transformer model descriptions, the FLOPs/cost model
// and the activation/model-state memory model. Anchors: Table 3 parameter
// counts and the paper's §3 worked example (Llama 70B, 1M context, full
// recompute, t=8 -> 160 GiB of activations).

#include <gtest/gtest.h>

#include "src/model/activation.hpp"
#include "src/model/flops.hpp"
#include "src/model/hardware.hpp"
#include "src/model/transformer.hpp"
#include "src/sim/topology.hpp"
#include "src/util/units.hpp"

namespace slim::model {
namespace {

TEST(TransformerTest, Table3ParameterCounts) {
  // Table 3 reports #Params including the 128,000-entry vocabulary.
  EXPECT_NEAR(llama13b().params_total() / 1e9, 13.3, 0.15);
  EXPECT_NEAR(llama70b().params_total() / 1e9, 69.5, 0.7);
  EXPECT_NEAR(llama149b().params_total() / 1e9, 148.9, 1.5);
  EXPECT_NEAR(mixtral8x7b().params_total() / 1e9, 47.0, 0.5);
  EXPECT_NEAR(mixtral8x22b().params_total() / 1e9, 141.0, 1.5);
}

TEST(TransformerTest, GqaDimensions) {
  const TransformerConfig cfg = llama70b();
  EXPECT_EQ(cfg.kv_heads(), 8);
  EXPECT_EQ(cfg.head_dim(), 128);
  EXPECT_EQ(cfg.kv_hidden(), 1024);
  const TransformerConfig mha = llama13b();
  EXPECT_EQ(mha.kv_heads(), mha.heads);
  EXPECT_EQ(mha.kv_hidden(), mha.hidden);
}

TEST(TransformerTest, MoeActiveExperts) {
  EXPECT_EQ(mixtral8x7b().active_experts(), 2);
  EXPECT_EQ(llama13b().active_experts(), 1);
  EXPECT_TRUE(mixtral8x22b().is_moe());
  EXPECT_FALSE(llama149b().is_moe());
}

TEST(TransformerTest, ZooLookup) {
  EXPECT_EQ(model_by_name("Llama 70B").hidden, 8192);
  EXPECT_EQ(model_by_name("Llama 7B").layers, 32);
  EXPECT_THROW(model_by_name("GPT-5"), std::logic_error);
  EXPECT_EQ(model_zoo().size(), 5u);
}

TEST(ActivationTest, PaperFullRecomputeExample) {
  // 1048576 * 8192 * 80 * 2 / 8 = 160 GiB (paper §3).
  const TransformerConfig cfg = llama70b();
  const Shard shard{8, 1, 1, 8};
  const double per_token = act_bytes_per_token_layer(
      cfg, shard, CheckpointPolicy::Full, /*retain_kv=*/false);
  const double total = per_token * 1048576.0 * 80.0;
  EXPECT_NEAR(total / kGiB, 160.0, 0.01);
}

TEST(ActivationTest, PolicyOrdering) {
  const TransformerConfig cfg = llama13b();
  const Shard shard{8, 1, 1, 8};
  const double none =
      act_bytes_per_token_layer(cfg, shard, CheckpointPolicy::None, false);
  const double sel = act_bytes_per_token_layer(cfg, shard,
                                               CheckpointPolicy::Selective,
                                               false);
  const double full =
      act_bytes_per_token_layer(cfg, shard, CheckpointPolicy::Full, false);
  EXPECT_GT(none, sel);
  EXPECT_GT(sel, full);
}

TEST(ActivationTest, KvRetentionAddsToFullCheckpointOnly) {
  const TransformerConfig cfg = llama70b();
  const Shard shard{8, 1, 1, 8};
  const double full_nokv =
      act_bytes_per_token_layer(cfg, shard, CheckpointPolicy::Full, false);
  const double full_kv =
      act_bytes_per_token_layer(cfg, shard, CheckpointPolicy::Full, true);
  EXPECT_GT(full_kv, full_nokv);
  // Under None, K/V are stored anyway: retain_kv changes nothing.
  const double none_nokv =
      act_bytes_per_token_layer(cfg, shard, CheckpointPolicy::None, false);
  const double none_kv =
      act_bytes_per_token_layer(cfg, shard, CheckpointPolicy::None, true);
  EXPECT_DOUBLE_EQ(none_nokv, none_kv);
}

TEST(ActivationTest, ShardingDividesActivations) {
  const TransformerConfig cfg = llama13b();
  const double t1 = act_bytes_per_token_layer(cfg, Shard{1, 1, 1, 8},
                                              CheckpointPolicy::None, false);
  const double t8 = act_bytes_per_token_layer(cfg, Shard{8, 1, 1, 8},
                                              CheckpointPolicy::None, false);
  const double t8c2 = act_bytes_per_token_layer(cfg, Shard{8, 2, 1, 8},
                                                CheckpointPolicy::None, false);
  EXPECT_NEAR(t1 / t8, 8.0, 1e-9);
  EXPECT_NEAR(t8 / t8c2, 2.0, 1e-9);
}

TEST(ActivationTest, LogitsExample) {
  // Paper §4.3.1: 256K context, 128000 vocabulary, 8-way TP -> ~16 GiB.
  const TransformerConfig cfg = llama13b();
  const Shard shard{8, 1, 1, 8};
  const double bytes = logits_bytes(cfg, shard, 256 * 1024, 1);
  // fp32 logits alone: 256K * 128000/8 * 4 = 16 GiB; we also count the
  // bf16 GEMM output, so expect [16, 26) GiB.
  EXPECT_GE(bytes / kGiB, 16.0);
  EXPECT_LT(bytes / kGiB, 26.0);
  // Vocabulary parallelism divides it by p.
  EXPECT_NEAR(logits_bytes(cfg, shard, 256 * 1024, 8) * 8.0, bytes, 1.0);
}

TEST(ActivationTest, ModelStatesScale) {
  const TransformerConfig cfg = llama13b();
  const Shard shard{8, 1, 1, 8};
  const double full = model_state_bytes(cfg, shard, 40, 1.0, 1);
  const double half_layers = model_state_bytes(cfg, shard, 20, 1.0, 1);
  EXPECT_GT(full, half_layers);
  // Optimizer sharding reduces, but never below the resident bf16 portion.
  const double sharded = model_state_bytes(cfg, shard, 40, 1.0, 8);
  EXPECT_LT(sharded, full);
  EXPECT_GT(sharded, full / 4.0);
}

TEST(ActivationTest, WgradKeptFractionBounds) {
  for (const auto& cfg : model_zoo()) {
    for (auto policy : {CheckpointPolicy::None, CheckpointPolicy::Selective,
                        CheckpointPolicy::Full}) {
      const double f = wgrad_kept_fraction(cfg, policy);
      EXPECT_GT(f, 0.0);
      EXPECT_LE(f, 1.0);
    }
  }
}

TEST(HardwareTest, RooflineMax) {
  const GpuSpec gpu = hopper80();
  // Compute bound: big flops, no bytes.
  const double tc = gpu.op_time(989e12 * 0.65, 0.0, OpCategory::Gemm);
  EXPECT_NEAR(tc, 1.0, 1e-9);
  // Memory bound: tiny flops, lots of bytes.
  const double tm = gpu.op_time(1.0, 3.35e12, OpCategory::Gemm);
  EXPECT_NEAR(tm, 1.0, 1e-9);
}

TEST(HardwareTest, EfficiencyTableOrdering) {
  const GpuSpec gpu = hopper80();
  EXPECT_GT(gpu.efficiency(OpCategory::Gemm),
            gpu.efficiency(OpCategory::Attention));
  EXPECT_GT(gpu.efficiency(OpCategory::Attention),
            gpu.efficiency(OpCategory::AttentionBwd));
}

class CostModelTest : public ::testing::Test {
 protected:
  CostModelTest()
      : cost_(llama13b(), hopper80(), sim::make_cluster(8),
              Shard{8, 1, 1, 8}, CheckpointPolicy::None) {}
  CostModel cost_;
};

TEST_F(CostModelTest, AttentionQuadraticInContext) {
  const double t1 = cost_.causal_attn_time(65536, 0, true);
  const double t2 = cost_.causal_attn_time(131072, 0, true);
  EXPECT_NEAR(t2 / t1, 4.0, 0.3);
}

TEST_F(CostModelTest, LaterSlicesCostMore) {
  const double first = cost_.causal_attn_time(8192, 0, true);
  const double later = cost_.causal_attn_time(8192, 8 * 8192, true);
  EXPECT_GT(later, 2.0 * first);
}

TEST_F(CostModelTest, CausalSliceCostsSumToFullCost) {
  // Attention flops of n uniform slices with growing prefixes must equal
  // the monolithic causal cost.
  const std::int64_t seq = 65536, n = 8, len = seq / n;
  double sliced = 0.0;
  for (std::int64_t i = 0; i < n; ++i) {
    sliced += cost_.attn_block_flops(
        static_cast<double>(len),
        CostModel::causal_kv_equiv(len, i * len));
  }
  const double full = cost_.attn_block_flops(
      static_cast<double>(seq), CostModel::causal_kv_equiv(seq, 0));
  EXPECT_NEAR(sliced / full, 1.0, 1e-9);
}

TEST_F(CostModelTest, BackwardCostsMoreThanForward) {
  EXPECT_GT(cost_.backward_time(10, 65536, 0),
            1.5 * cost_.forward_time(10, 65536, 0));
}

TEST_F(CostModelTest, ZbSplitSumsToFullBackward) {
  const double bi = cost_.backward_input_time(10, 65536, 0);
  const double bw = cost_.backward_weight_time(10, 65536);
  const double b = cost_.backward_time(10, 65536, 0);
  EXPECT_NEAR((bi + bw) / b, 1.0, 0.15);
  // Attention has no weight gradient: the input half dominates.
  EXPECT_GT(bi, bw);
}

TEST_F(CostModelTest, RecomputePolicies) {
  const CostModel full(llama13b(), hopper80(), sim::make_cluster(8),
                       Shard{8, 1, 1, 8}, CheckpointPolicy::Full);
  const CostModel sel(llama13b(), hopper80(), sim::make_cluster(8),
                      Shard{8, 1, 1, 8}, CheckpointPolicy::Selective);
  EXPECT_DOUBLE_EQ(cost_.recompute_time(10, 65536, 0), 0.0);
  EXPECT_GT(sel.recompute_time(10, 65536, 0), 0.0);
  EXPECT_GT(full.recompute_time(10, 65536, 0),
            sel.recompute_time(10, 65536, 0));
  // Full recompute re-runs the forward.
  EXPECT_NEAR(full.recompute_time(10, 65536, 0),
              full.forward_time(10, 65536, 0), 1e-9);
}

TEST_F(CostModelTest, VocabShardingDividesTime) {
  const double full = cost_.vocab_forward_time(65536, 1);
  const double sharded = cost_.vocab_forward_time(65536, 8);
  EXPECT_GT(full, 6.0 * sharded);
}

TEST_F(CostModelTest, ModelFlopsIterationIsThreeForwards) {
  const double fwd = cost_.model_flops_forward(65536);
  EXPECT_DOUBLE_EQ(cost_.model_flops_iteration(65536, 2), 6.0 * fwd);
}

TEST_F(CostModelTest, BoundaryBytesShardAware) {
  const CostModel wide(llama13b(), hopper80(), sim::make_cluster(8),
                       Shard{4, 2, 1, 8}, CheckpointPolicy::None);
  // len * h * 2 / (t * c)
  EXPECT_NEAR(wide.boundary_bytes(8192), 8192.0 * 5120.0 * 2.0 / 8.0, 1.0);
}

TEST(CostModelComm, MoeAllToAllAddsTime) {
  const GpuSpec gpu = hopper80();
  const CostModel dense(llama13b(), gpu, sim::make_cluster(8),
                        Shard{1, 1, 1, 8}, CheckpointPolicy::None);
  const CostModel moe_e1(mixtral8x7b(), gpu, sim::make_cluster(8),
                         Shard{1, 1, 1, 8}, CheckpointPolicy::None);
  const CostModel moe_e8(mixtral8x7b(), gpu, sim::make_cluster(8),
                         Shard{1, 1, 8, 8}, CheckpointPolicy::None);
  // EP adds all-to-all time relative to local experts.
  EXPECT_GT(moe_e8.nonattn_time(8, 65536, true),
            moe_e1.nonattn_time(8, 65536, true));
  (void)dense;
}

TEST(CostModelComm, CrossNodeCpIsMoreExpensive) {
  const GpuSpec gpu = hopper80();
  // Same t and c; only the node boundary differs (gpus_per_node 4 forces
  // the t*c = 8 group across nodes).
  const CostModel cross(llama13b(), gpu, sim::make_cluster(16),
                        Shard{4, 2, 1, 4}, CheckpointPolicy::None);
  const CostModel local(llama13b(), gpu, sim::make_cluster(16),
                        Shard{4, 2, 1, 8}, CheckpointPolicy::None);
  const double tc = cross.nonattn_time(8, 65536, true);
  const double tl = local.nonattn_time(8, 65536, true);
  EXPECT_GT(tc, tl);
}

TEST(CostModelComm, CommutatedCpCheaperWithKvCache) {
  const GpuSpec gpu = hopper80();
  const CostModel ring(llama13b(), gpu, sim::make_cluster(16),
                       Shard{8, 2, 1, 8}, CheckpointPolicy::None,
                       CpMode::RingKv);
  const CostModel comm(llama13b(), gpu, sim::make_cluster(16),
                       Shard{8, 2, 1, 8}, CheckpointPolicy::None,
                       CpMode::Commutated);
  // With a long cached prefix, ring attention re-communicates the cache;
  // the commutated variant's volume is independent of the prefix (§5).
  const double tr = ring.backward_input_time(8, 8192, 256 * 1024);
  const double tc = comm.backward_input_time(8, 8192, 256 * 1024);
  EXPECT_GT(tr, tc);
}

}  // namespace
}  // namespace slim::model
