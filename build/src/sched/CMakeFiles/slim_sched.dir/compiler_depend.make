# Empty compiler generated dependencies file for slim_sched.
# This may be replaced when dependencies are built.
