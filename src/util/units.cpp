#include "src/util/units.hpp"

#include <cmath>
#include <cstdio>

namespace slim {

std::string format_bytes(double bytes) {
  char buf[64];
  const double abs = std::fabs(bytes);
  if (abs >= kGiB) {
    std::snprintf(buf, sizeof(buf), "%.2f GiB", bytes / kGiB);
  } else if (abs >= kMiB) {
    std::snprintf(buf, sizeof(buf), "%.2f MiB", bytes / kMiB);
  } else if (abs >= kKiB) {
    std::snprintf(buf, sizeof(buf), "%.2f KiB", bytes / kKiB);
  } else {
    std::snprintf(buf, sizeof(buf), "%.0f B", bytes);
  }
  return buf;
}

std::string format_time(double seconds) {
  char buf[64];
  const double abs = std::fabs(seconds);
  if (abs >= 1.0) {
    std::snprintf(buf, sizeof(buf), "%.3f s", seconds);
  } else if (abs >= 1e-3) {
    std::snprintf(buf, sizeof(buf), "%.3f ms", seconds * 1e3);
  } else {
    std::snprintf(buf, sizeof(buf), "%.1f us", seconds * 1e6);
  }
  return buf;
}

std::string format_context(std::int64_t tokens) {
  char buf[64];
  if (tokens % kTokensK == 0) {
    std::snprintf(buf, sizeof(buf), "%lldK",
                  static_cast<long long>(tokens / kTokensK));
  } else {
    std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(tokens));
  }
  return buf;
}

std::string format_percent(double fraction) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.1f%%", fraction * 100.0);
  return buf;
}

}  // namespace slim
