#include "src/numerics/attention.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <limits>

#include "src/numerics/arena.hpp"
#include "src/util/thread_pool.hpp"

namespace slim::num {

namespace {
constexpr float kNegInf = -std::numeric_limits<float>::infinity();

// Query rows per chunk. Rows are independent in the forward (each owns its
// own online-softmax state) so chunks write disjoint rows; the backward's
// dk/dv reductions keep per-chunk partials folded in chunk order.
constexpr std::int64_t kQueryGrain = 8;

util::ThreadPool& pool() { return util::ThreadPool::global(); }
}

AttnPartial attn_partial(const Tensor& q, const Tensor& k, const Tensor& v,
                         std::int64_t q_offset, std::int64_t k_offset,
                         float scale) {
  SLIM_CHECK(q.cols() == k.cols(), "q/k head-dim mismatch");
  SLIM_CHECK(k.rows() == v.rows(), "k/v length mismatch");
  const std::int64_t s = q.rows(), kv = k.rows(), d = v.cols();
  AttnPartial part;
  part.out = Tensor(s, d);
  part.m.assign(static_cast<std::size_t>(s), kNegInf);
  part.l.assign(static_cast<std::size_t>(s), 0.0f);

  pool().parallel_for(0, s, kQueryGrain, [&](std::int64_t i0,
                                             std::int64_t i1) {
    // Score-row scratch from this worker's reusable workspace: every slot
    // [0, visible) is written before it is read, so no zeroing is needed.
    WorkspaceLease<float> scores(kv);
    for (std::int64_t i = i0; i < i1; ++i) {
      const std::int64_t visible =
          std::clamp<std::int64_t>(q_offset + i - k_offset + 1, 0, kv);
      if (visible == 0) continue;
      // Row scores and max.
      float m = kNegInf;
      for (std::int64_t j = 0; j < visible; ++j) {
        double dot = 0.0;
        for (std::int64_t c = 0; c < q.cols(); ++c) {
          dot += static_cast<double>(q.at(i, c)) * k.at(j, c);
        }
        const float sc = static_cast<float>(dot) * scale;
        scores[j] = sc;
        m = std::max(m, sc);
      }
      double l = 0.0;
      for (std::int64_t j = 0; j < visible; ++j) {
        const float w = std::exp(scores[j] - m);
        l += w;
        for (std::int64_t c = 0; c < d; ++c) {
          part.out.at(i, c) += w * v.at(j, c);
        }
      }
      const float inv_l = 1.0f / static_cast<float>(l);
      for (std::int64_t c = 0; c < d; ++c) part.out.at(i, c) *= inv_l;
      part.m[static_cast<std::size_t>(i)] = m;
      part.l[static_cast<std::size_t>(i)] = static_cast<float>(l);
    }
  });
  return part;
}

AttnPartial attn_merge(const AttnPartial& a, const AttnPartial& b) {
  SLIM_CHECK(a.q_len() == b.q_len() && a.out.cols() == b.out.cols(),
             "merge shape mismatch");
  const std::int64_t s = a.q_len(), d = a.out.cols();
  AttnPartial out;
  out.out = Tensor(s, d);
  out.m.assign(static_cast<std::size_t>(s), kNegInf);
  out.l.assign(static_cast<std::size_t>(s), 0.0f);
  pool().parallel_for(0, s, kQueryGrain, [&](std::int64_t i0,
                                             std::int64_t i1) {
  for (std::int64_t i = i0; i < i1; ++i) {
    const std::size_t si = static_cast<std::size_t>(i);
    const float la = a.l[si], lb = b.l[si];
    if (la == 0.0f && lb == 0.0f) continue;
    if (la == 0.0f) {
      out.m[si] = b.m[si];
      out.l[si] = lb;
      for (std::int64_t c = 0; c < d; ++c) out.out.at(i, c) = b.out.at(i, c);
      continue;
    }
    if (lb == 0.0f) {
      out.m[si] = a.m[si];
      out.l[si] = la;
      for (std::int64_t c = 0; c < d; ++c) out.out.at(i, c) = a.out.at(i, c);
      continue;
    }
    const float m = std::max(a.m[si], b.m[si]);
    const float wa = la * std::exp(a.m[si] - m);
    const float wb = lb * std::exp(b.m[si] - m);
    const float l = wa + wb;
    for (std::int64_t c = 0; c < d; ++c) {
      out.out.at(i, c) = (a.out.at(i, c) * wa + b.out.at(i, c) * wb) / l;
    }
    out.m[si] = m;
    out.l[si] = l;
  }
  });
  return out;
}

Tensor attn_reference(const Tensor& q, const Tensor& k, const Tensor& v,
                      std::int64_t q_offset, float scale) {
  return attn_partial(q, k, v, q_offset, /*k_offset=*/0, scale).out;
}

void attn_reference_bwd(const Tensor& q, const Tensor& k, const Tensor& v,
                        std::int64_t q_offset, float scale, const Tensor& dout,
                        Tensor& dq, Tensor& dk, Tensor& dv) {
  const std::int64_t s = q.rows(), kv = k.rows(), d = v.cols();
  dq = Tensor(q.rows(), q.cols());
  dk = Tensor(k.rows(), k.cols());
  dv = Tensor(v.rows(), v.cols());
  for (std::int64_t i = 0; i < s; ++i) {
    const std::int64_t visible =
        std::clamp<std::int64_t>(q_offset + i + 1, 0, kv);
    if (visible == 0) continue;
    std::vector<float> p(static_cast<std::size_t>(visible));
    float m = kNegInf;
    for (std::int64_t j = 0; j < visible; ++j) {
      double dot = 0.0;
      for (std::int64_t c = 0; c < q.cols(); ++c) {
        dot += static_cast<double>(q.at(i, c)) * k.at(j, c);
      }
      p[static_cast<std::size_t>(j)] = static_cast<float>(dot) * scale;
      m = std::max(m, p[static_cast<std::size_t>(j)]);
    }
    double l = 0.0;
    for (std::int64_t j = 0; j < visible; ++j) {
      p[static_cast<std::size_t>(j)] =
          std::exp(p[static_cast<std::size_t>(j)] - m);
      l += p[static_cast<std::size_t>(j)];
    }
    for (std::int64_t j = 0; j < visible; ++j) {
      p[static_cast<std::size_t>(j)] /= static_cast<float>(l);
    }
    // dp_j = dout_i . v_j ; rowsum = sum_j p_j dp_j
    double rowsum = 0.0;
    std::vector<float> dp(static_cast<std::size_t>(visible));
    for (std::int64_t j = 0; j < visible; ++j) {
      double dot = 0.0;
      for (std::int64_t c = 0; c < d; ++c) {
        dot += static_cast<double>(dout.at(i, c)) * v.at(j, c);
      }
      dp[static_cast<std::size_t>(j)] = static_cast<float>(dot);
      rowsum += p[static_cast<std::size_t>(j)] * dot;
    }
    for (std::int64_t j = 0; j < visible; ++j) {
      const float pj = p[static_cast<std::size_t>(j)];
      const float ds =
          pj * (dp[static_cast<std::size_t>(j)] - static_cast<float>(rowsum)) *
          scale;
      for (std::int64_t c = 0; c < q.cols(); ++c) {
        dq.at(i, c) += ds * k.at(j, c);
        dk.at(j, c) += ds * q.at(i, c);
      }
      for (std::int64_t c = 0; c < d; ++c) {
        dv.at(j, c) += pj * dout.at(i, c);
      }
    }
  }
}

AttnPartial attn_streamed(const Tensor& q, const std::vector<KvChunk>& chunks,
                          std::int64_t q_offset, float scale) {
  AttnPartial acc;
  acc.out = Tensor(q.rows(), chunks.empty() ? q.cols() : chunks[0].v.cols());
  acc.m.assign(static_cast<std::size_t>(q.rows()), kNegInf);
  acc.l.assign(static_cast<std::size_t>(q.rows()), 0.0f);
  bool first = true;
  for (const KvChunk& chunk : chunks) {
    AttnPartial part =
        attn_partial(q, chunk.k, chunk.v, q_offset, chunk.pos, scale);
    acc = first ? std::move(part) : attn_merge(acc, part);
    first = false;
  }
  return acc;
}

void attn_streamed_bwd(const Tensor& q, const std::vector<KvChunk>& chunks,
                       std::int64_t q_offset, float scale,
                       const AttnPartial& fwd, const Tensor& dout, Tensor& dq,
                       std::vector<Tensor>& dk_chunks,
                       std::vector<Tensor>& dv_chunks) {
  SLIM_CHECK(dk_chunks.size() == chunks.size() &&
                 dv_chunks.size() == chunks.size(),
             "gradient chunk buffers must match chunk count");
  const std::int64_t s = q.rows(), d = fwd.out.cols();
  dq = Tensor(q.rows(), q.cols());
  // D_i = dout_i . out_i — the flash-attention rowsum shortcut that spares
  // a second pass over all chunks. Workspace-leased: every slot is written
  // by the parallel pass before any chunk loop reads it.
  WorkspaceLease<float> D(s);
  pool().parallel_for(0, s, kQueryGrain,
                      [&](std::int64_t i0, std::int64_t i1) {
    for (std::int64_t i = i0; i < i1; ++i) {
      double sum = 0.0;
      for (std::int64_t c = 0; c < d; ++c) {
        sum += static_cast<double>(dout.at(i, c)) * fwd.out.at(i, c);
      }
      D[i] = static_cast<float>(sum);
    }
  });

  for (std::size_t ci = 0; ci < chunks.size(); ++ci) {
    const KvChunk& chunk = chunks[ci];
    Tensor& dk = dk_chunks[ci];
    Tensor& dv = dv_chunks[ci];
    SLIM_CHECK(dk.rows() == chunk.k.rows() && dv.rows() == chunk.v.rows(),
               "chunk gradient shape mismatch");
    const std::int64_t kv = chunk.k.rows();
    const std::int64_t kc = chunk.k.cols(), vc = chunk.v.cols();
    // dq rows are disjoint across query chunks; dk/dv reduce over query
    // rows, so each query chunk accumulates into its own partial slab and
    // the slabs fold in ascending chunk order below — the thread-count
    // independent combine. The slabs live in the CALLER's workspace (one
    // lease instead of 2*n_qchunks fresh tensors); workers zero their own
    // disjoint slab before accumulating into it.
    const std::int64_t n_qchunks = util::chunk_count(0, s, kQueryGrain);
    WorkspaceLease<float> dk_partials(n_qchunks * kv * kc);
    WorkspaceLease<float> dv_partials(n_qchunks * kv * vc);
    pool().parallel_for(0, s, kQueryGrain,
                        [&](std::int64_t i0, std::int64_t i1) {
      const std::int64_t qc = i0 / kQueryGrain;
      float* dkp = dk_partials.data() + qc * kv * kc;
      float* dvp = dv_partials.data() + qc * kv * vc;
      std::memset(dkp, 0, static_cast<std::size_t>(kv * kc) * sizeof(float));
      std::memset(dvp, 0, static_cast<std::size_t>(kv * vc) * sizeof(float));
      for (std::int64_t i = i0; i < i1; ++i) {
        const std::size_t si = static_cast<std::size_t>(i);
        if (fwd.l[si] == 0.0f) continue;
        const std::int64_t visible =
            std::clamp<std::int64_t>(q_offset + i - chunk.pos + 1, 0, kv);
        const float inv_l = 1.0f / fwd.l[si];
        for (std::int64_t j = 0; j < visible; ++j) {
          double dot = 0.0;
          for (std::int64_t c = 0; c < q.cols(); ++c) {
            dot += static_cast<double>(q.at(i, c)) * chunk.k.at(j, c);
          }
          const float pj =
              std::exp(static_cast<float>(dot) * scale - fwd.m[si]) * inv_l;
          double dpj = 0.0;
          for (std::int64_t c = 0; c < d; ++c) {
            dpj += static_cast<double>(dout.at(i, c)) * chunk.v.at(j, c);
          }
          const float ds =
              pj * (static_cast<float>(dpj) - D[i]) * scale;
          for (std::int64_t c = 0; c < q.cols(); ++c) {
            dq.at(i, c) += ds * chunk.k.at(j, c);
            dkp[j * kc + c] += ds * q.at(i, c);
          }
          for (std::int64_t c = 0; c < d; ++c) {
            dvp[j * vc + c] += pj * dout.at(i, c);
          }
        }
      }
    });
    for (std::int64_t qc = 0; qc < n_qchunks; ++qc) {
      const float* dkp = dk_partials.data() + qc * kv * kc;
      const float* dvp = dv_partials.data() + qc * kv * vc;
      for (std::int64_t e = 0; e < kv * kc; ++e) dk.data()[e] += dkp[e];
      for (std::int64_t e = 0; e < kv * vc; ++e) dv.data()[e] += dvp[e];
    }
  }
}

}  // namespace slim::num
