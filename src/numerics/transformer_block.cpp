#include "src/numerics/transformer_block.hpp"

#include <algorithm>
#include <cmath>

#include "src/util/thread_pool.hpp"

namespace slim::num {

namespace {

util::ThreadPool& pool() { return util::ThreadPool::global(); }

/// Retains a temporary: deep-copies into `arena` under `category` when
/// arenas are enabled, otherwise adopts the heap buffer unchanged (move).
Tensor retain(Tensor&& t, Arena* arena, int category) {
  if (arena == nullptr) return std::move(t);
  ArenaBinding bind(arena, category);
  return Tensor(t);
}

/// The arena's rounding: 64-byte-aligned float buffers.
std::int64_t aligned_bytes(std::int64_t elems) {
  const std::int64_t bytes = elems * static_cast<std::int64_t>(sizeof(float));
  return (bytes + 63) / 64 * 64;
}

}  // namespace

LayerWeights LayerWeights::random(const BlockDims& dims, Rng& rng) {
  const std::int64_t h = dims.hidden, kvh = dims.kv_hidden(), f = dims.ffn;
  LayerWeights w;
  const float s = 0.2f / std::sqrt(static_cast<float>(h));
  w.wq = Tensor::randn(h, h, rng, s);
  w.wk = Tensor::randn(h, kvh, rng, s);
  w.wv = Tensor::randn(h, kvh, rng, s);
  w.wo = Tensor::randn(h, h, rng, s);
  w.w_gate = Tensor::randn(h, f, rng, s);
  w.w_up = Tensor::randn(h, f, rng, s);
  w.w_down = Tensor::randn(f, h, rng, s);
  w.norm1 = Tensor(1, h);
  w.norm1.fill(1.0f);
  w.norm2 = Tensor(1, h);
  w.norm2.fill(1.0f);
  return w;
}

void LayerWeights::apply_sgd(const LayerGrads& grads, float lr) {
  wq.add_scaled_(grads.wq, -lr);
  wk.add_scaled_(grads.wk, -lr);
  wv.add_scaled_(grads.wv, -lr);
  wo.add_scaled_(grads.wo, -lr);
  w_gate.add_scaled_(grads.w_gate, -lr);
  w_up.add_scaled_(grads.w_up, -lr);
  w_down.add_scaled_(grads.w_down, -lr);
  norm1.add_scaled_(grads.norm1, -lr);
  norm2.add_scaled_(grads.norm2, -lr);
}

LayerGrads LayerGrads::zeros_moe(const BlockDims& dims, const MoeDims& moe) {
  LayerGrads g = zeros(dims);
  g.moe = MoeGrads::zeros(moe);
  return g;
}

LayerGrads LayerGrads::zeros(const BlockDims& dims) {
  const std::int64_t h = dims.hidden, kvh = dims.kv_hidden(), f = dims.ffn;
  LayerGrads g;
  g.wq = Tensor(h, h);
  g.wk = Tensor(h, kvh);
  g.wv = Tensor(h, kvh);
  g.wo = Tensor(h, h);
  g.w_gate = Tensor(h, f);
  g.w_up = Tensor(h, f);
  g.w_down = Tensor(f, h);
  g.norm1 = Tensor(1, h);
  g.norm2 = Tensor(1, h);
  return g;
}

void LayerGrads::add_(const LayerGrads& o) {
  if (moe.has_value()) {
    moe->router.add_(o.moe->router);
    for (std::size_t e = 0; e < moe->experts.size(); ++e) {
      moe->experts[e].w_gate.add_(o.moe->experts[e].w_gate);
      moe->experts[e].w_up.add_(o.moe->experts[e].w_up);
      moe->experts[e].w_down.add_(o.moe->experts[e].w_down);
    }
  }
  wq.add_(o.wq);
  wk.add_(o.wk);
  wv.add_(o.wv);
  wo.add_(o.wo);
  w_gate.add_(o.w_gate);
  w_up.add_(o.w_up);
  w_down.add_(o.w_down);
  norm1.add_(o.norm1);
  norm2.add_(o.norm2);
}

float LayerGrads::max_abs_diff(const LayerGrads& o) const {
  float d = 0.0f;
  if (moe.has_value()) d = std::max(d, moe->max_abs_diff(*o.moe));
  d = std::max(d, wq.max_abs_diff(o.wq));
  d = std::max(d, wk.max_abs_diff(o.wk));
  d = std::max(d, wv.max_abs_diff(o.wv));
  d = std::max(d, wo.max_abs_diff(o.wo));
  d = std::max(d, w_gate.max_abs_diff(o.w_gate));
  d = std::max(d, w_up.max_abs_diff(o.w_up));
  d = std::max(d, w_down.max_abs_diff(o.w_down));
  d = std::max(d, norm1.max_abs_diff(o.norm1));
  d = std::max(d, norm2.max_abs_diff(o.norm2));
  return d;
}

Layer::Layer(BlockDims dims, LayerWeights weights)
    : dims_(dims), weights_(std::move(weights)) {
  SLIM_CHECK(dims_.hidden % dims_.heads == 0, "hidden % heads != 0");
  SLIM_CHECK(dims_.heads % dims_.kv_heads == 0, "heads % kv_heads != 0");
  SLIM_CHECK(dims_.head_dim() % 2 == 0, "head_dim must be even for RoPE");
}

Layer::Layer(BlockDims dims, LayerWeights weights, MoeDims moe_dims,
             MoeWeights moe_weights)
    : Layer(dims, std::move(weights)) {
  SLIM_CHECK(moe_dims.hidden == dims.hidden, "MoE hidden mismatch");
  moe_dims_ = moe_dims;
  moe_weights_ = std::move(moe_weights);
}

void Layer::reset() { microbatches_.clear(); }

void Layer::apply_sgd(const LayerGrads& grads, float lr) {
  weights_.apply_sgd(grads, lr);
  if (is_moe()) {
    moe_weights_->router.add_scaled_(grads.moe->router, -lr);
    for (std::size_t e = 0; e < moe_weights_->experts.size(); ++e) {
      moe_weights_->experts[e].w_gate.add_scaled_(
          grads.moe->experts[e].w_gate, -lr);
      moe_weights_->experts[e].w_up.add_scaled_(grads.moe->experts[e].w_up,
                                                -lr);
      moe_weights_->experts[e].w_down.add_scaled_(
          grads.moe->experts[e].w_down, -lr);
    }
  }
}

Layer::MicrobatchState& Layer::state_of(int mb) {
  for (auto& [id, state] : microbatches_) {
    if (id == mb) return state;
  }
  microbatches_.emplace_back(mb, MicrobatchState{});
  return microbatches_.back().second;
}

std::int64_t Layer::live_slices() const {
  std::int64_t total = 0;
  for (const auto& [id, state] : microbatches_) {
    total += static_cast<std::int64_t>(state.acts.size());
  }
  return total;
}

std::int64_t Layer::cache_chunks() const {
  std::int64_t total = 0;
  for (const auto& [id, state] : microbatches_) {
    total += static_cast<std::int64_t>(state.cache.size());
  }
  return total;
}

Layer::SliceFootprint Layer::slice_footprint(std::int64_t slice_len) const {
  const std::int64_t s = slice_len, h = dims_.hidden, kvh = dims_.kv_hidden();
  SliceFootprint fp;
  // Retained activations: x, q_rot, attn_cat, x2; dense layers also keep
  // the gate/up projections (MoE recomputes everything from x2).
  fp.activation_bytes = 4 * aligned_bytes(s * h);
  if (!is_moe()) fp.activation_bytes += 2 * aligned_bytes(s * dims_.ffn);
  fp.kv_bytes = 2 * aligned_bytes(s * kvh);
  fp.grad_bytes = 2 * aligned_bytes(s * kvh);
  return fp;
}

Tensor Layer::forward_slice(const Tensor& x, std::int64_t pos, int mb) {
  MicrobatchState& st = state_of(mb);
  SLIM_CHECK(x.cols() == dims_.hidden, "layer input width mismatch");
  const std::int64_t s = x.rows();
  const std::int64_t hd = dims_.head_dim();
  const float scale = 1.0f / std::sqrt(static_cast<float>(hd));

  // One arena scope per slice: everything retained below is reclaimed by
  // this slice's own backward (the LIFO discipline of §4.1.2). Bindings are
  // kept NARROW — only around the retained-tensor copies, never around
  // kernel calls, so kernel temporaries stay off the arena and measured
  // peaks track retained state only.
  if (arena_stats_ != nullptr && st.arena == nullptr) {
    st.arena = std::make_unique<Arena>(arena_stats_);
  }
  Arena* arena = st.arena.get();
  if (arena != nullptr) st.marks.push_back(arena->mark());

  SliceActs acts;
  {
    ArenaBinding bind(arena, mem::kActivation);
    acts.x = x;
  }
  acts.pos = pos;

  const Tensor h1 = rmsnorm(x, weights_.norm1);
  Tensor q = matmul(h1, weights_.wq);
  Tensor k = matmul(h1, weights_.wk);
  Tensor v = matmul(h1, weights_.wv);

  // RoPE is applied per head (each head's feature pairs rotate with the
  // same schedule). Heads touch disjoint column bands, so they rotate in
  // parallel.
  pool().parallel_for(0, dims_.heads, 1, [&](std::int64_t h0, std::int64_t h1) {
    for (std::int64_t head = h0; head < h1; ++head) {
      Tensor qh = q.slice_cols(head * hd, (head + 1) * hd);
      rope_apply(qh, pos);
      q.assign_cols(head * hd, qh);
    }
  });
  pool().parallel_for(0, dims_.kv_heads, 1,
                      [&](std::int64_t h0, std::int64_t h1) {
    for (std::int64_t kh = h0; kh < h1; ++kh) {
      Tensor khh = k.slice_cols(kh * hd, (kh + 1) * hd);
      rope_apply(khh, pos);
      k.assign_cols(kh * hd, khh);
    }
  });
  {
    ArenaBinding bind(arena, mem::kActivation);
    acts.q_rot = q;  // q is still needed by the attention loop below
  }

  CacheChunk chunk;
  chunk.k = retain(std::move(k), arena, mem::kKvCache);
  chunk.v = retain(std::move(v), arena, mem::kKvCache);
  chunk.pos = pos;
  {
    // The KV-gradient accumulators belong to THIS slice's scope even
    // though later slices' backwards write into them: releasing a later
    // slice's mark must not free them (LIFO completion, §4.1.2).
    ArenaBinding bind(arena, mem::kGrads);
    chunk.dk = Tensor(s, dims_.kv_hidden());
    chunk.dv = Tensor(s, dims_.kv_hidden());
  }
  st.cache.push_back(std::move(chunk));

  // Per-head streamed attention over all cached chunks.
  Tensor attn_cat(s, dims_.hidden);
  acts.m.resize(static_cast<std::size_t>(dims_.heads));
  acts.l.resize(static_cast<std::size_t>(dims_.heads));
  const std::int64_t group = dims_.heads / dims_.kv_heads;
  // Heads are independent in forward: disjoint columns of attn_cat and
  // disjoint m/l slots. Attention kernels called from inside this loop run
  // inline (nested parallel_for serializes).
  pool().parallel_for(0, dims_.heads, 1, [&](std::int64_t h0, std::int64_t h1) {
    for (std::int64_t head = h0; head < h1; ++head) {
      const std::int64_t kv_head = head / group;
      const Tensor qh = q.slice_cols(head * hd, (head + 1) * hd);
      std::vector<KvChunk> chunks;
      chunks.reserve(st.cache.size());
      for (const CacheChunk& cc : st.cache) {
        chunks.push_back({cc.k.slice_cols(kv_head * hd, (kv_head + 1) * hd),
                          cc.v.slice_cols(kv_head * hd, (kv_head + 1) * hd),
                          cc.pos});
      }
      const AttnPartial part = attn_streamed(qh, chunks, pos, scale);
      attn_cat.assign_cols(head * hd, part.out);
      acts.m[static_cast<std::size_t>(head)] = part.m;
      acts.l[static_cast<std::size_t>(head)] = part.l;
    }
  });
  {
    ArenaBinding bind(arena, mem::kActivation);
    acts.attn_cat = attn_cat;
  }

  Tensor x2 = matmul(attn_cat, weights_.wo);
  x2.add_(x);
  {
    ArenaBinding bind(arena, mem::kActivation);
    acts.x2 = x2;
  }

  const Tensor h2 = rmsnorm(x2, weights_.norm2);
  Tensor out;
  if (is_moe()) {
    // Routed expert FFN; everything recomputed in backward from x2.
    out = moe_forward(*moe_dims_, *moe_weights_, h2);
  } else {
    Tensor gate = matmul(h2, weights_.w_gate);
    Tensor up = matmul(h2, weights_.w_up);
    out = matmul(swiglu(gate, up), weights_.w_down);
    acts.gate = retain(std::move(gate), arena, mem::kActivation);
    acts.up = retain(std::move(up), arena, mem::kActivation);
  }
  out.add_(x2);

  st.acts.push_back(std::move(acts));
  return out;
}

Tensor Layer::backward_slice(const Tensor& dout, LayerGrads& grads, int mb) {
  MicrobatchState& st = state_of(mb);
  SLIM_CHECK(!st.acts.empty(), "backward without pending forward");
  SLIM_CHECK(st.cache.size() == st.acts.size(),
             "cache/activation bookkeeping out of sync");
  const SliceActs& acts = st.acts.back();
  const std::int64_t s = acts.x.rows();
  const std::int64_t hd = dims_.head_dim();
  const float scale = 1.0f / std::sqrt(static_cast<float>(hd));
  const std::int64_t group = dims_.heads / dims_.kv_heads;

  // ---- FFN backward (activations recomputed) ----
  const Tensor h2 = rmsnorm(acts.x2, weights_.norm2);  // recompute
  Tensor dh2;
  if (is_moe()) {
    dh2 = moe_backward(*moe_dims_, *moe_weights_, h2, dout, *grads.moe);
  } else {
    const Tensor swiglu_out = swiglu(acts.gate, acts.up);
    grads.w_down.add_(matmul_tn(swiglu_out, dout));
    const Tensor dswiglu = matmul_nt(dout, weights_.w_down);
    Tensor dgate, dup;
    swiglu_bwd(acts.gate, acts.up, dswiglu, dgate, dup);
    grads.w_gate.add_(matmul_tn(h2, dgate));
    grads.w_up.add_(matmul_tn(h2, dup));
    dh2 = matmul_nt(dgate, weights_.w_gate);
    dh2.add_(matmul_nt(dup, weights_.w_up));
  }
  Tensor dx2 = rmsnorm_bwd(acts.x2, weights_.norm2, dh2, grads.norm2);
  dx2.add_(dout);  // residual

  // ---- attention projection backward ----
  grads.wo.add_(matmul_tn(acts.attn_cat, dx2));
  const Tensor dattn_cat = matmul_nt(dx2, weights_.wo);

  // ---- per-head streamed attention backward ----
  // Heads run in parallel into per-head buffers: heads that share a kv head
  // (GQA) accumulate into the same dk/dv columns, so they must not write the
  // cache-wide buffers concurrently. The merge below folds the per-head
  // contributions serially in ascending head order — the same element-wise
  // add sequence as the old serial loop, hence bit-identical and
  // thread-count independent.
  Tensor dq(s, dims_.hidden);
  std::vector<std::vector<Tensor>> dk_per_head(
      static_cast<std::size_t>(dims_.heads));
  std::vector<std::vector<Tensor>> dv_per_head(
      static_cast<std::size_t>(dims_.heads));
  pool().parallel_for(0, dims_.heads, 1, [&](std::int64_t h0, std::int64_t h1) {
    for (std::int64_t head = h0; head < h1; ++head) {
      const std::int64_t kv_head = head / group;
      const Tensor qh = acts.q_rot.slice_cols(head * hd, (head + 1) * hd);
      std::vector<KvChunk> chunks;
      chunks.reserve(st.cache.size());
      for (const CacheChunk& cc : st.cache) {
        chunks.push_back({cc.k.slice_cols(kv_head * hd, (kv_head + 1) * hd),
                          cc.v.slice_cols(kv_head * hd, (kv_head + 1) * hd),
                          cc.pos});
      }
      AttnPartial fwd;
      fwd.out = acts.attn_cat.slice_cols(head * hd, (head + 1) * hd);
      fwd.m = acts.m[static_cast<std::size_t>(head)];
      fwd.l = acts.l[static_cast<std::size_t>(head)];
      const Tensor dout_h = dattn_cat.slice_cols(head * hd, (head + 1) * hd);

      std::vector<Tensor>& dk_chunks =
          dk_per_head[static_cast<std::size_t>(head)];
      std::vector<Tensor>& dv_chunks =
          dv_per_head[static_cast<std::size_t>(head)];
      for (const CacheChunk& cc : st.cache) {
        dk_chunks.emplace_back(cc.k.rows(), hd);
        dv_chunks.emplace_back(cc.v.rows(), hd);
      }
      Tensor dqh;
      attn_streamed_bwd(qh, chunks, acts.pos, scale, fwd, dout_h, dqh,
                        dk_chunks, dv_chunks);
      dq.assign_cols(head * hd, dqh);
    }
  });
  // Accumulate into the cache-wide KV gradient buffers (contributions to
  // earlier chunks wait there until those slices' own backward — the LIFO
  // completion argument of §4.1.2).
  for (std::int64_t head = 0; head < dims_.heads; ++head) {
    const std::int64_t kv_head = head / group;
    const std::vector<Tensor>& dk_chunks =
        dk_per_head[static_cast<std::size_t>(head)];
    const std::vector<Tensor>& dv_chunks =
        dv_per_head[static_cast<std::size_t>(head)];
    for (std::size_t ci = 0; ci < st.cache.size(); ++ci) {
      CacheChunk& cc = st.cache[ci];
      for (std::int64_t r = 0; r < dk_chunks[ci].rows(); ++r) {
        for (std::int64_t c = 0; c < hd; ++c) {
          cc.dk.at(r, kv_head * hd + c) += dk_chunks[ci].at(r, c);
          cc.dv.at(r, kv_head * hd + c) += dv_chunks[ci].at(r, c);
        }
      }
    }
  }

  // ---- this slice's own KV chunk is now complete: project back ----
  CacheChunk own = std::move(st.cache.back());
  st.cache.pop_back();
  // Undo RoPE on dq and dk (disjoint column bands per head).
  pool().parallel_for(0, dims_.heads, 1, [&](std::int64_t h0, std::int64_t h1) {
    for (std::int64_t head = h0; head < h1; ++head) {
      Tensor dqh = dq.slice_cols(head * hd, (head + 1) * hd);
      rope_apply_bwd(dqh, acts.pos);
      dq.assign_cols(head * hd, dqh);
    }
  });
  pool().parallel_for(0, dims_.kv_heads, 1,
                      [&](std::int64_t h0, std::int64_t h1) {
    for (std::int64_t kh = h0; kh < h1; ++kh) {
      Tensor dkh = own.dk.slice_cols(kh * hd, (kh + 1) * hd);
      rope_apply_bwd(dkh, acts.pos);
      own.dk.assign_cols(kh * hd, dkh);
    }
  });

  const Tensor h1 = rmsnorm(acts.x, weights_.norm1);  // recompute
  grads.wq.add_(matmul_tn(h1, dq));
  grads.wk.add_(matmul_tn(h1, own.dk));
  grads.wv.add_(matmul_tn(h1, own.dv));
  Tensor dh1 = matmul_nt(dq, weights_.wq);
  dh1.add_(matmul_nt(own.dk, weights_.wk));
  dh1.add_(matmul_nt(own.dv, weights_.wv));
  Tensor dx = rmsnorm_bwd(acts.x, weights_.norm1, dh1, grads.norm1);
  dx.add_(dx2);  // residual through the attention block

  st.acts.pop_back();
  if (st.arena != nullptr) {
    // Reclaim everything the matching forward scope retained. Nothing
    // arena-backed from this slice is referenced past this point (`own` is
    // non-owning and already fully consumed above).
    st.arena->release_to(st.marks.back());
    st.marks.pop_back();
  }
  if (st.acts.empty()) {
    // Drop the finished microbatch's bookkeeping entry.
    for (auto it = microbatches_.begin(); it != microbatches_.end(); ++it) {
      if (it->first == mb) {
        microbatches_.erase(it);
        break;
      }
    }
  }
  return dx;
}

TinyModel::TinyModel(BlockDims dims, std::int64_t vocab,
                     std::int64_t num_layers, Rng& rng)
    : dims_(dims), vocab_(vocab) {
  embedding_ = Tensor::randn(vocab, dims.hidden, rng,
                             0.5f / std::sqrt(static_cast<float>(dims.hidden)));
  for (std::int64_t i = 0; i < num_layers; ++i) {
    layers_.emplace_back(dims, LayerWeights::random(dims, rng));
  }
  final_norm_ = Tensor(1, dims.hidden);
  final_norm_.fill(1.0f);
}

TinyModel::TinyModel(BlockDims dims, std::int64_t vocab,
                     std::int64_t num_layers, MoeDims moe, Rng& rng)
    : dims_(dims), vocab_(vocab) {
  embedding_ = Tensor::randn(vocab, dims.hidden, rng,
                             0.5f / std::sqrt(static_cast<float>(dims.hidden)));
  for (std::int64_t i = 0; i < num_layers; ++i) {
    layers_.emplace_back(dims, LayerWeights::random(dims, rng), moe,
                         MoeWeights::random(moe, rng));
  }
  final_norm_ = Tensor(1, dims.hidden);
  final_norm_.fill(1.0f);
}

TinyModel::Grads TinyModel::zero_grads() const {
  Grads g;
  g.embedding = Tensor(vocab_, dims_.hidden);
  for (std::size_t i = 0; i < layers_.size(); ++i) {
    g.layers.push_back(layers_[i].is_moe()
                           ? LayerGrads::zeros_moe(dims_,
                                                   *layers_[i].moe_dims())
                           : LayerGrads::zeros(dims_));
  }
  g.final_norm = Tensor(1, dims_.hidden);
  return g;
}

float TinyModel::Grads::max_abs_diff(const Grads& other) const {
  float d = embedding.max_abs_diff(other.embedding);
  for (std::size_t i = 0; i < layers.size(); ++i) {
    d = std::max(d, layers[i].max_abs_diff(other.layers[i]));
  }
  d = std::max(d, final_norm.max_abs_diff(other.final_norm));
  return d;
}

void TinyModel::apply_sgd(const Grads& grads, float lr) {
  embedding_.add_scaled_(grads.embedding, -lr);
  for (std::size_t i = 0; i < layers_.size(); ++i) {
    layers_[i].apply_sgd(grads.layers[i], lr);
  }
  final_norm_.add_scaled_(grads.final_norm, -lr);
}

double TinyModel::train_step(const std::vector<std::int64_t>& tokens,
                             const std::vector<std::int64_t>& targets,
                             int n_slices, Grads& grads, int vocab_shards) {
  const std::int64_t seq = static_cast<std::int64_t>(tokens.size());
  SLIM_CHECK(n_slices >= 1 && seq >= n_slices,
             "need at least one token per slice");
  return train_step(tokens, targets, core::SliceLayout::uniform(seq, n_slices),
                    grads, vocab_shards);
}

double TinyModel::train_step(const std::vector<std::int64_t>& tokens,
                             const std::vector<std::int64_t>& targets,
                             const core::SliceLayout& layout, Grads& grads,
                             int vocab_shards) {
  const std::int64_t seq = static_cast<std::int64_t>(tokens.size());
  const int n_slices = layout.slices();
  SLIM_CHECK(targets.size() == tokens.size(), "targets size mismatch");
  SLIM_CHECK(layout.seq() == seq, "slice layout does not cover the sequence");
  SLIM_CHECK(vocab_shards >= 1 && vocab_ % vocab_shards == 0,
             "vocabulary must split uniformly");
  for (Layer& layer : layers_) layer.reset();

  struct SliceState {
    Tensor x_embed;       // embedding output (for the tied-weight grad)
    Tensor final_input;   // input of the final norm
    Tensor dlogits_head;  // d(final hidden) from the loss
    std::vector<std::int64_t> token_ids;
  };
  std::vector<SliceState> states(static_cast<std::size_t>(n_slices));
  double total_loss = 0.0;

  // ---- forward, slice by slice ----
  for (int si = 0; si < n_slices; ++si) {
    const std::int64_t pos = layout.begin(si);
    const std::int64_t slice_len = layout.len(si);
    const float slice_weight =
        static_cast<float>(slice_len) / static_cast<float>(seq);
    SliceState& st = states[static_cast<std::size_t>(si)];
    st.token_ids.assign(tokens.begin() + pos, tokens.begin() + pos + slice_len);
    Tensor x(slice_len, dims_.hidden);
    for (std::int64_t r = 0; r < slice_len; ++r) {
      const std::int64_t id = st.token_ids[static_cast<std::size_t>(r)];
      SLIM_CHECK(id >= 0 && id < vocab_, "token out of vocabulary");
      const float* row = embedding_.data() + id * dims_.hidden;
      std::copy(row, row + dims_.hidden, x.data() + r * dims_.hidden);
    }
    st.x_embed = x;
    for (Layer& layer : layers_) x = layer.forward_slice(x, pos);
    st.final_input = x;

    const Tensor hidden = rmsnorm(x, final_norm_);
    std::vector<std::int64_t> slice_targets(
        targets.begin() + pos, targets.begin() + pos + slice_len);

    // Output head: logits = hidden @ embedding^T, optionally sharded
    // column-wise over the vocabulary (vocabulary parallelism, §4.3).
    Tensor dlogits(slice_len, vocab_);
    double loss = 0.0;
    if (vocab_shards == 1) {
      const Tensor logits = matmul_nt(hidden, embedding_);
      CeResult ce = cross_entropy(logits, slice_targets);
      loss = ce.loss;
      dlogits = std::move(ce.dlogits);
    } else {
      const std::int64_t width = vocab_ / vocab_shards;
      std::vector<Tensor> shards;
      for (int k = 0; k < vocab_shards; ++k) {
        shards.push_back(matmul_nt(
            hidden, embedding_.slice_rows(k * width, (k + 1) * width)));
      }
      ShardedCeResult ce = cross_entropy_sharded(shards, slice_targets);
      loss = ce.loss;
      for (int k = 0; k < vocab_shards; ++k) {
        dlogits.assign_cols(k * width,
                            ce.dshards[static_cast<std::size_t>(k)]);
      }
    }
    total_loss += loss * slice_weight;

    // Backward through the output head immediately (its activations need
    // not persist); the gradient w.r.t. the final hidden state is kept for
    // the LIFO backward phase. Scale to a mean over the full sequence.
    Tensor dlogits_scaled = dlogits;
    for (std::int64_t i = 0; i < dlogits_scaled.size(); ++i) {
      dlogits_scaled.data()[i] *= slice_weight;
    }
    grads.embedding.add_(matmul_tn(dlogits_scaled, hidden));
    const Tensor dhidden = matmul(dlogits_scaled, embedding_);
    st.dlogits_head = rmsnorm_bwd(x, final_norm_, dhidden, grads.final_norm);
  }

  // ---- backward, strictly LIFO over slices ----
  for (int si = n_slices - 1; si >= 0; --si) {
    SliceState& st = states[static_cast<std::size_t>(si)];
    Tensor dx = st.dlogits_head;
    for (auto it = layers_.rbegin(); it != layers_.rend(); ++it) {
      const std::size_t layer_idx =
          layers_.size() - 1 -
          static_cast<std::size_t>(std::distance(layers_.rbegin(), it));
      dx = it->backward_slice(dx, grads.layers[layer_idx]);
    }
    // Tied embedding: input-side gradient.
    for (std::int64_t r = 0; r < dx.rows(); ++r) {
      const std::int64_t id = st.token_ids[static_cast<std::size_t>(r)];
      for (std::int64_t c = 0; c < dims_.hidden; ++c) {
        grads.embedding.at(id, c) += dx.at(r, c);
      }
    }
  }
  for (Layer& layer : layers_) {
    SLIM_CHECK(layer.live_slices() == 0 && layer.cache_chunks() == 0,
               "slice bookkeeping leaked");
  }
  return total_loss;
}

}  // namespace slim::num
