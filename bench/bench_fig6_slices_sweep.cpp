// Figure 6: (a) activation memory falls from 1 toward 1/p of M_a as the
// number of slices grows; (b) the bubble fraction falls toward zero as
// slices multiply (p fixed to 4, several microbatch counts). Includes the
// chunked-vs-contiguous KV allocator ablation from §5.

#include "src/memory/kv_pool.hpp"

#include "bench_common.hpp"

using namespace slim;

namespace {

constexpr std::int64_t kSliceTokens = 8 * 1024;

sched::PipelineSpec slim_spec(int p, int m, int n) {
  auto spec = slimbench::base_spec(model::llama13b(), 8, p,
                                   static_cast<std::int64_t>(n) * kSliceTokens,
                                   m);
  spec.n = n;
  spec.vocab_parallel = true;
  spec.context_exchange = true;
  return spec;
}

double activation_fraction(int p, int n) {
  auto spec = slim_spec(p, 3, n);
  spec.cfg.vocab = 4000;
  const auto r = core::run_scheme(core::Scheme::SlimPipe, spec);
  const double per_token = model::act_bytes_per_token_layer(
      spec.cfg, spec.shard, spec.policy, true);
  const double ma = per_token * static_cast<double>(spec.seq) *
                    static_cast<double>(spec.cfg.layers);
  const double states = model::model_state_bytes(
      spec.cfg, spec.shard, static_cast<double>(spec.cfg.layers) / p,
      1.0 / p, 1);
  return (r.first_device_memory - states) / ma;
}

}  // namespace

static void BM_Figure6Sweep(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        core::run_scheme(core::Scheme::SlimPipe,
                         slim_spec(4, 4, static_cast<int>(state.range(0)))));
  }
}
BENCHMARK(BM_Figure6Sweep)->Arg(4)->Arg(16)->Arg(64)->Unit(benchmark::kMillisecond);

int main(int argc, char** argv) {
  slimbench::open_report("fig6_slices_sweep");
  slimbench::print_banner(
      "Figure 6a — activation memory vs number of slices",
      "Llama 13B, t=8, m=3, 8K tokens per slice, p in {2,4,8}",
      "each curve decreases from ~1 (default 1F1B) toward 1/p as n grows");

  Table mem_table({"n", "p=2 measured", "p=2 Eq.1", "p=4 measured",
                   "p=4 Eq.1", "p=8 measured", "p=8 Eq.1"});
  for (int mult : {1, 2, 4, 8, 16}) {
    std::vector<std::string> row = {std::to_string(mult) + "p"};
    for (int p : {2, 4, 8}) {
      const int n = mult * p;
      row.push_back(fmt(activation_fraction(p, n), 3));
      row.push_back(fmt(core::slimpipe_activation_fraction(p, n, 1), 3));
    }
    mem_table.add_row(row);
  }
  slimbench::print_table("peak memory vs slice count", mem_table);

  slimbench::print_banner(
      "Figure 6b — bubble fraction vs number of slices",
      "Llama 13B, t=8, p=4, m in {1,2,4,8}",
      "bubbles shrink toward zero as n grows; smaller m suffers more");

  Table bub_table({"n", "m=1", "m=2", "m=4", "m=8"});
  for (int n : {4, 8, 16, 32, 64}) {
    std::vector<std::string> row = {fmt(static_cast<std::int64_t>(n))};
    for (int m : {1, 2, 4, 8}) {
      const auto r = core::run_scheme(core::Scheme::SlimPipe, slim_spec(4, m, n));
      row.push_back(format_percent(r.bubble_fraction));
    }
    bub_table.add_row(row);
  }
  slimbench::print_table("bubble fraction vs slice count", bub_table);

  // §5 ablation: chunked KV cache vs contiguous reallocation.
  slimbench::print_banner(
      "§5 ablation — chunked KV cache vs contiguous buffer",
      "one device, 32 slices per microbatch, 4 microbatches",
      "the chunked pool wastes nothing; the contiguous buffer fragments");
  const double chunk_bytes =
      model::kv_bytes_per_token_layer(model::llama13b(), {8, 1, 1, 8}) *
      kSliceTokens * 10;
  mem::ChunkedKvPool pool(chunk_bytes);
  mem::ContiguousKvModel contiguous(chunk_bytes);
  for (int mb = 0; mb < 4; ++mb) {
    std::vector<int> chunks;
    for (int s = 0; s < 32; ++s) {
      chunks.push_back(pool.acquire());
      contiguous.grow();
    }
    for (int s = 31; s >= 0; --s) {
      pool.release(chunks[static_cast<std::size_t>(s)]);
      contiguous.shrink();
    }
    contiguous.reset();
  }
  Table alloc({"allocator", "reserved", "wasted/fragmented"});
  alloc.add_row({"chunked (SlimPipe)", format_bytes(pool.reserved_bytes()),
                 format_bytes(pool.wasted_bytes())});
  alloc.add_row({"contiguous realloc",
                 format_bytes(contiguous.peak_reserved_bytes()),
                 format_bytes(contiguous.fragmentation_bytes())});
  slimbench::print_table("adaptive slice allocation", alloc);

  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
