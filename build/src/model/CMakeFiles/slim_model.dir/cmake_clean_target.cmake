file(REMOVE_RECURSE
  "libslim_model.a"
)
