#include "src/memory/offload.hpp"

// Header-only model; this translation unit anchors the library target.
