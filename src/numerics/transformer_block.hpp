#pragma once

// A real (CPU, fp32) transformer layer and tiny language model that execute
// SlimPipe's slice-wise schedule numerically: forward slice-by-slice with a
// chunked KV cache, backward strictly LIFO with per-chunk KV gradient
// accumulation. The equivalence tests compare against monolithic
// execution — this is the functional proof that uniform slicing, KV chunk
// reuse and reverse-order backward compute the exact same gradients.
//
// Memory-thrifty conventions from the paper's §5 are followed: RMSNorm
// outputs and the SwiGLU product are recomputed in backward, not stored.

#include <cstdint>
#include <memory>
#include <vector>

#include <optional>

#include "src/core/slice_layout.hpp"
#include "src/numerics/arena.hpp"
#include "src/numerics/attention.hpp"
#include "src/numerics/moe.hpp"
#include "src/numerics/cross_entropy.hpp"
#include "src/numerics/norm_act.hpp"
#include "src/numerics/rope.hpp"
#include "src/numerics/tensor.hpp"
#include "src/util/rng.hpp"

namespace slim::num {

struct BlockDims {
  std::int64_t hidden = 0;
  std::int64_t heads = 0;
  std::int64_t kv_heads = 0;  // GQA groups; == heads for MHA
  std::int64_t ffn = 0;

  std::int64_t head_dim() const { return hidden / heads; }
  std::int64_t kv_hidden() const { return kv_heads * head_dim(); }
};

struct LayerWeights {
  Tensor wq, wk, wv, wo;        // (h,h) (h,kvh) (h,kvh) (h,h)
  Tensor w_gate, w_up, w_down;  // (h,f) (h,f) (f,h)
  Tensor norm1, norm2;          // (1,h)

  static LayerWeights random(const BlockDims& dims, Rng& rng);

  /// In-place SGD step: w -= lr * g.
  void apply_sgd(const struct LayerGrads& grads, float lr);
};

struct LayerGrads {
  Tensor wq, wk, wv, wo, w_gate, w_up, w_down, norm1, norm2;
  std::optional<MoeGrads> moe;  // set for MoE layers

  static LayerGrads zeros(const BlockDims& dims);
  static LayerGrads zeros_moe(const BlockDims& dims, const MoeDims& moe);
  void add_(const LayerGrads& other);
  float max_abs_diff(const LayerGrads& other) const;
};

/// One transformer layer executing slices against a chunked KV cache.
class Layer {
 public:
  Layer(BlockDims dims, LayerWeights weights);

  /// Mixture-of-Experts variant (Mixtral-style, Table 3): the dense FFN is
  /// replaced by a routed top-k expert FFN; attention is unchanged.
  Layer(BlockDims dims, LayerWeights weights, MoeDims moe_dims,
        MoeWeights moe_weights);

  bool is_moe() const { return moe_weights_.has_value(); }
  const std::optional<MoeDims>& moe_dims() const { return moe_dims_; }

  /// SGD step on all of this layer's parameters (dense + MoE).
  void apply_sgd(const LayerGrads& grads, float lr);

  const BlockDims& dims() const { return dims_; }
  const LayerWeights& weights() const { return weights_; }
  LayerWeights& mutable_weights() { return weights_; }

  /// Forward of a slice whose first token has global position `pos`.
  /// Appends one KV chunk to microbatch `mb`'s cache; a microbatch's
  /// slices must arrive in position order. Several microbatches may be in
  /// flight at once (1F1B interleaves them); each keeps its own cache.
  Tensor forward_slice(const Tensor& x, std::int64_t pos, int mb = 0);

  /// Backward of microbatch `mb`'s most recent un-backwarded slice (LIFO
  /// within the microbatch, enforced). Returns dx; accumulates into
  /// `grads`. Frees the slice's activations and its KV chunk (the
  /// steady-state memory invariant of §4.1.2).
  Tensor backward_slice(const Tensor& dout, LayerGrads& grads, int mb = 0);

  /// Live (not yet backwarded) slices across all in-flight microbatches.
  std::int64_t live_slices() const;
  std::int64_t cache_chunks() const;

  /// Clears cache/activations (abandoning any pending backward).
  void reset();

  /// Routes every retained slice tensor (activations under kActivation, KV
  /// chunks under kKvCache, KV-gradient accumulators under kGrads) through
  /// a per-microbatch arena reporting into `stats`. nullptr (the default)
  /// keeps plain heap ownership. Arena placement never changes the math:
  /// results stay bit-identical to the heap path.
  void set_arena_stats(ArenaStats* stats) { arena_stats_ = stats; }

  /// Analytical arena footprint one slice of `slice_len` tokens retains
  /// between its forward and its backward — the prediction side of
  /// measured-vs-analytical reconciliation. Sizes are 64-byte-aligned the
  /// way the arena rounds them.
  struct SliceFootprint {
    std::int64_t activation_bytes = 0;  // x, q_rot, attn_cat, x2 (+gate, up)
    std::int64_t kv_bytes = 0;          // post-RoPE k, v
    std::int64_t grad_bytes = 0;        // dk, dv accumulators
    std::int64_t total() const {
      return activation_bytes + kv_bytes + grad_bytes;
    }
  };
  SliceFootprint slice_footprint(std::int64_t slice_len) const;

 private:
  struct CacheChunk {
    Tensor k, v;      // post-RoPE keys, values (s, kvh)
    std::int64_t pos = 0;
    Tensor dk, dv;    // gradient accumulators, completed LIFO
  };
  struct SliceActs {
    Tensor x;         // layer input
    Tensor x2;        // post-attention residual
    Tensor q_rot;     // rotated queries
    Tensor gate, up;  // MLP projections
    Tensor attn_cat;  // per-head attention outputs, concatenated
    std::vector<std::vector<float>> m, l;  // per head, per query row
    std::int64_t pos = 0;
  };
  struct MicrobatchState {
    std::vector<CacheChunk> cache;
    std::vector<SliceActs> acts;
    std::unique_ptr<Arena> arena;    // set when arena stats are enabled
    std::vector<Arena::Mark> marks;  // one scope per live slice (LIFO)
  };

  MicrobatchState& state_of(int mb);

  BlockDims dims_;
  LayerWeights weights_;
  std::optional<MoeDims> moe_dims_;
  std::optional<MoeWeights> moe_weights_;
  std::vector<std::pair<int, MicrobatchState>> microbatches_;
  ArenaStats* arena_stats_ = nullptr;
};

/// Tiny LM: tied embedding, L layers, final norm, vocabulary head.
class TinyModel {
 public:
  TinyModel(BlockDims dims, std::int64_t vocab, std::int64_t num_layers,
            Rng& rng);

  /// Mixture-of-Experts model (every layer routed, Mixtral-style).
  TinyModel(BlockDims dims, std::int64_t vocab, std::int64_t num_layers,
            MoeDims moe, Rng& rng);

  struct Grads {
    Tensor embedding;
    std::vector<LayerGrads> layers;
    Tensor final_norm;
    float max_abs_diff(const Grads& other) const;
  };

  /// One full forward+backward over `tokens` (next-token targets) split
  /// into `n_slices` token-uniform slices (remainder to the first slices —
  /// seq % n_slices need not be 0 and every token is trained on), forward
  /// in order, backward LIFO. Returns the mean loss; accumulates gradients.
  double train_step(const std::vector<std::int64_t>& tokens,
                    const std::vector<std::int64_t>& targets, int n_slices,
                    Grads& grads, int vocab_shards = 1);

  /// Explicit-boundary form: `layout` carries the per-slice boundaries
  /// (layout.seq() must equal tokens.size()), e.g. cost-balanced ones from
  /// model::balanced_layout.
  double train_step(const std::vector<std::int64_t>& tokens,
                    const std::vector<std::int64_t>& targets,
                    const core::SliceLayout& layout, Grads& grads,
                    int vocab_shards = 1);

  Grads zero_grads() const;

  /// In-place SGD step on every parameter (used by the convergence tests;
  /// gradient *equivalence* across schedules is the main deliverable).
  void apply_sgd(const Grads& grads, float lr);

  std::int64_t vocab() const { return vocab_; }
  const BlockDims& dims() const { return dims_; }

 private:
  BlockDims dims_;
  std::int64_t vocab_;
  Tensor embedding_;  // (vocab, h), tied with the output head
  std::vector<Layer> layers_;
  Tensor final_norm_;
};

}  // namespace slim::num
