#include "src/sim/topology.hpp"

#include "src/util/math.hpp"

namespace slim::sim {

double Topology::ring_collective_time(int group, double bytes,
                                      bool cross_node) const {
  if (group <= 1) return 0.0;
  const double bw = cross_node ? nic_bandwidth : nvlink_bandwidth;
  const double lat = cross_node ? nic_latency : nvlink_latency;
  // Ring algorithm: (g-1) steps, each moving bytes/g per device.
  const double steps = static_cast<double>(group - 1);
  return steps * (lat + bytes / static_cast<double>(group) / bw);
}

double Topology::all_to_all_time(int group, double bytes,
                                 bool cross_node) const {
  if (group <= 1) return 0.0;
  const double bw = cross_node ? nic_bandwidth : nvlink_bandwidth;
  const double lat = cross_node ? nic_latency : nvlink_latency;
  // Each device sends bytes*(g-1)/g of its payload, pairwise in parallel.
  const double moved =
      bytes * static_cast<double>(group - 1) / static_cast<double>(group);
  return lat * static_cast<double>(group - 1) + moved / bw;
}

Topology make_cluster(int num_gpus) {
  SLIM_CHECK(num_gpus > 0, "cluster needs at least one GPU");
  Topology topo;
  if (num_gpus <= 8) {
    topo.num_nodes = 1;
    topo.gpus_per_node = num_gpus;
  } else {
    SLIM_CHECK(num_gpus % 8 == 0, "multi-node clusters must use full nodes");
    topo.num_nodes = num_gpus / 8;
    topo.gpus_per_node = 8;
  }
  return topo;
}

}  // namespace slim::sim
