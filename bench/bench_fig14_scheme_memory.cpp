// Figure 14: peak GPU memory of the pipeline schemes in the same sweep as
// Figure 13. ZB-V's accumulation (no working checkpointing) blows the
// 80 GiB budget first, V-Half follows; 1F1B with full checkpointing
// survives to 256K; SlimPipe stays far below everyone at every length.

#include "bench_common.hpp"

using namespace slim;

namespace {

constexpr int kP = 4;
constexpr int kM = 4;

sched::ScheduleResult run(core::Scheme scheme, std::int64_t seq) {
  auto spec = slimbench::base_spec(model::llama13b(), 8, kP, seq, kM);
  spec.policy = model::CheckpointPolicy::Full;
  switch (scheme) {
    case core::Scheme::Interleaved1F1B:
      spec.v = 5;
      break;
    case core::Scheme::SlimPipe:
      spec.v = 5;
      spec.n = 4;
      spec.vocab_parallel = true;
      spec.context_exchange = true;
      break;
    default:
      break;
  }
  return core::run_scheme(scheme, spec);
}

const std::vector<core::Scheme> kSchemes = {
    core::Scheme::OneF1B, core::Scheme::Interleaved1F1B, core::Scheme::ZBV,
    core::Scheme::VHalf, core::Scheme::SlimPipe};

std::string cell(const sched::ScheduleResult& r) {
  std::string s = format_bytes(r.peak_memory);
  if (r.oom) s += " (OOM)";
  return s;
}

}  // namespace

static void BM_Fig14(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(run(core::Scheme::OneF1B, 128 * 1024));
  }
}
BENCHMARK(BM_Fig14)->Unit(benchmark::kMillisecond);

int main(int argc, char** argv) {
  slimbench::open_report("fig14_scheme_memory");
  slimbench::print_banner(
      "Figure 14 — peak GPU memory across PP schemes vs context length",
      "same sweep as Figure 13; 80 GiB Hopper budget",
      "ZB-V exceeds the budget first (its checkpointing is broken), V-Half "
      "next; SlimPipe lowest at every context length");

  Table table({"context", "1F1B", "Interleaved", "ZB-V", "V-Half",
               "SlimPipe"});
  for (std::int64_t seq :
       {32 * 1024, 64 * 1024, 128 * 1024, 256 * 1024, 512 * 1024}) {
    std::vector<std::string> row = {format_context(seq)};
    for (const auto scheme : kSchemes) {
      row.push_back(cell(run(scheme, seq)));
    }
    table.add_row(row);
  }
  slimbench::print_table("scheme peak memory comparison", table);

  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
