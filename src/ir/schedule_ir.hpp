#pragma once

// Tabular schedule IR.
//
// A pipeline schedule is a table: one row per timed per-device pass, with
// the pass identity (kind, microbatch, slice, chunk), the global stage it
// executes and the *explicit* communication endpoints (which device the
// input payload arrives from, which device the output payload goes to).
// Every scheme in src/sched lowers to this table (ir::lower), the table
// round-trips through a deterministic text format (ir::export_text /
// ir::import_text, byte-identical for canonical tables), and the static
// verification engine (src/analysis/verify) certifies a table before any
// graph is built — so slimpipe_sim can accept external schedules without
// recompiling.
//
// The header carries the schedule-structural knobs a scheme runner would
// normalize on the spec (layout, KV retention, checkpoint policy, ...), so
// importing an exported table reproduces the direct run byte-identically.
// Workload knobs (model, GPU, sharding, sequence length) stay outside the
// IR: they come from the spec the table is applied to.

#include <cstdint>
#include <string>
#include <vector>

#include "src/model/activation.hpp"
#include "src/model/flops.hpp"
#include "src/sched/schedule.hpp"

namespace slim::ir {

/// One pipeline device has no such peer for this row's payload.
inline constexpr int kNoEndpoint = -1;

struct Row {
  int device = 0;    // executing pipeline device
  int order = 0;     // position in the device's program (its local clock)
  sched::PassType kind = sched::PassType::Forward;
  std::int32_t microbatch = 0;
  std::int32_t slice = 0;
  std::int32_t chunk = 0;
  std::int32_t stage = 0;      // global stage this row executes
  int recv_from = kNoEndpoint; // device the input payload arrives from
  int send_to = kNoEndpoint;   // device the output payload is shipped to

  bool operator==(const Row&) const = default;
};

struct ScheduleIR {
  std::string scheme;  // display name, e.g. "SlimPipe" (free text, one line)
  int p = 1;
  int v = 1;
  int n = 1;
  int m = 1;
  sched::StageLayoutKind layout = sched::StageLayoutKind::Sequential;

  // Scheme-normalized spec knobs the schedule depends on.
  bool retain_kv = false;
  bool vocab_parallel = false;
  bool context_exchange = false;
  model::CheckpointPolicy policy = model::CheckpointPolicy::None;
  model::CpMode cp_mode = model::CpMode::RingKv;

  /// Declared cap on simultaneously-live activation units (0 = undeclared);
  /// enforced by the sched-inflight-bound rule when positive.
  double max_inflight_units = 0.0;

  /// Rows in canonical order: sorted by (device, order).
  std::vector<Row> rows;

  bool operator==(const ScheduleIR&) const = default;

  /// Sorts rows into canonical (device, order) order.
  void canonicalize();
};

/// Lowers a scheme's per-device programs to the tabular IR. Endpoints are
/// derived from the spec's stage layout: a forward at stage s receives from
/// the device holding stage s-1 and sends to the device holding stage s+1
/// (when those stages live on another device); backwards run the boundary
/// in reverse; weight-gradient halves exchange nothing.
ScheduleIR lower(const sched::PipelineSpec& spec,
                 const std::vector<sched::DeviceProgram>& programs,
                 const std::string& scheme_name);

/// Reconstructs the per-device programs from the table (rows grouped by
/// device, each device's rows in `order`). Throws on rows whose device is
/// outside [0, p).
std::vector<sched::DeviceProgram> to_programs(const ScheduleIR& ir);

/// Overlays the IR header's schedule-structural knobs onto a workload spec
/// (p, v, n, m, layout, retain_kv, vocab_parallel, context_exchange,
/// policy, cp_mode, max_inflight_units). Everything else (model, GPU,
/// sharding, seq, offload, ...) is kept from `base`.
sched::PipelineSpec apply_header(const ScheduleIR& ir,
                                 sched::PipelineSpec base);

/// Serializes the table to the deterministic text format. The output is
/// canonical: fixed header order, rows sorted by (device, order), single
/// spaces, trailing newline — export(import(text)) == text for canonical
/// text and import(export(ir)) == ir for canonical tables.
std::string export_text(const ScheduleIR& ir);

/// Parses the text format. Throws std::runtime_error with a line-numbered
/// message on malformed input. Rows are canonicalized on import.
ScheduleIR import_text(const std::string& text);

/// Stable one-letter row kind ("F", "B", "BI", "BW").
const char* kind_name(sched::PassType kind);

/// Stable lower-case layout name ("sequential", "interleaved", "vshape").
const char* layout_name(sched::StageLayoutKind kind);

}  // namespace slim::ir
