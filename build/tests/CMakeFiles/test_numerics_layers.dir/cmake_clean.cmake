file(REMOVE_RECURSE
  "CMakeFiles/test_numerics_layers.dir/test_numerics_layers.cpp.o"
  "CMakeFiles/test_numerics_layers.dir/test_numerics_layers.cpp.o.d"
  "test_numerics_layers"
  "test_numerics_layers.pdb"
  "test_numerics_layers[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_numerics_layers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
