#include "src/numerics/tensor.hpp"

#include <algorithm>
#include <cmath>

namespace slim::num {

Tensor Tensor::randn(std::int64_t rows, std::int64_t cols, Rng& rng,
                     float scale) {
  Tensor t(rows, cols);
  for (std::int64_t i = 0; i < t.size(); ++i) {
    t.data_[static_cast<std::size_t>(i)] = rng.next_float_symmetric(scale);
  }
  return t;
}

Tensor Tensor::slice_rows(std::int64_t begin, std::int64_t end) const {
  SLIM_CHECK(0 <= begin && begin <= end && end <= rows_, "bad row slice");
  Tensor out(end - begin, cols_);
  std::copy(data_.begin() + static_cast<std::ptrdiff_t>(begin * cols_),
            data_.begin() + static_cast<std::ptrdiff_t>(end * cols_),
            out.data_.begin());
  return out;
}

Tensor Tensor::slice_cols(std::int64_t begin, std::int64_t end) const {
  SLIM_CHECK(0 <= begin && begin <= end && end <= cols_, "bad col slice");
  Tensor out(rows_, end - begin);
  for (std::int64_t r = 0; r < rows_; ++r) {
    for (std::int64_t c = begin; c < end; ++c) {
      out.at(r, c - begin) = at(r, c);
    }
  }
  return out;
}

Tensor Tensor::vcat(const std::vector<Tensor>& parts) {
  if (parts.empty()) return {};
  std::int64_t rows = 0;
  for (const Tensor& p : parts) {
    SLIM_CHECK(p.cols() == parts.front().cols(), "vcat column mismatch");
    rows += p.rows();
  }
  Tensor out(rows, parts.front().cols());
  std::int64_t r = 0;
  for (const Tensor& p : parts) {
    out.assign_rows(r, p);
    r += p.rows();
  }
  return out;
}

void Tensor::fill(float value) {
  std::fill(data_.begin(), data_.end(), value);
}

void Tensor::add_(const Tensor& other) { add_scaled_(other, 1.0f); }

void Tensor::add_scaled_(const Tensor& other, float scale) {
  SLIM_CHECK(rows_ == other.rows_ && cols_ == other.cols_,
             "add_ shape mismatch");
  for (std::size_t i = 0; i < data_.size(); ++i) {
    data_[i] += scale * other.data_[i];
  }
}

Tensor Tensor::transposed() const {
  Tensor out(cols_, rows_);
  for (std::int64_t r = 0; r < rows_; ++r) {
    for (std::int64_t c = 0; c < cols_; ++c) out.at(c, r) = at(r, c);
  }
  return out;
}

void Tensor::assign_rows(std::int64_t row_begin, const Tensor& src) {
  SLIM_CHECK(src.cols_ == cols_ && row_begin + src.rows_ <= rows_,
             "assign_rows shape mismatch");
  std::copy(src.data_.begin(), src.data_.end(),
            data_.begin() + static_cast<std::ptrdiff_t>(row_begin * cols_));
}

float Tensor::max_abs_diff(const Tensor& other) const {
  SLIM_CHECK(rows_ == other.rows_ && cols_ == other.cols_,
             "max_abs_diff shape mismatch");
  float best = 0.0f;
  for (std::size_t i = 0; i < data_.size(); ++i) {
    best = std::max(best, std::fabs(data_[i] - other.data_[i]));
  }
  return best;
}

bool Tensor::allclose(const Tensor& other, float atol) const {
  return max_abs_diff(other) <= atol;
}

float Tensor::l2norm() const {
  double sum = 0.0;
  for (float v : data_) sum += static_cast<double>(v) * v;
  return static_cast<float>(std::sqrt(sum));
}

Tensor matmul(const Tensor& a, const Tensor& b) {
  SLIM_CHECK(a.cols() == b.rows(), "matmul shape mismatch");
  Tensor c(a.rows(), b.cols());
  const std::int64_t m = a.rows(), k = a.cols(), n = b.cols();
  for (std::int64_t i = 0; i < m; ++i) {
    for (std::int64_t kk = 0; kk < k; ++kk) {
      const float av = a.at(i, kk);
      if (av == 0.0f) continue;
      const float* brow = b.data() + kk * n;
      float* crow = c.data() + i * n;
      for (std::int64_t j = 0; j < n; ++j) crow[j] += av * brow[j];
    }
  }
  return c;
}

Tensor matmul_nt(const Tensor& a, const Tensor& b) {
  SLIM_CHECK(a.cols() == b.cols(), "matmul_nt shape mismatch");
  Tensor c(a.rows(), b.rows());
  const std::int64_t m = a.rows(), k = a.cols(), n = b.rows();
  for (std::int64_t i = 0; i < m; ++i) {
    const float* arow = a.data() + i * k;
    for (std::int64_t j = 0; j < n; ++j) {
      const float* brow = b.data() + j * k;
      double sum = 0.0;
      for (std::int64_t kk = 0; kk < k; ++kk) sum += arow[kk] * brow[kk];
      c.at(i, j) = static_cast<float>(sum);
    }
  }
  return c;
}

Tensor matmul_tn(const Tensor& a, const Tensor& b) {
  SLIM_CHECK(a.rows() == b.rows(), "matmul_tn shape mismatch");
  Tensor c(a.cols(), b.cols());
  const std::int64_t m = a.cols(), k = a.rows(), n = b.cols();
  for (std::int64_t kk = 0; kk < k; ++kk) {
    const float* arow = a.data() + kk * m;
    const float* brow = b.data() + kk * n;
    for (std::int64_t i = 0; i < m; ++i) {
      const float av = arow[i];
      if (av == 0.0f) continue;
      float* crow = c.data() + i * n;
      for (std::int64_t j = 0; j < n; ++j) crow[j] += av * brow[j];
    }
  }
  return c;
}

}  // namespace slim::num
