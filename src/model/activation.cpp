#include "src/model/activation.hpp"

#include <algorithm>

#include "src/util/logging.hpp"

namespace slim::model {

namespace {
constexpr double kBf16 = 2.0;
constexpr double kFp32 = 4.0;
}  // namespace

const char* to_string(CheckpointPolicy policy) {
  switch (policy) {
    case CheckpointPolicy::None: return "none";
    case CheckpointPolicy::Selective: return "selective";
    case CheckpointPolicy::Full: return "full";
  }
  return "?";
}

double act_bytes_per_token_layer_no_kv(const TransformerConfig& cfg,
                                       const Shard& shard,
                                       CheckpointPolicy policy) {
  const double h = static_cast<double>(cfg.hidden);
  const double ffn_active =
      static_cast<double>(cfg.ffn) * static_cast<double>(cfg.active_experts());
  double elements = 0.0;
  switch (policy) {
    case CheckpointPolicy::None:
      // layer input (h) + Q (h) + attention output (h) + O-proj output (h)
      // + gate and up projections (2 * H * active experts). SwiGLU product
      // and RMSNorm outputs are recomputed; SDPA stores only O(s) stats.
      elements = 4.0 * h + 2.0 * ffn_active;
      break;
    case CheckpointPolicy::Selective:
      // Additionally recompute up-projection + SwiGLU: gate/up outputs gone.
      elements = 4.0 * h;
      break;
    case CheckpointPolicy::Full:
      // Only the layer input survives.
      elements = 1.0 * h;
      break;
  }
  return elements * kBf16 / static_cast<double>(shard.t * shard.c);
}

double kv_bytes_per_token_layer(const TransformerConfig& cfg,
                                const Shard& shard) {
  const double kv = 2.0 * static_cast<double>(cfg.kv_hidden());
  return kv * kBf16 / static_cast<double>(shard.t * shard.c);
}

double act_bytes_per_token_layer(const TransformerConfig& cfg,
                                 const Shard& shard, CheckpointPolicy policy,
                                 bool retain_kv) {
  double bytes = act_bytes_per_token_layer_no_kv(cfg, shard, policy);
  // Under None/Selective the K/V projections are stored for backward anyway;
  // under Full they are only kept when a KV cache is required (SlimPipe).
  if (policy != CheckpointPolicy::Full || retain_kv) {
    bytes += kv_bytes_per_token_layer(cfg, shard);
  }
  return bytes;
}

double logits_bytes(const TransformerConfig& cfg, const Shard& shard,
                    std::int64_t tokens, std::int64_t vocab_shards) {
  SLIM_CHECK(vocab_shards >= 1, "vocab_shards must be >= 1");
  const double v_local = static_cast<double>(cfg.vocab) /
                         static_cast<double>(shard.t * vocab_shards);
  // fp32 logits for the loss/gradient plus the bf16 GEMM output.
  const double per_token = v_local * (kFp32 + kBf16);
  return per_token * static_cast<double>(tokens) /
         static_cast<double>(shard.c);
}

double embedding_bytes(const TransformerConfig& cfg, const Shard& shard,
                       std::int64_t tokens) {
  return static_cast<double>(tokens) * static_cast<double>(cfg.hidden) *
         kBf16 / static_cast<double>(shard.t * shard.c);
}

double wgrad_kept_fraction(const TransformerConfig& cfg,
                           CheckpointPolicy policy) {
  const double h = static_cast<double>(cfg.hidden);
  const double ffn_active =
      static_cast<double>(cfg.ffn) * static_cast<double>(cfg.active_experts());
  // Inputs of QKV, O-projection and FFN GEMMs (3h) plus gate/up outputs
  // (2H, needed to rebuild the down-projection input).
  const double kept = 3.0 * h + 2.0 * ffn_active;
  double stored = 0.0;
  switch (policy) {
    case CheckpointPolicy::None:
      stored = 4.0 * h + 2.0 * ffn_active;
      break;
    case CheckpointPolicy::Selective:
      stored = 4.0 * h;
      break;
    case CheckpointPolicy::Full:
      stored = 1.0 * h;
      break;
  }
  if (stored <= 0.0) return 1.0;
  return std::min(1.0, kept / stored);
}

double model_state_bytes(const TransformerConfig& cfg, const Shard& shard,
                         double layers_local, double vocab_fraction,
                         std::int64_t d_shard) {
  SLIM_CHECK(d_shard >= 1, "optimizer shard must be >= 1");
  const double h = static_cast<double>(cfg.hidden);
  // Attention + norms are divided by t; MoE expert parameters additionally
  // by e (expert parallelism stores only local experts).
  const double attn = 2.0 * h * h + 2.0 * h * static_cast<double>(cfg.kv_hidden());
  double ffn_params = 3.0 * h * static_cast<double>(cfg.ffn);
  if (cfg.is_moe()) {
    ffn_params = ffn_params * static_cast<double>(cfg.experts) /
                     static_cast<double>(shard.e) +
                 h * static_cast<double>(cfg.experts);
  }
  const double per_layer = (attn + ffn_params + 2.0 * h) /
                           static_cast<double>(shard.t);
  const double embed = static_cast<double>(cfg.params_embedding()) *
                       vocab_fraction / static_cast<double>(shard.t);
  const double params = layers_local * per_layer + embed;

  // bf16 weights (2) + fp32 main gradients (4) resident — the paper trains
  // with "float32 used in gradient accumulation"; fp32 master weights (4) +
  // Adam m/v (8) sharded across the data-parallel group (distributed
  // optimizer / ZeRO-1).
  const double resident = params * (kBf16 + kFp32);
  const double optimizer = params * (kFp32 + 2.0 * kFp32) /
                           static_cast<double>(d_shard);
  return resident + optimizer;
}

}  // namespace slim::model
