#pragma once

// Cluster topology: nodes of GPUs joined by NVLink inside a node and by
// per-GPU NICs across nodes. Mirrors the paper's testbed: 8 Hopper GPUs per
// node, 400 GB/s NVLink per GPU, 400 Gbps NIC per GPU.

#include <cstdint>

#include "src/util/logging.hpp"

namespace slim::sim {

struct Topology {
  int num_nodes = 1;
  int gpus_per_node = 8;

  /// Intra-node (NVLink) point-to-point bandwidth in bytes/second.
  double nvlink_bandwidth = 400e9;
  /// Inter-node (NIC) point-to-point bandwidth in bytes/second (400 Gbps).
  double nic_bandwidth = 50e9;

  /// Per-message launch latencies in seconds.
  double nvlink_latency = 3e-6;
  double nic_latency = 10e-6;

  int world_size() const { return num_nodes * gpus_per_node; }

  int node_of(int device) const {
    SLIM_CHECK(device >= 0 && device < world_size(), "device out of range");
    return device / gpus_per_node;
  }

  bool same_node(int a, int b) const { return node_of(a) == node_of(b); }

  double bandwidth(int src, int dst) const {
    return same_node(src, dst) ? nvlink_bandwidth : nic_bandwidth;
  }

  double latency(int src, int dst) const {
    return same_node(src, dst) ? nvlink_latency : nic_latency;
  }

  /// Transfer time for a point-to-point message of `bytes`.
  double p2p_time(int src, int dst, double bytes) const {
    if (src == dst) return 0.0;
    return latency(src, dst) + bytes / bandwidth(src, dst);
  }

  /// Time for a ring all-gather/reduce-scatter of `bytes` total payload over
  /// `group` devices with the given per-link bandwidth class.
  /// `cross_node` selects the NIC if the group spans nodes.
  double ring_collective_time(int group, double bytes, bool cross_node) const;

  /// All-to-all time over `group` devices where each device exchanges
  /// `bytes` with every peer (total per-device payload = bytes * (g-1)/g).
  double all_to_all_time(int group, double bytes, bool cross_node) const;
};

/// Convenience constructor for an N-GPU cluster with 8 GPUs per node.
Topology make_cluster(int num_gpus);

}  // namespace slim::sim
