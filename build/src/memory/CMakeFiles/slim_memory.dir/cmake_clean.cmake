file(REMOVE_RECURSE
  "CMakeFiles/slim_memory.dir/kv_pool.cpp.o"
  "CMakeFiles/slim_memory.dir/kv_pool.cpp.o.d"
  "CMakeFiles/slim_memory.dir/offload.cpp.o"
  "CMakeFiles/slim_memory.dir/offload.cpp.o.d"
  "CMakeFiles/slim_memory.dir/tracker.cpp.o"
  "CMakeFiles/slim_memory.dir/tracker.cpp.o.d"
  "libslim_memory.a"
  "libslim_memory.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/slim_memory.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
