#pragma once

// Deterministic random number generation (splitmix64 + xoshiro256**).
//
// The numerics substrate and property tests need reproducible randomness that
// does not depend on the standard library's unspecified distributions.

#include <cstdint>

namespace slim {

/// xoshiro256** with splitmix64 seeding. Deterministic across platforms.
class Rng {
 public:
  explicit Rng(std::uint64_t seed) {
    std::uint64_t x = seed;
    for (auto& word : state_) {
      // splitmix64 step
      x += 0x9e3779b97f4a7c15ULL;
      std::uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
      word = z ^ (z >> 31);
    }
  }

  std::uint64_t next_u64() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  double next_double() {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  /// Uniform float in [-scale, scale).
  float next_float_symmetric(float scale) {
    return static_cast<float>((next_double() * 2.0 - 1.0) * scale);
  }

  /// Uniform integer in [0, bound). bound must be > 0.
  std::uint64_t next_below(std::uint64_t bound) {
    return next_u64() % bound;  // negligible modulo bias for our bounds
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t state_[4];
};

}  // namespace slim
