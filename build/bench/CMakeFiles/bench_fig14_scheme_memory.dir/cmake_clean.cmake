file(REMOVE_RECURSE
  "CMakeFiles/bench_fig14_scheme_memory.dir/bench_common.cpp.o"
  "CMakeFiles/bench_fig14_scheme_memory.dir/bench_common.cpp.o.d"
  "CMakeFiles/bench_fig14_scheme_memory.dir/bench_fig14_scheme_memory.cpp.o"
  "CMakeFiles/bench_fig14_scheme_memory.dir/bench_fig14_scheme_memory.cpp.o.d"
  "bench_fig14_scheme_memory"
  "bench_fig14_scheme_memory.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig14_scheme_memory.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
