#include "src/analysis/verify.hpp"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <deque>
#include <map>
#include <sstream>
#include <unordered_map>

#include "src/model/activation.hpp"
#include "src/util/logging.hpp"

namespace slim::analysis {

namespace {

using ir::kNoEndpoint;
using ir::Row;
using ir::ScheduleIR;
using sched::PassType;
using sched::StageLayout;

std::string row_location(const Row& row) {
  std::ostringstream out;
  out << "dev " << row.device << " row " << row.order << " ("
      << ir::kind_name(row.kind) << " mb " << row.microbatch << " slice "
      << row.slice << " chunk " << row.chunk << " stage " << row.stage << ")";
  return out.str();
}

/// Rate-limited per-rule reporter.
class Reporter {
 public:
  Reporter(std::vector<Finding>& findings, std::size_t cap)
      : findings_(findings), cap_(cap) {}

  void operator()(const char* rule, const std::string& location,
                  const std::string& message) {
    if (counts_[rule]++ < cap_) {
      findings_.push_back({Severity::Error, rule, location, message});
    }
  }

 private:
  std::vector<Finding>& findings_;
  std::size_t cap_;
  std::unordered_map<std::string, std::size_t> counts_;
};

struct Comm {
  std::size_t row = 0;  // index into the kept-row array
  std::int64_t key = 0; // (mb, slice, src_stage, dst_stage) packed
};

std::int64_t pack_unit(std::int32_t mb, std::int32_t slice, int src_stage,
                       int dst_stage) {
  return (static_cast<std::int64_t>(mb) << 40) |
         (static_cast<std::int64_t>(slice) << 20) |
         (static_cast<std::int64_t>(src_stage) << 10) |
         static_cast<std::int64_t>(dst_stage);
}

std::string unit_text(std::int32_t mb, std::int32_t slice) {
  return "(mb " + std::to_string(mb) + ", slice " + std::to_string(slice) + ")";
}

bool is_boundary_kind(PassType kind, bool* forward) {
  if (kind == PassType::Forward) {
    *forward = true;
    return true;
  }
  if (kind == PassType::Backward || kind == PassType::BackwardInput) {
    *forward = false;
    return true;
  }
  return false;  // BackwardWeight exchanges nothing
}

/// Expected endpoints of a row from the stage boundary it crosses; mirrors
/// ir::lower so a scheme-lowered table verifies trivially while a corrupted
/// or hand-written one is checked against the layout.
void expected_endpoints(const StageLayout& layout, const Row& row,
                        int* recv_from, int* send_to) {
  *recv_from = kNoEndpoint;
  *send_to = kNoEndpoint;
  bool forward = false;
  if (!is_boundary_kind(row.kind, &forward)) return;
  const int num_stages = layout.num_stages();
  const int up = forward ? row.stage - 1 : row.stage + 1;    // input side
  const int down = forward ? row.stage + 1 : row.stage - 1;  // output side
  if (up >= 0 && up < num_stages) {
    const int peer = layout.device_of(up);
    if (peer != row.device) *recv_from = peer;
  }
  if (down >= 0 && down < num_stages) {
    const int peer = layout.device_of(down);
    if (peer != row.device) *send_to = peer;
  }
}

}  // namespace

std::vector<mem::MeasuredPeak> MemoryCertificate::measured_peaks() const {
  std::vector<mem::MeasuredPeak> peaks;
  for (std::size_t dev = 0; dev < device_peak.size(); ++dev) {
    // Unit size of the device's chunk-0 stage (stages on one device share
    // the unit size whenever layers split evenly).
    double act_unit = 0.0, kv_unit = 0.0;
    for (const StageCertificate& stage : stages) {
      if (stage.device != static_cast<int>(dev)) continue;
      act_unit = stage.unit_bytes;
      break;
    }
    if (kv_category == mem::kKvCache) {
      // unit_bytes is act+kv combined; split is carried by the ledgers.
      // Activation entry uses the combined unit minus the KV share only
      // when KV is booked separately; reconstruct from the device peaks is
      // not possible in general, so both entries use the stage unit.
      kv_unit = act_unit;
    }
    mem::MeasuredPeak act;
    act.device = static_cast<int>(dev);
    act.category = mem::kActivation;
    act.measured_bytes = device_activation_peak[dev];
    act.measured_unit_bytes = act_unit;
    act.analytical_unit_bytes = act_unit;
    peaks.push_back(act);
    if (kv_category == mem::kKvCache && device_kv_peak[dev] > 0.0) {
      mem::MeasuredPeak kv;
      kv.device = static_cast<int>(dev);
      kv.category = mem::kKvCache;
      kv.measured_bytes = device_kv_peak[dev];
      kv.measured_unit_bytes = kv_unit;
      kv.analytical_unit_bytes = kv_unit;
      peaks.push_back(kv);
    }
  }
  return peaks;
}

VerifyResult verify_ir(const ScheduleIR& table, const sched::PipelineSpec& spec,
                       const VerifyOptions& options) {
  SLIM_CHECK(table.p == spec.p && table.v == spec.v && table.n == spec.n &&
                 table.m == spec.m && table.layout == spec.layout,
             "verify_ir: spec does not describe the table's schedule shape "
             "(use ir::apply_header)");
  VerifyResult result;
  Reporter report(result.findings, options.max_findings_per_rule);

  const StageLayout layout = spec.stage_layout();
  const int num_stages = layout.num_stages();

  // ---- ir-structure: indices, per-device order, stage consistency ----
  // Kept rows (structurally sound) in per-device program order.
  std::vector<std::vector<Row>> device_rows(static_cast<std::size_t>(spec.p));
  for (const Row& row : table.rows) {
    if (row.device < 0 || row.device >= spec.p) {
      report("ir-structure", row_location(row),
             "row device outside [0, p=" + std::to_string(spec.p) + ")");
      continue;
    }
    if (row.microbatch < 0 || row.microbatch >= spec.m || row.slice < 0 ||
        row.slice >= spec.n || row.chunk < 0 || row.chunk >= spec.v) {
      std::ostringstream msg;
      msg << "row indices outside m=" << spec.m << " n=" << spec.n
          << " v=" << spec.v;
      report("ir-structure", row_location(row), msg.str());
      continue;
    }
    Row kept = row;
    const int derived =
        layout.stage_of(row.device, static_cast<int>(row.chunk));
    if (row.stage != derived) {
      std::ostringstream msg;
      msg << "row claims stage " << row.stage << " but the " << "layout maps "
          << "(dev " << row.device << ", chunk " << row.chunk << ") to stage "
          << derived;
      report("ir-structure", row_location(row), msg.str());
      kept.stage = derived;  // trust the layout for the remaining passes
    }
    device_rows[static_cast<std::size_t>(row.device)].push_back(kept);
  }
  for (int dev = 0; dev < spec.p; ++dev) {
    auto& rows = device_rows[static_cast<std::size_t>(dev)];
    std::stable_sort(rows.begin(), rows.end(),
                     [](const Row& a, const Row& b) {
                       return a.order < b.order;
                     });
    for (std::size_t i = 0; i < rows.size(); ++i) {
      if (rows[i].order != static_cast<int>(i)) {
        std::ostringstream msg;
        msg << "device program order is not contiguous: expected order " << i
            << ", row declares " << rows[i].order
            << " (duplicate or gap in the device's clock)";
        report("ir-structure", row_location(rows[i]), msg.str());
        break;  // one report per device; positions stay usable via sort order
      }
    }
  }

  // Flat kept-row array plus per-device position lists for the wait-for
  // graph and channel matching.
  std::vector<Row> rows;
  std::vector<std::vector<std::size_t>> device_pos(
      static_cast<std::size_t>(spec.p));
  for (int dev = 0; dev < spec.p; ++dev) {
    for (const Row& row : device_rows[static_cast<std::size_t>(dev)]) {
      device_pos[static_cast<std::size_t>(dev)].push_back(rows.size());
      rows.push_back(row);
    }
  }

  // ---- verify-causality: endpoints, matching, FIFO ----
  // Channel key: (src, dst, lane); lane 0 carries forward activations,
  // lane 1 backward gradients — mirroring the builder's comm lanes.
  struct Channel {
    std::vector<Comm> sends;  // sender program order
    std::vector<Comm> recvs;  // receiver program order
  };
  std::map<std::tuple<int, int, int>, Channel> channels;
  for (std::size_t idx = 0; idx < rows.size(); ++idx) {
    const Row& row = rows[idx];
    int want_recv = kNoEndpoint, want_send = kNoEndpoint;
    expected_endpoints(layout, row, &want_recv, &want_send);
    if (row.recv_from != want_recv) {
      std::ostringstream msg;
      msg << "row declares recv from "
          << (row.recv_from == kNoEndpoint
                  ? std::string("nobody")
                  : "dev " + std::to_string(row.recv_from))
          << " but the stage boundary implies "
          << (want_recv == kNoEndpoint ? std::string("none")
                                       : "dev " + std::to_string(want_recv));
      report("verify-causality", row_location(row), msg.str());
    }
    if (row.send_to != want_send) {
      std::ostringstream msg;
      msg << "row declares send to "
          << (row.send_to == kNoEndpoint
                  ? std::string("nobody")
                  : "dev " + std::to_string(row.send_to))
          << " but the stage boundary implies "
          << (want_send == kNoEndpoint ? std::string("none")
                                       : "dev " + std::to_string(want_send));
      report("verify-causality", row_location(row), msg.str());
    }
    bool forward = false;
    if (!is_boundary_kind(row.kind, &forward)) continue;
    const int lane = forward ? 0 : 1;
    if (row.send_to != kNoEndpoint && row.send_to >= 0 &&
        row.send_to < spec.p) {
      const int dst_stage = forward ? row.stage + 1 : row.stage - 1;
      channels[{row.device, row.send_to, lane}].sends.push_back(
          {idx, pack_unit(row.microbatch, row.slice, row.stage, dst_stage)});
    }
    if (row.recv_from != kNoEndpoint && row.recv_from >= 0 &&
        row.recv_from < spec.p) {
      const int src_stage = forward ? row.stage - 1 : row.stage + 1;
      channels[{row.recv_from, row.device, lane}].recvs.push_back(
          {idx, pack_unit(row.microbatch, row.slice, src_stage, row.stage)});
    }
  }

  // Matched send -> recv pairs (kept-row indices) feed the wait-for graph.
  std::vector<std::pair<std::size_t, std::size_t>> matched;
  for (auto& [key, channel] : channels) {
    const int lane = std::get<2>(key);
    const char* payload = lane == 0 ? "activation" : "gradient";
    // Unit-keyed matching: dangling recvs and unconsumed sends first.
    std::unordered_map<std::int64_t, std::deque<std::size_t>> pending;
    for (std::size_t i = 0; i < channel.sends.size(); ++i) {
      pending[channel.sends[i].key].push_back(i);
    }
    std::vector<bool> consumed(channel.sends.size(), false);
    std::vector<std::size_t> send_of_recv(channel.recvs.size(), SIZE_MAX);
    for (std::size_t i = 0; i < channel.recvs.size(); ++i) {
      const Comm& recv = channel.recvs[i];
      auto it = pending.find(recv.key);
      if (it == pending.end() || it->second.empty()) {
        const Row& row = rows[recv.row];
        std::ostringstream msg;
        msg << "dangling recv: no matching " << payload << " send from dev "
            << std::get<0>(key) << " for unit "
            << unit_text(row.microbatch, row.slice) << " at stage "
            << row.stage;
        report("verify-causality", row_location(row), msg.str());
        continue;
      }
      const std::size_t send_idx = it->second.front();
      it->second.pop_front();
      consumed[send_idx] = true;
      send_of_recv[i] = send_idx;
      matched.push_back({channel.sends[send_idx].row, recv.row});
    }
    for (std::size_t i = 0; i < channel.sends.size(); ++i) {
      if (consumed[i]) continue;
      const Row& row = rows[channel.sends[i].row];
      std::ostringstream msg;
      msg << payload << " send to dev " << std::get<1>(key)
          << " is never received: no matching recv for unit "
          << unit_text(row.microbatch, row.slice);
      report("verify-causality", row_location(row), msg.str());
    }
    // FIFO: walking recvs in receiver order, the matched sends' posting
    // positions must be non-decreasing, or a rendezvous/ordered transport
    // would deliver the wrong payload first.
    std::size_t last = 0;
    bool have_last = false;
    for (std::size_t i = 0; i < channel.recvs.size(); ++i) {
      if (send_of_recv[i] == SIZE_MAX) continue;
      if (have_last && send_of_recv[i] < last) {
        const Row& row = rows[channel.recvs[i].row];
        const Row& send_row = rows[channel.sends[send_of_recv[i]].row];
        std::ostringstream msg;
        msg << "out-of-FIFO receive: this recv matches the " << payload
            << " send posted at " << row_location(send_row)
            << ", which precedes an already-consumed later send on the same "
            << "channel";
        report("verify-causality", row_location(row), msg.str());
      } else {
        last = send_of_recv[i];
        have_last = true;
      }
    }
  }

  // ---- verify-deadlock: wait-for graph cycle detection ----
  {
    const std::size_t n = rows.size();
    std::vector<std::vector<std::size_t>> succ(n);
    std::vector<std::int32_t> indeg(n, 0);
    auto add_edge = [&](std::size_t from, std::size_t to) {
      succ[from].push_back(to);
      ++indeg[to];
    };
    for (const auto& positions : device_pos) {
      for (std::size_t i = 1; i < positions.size(); ++i) {
        add_edge(positions[i - 1], positions[i]);
      }
    }
    for (const auto& [send, recv] : matched) add_edge(send, recv);

    std::vector<std::size_t> ready;
    std::size_t done = 0;
    for (std::size_t i = 0; i < n; ++i) {
      if (indeg[i] == 0) ready.push_back(i);
    }
    while (!ready.empty()) {
      const std::size_t cur = ready.back();
      ready.pop_back();
      ++done;
      for (const std::size_t next : succ[cur]) {
        if (--indeg[next] == 0) ready.push_back(next);
      }
    }
    if (done < n) {
      // Minimal witness: shortest cycle through any of the first blocked
      // rows (BFS over the blocked subgraph).
      std::vector<std::size_t> blocked;
      for (std::size_t i = 0; i < n; ++i) {
        if (indeg[i] > 0) blocked.push_back(i);
      }
      std::vector<std::size_t> best;
      constexpr std::size_t kMaxStarts = 32;
      for (std::size_t s = 0; s < blocked.size() && s < kMaxStarts; ++s) {
        const std::size_t start = blocked[s];
        std::vector<std::size_t> parent(n, SIZE_MAX);
        std::vector<bool> seen(n, false);
        std::deque<std::size_t> queue;
        seen[start] = true;
        queue.push_back(start);
        bool closed = false;
        while (!queue.empty() && !closed) {
          const std::size_t cur = queue.front();
          queue.pop_front();
          for (const std::size_t next : succ[cur]) {
            if (indeg[next] == 0) continue;  // not part of any cycle
            if (next == start) {
              // Reconstruct start -> ... -> cur, closing back to start.
              std::vector<std::size_t> cycle;
              for (std::size_t node = cur; node != SIZE_MAX;
                   node = parent[node]) {
                cycle.push_back(node);
              }
              std::reverse(cycle.begin(), cycle.end());
              if (best.empty() || cycle.size() < best.size()) best = cycle;
              closed = true;
              break;
            }
            if (!seen[next]) {
              seen[next] = true;
              parent[next] = cur;
              queue.push_back(next);
            }
          }
        }
        if (!best.empty() && best.size() <= 2) break;  // cannot get shorter
      }
      std::ostringstream msg;
      msg << (n - done) << " rows can never start; witness cycle";
      if (!best.empty()) {
        msg << " (length " << best.size() << "):";
        for (const std::size_t node : best) {
          msg << " " << row_location(rows[node]) << " ->";
        }
        msg << " back to " << row_location(rows[best.front()]);
      } else {
        msg << " not reconstructed";
      }
      const std::size_t anchor = best.empty() ? blocked.front() : best.front();
      report("verify-deadlock", row_location(rows[anchor]), msg.str());
    }
  }

  // ---- verify-progress: every unit completable at every stage ----
  {
    struct UnitState {
      int forwards = 0, backwards = 0, inputs = 0, weights = 0;
    };
    const std::size_t per_stage = static_cast<std::size_t>(spec.m) *
                                  static_cast<std::size_t>(spec.n);
    std::vector<UnitState> state(static_cast<std::size_t>(num_stages) *
                                 per_stage);
    for (const Row& row : rows) {
      if (row.stage < 0 || row.stage >= num_stages) continue;
      UnitState& unit =
          state[static_cast<std::size_t>(row.stage) * per_stage +
                static_cast<std::size_t>(row.microbatch) *
                    static_cast<std::size_t>(spec.n) +
                static_cast<std::size_t>(row.slice)];
      switch (row.kind) {
        case PassType::Forward: ++unit.forwards; break;
        case PassType::Backward: ++unit.backwards; break;
        case PassType::BackwardInput: ++unit.inputs; break;
        case PassType::BackwardWeight: ++unit.weights; break;
      }
    }
    for (int stage = 0; stage < num_stages; ++stage) {
      for (std::int32_t mb = 0; mb < spec.m; ++mb) {
        for (std::int32_t slice = 0; slice < spec.n; ++slice) {
          const UnitState& unit =
              state[static_cast<std::size_t>(stage) * per_stage +
                    static_cast<std::size_t>(mb) *
                        static_cast<std::size_t>(spec.n) +
                    static_cast<std::size_t>(slice)];
          const bool retired =
              (unit.backwards == 1 && unit.inputs == 0 && unit.weights == 0) ||
              (unit.backwards == 0 && unit.inputs == 1 && unit.weights == 1);
          if (unit.forwards == 1 && retired) continue;
          const std::string loc = "stage " + std::to_string(stage) + " (dev " +
                                  std::to_string(layout.device_of(stage)) +
                                  ") unit " + unit_text(mb, slice);
          std::ostringstream msg;
          if (unit.forwards == 0 &&
              unit.backwards + unit.inputs + unit.weights == 0) {
            msg << "unit is never scheduled at this stage: the microbatch "
                << "cannot complete";
          } else if (unit.forwards == 0) {
            msg << "orphaned backward: unit is retired (B=" << unit.backwards
                << " BI=" << unit.inputs << " BW=" << unit.weights
                << ") but never forwarded";
          } else if (unit.backwards + unit.inputs + unit.weights == 0) {
            msg << "orphaned forward: unit is forwarded but never retired "
                << "by a backward";
          } else {
            msg << "unit coverage is F=" << unit.forwards
                << " B=" << unit.backwards << " BI=" << unit.inputs
                << " BW=" << unit.weights
                << " (expected F=1 and B=1 or BI=1+BW=1)";
          }
          report("verify-progress", loc, msg.str());
        }
      }
    }
  }

  // ---- verify-memory-cert: static ledger replay + certificate ----
  {
    // Per-microbatch slice boundaries: each row's footprint uses its own
    // slice's token count; the certificate unit is the mean per-slice token
    // count so "slice units" stay comparable across elastic layouts.
    const std::vector<core::SliceLayout> slice_layouts =
        spec.resolved_layouts();
    const double mean_slice_tokens =
        static_cast<double>(spec.total_tokens()) /
        (static_cast<double>(spec.m) * static_cast<double>(spec.n));
    const double nonkv_per_token = model::act_bytes_per_token_layer_no_kv(
        spec.cfg, spec.shard, spec.policy);
    const bool kv_stored =
        spec.retain_kv || spec.policy != model::CheckpointPolicy::Full;
    const double kv_per_token =
        kv_stored ? model::kv_bytes_per_token_layer(spec.cfg, spec.shard)
                  : 0.0;
    const int kv_category =
        spec.retain_kv ? mem::kKvCache : mem::kActivation;
    const double wkeep =
        model::wgrad_kept_fraction(spec.cfg, spec.policy);

    MemoryCertificate& cert = result.certificate;
    cert.kv_category = kv_category;
    cert.stages.resize(static_cast<std::size_t>(num_stages));
    std::vector<double> stage_act(static_cast<std::size_t>(num_stages), 0.0);
    std::vector<double> stage_kv(static_cast<std::size_t>(num_stages), 0.0);
    std::vector<double> stage_magnitude(static_cast<std::size_t>(num_stages),
                                        0.0);
    cert.device_activation_peak.assign(static_cast<std::size_t>(spec.p), 0.0);
    cert.device_kv_peak.assign(static_cast<std::size_t>(spec.p), 0.0);
    cert.device_peak.assign(static_cast<std::size_t>(spec.p), 0.0);
    for (int stage = 0; stage < num_stages; ++stage) {
      const double tokens =
          mean_slice_tokens * static_cast<double>(spec.layers_of_stage(stage));
      StageCertificate& sc = cert.stages[static_cast<std::size_t>(stage)];
      sc.stage = stage;
      sc.device = layout.device_of(stage);
      sc.unit_bytes = (nonkv_per_token + kv_per_token) * tokens;
    }

    // The activation/KV deltas all come from a device's own passes, so a
    // per-device program-order replay reproduces the simulator's replayed
    // category peaks exactly (offload and logits excluded by design).
    std::vector<bool> dipped(static_cast<std::size_t>(num_stages), false);
    for (int dev = 0; dev < spec.p; ++dev) {
      double dev_act = 0.0, dev_kv = 0.0;
      for (const std::size_t idx : device_pos[static_cast<std::size_t>(dev)]) {
        const Row& row = rows[idx];
        if (row.stage < 0 || row.stage >= num_stages) continue;
        const std::size_t stage = static_cast<std::size_t>(row.stage);
        const double tokens = static_cast<double>(
            slice_layouts[static_cast<std::size_t>(row.microbatch)].len(
                row.slice) *
            spec.layers_of_stage(row.stage));
        const double act = nonkv_per_token * tokens;
        const double kv = kv_per_token * tokens;
        double d_act = 0.0, d_kv = 0.0;  // kActivation / kKvCache ledgers
        const double kv_as_act = kv_category == mem::kActivation ? kv : 0.0;
        const double kv_as_kv = kv_category == mem::kKvCache ? kv : 0.0;
        switch (row.kind) {
          case PassType::Forward:
            d_act = act + kv_as_act;
            d_kv = kv_as_kv;
            break;
          case PassType::Backward:
            d_act = -(act + kv_as_act);
            d_kv = -kv_as_kv;
            break;
          case PassType::BackwardInput:
            d_act = -(act * (1.0 - wkeep) + kv_as_act);
            d_kv = -kv_as_kv;
            break;
          case PassType::BackwardWeight:
            d_act = -act * wkeep;
            break;
        }
        stage_act[stage] += d_act;
        stage_kv[stage] += d_kv;
        stage_magnitude[stage] += std::abs(d_act) + std::abs(d_kv);
        dev_act += d_act;
        dev_kv += d_kv;
        StageCertificate& sc = cert.stages[stage];
        sc.peak_bytes =
            std::max(sc.peak_bytes, stage_act[stage] + stage_kv[stage]);
        auto& act_peak =
            cert.device_activation_peak[static_cast<std::size_t>(dev)];
        auto& kv_peak = cert.device_kv_peak[static_cast<std::size_t>(dev)];
        auto& total_peak = cert.device_peak[static_cast<std::size_t>(dev)];
        act_peak = std::max(act_peak, dev_act);
        kv_peak = std::max(kv_peak, dev_kv);
        total_peak = std::max(total_peak, dev_act + dev_kv);

        const double tolerance =
            1e-6 + 1e-9 * stage_magnitude[stage];
        if (!dipped[stage] &&
            stage_act[stage] + stage_kv[stage] < -tolerance) {
          dipped[stage] = true;
          std::ostringstream msg;
          msg << "stage " << row.stage << " ledger dips to "
              << stage_act[stage] + stage_kv[stage]
              << " bytes: this pass frees activation/KV that was never "
              << "allocated";
          report("verify-memory-cert", row_location(row), msg.str());
        }
      }
    }

    if (options.activation_budget_bytes > 0.0) {
      for (int dev = 0; dev < spec.p; ++dev) {
        const double peak =
            cert.device_peak[static_cast<std::size_t>(dev)];
        if (peak <= options.activation_budget_bytes) continue;
        std::ostringstream msg;
        msg << "certified activation+KV peak of " << peak
            << " bytes exceeds the budget of "
            << options.activation_budget_bytes << " bytes";
        report("verify-memory-cert", "dev " + std::to_string(dev), msg.str());
      }
    }
  }

  return result;
}

}  // namespace slim::analysis
