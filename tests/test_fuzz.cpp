// Randomized property tests: arbitrary valid pipeline specifications must
// compile, execute without deadlock, conserve memory (every activation byte
// allocated is freed by the end of the iteration) and produce physically
// sane measurements — for every scheme.

#include <gtest/gtest.h>

#include "src/core/runner.hpp"
#include "src/core/slimpipe.hpp"
#include "src/memory/tracker.hpp"
#include "src/model/transformer.hpp"
#include "src/sched/builder.hpp"
#include "src/sched/schemes.hpp"
#include "src/util/rng.hpp"

namespace slim {
namespace {

sched::PipelineSpec random_spec(Rng& rng, core::Scheme scheme) {
  sched::PipelineSpec spec;
  spec.cfg = model::llama13b();
  spec.gpu = model::hopper80();
  spec.gpu.memory_bytes = 1e18;  // fuzzing structure, not OOM
  spec.shard = {8, 1, 1, 8};
  const int p_choices[] = {1, 2, 3, 4, 5, 8};
  spec.p = p_choices[rng.next_below(6)];
  spec.m = 1 + static_cast<int>(rng.next_below(6));
  spec.seq = 8192 * (1 + static_cast<std::int64_t>(rng.next_below(8)));
  spec.policy = static_cast<model::CheckpointPolicy>(rng.next_below(3));

  switch (scheme) {
    case core::Scheme::Interleaved1F1B:
      spec.m = spec.p * (1 + static_cast<int>(rng.next_below(3)));
      spec.v = 1 + static_cast<int>(rng.next_below(4));
      while (spec.cfg.layers < spec.p * spec.v) --spec.v;
      break;
    case core::Scheme::ZBV:
    case core::Scheme::VHalf:
    case core::Scheme::VMin:
      spec.v = 2;
      if (spec.cfg.layers < 2 * spec.p) spec.p = 4;
      break;
    case core::Scheme::SlimPipe: {
      const int mult = 1 << rng.next_below(3);
      spec.n = spec.p * mult;
      // Keep slices uniform.
      spec.seq = static_cast<std::int64_t>(spec.n) * 4096;
      spec.v = 1 + static_cast<int>(rng.next_below(3));
      while (spec.cfg.layers < spec.p * spec.v) --spec.v;
      spec.vocab_parallel = rng.next_below(2) == 0;
      spec.context_exchange = rng.next_below(2) == 0;
      spec.adaptive_exchange = rng.next_below(2) == 0;
      break;
    }
    case core::Scheme::TeraPipe: {
      const int mult = 1 << rng.next_below(3);
      spec.n = spec.p * mult;
      spec.seq = static_cast<std::int64_t>(spec.n) * 4096;
      break;
    }
    default:
      break;
  }
  return spec;
}

class FuzzTest : public ::testing::TestWithParam<int> {};

TEST_P(FuzzTest, RandomSpecsExecuteSanely) {
  Rng rng(1000 + static_cast<std::uint64_t>(GetParam()));
  for (const auto scheme : core::all_schemes()) {
    const sched::PipelineSpec spec = random_spec(rng, scheme);
    sched::ScheduleResult r;
    ASSERT_NO_THROW(r = core::run_scheme(scheme, spec))
        << core::scheme_name(scheme) << " p=" << spec.p << " m=" << spec.m
        << " n=" << spec.n << " v=" << spec.v << " seq=" << spec.seq;
    EXPECT_GT(r.iteration_time, 0.0);
    EXPECT_GE(r.bubble_fraction, 0.0);
    EXPECT_LT(r.bubble_fraction, 1.0);
    EXPECT_GT(r.mfu, 0.0);
    EXPECT_LT(r.mfu, 0.75);
    EXPECT_GT(r.peak_memory, 0.0);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzTest, ::testing::Range(0, 12));

// Memory conservation: after the iteration, every transient byte is freed —
// activations, KV chunks and logits all return to zero; only static model
// state remains.
class ConservationTest : public ::testing::TestWithParam<int> {};

TEST_P(ConservationTest, AllTransientMemoryFreed) {
  Rng rng(5000 + static_cast<std::uint64_t>(GetParam()));
  const sched::PipelineSpec spec = random_spec(rng, core::Scheme::SlimPipe);
  const auto programs = core::slimpipe_programs(spec);
  sched::PipelineSpec normalized = spec;
  normalized.layout = spec.v == 1 ? sched::StageLayoutKind::Sequential
                                  : sched::StageLayoutKind::Interleaved;
  normalized.retain_kv = true;
  const auto built = sched::compile(normalized, programs, nullptr);
  const auto exec = sim::execute(*built.graph);
  const auto report = mem::replay_memory(*built.graph, exec, spec.p);
  for (int dev = 0; dev < spec.p; ++dev) {
    EXPECT_NEAR(report.devices[static_cast<std::size_t>(dev)].end, 0.0, 1.0)
        << "device " << dev << " leaked transient memory (p=" << spec.p
        << " n=" << spec.n << " v=" << spec.v << " m=" << spec.m << ")";
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ConservationTest, ::testing::Range(0, 10));

}  // namespace
}  // namespace slim
