file(REMOVE_RECURSE
  "CMakeFiles/test_slimpipe.dir/test_slimpipe.cpp.o"
  "CMakeFiles/test_slimpipe.dir/test_slimpipe.cpp.o.d"
  "test_slimpipe"
  "test_slimpipe.pdb"
  "test_slimpipe[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_slimpipe.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
