#pragma once

// Uniform-slicing arithmetic (paper §4.1.3, Table 2).
//
// All quantities are expressed as fractions of M_a, the total activation
// size of one microbatch across the whole model.

#include <algorithm>
#include <cstdint>

#include "src/util/logging.hpp"

namespace slim::core {

/// Warm-up forward count of pipeline device `rank` (0-based): the device
/// accumulates all n*v slice-units of the first microbatch plus two units
/// per remaining pipeline hop while the first backward round-trips.
inline int slimpipe_warmup_units(int p, int rank, int n, int v) {
  SLIM_CHECK(p >= 1 && rank >= 0 && rank < p && n >= 1 && v >= 1,
             "bad warmup query");
  return n * v + 2 * (p - 1 - rank);
}

/// Eq. 1's delta: the warm-up overshoot relative to M_a / p (v = 1 form).
inline double slimpipe_delta(int p, int n) {
  return 2.0 * static_cast<double>(p - 1) / static_cast<double>(n);
}

/// Peak accumulated activation as a fraction of M_a (Table 2 row SlimPipe):
/// 1/p + 2(p-1)/(n v p).
inline double slimpipe_activation_fraction(int p, int n, int v) {
  return 1.0 / static_cast<double>(p) +
         2.0 * static_cast<double>(p - 1) /
             (static_cast<double>(n) * static_cast<double>(v) *
              static_cast<double>(p));
}

/// Table 2 activation fractions of the baselines (of M_a).
inline double gpipe_activation_fraction(int m, int p) {
  // All m microbatches of the device's stage accumulate: m * (M_a / p).
  return static_cast<double>(m) / static_cast<double>(p);
}
inline double onef1b_activation_fraction(int m, int p) {
  // p in-flight microbatches on device 0 (fewer when m < p).
  return std::min(1.0, static_cast<double>(m) / static_cast<double>(p));
}
inline double interleaved_activation_fraction(int p, int v) {
  return 1.0 + static_cast<double>(p - 1) /
                   (static_cast<double>(v) * static_cast<double>(p));
}
inline double vhalf_activation_fraction(int p) {
  return 0.5 + 1.0 / static_cast<double>(p);
}
inline double vmin_activation_fraction(int p) {
  // V-Min targets 1/3 of 1F1B; our schedule adds two stage units of
  // headroom: cap = max(4, 2p/3 + 2) stage units out of 2p.
  const double cap = std::max(4.0, 2.0 * p / 3.0 + 2.0);
  return cap / (2.0 * static_cast<double>(p));
}

/// Warm-up bubble-fraction upper bound of SlimPipe (Table 2): (p-1)/(n v m).
inline double slimpipe_bubble_bound(int p, int n, int v, int m) {
  return static_cast<double>(p - 1) /
         (static_cast<double>(n) * static_cast<double>(v) *
          static_cast<double>(m));
}

/// Asymptotic bubble fraction with attention-dominated compute (Table 2
/// footnote): (p-1) p / ((n+1) n m), for the non-interleaved form.
inline double slimpipe_bubble_asymptotic(int p, int n, int m) {
  return static_cast<double>(p - 1) * static_cast<double>(p) /
         ((static_cast<double>(n) + 1.0) * static_cast<double>(n) *
          static_cast<double>(m));
}

/// Classic 1F1B / GPipe warm-up bubble fraction: (p-1)/m.
inline double onef1b_bubble_fraction(int p, int m) {
  return static_cast<double>(p - 1) / static_cast<double>(m);
}

/// Interleaved 1F1B bubble fraction: (p-1)/(v m).
inline double interleaved_bubble_fraction(int p, int v, int m) {
  return static_cast<double>(p - 1) /
         (static_cast<double>(v) * static_cast<double>(m));
}

/// Eq. 2: upper bound on the context-exchange volume per microbatch per
/// device, in bytes, given L layers and a full-sequence embedding of
/// `m_h_bytes` (per device shard). The slice KV fraction `kv_ratio` scales
/// the K+V terms relative to Q/O (kv_hidden / hidden).
inline double exchange_volume_bound(int p, int n, std::int64_t layers,
                                    double m_h_bytes, double kv_ratio) {
  const double L = static_cast<double>(layers);
  const double q_o = 2.0 * static_cast<double>(n);
  const double kv_mid = 2.0 * static_cast<double>(n - p + 1) *
                        static_cast<double>((p - 1) / 2);
  const double kv_juncture = 2.0 * static_cast<double>(p - 1) *
                             static_cast<double>((n - 1) / 2);
  return (q_o + (kv_mid + kv_juncture) * kv_ratio) * L * m_h_bytes /
         (static_cast<double>(p) * static_cast<double>(n));
}

}  // namespace slim::core
