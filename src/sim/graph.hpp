#pragma once

// Dependency graph of simulated operations.
//
// Every op runs on exactly one *resource* (a GPU compute stream or a directed
// communication channel). Ops assigned to the same resource execute strictly
// in the order they were added (program order); across resources, execution
// is constrained only by explicit dependencies. This models a set of CUDA
// streams plus point-to-point links.

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/sim/topology.hpp"

namespace slim::sim {

using OpId = std::int32_t;
using ResId = std::int32_t;

inline constexpr OpId kInvalidOp = -1;

/// Broad classification used for tracing and bubble accounting.
enum class OpClass : std::uint8_t {
  Forward,         // forward pass of a slice through the local layers
  Backward,        // full backward (input+weight)
  BackwardInput,   // ZB-V style input-gradient-only backward
  BackwardWeight,  // ZB-V style weight-gradient-only backward
  Recompute,       // checkpoint recomputation
  VocabForward,    // output-layer GEMM + loss
  VocabBackward,
  Optimizer,
  Send,            // activation/gradient P2P
  ExchangeSend,    // context-exchange traffic
  Collective,      // TP/CP/EP internal collective (folded into compute here)
  Other,
};

bool is_compute_class(OpClass cls);

/// Stable lower-case name of an op class ("forward", "exchange_send", ...);
/// shared by the trace exporters and metrics reports.
const char* op_class_name(OpClass cls);

/// Memory ledger entry attached to an op; positive bytes allocate, negative
/// free. Applied on the simulated timeline at the op's start or end.
struct MemDelta {
  int device = 0;
  int category = 0;  // slim::mem::Category, kept as int to avoid a dep cycle
  double bytes = 0.0;
  bool at_end = false;  // false: applied at op start; true: at op end
};

struct Op {
  OpId id = kInvalidOp;
  ResId resource = -1;
  double duration = 0.0;
  OpClass cls = OpClass::Other;

  /// Device whose timeline this op belongs to for tracing/bubble accounting
  /// (for comm ops: the sender).
  int device = 0;

  /// Transfer metadata (comm ops only): receiving device and payload size.
  /// Kept on the op so traces and metrics can report volumes without
  /// re-deriving them from durations.
  int peer = -1;
  double bytes = 0.0;

  // Trace metadata.
  std::int32_t microbatch = -1;
  std::int32_t slice = -1;
  std::int32_t stage = -1;

  std::vector<OpId> deps;
  std::vector<MemDelta> mem;
};

/// Builder/owner of the op DAG plus the resource table.
class OpGraph {
 public:
  explicit OpGraph(Topology topology);

  const Topology& topology() const { return topology_; }

  /// Resource representing the compute stream of `device`.
  ResId compute_resource(int device);

  /// Resource for the directed channel device `src` -> `dst`. `lane`
  /// separates independent traffic classes (forward activations, backward
  /// gradients, context exchange) the way distinct communicators/streams
  /// do: FIFO within a lane, independent across lanes.
  ResId channel_resource(int src, int dst, int lane = 0);

  /// Adds a compute op on `device` with the given duration.
  OpId add_compute(int device, double duration, OpClass cls,
                   std::vector<OpId> deps);

  /// Adds a P2P transfer of `bytes` from `src` to `dst`; duration is derived
  /// from the topology. Returns the op to depend on for arrival.
  ///
  /// Intra-node transfers occupy the dedicated (src, dst) NVLink channel;
  /// cross-node transfers serialize on the sender's NIC (per lane): a
  /// device exchanging with several remote peers shares its 400 Gbps port.
  OpId add_transfer(int src, int dst, double bytes, OpClass cls,
                    std::vector<OpId> deps, int lane = 0);

  /// Resource of device `src`'s NIC transmit queue for a traffic lane.
  ResId nic_resource(int src, int lane = 0);

  /// Resource of `device`'s PCIe link (host offload traffic).
  ResId pcie_resource(int device);

  /// Adds an op on an explicit resource (e.g. a PCIe copy engine).
  OpId add_on_resource(ResId resource, int device, double duration,
                       OpClass cls, std::vector<OpId> deps);

  /// Attaches a memory delta to an existing op.
  void add_mem(OpId op, MemDelta delta);

  /// Tags trace metadata on an existing op.
  void set_tag(OpId op, std::int32_t microbatch, std::int32_t slice,
               std::int32_t stage);

  const std::vector<Op>& ops() const { return ops_; }
  Op& op(OpId id);
  const Op& op(OpId id) const;

  std::size_t num_resources() const { return resource_count_; }

  /// Per-resource program order (op ids in insertion order).
  const std::vector<std::vector<OpId>>& programs() const { return programs_; }

 private:
  ResId intern_resource(std::int64_t key);

  Topology topology_;
  std::vector<Op> ops_;
  std::vector<std::vector<OpId>> programs_;
  std::size_t resource_count_ = 0;
  std::unordered_map<std::int64_t, ResId> resource_index_;
};

}  // namespace slim::sim
