#pragma once

// DeepSpeed model: ZeRO-3 (parameter/gradient/optimizer sharding over data
// parallelism) combined with Ulysses sequence parallelism (all-to-all head
// exchange around attention). No pipeline parallelism.
//
// The paper's reported failure modes are reproduced structurally:
//  * Ulysses degree is bounded by the number of query groups (8 for the GQA
//    models), so it cannot absorb more GPUs;
//  * the global batch (tokens / seq) must cover the ZeRO data-parallel
//    degree, which fails for long contexts on large clusters
//    ("no viable configuration" in Figure 12).

#include <cstdint>
#include <string>

#include "src/model/activation.hpp"
#include "src/model/hardware.hpp"
#include "src/model/transformer.hpp"

namespace slim::sched {

enum class UlyssesStatus : std::uint8_t { Ok, NoViableConfig, Oom };

struct UlyssesResult {
  UlyssesStatus status = UlyssesStatus::NoViableConfig;
  int ulysses_degree = 0;
  model::CheckpointPolicy policy = model::CheckpointPolicy::None;
  double iteration_time = 0.0;
  double mfu = 0.0;
  double peak_memory = 0.0;
  std::string note;
};

/// Evaluates one (u, policy) point.
UlyssesResult run_ulysses(const model::TransformerConfig& cfg,
                          const model::GpuSpec& gpu, int num_gpus,
                          std::int64_t seq, std::int64_t tokens_per_iter,
                          int ulysses_degree,
                          model::CheckpointPolicy policy);

/// Grid-searches u in powers of two and all checkpoint policies; returns the
/// best feasible configuration (highest MFU), or the most informative
/// failure status.
UlyssesResult best_ulysses(const model::TransformerConfig& cfg,
                           const model::GpuSpec& gpu, int num_gpus,
                           std::int64_t seq, std::int64_t tokens_per_iter);

}  // namespace slim::sched
