file(REMOVE_RECURSE
  "CMakeFiles/test_numerics_attention.dir/test_numerics_attention.cpp.o"
  "CMakeFiles/test_numerics_attention.dir/test_numerics_attention.cpp.o.d"
  "test_numerics_attention"
  "test_numerics_attention.pdb"
  "test_numerics_attention[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_numerics_attention.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
