#include "src/sched/builder.hpp"

#include <algorithm>
#include <atomic>
#include <unordered_map>

#include "src/analysis/graph_check.hpp"
#include "src/analysis/schedule_check.hpp"
#include "src/analysis/verify.hpp"
#include "src/fault/fault_sim.hpp"
#include "src/ir/schedule_ir.hpp"
#include "src/model/activation.hpp"
#include "src/obs/metrics.hpp"
#include "src/obs/trace.hpp"
#include "src/sim/trace.hpp"
#include "src/util/logging.hpp"
#include "src/util/math.hpp"
#include "src/util/units.hpp"

namespace slim::sched {

namespace {

constexpr double kMemoryReserveBytes = 3.0 * kGiB;  // runtime + NCCL + workspace

std::atomic<bool> g_compile_lint{true};

std::int64_t pack_key(PassType type, std::int32_t mb, std::int32_t slice,
                      std::int32_t stage) {
  return (static_cast<std::int64_t>(type) << 56) |
         (static_cast<std::int64_t>(mb) << 36) |
         (static_cast<std::int64_t>(slice) << 16) |
         static_cast<std::int64_t>(stage);
}

/// Parameter count on one device (after TP/EP sharding).
double device_params(const model::TransformerConfig& cfg,
                     const model::Shard& shard, double layers_local,
                     double vocab_fraction) {
  const double h = static_cast<double>(cfg.hidden);
  const double attn = 2.0 * h * h + 2.0 * h * static_cast<double>(cfg.kv_hidden());
  double ffn = 3.0 * h * static_cast<double>(cfg.ffn);
  if (cfg.is_moe()) {
    ffn = ffn * static_cast<double>(cfg.experts) /
              static_cast<double>(shard.e) +
          h * static_cast<double>(cfg.experts);
  }
  const double per_layer = (attn + ffn + 2.0 * h) / static_cast<double>(shard.t);
  const double embed = static_cast<double>(cfg.params_embedding()) *
                       vocab_fraction / static_cast<double>(shard.t);
  return layers_local * per_layer + embed;
}

}  // namespace

void set_compile_lint(bool enabled) { g_compile_lint.store(enabled); }
bool compile_lint_enabled() { return g_compile_lint.load(); }

sim::Topology pipeline_topology(const PipelineSpec& spec) {
  const std::int64_t gpus_per_rank = spec.shard.t * spec.shard.c;
  const int ranks_per_node = static_cast<int>(
      std::max<std::int64_t>(1, spec.shard.gpus_per_node / gpus_per_rank));
  sim::Topology topo;
  if (spec.p <= ranks_per_node) {
    topo.num_nodes = 1;
    topo.gpus_per_node = spec.p;
  } else {
    topo.gpus_per_node = ranks_per_node;
    topo.num_nodes =
        static_cast<int>(ceil_div(spec.p, ranks_per_node));
  }
  return topo;
}

DeviceProgram one_f_one_b_program(const std::vector<Pass>& fwd,
                                  const std::vector<Pass>& bwd, int warmup) {
  SLIM_CHECK(fwd.size() == bwd.size(), "forward/backward unit count mismatch");
  const int total = static_cast<int>(fwd.size());
  if (total == 0) return {};
  warmup = std::clamp(warmup, 1, total);
  DeviceProgram program;
  program.reserve(2 * fwd.size());
  for (int i = 0; i < warmup; ++i) program.push_back(fwd[static_cast<std::size_t>(i)]);
  for (int i = 0; i + warmup < total; ++i) {
    program.push_back(bwd[static_cast<std::size_t>(i)]);
    program.push_back(fwd[static_cast<std::size_t>(i + warmup)]);
  }
  for (int i = total - warmup; i < total; ++i) {
    program.push_back(bwd[static_cast<std::size_t>(i)]);
  }
  return program;
}

BuildOutput compile(const PipelineSpec& spec,
                    const std::vector<DeviceProgram>& programs,
                    const ExchangeOracle* exchange) {
  const std::string err = spec.validate();
  SLIM_CHECK(err.empty(), "invalid pipeline spec: " + err);
  SLIM_CHECK(static_cast<int>(programs.size()) == spec.p,
             "one program per pipeline device required");

  // ---- static analysis, phase 1: schedule lint + IR verification ----
  // Runs *before* any graph is built, so a rejected schedule costs nothing
  // and external (imported) schedules are certified by the same path. The
  // spec carries the scheme's declared in-flight cap (core::plan_scheme
  // fills it in); 0 leaves the sched-inflight-bound rule off.
  if (compile_lint_enabled()) {
    analysis::ScheduleLintOptions sched_opts;
    sched_opts.max_inflight_units = spec.max_inflight_units;
    std::vector<analysis::Finding> findings =
        analysis::check_schedule(spec, programs, sched_opts);
    const analysis::VerifyResult verdict =
        analysis::verify_ir(ir::lower(spec, programs, "compile"), spec);
    findings.insert(findings.end(), verdict.findings.begin(),
                    verdict.findings.end());
    if (analysis::has_errors(findings)) {
      SLIM_CHECK(false, "static analysis rejected the schedule:\n" +
                            analysis::render(findings));
    }
  }

  const StageLayout layout = spec.stage_layout();
  const int num_stages = layout.num_stages();
  // Per-microbatch slice boundaries; uniform specs resolve to the
  // remainder-distributed token split, so every token is costed.
  const std::vector<core::SliceLayout> slice_layouts = spec.resolved_layouts();
  auto len_of = [&](const Pass& pass) {
    return slice_layouts[static_cast<std::size_t>(pass.microbatch)].len(
        pass.slice);
  };
  auto prefix_of = [&](const Pass& pass) {
    return slice_layouts[static_cast<std::size_t>(pass.microbatch)].kv_prefix(
        pass.slice);
  };
  const sim::Topology topo = pipeline_topology(spec);
  const model::CostModel cost(spec.cfg, spec.gpu, topo, spec.shard,
                              spec.policy, spec.cp_mode);

  // --- activation byte model per slice per stage ---
  const double nonkv_per_token = model::act_bytes_per_token_layer_no_kv(
      spec.cfg, spec.shard, spec.policy);
  const bool kv_stored =
      spec.retain_kv || spec.policy != model::CheckpointPolicy::Full;
  const double kv_per_token =
      kv_stored ? model::kv_bytes_per_token_layer(spec.cfg, spec.shard) : 0.0;
  const int kv_category = spec.retain_kv ? mem::kKvCache : mem::kActivation;
  // Per-stage activation bytes (stages may hold uneven layer counts and
  // slices carry per-layout token counts).
  auto act_slice_of = [&](int stage, std::int64_t len) {
    return nonkv_per_token *
           static_cast<double>(len * spec.layers_of_stage(stage));
  };
  auto kv_slice_of = [&](int stage, std::int64_t len) {
    return kv_per_token *
           static_cast<double>(len * spec.layers_of_stage(stage));
  };
  const double wkeep = model::wgrad_kept_fraction(spec.cfg, spec.policy);

  // Fraction of the (tied, single-copy) vocabulary parameters on a device:
  // the embedding sits with the first stage, the output head with the last.
  const StageLayout vf_layout = spec.stage_layout();
  auto vocab_fraction_of = [&](int dev) {
    if (spec.vocab_parallel) return 1.0 / static_cast<double>(spec.p);
    double f = 0.0;
    if (vf_layout.device_of(0) == dev) f += 0.5;
    if (vf_layout.device_of(vf_layout.num_stages() - 1) == dev) f += 0.5;
    return f;
  };
  // Layers on one device across all its chunks.
  auto layers_of_device = [&](int dev) {
    std::int64_t total = 0;
    for (int chunk = 0; chunk < spec.v; ++chunk) {
      total += spec.layers_of_stage(vf_layout.stage_of(dev, chunk));
    }
    return static_cast<double>(total);
  };

  // Vocabulary handling (per-slice token counts).
  const std::int64_t vocab_shards = spec.vocab_parallel ? spec.p : 1;
  auto logits_slice_of = [&](std::int64_t len) {
    return model::logits_bytes(spec.cfg, spec.shard, len, vocab_shards);
  };
  auto vf_time_of = [&](std::int64_t len) {
    return cost.vocab_forward_time(len, vocab_shards);
  };
  auto vb_time_of = [&](std::int64_t len) {
    return cost.vocab_backward_time(len, vocab_shards);
  };
  // With vocabulary parallelism the hidden states are broadcast: each
  // device receives one boundary activation per slice.
  auto vp_broadcast_time_of = [&](std::int64_t len) {
    return spec.vocab_parallel && spec.p > 1
               ? topo.p2p_time(0, spec.p - 1, cost.boundary_bytes(len))
               : 0.0;
  };

  auto output = BuildOutput{};
  output.graph = std::make_unique<sim::OpGraph>(topo);
  sim::OpGraph& graph = *output.graph;

  std::unordered_map<std::int64_t, sim::OpId> index;
  index.reserve(programs.size() * 64);
  // Compute ops per device in creation order (for exchange "previous op").
  std::vector<std::vector<sim::OpId>> device_ops(
      static_cast<std::size_t>(spec.p));

  auto attn_stream = [&](const Pass& pass, bool forward) -> std::int64_t {
    if (forward) {
      return static_cast<std::int64_t>(pass.microbatch) * spec.n + pass.slice;
    }
    return static_cast<std::int64_t>(pass.microbatch) * spec.n +
           (spec.n - 1 - pass.slice);
  };

  struct ExchangeRef {
    sim::OpId op;
    int device;
    ExchangeOracle::PassPlan plan;
  };
  std::vector<ExchangeRef> exchange_refs;
  std::vector<double> exchange_sent(static_cast<std::size_t>(spec.p), 0.0);

  // ---- pass 1: compute ops in program order ----
  for (int dev = 0; dev < spec.p; ++dev) {
    for (const Pass& pass : programs[static_cast<std::size_t>(dev)]) {
      const int stage = layout.stage_of(dev, pass.chunk);
      const std::int64_t stage_layers = spec.layers_of_stage(stage);
      const std::int64_t slice_len = len_of(pass);
      const std::int64_t kv_prefix = prefix_of(pass);
      const double logits_slice = logits_slice_of(slice_len);
      const double vf_time = vf_time_of(slice_len);
      const double vb_time = vb_time_of(slice_len);
      ExchangeOracle::PassPlan plan;
      const bool sliced_attn_pass =
          exchange != nullptr && (pass.type == PassType::Forward ||
                                  pass.type == PassType::Backward);
      if (sliced_attn_pass) {
        plan = exchange->plan(dev, attn_stream(pass, pass.type == PassType::Forward),
                              pass.type == PassType::Forward);
      }

      double duration = 0.0;
      sim::OpClass cls = sim::OpClass::Forward;
      switch (pass.type) {
        case PassType::Forward: {
          cls = sim::OpClass::Forward;
          const double attn =
              sliced_attn_pass
                  ? plan.attn_time * static_cast<double>(stage_layers)
                  : static_cast<double>(stage_layers) *
                        cost.causal_attn_time(slice_len, kv_prefix, true);
          duration = cost.nonattn_time(stage_layers, slice_len, true) + attn;
          if (stage == 0) duration += cost.embedding_time(slice_len);
          if (spec.vocab_parallel) {
            duration += vf_time + vp_broadcast_time_of(slice_len);
          }
          break;
        }
        case PassType::Backward: {
          cls = sim::OpClass::Backward;
          const double attn =
              sliced_attn_pass
                  ? plan.attn_time * static_cast<double>(stage_layers)
                  : static_cast<double>(stage_layers) *
                        cost.causal_attn_time(slice_len, kv_prefix, false);
          duration = cost.nonattn_time(stage_layers, slice_len, false) + attn +
                     cost.recompute_time(stage_layers, slice_len, kv_prefix);
          if (spec.vocab_parallel) duration += vb_time;
          break;
        }
        case PassType::BackwardInput:
          cls = sim::OpClass::BackwardInput;
          duration = cost.backward_input_time(stage_layers, slice_len, kv_prefix);
          break;
        case PassType::BackwardWeight:
          cls = sim::OpClass::BackwardWeight;
          duration = cost.backward_weight_time(stage_layers, slice_len);
          break;
      }

      // Non-parallel vocabulary: backward of the last stage is preceded by
      // the vocabulary/loss backward on the same device.
      const bool is_backward_kind = pass.type == PassType::Backward ||
                                    pass.type == PassType::BackwardInput;
      if (!spec.vocab_parallel && is_backward_kind && stage == num_stages - 1) {
        const sim::OpId vb = graph.add_compute(dev, vb_time,
                                               sim::OpClass::VocabBackward, {});
        graph.set_tag(vb, pass.microbatch, pass.slice, stage);
        graph.add_mem(vb, {dev, mem::kLogits, -logits_slice, /*at_end=*/true});
        index.emplace(pack_key(PassType::BackwardWeight /*unused slot*/,
                               pass.microbatch, pass.slice,
                               stage + num_stages /*VB namespace*/),
                      vb);
        device_ops[static_cast<std::size_t>(dev)].push_back(vb);
      }

      const sim::OpId op = graph.add_compute(dev, duration, cls, {});
      graph.set_tag(op, pass.microbatch, pass.slice, stage);
      index.emplace(pack_key(pass.type, pass.microbatch, pass.slice, stage),
                    op);
      device_ops[static_cast<std::size_t>(dev)].push_back(op);
      if (sliced_attn_pass && !plan.exchanges.empty()) {
        exchange_refs.push_back({op, dev, plan});
        for (const ExchangeOracle::Exchange& ex : plan.exchanges) {
          exchange_sent[static_cast<std::size_t>(dev)] += ex.send_bytes;
        }
      }

      // Memory deltas. With offloading enabled, the forward allocates the
      // full slice; an explicit PCIe store then moves the host share out,
      // and a prefetch restores it ahead of the backward — the transfer
      // windows and PCIe contention are simulated, not assumed (paper 6.5,
      // "pipeline-parallelism-aware offloading").
      const double act_full = act_slice_of(stage, slice_len);
      const double kv_full = kv_slice_of(stage, slice_len);
      const double act_host = spec.offload.host_bytes(act_full);
      const double kv_host = spec.offload.host_bytes(kv_full);
      const bool offloading = spec.offload.enabled() &&
                              (pass.type == PassType::Forward ||
                               pass.type == PassType::Backward);
      const double pcie_time =
          (act_host + kv_host) / spec.offload.pcie_bandwidth;
      switch (pass.type) {
        case PassType::Forward: {
          graph.add_mem(op, {dev, mem::kActivation, act_full, false});
          if (kv_full > 0.0) {
            graph.add_mem(op, {dev, kv_category, kv_full, false});
          }
          if (spec.vocab_parallel && pass.chunk == spec.v - 1) {
            graph.add_mem(op, {dev, mem::kLogits, logits_slice, true});
          }
          if (offloading) {
            const sim::OpId store = graph.add_on_resource(
                graph.pcie_resource(dev), dev, pcie_time, sim::OpClass::Other,
                {op});
            graph.set_tag(store, pass.microbatch, pass.slice, stage);
            graph.add_mem(store, {dev, mem::kActivation, -act_host, true});
            if (kv_host > 0.0) {
              graph.add_mem(store, {dev, kv_category, -kv_host, true});
            }
          }
          break;
        }
        case PassType::Backward: {
          if (offloading) {
            // Prefetch launched from two passes back so it overlaps; the
            // backward waits for it.
            const auto& own = device_ops[static_cast<std::size_t>(dev)];
            std::vector<sim::OpId> pdeps;
            if (own.size() >= 2) pdeps.push_back(own[own.size() - 2]);
            const sim::OpId prefetch = graph.add_on_resource(
                graph.pcie_resource(dev), dev, pcie_time, sim::OpClass::Other,
                std::move(pdeps));
            graph.set_tag(prefetch, pass.microbatch, pass.slice, stage);
            graph.add_mem(prefetch, {dev, mem::kActivation, act_host, false});
            if (kv_host > 0.0) {
              graph.add_mem(prefetch, {dev, kv_category, kv_host, false});
            }
            graph.op(op).deps.push_back(prefetch);
          }
          graph.add_mem(op, {dev, mem::kActivation, -act_full, true});
          if (kv_full > 0.0) {
            graph.add_mem(op, {dev, kv_category, -kv_full, true});
          }
          if (spec.vocab_parallel && pass.chunk == spec.v - 1) {
            graph.add_mem(op, {dev, mem::kLogits, -logits_slice, false});
          }
          break;
        }
        case PassType::BackwardInput:
          graph.add_mem(
              op, {dev, mem::kActivation, -act_full * (1.0 - wkeep), true});
          if (kv_full > 0.0) {
            graph.add_mem(op, {dev, kv_category, -kv_full, true});
          }
          break;
        case PassType::BackwardWeight:
          graph.add_mem(op, {dev, mem::kActivation, -act_full * wkeep, true});
          break;
      }

      // Non-parallel vocabulary: forward of the last stage is followed by
      // the output GEMM + loss on the same device.
      if (!spec.vocab_parallel && pass.type == PassType::Forward &&
          stage == num_stages - 1) {
        const sim::OpId vf = graph.add_compute(dev, vf_time,
                                               sim::OpClass::VocabForward,
                                               {op});
        graph.set_tag(vf, pass.microbatch, pass.slice, stage);
        graph.add_mem(vf, {dev, mem::kLogits, logits_slice, false});
        index.emplace(pack_key(PassType::BackwardWeight,
                               pass.microbatch, pass.slice,
                               stage + 2 * num_stages /*VF namespace*/),
                      vf);
        device_ops[static_cast<std::size_t>(dev)].push_back(vf);
      }
    }

    // Optimizer tail: parameter update + exposed data-parallel gradient
    // communication.
    const double params = device_params(spec.cfg, spec.shard,
                                        layers_of_device(dev),
                                        vocab_fraction_of(dev));
    const double update_time = params * 18.0 / spec.gpu.hbm_bandwidth;
    double dp_time = 0.0;
    if (spec.d > 1) {
      const double rs = topo.ring_collective_time(static_cast<int>(spec.d),
                                                  params * 4.0, true);
      const double ag = topo.ring_collective_time(static_cast<int>(spec.d),
                                                  params * 2.0, true);
      dp_time = spec.dp_exposed_fraction * (rs + ag);
    }
    const sim::OpId opt = graph.add_compute(dev, update_time + dp_time,
                                            sim::OpClass::Optimizer, {});
    graph.set_tag(opt, -1, -1, -1);
  }

  // ---- pass 2: dependencies and transfers ----
  auto find = [&](PassType type, std::int32_t mb, std::int32_t slice,
                  std::int32_t stage) -> sim::OpId {
    auto it = index.find(pack_key(type, mb, slice, stage));
    return it == index.end() ? sim::kInvalidOp : it->second;
  };
  auto find_vocab = [&](bool forward, std::int32_t mb,
                        std::int32_t slice) -> sim::OpId {
    const std::int32_t ns = forward ? 2 * num_stages : num_stages;
    auto it = index.find(pack_key(PassType::BackwardWeight, mb, slice,
                                  (num_stages - 1) + ns));
    return it == index.end() ? sim::kInvalidOp : it->second;
  };

  for (int dev = 0; dev < spec.p; ++dev) {
    for (const Pass& pass : programs[static_cast<std::size_t>(dev)]) {
      const int stage = layout.stage_of(dev, pass.chunk);
      const double boundary = cost.boundary_bytes(len_of(pass));
      const sim::OpId op = find(pass.type, pass.microbatch, pass.slice, stage);
      SLIM_CHECK(op != sim::kInvalidOp, "op disappeared from index");

      // Lane 0: forward activations; lane 1: backward gradients. Distinct
      // lanes mirror the separate communicators a real stack uses and keep
      // unrelated traffic from serializing.
      auto link_from = [&](sim::OpId producer, int producer_stage, int lane) {
        SLIM_CHECK(producer != sim::kInvalidOp,
                   "missing producer pass for stage dependency");
        const int src = layout.device_of(producer_stage);
        if (src == dev) {
          graph.op(op).deps.push_back(producer);
        } else {
          const sim::OpId xfer = graph.add_transfer(
              src, dev, boundary, sim::OpClass::Send, {producer}, lane);
          graph.set_tag(xfer, pass.microbatch, pass.slice, stage);
          graph.op(op).deps.push_back(xfer);
        }
      };

      switch (pass.type) {
        case PassType::Forward:
          if (stage > 0) {
            link_from(find(PassType::Forward, pass.microbatch, pass.slice,
                           stage - 1),
                      stage - 1, /*lane=*/0);
          }
          break;
        case PassType::Backward:
        case PassType::BackwardInput: {
          const sim::OpId fwd =
              find(PassType::Forward, pass.microbatch, pass.slice, stage);
          SLIM_CHECK(fwd != sim::kInvalidOp, "backward without forward");
          graph.op(op).deps.push_back(fwd);
          if (stage < num_stages - 1) {
            sim::OpId producer =
                find(pass.type, pass.microbatch, pass.slice, stage + 1);
            if (producer == sim::kInvalidOp && pass.type == PassType::Backward) {
              producer = find(PassType::BackwardInput, pass.microbatch,
                              pass.slice, stage + 1);
            }
            link_from(producer, stage + 1, /*lane=*/1);
          } else if (!spec.vocab_parallel) {
            const sim::OpId vf = find_vocab(true, pass.microbatch, pass.slice);
            const sim::OpId vb = find_vocab(false, pass.microbatch, pass.slice);
            SLIM_CHECK(vf != sim::kInvalidOp && vb != sim::kInvalidOp,
                       "missing vocabulary ops at last stage");
            graph.op(vb).deps.push_back(vf);
            graph.op(op).deps.push_back(vb);
          }
          break;
        }
        case PassType::BackwardWeight: {
          const sim::OpId bi = find(PassType::BackwardInput, pass.microbatch,
                                    pass.slice, stage);
          SLIM_CHECK(bi != sim::kInvalidOp, "weight grad without input grad");
          graph.op(op).deps.push_back(bi);
          break;
        }
      }
    }
  }

  // ---- context-exchange transfers ----
  // The incoming payload (Q+KV for the lighter device, partial O for the
  // heavier one) is launched as soon as the previous pass of the pipeline
  // tick completes ("Early Key-Value Exchange"), so it overlaps with
  // compute unless the interconnect is the bottleneck. In an aligned
  // (balanced) pipeline the partner's previous pass ends at the same tick
  // as the receiver's, so the receiver's own previous op is used as the
  // launch anchor — this keeps the graph acyclic by construction.
  if (!exchange_refs.empty()) {
    std::unordered_map<sim::OpId, int> pos;
    for (int dev = 0; dev < spec.p; ++dev) {
      const auto& ops = device_ops[static_cast<std::size_t>(dev)];
      for (std::size_t i = 0; i < ops.size(); ++i) {
        pos.emplace(ops[i], static_cast<int>(i));
      }
    }
    for (const ExchangeRef& ref : exchange_refs) {
      const auto& own_ops = device_ops[static_cast<std::size_t>(ref.device)];
      const int my_pos = pos.at(ref.op);
      // "Early Key-Value Exchange" (§5): the payload is mostly KV of
      // *earlier* slices, so it can launch two passes ahead and overlap
      // with the previous pass's compute.
      sim::OpId anchor = sim::kInvalidOp;
      if (my_pos >= 2) {
        anchor = own_ops[static_cast<std::size_t>(my_pos - 2)];
      } else if (my_pos == 1) {
        anchor = own_ops[0];
      }
      for (const ExchangeOracle::Exchange& ex : ref.plan.exchanges) {
        if (ex.recv_bytes <= 0.0) continue;
        SLIM_CHECK(ex.partner >= 0 && ex.partner < spec.p,
                   "bad exchange partner");
        std::vector<sim::OpId> deps;
        if (anchor != sim::kInvalidOp) deps.push_back(anchor);
        const sim::OpId xfer = graph.add_transfer(
            ex.partner, ref.device, ex.recv_bytes, sim::OpClass::ExchangeSend,
            std::move(deps), /*lane=*/2);
        const sim::Op& main_op = graph.op(ref.op);
        graph.set_tag(xfer, main_op.microbatch, main_op.slice, main_op.stage);
        graph.op(ref.op).deps.push_back(xfer);
      }
    }
  }
  output.exchange_bytes_max_device =
      *std::max_element(exchange_sent.begin(), exchange_sent.end());

  // ---- static model-state baseline ----
  for (int dev = 0; dev < spec.p; ++dev) {
    const double params = device_params(spec.cfg, spec.shard,
                                        layers_of_device(dev),
                                        vocab_fraction_of(dev));
    output.baseline.push_back({dev, mem::kParams, params * 2.0});
    // fp32 main gradients (mixed-precision accumulation, paper 6.1).
    output.baseline.push_back({dev, mem::kGrads, params * 4.0});
    output.baseline.push_back(
        {dev, mem::kOptimizer,
         params * 12.0 / static_cast<double>(std::max<std::int64_t>(1, spec.d))});
  }

  // ---- static analysis, phase 2: graph lint ----
  // The pre-build rules ran above; this pass checks properties only the
  // built graph exposes (dependency cycles, transfer pairing, balances).
  if (compile_lint_enabled()) {
    const std::vector<analysis::Finding> findings =
        analysis::check_graph(graph, spec);
    if (analysis::has_errors(findings)) {
      SLIM_CHECK(false,
                 "static analysis rejected the schedule:\n" +
                     analysis::render(findings));
    }
  }
  return output;
}

namespace {

ScheduleResult assemble_result(const PipelineSpec& spec,
                               const BuildOutput& built,
                               const sim::ExecResult& exec,
                               const std::string& scheme_name,
                               bool want_timeline) {
  const mem::MemoryReport memory =
      mem::replay_memory(*built.graph, exec, spec.p, built.baseline);

  const model::CostModel cost(spec.cfg, spec.gpu, pipeline_topology(spec),
                              spec.shard, spec.policy, spec.cp_mode);
  ScheduleResult result;
  result.scheme = scheme_name;
  result.iteration_time = exec.makespan;
  result.bubble_fraction = exec.mean_bubble_fraction(spec.p);
  const double gpus = static_cast<double>(spec.shard.t * spec.shard.c) *
                      static_cast<double>(spec.p);
  // Sum per-microbatch model FLOPs so elastic (variable-length) iterations
  // get the right basis; uniform specs reduce to model_flops_iteration.
  double model_flops = 0.0;
  for (int mb = 0; mb < spec.m; ++mb) {
    model_flops += 3.0 * cost.model_flops_forward(spec.seq_of(mb));
  }
  result.mfu = model_flops / (exec.makespan * gpus * spec.gpu.peak_flops);
  result.peak_memory = memory.max_peak();
  result.first_device_memory = memory.devices.front().peak;
  result.last_device_memory = memory.devices.back().peak;
  for (const mem::DeviceMemory& dev : memory.devices) {
    result.device_peaks.push_back(dev.peak);
  }
  result.exchange_bytes_max_device = built.exchange_bytes_max_device;
  result.oom = result.peak_memory >
               spec.gpu.memory_bytes - kMemoryReserveBytes;
  if (want_timeline) {
    result.ascii_timeline = sim::ascii_timeline(*built.graph, exec);
  }
  result.metrics = obs::metrics_from_sim(*built.graph, exec, spec.p, &memory);
  result.metrics.scheme = scheme_name;
  result.memory = memory;
  return result;
}

}  // namespace

ScheduleResult run_pipeline(const PipelineSpec& spec,
                            const std::vector<DeviceProgram>& programs,
                            const ExchangeOracle* exchange,
                            const std::string& scheme_name,
                            bool want_timeline, obs::Trace* trace) {
  BuildOutput built = compile(spec, programs, exchange);
  const sim::ExecResult exec = sim::execute(*built.graph);
  if (trace != nullptr) *trace = obs::trace_from_sim(*built.graph, exec);
  return assemble_result(spec, built, exec, scheme_name, want_timeline);
}

ScheduleResult run_pipeline_faulted(const PipelineSpec& spec,
                                    const std::vector<DeviceProgram>& programs,
                                    const ExchangeOracle* exchange,
                                    const std::string& scheme_name,
                                    const fault::FaultPlan& faults,
                                    fault::FaultReport* report,
                                    bool want_timeline, obs::Trace* trace) {
  {
    const std::vector<fault::PlanIssue> issues =
        fault::validate(faults, spec.p);
    SLIM_CHECK(issues.empty(),
               "invalid fault plan:\n" + fault::render(issues));
  }
  // The trace wants the structured fault events even when the caller did
  // not ask for a report.
  fault::FaultReport local_report;
  if (trace != nullptr && report == nullptr) report = &local_report;
  BuildOutput built = compile(spec, programs, exchange);
  const double injected =
      fault::apply_to_graph(*built.graph, faults, report);
  const sim::ExecResult exec = sim::execute(*built.graph);
  if (trace != nullptr) *trace = obs::trace_from_sim(*built.graph, exec);
  ScheduleResult result =
      assemble_result(spec, built, exec, scheme_name, want_timeline);
  const double recovery =
      fault::recovery_overhead(*built.graph, exec, faults, report);
  if (trace != nullptr && report != nullptr) {
    obs::append_fault_events(*trace, report->events);
  }
  result.fault_injected_seconds = injected;
  result.fault_recovery_seconds = recovery;
  result.iteration_time += recovery;
  // MFU degrades with the effective iteration time.
  result.mfu *= exec.makespan / result.iteration_time;
  return result;
}

}  // namespace slim::sched
