// Tests for the hybrid-parallelism configuration rules and the grid search
// (the machinery behind Figure 12's per-cell "best configuration" and its
// failure markers).

#include <gtest/gtest.h>

#include "src/parallel/config.hpp"
#include "src/parallel/search.hpp"

namespace slim::parallel {
namespace {

constexpr std::int64_t kMi = 1024 * 1024;

HybridConfig base_config() {
  HybridConfig cfg;
  cfg.t = 8;
  cfg.c = 1;
  cfg.d = 2;
  cfg.p = 8;
  cfg.scheme = core::Scheme::OneF1B;
  return cfg;
}

TEST(ConfigTest, WorldSizeMustMatch) {
  const auto cfg = base_config();  // world = 128
  const auto llama = model::llama13b();
  EXPECT_TRUE(validate(cfg, llama, 128, 64 * 1024, 4 * kMi).empty());
  EXPECT_FALSE(validate(cfg, llama, 256, 64 * 1024, 4 * kMi).empty());
}

TEST(ConfigTest, TpBoundedByHeadsAndNode) {
  auto cfg = base_config();
  cfg.t = 16;
  cfg.d = 1;
  const auto llama = model::llama13b();
  EXPECT_NE(validate(cfg, llama, 128, 64 * 1024, 4 * kMi).find("NVLink"),
            std::string::npos);
  // Llama 70B has 8 KV heads; t=16 would split them below 1.
  auto cfg2 = base_config();
  cfg2.t = 8;
  EXPECT_TRUE(validate(cfg2, model::llama70b(), 128, 64 * 1024, 4 * kMi)
                  .empty());
}

TEST(ConfigTest, LayerDivisibility) {
  auto cfg = base_config();
  cfg.p = 3;  // 40 layers % 3 != 0
  cfg.d = 2;
  cfg.t = 8;
  cfg.c = 1;
  const std::string err =
      validate(cfg, model::llama13b(), 48, 64 * 1024, 4 * kMi);
  EXPECT_NE(err.find("layers"), std::string::npos);
}

TEST(ConfigTest, ExpertParallelRules) {
  auto cfg = base_config();
  cfg.e = 4;
  EXPECT_NE(validate(cfg, model::llama13b(), 128, 64 * 1024, 4 * kMi)
                .find("dense"),
            std::string::npos);
  auto moe = base_config();
  moe.t = 1;
  moe.c = 8;
  moe.d = 2;
  moe.p = 8;
  moe.e = 8;
  EXPECT_TRUE(
      validate(moe, model::mixtral8x7b(), 128, 64 * 1024, 4 * kMi).empty());
  moe.e = 3;
  EXPECT_FALSE(
      validate(moe, model::mixtral8x7b(), 128, 64 * 1024, 4 * kMi).empty());
}

TEST(ConfigTest, MicrobatchArithmetic) {
  auto cfg = base_config();
  EXPECT_EQ(cfg.microbatches(64 * 1024, 4 * kMi), 32);
  EXPECT_EQ(cfg.microbatches(512 * 1024, 4 * kMi), 4);
  // Batch smaller than DP.
  cfg.d = 16;
  cfg.p = 1;
  EXPECT_EQ(cfg.microbatches(512 * 1024, 4 * kMi), 0);
}

TEST(ConfigTest, InterleavedNeedsDivisibleMicrobatches) {
  auto cfg = base_config();
  cfg.scheme = core::Scheme::Interleaved1F1B;
  cfg.v = 2;
  cfg.d = 2;
  // m = 4M / (512K * 2) = 4; p = 8 -> 4 % 8 != 0.
  const std::string err =
      validate(cfg, model::llama13b(), 128, 512 * 1024, 4 * kMi);
  EXPECT_NE(err.find("divisible by p"), std::string::npos);
}

TEST(ConfigTest, SlimPipeSliceRules) {
  auto cfg = base_config();
  cfg.scheme = core::Scheme::SlimPipe;
  cfg.n = 12;  // not a multiple of p=8
  EXPECT_FALSE(
      validate(cfg, model::llama13b(), 128, 64 * 1024, 4 * kMi).empty());
  cfg.n = 16;
  EXPECT_TRUE(
      validate(cfg, model::llama13b(), 128, 64 * 1024, 4 * kMi).empty());
}

TEST(ConfigTest, DescribeMentionsKnobs) {
  auto cfg = base_config();
  cfg.scheme = core::Scheme::SlimPipe;
  cfg.n = 16;
  cfg.v = 2;
  cfg.offload_ratio = 0.75;
  const std::string s = cfg.describe();
  EXPECT_NE(s.find("SlimPipe"), std::string::npos);
  EXPECT_NE(s.find("n=16"), std::string::npos);
  EXPECT_NE(s.find("offload=75%"), std::string::npos);
}

TEST(EstimateTest, MemoryTracksSimulation) {
  // The analytic estimate should be within ~35% of the simulated peak for
  // a typical configuration (it filters, the simulator decides).
  auto cfg = base_config();
  cfg.scheme = core::Scheme::OneF1B;
  cfg.d = 2;
  const auto llama = model::llama13b();
  const auto gpu = model::hopper80();
  const double est = estimate_peak_memory(cfg, llama, gpu, 64 * 1024, 4 * kMi);
  auto spec = make_spec(cfg, llama, gpu, 64 * 1024, 4 * kMi);
  const auto r = core::run_scheme(core::Scheme::OneF1B, spec);
  EXPECT_NEAR(est, r.peak_memory, 0.35 * r.peak_memory);
}

TEST(EstimateTest, TimeOrdersPolicies) {
  auto cfg = base_config();
  const auto llama = model::llama13b();
  const auto gpu = model::hopper80();
  auto with_policy = [&](model::CheckpointPolicy p) {
    auto c = cfg;
    c.policy = p;
    return estimate_iteration_time(c, llama, gpu, 64 * 1024, 4 * kMi);
  };
  EXPECT_LT(with_policy(model::CheckpointPolicy::None),
            with_policy(model::CheckpointPolicy::Selective));
  EXPECT_LT(with_policy(model::CheckpointPolicy::Selective),
            with_policy(model::CheckpointPolicy::Full));
}

TEST(GridSearchTest, FindsConfigForEveryScheme) {
  const auto llama = model::llama13b();
  const auto gpu = model::hopper80();
  for (const auto scheme :
       {core::Scheme::OneF1B, core::Scheme::Interleaved1F1B,
        core::Scheme::SlimPipe}) {
    const SearchResult r =
        grid_search(llama, gpu, 64, 64 * 1024, 4 * kMi, scheme);
    EXPECT_EQ(r.status, SearchStatus::Ok) << core::scheme_name(scheme);
    EXPECT_GT(r.result.mfu, 0.1);
    EXPECT_FALSE(r.result.oom);
  }
}

TEST(GridSearchTest, SlimPipeWinsLongContext) {
  // The headline comparison: long context, fixed iteration tokens.
  const auto llama = model::llama70b();
  const auto gpu = model::hopper80();
  const auto slim = grid_search(llama, gpu, 128, 512 * 1024, 4 * kMi,
                                core::Scheme::SlimPipe);
  const auto mega = grid_search(llama, gpu, 128, 512 * 1024, 4 * kMi,
                                core::Scheme::Interleaved1F1B);
  ASSERT_EQ(slim.status, SearchStatus::Ok);
  if (mega.status == SearchStatus::Ok) {
    EXPECT_GT(slim.result.mfu, mega.result.mfu);
  }
}

TEST(GridSearchTest, ReportsOomWhenNothingFits) {
  // Llama 149B on 8 GPUs at long context cannot fit under any layout.
  const auto big = model::llama149b();
  const auto gpu = model::hopper80();
  const SearchResult r = grid_search(big, gpu, 8, 512 * 1024, 512 * 1024,
                                     core::Scheme::OneF1B);
  EXPECT_NE(r.status, SearchStatus::Ok);
}

TEST(MaxContextTest, SlimPipeExceedsClassicSchemes) {
  // Figure 2's qualitative statement.
  const auto llama = model::llama7b();
  const auto gpu = model::hopper80();
  const std::int64_t gran = 32 * 1024, cap = 2048 * 1024;
  const std::int64_t f1b = max_supported_context(
      core::Scheme::OneF1B, llama, gpu, 8, 8, gran, cap);
  const std::int64_t slim = max_supported_context(
      core::Scheme::SlimPipe, llama, gpu, 8, 8, gran, cap);
  EXPECT_GT(f1b, 0);
  EXPECT_GT(slim, 2 * f1b);
}

}  // namespace
}  // namespace slim::parallel
