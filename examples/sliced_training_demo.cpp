// Numerical demonstration that SlimPipe's schedule computes *exactly* the
// same training step as monolithic execution: a real (CPU) transformer is
// trained on a copy task twice — once conventionally, once slice-by-slice
// with a chunked KV cache, LIFO backward and a sharded-vocabulary loss —
// and the losses/gradients coincide to float precision while the sliced
// run's peak activation footprint is a fraction of the monolithic one.

#include <cstdio>
#include <vector>

#include "src/numerics/transformer_block.hpp"
#include "src/util/rng.hpp"

using namespace slim;
using num::BlockDims;
using num::TinyModel;

int main() {
  Rng rng(2024);
  const BlockDims dims{64, 8, 4, 128};  // GQA: 8 heads, 4 KV heads
  const std::int64_t vocab = 96;
  const int seq = 48;
  TinyModel model(dims, vocab, 3, rng);

  // A simple induction task: predict the previous token.
  Rng data_rng(7);
  std::vector<std::int64_t> tokens, targets;
  for (int i = 0; i < seq; ++i) {
    tokens.push_back(static_cast<std::int64_t>(data_rng.next_below(96)));
  }
  targets.push_back(tokens[0]);
  for (int i = 1; i < seq; ++i) targets.push_back(tokens[i - 1]);

  std::printf("TinyModel: h=%lld heads=%lld (GQA %lld) ffn=%lld layers=3 "
              "vocab=%lld, sequence %d tokens\n\n",
              static_cast<long long>(dims.hidden),
              static_cast<long long>(dims.heads),
              static_cast<long long>(dims.kv_heads),
              static_cast<long long>(dims.ffn),
              static_cast<long long>(vocab), seq);

  // Reference: monolithic step.
  auto ref_grads = model.zero_grads();
  const double ref_loss = model.train_step(tokens, targets, 1, ref_grads);
  std::printf("monolithic step:                loss = %.6f\n", ref_loss);

  // SlimPipe-style steps: uniform slices, chunked KV cache, LIFO backward,
  // vocabulary sharded across "pipeline devices".
  for (const auto& [slices, shards] : {std::pair{4, 1}, {8, 4}, {12, 6}}) {
    auto grads = model.zero_grads();
    const double loss =
        model.train_step(tokens, targets, slices, grads, shards);
    const float grad_diff = ref_grads.max_abs_diff(grads);
    std::printf("sliced step (n=%2d, vocab/%d):   loss = %.6f   "
                "max |grad diff| = %.2e\n",
                slices, shards, loss, static_cast<double>(grad_diff));
  }

  std::printf(
      "\nThe slice-streamed online-softmax attention, LIFO KV-gradient\n"
      "accumulation and sharded-vocabulary cross-entropy reproduce the\n"
      "monolithic gradients bit-for-bit (up to float accumulation order) —\n"
      "the functional core that lets SlimPipe slice sequences at all.\n");
  return 0;
}
