// Long-context planner: given a model and a GPU budget, grid-search the
// hybrid parallelism configuration (t, c, d, e, p, v, n, checkpointing,
// offload) that maximizes MFU at each context length — the workflow a
// practitioner runs before launching a long-context training job.
//
// Usage:
//   ./build/examples/long_context_planner [model] [gpus]
//   model: 7b | 13b | 70b | 149b | 8x7b | 8x22b   (default 70b)
//   gpus:  e.g. 128                                (default 128)

#include <cstdio>
#include <cstdlib>
#include <string>

#include "src/parallel/pareto.hpp"
#include "src/parallel/search.hpp"
#include "src/util/table.hpp"
#include "src/util/units.hpp"

using namespace slim;

namespace {

model::TransformerConfig pick_model(const std::string& name) {
  if (name == "7b") return model::llama7b();
  if (name == "13b") return model::llama13b();
  if (name == "70b") return model::llama70b();
  if (name == "149b") return model::llama149b();
  if (name == "8x7b") return model::mixtral8x7b();
  if (name == "8x22b") return model::mixtral8x22b();
  std::fprintf(stderr, "unknown model '%s'\n", name.c_str());
  std::exit(1);
}

}  // namespace

int main(int argc, char** argv) {
  const std::string model_name = argc > 1 ? argv[1] : "70b";
  const int gpus = argc > 2 ? std::atoi(argv[2]) : 128;
  const auto cfg = pick_model(model_name);
  const auto gpu = model::hopper80();
  const std::int64_t tokens = 4 * 1024 * 1024;

  std::printf("Planning %s on %d Hopper GPUs, 4M tokens/iteration\n\n",
              cfg.name.c_str(), gpus);

  parallel::SearchOptions opts;
  opts.simulate_top_k = 5;
  opts.offload_ratios = {0.0, 0.5, 0.9};

  Table table({"context", "status", "MFU", "iteration", "peak mem",
               "best configuration"});
  for (std::int64_t seq = 64 * 1024; seq <= 2048 * 1024; seq *= 2) {
    const auto r = parallel::grid_search(cfg, gpu, gpus, seq, tokens,
                                         core::Scheme::SlimPipe, opts);
    if (r.status == parallel::SearchStatus::Ok) {
      table.add_row({format_context(seq), "ok", format_percent(r.result.mfu),
                     format_time(r.result.iteration_time),
                     format_bytes(r.result.peak_memory),
                     r.best.describe()});
    } else {
      table.add_row({format_context(seq), parallel::to_string(r.status), "-",
                     "-", "-", r.note});
    }
  }
  std::printf("%s\n", table.to_string().c_str());

  // Rematerialization Pareto frontier (Yuan et al. [48]) for the 256K
  // layout: how checkpointing and offloading trade memory for time.
  const auto probe = parallel::grid_search(cfg, gpu, gpus, 256 * 1024, tokens,
                                           core::Scheme::SlimPipe, opts);
  if (probe.status == parallel::SearchStatus::Ok) {
    std::printf("Checkpoint/offload Pareto points at 256K for [%s]:\n",
                probe.best.describe().c_str());
    for (const auto& point : parallel::checkpoint_pareto(
             probe.best, cfg, gpu, 256 * 1024, tokens)) {
      std::printf("  %s %s\n", point.on_frontier ? "*" : " ",
                  point.describe().c_str());
    }
    std::printf("  (* = Pareto-efficient)\n\n");
  }
  std::printf(
      "Tip: compare against the Megatron-LM baseline with "
      "bench_fig12_end_to_end, or probe a single configuration with the "
      "quickstart example.\n");
  return 0;
}
