#include "src/analysis/findings.hpp"

#include <sstream>

#include "src/util/table.hpp"

namespace slim::analysis {

const char* severity_name(Severity severity) {
  switch (severity) {
    case Severity::Note: return "note";
    case Severity::Warning: return "warning";
    case Severity::Error: return "error";
  }
  return "?";
}

bool has_errors(const std::vector<Finding>& findings) {
  for (const Finding& f : findings) {
    if (f.severity == Severity::Error) return true;
  }
  return false;
}

std::size_t count(const std::vector<Finding>& findings, Severity severity) {
  std::size_t total = 0;
  for (const Finding& f : findings) total += f.severity == severity ? 1 : 0;
  return total;
}

bool has_rule(const std::vector<Finding>& findings,
              const std::string& rule_id) {
  for (const Finding& f : findings) {
    if (f.rule_id == rule_id) return true;
  }
  return false;
}

std::string render(const std::vector<Finding>& findings) {
  Table table({"severity", "rule", "location", "message"});
  for (const Finding& f : findings) {
    table.add_row({severity_name(f.severity), f.rule_id, f.location,
                   f.message});
  }
  return table.to_string();
}

std::string summary(const std::vector<Finding>& findings) {
  if (findings.empty()) return "clean";
  std::ostringstream out;
  out << findings.size() << " finding" << (findings.size() == 1 ? "" : "s")
      << " (" << count(findings, Severity::Error) << " errors, "
      << count(findings, Severity::Warning) << " warnings)";
  return out.str();
}

}  // namespace slim::analysis
