#pragma once

// Measured-vs-analytical footprint reconciliation.
//
// The analytical side (mem::replay_memory over a simulated schedule) books
// model-scale bytes per slice; the measured side (num::ArenaStats sinks
// under the threaded runtime) observes substrate-scale bytes per slice. The
// two live on different byte scales but share one invariant: how many
// slice-units of a category are simultaneously live at the peak. Each side
// divides its peak by its own per-slice unit size and the quotients must
// agree within a small tolerance (sub-slice bookkeeping differences — e.g.
// rounding, small per-slice metadata — stay below one unit).

#include <functional>
#include <string>
#include <vector>

#include "src/core/slice_layout.hpp"
#include "src/memory/tracker.hpp"

namespace slim::mem {

/// Mean per-slice unit bytes across every (microbatch, slice) of `layouts`:
/// evaluates `bytes_of_len` at each slice length and averages. With uniform
/// layouts this collapses to bytes_of_len(slice_len); with variable-length
/// slices it is the normalizer that keeps peak-over-unit quotients in slice
/// units (the simulator's memory certificate applies the same mean-token
/// normalization on the analytical side).
double mean_slice_unit_bytes(
    const std::vector<core::SliceLayout>& layouts,
    const std::function<double(std::int64_t)>& bytes_of_len);

/// One measured per-category peak from a runtime arena sink, paired with
/// the per-slice unit sizes that convert both sides into slice units.
struct MeasuredPeak {
  int device = 0;
  int category = 0;               // mem::Category the entry compares
  double measured_bytes = 0.0;    // arena-measured high-water mark
  double measured_unit_bytes = 0.0;    // measured bytes one slice retains
  double analytical_unit_bytes = 0.0;  // analytical bytes one slice books
};

struct ReconcileEntry {
  int device = 0;
  int category = 0;
  double measured_units = 0.0;
  double analytical_units = 0.0;
  double deviation_units = 0.0;  // |measured - analytical|
  bool ok = false;
};

struct ReconcileReport {
  std::vector<ReconcileEntry> entries;
  double unit_tolerance = 0.0;

  bool ok() const;
  std::string summary() const;
};

/// Converts each side's peak into slice units and compares within
/// `unit_tolerance` units. `analytical` supplies the per-device,
/// per-category replayed peaks; one entry is produced per MeasuredPeak.
/// Entries whose unit size is zero on either side cannot be normalized and
/// are reported as failures (deviation = infinity) rather than skipped.
ReconcileReport reconcile_peaks(const MemoryReport& analytical,
                                const std::vector<MeasuredPeak>& measured,
                                double unit_tolerance);

}  // namespace slim::mem
