#pragma once

// Memory/runtime Pareto exploration over activation-rematerialization
// strategies (checkpoint policy x offload ratio) for a fixed hybrid
// parallelism layout — the instrument of Yuan et al. [48], which the paper
// builds on for its offloading and checkpointing decisions (§2.3, §6.5):
// "the strategy is developed by training models along the Pareto frontier,
// optimizing the trade-off between memory consumption and runtime".

#include <vector>

#include "src/parallel/config.hpp"

namespace slim::parallel {

struct ParetoPoint {
  model::CheckpointPolicy policy = model::CheckpointPolicy::None;
  double offload_ratio = 0.0;
  double peak_memory = 0.0;     // bytes
  double iteration_time = 0.0;  // seconds
  double mfu = 0.0;
  bool oom = false;
  bool on_frontier = false;

  std::string describe() const;
};

/// Simulates every (policy, offload) combination of `base`'s layout and
/// marks the Pareto-efficient points (no other point has both lower memory
/// and lower time).
std::vector<ParetoPoint> checkpoint_pareto(
    const HybridConfig& base, const model::TransformerConfig& model,
    const model::GpuSpec& gpu, std::int64_t seq, std::int64_t tokens_per_iter,
    const std::vector<double>& offload_ratios = {0.0, 0.25, 0.5, 0.75, 0.9});

/// Non-dominated subset of arbitrary points, sorted by memory ascending.
std::vector<ParetoPoint> pareto_frontier(std::vector<ParetoPoint> points);

}  // namespace slim::parallel
