#pragma once

// Rotary position embeddings: pairwise rotation of feature dimensions with
// position-dependent angles. The backward rotation is the inverse rotation,
// so RoPE needs no stored activations.

#include <cstdint>

#include "src/numerics/tensor.hpp"

namespace slim::num {

inline constexpr float kRopeBase = 10000.0f;

/// Rotates each row of `x` (shape s x d, d even) in place for global
/// positions [pos_offset, pos_offset + s).
void rope_apply(Tensor& x, std::int64_t pos_offset);

/// Gradient: rotate `dx` by the negative angles (in place).
void rope_apply_bwd(Tensor& dx, std::int64_t pos_offset);

}  // namespace slim::num
