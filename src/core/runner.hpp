#pragma once

// Public façade: run any pipeline scheme on a spec and compare schemes.
// This is the main entry point a downstream user of the library calls.

#include <string>
#include <vector>

#include "src/sched/schedule.hpp"

namespace slim::core {

enum class Scheme : int {
  GPipe,
  TeraPipe,
  OneF1B,
  Interleaved1F1B,
  ZBV,
  VHalf,
  VMin,
  SlimPipe,
};

const char* scheme_name(Scheme scheme);
std::vector<Scheme> all_schemes();

/// Runs one simulated training iteration under the given scheme.
/// Scheme-specific knobs on the spec (layout, retain_kv, ...) are
/// normalized by the scheme's runner; schedule-relevant ones (p, v, n, m,
/// policy, vocab_parallel, context_exchange) are honored where the scheme
/// supports them.
sched::ScheduleResult run_scheme(Scheme scheme, sched::PipelineSpec spec,
                                 bool want_timeline = false);

}  // namespace slim::core
