# Empty compiler generated dependencies file for slim_numerics.
# This may be replaced when dependencies are built.
