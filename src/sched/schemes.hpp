#pragma once

// Baseline pipeline schemes (paper §2.2, Table 2):
//   GPipe            — microbatch-granular, all-forward-then-all-backward
//   TeraPipe         — slice-granular, GPipe-style accumulation
//   PipeDream-Flush  — the default 1F1B schedule
//   Interleaved 1F1B — Megatron-LM's multi-chunk variant
//   ZB-V / V-Half    — zero-bubble schedules with split backward
//
// Each scheme has a program generator (pure ordering) and a runner that
// normalizes the spec's scheme-determined knobs and simulates an iteration.

#include <vector>

#include "src/sched/builder.hpp"
#include "src/sched/schedule.hpp"

namespace slim::sched {

std::vector<DeviceProgram> gpipe_programs(const PipelineSpec& spec);
std::vector<DeviceProgram> terapipe_programs(const PipelineSpec& spec);
std::vector<DeviceProgram> onef1b_programs(const PipelineSpec& spec);
std::vector<DeviceProgram> interleaved_programs(const PipelineSpec& spec);

/// ZB-V greedy constructive schedule; `memory_cap_units` bounds live
/// stage-activation units (2p for ZB-V, p/2 + 2 for V-Half).
std::vector<DeviceProgram> zbv_programs(const PipelineSpec& spec,
                                        double memory_cap_units);

/// Runners: normalize spec knobs for the scheme, then simulate.
ScheduleResult run_gpipe(PipelineSpec spec, bool want_timeline = false);
ScheduleResult run_terapipe(PipelineSpec spec, bool want_timeline = false);
ScheduleResult run_onef1b(PipelineSpec spec, bool want_timeline = false);
ScheduleResult run_interleaved(PipelineSpec spec, bool want_timeline = false);
ScheduleResult run_zbv(PipelineSpec spec, bool want_timeline = false);
ScheduleResult run_vhalf(PipelineSpec spec, bool want_timeline = false);
ScheduleResult run_vmin(PipelineSpec spec, bool want_timeline = false);

}  // namespace slim::sched
