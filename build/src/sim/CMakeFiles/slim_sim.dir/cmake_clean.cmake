file(REMOVE_RECURSE
  "CMakeFiles/slim_sim.dir/executor.cpp.o"
  "CMakeFiles/slim_sim.dir/executor.cpp.o.d"
  "CMakeFiles/slim_sim.dir/graph.cpp.o"
  "CMakeFiles/slim_sim.dir/graph.cpp.o.d"
  "CMakeFiles/slim_sim.dir/topology.cpp.o"
  "CMakeFiles/slim_sim.dir/topology.cpp.o.d"
  "CMakeFiles/slim_sim.dir/trace.cpp.o"
  "CMakeFiles/slim_sim.dir/trace.cpp.o.d"
  "libslim_sim.a"
  "libslim_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/slim_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
