file(REMOVE_RECURSE
  "CMakeFiles/slimpipe_sim.dir/slimpipe_sim.cpp.o"
  "CMakeFiles/slimpipe_sim.dir/slimpipe_sim.cpp.o.d"
  "slimpipe_sim"
  "slimpipe_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/slimpipe_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
