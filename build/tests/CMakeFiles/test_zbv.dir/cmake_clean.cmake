file(REMOVE_RECURSE
  "CMakeFiles/test_zbv.dir/test_zbv.cpp.o"
  "CMakeFiles/test_zbv.dir/test_zbv.cpp.o.d"
  "test_zbv"
  "test_zbv.pdb"
  "test_zbv[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_zbv.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
