# Empty compiler generated dependencies file for slim_util.
# This may be replaced when dependencies are built.
