// Numerics-kernel throughput on the shared parallel engine
// (src/util/thread_pool.hpp). For each hot kernel the bench sweeps the
// pool width in-process (ThreadPool::set_threads), reporting GFLOP/s,
// speedup over the serial run, and — the engine's contract — whether the
// output is bit-identical to the 1-thread result at every width.
//
// SLIMPIPE_BENCH_SMOKE=1 shrinks the shapes so the sweep finishes in
// seconds (the `perf`-labelled ctest smoke uses it); the full shapes
// include the 1024^3 matmul the roadmap's speedup target is quoted on.

#include "bench_common.hpp"

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <functional>
#include <thread>
#include <vector>

#include "src/numerics/arena.hpp"
#include "src/numerics/cross_entropy.hpp"
#include "src/numerics/norm_act.hpp"
#include "src/numerics/tensor.hpp"
#include "src/numerics/transformer_block.hpp"
#include "src/util/rng.hpp"
#include "src/util/thread_pool.hpp"
#include "src/util/units.hpp"

using namespace slim;
using num::Tensor;

namespace {

bool g_all_identical = true;

bool smoke_mode() {
  const char* env = std::getenv("SLIMPIPE_BENCH_SMOKE");
  return env != nullptr && env[0] != '\0' && env[0] != '0';
}

double seconds_of(const std::function<void()>& fn) {
  const auto start = std::chrono::steady_clock::now();
  fn();
  const auto stop = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(stop - start).count();
}

std::vector<int> sweep_widths() {
  const int hw = static_cast<int>(std::thread::hardware_concurrency());
  std::vector<int> widths = {1, 2, 4, 8};
  if (hw > 1) {
    bool present = false;
    for (int w : widths) present = present || w == hw;
    if (!present) widths.push_back(hw);
  }
  return widths;
}

/// Runs `fn` (which returns the kernel output) at every pool width,
/// appending one table row per width with GFLOP/s, speedup over the
/// 1-thread time, heap-allocation count, peak workspace bytes, and the
/// bit-identity verdict against the 1-thread output. Workspace peak is the
/// high-water mark across every thread's scratch arena during the call;
/// allocs counts Tensor heap buffers the call churned.
void sweep_kernel(Table& table, const std::string& kernel, double gflop,
                  const std::function<Tensor()>& fn) {
  util::ThreadPool& pool = util::ThreadPool::global();
  const int restore = pool.max_threads();
  double serial_time = 0.0;
  Tensor serial_out;
  for (int width : sweep_widths()) {
    pool.set_threads(width);
    Tensor out;
    num::workspace_stats().reset();
    const std::int64_t heap_before = num::tensor_heap_allocs();
    const double time = seconds_of([&] { out = fn(); });
    const std::int64_t heap_allocs = num::tensor_heap_allocs() - heap_before;
    const std::int64_t peak_ws = num::workspace_stats().total_peak_bytes();
    if (width == 1) {
      serial_time = time;
      serial_out = out;
    }
    const bool identical = out.max_abs_diff(serial_out) == 0.0f;
    g_all_identical = g_all_identical && identical;
    char gflops[32], speedup[32];
    std::snprintf(gflops, sizeof gflops, "%.2f", gflop / time);
    std::snprintf(speedup, sizeof speedup, "%.2fx", serial_time / time);
    table.add_row({kernel, std::to_string(width), format_time(time), gflops,
                   speedup, std::to_string(heap_allocs),
                   format_bytes(static_cast<double>(peak_ws)),
                   identical ? "yes" : "NO"});
  }
  pool.set_threads(restore);
}

}  // namespace

static void BM_Matmul(benchmark::State& state) {
  const std::int64_t n = state.range(0);
  Rng rng(7);
  const Tensor a = Tensor::randn(n, n, rng);
  const Tensor b = Tensor::randn(n, n, rng);
  for (auto _ : state) benchmark::DoNotOptimize(num::matmul(a, b));
}
BENCHMARK(BM_Matmul)->Arg(128)->Arg(512)->Unit(benchmark::kMillisecond);

int main(int argc, char** argv) {
  slimbench::open_report("numerics_kernels");
  const bool smoke = smoke_mode();
  slimbench::print_banner(
      "numerics kernels on the parallel engine",
      smoke ? "smoke shapes (SLIMPIPE_BENCH_SMOKE)" : "full shapes",
      "near-linear speedup until memory bandwidth saturates; outputs "
      "bit-identical at every thread count (the determinism contract)");

  Rng rng(7);
  Table table({"kernel", "threads", "time", "GFLOP/s", "speedup", "allocs",
               "peak ws", "bit-identical"});

  // --- matmul: the roadmap's speedup target is quoted on 1024^3 ---
  {
    const std::int64_t n = smoke ? 128 : 1024;
    const Tensor a = Tensor::randn(n, n, rng);
    const Tensor b = Tensor::randn(n, n, rng);
    const double gflop = 2.0 * static_cast<double>(n) * n * n * 1e-9;
    sweep_kernel(table, "matmul " + std::to_string(n) + "^3", gflop,
                 [&] { return num::matmul(a, b); });
    sweep_kernel(table, "matmul_nt " + std::to_string(n) + "^3", gflop,
                 [&] { return num::matmul_nt(a, b); });
    sweep_kernel(table, "matmul_tn " + std::to_string(n) + "^3", gflop,
                 [&] { return num::matmul_tn(a, b); });
  }

  // --- rmsnorm over a long activation slab ---
  {
    const std::int64_t rows = smoke ? 256 : 8192, cols = smoke ? 128 : 1024;
    const Tensor x = Tensor::randn(rows, cols, rng);
    Tensor w(1, cols);
    w.fill(1.0f);
    const double gflop = 3.0 * static_cast<double>(rows) * cols * 1e-9;
    sweep_kernel(table, "rmsnorm", gflop, [&] { return num::rmsnorm(x, w); });
  }

  // --- transformer block forward (one slice; the runtime's unit of work) ---
  {
    num::BlockDims dims;
    dims.hidden = smoke ? 128 : 512;
    dims.heads = 8;
    dims.kv_heads = 4;
    dims.ffn = smoke ? 256 : 1536;
    const std::int64_t s = smoke ? 128 : 1024;
    num::Layer layer(dims, num::LayerWeights::random(dims, rng));
    const Tensor x = Tensor::randn(s, dims.hidden, rng);
    // Projections + FFN + attention (scores and values), approximately.
    const double gflop =
        (2.0 * s * dims.hidden *
             (2.0 * dims.hidden + 2.0 * dims.kv_hidden() + 3.0 * dims.ffn) +
         4.0 * s * s * dims.hidden) *
        1e-9;
    sweep_kernel(table, "block fwd", gflop, [&] {
      layer.reset();
      return layer.forward_slice(x, 0, 0);
    });
  }

  // --- cross entropy (the output head's loss kernel) ---
  {
    const std::int64_t tokens = smoke ? 256 : 4096;
    const std::int64_t vocab = smoke ? 512 : 8192;
    const Tensor logits = Tensor::randn(tokens, vocab, rng);
    std::vector<std::int64_t> targets(static_cast<std::size_t>(tokens));
    for (std::size_t t = 0; t < targets.size(); ++t) {
      targets[t] = static_cast<std::int64_t>(t) % vocab;
    }
    const double gflop = 5.0 * static_cast<double>(tokens) * vocab * 1e-9;
    sweep_kernel(table, "cross entropy", gflop,
                 [&] { return num::cross_entropy(logits, targets).dlogits; });
  }

  slimbench::print_table("kernel throughput vs pool width", table);

  // --- arena vs heap ownership: block fwd+bwd over two slices ---
  //
  // The heap row churns one allocation per retained tensor per slice; the
  // arena row routes all of them through one per-microbatch bump arena,
  // collapsing the churn to block-granular reservations. In smoke mode the
  // measured arena peaks also gate the process exit: each category's
  // high-water mark must match Layer::slice_footprint's prediction for the
  // peak slice count within 0.5 slice units (the reconciliation contract
  // tests/test_arena.cpp asserts at model scale).
  bool reconcile_ok = true;
  {
    num::BlockDims dims;
    dims.hidden = smoke ? 128 : 512;
    dims.heads = 8;
    dims.kv_heads = 4;
    dims.ffn = smoke ? 256 : 1536;
    const std::int64_t s = smoke ? 128 : 1024;
    const num::LayerWeights weights = num::LayerWeights::random(dims, rng);
    const Tensor x0 = Tensor::randn(s, dims.hidden, rng);
    const Tensor x1 = Tensor::randn(s, dims.hidden, rng);

    Table ownership({"ownership", "time", "heap allocs", "arena allocs",
                     "peak retained"});
    const auto run = [&](num::ArenaStats* stats, const char* label) {
      num::Layer layer(dims, weights);
      if (stats != nullptr) layer.set_arena_stats(stats);
      num::LayerGrads grads = num::LayerGrads::zeros(dims);
      const std::int64_t heap_before = num::tensor_heap_allocs();
      const std::int64_t arena_before = num::tensor_arena_allocs();
      std::int64_t peak_retained = 0;
      const double time = seconds_of([&] {
        const Tensor y0 = layer.forward_slice(x0, 0);
        const Tensor y1 = layer.forward_slice(x1, s);
        if (stats != nullptr) peak_retained = stats->total_peak_bytes();
        Tensor dy(y1.rows(), y1.cols());
        dy.fill(0.01f);
        layer.backward_slice(dy, grads);
        Tensor dy0(y0.rows(), y0.cols());
        dy0.fill(0.01f);
        layer.backward_slice(dy0, grads);
      });
      ownership.add_row(
          {label, format_time(time),
           std::to_string(num::tensor_heap_allocs() - heap_before),
           std::to_string(num::tensor_arena_allocs() - arena_before),
           stats != nullptr
               ? format_bytes(static_cast<double>(peak_retained))
               : std::string("-")});
    };
    run(nullptr, "heap");
    num::ArenaStats stats;
    run(&stats, "arena");
    slimbench::print_table("block fwd+bwd x2 slices: retained-tensor "
                           "ownership",
                           ownership);

    // Reconcile the measured peaks against the analytical footprint: two
    // slices live at the peak (both forwards done, no backward yet).
    const num::Layer probe(dims, weights);
    const auto fp = probe.slice_footprint(s);
    const double kPeakSlices = 2.0;
    const double kTolerance = 0.5;  // slice units
    const struct {
      const char* name;
      std::int64_t measured;
      std::int64_t unit;
    } checks[] = {
        {"activation", stats.peak_bytes(mem::kActivation),
         fp.activation_bytes},
        {"kv", stats.peak_bytes(mem::kKvCache), fp.kv_bytes},
        {"grads", stats.peak_bytes(mem::kGrads), fp.grad_bytes},
    };
    for (const auto& check : checks) {
      const double units = check.unit > 0
                               ? static_cast<double>(check.measured) /
                                     static_cast<double>(check.unit)
                               : -1.0;
      if (units < kPeakSlices - kTolerance ||
          units > kPeakSlices + kTolerance) {
        std::fprintf(stderr,
                     "FAIL: measured %s peak %lld bytes is %.3f slice units "
                     "(analytical prediction %.1f +- %.1f)\n",
                     check.name, static_cast<long long>(check.measured),
                     units, kPeakSlices, kTolerance);
        reconcile_ok = false;
      }
    }
  }

  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  if (!g_all_identical) {
    std::fprintf(stderr,
                 "FAIL: some kernel output was not bit-identical across "
                 "pool widths\n");
    return 1;
  }
  if (!reconcile_ok) return 1;
  return 0;
}
