#include "src/memory/tracker.hpp"

#include <algorithm>
#include <sstream>

#include "src/util/logging.hpp"
#include "src/util/units.hpp"

namespace slim::mem {

double MemoryReport::max_peak() const {
  double peak = 0.0;
  for (const DeviceMemory& dev : devices) peak = std::max(peak, dev.peak);
  return peak;
}

int MemoryReport::argmax_device() const {
  int best = 0;
  for (std::size_t d = 1; d < devices.size(); ++d) {
    if (devices[d].peak > devices[static_cast<std::size_t>(best)].peak) {
      best = static_cast<int>(d);
    }
  }
  return best;
}

std::string MemoryReport::summary() const {
  std::ostringstream out;
  for (std::size_t d = 0; d < devices.size(); ++d) {
    out << "device " << d << ": peak " << format_bytes(devices[d].peak);
    out << " (";
    bool first = true;
    for (int c = 0; c < kNumCategories; ++c) {
      if (devices[d].at_peak[static_cast<std::size_t>(c)] <= 0.0) continue;
      if (!first) out << ", ";
      first = false;
      out << category_name(c) << " "
          << format_bytes(devices[d].at_peak[static_cast<std::size_t>(c)]);
    }
    out << ")\n";
  }
  return out.str();
}

MemoryReport replay_memory(const sim::OpGraph& graph,
                           const sim::ExecResult& result, int num_devices) {
  return replay_memory(graph, result, num_devices, {});
}

MemoryReport replay_memory(const sim::OpGraph& graph,
                           const sim::ExecResult& result, int num_devices,
                           const std::vector<StaticFootprint>& baseline) {
  SLIM_CHECK(num_devices > 0, "num_devices must be positive");
  struct Event {
    double time;
    int device;
    int category;
    double bytes;
    int op_id;    // tie-break so same-time replays are order-independent
    int seq;      // delta index within the op (ops can carry several)
  };
  std::vector<Event> events;
  for (const sim::Op& op : graph.ops()) {
    const sim::OpTiming& t = result.timings[static_cast<std::size_t>(op.id)];
    int seq = 0;
    for (const sim::MemDelta& delta : op.mem) {
      events.push_back(Event{delta.at_end ? t.end : t.start, delta.device,
                             delta.category, delta.bytes,
                             static_cast<int>(op.id), seq++});
    }
  }
  // Sort by time with frees applied before allocations at equal timestamps
  // — matches a caching allocator that reuses the block freed by a backward
  // for the next forward. Same-time same-sign ties break on (op id, delta
  // index): the replay is a pure function of the graph, independent of the
  // order ops happen to be stored in.
  std::stable_sort(events.begin(), events.end(),
                   [](const Event& a, const Event& b) {
                     if (a.time != b.time) return a.time < b.time;
                     const bool a_free = a.bytes < 0.0, b_free = b.bytes < 0.0;
                     if (a_free != b_free) return a_free;
                     if (a.op_id != b.op_id) return a.op_id < b.op_id;
                     return a.seq < b.seq;
                   });

  MemoryReport report;
  report.devices.assign(static_cast<std::size_t>(num_devices), DeviceMemory{});
  std::vector<std::vector<double>> current(
      static_cast<std::size_t>(num_devices),
      std::vector<double>(kNumCategories, 0.0));
  std::vector<double> total(static_cast<std::size_t>(num_devices), 0.0);

  for (const StaticFootprint& base : baseline) {
    SLIM_CHECK(base.device >= 0 && base.device < num_devices,
               "baseline device out of range");
    SLIM_CHECK(base.category >= 0 && base.category < kNumCategories,
               "baseline category out of range");
    current[static_cast<std::size_t>(base.device)]
           [static_cast<std::size_t>(base.category)] += base.bytes;
    total[static_cast<std::size_t>(base.device)] += base.bytes;
  }
  for (int d = 0; d < num_devices; ++d) {
    DeviceMemory& dev = report.devices[static_cast<std::size_t>(d)];
    dev.peak = total[static_cast<std::size_t>(d)];
    dev.at_peak = current[static_cast<std::size_t>(d)];
    dev.category_peak = current[static_cast<std::size_t>(d)];
  }

  for (const Event& ev : events) {
    SLIM_CHECK(ev.device >= 0 && ev.device < num_devices,
               "memory event device out of range");
    SLIM_CHECK(ev.category >= 0 && ev.category < kNumCategories,
               "memory event category out of range");
    auto& cur = current[static_cast<std::size_t>(ev.device)];
    cur[static_cast<std::size_t>(ev.category)] += ev.bytes;
    total[static_cast<std::size_t>(ev.device)] += ev.bytes;
    DeviceMemory& dev = report.devices[static_cast<std::size_t>(ev.device)];
    dev.category_peak[static_cast<std::size_t>(ev.category)] =
        std::max(dev.category_peak[static_cast<std::size_t>(ev.category)],
                 cur[static_cast<std::size_t>(ev.category)]);
    if (total[static_cast<std::size_t>(ev.device)] > dev.peak) {
      dev.peak = total[static_cast<std::size_t>(ev.device)];
      dev.peak_time = ev.time;
      dev.at_peak = cur;
    }
  }
  for (int d = 0; d < num_devices; ++d) {
    report.devices[static_cast<std::size_t>(d)].end =
        total[static_cast<std::size_t>(d)];
  }
  return report;
}

}  // namespace slim::mem
