// slimpipe_sim — command-line front-end to the simulator.
//
// Simulate one training iteration of any pipeline scheme on any zoo model:
//
//   slimpipe_sim --model 70b --scheme slimpipe
//                --t 4 --c 2 --p 8 --v 5 --n 16 --m 4 --seq 262144
//                --ckpt none --offload 0.5 --timeline
//
// Or let the grid search pick the configuration:
//
//   slimpipe_sim --model 8x7b --scheme slimpipe --search --gpus 128
//                --seq 524288 --tokens 4194304
//
// Prints time / MFU / bubbles / memory; --timeline adds the ASCII schedule,
// --trace FILE dumps a Chrome trace.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iterator>
#include <memory>
#include <string>

#include "src/analysis/verify.hpp"
#include "src/core/context_exchange.hpp"
#include "src/core/runner.hpp"
#include "src/fault/fault_plan.hpp"
#include "src/ir/schedule_ir.hpp"
#include "src/obs/report.hpp"
#include "src/obs/trace.hpp"
#include "src/parallel/search.hpp"
#include "src/sched/builder.hpp"
#include "src/util/table.hpp"
#include "src/util/units.hpp"

using namespace slim;

namespace {

void usage() {
  std::printf(R"(usage: slimpipe_sim [options]

model / workload
  --model NAME       7b | 13b | 70b | 149b | 8x7b | 8x22b   (default 13b)
  --seq TOKENS       context length                          (default 131072)
  --m N              microbatches per iteration              (default 4)
  --tokens N         tokens per iteration (with --search)

scheme
  --scheme NAME      gpipe | terapipe | 1f1b | interleaved | zbv | vhalf |
                     vmin | slimpipe                         (default slimpipe)
  --t/--c/--e/--p N  tensor / context / expert / pipeline parallel sizes
  --d N              data parallel size (optimizer sharding) (default 1)
  --v N              stage chunks per device                 (default 1)
  --n N              slices per sequence (slimpipe/terapipe) (default p)
  --ckpt POLICY      none | selective | full                 (default none)
  --offload RATIO    activation offload fraction [0,1)       (default 0)
  --no-exchange      disable attention context exchange
  --adaptive         adaptive context exchange
  --no-vocab-par     keep the output layer on the last stage

modes
  --search           grid-search the configuration (needs --gpus, --tokens)
  --gpus N           world size for --search
  --timeline         print the ASCII schedule
  --trace FILE       write a Chrome trace JSON (chrome://tracing / Perfetto);
                     flow arrows link sends to receives, fault events appear
                     as instant markers
  --json FILE        write a slimpipe-bench-report JSON (slimpipe_report)
  --faults FILE      apply a fault plan (stragglers, link degradation,
                     crashes with checkpoint-restart) and print the report
  --schedule FILE    run an external tabular-IR schedule instead of a
                     built-in scheme (see slimpipe_lint --emit-ir). The IR
                     header supplies p/v/n/m/layout/...; the remaining
                     options shape the workload. The schedule only runs if
                     the static verifier certifies it clean (exit 3 when it
                     is rejected)
)");
}

model::TransformerConfig pick_model(const std::string& name) {
  if (name == "7b") return model::llama7b();
  if (name == "13b") return model::llama13b();
  if (name == "70b") return model::llama70b();
  if (name == "149b") return model::llama149b();
  if (name == "8x7b") return model::mixtral8x7b();
  if (name == "8x22b") return model::mixtral8x22b();
  std::fprintf(stderr, "unknown model '%s'\n", name.c_str());
  std::exit(1);
}

core::Scheme pick_scheme(const std::string& name) {
  if (name == "gpipe") return core::Scheme::GPipe;
  if (name == "terapipe") return core::Scheme::TeraPipe;
  if (name == "1f1b") return core::Scheme::OneF1B;
  if (name == "interleaved") return core::Scheme::Interleaved1F1B;
  if (name == "zbv") return core::Scheme::ZBV;
  if (name == "vhalf") return core::Scheme::VHalf;
  if (name == "vmin") return core::Scheme::VMin;
  if (name == "slimpipe") return core::Scheme::SlimPipe;
  std::fprintf(stderr, "unknown scheme '%s'\n", name.c_str());
  std::exit(1);
}

model::CheckpointPolicy pick_policy(const std::string& name) {
  if (name == "none") return model::CheckpointPolicy::None;
  if (name == "selective") return model::CheckpointPolicy::Selective;
  if (name == "full") return model::CheckpointPolicy::Full;
  std::fprintf(stderr, "unknown checkpoint policy '%s'\n", name.c_str());
  std::exit(1);
}

Table result_table(const sched::ScheduleResult& r) {
  Table table({"metric", "value"});
  table.add_row({"scheme", r.scheme});
  table.add_row({"iteration time", format_time(r.iteration_time)});
  if (r.fault_injected_seconds > 0.0 || r.fault_recovery_seconds > 0.0) {
    table.add_row({"fault slowdown injected",
                   format_time(r.fault_injected_seconds)});
    table.add_row({"crash recovery cost",
                   format_time(r.fault_recovery_seconds)});
  }
  table.add_row({"MFU", format_percent(r.mfu)});
  table.add_row({"bubble fraction", format_percent(r.bubble_fraction)});
  table.add_row({"peak memory", format_bytes(r.peak_memory)});
  table.add_row({"first device", format_bytes(r.first_device_memory)});
  table.add_row({"last device", format_bytes(r.last_device_memory)});
  if (r.exchange_bytes_max_device > 0) {
    table.add_row({"exchange volume (max device)",
                   format_bytes(r.exchange_bytes_max_device)});
  }
  table.add_row({"fits in device memory", r.oom ? "NO (OOM)" : "yes"});
  return table;
}

void print_result(const sched::ScheduleResult& r) {
  std::printf("%s", result_table(r).to_string().c_str());
}

/// Writes the run as a slimpipe-bench-report so slimpipe_sim output can be
/// rendered and diffed by slimpipe_report exactly like the bench reports.
bool write_json_report(const std::string& path,
                       const sched::ScheduleResult& r,
                       const std::string& model_name,
                       const std::string& scheme_label,
                       const std::string& setup) {
  obs::BenchReport report;
  report.name = "slimpipe_sim";
  report.artifact = "slimpipe_sim " + scheme_label + " / " + model_name;
  report.setup = setup;
  report.expectation = "single simulated iteration";
  report.add_series("result", result_table(r));
  report.runs.push_back(sched::to_run_record(r, scheme_label));
  return obs::write_report(report, path);
}

}  // namespace

int main(int argc, char** argv) {
  std::string model_name = "13b", scheme_name = "slimpipe", ckpt = "none";
  std::string trace_path, faults_path, json_path, schedule_path;
  std::int64_t seq = 131072, tokens = 0, t = 8, c = 1, e = 1, d = 1;
  int p = 4, v = 1, n = 0, m = 4, gpus = 0;
  double offload = 0.0;
  bool search = false, timeline = false, exchange = true, adaptive = false,
       vocab_parallel = true;

  for (int i = 1; i < argc; ++i) {
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", argv[i]);
        std::exit(1);
      }
      return argv[++i];
    };
    const std::string arg = argv[i];
    if (arg == "--model") model_name = next();
    else if (arg == "--scheme") scheme_name = next();
    else if (arg == "--seq") seq = std::atoll(next());
    else if (arg == "--tokens") tokens = std::atoll(next());
    else if (arg == "--t") t = std::atoll(next());
    else if (arg == "--c") c = std::atoll(next());
    else if (arg == "--e") e = std::atoll(next());
    else if (arg == "--d") d = std::atoll(next());
    else if (arg == "--p") p = std::atoi(next());
    else if (arg == "--v") v = std::atoi(next());
    else if (arg == "--n") n = std::atoi(next());
    else if (arg == "--m") m = std::atoi(next());
    else if (arg == "--gpus") gpus = std::atoi(next());
    else if (arg == "--ckpt") ckpt = next();
    else if (arg == "--offload") offload = std::atof(next());
    else if (arg == "--search") search = true;
    else if (arg == "--timeline") timeline = true;
    else if (arg == "--trace") trace_path = next();
    else if (arg == "--json") json_path = next();
    else if (arg == "--faults") faults_path = next();
    else if (arg == "--schedule") schedule_path = next();
    else if (arg == "--no-exchange") exchange = false;
    else if (arg == "--adaptive") adaptive = true;
    else if (arg == "--no-vocab-par") vocab_parallel = false;
    else if (arg == "--help" || arg == "-h") { usage(); return 0; }
    else {
      std::fprintf(stderr, "unknown option '%s'\n", arg.c_str());
      usage();
      return 1;
    }
  }

  const auto cfg = pick_model(model_name);
  const auto scheme = pick_scheme(scheme_name);
  const auto gpu = model::hopper80();

  if (search) {
    if (gpus <= 0 || tokens <= 0) {
      std::fprintf(stderr, "--search requires --gpus and --tokens\n");
      return 1;
    }
    parallel::SearchOptions opts;
    opts.simulate_top_k = 6;
    if (offload > 0.0) opts.offload_ratios = {0.0, offload};
    const auto r =
        parallel::grid_search(cfg, gpu, gpus, seq, tokens, scheme, opts);
    if (r.status != parallel::SearchStatus::Ok) {
      std::printf("search: %s (%s)\n", parallel::to_string(r.status),
                  r.note.c_str());
      return 2;
    }
    std::printf("best configuration: %s\n", r.best.describe().c_str());
    print_result(r.result);
    return 0;
  }

  sched::PipelineSpec spec;
  spec.cfg = cfg;
  spec.gpu = gpu;
  spec.shard = {t, c, e, 8};
  spec.policy = pick_policy(ckpt);
  spec.p = p;
  spec.v = v;
  spec.n = n > 0 ? n : (scheme == core::Scheme::SlimPipe ? p : 1);
  spec.m = m;
  spec.d = d;
  spec.seq = seq;
  spec.offload.ratio = offload;
  spec.offload.pcie_bandwidth = gpu.pcie_bandwidth;
  spec.vocab_parallel = vocab_parallel && scheme == core::Scheme::SlimPipe;
  spec.context_exchange = exchange;
  spec.adaptive_exchange = adaptive;

  try {
    sched::ScheduleResult r;
    fault::FaultReport report;
    fault::FaultPlan plan;
    const bool want_timeline = timeline;
    if (!faults_path.empty()) {
      std::ifstream in(faults_path);
      if (!in) {
        std::fprintf(stderr, "cannot read fault plan '%s'\n",
                     faults_path.c_str());
        return 1;
      }
      std::string text((std::istreambuf_iterator<char>(in)),
                       std::istreambuf_iterator<char>());
      plan = fault::parse_plan(text);
    }
    obs::Trace trace;
    obs::Trace* trace_out = trace_path.empty() ? nullptr : &trace;
    if (!schedule_path.empty()) {
      // External schedule: import, certify with the static verifier, then
      // run the table's programs through the same pipeline as the schemes.
      std::ifstream in(schedule_path);
      if (!in) {
        std::fprintf(stderr, "cannot read schedule '%s'\n",
                     schedule_path.c_str());
        return 1;
      }
      std::string text((std::istreambuf_iterator<char>(in)),
                       std::istreambuf_iterator<char>());
      const ir::ScheduleIR table = ir::import_text(text);
      spec = ir::apply_header(table, spec);
      const std::string err = spec.validate();
      if (!err.empty()) {
        std::fprintf(stderr, "%s: header yields an invalid spec: %s\n",
                     schedule_path.c_str(), err.c_str());
        return 3;
      }
      const analysis::VerifyResult verdict = analysis::verify_ir(table, spec);
      if (!verdict.ok()) {
        std::fprintf(stderr,
                     "%s: schedule rejected by the static verifier:\n%s",
                     schedule_path.c_str(),
                     analysis::render(verdict.findings).c_str());
        return 3;
      }
      const std::vector<sched::DeviceProgram> programs =
          ir::to_programs(table);
      std::unique_ptr<core::ExchangePlanner> planner;
      if (spec.context_exchange && spec.p > 1) {
        planner = std::make_unique<core::ExchangePlanner>(spec);
      }
      const std::string name =
          table.scheme.empty() ? std::string("external") : table.scheme;
      if (!faults_path.empty()) {
        r = sched::run_pipeline_faulted(spec, programs, planner.get(), name,
                                        plan, &report, want_timeline,
                                        trace_out);
      } else {
        r = sched::run_pipeline(spec, programs, planner.get(), name,
                                want_timeline, trace_out);
      }
    } else if (!trace_path.empty()) {
      // Tracing runs through plan_scheme + run_pipeline directly: the plan
      // mirrors the scheme runner's normalization exactly, and run_pipeline
      // fills the obs::Trace alongside the result — one run, any scheme.
      core::SchedulePlan sp = core::plan_scheme(scheme, spec);
      std::unique_ptr<core::ExchangePlanner> planner;
      if (sp.spec.context_exchange && sp.spec.p > 1) {
        planner = std::make_unique<core::ExchangePlanner>(sp.spec);
      }
      if (!faults_path.empty()) {
        r = sched::run_pipeline_faulted(sp.spec, sp.programs, planner.get(),
                                        core::scheme_name(scheme), plan,
                                        &report, want_timeline, &trace);
      } else {
        r = sched::run_pipeline(sp.spec, sp.programs, planner.get(),
                                core::scheme_name(scheme), want_timeline,
                                &trace);
      }
    } else if (!faults_path.empty()) {
      r = core::run_scheme_faulted(scheme, spec, plan, &report, want_timeline);
    } else {
      r = core::run_scheme(scheme, spec, want_timeline);
    }
    print_result(r);
    if (!faults_path.empty()) std::printf("\n%s", report.render().c_str());
    if (timeline) std::printf("\n%s", r.ascii_timeline.c_str());
    if (!trace_path.empty()) {
      std::ofstream out(trace_path);
      out << obs::chrome_trace_json(trace);
      std::printf("\nChrome trace written to %s\n", trace_path.c_str());
    }
    if (!json_path.empty()) {
      const std::string setup = model_name + " t=" + std::to_string(t) +
                                " p=" + std::to_string(p) +
                                " v=" + std::to_string(v) +
                                " n=" + std::to_string(spec.n) +
                                " m=" + std::to_string(m) +
                                " seq=" + std::to_string(seq);
      const std::string scheme_label =
          schedule_path.empty() ? core::scheme_name(scheme) : r.scheme;
      if (!write_json_report(json_path, r, model_name, scheme_label, setup)) {
        std::fprintf(stderr, "cannot write report '%s'\n", json_path.c_str());
        return 1;
      }
      std::printf("Report written to %s\n", json_path.c_str());
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "simulation failed: %s\n", e.what());
    return 2;
  }
  return 0;
}
