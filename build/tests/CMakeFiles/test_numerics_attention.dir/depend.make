# Empty dependencies file for test_numerics_attention.
# This may be replaced when dependencies are built.
