// Unit tests for the util library: integer helpers, formatting, tables and
// deterministic RNG.

#include <gtest/gtest.h>

#include <set>

#include "src/util/math.hpp"
#include "src/util/rng.hpp"
#include "src/util/table.hpp"
#include "src/util/units.hpp"

namespace slim {
namespace {

TEST(MathTest, CeilDiv) {
  EXPECT_EQ(ceil_div(0, 4), 0);
  EXPECT_EQ(ceil_div(1, 4), 1);
  EXPECT_EQ(ceil_div(4, 4), 1);
  EXPECT_EQ(ceil_div(5, 4), 2);
  EXPECT_EQ(ceil_div(8, 4), 2);
}

TEST(MathTest, RoundUp) {
  EXPECT_EQ(round_up(0, 8), 0);
  EXPECT_EQ(round_up(1, 8), 8);
  EXPECT_EQ(round_up(8, 8), 8);
  EXPECT_EQ(round_up(9, 8), 16);
}

TEST(MathTest, Divides) {
  EXPECT_TRUE(divides(4, 8));
  EXPECT_TRUE(divides(1, 7));
  EXPECT_FALSE(divides(3, 8));
  EXPECT_FALSE(divides(0, 8));
}

TEST(MathTest, PowerOfTwo) {
  EXPECT_TRUE(is_power_of_two(1));
  EXPECT_TRUE(is_power_of_two(64));
  EXPECT_FALSE(is_power_of_two(0));
  EXPECT_FALSE(is_power_of_two(48));
  EXPECT_FALSE(is_power_of_two(-4));
}

TEST(MathTest, Divisors) {
  EXPECT_EQ(divisors(1), (std::vector<std::int64_t>{1}));
  EXPECT_EQ(divisors(12), (std::vector<std::int64_t>{1, 2, 3, 4, 6, 12}));
  EXPECT_EQ(divisors(40), (std::vector<std::int64_t>{1, 2, 4, 5, 8, 10, 20, 40}));
}

TEST(MathTest, ArithSum) {
  EXPECT_EQ(arith_sum(1, 4), 10);
  EXPECT_EQ(arith_sum(3, 3), 3);
  EXPECT_EQ(arith_sum(5, 4), 0);
  EXPECT_EQ(arith_sum(0, 10), 55);
}

TEST(UnitsTest, FormatBytes) {
  EXPECT_EQ(format_bytes(512), "512 B");
  EXPECT_EQ(format_bytes(2.5 * kGiB), "2.50 GiB");
  EXPECT_EQ(format_bytes(1.25 * kMiB), "1.25 MiB");
}

TEST(UnitsTest, FormatTime) {
  EXPECT_EQ(format_time(1.5), "1.500 s");
  EXPECT_EQ(format_time(2.5e-3), "2.500 ms");
  EXPECT_EQ(format_time(3e-6), "3.0 us");
}

TEST(UnitsTest, FormatContext) {
  EXPECT_EQ(format_context(131072), "128K");
  EXPECT_EQ(format_context(2097152), "2048K");
  EXPECT_EQ(format_context(1000), "1000");
}

TEST(UnitsTest, FormatPercent) {
  EXPECT_EQ(format_percent(0.453), "45.3%");
  EXPECT_EQ(format_percent(1.0), "100.0%");
}

TEST(TableTest, AlignsColumns) {
  Table t({"name", "value"});
  t.add_row({"a", "1"});
  t.add_row({"longer", "22"});
  const std::string s = t.to_string();
  EXPECT_NE(s.find("| name   | value |"), std::string::npos);
  EXPECT_NE(s.find("| longer | 22    |"), std::string::npos);
}

TEST(TableTest, CsvOutput) {
  Table t({"x", "y"});
  t.add_row({"1", "2"});
  t.add_separator();
  t.add_row({"3", "4"});
  EXPECT_EQ(t.to_csv(), "x,y\n1,2\n3,4\n");
}

TEST(TableTest, RowWidthChecked) {
  Table t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), std::logic_error);
}

TEST(RngTest, Deterministic) {
  Rng a(7), b(7);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.next_u64(), b.next_u64());
  }
}

TEST(RngTest, SeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next_u64() == b.next_u64()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(RngTest, DoubleInUnitInterval) {
  Rng rng(3);
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.next_double();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(RngTest, BelowBound) {
  Rng rng(4);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const std::uint64_t x = rng.next_below(10);
    EXPECT_LT(x, 10u);
    seen.insert(x);
  }
  EXPECT_EQ(seen.size(), 10u);  // all residues hit
}

}  // namespace
}  // namespace slim
