#include "src/numerics/moe.hpp"

#include <algorithm>
#include <cmath>

#include "src/util/logging.hpp"

namespace slim::num {

namespace {

/// Expert SwiGLU-FFN forward for a (rows x h) block.
Tensor expert_forward(const ExpertWeights& w, const Tensor& x) {
  const Tensor gate = matmul(x, w.w_gate);
  const Tensor up = matmul(x, w.w_up);
  return matmul(swiglu(gate, up), w.w_down);
}

/// Backward; accumulates into `grads`, returns dx. Recomputes gate/up.
Tensor expert_backward(const ExpertWeights& w, ExpertWeights& grads,
                       const Tensor& x, const Tensor& dy) {
  const Tensor gate = matmul(x, w.w_gate);
  const Tensor up = matmul(x, w.w_up);
  const Tensor hidden = swiglu(gate, up);
  grads.w_down.add_(matmul_tn(hidden, dy));
  const Tensor dhidden = matmul_nt(dy, w.w_down);
  Tensor dgate, dup;
  swiglu_bwd(gate, up, dhidden, dgate, dup);
  grads.w_gate.add_(matmul_tn(x, dgate));
  grads.w_up.add_(matmul_tn(x, dup));
  Tensor dx = matmul_nt(dgate, w.w_gate);
  dx.add_(matmul_nt(dup, w.w_up));
  return dx;
}

std::vector<float> softmax_row(const Tensor& logits, std::int64_t row) {
  const std::int64_t e = logits.cols();
  float m = logits.at(row, 0);
  for (std::int64_t c = 1; c < e; ++c) m = std::max(m, logits.at(row, c));
  std::vector<float> p(static_cast<std::size_t>(e));
  double sum = 0.0;
  for (std::int64_t c = 0; c < e; ++c) {
    p[static_cast<std::size_t>(c)] = std::exp(logits.at(row, c) - m);
    sum += p[static_cast<std::size_t>(c)];
  }
  for (float& v : p) v = static_cast<float>(v / sum);
  return p;
}

}  // namespace

MoeWeights MoeWeights::random(const MoeDims& dims, Rng& rng) {
  MoeWeights w;
  const float s = 0.2f / std::sqrt(static_cast<float>(dims.hidden));
  w.router = Tensor::randn(dims.hidden, dims.experts, rng, s);
  for (std::int64_t e = 0; e < dims.experts; ++e) {
    ExpertWeights ew;
    ew.w_gate = Tensor::randn(dims.hidden, dims.ffn, rng, s);
    ew.w_up = Tensor::randn(dims.hidden, dims.ffn, rng, s);
    ew.w_down = Tensor::randn(dims.ffn, dims.hidden, rng, s);
    w.experts.push_back(std::move(ew));
  }
  return w;
}

MoeGrads MoeGrads::zeros(const MoeDims& dims) {
  MoeGrads g;
  g.router = Tensor(dims.hidden, dims.experts);
  for (std::int64_t e = 0; e < dims.experts; ++e) {
    ExpertWeights ew;
    ew.w_gate = Tensor(dims.hidden, dims.ffn);
    ew.w_up = Tensor(dims.hidden, dims.ffn);
    ew.w_down = Tensor(dims.ffn, dims.hidden);
    g.experts.push_back(std::move(ew));
  }
  return g;
}

float MoeGrads::max_abs_diff(const MoeGrads& other) const {
  float d = router.max_abs_diff(other.router);
  for (std::size_t e = 0; e < experts.size(); ++e) {
    d = std::max(d, experts[e].w_gate.max_abs_diff(other.experts[e].w_gate));
    d = std::max(d, experts[e].w_up.max_abs_diff(other.experts[e].w_up));
    d = std::max(d, experts[e].w_down.max_abs_diff(other.experts[e].w_down));
  }
  return d;
}

Routing route(const MoeDims& dims, const MoeWeights& w, const Tensor& x) {
  SLIM_CHECK(dims.topk >= 1 && dims.topk <= dims.experts, "bad top-k");
  const Tensor logits = matmul(x, w.router);
  Routing routing;
  routing.expert.resize(static_cast<std::size_t>(x.rows()));
  routing.weight.resize(static_cast<std::size_t>(x.rows()));
  for (std::int64_t t = 0; t < x.rows(); ++t) {
    const std::vector<float> p = softmax_row(logits, t);
    std::vector<std::int64_t> order(static_cast<std::size_t>(dims.experts));
    for (std::int64_t e = 0; e < dims.experts; ++e) {
      order[static_cast<std::size_t>(e)] = e;
    }
    std::stable_sort(order.begin(), order.end(),
                     [&](std::int64_t a, std::int64_t b) {
                       return p[static_cast<std::size_t>(a)] >
                              p[static_cast<std::size_t>(b)];
                     });
    double denom = 0.0;
    for (std::int64_t k = 0; k < dims.topk; ++k) {
      denom += p[static_cast<std::size_t>(order[static_cast<std::size_t>(k)])];
    }
    for (std::int64_t k = 0; k < dims.topk; ++k) {
      const std::int64_t e = order[static_cast<std::size_t>(k)];
      routing.expert[static_cast<std::size_t>(t)].push_back(e);
      routing.weight[static_cast<std::size_t>(t)].push_back(
          static_cast<float>(p[static_cast<std::size_t>(e)] / denom));
    }
  }
  return routing;
}

Tensor moe_forward(const MoeDims& dims, const MoeWeights& w, const Tensor& x) {
  const Routing routing = route(dims, w, x);
  Tensor out(x.rows(), x.cols());
  for (std::int64_t t = 0; t < x.rows(); ++t) {
    const Tensor xt = x.slice_rows(t, t + 1);
    for (std::int64_t k = 0; k < dims.topk; ++k) {
      const std::int64_t e =
          routing.expert[static_cast<std::size_t>(t)][static_cast<std::size_t>(k)];
      const float weight =
          routing.weight[static_cast<std::size_t>(t)][static_cast<std::size_t>(k)];
      const Tensor y =
          expert_forward(w.experts[static_cast<std::size_t>(e)], xt);
      for (std::int64_t c = 0; c < x.cols(); ++c) {
        out.at(t, c) += weight * y.at(0, c);
      }
    }
  }
  return out;
}

Tensor moe_forward_grouped(const MoeDims& dims, const MoeWeights& w,
                           const Tensor& x) {
  const Routing routing = route(dims, w, x);
  Tensor out(x.rows(), x.cols());
  // Dispatch: gather each expert's assigned (token, weight) pairs.
  for (std::int64_t e = 0; e < dims.experts; ++e) {
    std::vector<std::int64_t> tokens;
    std::vector<float> weights;
    for (std::int64_t t = 0; t < x.rows(); ++t) {
      for (std::int64_t k = 0; k < dims.topk; ++k) {
        if (routing.expert[static_cast<std::size_t>(t)]
                          [static_cast<std::size_t>(k)] == e) {
          tokens.push_back(t);
          weights.push_back(routing.weight[static_cast<std::size_t>(t)]
                                          [static_cast<std::size_t>(k)]);
        }
      }
    }
    if (tokens.empty()) continue;
    // Every row is assigned below — uninit is safe.
    Tensor batch =
        Tensor::uninit(static_cast<std::int64_t>(tokens.size()), x.cols());
    for (std::size_t i = 0; i < tokens.size(); ++i) {
      batch.assign_rows(static_cast<std::int64_t>(i),
                        x.slice_rows(tokens[i], tokens[i] + 1));
    }
    const Tensor y = expert_forward(w.experts[static_cast<std::size_t>(e)],
                                    batch);
    // Combine.
    for (std::size_t i = 0; i < tokens.size(); ++i) {
      for (std::int64_t c = 0; c < x.cols(); ++c) {
        out.at(tokens[i], c) += weights[i] * y.at(static_cast<std::int64_t>(i), c);
      }
    }
  }
  return out;
}

Tensor moe_backward(const MoeDims& dims, const MoeWeights& w, const Tensor& x,
                    const Tensor& dout, MoeGrads& grads) {
  const Tensor logits = matmul(x, w.router);
  const Routing routing = route(dims, w, x);
  Tensor dx(x.rows(), x.cols());
  Tensor dlogits(x.rows(), dims.experts);

  for (std::int64_t t = 0; t < x.rows(); ++t) {
    const Tensor xt = x.slice_rows(t, t + 1);
    const Tensor dyt = dout.slice_rows(t, t + 1);
    const std::vector<float> p = softmax_row(logits, t);
    const auto& sel = routing.expert[static_cast<std::size_t>(t)];
    const auto& sel_w = routing.weight[static_cast<std::size_t>(t)];

    double renorm = 0.0;
    for (std::int64_t e : sel) renorm += p[static_cast<std::size_t>(e)];

    // dw_k = dout . f_ek(x); expert FFN backward with weight w_k.
    std::vector<float> dw(sel.size(), 0.0f);
    for (std::size_t k = 0; k < sel.size(); ++k) {
      const std::size_t e = static_cast<std::size_t>(sel[k]);
      const Tensor y = expert_forward(w.experts[e], xt);
      double dot = 0.0;
      for (std::int64_t c = 0; c < x.cols(); ++c) {
        dot += static_cast<double>(dyt.at(0, c)) * y.at(0, c);
      }
      dw[k] = static_cast<float>(dot);
      Tensor dy_scaled = dyt;
      for (std::int64_t i = 0; i < dy_scaled.size(); ++i) {
        dy_scaled.data()[i] *= sel_w[k];
      }
      const Tensor dxe = expert_backward(w.experts[e], grads.experts[e], xt,
                                         dy_scaled);
      for (std::int64_t c = 0; c < x.cols(); ++c) dx.at(t, c) += dxe.at(0, c);
    }

    // Renormalized-softmax jacobian: w_k = p_k / s with s = sum of selected.
    // dp_j (j selected) = dw_j/s - sum_k dw_k p_k / s^2.
    double weighted = 0.0;
    for (std::size_t k = 0; k < sel.size(); ++k) {
      weighted += static_cast<double>(dw[k]) *
                  p[static_cast<std::size_t>(sel[k])];
    }
    std::vector<float> dp(static_cast<std::size_t>(dims.experts), 0.0f);
    for (std::size_t k = 0; k < sel.size(); ++k) {
      dp[static_cast<std::size_t>(sel[k])] = static_cast<float>(
          dw[k] / renorm - weighted / (renorm * renorm));
    }
    // Softmax jacobian: dz_i = p_i (dp_i - sum_j dp_j p_j).
    double dot = 0.0;
    for (std::int64_t e = 0; e < dims.experts; ++e) {
      dot += static_cast<double>(dp[static_cast<std::size_t>(e)]) *
             p[static_cast<std::size_t>(e)];
    }
    for (std::int64_t e = 0; e < dims.experts; ++e) {
      dlogits.at(t, e) = p[static_cast<std::size_t>(e)] *
                         (dp[static_cast<std::size_t>(e)] -
                          static_cast<float>(dot));
    }
  }

  grads.router.add_(matmul_tn(x, dlogits));
  dx.add_(matmul_nt(dlogits, w.router));
  return dx;
}

std::vector<std::int64_t> expert_load(const MoeDims& dims,
                                      const Routing& routing) {
  std::vector<std::int64_t> load(static_cast<std::size_t>(dims.experts), 0);
  for (const auto& sel : routing.expert) {
    for (std::int64_t e : sel) ++load[static_cast<std::size_t>(e)];
  }
  return load;
}

}  // namespace slim::num
