#pragma once

// Minimal dense float tensor (row-major, rank <= 2 semantics) for the
// numerics substrate. The substrate exists to prove SlimPipe's slice-wise
// math (streaming causal attention, online softmax merges,
// sharded-vocabulary losses, LIFO backward) is bit-for-bit equivalent to
// monolithic execution. The hot kernels run on the shared parallel engine
// (src/util/thread_pool.hpp) under its determinism contract: fixed
// shape-derived chunking, index-ordered reduction, results bit-identical
// across SLIMPIPE_THREADS settings.
//
// Storage is ownership-aware (src/numerics/arena.hpp): a tensor's buffer
// either comes from the heap (owned, freed by the destructor) or from the
// arena bound to the constructing thread (non-owning; reclaimed when the
// arena scope that covers it is released). Copies are always deep and
// allocate through the same policy, so value semantics are unchanged.

#include <cstdint>
#include <utility>
#include <vector>

#include "src/util/logging.hpp"
#include "src/util/rng.hpp"

namespace slim::num {

class Tensor {
 public:
  Tensor() = default;
  /// Zero-initialized (safe default: several kernels accumulate into their
  /// output, and attn_merge's skipped rows rely on zeros).
  Tensor(std::int64_t rows, std::int64_t cols) : Tensor(rows, cols, true) {}

  /// UNINITIALIZED storage: only for outputs every element of which is
  /// overwritten before being read (slice copies, transposes, matmul_nt,
  /// rmsnorm/swiglu outputs, vcat). Never for accumulator outputs.
  static Tensor uninit(std::int64_t rows, std::int64_t cols) {
    return Tensor(rows, cols, false);
  }

  Tensor(const Tensor& other);
  Tensor& operator=(const Tensor& other);
  Tensor(Tensor&& other) noexcept { steal(other); }
  Tensor& operator=(Tensor&& other) noexcept {
    if (this != &other) {
      destroy();
      steal(other);
    }
    return *this;
  }
  ~Tensor() { destroy(); }

  static Tensor randn(std::int64_t rows, std::int64_t cols, Rng& rng,
                      float scale = 0.1f);

  std::int64_t rows() const { return rows_; }
  std::int64_t cols() const { return cols_; }
  std::int64_t size() const { return rows_ * cols_; }
  bool empty() const { return size() == 0; }
  /// True when the buffer came from a bound arena (non-owning storage).
  bool arena_backed() const { return data_ != nullptr && !owned_; }

  float* data() { return data_; }
  const float* data() const { return data_; }

  float& at(std::int64_t r, std::int64_t c) {
    return data_[r * cols_ + c];
  }
  float at(std::int64_t r, std::int64_t c) const {
    return data_[r * cols_ + c];
  }

  /// Rows [begin, end) as a copy.
  Tensor slice_rows(std::int64_t begin, std::int64_t end) const;

  /// Columns [begin, end) as a copy.
  Tensor slice_cols(std::int64_t begin, std::int64_t end) const;

  /// Stacks `parts` vertically (all must share cols). Sizes the result
  /// once (uninitialized) and writes each part via assign_rows.
  static Tensor vcat(const std::vector<Tensor>& parts);

  void fill(float value);
  void add_(const Tensor& other);          // this += other
  void add_scaled_(const Tensor& other, float scale);
  Tensor transposed() const;

  /// Writes `src` into rows [row_begin, row_begin + src.rows()).
  void assign_rows(std::int64_t row_begin, const Tensor& src);

  /// Writes `src` into columns [col_begin, col_begin + src.cols()) of every
  /// row (row counts must match). Contiguous per-row copies — the writeback
  /// twin of slice_cols.
  void assign_cols(std::int64_t col_begin, const Tensor& src);

  /// Max absolute difference against `other` (shapes must match).
  float max_abs_diff(const Tensor& other) const;
  bool allclose(const Tensor& other, float atol = 1e-5f) const;

  float l2norm() const;

 private:
  Tensor(std::int64_t rows, std::int64_t cols, bool zero_fill);

  void allocate(bool zero_fill);
  void destroy();
  void steal(Tensor& other) {
    rows_ = other.rows_;
    cols_ = other.cols_;
    data_ = other.data_;
    owned_ = other.owned_;
    other.rows_ = other.cols_ = 0;
    other.data_ = nullptr;
    other.owned_ = false;
  }

  std::int64_t rows_ = 0;
  std::int64_t cols_ = 0;
  float* data_ = nullptr;
  bool owned_ = false;  // heap-backed (delete[] on destroy) vs arena/null
};

// All three matmul variants share one accumulation policy: fp32 partial
// sums in ascending-k order (no double-precision detours, no zero-operand
// fast paths), so forward and backward projections round symmetrically and
// NaN/Inf propagate per IEEE.

/// C = A * B           (m x k) * (k x n)
Tensor matmul(const Tensor& a, const Tensor& b);
/// C = A * B^T         (m x k) * (n x k)^T
Tensor matmul_nt(const Tensor& a, const Tensor& b);
/// C = A^T * B         (k x m)^T * (k x n)
Tensor matmul_tn(const Tensor& a, const Tensor& b);

}  // namespace slim::num
