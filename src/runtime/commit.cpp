#include "src/runtime/commit.hpp"

#include "src/util/logging.hpp"

namespace slim::rt {

StageCommit make_stage_commit(const PipelineModel& model, int stage,
                              bool vocab_parallel) {
  StageCommit commit;
  const std::vector<std::vector<int>> owned = model.owned_layers();
  const std::size_t n_owned = owned[static_cast<std::size_t>(stage)].size();
  for (std::size_t i = 0; i < n_owned; ++i) {
    commit.layers.push_back(num::LayerGrads::zeros(model.dims));
  }
  const bool is_head = stage == model.head_stage();
  const std::int64_t shard_width =
      vocab_parallel ? model.vocab / model.stages : model.vocab;
  if (stage == 0) {
    commit.embed_in = num::Tensor(model.vocab, model.dims.hidden);
  }
  if (vocab_parallel || is_head) {
    commit.head_shard = num::Tensor(shard_width, model.dims.hidden);
  }
  if (is_head) {
    commit.final_norm = num::Tensor(1, model.dims.hidden);
  }
  return commit;
}

CommitLedger::CommitLedger(const PipelineModel& model, int microbatches,
                           bool vocab_parallel)
    : model_(&model),
      stages_(model.stages),
      microbatches_(microbatches),
      vocab_parallel_(vocab_parallel),
      shard_width_(vocab_parallel ? model.vocab / model.stages : model.vocab),
      owned_(model.owned_layers()),
      slots_(static_cast<std::size_t>(model.stages) *
             static_cast<std::size_t>(microbatches)) {
  SLIM_CHECK(microbatches >= 1, "ledger without microbatches");
}

void CommitLedger::prepare(int stage, int mb) {
  slot(stage, mb) = make_stage_commit(*model_, stage, vocab_parallel_);
}

StageCommit& CommitLedger::slot(int stage, int mb) {
  SLIM_CHECK(stage >= 0 && stage < stages_ && mb >= 0 && mb < microbatches_,
             "commit slot out of range");
  return slots_[static_cast<std::size_t>(stage) *
                    static_cast<std::size_t>(microbatches_) +
                static_cast<std::size_t>(mb)];
}

const StageCommit& CommitLedger::slot(int stage, int mb) const {
  return const_cast<CommitLedger*>(this)->slot(stage, mb);
}

bool CommitLedger::fully_committed(int mb) const {
  for (int s = 0; s < stages_; ++s) {
    if (!slot(s, mb).complete) return false;
  }
  return true;
}

std::vector<int> CommitLedger::uncommitted() const {
  std::vector<int> out;
  for (int mb = 0; mb < microbatches_; ++mb) {
    if (!fully_committed(mb)) out.push_back(mb);
  }
  return out;
}

void CommitLedger::merge_microbatch(int mb, num::TinyModel::Grads& grads,
                                    std::vector<num::Tensor>& head_shard_grad,
                                    double& loss_sum) const {
  for (int s = 0; s < stages_; ++s) {
    const StageCommit& commit = slot(s, mb);
    const std::vector<int>& owned = owned_[static_cast<std::size_t>(s)];
    SLIM_CHECK(commit.layers.size() == owned.size(),
               "commit slot layer count mismatch");
    for (std::size_t i = 0; i < owned.size(); ++i) {
      grads.layers[static_cast<std::size_t>(owned[i])].add_(commit.layers[i]);
    }
    if (commit.embed_in.size() > 0) {
      grads.embedding.add_(commit.embed_in);
    }
    if (commit.head_shard.size() > 0) {
      head_shard_grad[static_cast<std::size_t>(s)].add_(commit.head_shard);
    }
    if (commit.final_norm.size() > 0) {
      grads.final_norm.add_(commit.final_norm);
    }
    loss_sum += commit.loss;
  }
}

}  // namespace slim::rt
