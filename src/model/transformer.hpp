#pragma once

// Transformer architecture descriptions and the model zoo from the paper's
// Table 3 (Llama 13B/70B/149B, Mixtral 8x7B/8x22B; plus Llama 7B used by
// Figure 2). All models use a 128,000-entry vocabulary and tied embeddings.

#include <cstdint>
#include <string>
#include <vector>

namespace slim::model {

struct TransformerConfig {
  std::string name;
  std::int64_t layers = 0;        // L
  std::int64_t heads = 0;         // a, attention heads
  std::int64_t kv_groups = 0;     // g, query groups (== heads for MHA)
  std::int64_t hidden = 0;        // h
  std::int64_t ffn = 0;           // H
  std::int64_t vocab = 128000;    // V

  // Mixture-of-Experts; experts == 0 means a dense model.
  std::int64_t experts = 0;       // E
  std::int64_t experts_topk = 0;  // routed experts per token (2 in the paper)

  bool is_moe() const { return experts > 0; }

  /// kv heads (g for GQA, a for MHA).
  std::int64_t kv_heads() const { return kv_groups > 0 ? kv_groups : heads; }

  /// Head dimension h / a.
  std::int64_t head_dim() const { return hidden / heads; }

  /// Hidden size of the K/V projections: h * g / a.
  std::int64_t kv_hidden() const { return kv_heads() * head_dim(); }

  /// Number of FFN "expert instances" evaluated per token (1 for dense).
  std::int64_t active_experts() const { return is_moe() ? experts_topk : 1; }

  /// Parameters in one transformer layer (attention + FFN/MoE + norms).
  std::int64_t params_per_layer() const;

  /// Parameters in the (tied) embedding / output projection.
  std::int64_t params_embedding() const { return vocab * hidden; }

  /// Total parameter count.
  std::int64_t params_total() const;
};

/// Table 3 model zoo (plus Llama 7B for Figure 2).
TransformerConfig llama7b();
TransformerConfig llama13b();
TransformerConfig llama70b();
TransformerConfig llama149b();
TransformerConfig mixtral8x7b();
TransformerConfig mixtral8x22b();

/// All zoo models in the order used by the paper's evaluation.
std::vector<TransformerConfig> model_zoo();

/// Looks up a zoo model by name; throws if unknown.
TransformerConfig model_by_name(const std::string& name);

}  // namespace slim::model
