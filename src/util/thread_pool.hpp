#pragma once

// Shared parallel-execution layer for the numerics substrate.
//
// The pool exposes one primitive, `parallel_for`, which runs a callable over
// a half-open index range split into fixed-size chunks. The determinism
// contract every kernel in src/numerics is built on:
//
//   * chunk boundaries are a pure function of (begin, end, grain) — they
//     NEVER depend on the thread count, so the set of per-chunk
//     computations is identical whether the pool runs 1 or N threads;
//   * each chunk must write disjoint state (rows of the output tensor,
//     its own partial-reduction slot);
//   * reductions combine per-chunk partials in ascending chunk order on
//     the calling thread after the loop.
//
// Under those rules every kernel produces bit-identical results across
// SLIMPIPE_THREADS ∈ {1, ..., N}, which is what keeps the threaded pipeline
// runtime's gradient-accumulation order reproducible.
//
// Thread count: SLIMPIPE_THREADS env (>= 1). Unset or 0 falls back to
// std::thread::hardware_concurrency(). 1 is the forced-serial mode for
// reproducibility debugging: no worker threads are spawned and every
// parallel_for runs inline (still chunk-by-chunk, in chunk order — the
// same arithmetic as the parallel path by construction).
//
// Oversubscription: nested parallel_for calls from inside a pool worker run
// inline, and ScopedKernelThreads lets an outer runtime (the pipeline stage
// workers) cap how many pool threads any kernel launched from that thread
// may fan out to.

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "src/util/math.hpp"

namespace slim::util {

class ThreadPool {
 public:
  /// The process-wide kernel pool, created on first use with the thread
  /// count from SLIMPIPE_THREADS (default: hardware concurrency).
  static ThreadPool& global();

  explicit ThreadPool(int threads);
  ~ThreadPool();
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Configured pool width (>= 1; 1 means forced serial).
  int max_threads() const;

  /// Joins the current workers and respawns the pool at `threads` wide.
  /// Must not race a parallel_for in flight — intended for tests and
  /// benches that sweep thread counts inside one process; production
  /// configuration is the SLIMPIPE_THREADS env read once at startup.
  void set_threads(int threads);

  /// Runs fn(lo, hi) for every chunk [lo, hi) of [begin, end) with fixed
  /// chunk width `grain` (last chunk ragged). Chunks may execute
  /// concurrently and in any order; see the determinism contract above.
  /// The calling thread participates; the first exception thrown by any
  /// chunk is rethrown here after all chunks finished.
  void parallel_for(std::int64_t begin, std::int64_t end, std::int64_t grain,
                    const std::function<void(std::int64_t, std::int64_t)>& fn);

  /// Fork support for the multi-process runtime (src/dist). A fork() from a
  /// process whose pool has live workers snapshots the pool's mutex and job
  /// queue in whatever state they were in — possibly mid-critical-section
  /// on a thread that does not exist in the child. `run_locked` executes fn
  /// (which should call fork()) while holding the pool's internal lock, so
  /// the child inherits the lock in a known-held state with no worker
  /// inside parallel_for bookkeeping.
  void run_locked(const std::function<void()>& fn);

  /// Child-side half of the fork protocol: called immediately after fork()
  /// in the child (whose only thread is the forker). Reinitializes the
  /// synchronization primitives in place, discards the inherited job queue
  /// and std::thread handles (the worker threads do not exist in the
  /// child), and forces the pool serial. The child must never spawn pool
  /// threads — stage workers run their kernels single-threaded.
  void child_after_fork();

 private:
  struct Job;
  void worker_loop();
  static void run_chunks(Job& job);

  mutable std::mutex mutex_;
  std::condition_variable cv_;
  std::vector<std::thread> workers_;
  std::vector<std::shared_ptr<Job>> jobs_;
  int configured_ = 1;
  bool stop_ = false;
};

/// Number of chunks parallel_for will execute over [begin, end) at `grain`
/// — for sizing per-chunk partial-reduction buffers.
inline std::int64_t chunk_count(std::int64_t begin, std::int64_t end,
                                std::int64_t grain) {
  return end > begin ? ceil_div(end - begin, grain > 0 ? grain : 1) : 0;
}

/// RAII thread-local cap on kernel fan-out for parallel_for calls made from
/// the current thread. The pipeline runtime wraps each stage worker in one
/// so p stages x N kernel threads cannot oversubscribe the machine; 1
/// forces kernels on this thread serial. 0 = uncapped (pool width).
class ScopedKernelThreads {
 public:
  explicit ScopedKernelThreads(int cap);
  ~ScopedKernelThreads();
  ScopedKernelThreads(const ScopedKernelThreads&) = delete;
  ScopedKernelThreads& operator=(const ScopedKernelThreads&) = delete;

 private:
  int previous_;
};

/// The cap installed by the innermost ScopedKernelThreads on this thread
/// (0 = uncapped).
int kernel_thread_cap();

}  // namespace slim::util
