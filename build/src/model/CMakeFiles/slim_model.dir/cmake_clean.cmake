file(REMOVE_RECURSE
  "CMakeFiles/slim_model.dir/activation.cpp.o"
  "CMakeFiles/slim_model.dir/activation.cpp.o.d"
  "CMakeFiles/slim_model.dir/flops.cpp.o"
  "CMakeFiles/slim_model.dir/flops.cpp.o.d"
  "CMakeFiles/slim_model.dir/hardware.cpp.o"
  "CMakeFiles/slim_model.dir/hardware.cpp.o.d"
  "CMakeFiles/slim_model.dir/transformer.cpp.o"
  "CMakeFiles/slim_model.dir/transformer.cpp.o.d"
  "libslim_model.a"
  "libslim_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/slim_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
