// End-to-end numerical equivalence: slice-wise execution with a chunked KV
// cache and LIFO backward must reproduce monolithic training exactly —
// losses, all weight gradients, with and without vocabulary sharding and
// GQA. This is the functional proof behind SlimPipe's schedule.

#include <gtest/gtest.h>

#include <cmath>

#include "src/numerics/cross_entropy.hpp"
#include "src/numerics/transformer_block.hpp"
#include "src/util/rng.hpp"

namespace slim::num {
namespace {

std::vector<std::int64_t> random_tokens(Rng& rng, int count, std::int64_t vocab) {
  std::vector<std::int64_t> out;
  for (int i = 0; i < count; ++i) {
    out.push_back(static_cast<std::int64_t>(rng.next_below(
        static_cast<std::uint64_t>(vocab))));
  }
  return out;
}

TEST(CrossEntropyTest, KnownValueUniformLogits) {
  Tensor logits(2, 4);  // all-zero logits: loss = log(4)
  const CeResult r = cross_entropy(logits, {1, 3});
  EXPECT_NEAR(r.loss, std::log(4.0), 1e-6);
  // grad: (1/4 - onehot)/tokens
  EXPECT_NEAR(r.dlogits.at(0, 1), (0.25 - 1.0) / 2.0, 1e-6);
  EXPECT_NEAR(r.dlogits.at(0, 0), 0.25 / 2.0, 1e-6);
}

TEST(CrossEntropyTest, GradCheck) {
  Rng rng(21);
  Tensor logits = Tensor::randn(3, 6, rng, 1.0f);
  const std::vector<std::int64_t> targets = {2, 0, 5};
  const CeResult r = cross_entropy(logits, targets);
  const float eps = 1e-3f;
  for (std::int64_t i = 0; i < logits.size(); ++i) {
    const float orig = logits.data()[i];
    logits.data()[i] = orig + eps;
    const double hi = cross_entropy(logits, targets).loss;
    logits.data()[i] = orig - eps;
    const double lo = cross_entropy(logits, targets).loss;
    logits.data()[i] = orig;
    EXPECT_NEAR((hi - lo) / (2.0 * eps), r.dlogits.data()[i], 2e-3);
  }
}

class ShardedCeTest : public ::testing::TestWithParam<int> {};

TEST_P(ShardedCeTest, MatchesMonolithic) {
  const int shards = GetParam();
  Rng rng(40 + shards);
  const std::int64_t vocab = 24, tokens = 7;
  const Tensor logits = Tensor::randn(tokens, vocab, rng, 2.0f);
  const std::vector<std::int64_t> targets = {0, 5, 23, 11, 12, 1, 17};

  const CeResult mono = cross_entropy(logits, targets);

  std::vector<Tensor> parts;
  const std::int64_t width = vocab / shards;
  for (int s = 0; s < shards; ++s) {
    parts.push_back(logits.slice_cols(s * width, (s + 1) * width));
  }
  const ShardedCeResult sharded = cross_entropy_sharded(parts, targets);
  EXPECT_NEAR(sharded.loss, mono.loss, 1e-5);
  for (int s = 0; s < shards; ++s) {
    const Tensor expected = mono.dlogits.slice_cols(s * width, (s + 1) * width);
    EXPECT_LT(sharded.dshards[static_cast<std::size_t>(s)].max_abs_diff(
                  expected),
              1e-6f);
  }
}

INSTANTIATE_TEST_SUITE_P(Shards, ShardedCeTest, ::testing::Values(1, 2, 3, 4,
                                                                  6, 8, 12));

TEST(ShardedCeTest, StatsPayloadIsPerToken) {
  // The synchronized statistics are O(tokens), not O(vocab) — the whole
  // point of computing the loss from sharded logits (paper §4.3.2).
  Rng rng(55);
  const Tensor shard = Tensor::randn(5, 16, rng, 1.0f);
  const CeShardStats stats = ce_shard_stats(shard, 0, {1, 2, 3, 4, 5});
  EXPECT_EQ(stats.max_logit.size(), 5u);
  EXPECT_EQ(stats.sum_exp.size(), 5u);
  EXPECT_EQ(stats.target_logit.size(), 5u);
}

TEST(LayerTest, SlicedForwardMatchesMonolithic) {
  Rng rng(60);
  const BlockDims dims{32, 4, 4, 48};
  Layer mono(dims, LayerWeights::random(dims, rng));
  Layer sliced(dims, mono.weights());

  const Tensor x = Tensor::randn(24, 32, rng, 1.0f);
  const Tensor full = mono.forward_slice(x, 0);

  std::vector<Tensor> parts;
  for (int s = 0; s < 3; ++s) {
    parts.push_back(sliced.forward_slice(x.slice_rows(s * 8, (s + 1) * 8),
                                         s * 8));
  }
  EXPECT_LT(Tensor::vcat(parts).max_abs_diff(full), 5e-6f);
  EXPECT_EQ(sliced.cache_chunks(), 3);
}

TEST(LayerTest, LifoBackwardMatchesMonolithic) {
  Rng rng(61);
  const BlockDims dims{32, 4, 2, 48};  // GQA: 4 heads, 2 KV heads
  Layer mono(dims, LayerWeights::random(dims, rng));
  Layer sliced(dims, mono.weights());

  const Tensor x = Tensor::randn(24, 32, rng, 1.0f);
  const Tensor dout = Tensor::randn(24, 32, rng, 1.0f);

  (void)mono.forward_slice(x, 0);
  LayerGrads g_mono = LayerGrads::zeros(dims);
  const Tensor dx_mono = mono.backward_slice(dout, g_mono);

  for (int s = 0; s < 3; ++s) {
    (void)sliced.forward_slice(x.slice_rows(s * 8, (s + 1) * 8), s * 8);
  }
  LayerGrads g_sliced = LayerGrads::zeros(dims);
  std::vector<Tensor> dx_parts(3);
  for (int s = 2; s >= 0; --s) {  // strictly LIFO
    dx_parts[static_cast<std::size_t>(s)] = sliced.backward_slice(
        dout.slice_rows(s * 8, (s + 1) * 8), g_sliced);
  }
  EXPECT_LT(Tensor::vcat(dx_parts).max_abs_diff(dx_mono), 1e-5f);
  EXPECT_LT(g_mono.max_abs_diff(g_sliced), 1e-5f);
  EXPECT_EQ(sliced.cache_chunks(), 0);
  EXPECT_EQ(sliced.live_slices(), 0);
}

TEST(LayerTest, SteadyStateChunkInvariant) {
  // forward_slice adds exactly one chunk; backward_slice frees exactly one
  // — the memory invariant of §4.1.2.
  Rng rng(62);
  const BlockDims dims{16, 2, 2, 24};
  Layer layer(dims, LayerWeights::random(dims, rng));
  LayerGrads grads = LayerGrads::zeros(dims);
  for (int s = 0; s < 4; ++s) {
    (void)layer.forward_slice(Tensor::randn(4, 16, rng, 1.0f), s * 4);
    EXPECT_EQ(layer.cache_chunks(), s + 1);
  }
  for (int s = 3; s >= 0; --s) {
    (void)layer.backward_slice(Tensor::randn(4, 16, rng, 1.0f), grads);
    EXPECT_EQ(layer.cache_chunks(), s);
  }
}

struct ModelCase {
  int n_slices;
  int vocab_shards;
  std::int64_t kv_heads;
};

class ModelEquivalenceTest : public ::testing::TestWithParam<ModelCase> {};

TEST_P(ModelEquivalenceTest, SlicedStepMatchesReference) {
  const ModelCase c = GetParam();
  Rng rng(70);
  const BlockDims dims{32, 4, c.kv_heads, 48};
  const std::int64_t vocab = 32;
  TinyModel model(dims, vocab, 2, rng);

  Rng data_rng(71);
  const auto tokens = random_tokens(data_rng, 24, vocab);
  const auto targets = random_tokens(data_rng, 24, vocab);

  auto g_ref = model.zero_grads();
  const double loss_ref = model.train_step(tokens, targets, 1, g_ref);

  auto g_sliced = model.zero_grads();
  const double loss_sliced =
      model.train_step(tokens, targets, c.n_slices, g_sliced, c.vocab_shards);

  EXPECT_NEAR(loss_sliced, loss_ref, 1e-5);
  EXPECT_LT(g_ref.max_abs_diff(g_sliced), 2e-5f);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ModelEquivalenceTest,
    ::testing::Values(ModelCase{2, 1, 4}, ModelCase{4, 1, 4},
                      ModelCase{8, 1, 4}, ModelCase{4, 4, 4},
                      ModelCase{8, 8, 4}, ModelCase{4, 1, 2},
                      ModelCase{8, 4, 2}, ModelCase{12, 2, 1},
                      ModelCase{24, 1, 4}));

TEST(ModelTest, LossDecreasesWithSgdSteps) {
  // A sanity training loop: sliced execution actually trains.
  Rng rng(80);
  const BlockDims dims{16, 2, 2, 24};
  const std::int64_t vocab = 16;
  TinyModel model(dims, vocab, 1, rng);
  Rng data_rng(81);
  const auto tokens = random_tokens(data_rng, 16, vocab);
  // Fixed targets so the model can memorize.
  const auto targets = random_tokens(data_rng, 16, vocab);

  auto grads = model.zero_grads();
  const double first = model.train_step(tokens, targets, 4, grads);
  double last = first;
  (void)last;
  // No optimizer wired into TinyModel on purpose (it exists to check
  // gradient equivalence); verify determinism instead.
  auto grads2 = model.zero_grads();
  const double second = model.train_step(tokens, targets, 4, grads2);
  EXPECT_DOUBLE_EQ(first, second);
  EXPECT_LT(grads.max_abs_diff(grads2), 1e-7f);
}

}  // namespace
}  // namespace slim::num

// ---- whole-layer finite-difference gradient checks (appended) ----
namespace slim::num {
namespace {

// Differentiates through a complete transformer layer (RMSNorm -> RoPE ->
// streamed causal attention over two KV chunks -> projections -> SwiGLU
// MLP, residuals) and checks every weight against finite differences.
TEST(LayerGradCheckTest, AllWeightsAgainstFiniteDifferences) {
  Rng rng(900);
  const BlockDims dims{16, 2, 2, 24};
  const LayerWeights w0 = LayerWeights::random(dims, rng);
  const Tensor x = Tensor::randn(8, 16, rng, 0.8f);
  const Tensor dout = Tensor::randn(8, 16, rng, 1.0f);

  auto run_loss = [&](const LayerWeights& w) {
    Layer layer(dims, w);
    // Two slices to exercise the KV chunking inside the layer.
    const Tensor y0 = layer.forward_slice(x.slice_rows(0, 4), 0);
    const Tensor y1 = layer.forward_slice(x.slice_rows(4, 8), 4);
    double sum = 0.0;
    for (std::int64_t r = 0; r < 4; ++r) {
      for (std::int64_t c = 0; c < 16; ++c) {
        sum += static_cast<double>(y0.at(r, c)) * dout.at(r, c);
        sum += static_cast<double>(y1.at(r, c)) * dout.at(r + 4, c);
      }
    }
    return sum;
  };

  // Analytic gradients through the sliced LIFO backward.
  LayerGrads grads = LayerGrads::zeros(dims);
  {
    Layer layer(dims, w0);
    (void)layer.forward_slice(x.slice_rows(0, 4), 0);
    (void)layer.forward_slice(x.slice_rows(4, 8), 4);
    (void)layer.backward_slice(dout.slice_rows(4, 8), grads);
    (void)layer.backward_slice(dout.slice_rows(0, 4), grads);
  }

  const float eps = 1e-2f;  // fp32 through a deep graph: coarse probes
  struct Probe {
    Tensor LayerWeights::* weight;
    Tensor LayerGrads::* grad;
    const char* name;
  };
  const Probe probes[] = {
      {&LayerWeights::wq, &LayerGrads::wq, "wq"},
      {&LayerWeights::wk, &LayerGrads::wk, "wk"},
      {&LayerWeights::wv, &LayerGrads::wv, "wv"},
      {&LayerWeights::wo, &LayerGrads::wo, "wo"},
      {&LayerWeights::w_gate, &LayerGrads::w_gate, "w_gate"},
      {&LayerWeights::w_up, &LayerGrads::w_up, "w_up"},
      {&LayerWeights::w_down, &LayerGrads::w_down, "w_down"},
      {&LayerWeights::norm1, &LayerGrads::norm1, "norm1"},
      {&LayerWeights::norm2, &LayerGrads::norm2, "norm2"},
  };
  for (const Probe& probe : probes) {
    LayerWeights w = w0;
    Tensor& param = w.*(probe.weight);
    const Tensor& grad = grads.*(probe.grad);
    // Spot-check a handful of elements per tensor.
    const std::int64_t stride = std::max<std::int64_t>(1, param.size() / 5);
    for (std::int64_t i = 0; i < param.size(); i += stride) {
      const float orig = param.data()[i];
      param.data()[i] = orig + eps;
      const double hi = run_loss(w);
      param.data()[i] = orig - eps;
      const double lo = run_loss(w);
      param.data()[i] = orig;
      const double fd = (hi - lo) / (2.0 * eps);
      EXPECT_NEAR(fd, grad.data()[i], 5e-2 * std::max(1.0, std::fabs(fd)))
          << probe.name << "[" << i << "]";
    }
  }
}

TEST(EdgeCaseTest, SingleSliceSingleToken) {
  Rng rng(901);
  const BlockDims dims{8, 2, 1, 12};
  TinyModel model(dims, 8, 1, rng);
  const std::vector<std::int64_t> tokens = {3};
  const std::vector<std::int64_t> targets = {5};
  auto grads = model.zero_grads();
  const double loss = model.train_step(tokens, targets, 1, grads);
  EXPECT_GT(loss, 0.0);
  EXPECT_GT(grads.embedding.l2norm(), 0.0f);
}

TEST(EdgeCaseTest, EveryTokenItsOwnSlice) {
  Rng rng(902);
  const BlockDims dims{16, 2, 2, 24};
  TinyModel model(dims, 12, 2, rng);
  Rng data_rng(903);
  std::vector<std::int64_t> tokens, targets;
  for (int i = 0; i < 8; ++i) {
    tokens.push_back(static_cast<std::int64_t>(data_rng.next_below(12)));
    targets.push_back(static_cast<std::int64_t>(data_rng.next_below(12)));
  }
  auto g1 = model.zero_grads();
  auto g8 = model.zero_grads();
  const double l1 = model.train_step(tokens, targets, 1, g1);
  const double l8 = model.train_step(tokens, targets, 8, g8);  // 1 token/slice
  EXPECT_NEAR(l1, l8, 1e-6);
  EXPECT_LT(g1.max_abs_diff(g8), 1e-5f);
}

TEST(EdgeCaseTest, LifoViolationIsRejected) {
  Rng rng(904);
  const BlockDims dims{16, 2, 2, 24};
  Layer layer(dims, LayerWeights::random(dims, rng));
  (void)layer.forward_slice(Tensor::randn(4, 16, rng, 1.0f), 0);
  LayerGrads grads = LayerGrads::zeros(dims);
  (void)layer.backward_slice(Tensor::randn(4, 16, rng, 1.0f), grads);
  // A second backward with no pending forward must be caught.
  EXPECT_THROW(layer.backward_slice(Tensor::randn(4, 16, rng, 1.0f), grads),
               std::logic_error);
}

}  // namespace
}  // namespace slim::num
