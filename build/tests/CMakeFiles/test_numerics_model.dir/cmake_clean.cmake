file(REMOVE_RECURSE
  "CMakeFiles/test_numerics_model.dir/test_numerics_model.cpp.o"
  "CMakeFiles/test_numerics_model.dir/test_numerics_model.cpp.o.d"
  "test_numerics_model"
  "test_numerics_model.pdb"
  "test_numerics_model[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_numerics_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
