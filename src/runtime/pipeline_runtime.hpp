#pragma once

// A working, multi-threaded SlimPipe runtime at miniature scale.
//
// Each pipeline stage is a worker thread owning a contiguous block of real
// transformer layers (src/numerics). Sequences are uniformly sliced;
// activation slices flow downstream through message channels, gradient
// slices flow back upstream. Stage-local rules implement the SlimPipe
// schedule (§4.1.2):
//
//  * forwards execute in slice-stream order as they arrive, appending one
//    KV chunk per slice;
//  * the last stage buffers per-slice losses; once a microbatch's final
//    slice has been forwarded its backward chain starts, strictly LIFO in
//    slices — local backward continuations are queued *ahead* of incoming
//    forwards, which yields the one-forward-one-backward interleaving
//    without any global coordinator;
//  * each backward pops exactly the KV chunk its forward pushed (the
//    steady-state memory invariant), which the Layer class asserts.
//
// The runtime's gradients are compared bit-for-bit (up to float
// accumulation order) with single-threaded monolithic execution in the
// tests — a functional proof of the whole scheme, concurrency included.

#include <chrono>
#include <cstdint>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "src/core/slice_layout.hpp"
#include "src/fault/fault_plan.hpp"
#include "src/numerics/transformer_block.hpp"
#include "src/obs/metrics.hpp"
#include "src/obs/trace.hpp"
#include "src/runtime/channel.hpp"
#include "src/runtime/commit.hpp"
#include "src/runtime/pipeline_model.hpp"
#include "src/util/rng.hpp"

namespace slim::rt {

/// Default for RunOptions::starvation_timeout: SLIMPIPE_STARVATION_TIMEOUT_MS
/// when set to a positive integer, else 30 s. Sanitizer-slowed CI runs
/// raise it via the env so legitimate long waits don't trip the watchdog.
std::chrono::milliseconds default_starvation_timeout();

struct PipelineStats {
  /// Peak simultaneously-live slices per stage (the Eq. 1 quantity in
  /// slice units).
  std::vector<int> peak_live_slices;
  /// Activation/gradient messages exchanged per stage boundary.
  std::vector<std::int64_t> messages;
  /// Microbatches replayed after a stage respawn (empty when fault-free).
  std::vector<int> replayed_microbatches;

  /// Per-stage observability breakdown — the same shape the simulator
  /// attaches to sched::ScheduleResult, filled from cheap always-on probes
  /// (wall-clock busy/blocked time, cross-stage message counts, channel
  /// high-water marks). The consistency tests assert the discrete fields
  /// match the simulator for the same schedule.
  obs::RunMetrics metrics;
};

/// Structured pipeline failure: what happened, on which stage, and the
/// per-stage blocked-on table at the moment of failure. Every worker
/// exception — injected faults, invariant violations, starvation — is
/// captured, converted into one of these and rethrown from the parent
/// thread after all workers joined; no failure path reaches
/// std::terminate.
class PipelineError : public std::runtime_error {
 public:
  PipelineError(const std::string& what, fault::FaultReport report)
      : std::runtime_error(what), report_(std::move(report)) {}

  const fault::FaultReport& report() const { return report_; }

 private:
  fault::FaultReport report_;
};

/// Knobs of one threaded-runtime iteration.
struct RunOptions {
  int n_slices = 1;
  bool vocab_parallel = false;
  /// Per-microbatch slice boundaries (one layout per microbatch, each with
  /// n_slices slices summing to that microbatch's token count). Empty
  /// derives a token-uniform layout per microbatch, remainder to the first
  /// slices — seq % n_slices != 0 and per-microbatch sequence lengths are
  /// both legal and every token is trained on.
  std::vector<core::SliceLayout> layouts;
  /// Starvation probe: a stage blocked in receive for this long collects
  /// the per-stage blocked-on table and fails the iteration (the
  /// watchdog). Short values let fault tests probe deadlocks quickly.
  std::chrono::milliseconds starvation_timeout = default_starvation_timeout();
  /// Runtime-substrate faults to inject (stage crashes/hangs, delays).
  const fault::FaultPlan* faults = nullptr;
  /// After an injected stage crash: respawn the stage from the parameter
  /// snapshot and replay the unretired microbatches instead of failing.
  bool recover = false;
  /// Filled with the injected/observed fault events when set.
  fault::FaultReport* report = nullptr;
  /// Optional tracing sink. When set, every slice forward/backward, vocab
  /// shard pass, cross-stage send/recv and gradient commit records a span
  /// or flow on the recorder (stage s = track s); fault events become
  /// instant markers. Null (the default) skips all recording — the hot
  /// path only pays a pointer test.
  obs::Recorder* recorder = nullptr;
  /// Per-stage cap on numerics-kernel threads (util::ScopedKernelThreads).
  /// Stage workers run concurrently, so letting each one fan out to the
  /// full pool oversubscribes the machine; 0 (the default) divides the
  /// pool's width evenly across stages (at least 1 — i.e. kernels run
  /// serially inside each stage when stages >= pool width). Any positive
  /// value is used as-is. Results are bit-identical either way — the cap
  /// only affects how many workers help, never chunk boundaries.
  int kernel_threads = 0;
  /// Route each stage's retained slice tensors (activations, KV chunks,
  /// KV-gradient accumulators) through per-microbatch arenas and report the
  /// measured per-category high-water marks in
  /// PipelineStats::metrics.stages[*].measured_peak_bytes. Placement never
  /// changes the math (results stay bit-identical); disable only to shave
  /// the retained-copy overhead off perf runs.
  bool measure_memory = true;
};

/// Tied-embedding transformer split across `stages` worker threads.
class ThreadedPipeline {
 public:
  /// Builds a model with `layers_total` layers split as evenly as possible
  /// across `stages * chunks_per_stage` stage chunks (earlier chunks take
  /// the remainder). `chunks_per_stage > 1` gives the interleaved form of
  /// Figure 5: thread r owns global stages r, p+r, 2p+r, ...
  ThreadedPipeline(num::BlockDims dims, std::int64_t vocab, int layers_total,
                   int stages, Rng& rng, int chunks_per_stage = 1);

  struct Result {
    double loss = 0.0;
    num::TinyModel::Grads grads;  // flattened: embedding, all layers, norm
    PipelineStats stats;
  };

  /// One training iteration over `microbatches` sequences, each uniformly
  /// split into `n_slices`. Spawns one thread per stage; returns the mean
  /// loss and accumulated gradients.
  ///
  /// With `vocab_parallel` the output head is sharded row-wise across the
  /// stage threads (paper §4.3): the last stage broadcasts each slice's
  /// final hidden states, every stage computes its shard's logits and
  /// contributes per-token (max, sum-exp, target-logit) statistics, the
  /// last stage synchronizes the scalars and broadcasts them back, and the
  /// shards return partial hidden-state gradients — only O(tokens) scalars
  /// and O(tokens x hidden) activations travel, never O(vocab) logits.
  Result run_iteration(const std::vector<std::vector<std::int64_t>>& tokens,
                       const std::vector<std::vector<std::int64_t>>& targets,
                       int n_slices, bool vocab_parallel = false);

  /// Full-option form: starvation watchdog, fault injection and
  /// crash-recovery (respawn + replay of unretired microbatches). Worker
  /// gradients are staged per microbatch and committed at microbatch
  /// retirement, so a mid-iteration crash discards only partial work and
  /// the recovered gradients still match run_reference.
  Result run_iteration(const std::vector<std::vector<std::int64_t>>& tokens,
                       const std::vector<std::vector<std::int64_t>>& targets,
                       const RunOptions& options);

  /// Reference: the same parameters executed monolithically on one thread
  /// (for equivalence checks).
  Result run_reference(const std::vector<std::vector<std::int64_t>>& tokens,
                       const std::vector<std::vector<std::int64_t>>& targets);

  int stages() const { return model_.stages; }
  int chunks_per_stage() const { return model_.chunks_per_stage; }
  std::int64_t layers_total() const { return model_.layers_total; }

  /// The shared model split (weights + stage layout) this pipeline runs —
  /// the multi-process backend builds its own PipelineModel the same way,
  /// so equal seeds give bit-identical parameters across backends.
  const PipelineModel& model() const { return model_; }

 private:
  PipelineModel model_;
};

}  // namespace slim::rt
