# Empty dependencies file for test_exchange.
# This may be replaced when dependencies are built.
