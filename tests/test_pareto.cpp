// Tests for the checkpoint/offload Pareto explorer (Yuan et al. [48]).

#include <gtest/gtest.h>

#include "src/parallel/pareto.hpp"

namespace slim::parallel {
namespace {

HybridConfig base_config() {
  HybridConfig cfg;
  cfg.scheme = core::Scheme::SlimPipe;
  cfg.t = 8;
  cfg.c = 1;
  cfg.d = 1;
  cfg.p = 8;
  cfg.v = 1;
  cfg.n = 16;
  return cfg;
}

TEST(ParetoTest, FrontierIsNonDominated) {
  const auto points =
      checkpoint_pareto(base_config(), model::llama13b(), model::hopper80(),
                        256 * 1024, 512 * 1024, {0.0, 0.5});
  ASSERT_FALSE(points.empty());
  const auto frontier = pareto_frontier(points);
  ASSERT_FALSE(frontier.empty());
  for (const ParetoPoint& f : frontier) {
    for (const ParetoPoint& other : points) {
      const bool dominates = other.peak_memory < f.peak_memory &&
                             other.iteration_time < f.iteration_time;
      EXPECT_FALSE(dominates) << other.describe() << " dominates "
                              << f.describe();
    }
  }
  // Frontier sorted by memory ascending, time descending.
  for (std::size_t i = 1; i < frontier.size(); ++i) {
    EXPECT_GE(frontier[i].peak_memory, frontier[i - 1].peak_memory);
    EXPECT_LE(frontier[i].iteration_time, frontier[i - 1].iteration_time);
  }
}

TEST(ParetoTest, PoliciesTradeMemoryForTime) {
  const auto points =
      checkpoint_pareto(base_config(), model::llama13b(), model::hopper80(),
                        256 * 1024, 512 * 1024, {0.0});
  ASSERT_EQ(points.size(), 3u);  // one per policy
  const auto& none = points[0];
  const auto& selective = points[1];
  const auto& full = points[2];
  EXPECT_GT(none.peak_memory, selective.peak_memory);
  EXPECT_GT(selective.peak_memory, full.peak_memory);
  EXPECT_LT(none.iteration_time, selective.iteration_time);
  EXPECT_LT(selective.iteration_time, full.iteration_time);
}

TEST(ParetoTest, OffloadExtendsTheFrontier) {
  const auto plain =
      checkpoint_pareto(base_config(), model::llama13b(), model::hopper80(),
                        256 * 1024, 512 * 1024, {0.0});
  const auto offloaded =
      checkpoint_pareto(base_config(), model::llama13b(), model::hopper80(),
                        256 * 1024, 512 * 1024, {0.0, 0.9});
  double min_plain = 1e300, min_off = 1e300;
  for (const auto& pt : plain) min_plain = std::min(min_plain, pt.peak_memory);
  for (const auto& pt : offloaded) min_off = std::min(min_off, pt.peak_memory);
  EXPECT_LT(min_off, min_plain);
}

TEST(ParetoTest, FrontierFlagMatchesRecomputation) {
  const auto points =
      checkpoint_pareto(base_config(), model::llama13b(), model::hopper80(),
                        128 * 1024, 512 * 1024, {0.0, 0.5});
  const auto frontier = pareto_frontier(points);
  std::size_t flagged = 0;
  for (const auto& pt : points) flagged += pt.on_frontier ? 1u : 0u;
  EXPECT_EQ(flagged, frontier.size());
}

}  // namespace
}  // namespace slim::parallel
