#include "src/sim/trace.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <vector>

#include "src/util/units.hpp"

namespace slim::sim {

namespace {

char class_char(OpClass cls) {
  switch (cls) {
    case OpClass::Forward: return 'F';
    case OpClass::Backward: return 'B';
    case OpClass::BackwardInput: return 'I';
    case OpClass::BackwardWeight: return 'W';
    case OpClass::Recompute: return 'R';
    case OpClass::VocabForward: return 'V';
    case OpClass::VocabBackward: return 'v';
    case OpClass::Optimizer: return 'O';
    default: return '-';
  }
}

}  // namespace

std::string ascii_timeline(const OpGraph& graph, const ExecResult& result,
                           const AsciiTraceOptions& options) {
  int num_devices = options.num_devices;
  if (num_devices == 0) {
    for (const Op& op : graph.ops()) {
      num_devices = std::max(num_devices, op.device + 1);
    }
  }
  const double makespan = std::max(result.makespan, 1e-12);
  const int width = std::max(options.width, 10);
  std::vector<std::string> rows(static_cast<std::size_t>(num_devices),
                                std::string(static_cast<std::size_t>(width),
                                            '.'));

  for (const Op& op : graph.ops()) {
    if (!is_compute_class(op.cls) || op.device >= num_devices) continue;
    const OpTiming& t = result.timings[static_cast<std::size_t>(op.id)];
    int lo = static_cast<int>(std::floor(t.start / makespan * width));
    int hi = static_cast<int>(std::ceil(t.end / makespan * width));
    lo = std::clamp(lo, 0, width - 1);
    hi = std::clamp(hi, lo + 1, width);
    for (int x = lo; x < hi; ++x) {
      rows[static_cast<std::size_t>(op.device)][static_cast<std::size_t>(x)] =
          class_char(op.cls);
    }
  }

  std::ostringstream out;
  for (int d = 0; d < num_devices; ++d) {
    out << "dev " << d << " |" << rows[static_cast<std::size_t>(d)] << "|\n";
  }
  if (options.show_legend) {
    out << "        F=fwd B=bwd I=bwd-input W=bwd-weight R=recompute "
           "V/v=vocab O=optim .=bubble   makespan="
        << format_time(result.makespan) << "\n";
  }
  return out.str();
}

}  // namespace slim::sim
