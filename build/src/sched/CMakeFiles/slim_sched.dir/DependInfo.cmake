
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sched/builder.cpp" "src/sched/CMakeFiles/slim_sched.dir/builder.cpp.o" "gcc" "src/sched/CMakeFiles/slim_sched.dir/builder.cpp.o.d"
  "/root/repo/src/sched/gpipe.cpp" "src/sched/CMakeFiles/slim_sched.dir/gpipe.cpp.o" "gcc" "src/sched/CMakeFiles/slim_sched.dir/gpipe.cpp.o.d"
  "/root/repo/src/sched/onef1b.cpp" "src/sched/CMakeFiles/slim_sched.dir/onef1b.cpp.o" "gcc" "src/sched/CMakeFiles/slim_sched.dir/onef1b.cpp.o.d"
  "/root/repo/src/sched/schedule.cpp" "src/sched/CMakeFiles/slim_sched.dir/schedule.cpp.o" "gcc" "src/sched/CMakeFiles/slim_sched.dir/schedule.cpp.o.d"
  "/root/repo/src/sched/ulysses.cpp" "src/sched/CMakeFiles/slim_sched.dir/ulysses.cpp.o" "gcc" "src/sched/CMakeFiles/slim_sched.dir/ulysses.cpp.o.d"
  "/root/repo/src/sched/zbv.cpp" "src/sched/CMakeFiles/slim_sched.dir/zbv.cpp.o" "gcc" "src/sched/CMakeFiles/slim_sched.dir/zbv.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/slim_util.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/slim_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/model/CMakeFiles/slim_model.dir/DependInfo.cmake"
  "/root/repo/build/src/memory/CMakeFiles/slim_memory.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
