// Figure 13: MFU of the pipeline schemes on Llama 13B as the context grows
// from 32K to 512K. Per the paper's setup: per-iteration batch 4, 8-way TP,
// full checkpointing (ZB-V/V-Half run without — their checkpointing is
// broken), 5 stages per device for interleaved 1F1B and SlimPipe, 4 slices
// for SlimPipe.

#include "bench_common.hpp"

using namespace slim;

namespace {

// n = 4 must be a multiple of p, so the pipeline size is 4 (Llama 13B's 40
// layers then give the 5 stages per device used by the paper: p*v = 20).
constexpr int kP = 4;
constexpr int kM = 4;

sched::ScheduleResult run(core::Scheme scheme, std::int64_t seq) {
  auto spec = slimbench::base_spec(model::llama13b(), 8, kP, seq, kM);
  spec.policy = model::CheckpointPolicy::Full;
  switch (scheme) {
    case core::Scheme::Interleaved1F1B:
      spec.v = 5;
      break;
    case core::Scheme::SlimPipe:
      spec.v = 5;
      spec.n = 4;
      spec.vocab_parallel = true;
      spec.context_exchange = true;
      break;
    default:
      break;
  }
  return core::run_scheme(scheme, spec);
}

const std::vector<core::Scheme> kSchemes = {
    core::Scheme::OneF1B, core::Scheme::Interleaved1F1B, core::Scheme::ZBV,
    core::Scheme::VHalf, core::Scheme::SlimPipe};

}  // namespace

static void BM_Fig13(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(run(core::Scheme::SlimPipe, 256 * 1024));
  }
}
BENCHMARK(BM_Fig13)->Unit(benchmark::kMillisecond);

int main(int argc, char** argv) {
  slimbench::open_report("fig13_scheme_mfu");
  slimbench::print_banner(
      "Figure 13 — MFU across PP schemes vs context length",
      "Llama 13B, batch 4, t=8, p=4, full checkpointing, v=5 for "
      "interleaved/SlimPipe, n=4 for SlimPipe",
      "ZB-V OOMs early; V-Half a bit later; 1F1B runs to 256K at low MFU; "
      "interleaved competitive at short context; SlimPipe highest "
      "everywhere");

  Table table({"context", "1F1B", "Interleaved", "ZB-V", "V-Half",
               "SlimPipe"});
  for (std::int64_t seq :
       {32 * 1024, 64 * 1024, 128 * 1024, 256 * 1024, 512 * 1024}) {
    std::vector<std::string> row = {format_context(seq)};
    for (const auto scheme : kSchemes) {
      row.push_back(slimbench::status_cell(run(scheme, seq)));
    }
    table.add_row(row);
  }
  slimbench::print_table("scheme MFU comparison", table);

  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
