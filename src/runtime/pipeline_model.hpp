#pragma once

// The immutable per-iteration model state shared by every pipeline backend.
//
// Both the threaded runtime (one worker thread per stage) and the
// multi-process runtime (src/dist: one forked worker process per stage)
// execute the same model split: a tied-embedding transformer whose layers
// are divided into contiguous blocks over `stages * chunks_per_stage`
// global stage chunks. Factoring the weights + split out of
// ThreadedPipeline lets a forked stage worker inherit the whole model as
// its parameter snapshot (weights are immutable within an iteration, so
// copy-on-write pages are never dirtied) while results, commits and
// heartbeats travel only over sockets.

#include <cstdint>
#include <utility>
#include <vector>

#include "src/numerics/transformer_block.hpp"
#include "src/util/rng.hpp"

namespace slim::rt {

struct PipelineModel {
  num::BlockDims dims;
  std::int64_t vocab = 0;
  std::int64_t layers_total = 0;
  int stages = 1;
  int chunks_per_stage = 1;
  num::Tensor embedding;
  num::Tensor final_norm;
  std::vector<num::LayerWeights> layer_weights;    // all layers, in order
  std::vector<std::pair<int, int>> stage_layers;   // [begin, end) per global stage

  /// Builds a model with `layers_total` layers split as evenly as possible
  /// across `stages * chunks_per_stage` stage chunks (earlier chunks take
  /// the remainder) — the scheduler's uneven-stage convention.
  static PipelineModel build(num::BlockDims dims, std::int64_t vocab,
                             int layers_total, int stages, Rng& rng,
                             int chunks_per_stage = 1);

  /// Global layer ids owned by each stage worker, chunk-major (worker r
  /// owns global stages r, p+r, 2p+r, ...) — the index space of the
  /// per-microbatch staged gradients.
  std::vector<std::vector<int>> owned_layers() const;

  /// The stage worker holding the output head (and final norm): the owner
  /// of the last global stage chunk.
  int head_stage() const {
    return (stages * chunks_per_stage - 1) % stages;
  }
};

struct ReferenceResult {
  double loss = 0.0;
  num::TinyModel::Grads grads;  // flattened: embedding, all layers, norm
};

/// The same parameters executed monolithically on one thread — the ground
/// truth every pipeline backend's gradients are compared against.
ReferenceResult reference_run(
    const PipelineModel& model,
    const std::vector<std::vector<std::int64_t>>& tokens,
    const std::vector<std::vector<std::int64_t>>& targets);

}  // namespace slim::rt
