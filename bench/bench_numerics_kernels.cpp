// Numerics-kernel throughput on the shared parallel engine
// (src/util/thread_pool.hpp). For each hot kernel the bench sweeps the
// pool width in-process (ThreadPool::set_threads), reporting GFLOP/s,
// speedup over the serial run, and — the engine's contract — whether the
// output is bit-identical to the 1-thread result at every width.
//
// SLIMPIPE_BENCH_SMOKE=1 shrinks the shapes so the sweep finishes in
// seconds (the `perf`-labelled ctest smoke uses it); the full shapes
// include the 1024^3 matmul the roadmap's speedup target is quoted on.

#include "bench_common.hpp"

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <functional>
#include <thread>
#include <vector>

#include "src/numerics/cross_entropy.hpp"
#include "src/numerics/norm_act.hpp"
#include "src/numerics/tensor.hpp"
#include "src/numerics/transformer_block.hpp"
#include "src/util/rng.hpp"
#include "src/util/thread_pool.hpp"
#include "src/util/units.hpp"

using namespace slim;
using num::Tensor;

namespace {

bool g_all_identical = true;

bool smoke_mode() {
  const char* env = std::getenv("SLIMPIPE_BENCH_SMOKE");
  return env != nullptr && env[0] != '\0' && env[0] != '0';
}

double seconds_of(const std::function<void()>& fn) {
  const auto start = std::chrono::steady_clock::now();
  fn();
  const auto stop = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(stop - start).count();
}

std::vector<int> sweep_widths() {
  const int hw = static_cast<int>(std::thread::hardware_concurrency());
  std::vector<int> widths = {1, 2, 4, 8};
  if (hw > 1) {
    bool present = false;
    for (int w : widths) present = present || w == hw;
    if (!present) widths.push_back(hw);
  }
  return widths;
}

/// Runs `fn` (which returns the kernel output) at every pool width,
/// appending one table row per width with GFLOP/s, speedup over the
/// 1-thread time and the bit-identity verdict against the 1-thread output.
void sweep_kernel(Table& table, const std::string& kernel, double gflop,
                  const std::function<Tensor()>& fn) {
  util::ThreadPool& pool = util::ThreadPool::global();
  const int restore = pool.max_threads();
  double serial_time = 0.0;
  Tensor serial_out;
  for (int width : sweep_widths()) {
    pool.set_threads(width);
    Tensor out;
    const double time = seconds_of([&] { out = fn(); });
    if (width == 1) {
      serial_time = time;
      serial_out = out;
    }
    const bool identical = out.max_abs_diff(serial_out) == 0.0f;
    g_all_identical = g_all_identical && identical;
    char gflops[32], speedup[32];
    std::snprintf(gflops, sizeof gflops, "%.2f", gflop / time);
    std::snprintf(speedup, sizeof speedup, "%.2fx", serial_time / time);
    table.add_row({kernel, std::to_string(width), format_time(time), gflops,
                   speedup, identical ? "yes" : "NO"});
  }
  pool.set_threads(restore);
}

}  // namespace

static void BM_Matmul(benchmark::State& state) {
  const std::int64_t n = state.range(0);
  Rng rng(7);
  const Tensor a = Tensor::randn(n, n, rng);
  const Tensor b = Tensor::randn(n, n, rng);
  for (auto _ : state) benchmark::DoNotOptimize(num::matmul(a, b));
}
BENCHMARK(BM_Matmul)->Arg(128)->Arg(512)->Unit(benchmark::kMillisecond);

int main(int argc, char** argv) {
  slimbench::open_report("numerics_kernels");
  const bool smoke = smoke_mode();
  slimbench::print_banner(
      "numerics kernels on the parallel engine",
      smoke ? "smoke shapes (SLIMPIPE_BENCH_SMOKE)" : "full shapes",
      "near-linear speedup until memory bandwidth saturates; outputs "
      "bit-identical at every thread count (the determinism contract)");

  Rng rng(7);
  Table table({"kernel", "threads", "time", "GFLOP/s", "speedup",
               "bit-identical"});

  // --- matmul: the roadmap's speedup target is quoted on 1024^3 ---
  {
    const std::int64_t n = smoke ? 128 : 1024;
    const Tensor a = Tensor::randn(n, n, rng);
    const Tensor b = Tensor::randn(n, n, rng);
    const double gflop = 2.0 * static_cast<double>(n) * n * n * 1e-9;
    sweep_kernel(table, "matmul " + std::to_string(n) + "^3", gflop,
                 [&] { return num::matmul(a, b); });
    sweep_kernel(table, "matmul_nt " + std::to_string(n) + "^3", gflop,
                 [&] { return num::matmul_nt(a, b); });
    sweep_kernel(table, "matmul_tn " + std::to_string(n) + "^3", gflop,
                 [&] { return num::matmul_tn(a, b); });
  }

  // --- rmsnorm over a long activation slab ---
  {
    const std::int64_t rows = smoke ? 256 : 8192, cols = smoke ? 128 : 1024;
    const Tensor x = Tensor::randn(rows, cols, rng);
    Tensor w(1, cols);
    w.fill(1.0f);
    const double gflop = 3.0 * static_cast<double>(rows) * cols * 1e-9;
    sweep_kernel(table, "rmsnorm", gflop, [&] { return num::rmsnorm(x, w); });
  }

  // --- transformer block forward (one slice; the runtime's unit of work) ---
  {
    num::BlockDims dims;
    dims.hidden = smoke ? 128 : 512;
    dims.heads = 8;
    dims.kv_heads = 4;
    dims.ffn = smoke ? 256 : 1536;
    const std::int64_t s = smoke ? 128 : 1024;
    num::Layer layer(dims, num::LayerWeights::random(dims, rng));
    const Tensor x = Tensor::randn(s, dims.hidden, rng);
    // Projections + FFN + attention (scores and values), approximately.
    const double gflop =
        (2.0 * s * dims.hidden *
             (2.0 * dims.hidden + 2.0 * dims.kv_hidden() + 3.0 * dims.ffn) +
         4.0 * s * s * dims.hidden) *
        1e-9;
    sweep_kernel(table, "block fwd", gflop, [&] {
      layer.reset();
      return layer.forward_slice(x, 0, 0);
    });
  }

  // --- cross entropy (the output head's loss kernel) ---
  {
    const std::int64_t tokens = smoke ? 256 : 4096;
    const std::int64_t vocab = smoke ? 512 : 8192;
    const Tensor logits = Tensor::randn(tokens, vocab, rng);
    std::vector<std::int64_t> targets(static_cast<std::size_t>(tokens));
    for (std::size_t t = 0; t < targets.size(); ++t) {
      targets[t] = static_cast<std::int64_t>(t) % vocab;
    }
    const double gflop = 5.0 * static_cast<double>(tokens) * vocab * 1e-9;
    sweep_kernel(table, "cross entropy", gflop,
                 [&] { return num::cross_entropy(logits, targets).dlogits; });
  }

  slimbench::print_table("kernel throughput vs pool width", table);

  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  if (!g_all_identical) {
    std::fprintf(stderr,
                 "FAIL: some kernel output was not bit-identical across "
                 "pool widths\n");
    return 1;
  }
  return 0;
}
