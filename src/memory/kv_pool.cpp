#include "src/memory/kv_pool.hpp"

#include <algorithm>

#include "src/util/logging.hpp"

namespace slim::mem {

ChunkedKvPool::ChunkedKvPool(double chunk_bytes) : chunk_bytes_(chunk_bytes) {
  SLIM_CHECK(chunk_bytes > 0.0, "chunk size must be positive");
}

int ChunkedKvPool::acquire() {
  int chunk;
  if (!free_.empty()) {
    chunk = free_.back();
    free_.pop_back();
  } else {
    chunk = static_cast<int>(owned_.size());
    owned_.push_back(true);
  }
  ++live_;
  peak_live_ = std::max(peak_live_, live_);
  return chunk;
}

void ChunkedKvPool::release(int chunk) {
  SLIM_CHECK(chunk >= 0 && static_cast<std::size_t>(chunk) < owned_.size(),
             "releasing unknown chunk");
  SLIM_CHECK(live_ > 0, "double release");
  free_.push_back(chunk);
  --live_;
}

ContiguousKvModel::ContiguousKvModel(double slice_bytes)
    : slice_bytes_(slice_bytes) {
  SLIM_CHECK(slice_bytes > 0.0, "slice size must be positive");
}

double ContiguousKvModel::alloc_block(double bytes) {
  // Best-fit from the non-coalescing free list; otherwise reserve new.
  double best = -1.0;
  std::size_t best_idx = 0;
  for (std::size_t i = 0; i < free_blocks_.size(); ++i) {
    if (free_blocks_[i] >= bytes &&
        (best < 0.0 || free_blocks_[i] < best)) {
      best = free_blocks_[i];
      best_idx = i;
    }
  }
  if (best >= 0.0) {
    // The block is consumed whole: the remainder is stranded (no split —
    // mirrors CUDA caching-allocator behaviour for large blocks).
    free_blocks_.erase(free_blocks_.begin() +
                       static_cast<std::ptrdiff_t>(best_idx));
    return best;
  }
  reserved_ += bytes;
  peak_reserved_ = std::max(peak_reserved_, reserved_);
  return bytes;
}

void ContiguousKvModel::grow() {
  const std::int64_t new_slices = live_slices_ + 1;
  if (new_slices > buffer_slices_) {
    // Allocate the grown buffer while the old one is still live (copy).
    const double new_bytes = slice_bytes_ * static_cast<double>(new_slices);
    const double got = alloc_block(new_bytes);
    if (buffer_slices_ > 0) {
      free_blocks_.push_back(slice_bytes_ *
                             static_cast<double>(buffer_slices_));
    }
    buffer_slices_ = new_slices;
    (void)got;
  }
  live_slices_ = new_slices;
  peak_live_payload_ = std::max(
      peak_live_payload_, slice_bytes_ * static_cast<double>(live_slices_));
}

void ContiguousKvModel::shrink() {
  SLIM_CHECK(live_slices_ > 0, "shrink of empty cache");
  --live_slices_;
}

void ContiguousKvModel::reset() {
  if (buffer_slices_ > 0) {
    free_blocks_.push_back(slice_bytes_ * static_cast<double>(buffer_slices_));
  }
  buffer_slices_ = 0;
  live_slices_ = 0;
}

double ContiguousKvModel::current_bytes() const {
  return slice_bytes_ * static_cast<double>(live_slices_);
}

double ContiguousKvModel::fragmentation_bytes() const {
  return peak_reserved_ - peak_live_payload_;
}

}  // namespace slim::mem
