#pragma once

// Analysis pass 1 — schedule lint.
//
// Verifies per-device program invariants of a pipeline schedule *before*
// graph building, turning what would otherwise surface as a simulator
// deadlock or a wrong memory ledger into a named, located finding:
//
//   sched-spec                  PipelineSpec::validate() failure
//   sched-pass-range            pass (microbatch, slice, chunk) out of range
//   sched-forward-multiplicity  each (mb, slice, chunk) forward exactly once
//                               per device
//   sched-backward-multiplicity each unit retired by exactly one Backward or
//                               exactly one BackwardInput+BackwardWeight pair
//   sched-backward-order        backward before its forward, or weight-grad
//                               before input-grad (ZB-V split ordering)
//   sched-inflight-bound        live activation units exceed the scheme's
//                               declared cap (Table 2 / Eq. 1 bounds)
//   sched-layout-roundtrip      StageLayout device_of/chunk_of/stage_of
//                               inconsistency (non-injective or out of range)
//
// The in-flight ledger mirrors the builder's memory deltas: a forward holds
// one unit; Backward releases it; BackwardInput releases (1 - wkeep) and
// BackwardWeight the remaining wkeep, with wkeep from the checkpoint policy
// (model::wgrad_kept_fraction) — so the ZB-V greedy's fractional cap is
// checked exactly.

#include <vector>

#include "src/analysis/findings.hpp"
#include "src/sched/schedule.hpp"

namespace slim::analysis {

struct ScheduleLintOptions {
  /// Declared per-device cap on simultaneously-live activation units (one
  /// unit = one (microbatch, slice, chunk) forward). <= 0 disables the
  /// sched-inflight-bound rule — used by sched::compile, which does not know
  /// which scheme produced the programs.
  double max_inflight_units = 0.0;
  /// Absolute slack added to the cap before flagging (the ZB-V greedy
  /// compares against its cap with the same epsilon).
  double inflight_tolerance = 1e-6;
};

std::vector<Finding> check_schedule(
    const sched::PipelineSpec& spec,
    const std::vector<sched::DeviceProgram>& programs,
    const ScheduleLintOptions& options = {});

}  // namespace slim::analysis
