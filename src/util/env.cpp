#include "src/util/env.hpp"

#include <cerrno>
#include <cstdlib>

#include "src/util/logging.hpp"

namespace slim::util {

std::optional<long long> parse_env_int(const char* text) {
  if (text == nullptr || *text == '\0') return std::nullopt;
  errno = 0;
  char* end = nullptr;
  const long long value = std::strtoll(text, &end, 10);
  if (errno == ERANGE || end == text || *end != '\0') return std::nullopt;
  return value;
}

long long env_int_or(const char* name, long long fallback,
                     long long min_value) {
  const char* raw = std::getenv(name);
  if (raw == nullptr) return fallback;
  const auto parsed = parse_env_int(raw);
  if (!parsed.has_value() || *parsed < min_value) {
    SLIM_LOG(Warn) << name << "=\"" << raw << "\" is not an integer >= "
                   << min_value << "; using " << fallback;
    return fallback;
  }
  return *parsed;
}

}  // namespace slim::util
