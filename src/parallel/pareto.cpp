#include "src/parallel/pareto.hpp"

#include <algorithm>
#include <sstream>

#include "src/util/units.hpp"

namespace slim::parallel {

std::string ParetoPoint::describe() const {
  std::ostringstream out;
  out << "ckpt=" << model::to_string(policy) << " offload="
      << static_cast<int>(offload_ratio * 100.0) << "%: "
      << format_bytes(peak_memory) << ", " << format_time(iteration_time)
      << " (" << format_percent(mfu) << " MFU" << (oom ? ", OOM" : "")
      << ")";
  return out.str();
}

std::vector<ParetoPoint> pareto_frontier(std::vector<ParetoPoint> points) {
  std::sort(points.begin(), points.end(),
            [](const ParetoPoint& a, const ParetoPoint& b) {
              if (a.peak_memory != b.peak_memory) {
                return a.peak_memory < b.peak_memory;
              }
              return a.iteration_time < b.iteration_time;
            });
  std::vector<ParetoPoint> frontier;
  double best_time = 1e300;
  for (const ParetoPoint& point : points) {
    if (point.iteration_time < best_time) {
      frontier.push_back(point);
      best_time = point.iteration_time;
    }
  }
  return frontier;
}

std::vector<ParetoPoint> checkpoint_pareto(
    const HybridConfig& base, const model::TransformerConfig& model,
    const model::GpuSpec& gpu, std::int64_t seq, std::int64_t tokens_per_iter,
    const std::vector<double>& offload_ratios) {
  std::vector<ParetoPoint> points;
  for (const auto policy :
       {model::CheckpointPolicy::None, model::CheckpointPolicy::Selective,
        model::CheckpointPolicy::Full}) {
    for (const double offload : offload_ratios) {
      HybridConfig cfg = base;
      cfg.policy = policy;
      cfg.offload_ratio = offload;
      if (!validate(cfg, model, static_cast<int>(cfg.world()), seq,
                    tokens_per_iter)
               .empty()) {
        continue;
      }
      const auto spec = make_spec(cfg, model, gpu, seq, tokens_per_iter);
      const auto r = core::run_scheme(cfg.scheme, spec);
      ParetoPoint point;
      point.policy = policy;
      point.offload_ratio = offload;
      point.peak_memory = r.peak_memory;
      point.iteration_time = r.iteration_time;
      point.mfu = r.mfu;
      point.oom = r.oom;
      points.push_back(point);
    }
  }
  // Mark the frontier in place.
  const auto frontier = pareto_frontier(points);
  for (ParetoPoint& point : points) {
    for (const ParetoPoint& f : frontier) {
      if (f.policy == point.policy && f.offload_ratio == point.offload_ratio) {
        point.on_frontier = true;
      }
    }
  }
  return points;
}

}  // namespace slim::parallel
