file(REMOVE_RECURSE
  "libslim_runtime.a"
)
