#include "src/analysis/schedule_check.hpp"

#include <cstdint>
#include <sstream>
#include <string>

#include "src/model/activation.hpp"

namespace slim::analysis {

namespace {

using sched::DeviceProgram;
using sched::Pass;
using sched::PassType;
using sched::PipelineSpec;
using sched::StageLayout;

const char* pass_name(PassType type) {
  switch (type) {
    case PassType::Forward: return "F";
    case PassType::Backward: return "B";
    case PassType::BackwardInput: return "BI";
    case PassType::BackwardWeight: return "BW";
  }
  return "?";
}

std::string pass_location(int dev, std::size_t pos, const Pass& pass) {
  std::ostringstream out;
  out << "dev " << dev << " pass " << pos << " (" << pass_name(pass.type)
      << " mb " << pass.microbatch << " slice " << pass.slice << " chunk "
      << pass.chunk << ")";
  return out.str();
}

std::string unit_name(const Pass& pass) {
  std::ostringstream out;
  out << "(mb " << pass.microbatch << ", slice " << pass.slice << ", chunk "
      << pass.chunk << ")";
  return out.str();
}

/// Per-(mb, slice, chunk) bookkeeping on one device.
struct UnitState {
  int forwards = 0;
  int backwards = 0;          // full Backward count
  int backward_inputs = 0;
  int backward_weights = 0;
  std::size_t forward_pos = 0;         // first occurrence
  std::size_t backward_input_pos = 0;  // first occurrence (BI only)
};

void check_layout(const PipelineSpec& spec, std::vector<Finding>& findings) {
  const StageLayout layout = spec.stage_layout();
  const int num_stages = layout.num_stages();
  std::vector<int> stage_of_slot(static_cast<std::size_t>(num_stages), -1);
  for (int stage = 0; stage < num_stages; ++stage) {
    const int dev = layout.device_of(stage);
    const int chunk = layout.chunk_of(stage);
    std::ostringstream loc;
    loc << "stage " << stage;
    if (dev < 0 || dev >= spec.p || chunk < 0 || chunk >= spec.v) {
      std::ostringstream msg;
      msg << "device_of/chunk_of maps stage " << stage << " to (dev " << dev
          << ", chunk " << chunk << ") outside [0," << spec.p << ")x[0,"
          << spec.v << ")";
      findings.push_back(
          {Severity::Error, "sched-layout-roundtrip", loc.str(), msg.str()});
      continue;
    }
    const int back = layout.stage_of(dev, chunk);
    if (back != stage) {
      std::ostringstream msg;
      msg << "stage_of(device_of(s), chunk_of(s)) = " << back
          << " does not round-trip to " << stage;
      findings.push_back(
          {Severity::Error, "sched-layout-roundtrip", loc.str(), msg.str()});
      continue;
    }
    const std::size_t slot = static_cast<std::size_t>(dev * spec.v + chunk);
    if (stage_of_slot[slot] >= 0) {
      std::ostringstream msg;
      msg << "stages " << stage_of_slot[slot] << " and " << stage
          << " both map to (dev " << dev << ", chunk " << chunk
          << "): layout is not injective";
      findings.push_back(
          {Severity::Error, "sched-layout-roundtrip", loc.str(), msg.str()});
    } else {
      stage_of_slot[slot] = stage;
    }
  }
}

void check_device(const PipelineSpec& spec, int dev,
                  const DeviceProgram& program, double wkeep,
                  const ScheduleLintOptions& options,
                  std::vector<Finding>& findings) {
  const int m = spec.m;
  const int n = spec.n;
  const int v = spec.v;
  const std::size_t units = static_cast<std::size_t>(m) *
                            static_cast<std::size_t>(n) *
                            static_cast<std::size_t>(v);
  std::vector<UnitState> state(units);
  auto unit_index = [&](const Pass& pass) {
    return (static_cast<std::size_t>(pass.microbatch) *
                static_cast<std::size_t>(n) +
            static_cast<std::size_t>(pass.slice)) *
               static_cast<std::size_t>(v) +
           static_cast<std::size_t>(pass.chunk);
  };

  // Walk the program once: range checks, occurrence counts, order checks
  // and the in-flight activation ledger.
  double inflight = 0.0;
  bool bound_reported = false;
  for (std::size_t pos = 0; pos < program.size(); ++pos) {
    const Pass& pass = program[pos];
    if (pass.microbatch < 0 || pass.microbatch >= m || pass.slice < 0 ||
        pass.slice >= n || pass.chunk < 0 || pass.chunk >= v) {
      std::ostringstream msg;
      msg << "pass indices outside m=" << m << " n=" << n << " v=" << v;
      findings.push_back({Severity::Error, "sched-pass-range",
                          pass_location(dev, pos, pass), msg.str()});
      continue;  // cannot attribute this pass to a unit
    }
    UnitState& unit = state[unit_index(pass)];
    switch (pass.type) {
      case PassType::Forward:
        if (unit.forwards == 0) unit.forward_pos = pos;
        ++unit.forwards;
        inflight += 1.0;
        break;
      case PassType::Backward:
        ++unit.backwards;
        if (unit.forwards == 0) {
          findings.push_back({Severity::Error, "sched-backward-order",
                              pass_location(dev, pos, pass),
                              "backward scheduled before its forward"});
        }
        inflight -= 1.0;
        break;
      case PassType::BackwardInput:
        if (unit.backward_inputs == 0) unit.backward_input_pos = pos;
        ++unit.backward_inputs;
        if (unit.forwards == 0) {
          findings.push_back({Severity::Error, "sched-backward-order",
                              pass_location(dev, pos, pass),
                              "input-gradient backward scheduled before its "
                              "forward"});
        }
        inflight -= 1.0 - wkeep;
        break;
      case PassType::BackwardWeight:
        ++unit.backward_weights;
        if (unit.backward_inputs == 0) {
          findings.push_back({Severity::Error, "sched-backward-order",
                              pass_location(dev, pos, pass),
                              "weight-gradient backward scheduled before the "
                              "unit's input-gradient backward (ZB-V splits "
                              "B into I then W)"});
        }
        inflight -= wkeep;
        break;
    }
    if (options.max_inflight_units > 0.0 && !bound_reported &&
        inflight >
            options.max_inflight_units + options.inflight_tolerance) {
      std::ostringstream msg;
      msg << "live activation units reach " << inflight
          << ", above the declared bound of " << options.max_inflight_units;
      findings.push_back({Severity::Error, "sched-inflight-bound",
                          pass_location(dev, pos, pass), msg.str()});
      bound_reported = true;  // one report per device, not per pass
    }
  }

  // Multiplicity: every unit needs exactly one forward and exactly one
  // retiring backward — a full Backward xor a BackwardInput+BackwardWeight
  // pair, never a mix.
  for (std::size_t u = 0; u < units; ++u) {
    const UnitState& unit = state[u];
    Pass probe;
    probe.microbatch = static_cast<std::int32_t>(u / static_cast<std::size_t>(n * v));
    probe.slice = static_cast<std::int32_t>((u / static_cast<std::size_t>(v)) %
                                            static_cast<std::size_t>(n));
    probe.chunk = static_cast<std::int32_t>(u % static_cast<std::size_t>(v));
    std::ostringstream loc;
    loc << "dev " << dev << " unit " << unit_name(probe);
    if (unit.forwards != 1) {
      std::ostringstream msg;
      msg << "forward appears " << unit.forwards << " times (expected 1)";
      findings.push_back({Severity::Error, "sched-forward-multiplicity",
                          loc.str(), msg.str()});
    }
    const bool full = unit.backwards == 1 && unit.backward_inputs == 0 &&
                      unit.backward_weights == 0;
    const bool split = unit.backwards == 0 && unit.backward_inputs == 1 &&
                       unit.backward_weights == 1;
    if (!full && !split) {
      std::ostringstream msg;
      msg << "backward coverage is B=" << unit.backwards
          << " BI=" << unit.backward_inputs << " BW=" << unit.backward_weights
          << " (expected B=1 or BI=1+BW=1)";
      findings.push_back({Severity::Error, "sched-backward-multiplicity",
                          loc.str(), msg.str()});
    }
  }
}

}  // namespace

std::vector<Finding> check_schedule(
    const PipelineSpec& spec, const std::vector<DeviceProgram>& programs,
    const ScheduleLintOptions& options) {
  std::vector<Finding> findings;

  const std::string err = spec.validate();
  if (!err.empty()) {
    findings.push_back({Severity::Error, "sched-spec", "spec", err});
  }
  check_layout(spec, findings);

  if (static_cast<int>(programs.size()) != spec.p) {
    std::ostringstream msg;
    msg << programs.size() << " device programs for p = " << spec.p;
    findings.push_back(
        {Severity::Error, "sched-forward-multiplicity", "programs",
         msg.str()});
    return findings;
  }
  const double wkeep = model::wgrad_kept_fraction(spec.cfg, spec.policy);
  for (int dev = 0; dev < spec.p; ++dev) {
    check_device(spec, dev, programs[static_cast<std::size_t>(dev)], wkeep,
                 options, findings);
  }
  return findings;
}

}  // namespace slim::analysis
