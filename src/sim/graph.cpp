#include "src/sim/graph.hpp"

#include <algorithm>

namespace slim::sim {

bool is_compute_class(OpClass cls) {
  switch (cls) {
    case OpClass::Forward:
    case OpClass::Backward:
    case OpClass::BackwardInput:
    case OpClass::BackwardWeight:
    case OpClass::Recompute:
    case OpClass::VocabForward:
    case OpClass::VocabBackward:
    case OpClass::Optimizer:
      return true;
    default:
      return false;
  }
}

const char* op_class_name(OpClass cls) {
  switch (cls) {
    case OpClass::Forward: return "forward";
    case OpClass::Backward: return "backward";
    case OpClass::BackwardInput: return "backward_input";
    case OpClass::BackwardWeight: return "backward_weight";
    case OpClass::Recompute: return "recompute";
    case OpClass::VocabForward: return "vocab_forward";
    case OpClass::VocabBackward: return "vocab_backward";
    case OpClass::Optimizer: return "optimizer";
    case OpClass::Send: return "send";
    case OpClass::ExchangeSend: return "exchange_send";
    case OpClass::Collective: return "collective";
    case OpClass::Other: return "other";
  }
  return "unknown";
}

OpGraph::OpGraph(Topology topology) : topology_(topology) {}

ResId OpGraph::intern_resource(std::int64_t key) {
  auto it = resource_index_.find(key);
  if (it != resource_index_.end()) return it->second;
  const ResId id = static_cast<ResId>(resource_count_++);
  resource_index_.emplace(key, id);
  programs_.emplace_back();
  return id;
}

ResId OpGraph::compute_resource(int device) {
  // Compute streams use key = device; channels use a shifted pair encoding
  // that can never collide with a plain device id.
  return intern_resource(static_cast<std::int64_t>(device));
}

ResId OpGraph::channel_resource(int src, int dst, int lane) {
  SLIM_CHECK(src != dst, "channel requires distinct endpoints");
  SLIM_CHECK(lane >= 0 && lane < 8, "lane out of range");
  const std::int64_t w = topology_.world_size();
  const std::int64_t pair = static_cast<std::int64_t>(src) * w + dst;
  const std::int64_t key = w + pair * 8 + lane;
  return intern_resource(key);
}

OpId OpGraph::add_compute(int device, double duration, OpClass cls,
                          std::vector<OpId> deps) {
  SLIM_CHECK(duration >= 0.0, "negative op duration");
  Op op;
  op.id = static_cast<OpId>(ops_.size());
  op.resource = compute_resource(device);
  op.duration = duration;
  op.cls = cls;
  op.device = device;
  op.deps = std::move(deps);
  programs_[op.resource].push_back(op.id);
  ops_.push_back(std::move(op));
  return ops_.back().id;
}

ResId OpGraph::nic_resource(int src, int lane) {
  SLIM_CHECK(lane >= 0 && lane < 8, "lane out of range");
  const std::int64_t w = topology_.world_size();
  // Distinct keyspace beyond the pairwise channels.
  const std::int64_t key =
      w + static_cast<std::int64_t>(w) * w * 8 +
      static_cast<std::int64_t>(src) * 8 + lane;
  return intern_resource(key);
}

ResId OpGraph::pcie_resource(int device) {
  const std::int64_t w = topology_.world_size();
  const std::int64_t key =
      w + static_cast<std::int64_t>(w) * w * 8 + w * 8 + device;
  return intern_resource(key);
}

OpId OpGraph::add_on_resource(ResId resource, int device, double duration,
                              OpClass cls, std::vector<OpId> deps) {
  SLIM_CHECK(duration >= 0.0, "negative op duration");
  Op op;
  op.id = static_cast<OpId>(ops_.size());
  op.resource = resource;
  op.duration = duration;
  op.cls = cls;
  op.device = device;
  op.deps = std::move(deps);
  programs_[op.resource].push_back(op.id);
  ops_.push_back(std::move(op));
  return ops_.back().id;
}

OpId OpGraph::add_transfer(int src, int dst, double bytes, OpClass cls,
                           std::vector<OpId> deps, int lane) {
  Op op;
  op.id = static_cast<OpId>(ops_.size());
  // Pairwise channels for every transfer: per-link FIFO order then always
  // matches both endpoints' program order, which keeps arbitrary schedules
  // deadlock-free by construction. NIC-port oversubscription (one device
  // talking to several remote peers at once) is therefore not modelled —
  // see DESIGN.md "known modeling limits".
  op.resource = channel_resource(src, dst, lane);
  op.duration = topology_.p2p_time(src, dst, bytes);
  op.cls = cls;
  op.device = src;
  op.peer = dst;
  op.bytes = bytes;
  op.deps = std::move(deps);
  programs_[op.resource].push_back(op.id);
  ops_.push_back(std::move(op));
  return ops_.back().id;
}

void OpGraph::add_mem(OpId id, MemDelta delta) { op(id).mem.push_back(delta); }

void OpGraph::set_tag(OpId id, std::int32_t microbatch, std::int32_t slice,
                      std::int32_t stage) {
  Op& o = op(id);
  o.microbatch = microbatch;
  o.slice = slice;
  o.stage = stage;
}

Op& OpGraph::op(OpId id) {
  SLIM_CHECK(id >= 0 && static_cast<std::size_t>(id) < ops_.size(),
             "op id out of range");
  return ops_[static_cast<std::size_t>(id)];
}

const Op& OpGraph::op(OpId id) const {
  SLIM_CHECK(id >= 0 && static_cast<std::size_t>(id) < ops_.size(),
             "op id out of range");
  return ops_[static_cast<std::size_t>(id)];
}

}  // namespace slim::sim
