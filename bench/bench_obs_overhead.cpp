// Observability overhead gate: the ALWAYS-ON observability — the worker
// flight recorder, its Telemetry flushes, wire counters and clock pings —
// must cost < 3% of step time. That is the cost every production run pays;
// the bench exits non-zero above the budget, so the telemetry ctest label
// turns an observability regression into a red test, not a slow dashboard.
//
// The OPT-IN extras (trace recorder + live JSON/Prometheus publishing) are
// measured and reported alongside but not gated: full tracing serializes
// every span over the control socket and is priced as a debugging mode, not
// an always-on tax.
//
// Method: K adjacent ON/OFF pairs (warm-up discarded, order alternating),
// overhead = median of the per-pair on/off ratios, minus 1, clamped at 0.
// Adjacent runs share the machine's noise regime, so each ratio is an
// apples-to-apples sample even on a busy single-core box; the median then
// discards the pairs a scheduler spike still split. A best-of estimator is
// NOT robust here: one lucky OFF sample anywhere poisons the whole gate.

#include "bench_common.hpp"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "src/dist/process_pipeline.hpp"
#include "src/obs/trace.hpp"
#include "src/runtime/pipeline_runtime.hpp"
#include "src/util/rng.hpp"

using namespace slim;

namespace {

constexpr double kBudget = 0.03;  // 3% of step time

bool smoke_mode() {
  const char* env = std::getenv("SLIMPIPE_BENCH_SMOKE");
  return env != nullptr && env[0] != '\0' && env[0] != '0';
}

struct Shape {
  num::BlockDims dims;
  std::int64_t vocab;
  int layers;
  int stages;
  int microbatches;
  int n_slices;
  int seq;
  int pairs;  // interleaved ON/OFF repetitions
};

Shape bench_shape() {
  if (smoke_mode()) {
    return {{32, 4, 2, 48}, 32, 4, 2, 2, 2, 24, 9};
  }
  return {{64, 8, 2, 96}, 64, 8, 2, 4, 2, 48, 11};
}

struct Data {
  std::vector<std::vector<std::int64_t>> tokens, targets;
};

Data make_data(const Shape& shape) {
  Rng rng(11);
  Data data;
  for (int mb = 0; mb < shape.microbatches; ++mb) {
    std::vector<std::int64_t> tok, tgt;
    for (int i = 0; i < shape.seq; ++i) {
      tok.push_back(static_cast<std::int64_t>(
          rng.next_below(static_cast<std::uint64_t>(shape.vocab))));
      tgt.push_back(static_cast<std::int64_t>(
          rng.next_below(static_cast<std::uint64_t>(shape.vocab))));
    }
    data.tokens.push_back(std::move(tok));
    data.targets.push_back(std::move(tgt));
  }
  return data;
}

enum class DistMode {
  Off,      // flight recorder disabled, no trace, no live publishing
  Flight,   // the always-on configuration (gated)
  Full,     // flight + trace recorder + JSON/Prometheus (informational)
};

double time_dist(dist::ProcessPipeline& pipe, const Shape& shape,
                 const Data& data, DistMode mode) {
  dist::ProcessOptions options;
  options.n_slices = shape.n_slices;
  options.flight = mode != DistMode::Off;
  obs::Recorder rec;
  if (mode == DistMode::Full) {
    options.recorder = &rec;
    const char* tmp = std::getenv("TMPDIR");
    const std::string dir = tmp != nullptr && tmp[0] != '\0' ? tmp : "/tmp";
    options.telemetry_json_path = dir + "/bench_obs_overhead_live.json";
    options.telemetry_prom_path = dir + "/bench_obs_overhead_live.prom";
    options.telemetry_interval = std::chrono::milliseconds(20);
  }
  const auto start = std::chrono::steady_clock::now();
  pipe.run_iteration(data.tokens, data.targets, options);
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

double time_threaded(rt::ThreadedPipeline& pipe, const Shape& shape,
                     const Data& data, bool trace_on) {
  rt::RunOptions options;
  options.n_slices = shape.n_slices;
  obs::Recorder rec;
  if (trace_on) options.recorder = &rec;
  const auto start = std::chrono::steady_clock::now();
  pipe.run_iteration(data.tokens, data.targets, options);
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

struct OverheadRow {
  std::vector<double> ratios;  // per-pair on/off
  double best_off = 1e300;
  double best_on = 1e300;

  void add_pair(double on, double off) {
    best_on = std::min(best_on, on);
    best_off = std::min(best_off, off);
    if (off > 0.0) ratios.push_back(on / off);
  }

  double overhead() const {
    if (ratios.empty()) return 0.0;
    std::vector<double> sorted = ratios;
    std::sort(sorted.begin(), sorted.end());
    const std::size_t n = sorted.size();
    const double median = n % 2 == 1
                              ? sorted[n / 2]
                              : (sorted[n / 2 - 1] + sorted[n / 2]) / 2.0;
    return std::max(0.0, median - 1.0);
  }
};

/// One adjacent pair, order alternating with `i` so a monotone load trend
/// penalizes ON and OFF equally often.
template <typename On, typename Off>
void sample_pair(OverheadRow& row, int i, On&& on, Off&& off) {
  if (i % 2 == 0) {
    const double t_on = on();
    row.add_pair(t_on, off());
  } else {
    const double t_off = off();
    row.add_pair(on(), t_off);
  }
}

}  // namespace

static void BM_ObsOverheadDistOn(benchmark::State& state) {
  const Shape shape = bench_shape();
  const Data data = make_data(shape);
  Rng rng(12);
  dist::ProcessPipeline pipe(shape.dims, shape.vocab, shape.layers,
                             shape.stages, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(time_dist(pipe, shape, data, DistMode::Flight));
  }
}
BENCHMARK(BM_ObsOverheadDistOn)->Unit(benchmark::kMillisecond);

int main(int argc, char** argv) {
  const Shape shape = bench_shape();
  slimbench::open_report("obs_overhead");
  slimbench::print_banner(
      "Observability overhead gate — flight recorder + telemetry < 3%",
      (smoke_mode() ? std::string("smoke shapes (SLIMPIPE_BENCH_SMOKE), ")
                    : std::string("full shapes, ")) +
          "p=" + std::to_string(shape.stages) +
          ", m=" + std::to_string(shape.microbatches) +
          ", n=" + std::to_string(shape.n_slices) +
          ", interleaved ON/OFF pairs=" + std::to_string(shape.pairs) +
          ", best-of timing",
      "breadcrumb recording is O(1) ring writes and flushes piggyback on "
      "heartbeats, so observed step-time overhead stays under the 3% budget "
      "on both substrates");

  const Data data = make_data(shape);
  Rng rng_d(12);
  dist::ProcessPipeline dist_pipe(shape.dims, shape.vocab, shape.layers,
                                  shape.stages, rng_d);
  Rng rng_t(12);
  rt::ThreadedPipeline threaded_pipe(shape.dims, shape.vocab, shape.layers,
                                     shape.stages, rng_t);

  // Warm-up (page cache, pools, first-fork costs) — discarded.
  time_dist(dist_pipe, shape, data, DistMode::Off);
  time_threaded(threaded_pipe, shape, data, false);

  OverheadRow flight_row, full_row, trace_row;
  for (int i = 0; i < shape.pairs; ++i) {
    sample_pair(
        flight_row, i,
        [&] { return time_dist(dist_pipe, shape, data, DistMode::Flight); },
        [&] { return time_dist(dist_pipe, shape, data, DistMode::Off); });
    sample_pair(
        full_row, i,
        [&] { return time_dist(dist_pipe, shape, data, DistMode::Full); },
        [&] { return time_dist(dist_pipe, shape, data, DistMode::Off); });
    sample_pair(
        trace_row, i,
        [&] { return time_threaded(threaded_pipe, shape, data, true); },
        [&] { return time_threaded(threaded_pipe, shape, data, false); });
  }

  Table table({"configuration", "off (best)", "on (best)", "overhead",
               "budget", "verdict"});
  const bool ok = flight_row.overhead() < kBudget;
  table.add_row({"dist: flight recorder (always-on, gated)",
                 format_time(flight_row.best_off),
                 format_time(flight_row.best_on),
                 fmt(flight_row.overhead() * 100.0, 2) + "%",
                 fmt(kBudget * 100.0, 1) + "%", ok ? "pass" : "FAIL"});
  table.add_row({"dist: + trace + live publishing (opt-in)",
                 format_time(full_row.best_off), format_time(full_row.best_on),
                 fmt(full_row.overhead() * 100.0, 2) + "%", "--", "info"});
  table.add_row({"threaded: trace recorder (opt-in)",
                 format_time(trace_row.best_off),
                 format_time(trace_row.best_on),
                 fmt(trace_row.overhead() * 100.0, 2) + "%", "--", "info"});
  slimbench::print_table("observability overhead", table);
  if (!ok) {
    std::fprintf(stderr,
                 "FATAL: always-on observability overhead exceeds the %.0f%% "
                 "budget\n",
                 kBudget * 100.0);
    return 1;
  }

  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
