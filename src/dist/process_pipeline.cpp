#include "src/dist/process_pipeline.hpp"

#include <algorithm>
#include <chrono>
#include <csignal>
#include <cstring>
#include <deque>
#include <limits>
#include <numeric>
#include <string>
#include <thread>
#include <utility>

#include <sys/wait.h>
#include <unistd.h>

#include "src/dist/stage_worker.hpp"
#include "src/dist/wire.hpp"
#include "src/obs/clock.hpp"
#include "src/obs/flight_recorder.hpp"
#include "src/obs/telemetry.hpp"
#include "src/util/logging.hpp"
#include "src/util/table.hpp"
#include "src/util/thread_pool.hpp"

namespace slim::dist {

namespace {

// Every supervisor timestamp is on the run's monotonic clock (obs/clock.hpp).
using Clock = obs::MonoClock;

/// Supervisor-side view of one worker process.
struct WorkerHandle {
  int stage = -1;
  pid_t pid = -1;
  Fd control;  // parent end of the control socketpair
  WireStatus status;
  Clock::time_point last_heard;
  Clock::time_point last_ping;
  double fork_offset = 0.0;  // recorder time at fork (trace re-basing)
  /// Ping/pong offset estimator: maps this worker's event timestamps onto
  /// the run clock. Until the first pong lands, fork_offset is the fallback.
  obs::ClockAligner aligner;
  /// Last-K flight-recorder events recovered from Telemetry flushes — the
  /// postmortem breadcrumb trail of a worker that dies without a Done frame.
  std::deque<obs::FlightEvent> flight;
  std::uint64_t flight_dropped = 0;
  bool control_eof = false;
  bool done = false;  // Done frame received
  bool exited = false;
  bool signaled = false;
  int exit_code = 0;
  int term_signal = 0;
  int commits = 0;  // Commit frames received this attempt
  bool have_done = false;
  WireStageDone done_info;
  std::string error_detail;
};

/// Kills and reaps whatever is still alive when an attempt unwinds — no
/// exit path may leak a worker process.
struct Reaper {
  std::vector<WorkerHandle>* workers;
  ~Reaper() {
    if (workers == nullptr) return;
    for (WorkerHandle& w : *workers) {
      if (w.pid > 0 && !w.exited) {
        ::kill(w.pid, SIGKILL);
        int wstatus = 0;
        while (::waitpid(w.pid, &wstatus, 0) < 0 && errno == EINTR) {
        }
        w.exited = true;
      }
    }
  }
};

std::string describe_exit(const WorkerHandle& w) {
  if (w.signaled) {
    return std::string("killed by signal ") + std::to_string(w.term_signal) +
           " (" + ::strsignal(w.term_signal) + ")";
  }
  return "exited with code " + std::to_string(w.exit_code);
}

/// Resolves the fault plan's runtime rules for one stage onto the real
/// transport (armed only on injecting attempts).
WorkerFaults resolve_faults(const fault::FaultPlan* plan, int stage,
                            bool inject) {
  WorkerFaults faults;
  if (!inject || plan == nullptr) return faults;
  for (const fault::StageCrash& crash : plan->stage_crashes) {
    if (crash.stage == stage) faults.crash_after = crash.after_messages;
  }
  for (const fault::StageHang& hang : plan->stage_hangs) {
    if (hang.stage == stage) faults.hang_after = hang.after_messages;
  }
  for (const fault::MessageDelay& delay : plan->delays) {
    if (delay.stage == -1 || delay.stage == stage) {
      faults.delay_every = delay.every;
      faults.delay_seconds = delay.seconds;
    }
  }
  for (const fault::LinkFault& link : plan->links) {
    if (link.src == -1 || link.src == stage) {
      faults.link_extra_latency += link.extra_latency;
    }
  }
  for (const fault::SocketDrop& drop : plan->socket_drops) {
    if (drop.stage == -1 || drop.stage == stage) {
      faults.drops.push_back({drop.every, drop.count, drop.max_retries});
    }
  }
  for (const fault::SocketDelay& delay : plan->socket_delays) {
    if (delay.stage == -1 || delay.stage == stage) {
      faults.socket_delays.push_back({delay.every, delay.seconds});
    }
  }
  return faults;
}

}  // namespace

ProcessPipeline::ProcessPipeline(num::BlockDims dims, std::int64_t vocab,
                                 int layers_total, int stages, Rng& rng)
    : model_(rt::PipelineModel::build(dims, vocab, layers_total, stages, rng,
                                      /*chunks_per_stage=*/1)) {}

ProcessPipeline::Result ProcessPipeline::run_iteration(
    const std::vector<std::vector<std::int64_t>>& tokens,
    const std::vector<std::vector<std::int64_t>>& targets, int n_slices) {
  ProcessOptions options;
  options.n_slices = n_slices;
  return run_iteration(tokens, targets, options);
}

ProcessPipeline::Result ProcessPipeline::run_reference(
    const std::vector<std::vector<std::int64_t>>& tokens,
    const std::vector<std::vector<std::int64_t>>& targets) {
  rt::ReferenceResult reference = rt::reference_run(model_, tokens, targets);
  Result result;
  result.loss = reference.loss;
  result.grads = std::move(reference.grads);
  return result;
}

ProcessPipeline::Result ProcessPipeline::run_iteration(
    const std::vector<std::vector<std::int64_t>>& tokens,
    const std::vector<std::vector<std::int64_t>>& targets,
    const ProcessOptions& options) {
  const int n_slices = options.n_slices;
  const int m = static_cast<int>(tokens.size());
  const int p = model_.stages;
  SLIM_CHECK(m >= 1 && targets.size() == tokens.size(), "bad microbatches");
  SLIM_CHECK(n_slices >= 1, "need at least one slice");
  // Per-microbatch slice boundaries: explicit from the caller, or derived
  // token-uniform (remainder to the first slices) — seq % n_slices != 0 and
  // ragged microbatch lengths are both legal, every token is trained on.
  std::vector<core::SliceLayout> layouts = options.layouts;
  if (layouts.empty()) {
    for (int mb = 0; mb < m; ++mb) {
      layouts.push_back(core::SliceLayout::uniform(
          static_cast<std::int64_t>(tokens[static_cast<std::size_t>(mb)].size()),
          n_slices));
    }
  }
  SLIM_CHECK(static_cast<int>(layouts.size()) == m,
             "need one slice layout per microbatch");
  for (int mb = 0; mb < m; ++mb) {
    const core::SliceLayout& layout = layouts[static_cast<std::size_t>(mb)];
    SLIM_CHECK(layout.slices() == n_slices,
               "layout slice count mismatches n_slices");
    SLIM_CHECK(layout.seq() ==
                   static_cast<std::int64_t>(
                       tokens[static_cast<std::size_t>(mb)].size()),
               "slice layout does not cover its microbatch");
    SLIM_CHECK(tokens[static_cast<std::size_t>(mb)].size() ==
                   targets[static_cast<std::size_t>(mb)].size(),
               "targets size mismatch");
  }
  const fault::FaultPlan* plan = options.faults;
  if (plan != nullptr) {
    const std::vector<fault::PlanIssue> issues = fault::validate(*plan, p);
    SLIM_CHECK(issues.empty(), "invalid fault plan:\n" + fault::render(issues));
  }
  obs::Recorder* const rec = options.recorder;
  if (rec != nullptr) {
    for (int s = 0; s < p; ++s) {
      rec->set_track_name(s, "stage " + std::to_string(s));
    }
    rec->set_process_name(static_cast<std::int64_t>(::getpid()), "supervisor");
  }
  // The run clock: the recorder's epoch when tracing, else this iteration's
  // start. Pings carry it as t1 and pongs return to it as t4.
  const Clock::time_point run_epoch = Clock::now();
  auto run_now = [&]() -> double {
    return rec != nullptr
               ? rec->now()
               : std::chrono::duration<double>(Clock::now() - run_epoch)
                     .count();
  };

  Result result;
  result.grads.embedding = num::Tensor(model_.vocab, model_.dims.hidden);
  for (int i = 0; i < model_.layers_total; ++i) {
    result.grads.layers.push_back(num::LayerGrads::zeros(model_.dims));
  }
  result.grads.final_norm = num::Tensor(1, model_.dims.hidden);
  result.stats.peak_live_slices.assign(static_cast<std::size_t>(p), 0);
  result.stats.messages.assign(static_cast<std::size_t>(p), 0);

  std::vector<num::Tensor> head_shard_grad;
  for (int s = 0; s < p; ++s) {
    head_shard_grad.emplace_back(model_.vocab, model_.dims.hidden);
  }
  double total_loss = 0.0;
  rt::CommitLedger ledger(model_, m, /*vocab_parallel=*/false);
  std::vector<bool> merged(static_cast<std::size_t>(m), false);
  fault::FaultReport iteration_report;

  // Per-stage accumulators across attempts (a respawned stage's metrics
  // keep folding into the same slot, like the threaded backend's probes).
  std::vector<double> busy(static_cast<std::size_t>(p), 0.0);
  std::vector<double> comm(static_cast<std::size_t>(p), 0.0);
  std::vector<double> blocked(static_cast<std::size_t>(p), 0.0);
  std::vector<std::int64_t> p2p_msgs(static_cast<std::size_t>(p), 0);
  std::vector<double> p2p_bytes(static_cast<std::size_t>(p), 0.0);
  std::vector<int> peak_queue(static_cast<std::size_t>(p), 0);
  std::vector<std::vector<std::int64_t>> arena_peaks(
      static_cast<std::size_t>(p));
  std::vector<std::int64_t> arena_totals(static_cast<std::size_t>(p), 0);
  std::vector<std::int64_t> frames_sent(static_cast<std::size_t>(p), 0);
  std::vector<std::int64_t> frames_recv(static_cast<std::size_t>(p), 0);
  std::vector<double> bytes_recv(static_cast<std::size_t>(p), 0.0);
  std::vector<std::int64_t> crc_rejects(static_cast<std::size_t>(p), 0);
  std::vector<std::int64_t> send_retries(static_cast<std::size_t>(p), 0);
  std::vector<double> clock_offset(static_cast<std::size_t>(p), 0.0);
  std::vector<double> clock_uncertainty(static_cast<std::size_t>(p), 0.0);
  std::vector<std::int64_t> clock_samples(static_cast<std::size_t>(p), 0);
  double wall_seconds = 0.0;

  // Live telemetry state: each attempt refreshes last_snapshot on the
  // telemetry cadence; the iteration's tail writes the terminal phase.
  const bool telemetry_on = !options.telemetry_json_path.empty() ||
                            !options.telemetry_prom_path.empty();
  obs::LiveSnapshot last_snapshot;
  auto publish_snapshot = [&](const obs::LiveSnapshot& snap) {
    if (!options.telemetry_json_path.empty()) {
      obs::write_atomic(options.telemetry_json_path,
                        obs::snapshot_to_json(snap).dump(2));
    }
    if (!options.telemetry_prom_path.empty()) {
      obs::write_atomic(options.telemetry_prom_path,
                        obs::prometheus_text(snap));
    }
  };
  std::vector<int> respawns(static_cast<std::size_t>(p), 0);
  int attempt_index = 0;

  // KillSpec arming: once overall, or on every attempt when persistent.
  int kills_left = options.kill.phase == KillSpec::Phase::None ||
                           options.kill.stage < 0 || options.kill.stage >= p
                       ? 0
                       : (options.kill.persistent
                              ? std::numeric_limits<int>::max()
                              : 1);

  struct AttemptOutcome {
    bool failed = false;
    int culprit = -1;
    std::string detail;
    std::string table;
  };

  // ---- one pipeline attempt over a subset of the microbatches ----
  auto run_attempt = [&](const std::vector<int>& mbs,
                         bool inject) -> AttemptOutcome {
    const int mk = static_cast<int>(mbs.size());
    SLIM_CHECK(mk >= 1, "attempt without microbatches");
    for (int s = 0; s < p; ++s) {
      for (const int mb : mbs) ledger.prepare(s, mb);
    }

    const auto attempt_start = Clock::now();

    // Transport setup: one socketpair per adjacent stage boundary, with
    // bounded retry over injected transient connect failures.
    std::vector<SocketPair> boundaries;
    for (int b = 0; b + 1 < p; ++b) {
      int fail_first = 0;
      int rule_stage = -1;
      if (inject && plan != nullptr) {
        for (const fault::SocketConnectFail& rule :
             plan->socket_connect_fails) {
          // A rule names the stage whose adjacent transport flaps; that is
          // the boundary upstream of the stage (downstream for stage 0).
          const int affected = std::min(rule.stage, p - 2);
          if (affected == b) {
            fail_first = std::max(fail_first, rule.failures);
            rule_stage = rule.stage;
          }
        }
      }
      boundaries.push_back(connect_with_retry(
          fail_first, fail_first + 3, [&](int attempt) {
            const std::string detail =
                "transport stage " + std::to_string(b) + "<->" +
                std::to_string(b + 1) + " connect failed (attempt " +
                std::to_string(attempt) + "), retrying";
            iteration_report.events.push_back(
                {fault::FaultEvent::Kind::ConnectRetry, rule_stage,
                 rec != nullptr ? rec->now() : 0.0, attempt, detail});
            if (rec != nullptr) {
              rec->instant(std::max(0, rule_stage), "connect retry",
                           obs::kCatFault, detail);
            }
          }));
    }
    std::vector<SocketPair> controls;
    for (int s = 0; s < p; ++s) controls.push_back(make_socket_pair());
    // Raw parent-end fds, snapshotted before any Fd is moved into a
    // WorkerHandle — later children must still close earlier parent ends.
    std::vector<int> parent_control_fds;
    for (const SocketPair& pair : controls) {
      parent_control_fds.push_back(pair.a.get());
    }

    std::vector<WorkerHandle> workers(static_cast<std::size_t>(p));
    Reaper reaper{&workers};

    const bool kill_armed = kills_left > 0;
    const KillSpec& kill = options.kill;

    for (int s = 0; s < p; ++s) {
      WorkerHandle& w = workers[static_cast<std::size_t>(s)];
      w.stage = s;
      w.fork_offset = rec != nullptr ? rec->now() : 0.0;
      WorkerConfig cfg;
      cfg.model = &model_;
      cfg.stage = s;
      cfg.n_slices = n_slices;
      cfg.layouts = layouts;
      cfg.mbs = mbs;
      cfg.tokens = &tokens;
      cfg.targets = &targets;
      cfg.prev_fd = s > 0 ? boundaries[static_cast<std::size_t>(s - 1)].b.get()
                          : -1;
      cfg.next_fd =
          s + 1 < p ? boundaries[static_cast<std::size_t>(s)].a.get() : -1;
      cfg.control_fd = controls[static_cast<std::size_t>(s)].b.get();
      cfg.heartbeat_interval = options.heartbeat_interval;
      cfg.starvation_timeout = options.starvation_timeout;
      cfg.measure_memory = options.measure_memory;
      cfg.trace = rec != nullptr;
      cfg.attempt = attempt_index;
      cfg.flight = options.flight;
      cfg.flight_capacity = options.flight_capacity;
      cfg.faults = resolve_faults(plan, s, inject);

      // fork() while holding the kernel pool's lock: the child inherits
      // the pool in a known state, reinitializes it, runs the stage
      // single-threaded and leaves only via _exit — the parent's atexit
      // chain, stdio buffers and terminate handler never run twice.
      pid_t pid = -1;
      util::ThreadPool::global().run_locked([&] {
        pid = ::fork();
        SLIM_CHECK(pid >= 0,
                   std::string("fork failed: ") + std::strerror(errno));
        if (pid == 0) {
          util::ThreadPool::global().child_after_fork();
          // Keep only this stage's three sockets; close every other end so
          // EOF propagates correctly when peers die.
          for (int b = 0; b + 1 < p; ++b) {
            if (b != s - 1) ::close(boundaries[static_cast<std::size_t>(b)].b.get());
            if (b != s) ::close(boundaries[static_cast<std::size_t>(b)].a.get());
          }
          for (int c = 0; c < p; ++c) {
            ::close(parent_control_fds[static_cast<std::size_t>(c)]);
            if (c != s) ::close(controls[static_cast<std::size_t>(c)].b.get());
          }
          ::_exit(run_stage_worker(cfg));
        }
      });
      w.pid = pid;
      w.last_heard = Clock::now();
      // Backdated so the first supervision-loop pass pings immediately —
      // clock alignment is useful from the first heartbeat on.
      w.last_ping = Clock::now() - options.ping_interval;
      w.control = std::move(controls[static_cast<std::size_t>(s)].a);
      if (rec != nullptr) {
        rec->set_track_pid(s, static_cast<std::int64_t>(pid));
        rec->set_process_name(static_cast<std::int64_t>(pid),
                              "stage " + std::to_string(s) + " worker");
      }

      if (kill_armed && kill.phase == KillSpec::Phase::PreForward &&
          kill.stage == s) {
        // Real SIGKILL before the stage completes any forward: the worker
        // was just forked and the rest of the pipeline is not even up.
        ::kill(pid, SIGKILL);
        --kills_left;
      }
    }
    // Parent relinquishes the data plane and the worker ends of the
    // control plane: stage-to-stage traffic is theirs alone.
    boundaries.clear();
    for (SocketPair& pair : controls) pair.b.reset();
    controls.clear();

    AttemptOutcome outcome;
    Clock::time_point drain_until{};
    auto fail = [&](int stage, const std::string& detail) {
      if (outcome.failed) return;
      outcome.failed = true;
      outcome.culprit = stage;
      outcome.detail = detail;
      drain_until = Clock::now() + options.drain_grace;
    };

    auto postmortem = [&]() -> std::string {
      Table table({"stage", "state", "beat age ms", "messages", "fwd", "bwd",
                   "live", "cap", "deferred", "queue", "last mb",
                   "committed mbs"});
      const auto now = Clock::now();
      for (const WorkerHandle& w : workers) {
        const int cap = n_slices + 2 * (p - 1 - w.stage);
        std::string state =
            worker_state_name(static_cast<WorkerState>(w.status.state));
        if (w.exited && !w.done) state = describe_exit(w);
        const auto age = std::chrono::duration_cast<std::chrono::milliseconds>(
            now - w.last_heard);
        table.add_row(
            {std::to_string(w.stage), state, std::to_string(age.count()),
             std::to_string(w.status.messages),
             std::to_string(w.status.done_f) + "/" +
                 std::to_string(mk * n_slices),
             std::to_string(w.status.done_b) + "/" +
                 std::to_string(mk * n_slices),
             std::to_string(w.status.live), std::to_string(cap),
             std::to_string(w.status.deferred), std::to_string(w.status.queue),
             w.status.last_mb < 0 ? std::string("-")
                                  : std::to_string(w.status.last_mb),
             std::to_string(w.status.committed) + "/" + std::to_string(mk)});
      }
      std::string out = table.to_string();
      // Breadcrumbs of every worker that did not finish cleanly: the last-K
      // flight-recorder events recovered from its Telemetry flushes show
      // what the stage was doing when it died/hung, not just that it did.
      for (const WorkerHandle& w : workers) {
        if (w.done || w.flight.empty()) continue;
        out += "\nstage " + std::to_string(w.stage) +
               " flight recorder tail (last " +
               std::to_string(w.flight.size()) + " recovered events, " +
               std::to_string(w.flight_dropped) + " dropped before flush):\n";
        out += obs::render_flight_tail(
            std::vector<obs::FlightEvent>(w.flight.begin(), w.flight.end()));
      }
      return out;
    };

    // Reads every frame a worker's control socket has ready.
    auto read_worker = [&](WorkerHandle& w) {
      while (w.control.valid() && !w.control_eof &&
             poll_readable(w.control.get(), 0)) {
        Frame frame;
        const IoStatus io = recv_frame(w.control.get(), &frame);
        if (io != IoStatus::Ok) {
          // Torn/Corrupt: the worker died mid-send. If it was a Commit
          // frame, the tail is discarded and the slot stays incomplete —
          // the microbatch is simply replayed (at-most-once semantics).
          w.control_eof = true;
          if (io != IoStatus::Eof) {
            iteration_report.events.push_back(
                {fault::FaultEvent::Kind::Crash, w.stage,
                 rec != nullptr ? rec->now() : 0.0, w.status.messages,
                 std::string("control frame ") + io_status_name(io) +
                     "; half-written tail discarded"});
          }
          return;
        }
        w.last_heard = Clock::now();
        switch (frame.kind) {
          case FrameKind::Hello:
            break;
          case FrameKind::Heartbeat: {
            Reader r(frame.payload);
            w.status = read_status(r);
            break;
          }
          case FrameKind::Commit: {
            Reader r(frame.payload);
            ledger.slot(w.stage, frame.mb) = read_commit(r);
            ++w.commits;
            if (kills_left > 0 && kill.stage == w.stage && !w.exited) {
              if ((kill.phase == KillSpec::Phase::MidCommit &&
                   w.commits == 1) ||
                  (kill.phase == KillSpec::Phase::PostCommit &&
                   w.commits == mk)) {
                ::kill(w.pid, SIGKILL);
                --kills_left;
              }
            }
            break;
          }
          case FrameKind::Event:
            break;  // reserved; events currently ride in Done/Error frames
          case FrameKind::Telemetry: {
            // Flight-recorder flush: keep the last flight_tail events as the
            // worker's recoverable breadcrumb trail.
            Reader r(frame.payload);
            WireFlightFlush flush = read_flight_flush(r);
            w.flight_dropped += flush.dropped;
            const std::size_t keep =
                static_cast<std::size_t>(std::max(1, options.flight_tail));
            for (const obs::FlightEvent& event : flush.events) {
              w.flight.push_back(event);
              if (w.flight.size() > keep) w.flight.pop_front();
            }
            break;
          }
          case FrameKind::Pong: {
            // NTP 4-timestamp clock sample: t1 (ours, echoed), t2/t3
            // (worker clock), t4 = now on the run clock.
            Reader r(frame.payload);
            obs::ClockSample sample;
            sample.t1 = r.f64();
            sample.t2 = r.f64();
            sample.t3 = r.f64();
            sample.t4 = run_now();
            w.aligner.add(sample);
            break;
          }
          case FrameKind::Error: {
            Reader r(frame.payload);
            w.status = read_status(r);
            w.error_detail = r.str();
            const std::int32_t n_events = r.i32();
            for (std::int32_t i = 0; i < n_events; ++i) {
              iteration_report.events.push_back(read_event(r));
            }
            fail(w.stage, w.error_detail);
            break;
          }
          case FrameKind::Done: {
            Reader r(frame.payload);
            w.done_info = read_stage_done(r);
            w.have_done = true;
            w.done = true;
            w.status = w.done_info.status;
            break;
          }
          default:
            fail(w.stage, std::string("unexpected control frame: ") +
                              frame_kind_name(frame.kind));
        }
      }
    };

    // Folds the workers' latest heartbeat counters into a LiveSnapshot for
    // the JSON/Prometheus publishers (and the final done/failed write).
    auto build_snapshot = [&](const std::string& phase) {
      obs::LiveSnapshot snap;
      snap.ts = run_now();
      snap.phase = phase;
      snap.attempt = attempt_index;
      snap.microbatches = m;
      for (const bool merged_one : merged) {
        snap.merged_microbatches += merged_one ? 1 : 0;
      }
      const auto now = Clock::now();
      for (const WorkerHandle& w : workers) {
        obs::StageLive live;
        live.stage = w.stage;
        live.pid = static_cast<std::int64_t>(w.pid);
        live.state =
            w.exited && !w.done
                ? describe_exit(w)
                : worker_state_name(static_cast<WorkerState>(w.status.state));
        live.beat_age_seconds =
            std::chrono::duration<double>(now - w.last_heard).count();
        live.messages = w.status.messages;
        live.done_f = w.status.done_f;
        live.want_f = mk * n_slices;
        live.done_b = w.status.done_b;
        live.want_b = mk * n_slices;
        live.live = w.status.live;
        live.live_cap = n_slices + 2 * (p - 1 - w.stage);
        live.queue = w.status.queue;
        live.deferred = w.status.deferred;
        live.committed = w.status.committed;
        live.committed_total = mk;
        live.frames_out = w.status.prev.frames_out + w.status.next.frames_out;
        live.frames_in = w.status.prev.frames_in + w.status.next.frames_in;
        live.bytes_out = static_cast<double>(w.status.prev.bytes_out +
                                             w.status.next.bytes_out);
        live.bytes_in = static_cast<double>(w.status.prev.bytes_in +
                                            w.status.next.bytes_in);
        live.crc_rejects =
            w.status.prev.crc_rejects + w.status.next.crc_rejects;
        live.retries = w.status.prev.retries + w.status.next.retries;
        live.arena_peak_bytes = static_cast<double>(
            arena_totals[static_cast<std::size_t>(w.stage)]);
        if (w.aligner.aligned()) {
          live.clock_offset_seconds = w.aligner.offset();
          live.clock_uncertainty_seconds = w.aligner.uncertainty();
        }
        live.flight_events = w.status.flight_recorded;
        live.respawns = respawns[static_cast<std::size_t>(w.stage)];
        snap.stages.push_back(live);
      }
      return snap;
    };

    // ---- supervision loop: heartbeats, commits, reaping, deadlines ----
    Clock::time_point next_telemetry = Clock::now();
    for (;;) {
      bool all_exited = true;
      for (const WorkerHandle& w : workers) all_exited &= w.exited;
      if (all_exited) break;
      if (outcome.failed && Clock::now() >= drain_until) break;

      std::vector<int> fds;
      for (const WorkerHandle& w : workers) {
        fds.push_back(w.control_eof ? -1 : w.control.get());
      }
      poll_readable_many(fds, 10);
      for (WorkerHandle& w : workers) read_worker(w);

      // Clock-alignment pings. A dead peer just makes send_frame fail
      // (MSG_NOSIGNAL) — its EOF is picked up by the read path.
      for (WorkerHandle& w : workers) {
        if (w.exited || w.done || w.control_eof || !w.control.valid()) {
          continue;
        }
        if (Clock::now() - w.last_ping < options.ping_interval) continue;
        Frame ping;
        ping.kind = FrameKind::Ping;
        ping.stage = w.stage;
        Writer writer;
        writer.f64(run_now());
        ping.payload = writer.take();
        send_frame(w.control.get(), ping);
        w.last_ping = Clock::now();
      }

      if (telemetry_on && Clock::now() >= next_telemetry) {
        last_snapshot =
            build_snapshot(outcome.failed ? "draining" : "running");
        publish_snapshot(last_snapshot);
        next_telemetry = Clock::now() + options.telemetry_interval;
      }

      for (WorkerHandle& w : workers) {
        if (w.exited || w.pid <= 0) continue;
        int wstatus = 0;
        const pid_t reaped = ::waitpid(w.pid, &wstatus, WNOHANG);
        if (reaped == w.pid) {
          w.exited = true;
          if (WIFSIGNALED(wstatus)) {
            w.signaled = true;
            w.term_signal = WTERMSIG(wstatus);
          } else {
            w.exit_code = WEXITSTATUS(wstatus);
          }
          // Frames sent before death are still in the socket buffer —
          // drain before judging (a clean worker's Done may race the reap).
          read_worker(w);
          if (!w.done) {
            if (w.signaled) {
              iteration_report.events.push_back(
                  {fault::FaultEvent::Kind::Crash, w.stage,
                   rec != nullptr ? rec->now() : 0.0, w.status.messages,
                   "stage " + std::to_string(w.stage) + " " +
                       describe_exit(w)});
              if (rec != nullptr) {
                rec->instant(w.stage, "crash", obs::kCatFault,
                             describe_exit(w));
              }
              fail(w.stage, describe_exit(w));
            } else if (!w.error_detail.empty()) {
              fail(w.stage, w.error_detail);
            } else {
              fail(w.stage, describe_exit(w) + " before finishing its work");
            }
          }
        }
      }

      // Missed-heartbeat deadline: a live worker silent for too long is
      // hung (injected hang, wedged syscall, livelock) — SIGKILL it and
      // let the replay machinery take over.
      const auto now = Clock::now();
      for (WorkerHandle& w : workers) {
        if (w.exited || w.done || w.pid <= 0) continue;
        if (now - w.last_heard > options.heartbeat_timeout) {
          const std::string detail =
              "stage " + std::to_string(w.stage) + " missed heartbeats for " +
              std::to_string(std::chrono::duration_cast<
                                 std::chrono::milliseconds>(now - w.last_heard)
                                 .count()) +
              " ms (deadline " +
              std::to_string(options.heartbeat_timeout.count()) +
              " ms); killed";
          iteration_report.events.push_back(
              {fault::FaultEvent::Kind::Watchdog, w.stage,
               rec != nullptr ? rec->now() : 0.0, w.status.messages, detail});
          if (rec != nullptr) {
            rec->instant(w.stage, "watchdog", obs::kCatFault, detail);
          }
          ::kill(w.pid, SIGKILL);
          fail(w.stage, detail);
        }
      }
    }

    // Teardown: kill stragglers, reap everyone, take one final pass over
    // the control buffers (commits sent moments before death count).
    for (WorkerHandle& w : workers) {
      if (!w.exited && w.pid > 0) ::kill(w.pid, SIGKILL);
    }
    for (WorkerHandle& w : workers) {
      if (w.exited || w.pid <= 0) continue;
      int wstatus = 0;
      while (::waitpid(w.pid, &wstatus, 0) < 0 && errno == EINTR) {
      }
      w.exited = true;
      if (WIFSIGNALED(wstatus)) {
        w.signaled = true;
        w.term_signal = WTERMSIG(wstatus);
      } else {
        w.exit_code = WEXITSTATUS(wstatus);
      }
    }
    for (WorkerHandle& w : workers) read_worker(w);
    if (outcome.failed) outcome.table = postmortem();
    if (telemetry_on) {
      last_snapshot = build_snapshot(outcome.failed ? "draining" : "running");
    }

    wall_seconds +=
        std::chrono::duration<double>(Clock::now() - attempt_start).count();

    // Fold the attempt's telemetry into the iteration totals.
    for (WorkerHandle& w : workers) {
      const std::size_t s = static_cast<std::size_t>(w.stage);
      result.stats.messages[s] += w.status.messages;
      iteration_report.injected_seconds += w.status.injected_delay_seconds;
      // Wire counters come from the last status snapshot (the Done frame's
      // when the worker finished, the final heartbeat's when it died), so a
      // crashed attempt's traffic still counts.
      frames_sent[s] += w.status.prev.frames_out + w.status.next.frames_out;
      frames_recv[s] += w.status.prev.frames_in + w.status.next.frames_in;
      bytes_recv[s] += static_cast<double>(w.status.prev.bytes_in +
                                           w.status.next.bytes_in);
      crc_rejects[s] += w.status.prev.crc_rejects + w.status.next.crc_rejects;
      send_retries[s] += w.status.prev.retries + w.status.next.retries;
      if (w.aligner.aligned()) {
        clock_offset[s] = w.aligner.offset();
        clock_uncertainty[s] = w.aligner.uncertainty();
      }
      clock_samples[s] += static_cast<std::int64_t>(w.aligner.samples());
      if (!w.have_done) continue;
      const WireStageDone& info = w.done_info;
      busy[s] += info.busy_seconds;
      comm[s] += info.comm_seconds;
      blocked[s] += info.blocked_recv_seconds;
      p2p_msgs[s] += info.p2p_messages;
      p2p_bytes[s] += info.p2p_bytes;
      peak_queue[s] = std::max(peak_queue[s], info.peak_queue);
      result.stats.peak_live_slices[s] =
          std::max(result.stats.peak_live_slices[s], info.peak_live);
      if (arena_peaks[s].size() < info.arena_peak_bytes.size()) {
        arena_peaks[s].resize(info.arena_peak_bytes.size(), 0);
      }
      for (std::size_t c = 0; c < info.arena_peak_bytes.size(); ++c) {
        arena_peaks[s][c] = std::max(arena_peaks[s][c],
                                     info.arena_peak_bytes[c]);
      }
      arena_totals[s] = std::max(arena_totals[s], info.arena_peak_total);
      for (const fault::FaultEvent& event : info.events) {
        iteration_report.events.push_back(event);
      }
      if (rec != nullptr) {
        // Re-base worker-local trace records onto the run clock: the
        // ping/pong offset estimate when available (error bound rtt/2),
        // else the cruder fork-time offset.
        auto to_run_clock = [&w](double worker_ts) {
          const double run_ts = w.aligner.aligned()
                                    ? w.aligner.to_local(worker_ts)
                                    : w.fork_offset + worker_ts;
          // The estimate's error is bounded by rtt/2, which on a loaded box
          // can push a worker's earliest events before its fork — clamp to
          // the one provable lower bound (every worker event postdates the
          // fork the supervisor timed itself).
          return std::max(run_ts, w.fork_offset);
        };
        for (const WireSpan& span : info.spans) {
          rec->span(w.stage, span.name, span.category,
                    to_run_clock(span.start), to_run_clock(span.end), span.mb,
                    span.slice, span.stage);
        }
        for (const WireInstant& inst : info.instants) {
          rec->instant(w.stage, inst.name, inst.category, inst.detail);
        }
        // Cross-process flow arrows: sender and receiver derived the same
        // wire_flow_id independently, so the two endpoints pair up here.
        for (const WireFlow& flow : info.flows) {
          rec->flow_point(flow.id, w.stage, to_run_clock(flow.ts),
                          flow.begin != 0, flow.backward != 0 ? "bwd" : "fwd");
        }
      }
    }
    return outcome;
  };

  // ---- attempt 1: all microbatches, faults armed ----
  std::vector<int> all_mbs(static_cast<std::size_t>(m));
  std::iota(all_mbs.begin(), all_mbs.end(), 0);
  const bool inject = plan != nullptr && !plan->empty();

  std::vector<int> attempt_mbs = all_mbs;
  bool first_attempt = true;

  for (;;) {
    const AttemptOutcome outcome = run_attempt(attempt_mbs, first_attempt && inject);
    first_attempt = false;
    ++attempt_index;

    // Merge every microbatch that newly retired on all stages, ascending —
    // the same deterministic order as the threaded backend.
    for (int mb = 0; mb < m; ++mb) {
      if (!merged[static_cast<std::size_t>(mb)] && ledger.fully_committed(mb)) {
        ledger.merge_microbatch(mb, result.grads, head_shard_grad, total_loss);
        merged[static_cast<std::size_t>(mb)] = true;
      }
    }

    if (!outcome.failed) break;

    auto fail_with = [&](const std::string& reason) {
      fault::FaultReport report = iteration_report;
      report.blocked_table = outcome.table;
      if (options.report != nullptr) *options.report = report;
      if (telemetry_on) {
        last_snapshot.phase = "failed";
        last_snapshot.ts = run_now();
        publish_snapshot(last_snapshot);
      }
      throw rt::PipelineError("pipeline stage " +
                                  std::to_string(outcome.culprit) + " failed: " +
                                  outcome.detail + reason +
                                  "; blocked-on state:\n" + outcome.table,
                              std::move(report));
    };
    if (!options.recover) fail_with(" (recovery disabled)");

    const std::vector<int> replay = ledger.uncommitted();
    if (replay.empty()) {
      // The failure struck after every microbatch had already retired on
      // every stage (e.g. a post-commit kill) — nothing to replay.
      break;
    }

    const std::size_t culprit = static_cast<std::size_t>(
        outcome.culprit >= 0 && outcome.culprit < p ? outcome.culprit : 0);
    if (respawns[culprit] >= options.respawn_budget) {
      fail_with(" (respawn budget of " +
                std::to_string(options.respawn_budget) + " exhausted)");
    }
    // Bounded exponential backoff before the respawn.
    const int k = respawns[culprit]++;
    const auto backoff = std::min(
        options.backoff_cap,
        options.backoff_base * (std::int64_t{1} << std::min(k, 20)));
    std::string detail = "stage " + std::to_string(outcome.culprit) +
                         " respawned after " +
                         std::to_string(backoff.count()) +
                         " ms backoff; replaying microbatches";
    for (const int mb : replay) detail += " " + std::to_string(mb);
    iteration_report.events.push_back(
        {fault::FaultEvent::Kind::Recovery, outcome.culprit,
         rec != nullptr ? rec->now() : 0.0,
         static_cast<std::int64_t>(replay.size()), detail});
    if (rec != nullptr) {
      rec->instant(std::max(0, outcome.culprit), "recovery", obs::kCatFault,
                   detail);
    }
    if (iteration_report.replayed_microbatches.empty()) {
      iteration_report.replayed_microbatches = replay;
      result.stats.replayed_microbatches = replay;
    }
    std::this_thread::sleep_for(backoff);
    attempt_mbs = replay;
  }

  result.grads.embedding.add_(
      head_shard_grad[static_cast<std::size_t>(model_.head_stage())]);
  result.loss = total_loss / static_cast<double>(m);

  if (telemetry_on) {
    // Recount merges: the last in-attempt snapshot predates the final merge.
    last_snapshot.phase = "done";
    last_snapshot.ts = run_now();
    last_snapshot.merged_microbatches = 0;
    for (const bool merged_one : merged) {
      last_snapshot.merged_microbatches += merged_one ? 1 : 0;
    }
    publish_snapshot(last_snapshot);
  }

  result.stats.metrics.substrate = "dist";
  result.stats.metrics.scheme = "slimpipe";
  result.stats.metrics.makespan = wall_seconds;
  for (int s = 0; s < p; ++s) {
    const std::size_t i = static_cast<std::size_t>(s);
    obs::StageMetrics stage_metrics;
    stage_metrics.device = s;
    stage_metrics.compute_seconds = busy[i];
    stage_metrics.comm_seconds = comm[i];
    stage_metrics.idle_seconds = std::max(0.0, wall_seconds - busy[i]);
    stage_metrics.bubble_fraction =
        wall_seconds > 0.0 ? stage_metrics.idle_seconds / wall_seconds : 0.0;
    stage_metrics.blocked_recv_seconds = blocked[i];
    stage_metrics.peak_live_slices = result.stats.peak_live_slices[i];
    stage_metrics.p2p_messages = p2p_msgs[i];
    stage_metrics.p2p_bytes = p2p_bytes[i];
    stage_metrics.frames_sent = frames_sent[i];
    stage_metrics.frames_recv = frames_recv[i];
    stage_metrics.bytes_recv = bytes_recv[i];
    stage_metrics.crc_rejects = crc_rejects[i];
    stage_metrics.send_retries = send_retries[i];
    stage_metrics.clock_offset_seconds = clock_offset[i];
    stage_metrics.clock_uncertainty_seconds = clock_uncertainty[i];
    stage_metrics.clock_samples = clock_samples[i];
    stage_metrics.peak_queue_depth = peak_queue[i];
    for (const std::int64_t peak : arena_peaks[i]) {
      stage_metrics.measured_peak_bytes.push_back(static_cast<double>(peak));
    }
    stage_metrics.measured_peak_total = static_cast<double>(arena_totals[i]);
    result.stats.metrics.stages.push_back(stage_metrics);
  }
  if (options.report != nullptr) {
    options.report->events.insert(options.report->events.end(),
                                  iteration_report.events.begin(),
                                  iteration_report.events.end());
    options.report->replayed_microbatches =
        iteration_report.replayed_microbatches;
    options.report->injected_seconds += iteration_report.injected_seconds;
  }
  return result;
}

}  // namespace slim::dist
