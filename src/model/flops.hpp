#pragma once

// Per-device cost model for transformer passes over sequence slices.
//
// All public methods take *global* token counts (slice length `len`, KV
// prefix `kv_prefix`) and internally apply the sharding (t, c, e). Times are
// seconds on one device, including exposed TP/CP/EP collective time and
// fixed per-layer/per-pass overheads, so that schedule builders can use them
// directly as op durations.
//
// The causal-attention slice cost is the quantity SlimPipe's context
// exchange rebalances: a slice of length s with KV prefix P costs
//     attn_flops = 4 h (s P + s (s + 1) / 2)
// i.e. proportional to the attended KV length — later slices are more
// expensive (paper §4.2.1).

#include <cstdint>

#include "src/model/activation.hpp"
#include "src/model/hardware.hpp"
#include "src/model/transformer.hpp"
#include "src/sim/topology.hpp"

namespace slim::model {

/// How context parallelism communicates (paper §5 "Commutated CP").
enum class CpMode : std::uint8_t {
  RingKv,      // classic ring attention: KV blocks circulate (baselines)
  Commutated,  // SlimPipe variant: query/output/normalizer circulate
};

class CostModel {
 public:
  CostModel(TransformerConfig cfg, GpuSpec gpu, sim::Topology topo,
            Shard shard, CheckpointPolicy policy,
            CpMode cp_mode = CpMode::RingKv);

  const TransformerConfig& config() const { return cfg_; }
  const GpuSpec& gpu() const { return gpu_; }
  const Shard& shard() const { return shard_; }
  CheckpointPolicy policy() const { return policy_; }

  // ---- attention core (the exchangeable workload) ----

  /// FLOPs (per device) of a rectangular attention block: q_tokens queries
  /// attending kv_tokens keys/values. Forward direction.
  double attn_block_flops(double q_tokens, double kv_tokens) const;

  /// Time of the rectangular block, forward or backward.
  double attn_block_time(double q_tokens, double kv_tokens, bool forward) const;

  /// Time of the causal attention of a slice: block(len, kv_prefix) plus the
  /// lower triangle within the slice.
  double causal_attn_time(std::int64_t len, std::int64_t kv_prefix,
                          bool forward) const;

  /// Effective attended-KV token count of a causal slice (the "workload
  /// units" balanced by context exchange): kv_prefix + (len + 1) / 2.
  static double causal_kv_equiv(std::int64_t len, std::int64_t kv_prefix);

  // ---- full passes ----

  /// Everything in a `layers`-layer pass except the attention core:
  /// QKV/O/FFN GEMMs, elementwise ops, TP/CP/EP collectives, overheads.
  double nonattn_time(std::int64_t layers, std::int64_t len,
                      bool forward) const;

  /// Forward pass of `layers` layers over a slice.
  double forward_time(std::int64_t layers, std::int64_t len,
                      std::int64_t kv_prefix) const;

  /// Backward pass (input+weight gradients) including checkpoint recompute.
  double backward_time(std::int64_t layers, std::int64_t len,
                       std::int64_t kv_prefix) const;

  /// ZB-V style split backward. backward_input + backward_weight ==
  /// backward (modulo recompute, which ZB-V does not support here).
  double backward_input_time(std::int64_t layers, std::int64_t len,
                             std::int64_t kv_prefix) const;
  double backward_weight_time(std::int64_t layers, std::int64_t len) const;

  /// Output-layer GEMM + softmax cross-entropy over `len` tokens with the
  /// vocabulary sharded `vocab_shards` ways (1 = classic, p = vocab parallel).
  double vocab_forward_time(std::int64_t len, std::int64_t vocab_shards) const;
  double vocab_backward_time(std::int64_t len, std::int64_t vocab_shards) const;

  /// Embedding lookup cost (memory bound; small).
  double embedding_time(std::int64_t len) const;

  /// Checkpoint recomputation time charged to a backward pass (0 for
  /// CheckpointPolicy::None).
  double recompute_time(std::int64_t layers, std::int64_t len,
                        std::int64_t kv_prefix) const;

  /// Bytes sent between adjacent pipeline stages for one slice boundary
  /// activation (per TP/CP rank link).
  double boundary_bytes(std::int64_t len) const;

  // ---- MFU accounting ----

  /// Model FLOPs of one *forward* over a full sequence of `seq` tokens,
  /// summed over the whole model (all devices), causal-exact.
  double model_flops_forward(std::int64_t seq) const;

  /// Model FLOPs of a full training iteration on `sequences` sequences of
  /// `seq` tokens (forward + backward = 3x forward). Recompute does not
  /// count toward model FLOPs.
  double model_flops_iteration(std::int64_t seq, std::int64_t sequences) const;

 private:
  double local_tokens(std::int64_t len) const;
  double gemm_fwd_flops(std::int64_t len) const;   // per device, one layer
  double gemm_weight_bytes() const;                // per device, one layer
  double act_traffic_bytes(std::int64_t len) const;
  double comm_time_per_layer(std::int64_t len, std::int64_t kv_prefix,
                             bool forward) const;

  TransformerConfig cfg_;
  GpuSpec gpu_;
  sim::Topology topo_;
  Shard shard_;
  CheckpointPolicy policy_;
  CpMode cp_mode_;
};

}  // namespace slim::model
