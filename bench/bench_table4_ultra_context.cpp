// Table 4: ultra-long-context training with pipeline-parallelism-aware
// activation offloading — the paper's exact configurations, 16M tokens per
// iteration, selective checkpointing, on up to 256 GPUs.

#include "bench_common.hpp"

using namespace slim;

namespace {

struct Config {
  model::TransformerConfig cfg;
  std::int64_t context;
  std::int64_t t, c, e, d, p;
  int n_mult;  // n = n_mult * p
  double offload;
  double paper_mfu;
};

std::vector<Config> table4_configs() {
  // Last row deviation: the paper uses p=28 (224 GPUs); a 2048K (2^21)
  // sequence cannot be sliced uniformly into n=4*28 pieces, so we run the
  // nearest power-of-two pipeline, p=32 on 256 GPUs, with uneven stage
  // splits (56 layers over 32 stages).
  return {
      {model::llama70b(), 2048 * 1024, 4, 4, 1, 1, 16, 4, 0.75, 0.450},
      {model::llama149b(), 1024 * 1024, 4, 2, 1, 1, 32, 2, 0.80, 0.437},
      {model::mixtral8x7b(), 4096 * 1024, 1, 16, 8, 1, 16, 4, 0.95, 0.400},
      {model::mixtral8x22b(), 2048 * 1024, 1, 8, 8, 1, 32, 4, 1.00, 0.420},
  };
}

sched::ScheduleResult run(const Config& c) {
  parallel::HybridConfig hybrid;
  hybrid.t = c.t;
  hybrid.c = c.c;
  hybrid.e = c.e;
  hybrid.d = c.d;
  hybrid.p = c.p;
  hybrid.n = static_cast<int>(c.n_mult * c.p);
  hybrid.v = 1;
  hybrid.policy = model::CheckpointPolicy::Selective;
  hybrid.offload_ratio = c.offload;
  hybrid.scheme = core::Scheme::SlimPipe;
  auto spec = parallel::make_spec(hybrid, c.cfg, model::hopper80(), c.context,
                                  16 * slimbench::kMiTokens);
  return core::run_scheme(core::Scheme::SlimPipe, spec);
}

}  // namespace

static void BM_Table4(benchmark::State& state) {
  const auto configs = table4_configs();
  for (auto _ : state) {
    benchmark::DoNotOptimize(run(configs[0]));
  }
}
BENCHMARK(BM_Table4)->Unit(benchmark::kMillisecond);

int main(int argc, char** argv) {
  slimbench::open_report("table4_ultra_context");
  slimbench::print_banner(
      "Table 4 — ultra-long-context training with activation offloading",
      "paper's exact configurations: 16M tokens/iteration, selective "
      "checkpointing, adaptive offload ratio, <= 256 GPUs",
      "all four models train at their maximum context (up to 4096K for "
      "Mixtral 8x7B) with 40-45% MFU");

  Table table({"model", "context", "t", "c", "e", "d", "p", "n", "offload",
               "paper MFU", "measured MFU", "peak memory", "fits"});
  for (const Config& c : table4_configs()) {
    const auto r = run(c);
    table.add_row({c.cfg.name, format_context(c.context), fmt(c.t), fmt(c.c),
                   fmt(c.e), fmt(c.d), fmt(c.p),
                   std::to_string(c.n_mult) + "p",
                   format_percent(c.offload), format_percent(c.paper_mfu),
                   format_percent(r.mfu), format_bytes(r.peak_memory),
                   r.oom ? "NO" : "yes"});
  }
  slimbench::print_table("ultra-long-context feasibility", table);

  // Ablation: the same configurations without offloading must OOM.
  slimbench::print_banner(
      "Table 4 ablation — same configurations without offloading",
      "offload ratio forced to zero",
      "every configuration exceeds the 80 GiB device");
  Table ab({"model", "context", "peak memory w/o offload", "fits"});
  for (Config c : table4_configs()) {
    c.offload = 0.0;
    const auto r = run(c);
    ab.add_row({c.cfg.name, format_context(c.context),
                format_bytes(r.peak_memory), r.oom ? "NO" : "yes"});
  }
  slimbench::print_table("checkpointing ablation", ab);

  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
