#include "src/obs/metrics.hpp"

#include <algorithm>
#include <cstring>
#include <map>
#include <tuple>

namespace slim::obs {

double RunMetrics::mean_bubble_fraction() const {
  if (stages.empty()) return 0.0;
  double sum = 0.0;
  for (const StageMetrics& s : stages) sum += s.bubble_fraction;
  return sum / static_cast<double>(stages.size());
}

int RunMetrics::max_peak_live_slices() const {
  int peak = 0;
  for (const StageMetrics& s : stages) {
    peak = std::max(peak, s.peak_live_slices);
  }
  return peak;
}

std::int64_t RunMetrics::total_p2p_messages() const {
  std::int64_t total = 0;
  for (const StageMetrics& s : stages) total += s.p2p_messages;
  return total;
}

double RunMetrics::total_p2p_bytes() const {
  double total = 0.0;
  for (const StageMetrics& s : stages) total += s.p2p_bytes;
  return total;
}

namespace {

bool is_forward_class(sim::OpClass cls) {
  return cls == sim::OpClass::Forward;
}

bool is_backward_release_class(sim::OpClass cls) {
  // A slice's activations/KV die when its backward (or the input-grad half
  // under ZB-V splitting) completes; BackwardWeight reuses saved tensors
  // but does not extend the slice's liveness window here.
  return cls == sim::OpClass::Backward || cls == sim::OpClass::BackwardInput;
}

/// Replays live-slice counts per device: +1 at each forward start, -1 at the
/// matching backward end (first release op per (device, mb, slice)). At equal
/// timestamps releases apply before acquisitions — the steady-state 1F1B
/// handoff frees before it allocates.
std::vector<int> peak_live_slices(const sim::OpGraph& graph,
                                  const sim::ExecResult& result,
                                  int num_devices) {
  struct Ev {
    double t;
    int device;
    int delta;  // -1 sorts before +1 at equal t
  };
  std::vector<Ev> events;
  std::map<std::tuple<int, std::int32_t, std::int32_t>, bool> released;
  for (const sim::Op& op : graph.ops()) {
    if (op.device < 0 || op.device >= num_devices) continue;
    if (op.microbatch < 0 || op.slice < 0) continue;
    const sim::OpTiming& t = result.timings[static_cast<std::size_t>(op.id)];
    if (is_forward_class(op.cls)) {
      events.push_back({t.start, op.device, +1});
    } else if (is_backward_release_class(op.cls)) {
      bool& done = released[{op.device, op.microbatch, op.slice}];
      if (!done) {
        done = true;
        events.push_back({t.end, op.device, -1});
      }
    }
  }
  std::sort(events.begin(), events.end(), [](const Ev& a, const Ev& b) {
    if (a.t != b.t) return a.t < b.t;
    return a.delta < b.delta;
  });
  std::vector<int> live(static_cast<std::size_t>(num_devices), 0);
  std::vector<int> peak(static_cast<std::size_t>(num_devices), 0);
  for (const Ev& ev : events) {
    live[static_cast<std::size_t>(ev.device)] += ev.delta;
    peak[static_cast<std::size_t>(ev.device)] =
        std::max(peak[static_cast<std::size_t>(ev.device)],
                 live[static_cast<std::size_t>(ev.device)]);
  }
  return peak;
}

}  // namespace

RunMetrics metrics_from_sim(const sim::OpGraph& graph,
                            const sim::ExecResult& result, int num_devices,
                            const mem::MemoryReport* memory) {
  RunMetrics metrics;
  metrics.substrate = "sim";
  metrics.makespan = result.makespan;
  metrics.stages.resize(static_cast<std::size_t>(num_devices));
  for (int d = 0; d < num_devices; ++d) {
    metrics.stages[static_cast<std::size_t>(d)].device = d;
  }

  for (const sim::Op& op : graph.ops()) {
    if (op.device < 0 || op.device >= num_devices) continue;
    StageMetrics& stage = metrics.stages[static_cast<std::size_t>(op.device)];
    const sim::OpTiming& t = result.timings[static_cast<std::size_t>(op.id)];
    const double dur = t.end - t.start;
    if (sim::is_compute_class(op.cls)) {
      stage.compute_seconds += dur;
    } else if (op.cls == sim::OpClass::Send ||
               op.cls == sim::OpClass::ExchangeSend ||
               op.cls == sim::OpClass::Collective) {
      stage.comm_seconds += dur;
      if (op.peer >= 0) {
        stage.p2p_messages += 1;
        stage.p2p_bytes += op.bytes;
        if (op.cls == sim::OpClass::ExchangeSend) {
          stage.exchange_bytes += op.bytes;
        }
      }
    }
  }

  const std::vector<int> peaks = peak_live_slices(graph, result, num_devices);
  for (int d = 0; d < num_devices; ++d) {
    StageMetrics& stage = metrics.stages[static_cast<std::size_t>(d)];
    stage.peak_live_slices = peaks[static_cast<std::size_t>(d)];
    stage.idle_seconds =
        std::max(0.0, result.makespan - stage.compute_seconds);
    stage.bubble_fraction =
        result.makespan > 0.0 ? stage.idle_seconds / result.makespan : 0.0;
    if (memory != nullptr &&
        d < static_cast<int>(memory->devices.size())) {
      stage.peak_memory_bytes =
          memory->devices[static_cast<std::size_t>(d)].peak;
    }
  }
  return metrics;
}

RunMetrics metrics_from_trace(const Trace& trace, int num_devices) {
  RunMetrics metrics;
  metrics.substrate = "runtime";
  metrics.stages.resize(static_cast<std::size_t>(num_devices));
  for (int d = 0; d < num_devices; ++d) {
    metrics.stages[static_cast<std::size_t>(d)].device = d;
  }

  double makespan = 0.0;
  for (const TraceSpan& span : trace.spans) {
    makespan = std::max(makespan, span.end);
    const int device =
        span.track >= kAuxTrackBase ? -1 : span.track;
    if (device < 0 || device >= num_devices) continue;
    StageMetrics& stage = metrics.stages[static_cast<std::size_t>(device)];
    const double dur = std::max(0.0, span.end - span.start);
    if (span.cat == kCatComm) {
      stage.comm_seconds += dur;
    } else if (span.cat == kCatCompute || span.cat == kCatCommit) {
      stage.compute_seconds += dur;
    }
  }
  metrics.makespan = makespan;
  for (StageMetrics& stage : metrics.stages) {
    stage.idle_seconds = std::max(0.0, makespan - stage.compute_seconds);
    stage.bubble_fraction =
        makespan > 0.0 ? stage.idle_seconds / makespan : 0.0;
  }
  return metrics;
}

JsonValue run_metrics_to_json(const RunMetrics& metrics) {
  JsonValue root = JsonValue::make_object();
  root.set("substrate", JsonValue::make_string(metrics.substrate));
  root.set("scheme", JsonValue::make_string(metrics.scheme));
  root.set("makespan", JsonValue::make_number(metrics.makespan));
  JsonValue stages = JsonValue::make_array();
  for (const StageMetrics& s : metrics.stages) {
    JsonValue stage = JsonValue::make_object();
    stage.set("device", JsonValue::make_number(s.device));
    stage.set("compute_seconds", JsonValue::make_number(s.compute_seconds));
    stage.set("comm_seconds", JsonValue::make_number(s.comm_seconds));
    stage.set("idle_seconds", JsonValue::make_number(s.idle_seconds));
    stage.set("bubble_fraction", JsonValue::make_number(s.bubble_fraction));
    stage.set("peak_live_slices", JsonValue::make_number(s.peak_live_slices));
    stage.set("p2p_messages",
              JsonValue::make_number(static_cast<double>(s.p2p_messages)));
    stage.set("p2p_bytes", JsonValue::make_number(s.p2p_bytes));
    stage.set("exchange_bytes", JsonValue::make_number(s.exchange_bytes));
    stage.set("blocked_recv_seconds",
              JsonValue::make_number(s.blocked_recv_seconds));
    stage.set("peak_queue_depth",
              JsonValue::make_number(s.peak_queue_depth));
    stage.set("peak_memory_bytes",
              JsonValue::make_number(s.peak_memory_bytes));
    stage.set("frames_sent",
              JsonValue::make_number(static_cast<double>(s.frames_sent)));
    stage.set("frames_recv",
              JsonValue::make_number(static_cast<double>(s.frames_recv)));
    stage.set("bytes_recv", JsonValue::make_number(s.bytes_recv));
    stage.set("crc_rejects",
              JsonValue::make_number(static_cast<double>(s.crc_rejects)));
    stage.set("send_retries",
              JsonValue::make_number(static_cast<double>(s.send_retries)));
    stage.set("clock_offset_seconds",
              JsonValue::make_number(s.clock_offset_seconds));
    stage.set("clock_uncertainty_seconds",
              JsonValue::make_number(s.clock_uncertainty_seconds));
    stage.set("clock_samples",
              JsonValue::make_number(static_cast<double>(s.clock_samples)));
    if (!s.measured_peak_bytes.empty()) {
      JsonValue measured = JsonValue::make_array();
      for (const double b : s.measured_peak_bytes) {
        measured.push_back(JsonValue::make_number(b));
      }
      stage.set("measured_peak_bytes", std::move(measured));
      stage.set("measured_peak_total",
                JsonValue::make_number(s.measured_peak_total));
    }
    stages.push_back(std::move(stage));
  }
  root.set("stages", std::move(stages));
  return root;
}

bool run_metrics_from_json(const JsonValue& value, RunMetrics* out) {
  if (!value.is_object() || out == nullptr) return false;
  RunMetrics metrics;
  metrics.substrate = value.string_or("substrate", "");
  metrics.scheme = value.string_or("scheme", "");
  metrics.makespan = value.number_or("makespan", 0.0);
  const JsonValue* stages = value.find("stages");
  if (stages != nullptr && stages->is_array()) {
    for (const JsonValue& item : stages->array()) {
      if (!item.is_object()) return false;
      StageMetrics s;
      s.device = static_cast<int>(item.number_or("device", 0.0));
      s.compute_seconds = item.number_or("compute_seconds", 0.0);
      s.comm_seconds = item.number_or("comm_seconds", 0.0);
      s.idle_seconds = item.number_or("idle_seconds", 0.0);
      s.bubble_fraction = item.number_or("bubble_fraction", 0.0);
      s.peak_live_slices =
          static_cast<int>(item.number_or("peak_live_slices", 0.0));
      s.p2p_messages =
          static_cast<std::int64_t>(item.number_or("p2p_messages", 0.0));
      s.p2p_bytes = item.number_or("p2p_bytes", 0.0);
      s.exchange_bytes = item.number_or("exchange_bytes", 0.0);
      s.blocked_recv_seconds = item.number_or("blocked_recv_seconds", 0.0);
      s.peak_queue_depth =
          static_cast<int>(item.number_or("peak_queue_depth", 0.0));
      s.peak_memory_bytes = item.number_or("peak_memory_bytes", 0.0);
      s.frames_sent =
          static_cast<std::int64_t>(item.number_or("frames_sent", 0.0));
      s.frames_recv =
          static_cast<std::int64_t>(item.number_or("frames_recv", 0.0));
      s.bytes_recv = item.number_or("bytes_recv", 0.0);
      s.crc_rejects =
          static_cast<std::int64_t>(item.number_or("crc_rejects", 0.0));
      s.send_retries =
          static_cast<std::int64_t>(item.number_or("send_retries", 0.0));
      s.clock_offset_seconds = item.number_or("clock_offset_seconds", 0.0);
      s.clock_uncertainty_seconds =
          item.number_or("clock_uncertainty_seconds", 0.0);
      s.clock_samples =
          static_cast<std::int64_t>(item.number_or("clock_samples", 0.0));
      const JsonValue* measured = item.find("measured_peak_bytes");
      if (measured != nullptr && measured->is_array()) {
        for (const JsonValue& b : measured->array()) {
          if (!b.is_number()) return false;
          s.measured_peak_bytes.push_back(b.number());
        }
        s.measured_peak_total = item.number_or("measured_peak_total", 0.0);
      }
      metrics.stages.push_back(s);
    }
  }
  *out = std::move(metrics);
  return true;
}

}  // namespace slim::obs
