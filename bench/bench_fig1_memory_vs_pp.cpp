// Figure 1: GPU memory footprint of Classic PP vs SlimPipe across pipeline
// sizes. Both distribute model states; only SlimPipe also distributes
// activations (its activation memory falls ~1/p while Classic PP's stays
// constant).

#include "bench_common.hpp"

using namespace slim;

namespace {

struct Row {
  int p;
  double classic_states, classic_act, slim_states, slim_act;
};

Row measure(int p) {
  const auto cfg = model::llama13b();
  const std::int64_t seq = 128 * 1024;

  auto spec = slimbench::base_spec(cfg, 8, p, seq, 8);
  const auto classic = core::run_scheme(core::Scheme::OneF1B, spec);

  auto sspec = spec;
  sspec.n = 4 * p;
  sspec.vocab_parallel = true;
  sspec.context_exchange = true;
  const auto slim_r = core::run_scheme(core::Scheme::SlimPipe, sspec);

  // Model states on the first device (constant during the iteration) =
  // memory at iteration end minus nothing; approximate via analytic model.
  const double states_classic = model::model_state_bytes(
      cfg, spec.shard, static_cast<double>(cfg.layers) / p, 0.5, 1);
  const double states_slim = model::model_state_bytes(
      cfg, spec.shard, static_cast<double>(cfg.layers) / p, 1.0 / p, 1);
  return Row{p, states_classic,
             classic.first_device_memory - states_classic, states_slim,
             slim_r.first_device_memory - states_slim};
}

}  // namespace

static void BM_Figure1(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(measure(static_cast<int>(state.range(0))));
  }
}
BENCHMARK(BM_Figure1)->Arg(2)->Arg(4)->Arg(8)->Unit(benchmark::kMillisecond);

int main(int argc, char** argv) {
  slimbench::open_report("fig1_memory_vs_pp");
  slimbench::print_banner(
      "Figure 1 — memory footprint vs pipeline parallelism size",
      "Llama 13B, 128K context, 8-way TP, 1F1B vs SlimPipe (n = 4p)",
      "model-state memory shrinks with p for both; activation memory is "
      "flat for Classic PP and ~1/p for SlimPipe");

  Table table({"p", "classic states", "classic activations", "slim states",
               "slim activations", "act ratio slim/classic"});
  for (int p : {1, 2, 4, 8}) {
    const Row row = measure(p);
    table.add_row({fmt(static_cast<std::int64_t>(row.p)),
                   format_bytes(row.classic_states),
                   format_bytes(row.classic_act),
                   format_bytes(row.slim_states), format_bytes(row.slim_act),
                   fmt(row.slim_act / row.classic_act, 3)});
  }
  slimbench::print_table("first-stage activation memory vs pipeline depth", table);

  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
