#pragma once

// Live telemetry snapshots for the multi-process runtime.
//
// The supervisor folds every worker's heartbeat counters (per-channel
// bytes/frames/CRC rejects/retries, queue depths, committed-microbatch
// progress, arena peaks, clock alignment) into a LiveSnapshot and publishes
// it two ways on a fixed cadence:
//
//   * a JSON snapshot file (atomic rename) that `slimpipe_top` tails for a
//     live terminal view, and
//   * a Prometheus-style text exposition (# HELP/# TYPE + one series per
//     stage) for scrape-based monitoring.
//
// Timestamps are seconds on the run's monotonic epoch (obs/clock.hpp).

#include <cstdint>
#include <string>
#include <vector>

#include "src/obs/json.hpp"

namespace slim::obs {

/// Per-stage live state, as of the worker's most recent heartbeat.
struct StageLive {
  int stage = 0;
  std::int64_t pid = 0;
  std::string state;             // worker-reported loop state
  double beat_age_seconds = 0.0; // run-clock seconds since the last beat
  std::int64_t messages = 0;     // frames processed by the worker loop

  // Progress.
  std::int32_t done_f = 0, want_f = 0;  // forward slices done / total
  std::int32_t done_b = 0, want_b = 0;  // backward slices done / total
  std::int32_t live = 0, live_cap = 0;  // live slices vs Eq.1 cap
  std::int32_t queue = 0, deferred = 0; // inbox depth / deferred window
  std::int32_t committed = 0, committed_total = 0;  // microbatches

  // Per-channel wire counters, summed over the worker's links.
  std::int64_t frames_out = 0, frames_in = 0;
  double bytes_out = 0.0, bytes_in = 0.0;
  std::int64_t crc_rejects = 0, retries = 0;

  double arena_peak_bytes = 0.0;  // concurrent arena high-water

  // Clock alignment (0 until the first ping/pong lands).
  double clock_offset_seconds = 0.0;
  double clock_uncertainty_seconds = 0.0;

  std::int64_t flight_events = 0;  // flight-recorder events recorded so far
  std::int64_t respawns = 0;       // times this stage was respawned
};

struct LiveSnapshot {
  double ts = 0.0;      // run-clock seconds
  std::string phase;    // "running" | "draining" | "done" | "failed"
  int attempt = 0;      // respawn attempt index
  int microbatches = 0;
  int merged_microbatches = 0;  // committed across all stages (min over)
  std::vector<StageLive> stages;
};

JsonValue snapshot_to_json(const LiveSnapshot& snap);
bool snapshot_from_json(const JsonValue& value, LiveSnapshot* out);

/// Prometheus text exposition format, version 0.0.4: `# HELP`/`# TYPE`
/// headers plus one `slimpipe_*{stage="N"}` series per stage per metric.
std::string prometheus_text(const LiveSnapshot& snap);

/// One terminal frame for the `slimpipe_top` live view (plain text, aligned
/// table + header line; no ANSI escapes — the tool owns cursor control).
std::string render_top(const LiveSnapshot& snap);

/// Writes `content` to `path` via a sibling temp file + rename so readers
/// never observe a torn snapshot. Returns false on any I/O failure.
bool write_atomic(const std::string& path, const std::string& content);

}  // namespace slim::obs
