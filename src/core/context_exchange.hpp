#pragma once

// Attention context exchange (paper §4.2).
//
// With uniform slicing, the p devices active at one pipeline tick process p
// consecutive slice-stream positions, so their attention workloads form an
// arithmetic progression (later slices attend to more KV). The planner
// rebalances each tick's cohort by pairing the heaviest member with the
// lightest (Figure 8): the heavy device ships its query plus the excess
// half of its KV to the light device, which computes the partial attention
// and returns the output for an online-softmax merge. After pairing, every
// member of a pair carries exactly the pair's mean workload — the residual
// imbalance across pairs is at most one slice of KV.

#include <cstdint>

#include "src/model/flops.hpp"
#include "src/sched/builder.hpp"
#include "src/sched/schedule.hpp"

namespace slim::core {

class ExchangePlanner final : public sched::ExchangeOracle {
 public:
  ExchangePlanner(const sched::PipelineSpec& spec);

  PassPlan plan(int device, std::int64_t stream, bool forward) const override;

  /// Attended-KV workload (tokens) of forward stream position `x`.
  double forward_load(std::int64_t x) const;

  /// Post-exchange attended-KV workload (tokens) of a pass — what the
  /// device actually computes after the rebalancing. Exposed for property
  /// tests ("the difference is at most one slice of key-value", §4.2.2).
  double balanced_kv_load(int device, std::int64_t stream, bool forward) const;

  /// Total bytes a device sends for the *forward* passes of one microbatch
  /// (the quantity bounded by Eq. 2), maximized over devices.
  double forward_volume_per_microbatch(int device) const;

 private:
  struct Move {
    int partner = -1;
    double kv_tokens = 0.0;  // > 0: this device sheds KV; < 0: absorbs
  };
  struct Balance {
    double kv_tokens = 0.0;  // balanced attended-KV workload
    std::vector<Move> moves;
  };
  Balance balance_cohort(int device, std::int64_t stream, bool forward) const;

  double load_of_stream(std::int64_t x, bool forward) const;

  int p_;
  int n_;
  int m_;
  bool adaptive_;
  double link_bandwidth_;
  double link_latency_;
  std::int64_t slice_len_;
  std::int64_t layers_per_stage_;
  double q_bytes_;             // one slice of Q (== O) per layer, per device
  double kv_bytes_per_token_;  // K+V bytes per token per layer, per device
  model::CostModel cost_;
};

}  // namespace slim::core
