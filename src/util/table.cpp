#include "src/util/table.hpp"

#include <algorithm>
#include <cstdio>
#include <sstream>

#include "src/util/logging.hpp"

namespace slim {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {}

void Table::add_row(std::vector<std::string> cells) {
  SLIM_CHECK(cells.size() == header_.size(),
             "row width does not match header");
  rows_.push_back(Row{std::move(cells), false});
}

void Table::add_separator() { rows_.push_back(Row{{}, true}); }

std::string Table::to_string() const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t i = 0; i < header_.size(); ++i) widths[i] = header_[i].size();
  for (const Row& row : rows_) {
    if (row.separator) continue;
    for (std::size_t i = 0; i < row.cells.size(); ++i) {
      widths[i] = std::max(widths[i], row.cells[i].size());
    }
  }

  auto emit_line = [&](std::ostringstream& out,
                       const std::vector<std::string>& cells) {
    out << "|";
    for (std::size_t i = 0; i < cells.size(); ++i) {
      out << " " << cells[i]
          << std::string(widths[i] - cells[i].size(), ' ') << " |";
    }
    out << "\n";
  };
  auto emit_rule = [&](std::ostringstream& out) {
    out << "+";
    for (std::size_t width : widths) out << std::string(width + 2, '-') << "+";
    out << "\n";
  };

  std::ostringstream out;
  emit_rule(out);
  emit_line(out, header_);
  emit_rule(out);
  for (const Row& row : rows_) {
    if (row.separator) {
      emit_rule(out);
    } else {
      emit_line(out, row.cells);
    }
  }
  emit_rule(out);
  return out.str();
}

std::string Table::to_csv() const {
  std::ostringstream out;
  auto emit = [&](const std::vector<std::string>& cells) {
    for (std::size_t i = 0; i < cells.size(); ++i) {
      if (i != 0) out << ",";
      out << cells[i];
    }
    out << "\n";
  };
  emit(header_);
  for (const Row& row : rows_) {
    if (!row.separator) emit(row.cells);
  }
  return out.str();
}

std::vector<std::vector<std::string>> Table::data_rows() const {
  std::vector<std::vector<std::string>> out;
  for (const Row& row : rows_) {
    if (!row.separator) out.push_back(row.cells);
  }
  return out;
}

std::string fmt(double value, int digits) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", digits, value);
  return buf;
}

std::string fmt(std::int64_t value) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(value));
  return buf;
}

}  // namespace slim
