file(REMOVE_RECURSE
  "libslim_parallel.a"
)
