
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/memory/kv_pool.cpp" "src/memory/CMakeFiles/slim_memory.dir/kv_pool.cpp.o" "gcc" "src/memory/CMakeFiles/slim_memory.dir/kv_pool.cpp.o.d"
  "/root/repo/src/memory/offload.cpp" "src/memory/CMakeFiles/slim_memory.dir/offload.cpp.o" "gcc" "src/memory/CMakeFiles/slim_memory.dir/offload.cpp.o.d"
  "/root/repo/src/memory/tracker.cpp" "src/memory/CMakeFiles/slim_memory.dir/tracker.cpp.o" "gcc" "src/memory/CMakeFiles/slim_memory.dir/tracker.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/slim_util.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/slim_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/model/CMakeFiles/slim_model.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
