#!/usr/bin/env bash
# Repo-wide check driver: sanitizer builds, labeled test subsets, clang-tidy.
#
#   tools/check.sh              # plain + address/undefined/thread sanitizers
#   tools/check.sh --fast       # plain build + full test suite only
#   JOBS=8 tools/check.sh       # override build/test parallelism
#
# Each sanitizer preset (-DSLIMPIPE_SANITIZE=address|undefined|thread, see
# the top-level CMakeLists) gets its own build tree under build-<name>/ and
# runs the ctest label subsets most likely to surface that bug class:
#
#   address    faults, mem, ir, dist, telemetry  (lifetime/overflow in the
#                                   fault machinery, arena tracking, the
#                                   schedule IR, the multi-process socket
#                                   runtime and the flight-recorder/telemetry
#                                   ring + wire paths)
#   undefined  faults, mem, ir, dist, telemetry  (integer/shift UB in the
#                                   same layers)
#   thread     threads, dist, telemetry  (the threaded runtime tests; the
#                                   dist supervisor forks single-threaded
#                                   workers from the pool-owning parent —
#                                   exactly the fork/lock interaction TSan
#                                   should watch — and the telemetry
#                                   overhead gate runs both substrates)
#
# clang-tidy, when installed, runs over src/ir and src/analysis with the
# plain tree's compile database; when absent the pass is skipped with a
# warning (the container may not ship it).

set -euo pipefail

cd "$(dirname "$0")/.."
JOBS="${JOBS:-$(nproc)}"
FAST=0
if [[ "${1:-}" == "--fast" ]]; then
  FAST=1
elif [[ -n "${1:-}" ]]; then
  echo "usage: tools/check.sh [--fast]" >&2
  exit 2
fi

build_tree() {
  local dir="$1"
  shift
  cmake -B "$dir" -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo "$@"
  cmake --build "$dir" -j "$JOBS"
}

echo "== plain build + full test suite =="
build_tree build -DCMAKE_EXPORT_COMPILE_COMMANDS=ON
ctest --test-dir build --output-on-failure -j "$JOBS"

if [[ "$FAST" -eq 0 ]]; then
  for san in address undefined thread; do
    echo "== ${san} sanitizer build =="
    build_tree "build-${san}" -DSLIMPIPE_SANITIZE="${san}"
    if [[ "$san" == "thread" ]]; then
      labels="threads|dist|telemetry|elastic"
    else
      labels="faults|mem|ir|dist|telemetry|elastic"
    fi
    echo "== ${san} sanitizer tests (-L '${labels}') =="
    ctest --test-dir "build-${san}" --output-on-failure -j "$JOBS" \
      -L "$labels"
  done
fi

if command -v clang-tidy >/dev/null 2>&1; then
  echo "== clang-tidy (src/ir, src/analysis) =="
  clang-tidy -p build src/ir/*.cpp src/analysis/*.cpp
else
  echo "warning: clang-tidy not installed; skipping the tidy pass" >&2
fi

echo "check.sh: all requested checks passed"
