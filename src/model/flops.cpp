#include "src/model/flops.hpp"

#include <algorithm>

#include "src/util/logging.hpp"

namespace slim::model {

namespace {
constexpr double kBf16 = 2.0;
/// HBM traffic per stored activation byte (reads + writes along the pass).
constexpr double kActTrafficFactor = 4.0;
}  // namespace

CostModel::CostModel(TransformerConfig cfg, GpuSpec gpu, sim::Topology topo,
                     Shard shard, CheckpointPolicy policy, CpMode cp_mode)
    : cfg_(std::move(cfg)),
      gpu_(gpu),
      topo_(topo),
      shard_(shard),
      policy_(policy),
      cp_mode_(cp_mode) {
  SLIM_CHECK(shard_.t >= 1 && shard_.c >= 1 && shard_.e >= 1,
             "invalid shard sizes");
}

double CostModel::local_tokens(std::int64_t len) const {
  return static_cast<double>(len) / static_cast<double>(shard_.c);
}

double CostModel::attn_block_flops(double q_tokens, double kv_tokens) const {
  // Scores (2 flops per q-k pair per hidden element) + AV (same): 4 h q kv,
  // divided by t (head sharding) and c (query sharding).
  const double h = static_cast<double>(cfg_.hidden);
  return 4.0 * h * q_tokens * kv_tokens /
         static_cast<double>(shard_.t * shard_.c);
}

double CostModel::attn_block_time(double q_tokens, double kv_tokens,
                                  bool forward) const {
  const double flops =
      attn_block_flops(q_tokens, kv_tokens) * (forward ? 1.0 : 2.0);
  // Traffic: Q and O rows (q side) + K/V rows (kv side), bf16, sharded.
  const double h = static_cast<double>(cfg_.hidden);
  const double kvh = static_cast<double>(cfg_.kv_hidden());
  const double bytes =
      (2.0 * q_tokens * h + 2.0 * kv_tokens * kvh) * kBf16 /
      static_cast<double>(shard_.t * shard_.c) * (forward ? 1.0 : 2.5);
  const double derate =
      gpu_.rows_derate(q_tokens / static_cast<double>(shard_.c));
  return gpu_.op_time(flops, bytes,
                      forward ? OpCategory::Attention
                              : OpCategory::AttentionBwd) /
         derate;
}

double CostModel::causal_kv_equiv(std::int64_t len, std::int64_t kv_prefix) {
  return static_cast<double>(kv_prefix) +
         (static_cast<double>(len) + 1.0) / 2.0;
}

double CostModel::causal_attn_time(std::int64_t len, std::int64_t kv_prefix,
                                   bool forward) const {
  return attn_block_time(static_cast<double>(len),
                         causal_kv_equiv(len, kv_prefix), forward);
}

double CostModel::gemm_fwd_flops(std::int64_t len) const {
  const double lt = local_tokens(len);
  const double h = static_cast<double>(cfg_.hidden);
  const double kvh = static_cast<double>(cfg_.kv_hidden());
  const double ffn = static_cast<double>(cfg_.ffn);
  const double topk = static_cast<double>(cfg_.active_experts());
  double flops = 2.0 * lt * h * (h + 2.0 * kvh)  // QKV
                 + 2.0 * lt * h * h              // O projection
                 + 6.0 * lt * h * ffn * topk;    // SwiGLU FFN / routed MoE
  if (cfg_.is_moe()) {
    flops += 2.0 * lt * h * static_cast<double>(cfg_.experts);  // router
  }
  return flops / static_cast<double>(shard_.t);
}

double CostModel::gemm_weight_bytes() const {
  // Per-layer weight bytes resident reads: attention + local experts.
  const double h = static_cast<double>(cfg_.hidden);
  const double kvh = static_cast<double>(cfg_.kv_hidden());
  double params = 2.0 * h * h + 2.0 * h * kvh;
  double ffn_params = 3.0 * h * static_cast<double>(cfg_.ffn);
  if (cfg_.is_moe()) {
    ffn_params *= static_cast<double>(cfg_.experts) /
                  static_cast<double>(shard_.e);
  }
  return (params + ffn_params) * kBf16 / static_cast<double>(shard_.t);
}

double CostModel::act_traffic_bytes(std::int64_t len) const {
  const double lt = local_tokens(len);
  const double h = static_cast<double>(cfg_.hidden);
  const double ffn_active = static_cast<double>(cfg_.ffn) *
                            static_cast<double>(cfg_.active_experts());
  const double per_token =
      (6.0 * h + 2.0 * ffn_active) * kBf16 / static_cast<double>(shard_.t);
  return kActTrafficFactor * lt * per_token;
}

double CostModel::comm_time_per_layer(std::int64_t len, std::int64_t kv_prefix,
                                      bool forward) const {
  const double lt = local_tokens(len);
  const double h = static_cast<double>(cfg_.hidden);
  double time = 0.0;

  // TP (always with SP): 2 all-gathers + 2 reduce-scatters per direction,
  // payload = full-sequence-shard activation (lt * c / c ... the collective
  // moves the t-sharded activation of the local tokens).
  if (shard_.t > 1) {
    const double bytes = lt * h * kBf16;
    time += 4.0 * topo_.ring_collective_time(static_cast<int>(shard_.t),
                                             bytes, /*cross_node=*/false);
  }

  // CP: ring attention circulates KV (including any cached prefix — the
  // inefficiency the paper notes), the commutated variant circulates Q/O.
  if (shard_.c > 1) {
    const bool cross = shard_.t * shard_.c > shard_.gpus_per_node;
    const double bw = cross ? topo_.nic_bandwidth : topo_.nvlink_bandwidth;
    const double lat = cross ? topo_.nic_latency : topo_.nvlink_latency;
    const double steps = static_cast<double>(shard_.c - 1);
    double per_step_bytes = 0.0;
    if (cp_mode_ == CpMode::Commutated) {
      // Q and O (+ tiny normalizer) take one trip around the ring.
      per_step_bytes = 2.0 * lt * h * kBf16 / static_cast<double>(shard_.t);
    } else {
      const double kvh = static_cast<double>(cfg_.kv_hidden());
      const double kv_tokens_local =
          (static_cast<double>(len + kv_prefix)) /
          static_cast<double>(shard_.c);
      per_step_bytes =
          2.0 * kv_tokens_local * kvh * kBf16 / static_cast<double>(shard_.t);
    }
    // Ring attention overlaps communication with blockwise compute; model
    // half the volume as exposed.
    time += 0.5 * steps * (lat + per_step_bytes / bw) * (forward ? 1.0 : 2.0);
  }

  // MoE: dispatch + combine all-to-alls.
  if (cfg_.is_moe() && shard_.e > 1) {
    const bool cross =
        shard_.t * shard_.c * shard_.e > shard_.gpus_per_node;
    const double payload = lt * h * kBf16 *
                           static_cast<double>(cfg_.experts_topk) /
                           static_cast<double>(shard_.t);
    time += 2.0 * topo_.all_to_all_time(static_cast<int>(shard_.e), payload,
                                        cross) *
            (forward ? 1.0 : 2.0);
  }
  return time;
}

double CostModel::nonattn_time(std::int64_t layers, std::int64_t len,
                               bool forward) const {
  if (layers <= 0 || len <= 0) return 0.0;
  const double mult = forward ? 1.0 : 2.0;
  const double gemm_flops = gemm_fwd_flops(len) * mult;
  const double gemm_bytes = gemm_weight_bytes() * (forward ? 1.0 : 2.0);
  const double gemm_time =
      gpu_.op_time(gemm_flops, gemm_bytes, OpCategory::Gemm) /
      gpu_.rows_derate(local_tokens(len));
  const double ew_time =
      gpu_.op_time(0.0, act_traffic_bytes(len) * mult, OpCategory::Elementwise);
  const double comm = comm_time_per_layer(len, 0, forward);
  const double per_layer =
      gemm_time + ew_time + comm + gpu_.per_layer_overhead;
  return static_cast<double>(layers) * per_layer + gpu_.per_pass_overhead;
}

double CostModel::forward_time(std::int64_t layers, std::int64_t len,
                               std::int64_t kv_prefix) const {
  if (layers <= 0 || len <= 0) return 0.0;
  return nonattn_time(layers, len, /*forward=*/true) +
         static_cast<double>(layers) *
             causal_attn_time(len, kv_prefix, /*forward=*/true);
}

double CostModel::recompute_time(std::int64_t layers, std::int64_t len,
                                 std::int64_t kv_prefix) const {
  switch (policy_) {
    case CheckpointPolicy::None:
      return 0.0;
    case CheckpointPolicy::Selective: {
      // Re-run up-projection + gate + SwiGLU: 4 lt h H topk flops/layer.
      const double lt = local_tokens(len);
      const double flops = 4.0 * lt * static_cast<double>(cfg_.hidden) *
                           static_cast<double>(cfg_.ffn) *
                           static_cast<double>(cfg_.active_experts()) /
                           static_cast<double>(shard_.t);
      return static_cast<double>(layers) *
             gpu_.op_time(flops, gemm_weight_bytes() * 0.5, OpCategory::Gemm);
    }
    case CheckpointPolicy::Full:
      return forward_time(layers, len, kv_prefix);
  }
  return 0.0;
}

double CostModel::backward_time(std::int64_t layers, std::int64_t len,
                                std::int64_t kv_prefix) const {
  if (layers <= 0 || len <= 0) return 0.0;
  return nonattn_time(layers, len, /*forward=*/false) +
         static_cast<double>(layers) *
             causal_attn_time(len, kv_prefix, /*forward=*/false) +
         recompute_time(layers, len, kv_prefix);
}

double CostModel::backward_input_time(std::int64_t layers, std::int64_t len,
                                      std::int64_t kv_prefix) const {
  if (layers <= 0 || len <= 0) return 0.0;
  // Input gradients: GEMM dgrad (== forward GEMM flops) + the whole
  // attention backward (attention has no weights: T_w = 0, T_b = 2 T_f).
  const double gemm_time = gpu_.op_time(gemm_fwd_flops(len),
                                        gemm_weight_bytes(), OpCategory::Gemm);
  const double ew_time = gpu_.op_time(0.0, act_traffic_bytes(len),
                                      OpCategory::Elementwise);
  const double comm = comm_time_per_layer(len, kv_prefix, /*forward=*/false);
  const double attn = causal_attn_time(len, kv_prefix, /*forward=*/false);
  return static_cast<double>(layers) *
             (gemm_time + ew_time + comm + attn + gpu_.per_layer_overhead) +
         gpu_.per_pass_overhead;
}

double CostModel::backward_weight_time(std::int64_t layers,
                                       std::int64_t len) const {
  if (layers <= 0 || len <= 0) return 0.0;
  // Weight gradients: one GEMM-shaped pass over the linear layers only.
  const double gemm_time = gpu_.op_time(gemm_fwd_flops(len),
                                        gemm_weight_bytes(), OpCategory::Gemm);
  return static_cast<double>(layers) * (gemm_time + gpu_.per_layer_overhead) +
         gpu_.per_pass_overhead;
}

double CostModel::vocab_forward_time(std::int64_t len,
                                     std::int64_t vocab_shards) const {
  SLIM_CHECK(vocab_shards >= 1, "vocab_shards >= 1");
  const double lt = local_tokens(len);
  const double flops = 2.0 * lt * static_cast<double>(cfg_.hidden) *
                       static_cast<double>(cfg_.vocab) /
                       static_cast<double>(shard_.t * vocab_shards);
  const double v_local = static_cast<double>(cfg_.vocab) /
                         static_cast<double>(shard_.t * vocab_shards);
  // GEMM output write (bf16) + fp32 logits for the loss.
  const double bytes = lt * v_local * (kBf16 + 4.0);
  return gpu_.op_time(flops, bytes, OpCategory::VocabGemm) +
         gpu_.per_pass_overhead;
}

double CostModel::vocab_backward_time(std::int64_t len,
                                      std::int64_t vocab_shards) const {
  return 2.0 * vocab_forward_time(len, vocab_shards);
}

double CostModel::embedding_time(std::int64_t len) const {
  const double bytes = local_tokens(len) * static_cast<double>(cfg_.hidden) *
                       kBf16 / static_cast<double>(shard_.t);
  return gpu_.op_time(0.0, 2.0 * bytes, OpCategory::Elementwise);
}

double CostModel::boundary_bytes(std::int64_t len) const {
  return local_tokens(len) * static_cast<double>(cfg_.hidden) * kBf16 /
         static_cast<double>(shard_.t);
}

double CostModel::model_flops_forward(std::int64_t seq) const {
  const double s = static_cast<double>(seq);
  const double h = static_cast<double>(cfg_.hidden);
  const double kvh = static_cast<double>(cfg_.kv_hidden());
  const double topk = static_cast<double>(cfg_.active_experts());
  const double per_layer =
      2.0 * s * h * (h + 2.0 * kvh)                    // QKV
      + 2.0 * s * h * h                                // O
      + 6.0 * s * h * static_cast<double>(cfg_.ffn) * topk  // FFN
      + 4.0 * h * (s * (s + 1.0) / 2.0);               // causal attention
  const double vocab = 2.0 * s * h * static_cast<double>(cfg_.vocab);
  return static_cast<double>(cfg_.layers) * per_layer + vocab;
}

double CostModel::model_flops_iteration(std::int64_t seq,
                                        std::int64_t sequences) const {
  return 3.0 * model_flops_forward(seq) * static_cast<double>(sequences);
}

}  // namespace slim::model
