file(REMOVE_RECURSE
  "libslim_numerics.a"
)
