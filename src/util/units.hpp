#pragma once

// Unit helpers: byte sizes, time durations and human-readable formatting.
//
// All simulator times are in seconds (double). All memory quantities are in
// bytes (int64_t / double when fractional bookkeeping is needed).

#include <cstdint>
#include <string>

namespace slim {

inline constexpr double kKiB = 1024.0;
inline constexpr double kMiB = 1024.0 * 1024.0;
inline constexpr double kGiB = 1024.0 * 1024.0 * 1024.0;

inline constexpr double kKilo = 1e3;
inline constexpr double kMega = 1e6;
inline constexpr double kGiga = 1e9;
inline constexpr double kTera = 1e12;

/// 1K tokens in the "context length" sense used by the paper (131072 = 128K).
inline constexpr std::int64_t kTokensK = 1024;

/// Formats a byte count as e.g. "12.34 GiB".
std::string format_bytes(double bytes);

/// Formats a duration in seconds as e.g. "1.23 ms" / "4.56 s".
std::string format_time(double seconds);

/// Formats a context length as e.g. "256K" / "2048K".
std::string format_context(std::int64_t tokens);

/// Formats a ratio as a percentage with one decimal, e.g. "45.3%".
std::string format_percent(double fraction);

}  // namespace slim
