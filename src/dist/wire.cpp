#include "src/dist/wire.hpp"

#include <cstring>

#include "src/util/logging.hpp"

namespace slim::dist {

namespace {

constexpr std::uint32_t kMagic = 0x534C4D46u;  // 'SLMF'
constexpr std::size_t kHeaderSize = 36;
// Generous payload ceiling: tiny-model tensors are kilobytes; anything near
// this is a corrupt length field, not a real message.
constexpr std::uint64_t kMaxPayload = 1ull << 30;

void put_u32(std::uint8_t* p, std::uint32_t v) {
  p[0] = static_cast<std::uint8_t>(v);
  p[1] = static_cast<std::uint8_t>(v >> 8);
  p[2] = static_cast<std::uint8_t>(v >> 16);
  p[3] = static_cast<std::uint8_t>(v >> 24);
}

std::uint32_t get_u32(const std::uint8_t* p) {
  return static_cast<std::uint32_t>(p[0]) |
         (static_cast<std::uint32_t>(p[1]) << 8) |
         (static_cast<std::uint32_t>(p[2]) << 16) |
         (static_cast<std::uint32_t>(p[3]) << 24);
}

void put_u64(std::uint8_t* p, std::uint64_t v) {
  put_u32(p, static_cast<std::uint32_t>(v));
  put_u32(p + 4, static_cast<std::uint32_t>(v >> 32));
}

std::uint64_t get_u64(const std::uint8_t* p) {
  return static_cast<std::uint64_t>(get_u32(p)) |
         (static_cast<std::uint64_t>(get_u32(p + 4)) << 32);
}

}  // namespace

const char* frame_kind_name(FrameKind kind) {
  switch (kind) {
    case FrameKind::Hello: return "hello";
    case FrameKind::Forward: return "fwd";
    case FrameKind::Backward: return "bwd";
    case FrameKind::Heartbeat: return "heartbeat";
    case FrameKind::Commit: return "commit";
    case FrameKind::Event: return "event";
    case FrameKind::Error: return "error";
    case FrameKind::Done: return "done";
    case FrameKind::Telemetry: return "telemetry";
    case FrameKind::Ping: return "ping";
    case FrameKind::Pong: return "pong";
  }
  return "?";
}

std::uint32_t crc32(const void* data, std::size_t n) {
  static const std::uint32_t* table = [] {
    static std::uint32_t t[256];
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1u) != 0 ? 0xEDB88320u ^ (c >> 1) : c >> 1;
      }
      t[i] = c;
    }
    return t;
  }();
  std::uint32_t crc = 0xFFFFFFFFu;
  const std::uint8_t* p = static_cast<const std::uint8_t*>(data);
  for (std::size_t i = 0; i < n; ++i) {
    crc = table[(crc ^ p[i]) & 0xFFu] ^ (crc >> 8);
  }
  return crc ^ 0xFFFFFFFFu;
}

bool send_frame(int fd, const Frame& frame) {
  std::vector<std::uint8_t> buf(kHeaderSize + frame.payload.size());
  put_u32(buf.data(), kMagic);
  buf[4] = static_cast<std::uint8_t>(frame.kind);
  buf[5] = buf[6] = buf[7] = 0;
  put_u32(buf.data() + 8, static_cast<std::uint32_t>(frame.stage));
  put_u32(buf.data() + 12, static_cast<std::uint32_t>(frame.mb));
  put_u32(buf.data() + 16, static_cast<std::uint32_t>(frame.slice));
  put_u64(buf.data() + 20, frame.payload.size());
  put_u32(buf.data() + 28,
          frame.payload.empty() ? 0u
                                : crc32(frame.payload.data(),
                                        frame.payload.size()));
  put_u32(buf.data() + 32, crc32(buf.data(), 32));
  if (!frame.payload.empty()) {
    std::memcpy(buf.data() + kHeaderSize, frame.payload.data(),
                frame.payload.size());
  }
  return send_all(fd, buf.data(), buf.size());
}

IoStatus recv_frame(int fd, Frame* out) {
  std::uint8_t header[kHeaderSize];
  const IoStatus head = recv_all(fd, header, kHeaderSize);
  if (head != IoStatus::Ok) return head;
  if (get_u32(header) != kMagic) return IoStatus::Corrupt;
  if (get_u32(header + 32) != crc32(header, 32)) return IoStatus::Corrupt;
  const std::uint64_t payload_size = get_u64(header + 20);
  if (payload_size > kMaxPayload) return IoStatus::Corrupt;
  out->kind = static_cast<FrameKind>(header[4]);
  out->stage = static_cast<std::int32_t>(get_u32(header + 8));
  out->mb = static_cast<std::int32_t>(get_u32(header + 12));
  out->slice = static_cast<std::int32_t>(get_u32(header + 16));
  out->payload.resize(payload_size);
  if (payload_size > 0) {
    const IoStatus body = recv_all(fd, out->payload.data(), payload_size);
    if (body != IoStatus::Ok) {
      // EOF mid-payload is a torn frame either way.
      return IoStatus::Torn;
    }
    if (crc32(out->payload.data(), payload_size) != get_u32(header + 28)) {
      return IoStatus::Corrupt;
    }
  }
  return IoStatus::Ok;
}

// ---------------------------------------------------------------------------
// Writer / Reader

void Writer::u8(std::uint8_t v) { bytes_.push_back(v); }

void Writer::i32(std::int32_t v) {
  const std::size_t at = bytes_.size();
  bytes_.resize(at + 4);
  put_u32(bytes_.data() + at, static_cast<std::uint32_t>(v));
}

void Writer::i64(std::int64_t v) {
  const std::size_t at = bytes_.size();
  bytes_.resize(at + 8);
  put_u64(bytes_.data() + at, static_cast<std::uint64_t>(v));
}

void Writer::f64(double v) {
  std::uint64_t bits;
  std::memcpy(&bits, &v, 8);
  const std::size_t at = bytes_.size();
  bytes_.resize(at + 8);
  put_u64(bytes_.data() + at, bits);
}

void Writer::str(const std::string& v) {
  i64(static_cast<std::int64_t>(v.size()));
  bytes_.insert(bytes_.end(), v.begin(), v.end());
}

void Writer::tensor(const num::Tensor& t) {
  i64(t.rows());
  i64(t.cols());
  const std::size_t n = static_cast<std::size_t>(t.size()) * sizeof(float);
  const std::size_t at = bytes_.size();
  bytes_.resize(at + n);
  if (n > 0) std::memcpy(bytes_.data() + at, t.data(), n);
}

std::uint8_t Reader::u8() {
  SLIM_CHECK(pos_ + 1 <= bytes_.size(), "wire payload underrun");
  return bytes_[pos_++];
}

std::int32_t Reader::i32() {
  SLIM_CHECK(pos_ + 4 <= bytes_.size(), "wire payload underrun");
  const std::int32_t v =
      static_cast<std::int32_t>(get_u32(bytes_.data() + pos_));
  pos_ += 4;
  return v;
}

std::int64_t Reader::i64() {
  SLIM_CHECK(pos_ + 8 <= bytes_.size(), "wire payload underrun");
  const std::int64_t v =
      static_cast<std::int64_t>(get_u64(bytes_.data() + pos_));
  pos_ += 8;
  return v;
}

double Reader::f64() {
  SLIM_CHECK(pos_ + 8 <= bytes_.size(), "wire payload underrun");
  const std::uint64_t bits = get_u64(bytes_.data() + pos_);
  pos_ += 8;
  double v;
  std::memcpy(&v, &bits, 8);
  return v;
}

std::string Reader::str() {
  const std::int64_t n = i64();
  SLIM_CHECK(n >= 0 && pos_ + static_cast<std::size_t>(n) <= bytes_.size(),
             "wire payload underrun");
  std::string v(reinterpret_cast<const char*>(bytes_.data() + pos_),
                static_cast<std::size_t>(n));
  pos_ += static_cast<std::size_t>(n);
  return v;
}

num::Tensor Reader::tensor() {
  const std::int64_t rows = i64();
  const std::int64_t cols = i64();
  SLIM_CHECK(rows >= 0 && cols >= 0, "wire tensor with negative shape");
  if (rows == 0 || cols == 0) return {};
  num::Tensor t = num::Tensor::uninit(rows, cols);
  const std::size_t n = static_cast<std::size_t>(t.size()) * sizeof(float);
  SLIM_CHECK(pos_ + n <= bytes_.size(), "wire payload underrun");
  std::memcpy(t.data(), bytes_.data() + pos_, n);
  pos_ += n;
  return t;
}

// ---------------------------------------------------------------------------
// Structured payloads

namespace {

void write_channel_stats(Writer& w, const WireChannelStats& c) {
  w.i64(c.frames_out);
  w.i64(c.frames_in);
  w.i64(c.bytes_out);
  w.i64(c.bytes_in);
  w.i64(c.crc_rejects);
  w.i64(c.retries);
}

WireChannelStats read_channel_stats(Reader& r) {
  WireChannelStats c;
  c.frames_out = r.i64();
  c.frames_in = r.i64();
  c.bytes_out = r.i64();
  c.bytes_in = r.i64();
  c.crc_rejects = r.i64();
  c.retries = r.i64();
  return c;
}

}  // namespace

void write_status(Writer& w, const WireStatus& status) {
  w.i64(status.messages);
  w.i32(status.done_f);
  w.i32(status.done_b);
  w.i32(status.live);
  w.i32(status.queue);
  w.i32(status.deferred);
  w.i32(status.committed);
  w.i32(status.last_mb);
  w.i32(status.state);
  w.f64(status.injected_delay_seconds);
  write_channel_stats(w, status.prev);
  write_channel_stats(w, status.next);
  w.i64(status.flight_recorded);
}

WireStatus read_status(Reader& r) {
  WireStatus status;
  status.messages = r.i64();
  status.done_f = r.i32();
  status.done_b = r.i32();
  status.live = r.i32();
  status.queue = r.i32();
  status.deferred = r.i32();
  status.committed = r.i32();
  status.last_mb = r.i32();
  status.state = r.i32();
  status.injected_delay_seconds = r.f64();
  status.prev = read_channel_stats(r);
  status.next = read_channel_stats(r);
  status.flight_recorded = r.i64();
  return status;
}

void write_event(Writer& w, const fault::FaultEvent& event) {
  w.u8(static_cast<std::uint8_t>(event.kind));
  w.i32(event.device);
  w.f64(event.time);
  w.i64(event.index);
  w.str(event.detail);
}

fault::FaultEvent read_event(Reader& r) {
  fault::FaultEvent event;
  event.kind = static_cast<fault::FaultEvent::Kind>(r.u8());
  event.device = r.i32();
  event.time = r.f64();
  event.index = r.i64();
  event.detail = r.str();
  return event;
}

void write_flight_flush(Writer& w, const WireFlightFlush& flush) {
  w.i64(static_cast<std::int64_t>(flush.dropped));
  w.i32(static_cast<std::int32_t>(flush.events.size()));
  for (const obs::FlightEvent& ev : flush.events) {
    w.f64(ev.ts);
    w.i64(static_cast<std::int64_t>(ev.seq));
    w.u8(static_cast<std::uint8_t>(ev.kind));
    w.i32(ev.mb);
    w.i32(ev.slice);
    w.i64(ev.value);
    w.str(ev.label_str());
  }
}

WireFlightFlush read_flight_flush(Reader& r) {
  WireFlightFlush flush;
  flush.dropped = static_cast<std::uint64_t>(r.i64());
  const std::int32_t n = r.i32();
  SLIM_CHECK(n >= 0, "telemetry frame with negative event count");
  flush.events.reserve(static_cast<std::size_t>(n));
  for (std::int32_t i = 0; i < n; ++i) {
    obs::FlightEvent ev;
    ev.ts = r.f64();
    ev.seq = static_cast<std::uint64_t>(r.i64());
    ev.kind = static_cast<obs::FlightKind>(r.u8());
    ev.mb = r.i32();
    ev.slice = r.i32();
    ev.value = r.i64();
    ev.set_label(r.str());
    flush.events.push_back(ev);
  }
  return flush;
}

std::int64_t wire_flow_id(int attempt, bool backward, int src_stage, int mb,
                          int slice) {
  // Mixed-radix fold; the radices bound any run this repo can set up.
  constexpr std::int64_t kStages = 64, kMb = 1 << 20, kSlices = 256;
  constexpr std::int64_t kBase = std::int64_t{1} << 56;
  std::int64_t id = attempt;
  id = id * 2 + (backward ? 1 : 0);
  id = id * kStages + src_stage;
  id = id * kMb + mb;
  id = id * kSlices + slice;
  return kBase + id;
}

namespace {

void write_layer_grads(Writer& w, const num::LayerGrads& g) {
  SLIM_CHECK(!g.moe.has_value(),
             "MoE layer gradients are not wire-serializable yet");
  w.tensor(g.wq);
  w.tensor(g.wk);
  w.tensor(g.wv);
  w.tensor(g.wo);
  w.tensor(g.w_gate);
  w.tensor(g.w_up);
  w.tensor(g.w_down);
  w.tensor(g.norm1);
  w.tensor(g.norm2);
}

num::LayerGrads read_layer_grads(Reader& r) {
  num::LayerGrads g;
  g.wq = r.tensor();
  g.wk = r.tensor();
  g.wv = r.tensor();
  g.wo = r.tensor();
  g.w_gate = r.tensor();
  g.w_up = r.tensor();
  g.w_down = r.tensor();
  g.norm1 = r.tensor();
  g.norm2 = r.tensor();
  return g;
}

}  // namespace

void write_commit(Writer& w, const rt::StageCommit& commit) {
  w.f64(commit.loss);
  w.i32(static_cast<std::int32_t>(commit.layers.size()));
  for (const num::LayerGrads& g : commit.layers) write_layer_grads(w, g);
  w.tensor(commit.embed_in);
  w.tensor(commit.head_shard);
  w.tensor(commit.final_norm);
}

rt::StageCommit read_commit(Reader& r) {
  rt::StageCommit commit;
  commit.loss = r.f64();
  const std::int32_t n_layers = r.i32();
  SLIM_CHECK(n_layers >= 0, "commit frame with negative layer count");
  for (std::int32_t i = 0; i < n_layers; ++i) {
    commit.layers.push_back(read_layer_grads(r));
  }
  commit.embed_in = r.tensor();
  commit.head_shard = r.tensor();
  commit.final_norm = r.tensor();
  commit.complete = true;
  return commit;
}

void write_stage_done(Writer& w, const WireStageDone& done) {
  write_status(w, done.status);
  w.f64(done.busy_seconds);
  w.f64(done.comm_seconds);
  w.f64(done.blocked_recv_seconds);
  w.i64(done.p2p_messages);
  w.f64(done.p2p_bytes);
  w.i32(done.peak_queue);
  w.i32(done.peak_live);
  w.i32(static_cast<std::int32_t>(done.arena_peak_bytes.size()));
  for (const std::int64_t b : done.arena_peak_bytes) w.i64(b);
  w.i64(done.arena_peak_total);
  w.i32(static_cast<std::int32_t>(done.events.size()));
  for (const fault::FaultEvent& e : done.events) write_event(w, e);
  w.i32(static_cast<std::int32_t>(done.spans.size()));
  for (const WireSpan& s : done.spans) {
    w.f64(s.start);
    w.f64(s.end);
    w.str(s.name);
    w.str(s.category);
    w.i32(s.mb);
    w.i32(s.slice);
    w.i32(s.stage);
  }
  w.i32(static_cast<std::int32_t>(done.instants.size()));
  for (const WireInstant& i : done.instants) {
    w.f64(i.time);
    w.str(i.name);
    w.str(i.category);
    w.str(i.detail);
  }
  w.i32(static_cast<std::int32_t>(done.flows.size()));
  for (const WireFlow& f : done.flows) {
    w.i64(f.id);
    w.f64(f.ts);
    w.u8(f.begin);
    w.u8(f.backward);
  }
}

WireStageDone read_stage_done(Reader& r) {
  WireStageDone done;
  done.status = read_status(r);
  done.busy_seconds = r.f64();
  done.comm_seconds = r.f64();
  done.blocked_recv_seconds = r.f64();
  done.p2p_messages = r.i64();
  done.p2p_bytes = r.f64();
  done.peak_queue = r.i32();
  done.peak_live = r.i32();
  const std::int32_t n_cat = r.i32();
  for (std::int32_t i = 0; i < n_cat; ++i) {
    done.arena_peak_bytes.push_back(r.i64());
  }
  done.arena_peak_total = r.i64();
  const std::int32_t n_events = r.i32();
  for (std::int32_t i = 0; i < n_events; ++i) {
    done.events.push_back(read_event(r));
  }
  const std::int32_t n_spans = r.i32();
  for (std::int32_t i = 0; i < n_spans; ++i) {
    WireSpan s;
    s.start = r.f64();
    s.end = r.f64();
    s.name = r.str();
    s.category = r.str();
    s.mb = r.i32();
    s.slice = r.i32();
    s.stage = r.i32();
    done.spans.push_back(std::move(s));
  }
  const std::int32_t n_instants = r.i32();
  for (std::int32_t i = 0; i < n_instants; ++i) {
    WireInstant inst;
    inst.time = r.f64();
    inst.name = r.str();
    inst.category = r.str();
    inst.detail = r.str();
    done.instants.push_back(std::move(inst));
  }
  const std::int32_t n_flows = r.i32();
  for (std::int32_t i = 0; i < n_flows; ++i) {
    WireFlow f;
    f.id = r.i64();
    f.ts = r.f64();
    f.begin = r.u8();
    f.backward = r.u8();
    done.flows.push_back(f);
  }
  return done;
}

}  // namespace slim::dist
