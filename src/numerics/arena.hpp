#pragma once

// Arena-based memory ownership for the numerics substrate.
//
// The substrate's unit of memory lifetime is the *slice*: a forward slice
// retains a fixed set of activations plus one KV chunk, and the matching
// backward — strictly LIFO within a microbatch (§4.1.2) — retires exactly
// that set. A bump allocator with watermark reclamation models this
// directly: forward pushes a Mark, retained tensors land above it, backward
// releases back to it. Per-op scratch (attention score rows, reduction
// partials) instead comes from a grow-only per-thread workspace that is
// reused across calls, so the hot path stops churning the heap entirely.
//
// Accounting is per mem::Category (the same indices the analytical tracker
// books simulated MemDelta records against), which is what lets
// src/memory/reconcile.hpp compare the substrate's *measured* peaks against
// mem::replay_memory's prediction for the same schedule.
//
// Thread-safety: an Arena is single-owner (one stage thread drives it; the
// determinism contract keeps kernel workers away from retained-tensor
// construction), but the ArenaStats sink it reports into is atomic so many
// arenas — one per in-flight microbatch, plus every thread's workspace —
// can share one per-stage (or global) sink.

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "src/memory/category.hpp"

namespace slim::num {

/// Thread-safe live/peak byte accounting per mem::Category. The peak of the
/// *sum across all arenas sharing the sink* is tracked, not the sum of
/// per-arena peaks — concurrent microbatch arenas overlap in time, and the
/// reconciliation needs the true high-water mark.
class ArenaStats {
 public:
  ArenaStats() {
    for (auto& v : live_) v.store(0, std::memory_order_relaxed);
    for (auto& v : peak_) v.store(0, std::memory_order_relaxed);
    total_live_.store(0, std::memory_order_relaxed);
    total_peak_.store(0, std::memory_order_relaxed);
  }

  void on_alloc(int category, std::int64_t bytes);
  void on_free(int category, std::int64_t bytes);

  std::int64_t live_bytes(int category) const {
    return live_[static_cast<std::size_t>(category)].load(
        std::memory_order_relaxed);
  }
  /// High-water mark of this category's live bytes.
  std::int64_t peak_bytes(int category) const {
    return peak_[static_cast<std::size_t>(category)].load(
        std::memory_order_relaxed);
  }
  /// High-water mark of the all-category total (≤ sum of per-category
  /// peaks, which may occur at different times).
  std::int64_t total_peak_bytes() const {
    return total_peak_.load(std::memory_order_relaxed);
  }
  std::int64_t total_live_bytes() const {
    return total_live_.load(std::memory_order_relaxed);
  }

  void reset();

 private:
  std::array<std::atomic<std::int64_t>, mem::kNumCategories> live_;
  std::array<std::atomic<std::int64_t>, mem::kNumCategories> peak_;
  std::atomic<std::int64_t> total_live_;
  std::atomic<std::int64_t> total_peak_;
};

/// Bump allocator over chained blocks with watermark (Mark) reclamation.
/// Pointers stay valid until the allocation's region is released — growing
/// appends a new block, never moves old ones.
class Arena {
 public:
  /// `stats` may be null (no accounting) or shared across arenas.
  explicit Arena(ArenaStats* stats = nullptr,
                 std::size_t block_bytes = kDefaultBlockBytes);
  ~Arena();

  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  /// Scope watermark: everything allocated after mark() is reclaimed —
  /// bytes returned to the stats sink and the bump offset rewound — by
  /// release_to(). Releases must nest LIFO.
  struct Mark {
    std::size_t block = 0;
    std::size_t used = 0;
    std::size_t log_size = 0;
  };

  /// 64-byte-aligned raw allocation booked under `category`.
  void* allocate(std::size_t bytes, int category);
  float* allocate_floats(std::int64_t count, int category) {
    return static_cast<float*>(
        allocate(static_cast<std::size_t>(count) * sizeof(float), category));
  }

  Mark mark() const;
  void release_to(const Mark& m);
  /// Releases everything (watermark zero); blocks are kept for reuse.
  void release_all();

  std::int64_t live_bytes() const { return live_bytes_; }
  /// Live (not yet released) allocations, mirroring live_bytes().
  std::int64_t allocation_count() const { return allocation_count_; }
  /// Bytes of backing blocks currently reserved (reused across scopes).
  std::int64_t reserved_bytes() const;

  static constexpr std::size_t kDefaultBlockBytes = std::size_t{1} << 20;

 private:
  struct Block {
    std::unique_ptr<unsigned char[]> data;
    std::size_t capacity = 0;
    std::size_t used = 0;
  };
  // One log entry per allocation so release_to can return the right byte
  // counts to the right categories (a plain bump pointer forgets them).
  struct LogEntry {
    int category;
    std::size_t bytes;
  };

  std::vector<Block> blocks_;
  std::size_t current_ = 0;   // block accepting new allocations
  std::vector<LogEntry> log_;
  ArenaStats* stats_ = nullptr;
  std::size_t block_bytes_ = kDefaultBlockBytes;
  std::int64_t live_bytes_ = 0;
  std::int64_t allocation_count_ = 0;
};

/// RAII arena scope: captures the watermark on construction, releases back
/// to it on destruction. Scopes must nest LIFO (asserted by release_to).
class ArenaScope {
 public:
  explicit ArenaScope(Arena& arena) : arena_(&arena), mark_(arena.mark()) {}
  ~ArenaScope() { arena_->release_to(mark_); }
  ArenaScope(const ArenaScope&) = delete;
  ArenaScope& operator=(const ArenaScope&) = delete;

 private:
  Arena* arena_;
  Arena::Mark mark_;
};

/// Routes Tensor allocations made *on this thread* while the binding is
/// alive into `arena` under `category`. Bindings nest (the previous binding
/// is restored on destruction). Kernel worker threads never inherit the
/// caller's binding — thread_local by design — so parallel regions keep
/// allocating scratch from their own workspaces, preserving the determinism
/// contract.
class ArenaBinding {
 public:
  ArenaBinding(Arena* arena, int category);
  ~ArenaBinding();
  ArenaBinding(const ArenaBinding&) = delete;
  ArenaBinding& operator=(const ArenaBinding&) = delete;

  static Arena* current_arena();
  static int current_category();

 private:
  Arena* prev_arena_;
  int prev_category_;
};

/// Global accounting sink for all per-thread workspaces (category
/// mem::kWorkspace). The bench reports its total peak as
/// "peak-workspace-bytes".
ArenaStats& workspace_stats();

/// This thread's grow-only scratch arena. Blocks are allocated once and
/// reused by every subsequent kernel call on the thread.
Arena& workspace_arena();

/// RAII lease of `count` elements of per-thread workspace. Contents are
/// UNINITIALIZED (and recycled from earlier leases): users must write every
/// element they read, the same rule Tensor's uninitialized path follows.
template <typename T>
class WorkspaceLease {
 public:
  explicit WorkspaceLease(std::int64_t count)
      : arena_(&workspace_arena()), mark_(arena_->mark()) {
    data_ = static_cast<T*>(arena_->allocate(
        static_cast<std::size_t>(count) * sizeof(T), mem::kWorkspace));
  }
  ~WorkspaceLease() { arena_->release_to(mark_); }
  WorkspaceLease(const WorkspaceLease&) = delete;
  WorkspaceLease& operator=(const WorkspaceLease&) = delete;

  T* data() { return data_; }
  T& operator[](std::int64_t i) { return data_[i]; }
  const T& operator[](std::int64_t i) const { return data_[i]; }

 private:
  Arena* arena_;
  Arena::Mark mark_;
  T* data_;
};

/// Allocation counters for the bench's churn columns. Heap counts every
/// Tensor backing buffer taken from the global allocator; arena counts
/// Tensor buffers served by a bound arena. Monotonic per process, read as
/// deltas around a region of interest.
std::int64_t tensor_heap_allocs();
std::int64_t tensor_arena_allocs();
namespace detail {
void count_tensor_heap_alloc();
void count_tensor_arena_alloc();
}  // namespace detail

}  // namespace slim::num
