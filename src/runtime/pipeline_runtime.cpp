#include "src/runtime/pipeline_runtime.hpp"

#include <algorithm>
#include <cmath>
#include <deque>
#include <limits>
#include <thread>

#include "src/numerics/cross_entropy.hpp"
#include "src/numerics/norm_act.hpp"
#include "src/util/logging.hpp"

namespace slim::rt {

namespace {

struct Message {
  enum class Kind {
    Forward,
    Backward,
    VocabWork,    // broadcast hidden states -> every shard   (last -> all)
    VocabStats,   // per-token (max, sumexp, target) scalars  (shard -> last)
    VocabGlobal,  // synchronized (max, sumexp) scalars       (last -> all)
    VocabDx,      // partial d(hidden) of one shard           (shard -> last)
  } kind = Kind::Forward;
  int mb = 0;
  int slice = 0;
  int shard = 0;        // sender shard for VocabStats / VocabDx
  int stage = 0;        // global stage index (interleaving routes by it)
  num::Tensor payload;  // activation / gradient / packed scalars
};

}  // namespace

ThreadedPipeline::ThreadedPipeline(num::BlockDims dims, std::int64_t vocab,
                                   int layers_total, int stages, Rng& rng,
                                   int chunks_per_stage)
    : dims_(dims),
      vocab_(vocab),
      layers_total_(layers_total),
      stages_(stages),
      chunks_per_stage_(chunks_per_stage) {
  const int total_stages = stages * chunks_per_stage;
  SLIM_CHECK(stages >= 1 && chunks_per_stage >= 1 &&
                 layers_total >= total_stages,
             "need at least one layer per stage chunk");
  embedding_ = num::Tensor::randn(
      vocab, dims.hidden, rng, 0.5f / std::sqrt(static_cast<float>(dims.hidden)));
  final_norm_ = num::Tensor(1, dims.hidden);
  final_norm_.fill(1.0f);
  for (int i = 0; i < layers_total; ++i) {
    layer_weights_.push_back(num::LayerWeights::random(dims, rng));
  }
  // Even split over global stages; earlier stages take the remainder
  // (matches the scheduler's uneven-stage convention).
  const int base = layers_total / total_stages;
  const int rem = layers_total % total_stages;
  int begin = 0;
  for (int s = 0; s < total_stages; ++s) {
    const int count = base + (s < rem ? 1 : 0);
    stage_layers_.emplace_back(begin, begin + count);
    begin += count;
  }
}

ThreadedPipeline::Result ThreadedPipeline::run_iteration(
    const std::vector<std::vector<std::int64_t>>& tokens,
    const std::vector<std::vector<std::int64_t>>& targets, int n_slices,
    bool vocab_parallel) {
  const int m = static_cast<int>(tokens.size());
  SLIM_CHECK(m >= 1 && targets.size() == tokens.size(), "bad microbatches");
  const std::int64_t seq = static_cast<std::int64_t>(tokens[0].size());
  SLIM_CHECK(n_slices >= 1 && seq % n_slices == 0, "uneven slices");
  const std::int64_t slice_len = seq / n_slices;
  const int p = stages();
  SLIM_CHECK(!vocab_parallel || vocab_ % p == 0,
             "vocabulary must split evenly across stages");
  const std::int64_t shard_width = vocab_parallel ? vocab_ / p : vocab_;

  Result result;
  result.grads.embedding = num::Tensor(vocab_, dims_.hidden);
  for (int i = 0; i < layers_total_; ++i) {
    result.grads.layers.push_back(num::LayerGrads::zeros(dims_));
  }
  result.grads.final_norm = num::Tensor(1, dims_.hidden);
  result.stats.peak_live_slices.assign(static_cast<std::size_t>(p), 0);
  result.stats.messages.assign(static_cast<std::size_t>(p), 0);

  std::vector<Channel<Message>> inbox(static_cast<std::size_t>(p));
  // Seed stage 0 with every forward slice in slice-stream order.
  for (int mb = 0; mb < m; ++mb) {
    for (int s = 0; s < n_slices; ++s) {
      inbox[0].send({Message::Kind::Forward, mb, s, 0, 0, {}});
    }
  }

  // Tied embedding: input-side gradient owned by stage 0, output-head
  // gradient by the last stage (or one row-shard per stage under
  // vocabulary parallelism); summed after the join.
  num::Tensor embed_grad_in(vocab_, dims_.hidden);
  std::vector<num::Tensor> head_shard_grad;
  for (int s = 0; s < p; ++s) {
    head_shard_grad.emplace_back(vocab_parallel ? shard_width : vocab_,
                                 dims_.hidden);
  }
  double total_loss = 0.0;
  const float slice_weight = static_cast<float>(slice_len) /
                             (static_cast<float>(seq) * static_cast<float>(m));

  const int v = chunks_per_stage_;
  const int total_stages = p * v;
  auto worker = [&](int stage) {
    // This thread owns global stages stage, p+stage, 2p+stage, ...
    std::vector<std::vector<num::Layer>> chunk_layers(
        static_cast<std::size_t>(v));
    for (int chunk = 0; chunk < v; ++chunk) {
      const int global_stage = chunk * p + stage;
      const auto [clo, chi] =
          stage_layers_[static_cast<std::size_t>(global_stage)];
      for (int i = clo; i < chi; ++i) {
        chunk_layers[static_cast<std::size_t>(chunk)].emplace_back(
            dims_, layer_weights_[static_cast<std::size_t>(i)]);
      }
    }
    const int head_thread = (total_stages - 1) % p;
    const bool is_last = stage == head_thread;
    const std::int64_t shard_lo =
        vocab_parallel ? stage * shard_width : 0;
    const num::Tensor head_shard =
        vocab_parallel ? embedding_.slice_rows(shard_lo, shard_lo + shard_width)
                       : embedding_;

    // Last-stage per-(mb, slice) state.
    auto idx = [&](int mb, int slice) {
      return static_cast<std::size_t>(mb * n_slices + slice);
    };
    std::vector<num::Tensor> head_grad(idx(m - 1, n_slices - 1) + 1);
    std::vector<bool> head_ready(head_grad.size(), false);
    std::vector<num::Tensor> final_input(is_last ? head_grad.size() : 0);
    std::vector<num::Tensor> dx_sum(is_last ? head_grad.size() : 0);
    std::vector<int> stats_seen(is_last ? head_grad.size() : 0, 0);
    std::vector<int> dx_seen(is_last ? head_grad.size() : 0, 0);
    std::vector<num::CeShardStats> stats_acc(
        is_last ? head_grad.size() : 0);
    // Shard-side stash of hidden states between the two vocabulary phases.
    std::vector<num::Tensor> shard_hidden(
        vocab_parallel ? head_grad.size() : 0);

    // Work targets (loop until every expected action completed).
    const int want_f = m * n_slices * v;
    const int want_b = m * n_slices * v;
    const int want_vocab_work = vocab_parallel ? m * n_slices : 0;
    const int want_vocab_global = vocab_parallel ? m * n_slices : 0;
    int done_f = 0, done_b = 0, done_vw = 0, done_vg = 0;

    auto slice_targets_of = [&](int mb, int slice) {
      const std::int64_t pos = static_cast<std::int64_t>(slice) * slice_len;
      return std::vector<std::int64_t>(
          targets[static_cast<std::size_t>(mb)].begin() + pos,
          targets[static_cast<std::size_t>(mb)].begin() + pos + slice_len);
    };

    int live = 0, peak_live = 0;
    int mb_min = 0;
    std::vector<int> b_done(static_cast<std::size_t>(m), 0);
    std::int64_t messages = 0;
    // SlimPipe's warm-up window (Eq. 1): stage r holds at most
    // n + 2(p-1-r) live slices; excess forwards wait here until a backward
    // frees a slot. This is what gives the runtime its bounded footprint.
    const int live_cap = n_slices * v + 2 * (p - 1 - stage);
    std::deque<Message> deferred;
    while (done_f < want_f || done_b < want_b || done_vw < want_vocab_work ||
           done_vg < want_vocab_global) {
      // Oldest microbatch not yet fully retired on this thread: its
      // forwards are always admitted (they are upstream of the backwards
      // that drain the window), so the throttle can never deadlock.
      while (mb_min < m && b_done[static_cast<std::size_t>(mb_min)] ==
                               n_slices * v) {
        ++mb_min;
      }
      Message msg;
      bool have = false;
      if (!deferred.empty() &&
          (live < live_cap || deferred.front().mb == mb_min)) {
        msg = std::move(deferred.front());
        deferred.pop_front();
        have = true;
      }
      while (!have) {
        auto received = inbox[static_cast<std::size_t>(stage)].receive_for(
            std::chrono::seconds(30));
        SLIM_CHECK(received.has_value(),
                   "pipeline stage " + std::to_string(stage) +
                       " starved: f=" + std::to_string(done_f) + "/" +
                       std::to_string(want_f) + " b=" +
                       std::to_string(done_b) + "/" +
                       std::to_string(want_b) + " live=" +
                       std::to_string(live) + " cap=" +
                       std::to_string(live_cap));
        ++messages;
        // Eq. 1's warm-up window: park forwards of *younger* microbatches
        // while the window is full.
        if (received->kind == Message::Kind::Forward &&
            received->mb != mb_min && live >= live_cap) {
          deferred.push_back(std::move(*received));
          continue;
        }
        msg = std::move(*received);
        have = true;
      }
      switch (msg.kind) {
        case Message::Kind::Forward: {
          ++done_f;
          ++live;
          peak_live = std::max(peak_live, live);
          const std::int64_t pos =
              static_cast<std::int64_t>(msg.slice) * slice_len;
          num::Tensor x;
          if (msg.stage == 0) {
            x = num::Tensor(slice_len, dims_.hidden);
            const auto& ids = tokens[static_cast<std::size_t>(msg.mb)];
            for (std::int64_t r = 0; r < slice_len; ++r) {
              const std::int64_t id = ids[static_cast<std::size_t>(pos + r)];
              for (std::int64_t c = 0; c < dims_.hidden; ++c) {
                x.at(r, c) = embedding_.at(id, c);
              }
            }
          } else {
            x = std::move(msg.payload);
          }
          for (num::Layer& layer :
               chunk_layers[static_cast<std::size_t>(msg.stage / p)]) {
            x = layer.forward_slice(x, pos, msg.mb);
          }
          if (msg.stage + 1 < total_stages) {
            inbox[static_cast<std::size_t>((msg.stage + 1) % p)].send(
                {Message::Kind::Forward, msg.mb, msg.slice, 0, msg.stage + 1,
                 std::move(x)});
            break;
          }
          const num::Tensor hidden = num::rmsnorm(x, final_norm_);
          if (vocab_parallel) {
            // Phase 1: broadcast the hidden states to every shard.
            final_input[idx(msg.mb, msg.slice)] = std::move(x);
            for (int s = 0; s < p; ++s) {
              inbox[static_cast<std::size_t>(s)].send(
                  {Message::Kind::VocabWork, msg.mb, msg.slice, 0, 0, hidden});
            }
          } else {
            const num::Tensor logits = num::matmul_nt(hidden, embedding_);
            num::CeResult ce = num::cross_entropy(
                logits, slice_targets_of(msg.mb, msg.slice));
            total_loss += ce.loss * slice_weight * static_cast<double>(m);
            for (std::int64_t i = 0; i < ce.dlogits.size(); ++i) {
              ce.dlogits.data()[i] *= slice_weight;
            }
            head_shard_grad[static_cast<std::size_t>(stage)].add_(
                num::matmul_tn(ce.dlogits, hidden));
            const num::Tensor dhidden = num::matmul(ce.dlogits, embedding_);
            head_grad[idx(msg.mb, msg.slice)] = num::rmsnorm_bwd(
                x, final_norm_, dhidden, result.grads.final_norm);
            head_ready[idx(msg.mb, msg.slice)] = true;
            if (msg.slice == n_slices - 1) {
              inbox[static_cast<std::size_t>(stage)].send_front(
                  {Message::Kind::Backward, msg.mb, msg.slice, 0,
                   total_stages - 1, {}});
            }
          }
          break;
        }
        case Message::Kind::Backward: {
          const bool head_edge = msg.stage == total_stages - 1;
          if (head_edge && !head_ready[idx(msg.mb, msg.slice)]) {
            // The vocabulary rounds for this slice have not finished yet;
            // revisit after processing more messages.
            inbox[static_cast<std::size_t>(stage)].send(std::move(msg));
            std::this_thread::yield();
            break;
          }
          ++done_b;
          --live;
          ++b_done[static_cast<std::size_t>(msg.mb)];
          num::Tensor dx = head_edge
                               ? std::move(head_grad[idx(msg.mb, msg.slice)])
                               : std::move(msg.payload);
          auto& layers =
              chunk_layers[static_cast<std::size_t>(msg.stage / p)];
          const int clo =
              stage_layers_[static_cast<std::size_t>(msg.stage)].first;
          for (auto it = layers.rbegin(); it != layers.rend(); ++it) {
            const std::size_t global = static_cast<std::size_t>(
                clo + static_cast<int>(layers.rend() - it) - 1);
            dx = it->backward_slice(dx, result.grads.layers[global], msg.mb);
          }
          if (msg.stage > 0) {
            inbox[static_cast<std::size_t>((msg.stage - 1 + p) % p)].send(
                {Message::Kind::Backward, msg.mb, msg.slice, 0, msg.stage - 1,
                 std::move(dx)});
          } else {
            const auto& ids = tokens[static_cast<std::size_t>(msg.mb)];
            const std::int64_t pos =
                static_cast<std::int64_t>(msg.slice) * slice_len;
            for (std::int64_t r = 0; r < slice_len; ++r) {
              const std::int64_t id = ids[static_cast<std::size_t>(pos + r)];
              for (std::int64_t c = 0; c < dims_.hidden; ++c) {
                embed_grad_in.at(id, c) += dx.at(r, c);
              }
            }
          }
          if (head_edge && msg.slice > 0) {
            inbox[static_cast<std::size_t>(stage)].send_front(
                {Message::Kind::Backward, msg.mb, msg.slice - 1, 0,
                 total_stages - 1, {}});
          }
          break;
        }
        case Message::Kind::VocabWork: {
          ++done_vw;
          // Shard pass 1: local logits -> per-token scalar statistics.
          const num::Tensor& hidden = msg.payload;
          const num::Tensor logits = num::matmul_nt(hidden, head_shard);
          const num::CeShardStats st = num::ce_shard_stats(
              logits, shard_lo, slice_targets_of(msg.mb, msg.slice));
          num::Tensor packed(3, slice_len);
          for (std::int64_t i = 0; i < slice_len; ++i) {
            packed.at(0, i) = st.max_logit[static_cast<std::size_t>(i)];
            packed.at(1, i) = st.sum_exp[static_cast<std::size_t>(i)];
            packed.at(2, i) = st.target_logit[static_cast<std::size_t>(i)];
          }
          shard_hidden[idx(msg.mb, msg.slice)] = hidden;
          inbox[static_cast<std::size_t>(head_thread)].send(
              {Message::Kind::VocabStats, msg.mb, msg.slice, stage, 0,
               std::move(packed)});
          break;
        }
        case Message::Kind::VocabStats: {
          // Last stage: synchronize the scalars across shards.
          const std::size_t i = idx(msg.mb, msg.slice);
          num::CeShardStats& acc = stats_acc[i];
          if (stats_seen[i] == 0) {
            acc.max_logit.assign(static_cast<std::size_t>(slice_len),
                                 -std::numeric_limits<float>::infinity());
            acc.sum_exp.assign(static_cast<std::size_t>(slice_len), 0.0f);
            acc.target_logit.assign(
                static_cast<std::size_t>(slice_len),
                -std::numeric_limits<float>::infinity());
          }
          // Numerically: combine as running (max, rescaled sum).
          for (std::int64_t t = 0; t < slice_len; ++t) {
            const std::size_t ti = static_cast<std::size_t>(t);
            const float sm = msg.payload.at(0, t);
            const float ss = msg.payload.at(1, t);
            const float stl = msg.payload.at(2, t);
            const float gmax = std::max(acc.max_logit[ti], sm);
            float gsum = 0.0f;
            if (acc.sum_exp[ti] > 0.0f) {
              gsum += acc.sum_exp[ti] * std::exp(acc.max_logit[ti] - gmax);
            }
            if (ss > 0.0f) gsum += ss * std::exp(sm - gmax);
            acc.max_logit[ti] = gmax;
            acc.sum_exp[ti] = gsum;
            acc.target_logit[ti] = std::max(acc.target_logit[ti], stl);
          }
          if (++stats_seen[i] == p) {
            // Loss from the synchronized scalars; broadcast them back.
            double loss = 0.0;
            num::Tensor global(2, slice_len);
            for (std::int64_t t = 0; t < slice_len; ++t) {
              const std::size_t ti = static_cast<std::size_t>(t);
              loss += std::log(acc.sum_exp[ti]) + acc.max_logit[ti] -
                      acc.target_logit[ti];
              global.at(0, t) = acc.max_logit[ti];
              global.at(1, t) = acc.sum_exp[ti];
            }
            total_loss += loss / static_cast<double>(slice_len) *
                          slice_weight * static_cast<double>(m);
            for (int s = 0; s < p; ++s) {
              inbox[static_cast<std::size_t>(s)].send(
                  {Message::Kind::VocabGlobal, msg.mb, msg.slice, 0, 0,
                   global});
            }
          }
          break;
        }
        case Message::Kind::VocabGlobal: {
          ++done_vg;
          // Shard pass 2: gradient of the shard's logits from the global
          // statistics; return the partial d(hidden).
          const std::size_t i = idx(msg.mb, msg.slice);
          const num::Tensor hidden = std::move(shard_hidden[i]);
          const num::Tensor logits = num::matmul_nt(hidden, head_shard);
          const auto slice_targets = slice_targets_of(msg.mb, msg.slice);
          num::Tensor dlogits(slice_len, shard_width);
          for (std::int64_t t = 0; t < slice_len; ++t) {
            const float gmax = msg.payload.at(0, t);
            const float gsum = msg.payload.at(1, t);
            const std::int64_t y =
                slice_targets[static_cast<std::size_t>(t)] - shard_lo;
            for (std::int64_t ccol = 0; ccol < shard_width; ++ccol) {
              const float prob =
                  std::exp(logits.at(t, ccol) - gmax) / gsum;
              // Mean over the slice's tokens, then the slice's share of
              // the iteration mean — matching the monolithic head exactly.
              dlogits.at(t, ccol) = (prob - (ccol == y ? 1.0f : 0.0f)) *
                                    (slice_weight /
                                     static_cast<float>(slice_len));
            }
          }
          head_shard_grad[static_cast<std::size_t>(stage)].add_(
              num::matmul_tn(dlogits, hidden));
          num::Tensor dx_part = num::matmul(dlogits, head_shard);
          inbox[static_cast<std::size_t>(head_thread)].send(
              {Message::Kind::VocabDx, msg.mb, msg.slice, stage, 0,
               std::move(dx_part)});
          break;
        }
        case Message::Kind::VocabDx: {
          // Last stage: reduce the shards' partial d(hidden).
          const std::size_t i = idx(msg.mb, msg.slice);
          if (dx_seen[i] == 0) {
            dx_sum[i] = std::move(msg.payload);
          } else {
            dx_sum[i].add_(msg.payload);
          }
          if (++dx_seen[i] == p) {
            head_grad[i] = num::rmsnorm_bwd(final_input[i], final_norm_,
                                            dx_sum[i],
                                            result.grads.final_norm);
            head_ready[i] = true;
            final_input[i] = {};
            dx_sum[i] = {};
            if (msg.slice == n_slices - 1) {
              inbox[static_cast<std::size_t>(stage)].send_front(
                  {Message::Kind::Backward, msg.mb, msg.slice, 0,
                   total_stages - 1, {}});
            }
          }
          break;
        }
      }
    }
    for (const auto& chunk : chunk_layers) {
      for (const num::Layer& layer : chunk) {
        SLIM_CHECK(layer.live_slices() == 0 && layer.cache_chunks() == 0,
                   "stage leaked slices/chunks");
      }
    }
    result.stats.peak_live_slices[static_cast<std::size_t>(stage)] = peak_live;
    result.stats.messages[static_cast<std::size_t>(stage)] = messages;
  };

  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(p));
  for (int s = 0; s < p; ++s) threads.emplace_back(worker, s);
  for (std::thread& t : threads) t.join();

  result.grads.embedding.add_(embed_grad_in);
  if (vocab_parallel) {
    for (int s = 0; s < p; ++s) {
      result.grads.embedding.assign_rows(
          s * shard_width, [&] {
            num::Tensor merged =
                result.grads.embedding.slice_rows(s * shard_width,
                                                  (s + 1) * shard_width);
            merged.add_(head_shard_grad[static_cast<std::size_t>(s)]);
            return merged;
          }());
    }
  } else {
    result.grads.embedding.add_(head_shard_grad[static_cast<std::size_t>(p - 1)]);
  }
  result.loss = total_loss / static_cast<double>(m);
  return result;
}

ThreadedPipeline::Result ThreadedPipeline::run_reference(
    const std::vector<std::vector<std::int64_t>>& tokens,
    const std::vector<std::vector<std::int64_t>>& targets) {
  const int m = static_cast<int>(tokens.size());
  const std::int64_t seq = static_cast<std::int64_t>(tokens[0].size());

  Result result;
  result.grads.embedding = num::Tensor(vocab_, dims_.hidden);
  for (int i = 0; i < layers_total_; ++i) {
    result.grads.layers.push_back(num::LayerGrads::zeros(dims_));
  }
  result.grads.final_norm = num::Tensor(1, dims_.hidden);

  std::vector<num::Layer> layers;
  for (const auto& w : layer_weights_) layers.emplace_back(dims_, w);

  for (int mb = 0; mb < m; ++mb) {
    num::Tensor x(seq, dims_.hidden);
    for (std::int64_t r = 0; r < seq; ++r) {
      const std::int64_t id = tokens[static_cast<std::size_t>(mb)]
                                    [static_cast<std::size_t>(r)];
      for (std::int64_t c = 0; c < dims_.hidden; ++c) {
        x.at(r, c) = embedding_.at(id, c);
      }
    }
    for (num::Layer& layer : layers) x = layer.forward_slice(x, 0, mb);

    const num::Tensor hidden = num::rmsnorm(x, final_norm_);
    const num::Tensor logits = num::matmul_nt(hidden, embedding_);
    num::CeResult ce =
        num::cross_entropy(logits, targets[static_cast<std::size_t>(mb)]);
    result.loss += ce.loss / static_cast<double>(m);
    for (std::int64_t i = 0; i < ce.dlogits.size(); ++i) {
      ce.dlogits.data()[i] /= static_cast<float>(m);
    }
    result.grads.embedding.add_(num::matmul_tn(ce.dlogits, hidden));
    const num::Tensor dhidden = num::matmul(ce.dlogits, embedding_);
    num::Tensor dx =
        num::rmsnorm_bwd(x, final_norm_, dhidden, result.grads.final_norm);
    for (auto it = layers.rbegin(); it != layers.rend(); ++it) {
      const std::size_t global =
          layers.size() - static_cast<std::size_t>(it - layers.rbegin()) - 1;
      dx = it->backward_slice(dx, result.grads.layers[global], mb);
    }
    for (std::int64_t r = 0; r < seq; ++r) {
      const std::int64_t id = tokens[static_cast<std::size_t>(mb)]
                                    [static_cast<std::size_t>(r)];
      for (std::int64_t c = 0; c < dims_.hidden; ++c) {
        result.grads.embedding.at(id, c) += dx.at(r, c);
      }
    }
  }
  return result;
}

}  // namespace slim::rt
