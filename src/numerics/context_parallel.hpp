#pragma once

// Context parallelism over the KV cache, numerically (paper §5 "Commutated
// Context Parallelism").
//
// With c CP ranks, each rank owns one contiguous block of every cached KV
// slice. To attend a new query slice against the distributed cache:
//
//  * classic ring attention circulates every rank's *local KV* around the
//    ring — with a KV cache the communicated volume grows linearly with the
//    cached prefix, "rather inefficient";
//  * the commutated variant circulates the *query, partial output and
//    softmax normalizer* instead: each (q, o, m, l) packet visits every
//    rank, accumulates attention against that rank's resident KV via the
//    online-softmax merge, and returns home. Volume is independent of the
//    cache length.
//
// Both produce the identical attention result (asserted by tests); the
// byte counters quantify §5's claim that the commutated variant "recovers
// the communication volume of CP without KV cache".

#include <cstdint>
#include <vector>

#include "src/numerics/attention.hpp"

namespace slim::num {

/// KV chunks resident on one CP rank (all carrying global positions).
struct CpRankCache {
  std::vector<KvChunk> chunks;
};

struct CpAttnResult {
  /// Attention output of each rank's query block, in rank order.
  std::vector<AttnPartial> outputs;
  /// Total bytes moved around the ring (fp32 payload accounting).
  std::int64_t bytes_communicated = 0;
};

/// Classic ring attention: KV blocks circulate. `queries[j]` is rank j's
/// query block with global offset `q_offsets[j]`.
CpAttnResult cp_ring_kv(const std::vector<Tensor>& queries,
                        const std::vector<std::int64_t>& q_offsets,
                        const std::vector<CpRankCache>& caches, float scale);

/// Commutated variant: (q, o, m, l) packets circulate, KV stays resident.
CpAttnResult cp_commutated(const std::vector<Tensor>& queries,
                           const std::vector<std::int64_t>& q_offsets,
                           const std::vector<CpRankCache>& caches,
                           float scale);

/// Reference: gather everything on one rank and attend directly.
std::vector<AttnPartial> cp_reference(const std::vector<Tensor>& queries,
                                      const std::vector<std::int64_t>& q_offsets,
                                      const std::vector<CpRankCache>& caches,
                                      float scale);

}  // namespace slim::num
