// Cross-module integration tests: the paper's qualitative claims, asserted
// end-to-end on the simulator (scheme generators + builder + executor +
// memory replay together).

#include <gtest/gtest.h>

#include "src/core/runner.hpp"
#include "src/core/slice.hpp"
#include "src/model/transformer.hpp"
#include "src/sched/schemes.hpp"

namespace slim {
namespace {

sched::PipelineSpec spec_13b(int p, int m, std::int64_t seq,
                             model::CheckpointPolicy policy =
                                 model::CheckpointPolicy::Full) {
  sched::PipelineSpec spec;
  spec.cfg = model::llama13b();
  spec.gpu = model::hopper80();
  spec.shard = {8, 1, 1, 8};
  spec.policy = policy;
  spec.p = p;
  spec.m = m;
  spec.seq = seq;
  return spec;
}

// Figure 1: classic PP's activation memory is flat in p; SlimPipe's falls.
TEST(Figure1Property, ActivationScalingWithP) {
  double prev_classic = -1.0, prev_slim = 1e30;
  for (int p : {2, 4, 8}) {
    auto spec = spec_13b(p, 8, 64 * 1024, model::CheckpointPolicy::None);
    const auto classic = core::run_scheme(core::Scheme::OneF1B, spec);
    auto sspec = spec;
    sspec.n = 4 * p;
    sspec.v = 1;
    sspec.vocab_parallel = true;
    sspec.context_exchange = true;
    const auto slim = core::run_scheme(core::Scheme::SlimPipe, sspec);

    const double classic_act =
        classic.first_device_memory;  // includes shrinking states
    if (prev_classic >= 0.0) {
      // Classic total still falls (model states shrink) but far slower
      // than SlimPipe, whose activations also divide by p.
      const double classic_drop = prev_classic - classic_act;
      const double slim_drop = prev_slim - slim.first_device_memory;
      EXPECT_GT(slim_drop, 0.0);
      (void)classic_drop;
    }
    EXPECT_LT(slim.first_device_memory, classic.first_device_memory);
    prev_classic = classic_act;
    prev_slim = slim.first_device_memory;
  }
}

// Figure 3-style: bubble ordering at long context with few microbatches.
TEST(Figure3Property, BubbleOrdering) {
  const std::int64_t seq = 128 * 1024;
  auto spec = spec_13b(8, 4, seq);

  const auto f1b = core::run_scheme(core::Scheme::OneF1B, spec);
  auto sspec = spec;
  sspec.n = 32;
  sspec.vocab_parallel = true;
  sspec.context_exchange = true;
  const auto slim = core::run_scheme(core::Scheme::SlimPipe, sspec);

  EXPECT_LT(slim.bubble_fraction, 0.4 * f1b.bubble_fraction);
}

// Table 2 qualitative ordering of activation memory at m = p.
TEST(Table2Property, ActivationMemoryOrdering) {
  const int p = 4, m = 8;
  const std::int64_t seq = 64 * 1024;
  auto spec = spec_13b(p, m, seq, model::CheckpointPolicy::None);
  // Shrink the vocabulary: Table 2 compares *activation* memory, and a full
  // 128K vocabulary puts logits (and, for the V-shape, the output head) on
  // the first device, confounding the comparison.
  spec.cfg.vocab = 4000;

  const auto gpipe = core::run_scheme(core::Scheme::GPipe, spec);
  const auto f1b = core::run_scheme(core::Scheme::OneF1B, spec);
  auto tspec = spec;
  tspec.n = 4 * p;
  const auto tera = core::run_scheme(core::Scheme::TeraPipe, tspec);
  auto vspec = spec;
  const auto vhalf = core::run_scheme(core::Scheme::VHalf, vspec);
  auto sspec = spec;
  sspec.n = 4 * p;
  sspec.vocab_parallel = true;
  const auto slim = core::run_scheme(core::Scheme::SlimPipe, sspec);

  // GPipe/TeraPipe accumulate m microbatches > 1F1B's p.
  EXPECT_GT(gpipe.first_device_memory, f1b.first_device_memory);
  EXPECT_GT(tera.first_device_memory, f1b.first_device_memory);
  // V-Half sits below 1F1B; SlimPipe below V-Half.
  EXPECT_LT(vhalf.first_device_memory, f1b.first_device_memory);
  EXPECT_LT(slim.first_device_memory, vhalf.first_device_memory);
}

// Figure 13/14 shape: at 32K every scheme runs; by 256K the V-shaped
// schemes are out of memory while SlimPipe still fits comfortably.
TEST(Figure14Property, OomProgression) {
  auto at = [&](core::Scheme scheme, std::int64_t seq) {
    auto spec = spec_13b(8, 4, seq);
    if (scheme == core::Scheme::SlimPipe) {
      spec.n = 32;
      spec.v = 5;
      spec.vocab_parallel = true;
      spec.context_exchange = true;
    }
    if (scheme == core::Scheme::Interleaved1F1B) spec.v = 5;
    return core::run_scheme(scheme, spec);
  };
  EXPECT_FALSE(at(core::Scheme::SlimPipe, 32 * 1024).oom);
  EXPECT_FALSE(at(core::Scheme::OneF1B, 32 * 1024).oom);
  EXPECT_TRUE(at(core::Scheme::ZBV, 256 * 1024).oom);
  EXPECT_FALSE(at(core::Scheme::SlimPipe, 256 * 1024).oom);
  // SlimPipe sustains 512K where 1F1B with full checkpointing is at or
  // beyond its limit.
  const auto slim512 = at(core::Scheme::SlimPipe, 512 * 1024);
  EXPECT_FALSE(slim512.oom);
}

// Figure 13 shape: SlimPipe's MFU beats 1F1B and the gap widens with
// context length.
TEST(Figure13Property, MfuGapWidensWithContext) {
  double prev_gap = -1.0;
  for (std::int64_t seq : {32 * 1024, 128 * 1024, 256 * 1024}) {
    auto spec = spec_13b(8, 4, seq);
    const auto f1b = core::run_scheme(core::Scheme::OneF1B, spec);
    auto sspec = spec;
    sspec.n = 32;
    sspec.v = 5;
    sspec.vocab_parallel = true;
    sspec.context_exchange = true;
    const auto slim = core::run_scheme(core::Scheme::SlimPipe, sspec);
    EXPECT_GT(slim.mfu, f1b.mfu) << "seq=" << seq;
    const double gap = slim.mfu - f1b.mfu;
    if (prev_gap >= 0.0) {
      EXPECT_GE(gap, prev_gap * 0.8);
    }
    prev_gap = gap;
  }
}

// MFU must always land in a physical range.
TEST(SanityProperty, MfuWithinPhysicalBounds) {
  for (const auto scheme : core::all_schemes()) {
    auto spec = spec_13b(4, 4, 64 * 1024);
    if (scheme == core::Scheme::SlimPipe || scheme == core::Scheme::TeraPipe) {
      spec.n = 8;
    }
    const auto r = core::run_scheme(scheme, spec);
    EXPECT_GT(r.mfu, 0.02) << r.scheme;
    EXPECT_LT(r.mfu, 0.70) << r.scheme;
    EXPECT_GE(r.bubble_fraction, 0.0);
    EXPECT_LT(r.bubble_fraction, 0.95);
  }
}

// Determinism: the simulator is a pure function of the spec.
TEST(SanityProperty, DeterministicResults) {
  auto spec = spec_13b(4, 4, 64 * 1024);
  spec.n = 16;
  spec.vocab_parallel = true;
  spec.context_exchange = true;
  const auto a = core::run_scheme(core::Scheme::SlimPipe, spec);
  const auto b = core::run_scheme(core::Scheme::SlimPipe, spec);
  EXPECT_DOUBLE_EQ(a.iteration_time, b.iteration_time);
  EXPECT_DOUBLE_EQ(a.peak_memory, b.peak_memory);
  EXPECT_DOUBLE_EQ(a.mfu, b.mfu);
}

// Offload shrinks memory and (with enough compute to hide the copies)
// costs little time — Table 4's enabling mechanism.
TEST(OffloadProperty, MemoryForTimeTrade) {
  auto spec = spec_13b(8, 2, 512 * 1024, model::CheckpointPolicy::Selective);
  spec.n = 32;
  spec.v = 5;
  spec.vocab_parallel = true;
  spec.context_exchange = true;
  const auto plain = core::run_scheme(core::Scheme::SlimPipe, spec);
  auto off = spec;
  off.offload.ratio = 0.75;
  const auto offloaded = core::run_scheme(core::Scheme::SlimPipe, off);
  EXPECT_LT(offloaded.peak_memory, plain.peak_memory);
  EXPECT_LT(offloaded.iteration_time, 1.5 * plain.iteration_time);
}

// The exchange ablation (Figure 7's fix): in the imbalance-prone regime,
// context exchange removes bubbles.
TEST(ExchangeAblation, ReducesImbalanceBubbles) {
  auto spec = spec_13b(4, 2, 512 * 1024, model::CheckpointPolicy::None);
  spec.n = 16;
  spec.vocab_parallel = true;
  spec.context_exchange = false;
  const auto off = core::run_scheme(core::Scheme::SlimPipe, spec);
  spec.context_exchange = true;
  const auto on = core::run_scheme(core::Scheme::SlimPipe, spec);
  EXPECT_LT(on.bubble_fraction, off.bubble_fraction);
  EXPECT_LT(on.iteration_time, off.iteration_time);
}

}  // namespace
}  // namespace slim
