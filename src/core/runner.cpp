#include "src/core/runner.hpp"

#include <algorithm>
#include <memory>

#include "src/core/context_exchange.hpp"
#include "src/core/slice.hpp"
#include "src/core/slimpipe.hpp"
#include "src/sched/builder.hpp"
#include "src/sched/schemes.hpp"
#include "src/util/logging.hpp"

namespace slim::core {

const char* scheme_name(Scheme scheme) {
  switch (scheme) {
    case Scheme::GPipe: return "GPipe";
    case Scheme::TeraPipe: return "TeraPipe";
    case Scheme::OneF1B: return "1F1B";
    case Scheme::Interleaved1F1B: return "Interleaved 1F1B";
    case Scheme::ZBV: return "ZB-V";
    case Scheme::VHalf: return "V-Half";
    case Scheme::VMin: return "V-Min";
    case Scheme::SlimPipe: return "SlimPipe";
  }
  return "?";
}

std::vector<Scheme> all_schemes() {
  return {Scheme::GPipe,  Scheme::TeraPipe, Scheme::OneF1B,
          Scheme::Interleaved1F1B, Scheme::ZBV, Scheme::VHalf,
          Scheme::VMin, Scheme::SlimPipe};
}

namespace {

/// Display names match the legacy scheme runners exactly (metrics and the
/// comparison tables key on them); only 1F1B decorates scheme_name().
const char* display_name(Scheme scheme) {
  return scheme == Scheme::OneF1B ? "1F1B (PipeDream-Flush)"
                                  : scheme_name(scheme);
}

}  // namespace

sched::ScheduleResult run_scheme(Scheme scheme, sched::PipelineSpec spec,
                                 bool want_timeline) {
  // Interleaving with a single chunk is plain 1F1B (the same delegation the
  // scheme runner performs) — resolve it before the display name is chosen.
  if (scheme == Scheme::Interleaved1F1B && spec.v == 1) {
    scheme = Scheme::OneF1B;
  }
  // Routing through plan_scheme (rather than the legacy run_* runners)
  // stamps the scheme's declared in-flight cap on the spec, so compile()
  // enforces the sched-inflight-bound rule on every simulated run.
  SchedulePlan plan = plan_scheme(scheme, std::move(spec));
  std::unique_ptr<ExchangePlanner> planner;
  if (plan.spec.context_exchange && plan.spec.p > 1) {
    planner = std::make_unique<ExchangePlanner>(plan.spec);
  }
  return sched::run_pipeline(plan.spec, plan.programs, planner.get(),
                             display_name(scheme), want_timeline);
}

sched::ScheduleResult run_scheme_faulted(Scheme scheme,
                                         sched::PipelineSpec spec,
                                         const fault::FaultPlan& faults,
                                         fault::FaultReport* report,
                                         bool want_timeline) {
  // plan_scheme applies the same spec normalization as the run_* runners,
  // so the faulted run executes exactly the schedule run_scheme would.
  SchedulePlan plan = plan_scheme(scheme, std::move(spec));
  std::unique_ptr<ExchangePlanner> planner;
  if (plan.spec.context_exchange && plan.spec.p > 1) {
    planner = std::make_unique<ExchangePlanner>(plan.spec);
  }
  return sched::run_pipeline_faulted(plan.spec, plan.programs, planner.get(),
                                     scheme_name(scheme), faults, report,
                                     want_timeline);
}

SchedulePlan plan_scheme(Scheme scheme, sched::PipelineSpec spec) {
  // Normalizations mirror the run_* runners exactly, so linting a plan
  // covers the same schedule the simulator would execute.
  SchedulePlan plan;
  switch (scheme) {
    case Scheme::GPipe:
      spec.v = 1;
      spec.n = 1;
      spec.layout = sched::StageLayoutKind::Sequential;
      spec.retain_kv = false;
      spec.context_exchange = false;
      // All m microbatches accumulate until the flush.
      plan.max_inflight_units = static_cast<double>(spec.m);
      plan.programs = sched::gpipe_programs(spec);
      break;
    case Scheme::TeraPipe:
      spec.v = 1;
      spec.layout = sched::StageLayoutKind::Sequential;
      spec.retain_kv = true;
      spec.context_exchange = false;
      // GPipe-style accumulation at slice granularity: m * n live slices.
      plan.max_inflight_units = static_cast<double>(spec.m) *
                                static_cast<double>(spec.n);
      plan.programs = sched::terapipe_programs(spec);
      break;
    case Scheme::OneF1B:
      spec.v = 1;
      spec.n = 1;
      spec.layout = sched::StageLayoutKind::Sequential;
      spec.retain_kv = false;
      spec.context_exchange = false;
      // Device 0's warm-up depth: p in-flight microbatches (fewer if m < p).
      plan.max_inflight_units = static_cast<double>(std::min(spec.p, spec.m));
      plan.programs = sched::onef1b_programs(spec);
      break;
    case Scheme::Interleaved1F1B:
      spec.n = 1;
      spec.retain_kv = false;
      spec.context_exchange = false;
      if (spec.v == 1) return plan_scheme(Scheme::OneF1B, std::move(spec));
      spec.layout = sched::StageLayoutKind::Interleaved;
      // Device 0's Megatron warm-up: 2(p-1) + (v-1)p + 1 chunk passes.
      plan.max_inflight_units = std::min(
          static_cast<double>(2 * (spec.p - 1) + (spec.v - 1) * spec.p + 1),
          static_cast<double>(spec.m) * static_cast<double>(spec.v));
      plan.programs = sched::interleaved_programs(spec);
      break;
    case Scheme::ZBV:
    case Scheme::VHalf:
    case Scheme::VMin: {
      spec.v = 2;
      spec.n = 1;
      spec.layout = sched::StageLayoutKind::VShape;
      spec.retain_kv = false;
      spec.context_exchange = false;
      spec.policy = model::CheckpointPolicy::None;
      double cap = 2.0 * static_cast<double>(spec.p);  // ZB-V: 1F1B's peak
      if (scheme == Scheme::VHalf) {
        cap = static_cast<double>(spec.p) + 2.0;  // Table 2: (1/2 + 1/p) Ma
      } else if (scheme == Scheme::VMin) {
        cap = std::max(4.0, 2.0 * static_cast<double>(spec.p) / 3.0 + 2.0);
      }
      plan.max_inflight_units = cap;
      plan.programs = sched::zbv_programs(spec, cap);
      break;
    }
    case Scheme::SlimPipe:
      spec.layout = spec.v == 1 ? sched::StageLayoutKind::Sequential
                                : sched::StageLayoutKind::Interleaved;
      spec.retain_kv = true;
      spec.cp_mode = model::CpMode::Commutated;
      if (spec.n < spec.p) spec.n = spec.p;
      if (spec.n <= 1 || spec.p <= 1) spec.context_exchange = false;
      // Eq. 1 window at device 0: n v + 2(p-1) slice units.
      plan.max_inflight_units = std::min(
          static_cast<double>(slimpipe_warmup_units(spec.p, 0, spec.n, spec.v)),
          static_cast<double>(spec.m) * static_cast<double>(spec.n) *
              static_cast<double>(spec.v));
      plan.programs = slimpipe_programs(spec);
      break;
  }
  SLIM_CHECK(!plan.programs.empty(),
             "scheme generated no device programs (is p >= 1?)");
  // A schedule can never hold more units than the (normalized) iteration has.
  plan.max_inflight_units =
      std::min(plan.max_inflight_units, static_cast<double>(spec.m) *
                                            static_cast<double>(spec.n) *
                                            static_cast<double>(spec.v));
  // Declare the cap on the spec so sched::compile enforces it.
  spec.max_inflight_units = plan.max_inflight_units;
  plan.spec = std::move(spec);
  return plan;
}

}  // namespace slim::core
