// slimpipe_top — live terminal view of a running multi-process pipeline.
//
//   slimpipe_top SNAPSHOT.json              refresh until the run ends
//   slimpipe_top --once SNAPSHOT.json       render one frame and exit
//   slimpipe_top --interval-ms N SNAPSHOT.json
//
// The supervisor (ProcessOptions::telemetry_json_path) atomically rewrites
// the snapshot file on its telemetry cadence; this tool polls it, renders
// obs::render_top and exits when the snapshot's phase turns "done" or
// "failed" (exit code 0 / 1). A missing file is retried — start slimpipe_top
// before or after the run, in any order.

#include <cstdio>
#include <cstdlib>
#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "src/obs/json.hpp"
#include "src/obs/telemetry.hpp"

using namespace slim;

namespace {

void usage() {
  std::printf(R"(usage: slimpipe_top [--once] [--interval-ms N] SNAPSHOT.json

Tails the live-telemetry JSON snapshot written by the multi-process
supervisor and renders a per-stage terminal view. Exits 0 when the run
finishes ("done"), 1 when it fails ("failed").
)");
}

/// Reads the whole file; false when it does not exist (yet) or is unreadable.
bool slurp(const std::string& path, std::string* out) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return false;
  out->clear();
  char buf[4096];
  std::size_t n = 0;
  while ((n = std::fread(buf, 1, sizeof buf, f)) > 0) out->append(buf, n);
  const bool ok = std::ferror(f) == 0;
  std::fclose(f);
  return ok;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> args(argv + 1, argv + argc);
  bool once = false;
  int interval_ms = 250;
  std::string path;
  for (std::size_t i = 0; i < args.size(); ++i) {
    if (args[i] == "--help" || args[i] == "-h") {
      usage();
      return 0;
    } else if (args[i] == "--once") {
      once = true;
    } else if (args[i] == "--interval-ms" && i + 1 < args.size()) {
      interval_ms = std::atoi(args[++i].c_str());
      if (interval_ms < 1) interval_ms = 1;
    } else if (path.empty()) {
      path = args[i];
    } else {
      usage();
      return 2;
    }
  }
  if (path.empty()) {
    usage();
    return 2;
  }

  bool seen = false;
  for (;;) {
    std::string text;
    obs::LiveSnapshot snap;
    bool have = false;
    if (slurp(path, &text)) {
      obs::JsonValue value;
      std::string error;
      // The supervisor writes via rename, so a parse failure means a stale
      // or foreign file, not a torn write — report it once and keep polling.
      if (obs::JsonValue::parse(text, &value, &error) &&
          obs::snapshot_from_json(value, &snap)) {
        have = true;
      } else if (once) {
        std::fprintf(stderr, "%s: not a live-telemetry snapshot\n",
                     path.c_str());
        return 2;
      }
    } else if (once) {
      std::fprintf(stderr, "%s: cannot read\n", path.c_str());
      return 2;
    }

    if (have) {
      if (seen) {
        std::printf("\033[H\033[J");  // cursor home + clear: one live frame
      }
      std::fputs(obs::render_top(snap).c_str(), stdout);
      std::fflush(stdout);
      seen = true;
      if (snap.phase == "done") return 0;
      if (snap.phase == "failed") return 1;
    } else if (!seen) {
      std::fprintf(stderr, "waiting for %s ...\r", path.c_str());
      std::fflush(stderr);
    }
    if (once) return 0;
    std::this_thread::sleep_for(std::chrono::milliseconds(interval_ms));
  }
}
