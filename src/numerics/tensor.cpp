#include "src/numerics/tensor.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "src/numerics/arena.hpp"
#include "src/util/thread_pool.hpp"

namespace slim::num {

namespace {

// Chunk widths for the parallel kernels. Fixed constants: chunk boundaries
// are a pure function of the iteration range (never the thread count), the
// determinism rule of src/util/thread_pool.hpp.
constexpr std::int64_t kRowGrain = 16;       // output rows per chunk
constexpr std::int64_t kFlatGrain = 1 << 14; // elements per chunk
constexpr std::int64_t kKBlock = 128;        // k-panel kept hot in cache

util::ThreadPool& pool() { return util::ThreadPool::global(); }

}  // namespace

Tensor::Tensor(std::int64_t rows, std::int64_t cols, bool zero_fill)
    : rows_(rows), cols_(cols) {
  SLIM_CHECK(rows >= 0 && cols >= 0, "negative tensor shape");
  allocate(zero_fill);
}

void Tensor::allocate(bool zero_fill) {
  const std::int64_t n = rows_ * cols_;
  if (n == 0) {
    data_ = nullptr;
    owned_ = false;
    return;
  }
  Arena* arena = ArenaBinding::current_arena();
  if (arena != nullptr) {
    data_ = arena->allocate_floats(n, ArenaBinding::current_category());
    owned_ = false;
    detail::count_tensor_arena_alloc();
  } else {
    data_ = new float[static_cast<std::size_t>(n)];
    owned_ = true;
    detail::count_tensor_heap_alloc();
  }
  if (zero_fill) {
    std::memset(data_, 0, static_cast<std::size_t>(n) * sizeof(float));
  }
}

void Tensor::destroy() {
  if (owned_) delete[] data_;
  data_ = nullptr;
  owned_ = false;
}

Tensor::Tensor(const Tensor& other) : rows_(other.rows_), cols_(other.cols_) {
  allocate(/*zero_fill=*/false);
  if (size() > 0) {
    std::memcpy(data_, other.data_,
                static_cast<std::size_t>(size()) * sizeof(float));
  }
}

Tensor& Tensor::operator=(const Tensor& other) {
  if (this == &other) return *this;
  // Same-size assignment reuses the existing buffer (keeps repeated
  // gradient staging from re-allocating); otherwise allocate fresh via the
  // current thread's binding.
  if (size() != other.size()) {
    destroy();
    rows_ = other.rows_;
    cols_ = other.cols_;
    allocate(/*zero_fill=*/false);
  } else {
    rows_ = other.rows_;
    cols_ = other.cols_;
  }
  if (size() > 0) {
    std::memcpy(data_, other.data_,
                static_cast<std::size_t>(size()) * sizeof(float));
  }
  return *this;
}

Tensor Tensor::randn(std::int64_t rows, std::int64_t cols, Rng& rng,
                     float scale) {
  Tensor t = Tensor::uninit(rows, cols);
  for (std::int64_t i = 0; i < t.size(); ++i) {
    t.data_[i] = rng.next_float_symmetric(scale);
  }
  return t;
}

Tensor Tensor::slice_rows(std::int64_t begin, std::int64_t end) const {
  SLIM_CHECK(0 <= begin && begin <= end && end <= rows_, "bad row slice");
  Tensor out = Tensor::uninit(end - begin, cols_);
  if (out.size() > 0) {
    std::memcpy(out.data_, data_ + begin * cols_,
                static_cast<std::size_t>(out.size()) * sizeof(float));
  }
  return out;
}

Tensor Tensor::slice_cols(std::int64_t begin, std::int64_t end) const {
  SLIM_CHECK(0 <= begin && begin <= end && end <= cols_, "bad col slice");
  Tensor out = Tensor::uninit(rows_, end - begin);
  const std::int64_t width = end - begin;
  for (std::int64_t r = 0; r < rows_; ++r) {
    const float* src = data() + r * cols_ + begin;
    std::copy(src, src + width, out.data() + r * width);
  }
  return out;
}

void Tensor::assign_cols(std::int64_t col_begin, const Tensor& src) {
  SLIM_CHECK(src.rows_ == rows_ && col_begin >= 0 &&
                 col_begin + src.cols_ <= cols_,
             "assign_cols shape mismatch");
  for (std::int64_t r = 0; r < rows_; ++r) {
    const float* from = src.data() + r * src.cols_;
    std::copy(from, from + src.cols_, data() + r * cols_ + col_begin);
  }
}

Tensor Tensor::vcat(const std::vector<Tensor>& parts) {
  if (parts.empty()) return {};
  std::int64_t rows = 0;
  for (const Tensor& p : parts) {
    SLIM_CHECK(p.cols() == parts.front().cols(), "vcat column mismatch");
    rows += p.rows();
  }
  Tensor out = Tensor::uninit(rows, parts.front().cols());
  std::int64_t r = 0;
  for (const Tensor& p : parts) {
    out.assign_rows(r, p);
    r += p.rows();
  }
  return out;
}

void Tensor::fill(float value) {
  std::fill(data_, data_ + size(), value);
}

void Tensor::add_(const Tensor& other) { add_scaled_(other, 1.0f); }

void Tensor::add_scaled_(const Tensor& other, float scale) {
  SLIM_CHECK(rows_ == other.rows_ && cols_ == other.cols_,
             "add_ shape mismatch");
  float* dst = data_;
  const float* src = other.data_;
  pool().parallel_for(
      0, size(), kFlatGrain,
      [&](std::int64_t lo, std::int64_t hi) {
        for (std::int64_t i = lo; i < hi; ++i) dst[i] += scale * src[i];
      });
}

Tensor Tensor::transposed() const {
  Tensor out = Tensor::uninit(cols_, rows_);
  pool().parallel_for(0, rows_, kRowGrain,
                      [&](std::int64_t r0, std::int64_t r1) {
                        for (std::int64_t r = r0; r < r1; ++r) {
                          for (std::int64_t c = 0; c < cols_; ++c) {
                            out.at(c, r) = at(r, c);
                          }
                        }
                      });
  return out;
}

void Tensor::assign_rows(std::int64_t row_begin, const Tensor& src) {
  SLIM_CHECK(src.cols_ == cols_ && row_begin + src.rows_ <= rows_,
             "assign_rows shape mismatch");
  if (src.size() > 0) {
    std::memcpy(data_ + row_begin * cols_, src.data_,
                static_cast<std::size_t>(src.size()) * sizeof(float));
  }
}

float Tensor::max_abs_diff(const Tensor& other) const {
  SLIM_CHECK(rows_ == other.rows_ && cols_ == other.cols_,
             "max_abs_diff shape mismatch");
  float best = 0.0f;
  for (std::int64_t i = 0; i < size(); ++i) {
    best = std::max(best, std::fabs(data_[i] - other.data_[i]));
  }
  return best;
}

bool Tensor::allclose(const Tensor& other, float atol) const {
  return max_abs_diff(other) <= atol;
}

float Tensor::l2norm() const {
  double sum = 0.0;
  for (std::int64_t i = 0; i < size(); ++i) {
    sum += static_cast<double>(data_[i]) * data_[i];
  }
  return static_cast<float>(std::sqrt(sum));
}

// Accumulation policy (shared by all three matmul variants): fp32 partial
// sums in ascending-k order, the same convention as fp32 GEMM on the
// hardware the substrate stands in for. matmul_nt used to accumulate in
// double, which made forward and backward projections round differently;
// a single policy keeps the two paths' rounding symmetric. There is no
// zero-operand fast path: 0 * NaN must stay NaN (IEEE propagation) and
// kernel timing must not depend on the data.

Tensor matmul(const Tensor& a, const Tensor& b) {
  SLIM_CHECK(a.cols() == b.rows(), "matmul shape mismatch");
  Tensor c(a.rows(), b.cols());  // zero-init: the k-panels accumulate
  const std::int64_t m = a.rows(), k = a.cols(), n = b.cols();
  pool().parallel_for(0, m, kRowGrain, [&](std::int64_t i0, std::int64_t i1) {
    // Row-chunked saxpy form, k-panelled so the panel of B stays cached
    // across the chunk's rows. Per output element the adds still happen in
    // ascending-k order: identical bits to the unpanelled loop.
    for (std::int64_t k0 = 0; k0 < k; k0 += kKBlock) {
      const std::int64_t k1 = std::min(k, k0 + kKBlock);
      for (std::int64_t i = i0; i < i1; ++i) {
        float* crow = c.data() + i * n;
        for (std::int64_t kk = k0; kk < k1; ++kk) {
          const float av = a.at(i, kk);
          const float* brow = b.data() + kk * n;
          for (std::int64_t j = 0; j < n; ++j) crow[j] += av * brow[j];
        }
      }
    }
  });
  return c;
}

Tensor matmul_nt(const Tensor& a, const Tensor& b) {
  SLIM_CHECK(a.cols() == b.cols(), "matmul_nt shape mismatch");
  // Every output element is written exactly once — uninit is safe.
  Tensor c = Tensor::uninit(a.rows(), b.rows());
  const std::int64_t m = a.rows(), k = a.cols(), n = b.rows();
  pool().parallel_for(0, m, kRowGrain, [&](std::int64_t i0, std::int64_t i1) {
    for (std::int64_t i = i0; i < i1; ++i) {
      const float* arow = a.data() + i * k;
      float* crow = c.data() + i * n;
      for (std::int64_t j = 0; j < n; ++j) {
        const float* brow = b.data() + j * k;
        float sum = 0.0f;
        for (std::int64_t kk = 0; kk < k; ++kk) sum += arow[kk] * brow[kk];
        crow[j] = sum;
      }
    }
  });
  return c;
}

Tensor matmul_tn(const Tensor& a, const Tensor& b) {
  SLIM_CHECK(a.rows() == b.rows(), "matmul_tn shape mismatch");
  Tensor c(a.cols(), b.cols());  // zero-init: accumulates over k
  const std::int64_t m = a.cols(), k = a.rows(), n = b.cols();
  pool().parallel_for(0, m, kRowGrain, [&](std::int64_t i0, std::int64_t i1) {
    // Chunk over output rows (columns of A); within a chunk keep k outer so
    // each row of B streams once per chunk and is reused for every output
    // row in it.
    for (std::int64_t kk = 0; kk < k; ++kk) {
      const float* arow = a.data() + kk * m;
      const float* brow = b.data() + kk * n;
      for (std::int64_t i = i0; i < i1; ++i) {
        const float av = arow[i];
        float* crow = c.data() + i * n;
        for (std::int64_t j = 0; j < n; ++j) crow[j] += av * brow[j];
      }
    }
  });
  return c;
}

}  // namespace slim::num
