# Empty compiler generated dependencies file for test_numerics_model.
# This may be replaced when dependencies are built.
