file(REMOVE_RECURSE
  "CMakeFiles/slim_parallel.dir/config.cpp.o"
  "CMakeFiles/slim_parallel.dir/config.cpp.o.d"
  "CMakeFiles/slim_parallel.dir/pareto.cpp.o"
  "CMakeFiles/slim_parallel.dir/pareto.cpp.o.d"
  "CMakeFiles/slim_parallel.dir/search.cpp.o"
  "CMakeFiles/slim_parallel.dir/search.cpp.o.d"
  "libslim_parallel.a"
  "libslim_parallel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/slim_parallel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
