#include "src/obs/report.hpp"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>

namespace slim::obs {

void BenchReport::add_series(const std::string& title, const Table& table) {
  SeriesTable s;
  s.title = title;
  s.columns = table.header();
  s.rows = table.data_rows();
  series.push_back(std::move(s));
}

JsonValue report_to_json(const BenchReport& report) {
  JsonValue root = JsonValue::make_object();
  root.set("schema", JsonValue::make_string(kReportSchema));
  root.set("version", JsonValue::make_number(kReportVersion));
  root.set("name", JsonValue::make_string(report.name));
  root.set("artifact", JsonValue::make_string(report.artifact));
  root.set("setup", JsonValue::make_string(report.setup));
  root.set("expectation", JsonValue::make_string(report.expectation));

  JsonValue series = JsonValue::make_array();
  for (const SeriesTable& s : report.series) {
    JsonValue entry = JsonValue::make_object();
    entry.set("title", JsonValue::make_string(s.title));
    JsonValue columns = JsonValue::make_array();
    for (const std::string& c : s.columns) {
      columns.push_back(JsonValue::make_string(c));
    }
    entry.set("columns", std::move(columns));
    JsonValue rows = JsonValue::make_array();
    for (const std::vector<std::string>& row : s.rows) {
      JsonValue cells = JsonValue::make_array();
      for (const std::string& cell : row) {
        cells.push_back(JsonValue::make_string(cell));
      }
      rows.push_back(std::move(cells));
    }
    entry.set("rows", std::move(rows));
    series.push_back(std::move(entry));
  }
  root.set("series", std::move(series));

  JsonValue runs = JsonValue::make_array();
  for (const RunRecord& run : report.runs) {
    JsonValue entry = JsonValue::make_object();
    entry.set("label", JsonValue::make_string(run.label));
    entry.set("iteration_time", JsonValue::make_number(run.iteration_time));
    entry.set("bubble_fraction", JsonValue::make_number(run.bubble_fraction));
    entry.set("mfu", JsonValue::make_number(run.mfu));
    entry.set("peak_memory", JsonValue::make_number(run.peak_memory));
    entry.set("oom", JsonValue::make_bool(run.oom));
    entry.set("metrics", run_metrics_to_json(run.metrics));
    runs.push_back(std::move(entry));
  }
  root.set("runs", std::move(runs));
  return root;
}

bool report_from_json(const JsonValue& value, BenchReport* out) {
  if (!value.is_object() || out == nullptr) return false;
  BenchReport report;
  report.name = value.string_or("name", "");
  report.artifact = value.string_or("artifact", "");
  report.setup = value.string_or("setup", "");
  report.expectation = value.string_or("expectation", "");

  if (const JsonValue* series = value.find("series");
      series != nullptr && series->is_array()) {
    for (const JsonValue& entry : series->array()) {
      if (!entry.is_object()) return false;
      SeriesTable s;
      s.title = entry.string_or("title", "");
      if (const JsonValue* columns = entry.find("columns");
          columns != nullptr && columns->is_array()) {
        for (const JsonValue& c : columns->array()) {
          if (!c.is_string()) return false;
          s.columns.push_back(c.str());
        }
      }
      if (const JsonValue* rows = entry.find("rows");
          rows != nullptr && rows->is_array()) {
        for (const JsonValue& row : rows->array()) {
          if (!row.is_array()) return false;
          std::vector<std::string> cells;
          for (const JsonValue& cell : row.array()) {
            if (!cell.is_string()) return false;
            cells.push_back(cell.str());
          }
          s.rows.push_back(std::move(cells));
        }
      }
      report.series.push_back(std::move(s));
    }
  }

  if (const JsonValue* runs = value.find("runs");
      runs != nullptr && runs->is_array()) {
    for (const JsonValue& entry : runs->array()) {
      if (!entry.is_object()) return false;
      RunRecord run;
      run.label = entry.string_or("label", "");
      run.iteration_time = entry.number_or("iteration_time", 0.0);
      run.bubble_fraction = entry.number_or("bubble_fraction", 0.0);
      run.mfu = entry.number_or("mfu", 0.0);
      run.peak_memory = entry.number_or("peak_memory", 0.0);
      if (const JsonValue* oom = entry.find("oom");
          oom != nullptr && oom->is_bool()) {
        run.oom = oom->boolean();
      }
      if (const JsonValue* metrics = entry.find("metrics");
          metrics != nullptr && metrics->is_object()) {
        if (!run_metrics_from_json(*metrics, &run.metrics)) return false;
      }
      report.runs.push_back(std::move(run));
    }
  }
  *out = std::move(report);
  return true;
}

bool load_report(const std::string& path, BenchReport* out,
                 std::string* error) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    if (error != nullptr) *error = "cannot open " + path;
    return false;
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  JsonValue doc;
  std::string parse_error;
  if (!JsonValue::parse(buffer.str(), &doc, &parse_error)) {
    if (error != nullptr) *error = path + ": " + parse_error;
    return false;
  }
  if (!report_from_json(doc, out)) {
    if (error != nullptr) *error = path + ": not a bench report object";
    return false;
  }
  return true;
}

bool write_report(const BenchReport& report, const std::string& path) {
  std::error_code ec;
  const std::filesystem::path p(path);
  if (p.has_parent_path()) {
    std::filesystem::create_directories(p.parent_path(), ec);
    if (ec) return false;
  }
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return false;
  out << report_to_json(report).dump(2) << "\n";
  return static_cast<bool>(out);
}

std::vector<std::string> validate_report(const JsonValue& value) {
  std::vector<std::string> issues;
  auto require = [&](bool ok, const std::string& message) {
    if (!ok) issues.push_back(message);
    return ok;
  };
  if (!require(value.is_object(), "root is not an object")) return issues;

  const JsonValue* schema = value.find("schema");
  require(schema != nullptr && schema->is_string() &&
              schema->str() == kReportSchema,
          std::string("schema must be \"") + kReportSchema + "\"");
  const JsonValue* version = value.find("version");
  require(version != nullptr && version->is_number() &&
              version->number() == kReportVersion,
          "version must be " + std::to_string(kReportVersion));
  const JsonValue* name = value.find("name");
  require(name != nullptr && name->is_string() && !name->str().empty(),
          "name must be a non-empty string");

  const JsonValue* series = value.find("series");
  if (require(series != nullptr && series->is_array(),
              "series must be an array")) {
    int index = 0;
    for (const JsonValue& entry : series->array()) {
      const std::string where = "series[" + std::to_string(index++) + "]";
      if (!require(entry.is_object(), where + " is not an object")) continue;
      const JsonValue* title = entry.find("title");
      require(title != nullptr && title->is_string(),
              where + ".title must be a string");
      const JsonValue* columns = entry.find("columns");
      std::size_t width = 0;
      if (require(columns != nullptr && columns->is_array(),
                  where + ".columns must be an array")) {
        width = columns->array().size();
        for (const JsonValue& c : columns->array()) {
          require(c.is_string(), where + ".columns entries must be strings");
        }
      }
      const JsonValue* rows = entry.find("rows");
      if (require(rows != nullptr && rows->is_array(),
                  where + ".rows must be an array")) {
        int r = 0;
        for (const JsonValue& row : rows->array()) {
          const std::string rw = where + ".rows[" + std::to_string(r++) + "]";
          if (!require(row.is_array(), rw + " is not an array")) continue;
          require(row.array().size() == width,
                  rw + " width != columns width");
          for (const JsonValue& cell : row.array()) {
            require(cell.is_string(), rw + " cells must be strings");
          }
        }
      }
    }
  }

  const JsonValue* runs = value.find("runs");
  if (require(runs != nullptr && runs->is_array(), "runs must be an array")) {
    int index = 0;
    for (const JsonValue& entry : runs->array()) {
      const std::string where = "runs[" + std::to_string(index++) + "]";
      if (!require(entry.is_object(), where + " is not an object")) continue;
      const JsonValue* label = entry.find("label");
      require(label != nullptr && label->is_string(),
              where + ".label must be a string");
      for (const char* key :
           {"iteration_time", "bubble_fraction", "mfu", "peak_memory"}) {
        const JsonValue* v = entry.find(key);
        require(v != nullptr && v->is_number(),
                where + "." + key + " must be a number");
      }
      const JsonValue* metrics = entry.find("metrics");
      if (metrics != nullptr) {
        if (require(metrics->is_object(), where + ".metrics not an object")) {
          const JsonValue* stages = metrics->find("stages");
          require(stages != nullptr && stages->is_array(),
                  where + ".metrics.stages must be an array");
        }
      }
    }
  }
  return issues;
}

namespace {

/// Parses a pre-formatted cell such as "12.34", "87.5%", "1.23 GiB" as a
/// leading double; returns false for non-numeric cells ("ok", "--").
bool leading_number(const std::string& cell, double* out) {
  const char* begin = cell.c_str();
  char* end = nullptr;
  const double value = std::strtod(begin, &end);
  if (end == begin) return false;
  *out = value;
  return true;
}

std::string diff_cell(const std::string& a, const std::string& b) {
  if (a == b) return a;
  double va = 0.0;
  double vb = 0.0;
  if (leading_number(a, &va) && leading_number(b, &vb) && va != 0.0) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), " (%+.1f%%)", (vb - va) / va * 100.0);
    return a + " -> " + b + buf;
  }
  return a + " -> " + b;
}

Table run_summary_table(const BenchReport& report) {
  Table table({"label", "iter time", "bubble", "MFU", "peak mem", "status"});
  for (const RunRecord& run : report.runs) {
    table.add_row({run.label, fmt(run.iteration_time, 4),
                   fmt(run.bubble_fraction, 4), fmt(run.mfu, 4),
                   fmt(run.peak_memory / (1024.0 * 1024.0 * 1024.0), 2) +
                       " GiB",
                   run.oom ? "OOM" : "ok"});
  }
  return table;
}

}  // namespace

std::string render_report(const BenchReport& report) {
  std::ostringstream out;
  out << "report: " << report.name << "\n";
  if (!report.artifact.empty()) out << "artifact: " << report.artifact << "\n";
  if (!report.setup.empty()) out << "setup: " << report.setup << "\n";
  if (!report.expectation.empty()) {
    out << "expectation: " << report.expectation << "\n";
  }
  for (const SeriesTable& s : report.series) {
    out << "\n" << s.title << "\n";
    Table table(s.columns);
    for (const std::vector<std::string>& row : s.rows) {
      if (row.size() == s.columns.size()) table.add_row(row);
    }
    out << table.to_string();
  }
  if (!report.runs.empty()) {
    out << "\nruns\n" << run_summary_table(report).to_string();
  }
  return out.str();
}

std::string render_diff(const BenchReport& a, const BenchReport& b) {
  std::ostringstream out;
  out << "diff: " << a.name << " vs " << b.name << "\n";

  for (const SeriesTable& sa : a.series) {
    const SeriesTable* sb = nullptr;
    for (const SeriesTable& candidate : b.series) {
      if (candidate.title == sa.title) {
        sb = &candidate;
        break;
      }
    }
    if (sb == nullptr) {
      out << "\n" << sa.title << ": only in " << a.name << "\n";
      continue;
    }
    if (sb->columns != sa.columns) {
      out << "\n" << sa.title << ": column sets differ, not comparable\n";
      continue;
    }
    out << "\n" << sa.title << "\n";
    Table table(sa.columns);
    const std::size_t rows = std::max(sa.rows.size(), sb->rows.size());
    for (std::size_t r = 0; r < rows; ++r) {
      std::vector<std::string> cells;
      for (std::size_t c = 0; c < sa.columns.size(); ++c) {
        const std::string va =
            r < sa.rows.size() && c < sa.rows[r].size() ? sa.rows[r][c] : "--";
        const std::string vb = r < sb->rows.size() && c < sb->rows[r].size()
                                   ? sb->rows[r][c]
                                   : "--";
        cells.push_back(diff_cell(va, vb));
      }
      table.add_row(std::move(cells));
    }
    out << table.to_string();
  }
  for (const SeriesTable& sb : b.series) {
    bool found = false;
    for (const SeriesTable& sa : a.series) {
      if (sa.title == sb.title) {
        found = true;
        break;
      }
    }
    if (!found) out << "\n" << sb.title << ": only in " << b.name << "\n";
  }

  if (!a.runs.empty() || !b.runs.empty()) {
    out << "\nruns\n";
    Table table({"label", "metric", a.name, b.name, "delta"});
    for (const RunRecord& ra : a.runs) {
      const RunRecord* rb = nullptr;
      for (const RunRecord& candidate : b.runs) {
        if (candidate.label == ra.label) {
          rb = &candidate;
          break;
        }
      }
      if (rb == nullptr) {
        table.add_row({ra.label, "(run)", "present", "--", "--"});
        continue;
      }
      struct MetricRow {
        const char* name;
        double a;
        double b;
      };
      const MetricRow metrics[] = {
          {"iter time", ra.iteration_time, rb->iteration_time},
          {"bubble", ra.bubble_fraction, rb->bubble_fraction},
          {"mfu", ra.mfu, rb->mfu},
          {"peak mem", ra.peak_memory, rb->peak_memory},
      };
      for (const MetricRow& m : metrics) {
        std::string delta = "--";
        if (m.a != 0.0) {
          char buf[32];
          std::snprintf(buf, sizeof(buf), "%+.1f%%",
                        (m.b - m.a) / m.a * 100.0);
          delta = buf;
        }
        table.add_row({ra.label, m.name, fmt(m.a, 4), fmt(m.b, 4), delta});
      }
      table.add_separator();
    }
    for (const RunRecord& rb : b.runs) {
      bool found = false;
      for (const RunRecord& ra : a.runs) {
        if (ra.label == rb.label) {
          found = true;
          break;
        }
      }
      if (!found) table.add_row({rb.label, "(run)", "--", "present", "--"});
    }
    out << table.to_string();
  }
  return out.str();
}

}  // namespace slim::obs
