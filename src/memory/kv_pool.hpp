#pragma once

// Chunked KV cache pool (paper §5 "Chunked KV Cache").
//
// SlimPipe stores the KV cache as a list of slice-sized chunks instead of a
// single contiguous tensor. Because uniform slicing makes every chunk the
// same size, a freed chunk is always perfectly reusable by the next
// acquisition — between adjacent microbatches "the backward pass releases
// one and the forward pass acquires one". The contiguous alternative
// re-allocates a growing buffer and, in a non-coalescing caching allocator,
// strands freed blocks that are too small for the next (larger) request.
//
// Both policies are modelled here so the fragmentation claim can be measured
// (ablation in bench_fig6_slices_sweep / tests).

#include <cstdint>
#include <vector>

namespace slim::mem {

/// Slice-sized chunk pool. acquire() reuses a free chunk when available.
class ChunkedKvPool {
 public:
  explicit ChunkedKvPool(double chunk_bytes);

  /// Returns a chunk id. Reuses the most recently freed chunk if any.
  int acquire();

  /// Releases a previously acquired chunk back to the pool.
  void release(int chunk);

  double chunk_bytes() const { return chunk_bytes_; }
  int live_chunks() const { return live_; }
  int allocated_chunks() const { return static_cast<int>(owned_.size()); }

  /// Peak simultaneously-live chunks.
  int peak_live() const { return peak_live_; }

  /// Bytes the pool holds from the allocator (high-water mark).
  double reserved_bytes() const {
    return chunk_bytes_ * static_cast<double>(owned_.size());
  }

  /// Wasted bytes: reserved minus the peak that was actually needed (0 for
  /// a perfectly reusing pool — asserted by tests).
  double wasted_bytes() const {
    return reserved_bytes() - chunk_bytes_ * static_cast<double>(peak_live_);
  }

 private:
  double chunk_bytes_;
  std::vector<bool> owned_;  // chunk id -> exists (all owned chunks)
  std::vector<int> free_;    // LIFO free list
  int live_ = 0;
  int peak_live_ = 0;
};

/// Models a contiguous KV tensor managed by a caching allocator without
/// block coalescing (the failure mode the paper's chunked design avoids).
/// Each growth step allocates a new buffer of (k+1) slices while the old
/// k-slice buffer is still live (copy), then frees the old one into a free
/// list that only satisfies requests of exactly-matching-or-larger blocks.
class ContiguousKvModel {
 public:
  explicit ContiguousKvModel(double slice_bytes);

  /// Grows the cache by one slice (a forward pass appending K/V).
  void grow();

  /// Shrinks by one slice (a backward pass releasing it). Shrinking in a
  /// contiguous layout frees nothing until the whole tensor dies.
  void shrink();

  /// Frees the whole cache (end of microbatch).
  void reset();

  double current_bytes() const;
  double peak_reserved_bytes() const { return peak_reserved_; }
  /// Fragmentation: peak reserved minus peak live payload.
  double fragmentation_bytes() const;

 private:
  double alloc_block(double bytes);  // returns bytes actually reserved

  double slice_bytes_;
  std::int64_t live_slices_ = 0;
  std::int64_t buffer_slices_ = 0;  // capacity of the current buffer
  double reserved_ = 0.0;           // allocator bytes currently held
  double peak_reserved_ = 0.0;
  double peak_live_payload_ = 0.0;
  std::vector<double> free_blocks_;  // non-coalescing free list
};

}  // namespace slim::mem
