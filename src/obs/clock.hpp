#pragma once

// Monotonic run clock + cross-process clock alignment.
//
// Every event timestamp in the observability layer — recorder spans, flight
// recorder events, wire telemetry, live snapshots — is seconds on the
// MONOTONIC clock (std::chrono::steady_clock, aliased MonoClock below) with
// ONE epoch per run: the supervisor/parent Recorder's construction time.
// system_clock never appears in event timestamps; it is neither monotonic
// (NTP steps it) nor comparable across processes with sub-millisecond
// confidence.
//
// A forked stage worker cannot share the parent's epoch object, so it runs
// its own MonoClock epoch (its start time) and every timestamp it emits is
// worker-relative. The supervisor maps worker time onto the run epoch with a
// per-worker ClockAligner fed by heartbeat-channel ping/pong round-trips —
// the classic NTP 4-timestamp exchange:
//
//   t1  supervisor sends Ping            (run clock)
//   t2  worker receives it               (worker clock)
//   t3  worker sends Pong                (worker clock)
//   t4  supervisor receives the Pong     (run clock)
//
//   theta = ((t2 - t1) + (t3 - t4)) / 2      worker_clock - run_clock
//   rtt   = (t4 - t1) - (t3 - t2)            round-trip minus remote hold
//
// theta's error is bounded by rtt/2 (exact under symmetric one-way delays),
// so the aligner keeps the minimum-rtt sample of a sliding window: tighter
// round-trips give tighter offsets, and the window lets the estimate track
// slow drift. run_time = worker_time - theta.

#include <chrono>
#include <cstddef>
#include <deque>

namespace slim::obs {

/// The one event-timestamp clock. Do not time events with system_clock.
using MonoClock = std::chrono::steady_clock;

/// One ping/pong round trip. t1/t4 are on the local (run) clock, t2/t3 on
/// the remote (worker) clock; all in seconds.
struct ClockSample {
  double t1 = 0.0;
  double t2 = 0.0;
  double t3 = 0.0;
  double t4 = 0.0;

  double theta() const { return ((t2 - t1) + (t3 - t4)) / 2.0; }
  double rtt() const { return (t4 - t1) - (t3 - t2); }
};

/// Minimum-rtt offset estimator over a sliding sample window.
class ClockAligner {
 public:
  explicit ClockAligner(std::size_t window = 16);

  /// Folds in one round trip. Samples with a negative round trip (clock
  /// misuse, not physics) are rejected.
  void add(const ClockSample& sample);

  /// True once at least one sample was accepted.
  bool aligned() const { return !window_.empty(); }

  /// Current estimate of remote_clock - local_clock (0 until aligned).
  double offset() const;

  /// Error bound of offset(): rtt/2 of the winning sample (0 until aligned).
  double uncertainty() const;

  /// Round-trip time of the winning sample (0 until aligned).
  double best_rtt() const;

  /// Total samples accepted (not capped by the window).
  std::size_t samples() const { return accepted_; }

  /// Maps a remote timestamp onto the local clock.
  double to_local(double remote_ts) const { return remote_ts - offset(); }

 private:
  struct Entry {
    double theta = 0.0;
    double rtt = 0.0;
  };
  std::size_t capacity_;
  std::deque<Entry> window_;
  std::size_t accepted_ = 0;
};

}  // namespace slim::obs
