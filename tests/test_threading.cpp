// The parallel engine's determinism contract: chunk boundaries derive only
// from the iteration range, reductions fold per-chunk partials in index
// order, so every kernel returns bit-identical results at every pool width.
// The suite sweeps SLIMPIPE_THREADS-style widths in-process via
// ThreadPool::set_threads and compares against the 1-thread run with zero
// tolerance; it also re-checks the threaded pipeline runtime against
// monolithic reference execution with kernel threading enabled.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <stdexcept>
#include <thread>
#include <vector>

#include "src/numerics/cross_entropy.hpp"
#include "src/numerics/norm_act.hpp"
#include "src/numerics/tensor.hpp"
#include "src/numerics/transformer_block.hpp"
#include "src/runtime/pipeline_runtime.hpp"
#include "src/util/rng.hpp"
#include "src/util/thread_pool.hpp"

namespace slim {
namespace {

using num::Tensor;

/// Pool widths the determinism sweep exercises: forced serial, a couple of
/// helpers, a width that does not divide typical shapes, and the machine's
/// own concurrency.
std::vector<int> sweep_widths() {
  std::vector<int> widths = {1, 2, 7};
  const int hw = static_cast<int>(std::thread::hardware_concurrency());
  if (hw > 1 && hw != 2 && hw != 7) widths.push_back(hw);
  return widths;
}

/// Restores the global pool width on scope exit so tests stay independent.
class PoolWidthGuard {
 public:
  PoolWidthGuard() : previous_(util::ThreadPool::global().max_threads()) {}
  ~PoolWidthGuard() { util::ThreadPool::global().set_threads(previous_); }

 private:
  int previous_;
};

TEST(ChunkCount, MatchesCeilDiv) {
  EXPECT_EQ(util::chunk_count(0, 10, 4), 3);
  EXPECT_EQ(util::chunk_count(0, 8, 4), 2);
  EXPECT_EQ(util::chunk_count(0, 1, 4), 1);
  EXPECT_EQ(util::chunk_count(5, 5, 4), 0);
}

TEST(ThreadPool, CoversRangeExactlyOnce) {
  PoolWidthGuard guard;
  util::ThreadPool& pool = util::ThreadPool::global();
  for (int width : sweep_widths()) {
    pool.set_threads(width);
    std::vector<std::atomic<int>> hits(101);
    for (auto& h : hits) h.store(0);
    pool.parallel_for(3, 101, 7, [&](std::int64_t lo, std::int64_t hi) {
      EXPECT_EQ((lo - 3) % 7, 0);  // boundaries derive from range + grain
      EXPECT_LE(hi - lo, 7);
      for (std::int64_t i = lo; i < hi; ++i) {
        hits[static_cast<std::size_t>(i)].fetch_add(1);
      }
    });
    for (std::int64_t i = 0; i < 101; ++i) {
      EXPECT_EQ(hits[static_cast<std::size_t>(i)].load(), i >= 3 ? 1 : 0)
          << "index " << i << " at width " << width;
    }
  }
}

TEST(ThreadPool, EmptyRangeIsANoop) {
  int calls = 0;
  util::ThreadPool::global().parallel_for(
      4, 4, 1, [&](std::int64_t, std::int64_t) { ++calls; });
  EXPECT_EQ(calls, 0);
}

TEST(ThreadPool, ExceptionPropagatesToCaller) {
  PoolWidthGuard guard;
  util::ThreadPool& pool = util::ThreadPool::global();
  for (int width : {1, 4}) {
    pool.set_threads(width);
    EXPECT_THROW(
        pool.parallel_for(0, 64, 1,
                          [](std::int64_t lo, std::int64_t) {
                            if (lo == 13) throw std::runtime_error("chunk 13");
                          }),
        std::runtime_error);
    // The pool must remain usable after a failed job.
    std::atomic<int> sum{0};
    pool.parallel_for(0, 8, 1, [&](std::int64_t lo, std::int64_t) {
      sum.fetch_add(static_cast<int>(lo));
    });
    EXPECT_EQ(sum.load(), 28);
  }
}

TEST(ThreadPool, NestedParallelForRunsInline) {
  PoolWidthGuard guard;
  util::ThreadPool& pool = util::ThreadPool::global();
  pool.set_threads(4);
  std::vector<std::atomic<int>> hits(64);
  for (auto& h : hits) h.store(0);
  pool.parallel_for(0, 8, 1, [&](std::int64_t lo, std::int64_t hi) {
    for (std::int64_t outer = lo; outer < hi; ++outer) {
      pool.parallel_for(0, 8, 1, [&](std::int64_t ilo, std::int64_t ihi) {
        for (std::int64_t inner = ilo; inner < ihi; ++inner) {
          hits[static_cast<std::size_t>(outer * 8 + inner)].fetch_add(1);
        }
      });
    }
  });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, ScopedKernelThreadsCapsAndRestores) {
  EXPECT_EQ(util::kernel_thread_cap(), 0);
  {
    util::ScopedKernelThreads outer(4);
    EXPECT_EQ(util::kernel_thread_cap(), 4);
    {
      util::ScopedKernelThreads inner(1);
      EXPECT_EQ(util::kernel_thread_cap(), 1);
    }
    EXPECT_EQ(util::kernel_thread_cap(), 4);
  }
  EXPECT_EQ(util::kernel_thread_cap(), 0);
}

TEST(ThreadPool, CappedCallerStillCoversRange) {
  PoolWidthGuard guard;
  util::ThreadPool& pool = util::ThreadPool::global();
  pool.set_threads(4);
  util::ScopedKernelThreads cap(1);  // serial inline, same chunking
  std::vector<int> hits(32, 0);
  pool.parallel_for(0, 32, 5, [&](std::int64_t lo, std::int64_t hi) {
    for (std::int64_t i = lo; i < hi; ++i) ++hits[static_cast<std::size_t>(i)];
  });
  for (int h : hits) EXPECT_EQ(h, 1);
}

/// Runs `fn` at width 1, then asserts every other width reproduces the
/// result bit-for-bit.
void expect_bit_identical(const std::function<Tensor()>& fn) {
  PoolWidthGuard guard;
  util::ThreadPool& pool = util::ThreadPool::global();
  pool.set_threads(1);
  const Tensor serial = fn();
  for (int width : sweep_widths()) {
    pool.set_threads(width);
    const Tensor out = fn();
    EXPECT_EQ(out.max_abs_diff(serial), 0.0f) << "width " << width;
  }
}

TEST(KernelDeterminism, Matmul) {
  Rng rng(21);
  const Tensor a = Tensor::randn(37, 53, rng, 1.0f);
  const Tensor b = Tensor::randn(53, 41, rng, 1.0f);
  expect_bit_identical([&] { return num::matmul(a, b); });
}

TEST(KernelDeterminism, MatmulNt) {
  Rng rng(22);
  const Tensor a = Tensor::randn(37, 53, rng, 1.0f);
  const Tensor b = Tensor::randn(41, 53, rng, 1.0f);
  expect_bit_identical([&] { return num::matmul_nt(a, b); });
}

TEST(KernelDeterminism, MatmulTn) {
  Rng rng(23);
  const Tensor a = Tensor::randn(53, 37, rng, 1.0f);
  const Tensor b = Tensor::randn(53, 41, rng, 1.0f);
  expect_bit_identical([&] { return num::matmul_tn(a, b); });
}

TEST(KernelDeterminism, RmsnormForwardBackward) {
  Rng rng(24);
  const Tensor x = Tensor::randn(70, 48, rng);
  const Tensor dy = Tensor::randn(70, 48, rng);
  Tensor w(1, 48);
  w.fill(1.0f);
  expect_bit_identical([&] { return num::rmsnorm(x, w); });
  // The dweight reduction is the interesting part: per-chunk partials
  // folded in index order. Pack dx and dweight into one tensor to compare.
  expect_bit_identical([&] {
    Tensor dweight(1, 48);
    const Tensor dx = num::rmsnorm_bwd(x, w, dy, dweight);
    Tensor both(71, 48);
    both.assign_rows(0, dx);
    both.assign_rows(70, dweight);
    return both;
  });
}

TEST(KernelDeterminism, CrossEntropy) {
  Rng rng(25);
  const Tensor logits = Tensor::randn(60, 97, rng, 2.0f);
  std::vector<std::int64_t> targets;
  for (std::int64_t t = 0; t < 60; ++t) targets.push_back((t * 13) % 97);
  PoolWidthGuard guard;
  util::ThreadPool& pool = util::ThreadPool::global();
  pool.set_threads(1);
  const num::CeResult serial = num::cross_entropy(logits, targets);
  for (int width : sweep_widths()) {
    pool.set_threads(width);
    const num::CeResult out = num::cross_entropy(logits, targets);
    EXPECT_EQ(out.loss, serial.loss) << "width " << width;
    EXPECT_EQ(out.dlogits.max_abs_diff(serial.dlogits), 0.0f)
        << "width " << width;
  }
}

/// Transformer block, two slices forward then LIFO backward — the
/// runtime's per-stage unit of work, covering the parallel head loops, the
/// GQA dk/dv merge and every matmul variant.
struct BlockRun {
  Tensor out0, out1, dx0, dx1;
  num::LayerGrads grads;
};

BlockRun run_block(int) {
  Rng rng(26);
  num::BlockDims dims;
  dims.hidden = 64;
  dims.heads = 4;
  dims.kv_heads = 2;  // GQA: two heads share each kv head
  dims.ffn = 96;
  num::Layer layer(dims, num::LayerWeights::random(dims, rng));
  const Tensor x0 = Tensor::randn(24, dims.hidden, rng);
  const Tensor x1 = Tensor::randn(24, dims.hidden, rng);
  const Tensor d1 = Tensor::randn(24, dims.hidden, rng);
  const Tensor d0 = Tensor::randn(24, dims.hidden, rng);
  BlockRun run;
  run.grads = num::LayerGrads::zeros(dims);
  run.out0 = layer.forward_slice(x0, 0);
  run.out1 = layer.forward_slice(x1, 24);
  run.dx1 = layer.backward_slice(d1, run.grads);
  run.dx0 = layer.backward_slice(d0, run.grads);
  return run;
}

TEST(BlockDeterminism, ForwardBackwardBitIdenticalAcrossWidths) {
  PoolWidthGuard guard;
  util::ThreadPool& pool = util::ThreadPool::global();
  pool.set_threads(1);
  const BlockRun serial = run_block(1);
  for (int width : sweep_widths()) {
    pool.set_threads(width);
    const BlockRun run = run_block(width);
    EXPECT_EQ(run.out0.max_abs_diff(serial.out0), 0.0f) << "width " << width;
    EXPECT_EQ(run.out1.max_abs_diff(serial.out1), 0.0f) << "width " << width;
    EXPECT_EQ(run.dx0.max_abs_diff(serial.dx0), 0.0f) << "width " << width;
    EXPECT_EQ(run.dx1.max_abs_diff(serial.dx1), 0.0f) << "width " << width;
    EXPECT_EQ(run.grads.max_abs_diff(serial.grads), 0.0f)
        << "width " << width;
  }
}

/// The threaded pipeline with kernel threading enabled must still match
/// monolithic reference execution (the functional proof of the runtime),
/// and repeated runs must agree bit-for-bit: stage workers commit per-
/// microbatch gradients in a fixed stage-major order, and the kernel-level
/// chunking is width-independent.
TEST(RuntimeDeterminism, ThreadedMatchesReferenceWithKernelThreads) {
  Rng rng(27);
  num::BlockDims dims;
  dims.hidden = 32;
  dims.heads = 4;
  dims.kv_heads = 2;
  dims.ffn = 64;
  rt::ThreadedPipeline pipe(dims, /*vocab=*/64, /*layers_total=*/4,
                            /*stages=*/2, rng);
  std::vector<std::vector<std::int64_t>> tokens, targets;
  Rng data_rng(28);
  for (int mb = 0; mb < 2; ++mb) {
    std::vector<std::int64_t> seq, tgt;
    for (int t = 0; t < 16; ++t) {
      seq.push_back(static_cast<std::int64_t>(data_rng.next_below(64)));
      tgt.push_back(static_cast<std::int64_t>(data_rng.next_below(64)));
    }
    tokens.push_back(seq);
    targets.push_back(tgt);
  }

  const rt::ThreadedPipeline::Result ref = pipe.run_reference(tokens, targets);

  PoolWidthGuard guard;
  util::ThreadPool::global().set_threads(4);
  rt::RunOptions options;
  options.n_slices = 2;
  options.kernel_threads = 2;
  const rt::ThreadedPipeline::Result a =
      pipe.run_iteration(tokens, targets, options);
  const rt::ThreadedPipeline::Result b =
      pipe.run_iteration(tokens, targets, options);

  EXPECT_NEAR(a.loss, ref.loss, 1e-5);
  EXPECT_LT(a.grads.max_abs_diff(ref.grads), 5e-5f);
  // Same schedule, same kernels: repeat runs are bit-identical.
  EXPECT_EQ(a.loss, b.loss);
  EXPECT_EQ(a.grads.max_abs_diff(b.grads), 0.0f);
}

}  // namespace
}  // namespace slim
