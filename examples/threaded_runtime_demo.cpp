// Threaded mini-SlimPipe demo: the same model trained on 1..4 pipeline
// stage threads communicating through message channels. Gradients are
// identical in every configuration, and the per-stage peak-live-slice
// counters land exactly on the warm-up law of Eq. 1: stage r holds at most
// n + 2(p-1-r) slices. (Wall-clock speedup needs as many cores as stages;
// on a single-core host the times merely stay flat.)

#include <chrono>
#include <cstdio>

#include "src/runtime/pipeline_runtime.hpp"
#include "src/util/table.hpp"

using namespace slim;

int main() {
  Rng rng(2025);
  const num::BlockDims dims{96, 8, 4, 192};
  const std::int64_t vocab = 96;
  const int layers = 8, seq = 192, n_slices = 8, microbatches = 2;

  Rng data_rng(7);
  std::vector<std::vector<std::int64_t>> tokens(microbatches), targets(microbatches);
  for (int mb = 0; mb < microbatches; ++mb) {
    for (int i = 0; i < seq; ++i) {
      tokens[mb].push_back(static_cast<std::int64_t>(data_rng.next_below(96)));
      targets[mb].push_back(static_cast<std::int64_t>(data_rng.next_below(96)));
    }
  }

  std::printf("mini-SlimPipe runtime: %d layers, %d-token sequences, "
              "%d slices, %d microbatches, vocabulary sharded across stages\n\n",
              layers, seq, n_slices, microbatches);

  // Build once per stage count with the same seed so parameters coincide.
  rt::ThreadedPipeline::Result reference;
  Table table({"stages", "wall time", "loss",
               "max |grad diff| vs 1 stage",
               "peak live slices (Eq.1: n+2(p-1-r))"});
  double base_ms = 0.0;
  for (int stages : {1, 2, 4}) {
    Rng model_rng(2025);
    rt::ThreadedPipeline pipe(dims, vocab, layers, stages, model_rng);
    const auto t0 = std::chrono::steady_clock::now();
    const auto r = pipe.run_iteration(tokens, targets, n_slices,
                                      /*vocab_parallel=*/true);
    const double ms = std::chrono::duration<double, std::milli>(
                          std::chrono::steady_clock::now() - t0)
                          .count();
    if (stages == 1) {
      reference = r;
      base_ms = ms;
    }
    std::string peaks;
    for (int s = 0; s < stages; ++s) {
      if (s != 0) peaks += " ";
      peaks += std::to_string(r.stats.peak_live_slices[static_cast<std::size_t>(s)]);
    }
    char diff[32];
    std::snprintf(diff, sizeof(diff), "%.2e",
                  static_cast<double>(r.grads.max_abs_diff(reference.grads)));
    (void)base_ms;
    table.add_row({fmt(static_cast<std::int64_t>(stages)),
                   fmt(ms, 1) + " ms", fmt(r.loss, 6), diff, peaks});
  }
  std::printf("%s\n", table.to_string().c_str());
  std::printf(
      "Identical gradients from every stage count — the pipeline threads\n"
      "exchange activation slices, LIFO gradient slices and the sharded\n"
      "vocabulary's scalar statistics through message channels, exactly the\n"
      "communication pattern of the paper's distributed implementation.\n");
  return 0;
}
