# Empty compiler generated dependencies file for bench_table4_ultra_context.
# This may be replaced when dependencies are built.
