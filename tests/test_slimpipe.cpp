// Tests for the SlimPipe schedule: program structure (slice streams, LIFO
// backward), Eq. 1's accumulated-activation law, warm-up bubble bounds and
// the interleaved form — all measured on the simulator.

#include <gtest/gtest.h>

#include <map>

#include "src/core/slice.hpp"
#include "src/core/slimpipe.hpp"
#include "src/model/transformer.hpp"
#include "src/sched/builder.hpp"
#include "src/sched/schemes.hpp"

namespace slim::core {
namespace {

using sched::DeviceProgram;
using sched::Pass;
using sched::PassType;
using sched::PipelineSpec;

PipelineSpec slim_spec(int p, int m, int n, int v = 1,
                       std::int64_t seq = 0) {
  if (seq == 0) seq = static_cast<std::int64_t>(n) * 8192;  // uniform slices
  PipelineSpec spec;
  spec.cfg = model::llama13b();  // 40 layers
  spec.gpu = model::hopper80();
  spec.shard = {8, 1, 1, 8};
  spec.policy = model::CheckpointPolicy::None;
  spec.p = p;
  spec.v = v;
  spec.m = m;
  spec.n = n;
  spec.seq = seq;
  spec.retain_kv = true;
  spec.layout = v == 1 ? sched::StageLayoutKind::Sequential
                       : sched::StageLayoutKind::Interleaved;
  return spec;
}

TEST(SliceFormulaTest, WarmupUnits) {
  // Figure 4: n = 8, p = 4 -> device 0 warms up with n + 2(p-1) = 14 units.
  EXPECT_EQ(slimpipe_warmup_units(4, 0, 8, 1), 14);
  EXPECT_EQ(slimpipe_warmup_units(4, 3, 8, 1), 8);
  EXPECT_EQ(slimpipe_warmup_units(4, 0, 8, 2), 22);
}

TEST(SliceFormulaTest, Eq1Delta) {
  EXPECT_DOUBLE_EQ(slimpipe_delta(4, 8), 0.75);
  // (1 + delta) / p of M_a.
  EXPECT_DOUBLE_EQ(slimpipe_activation_fraction(4, 8, 1), 1.75 / 4.0);
  // Approaches M_a / p as n grows.
  EXPECT_NEAR(slimpipe_activation_fraction(4, 1024, 1), 0.25, 0.002);
  // Interleaving divides the overshoot by v (Table 2).
  EXPECT_DOUBLE_EQ(slimpipe_activation_fraction(4, 8, 2),
                   0.25 + 6.0 / (8.0 * 2.0 * 4.0));
}

TEST(SliceFormulaTest, BubbleBounds) {
  EXPECT_DOUBLE_EQ(slimpipe_bubble_bound(4, 8, 1, 4), 3.0 / 32.0);
  EXPECT_LT(slimpipe_bubble_asymptotic(4, 8, 4),
            slimpipe_bubble_bound(4, 8, 1, 4));
  EXPECT_DOUBLE_EQ(onef1b_bubble_fraction(4, 4), 0.75);
  EXPECT_DOUBLE_EQ(interleaved_bubble_fraction(4, 5, 4), 0.15);
}

TEST(SlimPipeProgramTest, SliceStreamOrderAndLifo) {
  const PipelineSpec spec = slim_spec(4, 2, 8);
  const auto programs = slimpipe_programs(spec);
  ASSERT_EQ(programs.size(), 4u);
  for (const DeviceProgram& program : programs) {
    // Forwards in ascending slice-stream order; backwards per microbatch in
    // strictly descending slice order (LIFO).
    std::int64_t last_f = -1;
    std::map<int, int> last_b_slice;
    for (const Pass& pass : program) {
      if (pass.type == PassType::Forward) {
        const std::int64_t stream = pass.microbatch * 8 + pass.slice;
        EXPECT_GT(stream, last_f);
        last_f = stream;
      } else {
        auto it = last_b_slice.find(pass.microbatch);
        if (it != last_b_slice.end()) {
          EXPECT_LT(pass.slice, it->second) << "backward must be LIFO";
        }
        last_b_slice[pass.microbatch] = pass.slice;
      }
    }
    EXPECT_EQ(static_cast<int>(program.size()), 2 * 2 * 8);
  }
}

TEST(SlimPipeProgramTest, WarmupCountsPerDevice) {
  const PipelineSpec spec = slim_spec(4, 3, 8);
  const auto programs = slimpipe_programs(spec);
  for (int dev = 0; dev < 4; ++dev) {
    int lead = 0;
    for (const Pass& pass : programs[static_cast<std::size_t>(dev)]) {
      if (pass.type != PassType::Forward) break;
      ++lead;
    }
    EXPECT_EQ(lead, slimpipe_warmup_units(4, dev, 8, 1));
  }
}

TEST(SlimPipeProgramTest, RejectsBadSliceCount) {
  PipelineSpec spec = slim_spec(4, 2, 6);  // 6 not a multiple of 4
  EXPECT_THROW(slimpipe_programs(spec), std::logic_error);
}

struct SlimCase {
  int p;
  int m;
  int n;
  int v;
};

class SlimPipeSimTest : public ::testing::TestWithParam<SlimCase> {};

TEST_P(SlimPipeSimTest, ExecutesWithoutDeadlock) {
  const SlimCase c = GetParam();
  PipelineSpec spec = slim_spec(c.p, c.m, c.n, c.v);
  spec.context_exchange = true;
  spec.vocab_parallel = true;
  EXPECT_NO_THROW(run_slimpipe(spec));
}

// Eq. 1: accumulated activation (+KV) on the first device matches
// (1/p + 2(p-1)/(n v p)) * M_a within one slice unit.
TEST_P(SlimPipeSimTest, Eq1AccumulationLaw) {
  const SlimCase c = GetParam();
  if (c.m < 2) GTEST_SKIP() << "steady state needs m >= 2";
  PipelineSpec spec = slim_spec(c.p, c.m, c.n, c.v);
  spec.vocab_parallel = false;  // keep logits off the measured device
  spec.context_exchange = false;
  const auto programs = slimpipe_programs(spec);
  const auto built = sched::compile(spec, programs, nullptr);
  const auto exec = sim::execute(*built.graph);
  // Replay with no baseline: activation categories only.
  const auto report = mem::replay_memory(*built.graph, exec, spec.p);
  const double measured = report.devices[0].category_peak[mem::kActivation] +
                          report.devices[0].category_peak[mem::kKvCache];

  const double act_per_token = model::act_bytes_per_token_layer(
      spec.cfg, spec.shard, spec.policy, true);
  const double ma = act_per_token * static_cast<double>(spec.seq) *
                    static_cast<double>(spec.cfg.layers);
  const double expected =
      slimpipe_activation_fraction(c.p, c.n, c.v) * ma;
  const double slice_unit = ma / (static_cast<double>(c.n) * c.v * c.p);
  EXPECT_NEAR(measured, expected, slice_unit + 1e-6)
      << "p=" << c.p << " n=" << c.n << " v=" << c.v;
}

// Bubble shrinks as n grows (Figure 6b).
TEST_P(SlimPipeSimTest, MoreSlicesFewerBubbles) {
  const SlimCase c = GetParam();
  if (c.n < 2 * c.p) GTEST_SKIP();
  const std::int64_t seq = static_cast<std::int64_t>(c.n) * 8192;
  PipelineSpec coarse = slim_spec(c.p, c.m, c.p, c.v, seq);
  PipelineSpec fine = slim_spec(c.p, c.m, c.n, c.v, seq);
  coarse.context_exchange = fine.context_exchange = true;
  const auto rc = run_slimpipe(coarse);
  const auto rf = run_slimpipe(fine);
  EXPECT_LT(rf.bubble_fraction, rc.bubble_fraction + 0.02);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, SlimPipeSimTest,
    ::testing::Values(SlimCase{2, 2, 4, 1}, SlimCase{2, 4, 8, 1},
                      SlimCase{4, 2, 8, 1}, SlimCase{4, 3, 16, 1},
                      SlimCase{4, 2, 8, 2}, SlimCase{4, 2, 4, 5},
                      SlimCase{8, 2, 16, 1}, SlimCase{8, 3, 8, 1},
                      SlimCase{5, 2, 10, 1}, SlimCase{8, 2, 8, 5}));

TEST(SlimPipeMemoryTest, BeatsOneF1BAndScalesWithP) {
  // Figure 1 / Figure 10: SlimPipe's activation memory falls with p while
  // classic 1F1B's stays flat.
  double prev_slim = 1e30;
  for (int p : {2, 4, 8}) {
    PipelineSpec spec = slim_spec(p, 4, 4 * p, 1, 128 * 1024);
    spec.vocab_parallel = true;
    spec.context_exchange = true;
    const auto slim = run_slimpipe(spec);
    PipelineSpec flat;
    flat = spec;
    flat.v = 1;
    flat.n = 1;
    const auto f1b = sched::run_onef1b(flat);
    EXPECT_LT(slim.first_device_memory, f1b.first_device_memory);
    EXPECT_LT(slim.first_device_memory, prev_slim);
    prev_slim = slim.first_device_memory;
  }
}

TEST(SlimPipeMemoryTest, FirstDeviceHoldsSlightlyMoreThanLast) {
  // §6.2: the first/last device gap is 2(p-1) M_a / (n v p).
  PipelineSpec spec = slim_spec(4, 4, 16, 1, 128 * 1024);
  spec.vocab_parallel = true;
  const auto r = run_slimpipe(spec);
  EXPECT_GE(r.first_device_memory, r.last_device_memory);
}

TEST(SlimPipeBubbleTest, TwoMicrobatchesStillEfficient) {
  // §6.4 scalability: SlimPipe keeps high efficiency with as few as 2
  // microbatches, where interleaved 1F1B cannot even run (m < p).
  PipelineSpec spec = slim_spec(8, 2, 32, 1, 128 * 1024);
  spec.context_exchange = true;
  spec.vocab_parallel = true;
  const auto slim = run_slimpipe(spec);
  PipelineSpec flat = spec;
  flat.n = 1;
  const auto f1b = sched::run_onef1b(flat);
  EXPECT_LT(slim.bubble_fraction, 0.5 * f1b.bubble_fraction);
  // Interleaved 1F1B would need m % p == 0 with m >= p: 2 < 8 fails.
  PipelineSpec inter = flat;
  inter.v = 2;
  inter.layout = sched::StageLayoutKind::Interleaved;
  EXPECT_THROW(sched::interleaved_programs(inter), std::logic_error);
}

TEST(SlimPipeCommTest, TotalCommunicationUnchanged) {
  // §4.1.3: slicing does not change the total P2P activation volume — it
  // sends n smaller boundaries instead of one big one.
  PipelineSpec spec = slim_spec(4, 2, 8);
  spec.context_exchange = false;
  spec.vocab_parallel = false;
  const auto built = sched::compile(spec, slimpipe_programs(spec), nullptr);
  double sliced_bytes = 0.0;
  for (const auto& op : built.graph->ops()) {
    if (op.cls == sim::OpClass::Send) {
      sliced_bytes += op.duration;  // duration ∝ bytes on identical links
    }
  }
  PipelineSpec flat = spec;
  flat.n = 1;
  const auto built_flat =
      sched::compile(flat, sched::onef1b_programs(flat), nullptr);
  double flat_bytes = 0.0;
  for (const auto& op : built_flat.graph->ops()) {
    if (op.cls == sim::OpClass::Send) flat_bytes += op.duration;
  }
  // Slicing adds per-message latency only.
  EXPECT_NEAR(sliced_bytes, flat_bytes, 0.05 * flat_bytes + 1e-3);
}

}  // namespace
}  // namespace slim::core
