#pragma once

// SlimPipe (paper §4): fine-grained pipeline parallelism with uniform
// sequence slicing, slice-level 1F1B scheduling, LIFO backward order, KV
// chunk reuse, attention context exchange and vocabulary parallelism.

#include <vector>

#include "src/sched/builder.hpp"
#include "src/sched/schedule.hpp"

namespace slim::core {

/// Per-device pass programs for SlimPipe (both the plain and interleaved
/// forms; v == 1 gives Figure 4's schedule, v > 1 Figure 5's).
std::vector<sched::DeviceProgram> slimpipe_programs(
    const sched::PipelineSpec& spec);

/// Normalizes the spec (layout, KV retention) and simulates one iteration.
/// Context exchange and vocabulary parallelism follow the spec's flags.
sched::ScheduleResult run_slimpipe(sched::PipelineSpec spec,
                                   bool want_timeline = false);

}  // namespace slim::core
