#include "src/sched/ulysses.hpp"

#include <algorithm>

#include "src/model/flops.hpp"
#include "src/sim/topology.hpp"
#include "src/util/logging.hpp"
#include "src/util/math.hpp"
#include "src/util/units.hpp"

namespace slim::sched {

UlyssesResult run_ulysses(const model::TransformerConfig& cfg,
                          const model::GpuSpec& gpu, int num_gpus,
                          std::int64_t seq, std::int64_t tokens_per_iter,
                          int u, model::CheckpointPolicy policy) {
  UlyssesResult result;
  result.ulysses_degree = u;
  result.policy = policy;

  // --- structural viability ---
  if (u < 1 || cfg.heads % u != 0 || u > cfg.kv_heads()) {
    result.note = "ulysses degree exceeds query groups";
    return result;
  }
  if (num_gpus % u != 0) {
    result.note = "world size not divisible by ulysses degree";
    return result;
  }
  const std::int64_t dz = num_gpus / u;  // ZeRO data-parallel degree
  if (tokens_per_iter % seq != 0) {
    result.note = "tokens per iteration not divisible by sequence length";
    return result;
  }
  const std::int64_t batch = tokens_per_iter / seq;
  if (batch % dz != 0 || batch < dz) {
    result.note = "global batch " + std::to_string(batch) +
                  " too small for ZeRO data parallelism " + std::to_string(dz);
    return result;
  }
  const std::int64_t seqs_per_rank = batch / dz;

  const sim::Topology topo = sim::make_cluster(num_gpus);
  // Ulysses splits the sequence c=u ways; heads regroup via all-to-all,
  // approximated by the commutated CP communication pattern.
  const model::Shard shard{1, u, 1, topo.gpus_per_node};
  const model::CostModel cost(cfg, gpu, topo, shard, policy,
                              model::CpMode::Commutated);

  // --- memory ---
  const double params = static_cast<double>(cfg.params_total());
  // ZeRO-3: 16 bytes/param sharded over dz, plus two gathered layers of
  // transient bf16 parameters.
  const double state_bytes =
      params * 16.0 / static_cast<double>(dz) +
      2.0 * static_cast<double>(cfg.params_per_layer()) * 2.0;
  const double act_per_token = model::act_bytes_per_token_layer(
      cfg, shard, policy, /*retain_kv=*/false);
  const double act_bytes = act_per_token * static_cast<double>(seq) *
                           static_cast<double>(cfg.layers) *
                           static_cast<double>(seqs_per_rank);
  const double logit_bytes =
      model::logits_bytes(cfg, shard, seq, /*vocab_shards=*/1);
  result.peak_memory = state_bytes + act_bytes + logit_bytes;
  if (result.peak_memory > gpu.memory_bytes - 3.0 * kGiB) {
    result.status = UlyssesStatus::Oom;
    result.note = "activations exceed device memory";
    return result;
  }

  // --- time ---
  const std::int64_t L = cfg.layers;
  double per_seq = cost.forward_time(L, seq, 0) + cost.backward_time(L, seq, 0);
  per_seq += cost.vocab_forward_time(seq, 1) + cost.vocab_backward_time(seq, 1);
  // ZeRO-3 parameter all-gather per layer, forward and backward; the group
  // spans nodes. Half the volume overlaps with compute.
  const double layer_param_bytes =
      static_cast<double>(cfg.params_per_layer()) * 2.0;
  const double zero_comm =
      0.5 * 2.0 *
      topo.ring_collective_time(static_cast<int>(std::min<std::int64_t>(dz, 64)),
                                layer_param_bytes, /*cross_node=*/true) *
      static_cast<double>(L);
  per_seq += zero_comm;

  const double grad_rs = topo.ring_collective_time(
      static_cast<int>(std::min<std::int64_t>(dz, 64)), params * 2.0, true);
  const double optimizer = params * 18.0 / static_cast<double>(dz) /
                               gpu.hbm_bandwidth +
                           0.5 * grad_rs;

  result.iteration_time =
      static_cast<double>(seqs_per_rank) * per_seq + optimizer;
  result.mfu = cost.model_flops_iteration(seq, batch) /
               (result.iteration_time * static_cast<double>(num_gpus) *
                gpu.peak_flops);
  result.status = UlyssesStatus::Ok;
  return result;
}

UlyssesResult best_ulysses(const model::TransformerConfig& cfg,
                           const model::GpuSpec& gpu, int num_gpus,
                           std::int64_t seq, std::int64_t tokens_per_iter) {
  UlyssesResult best;
  bool saw_oom = false;
  for (int u = 1; u <= num_gpus && u <= 64; u *= 2) {
    for (const auto policy :
         {model::CheckpointPolicy::None, model::CheckpointPolicy::Selective,
          model::CheckpointPolicy::Full}) {
      const UlyssesResult r =
          run_ulysses(cfg, gpu, num_gpus, seq, tokens_per_iter, u, policy);
      if (r.status == UlyssesStatus::Ok &&
          (best.status != UlyssesStatus::Ok || r.mfu > best.mfu)) {
        best = r;
      }
      saw_oom = saw_oom || r.status == UlyssesStatus::Oom;
    }
  }
  if (best.status != UlyssesStatus::Ok && saw_oom) {
    best.status = UlyssesStatus::Oom;
    best.note = "all viable configurations exceeded device memory";
  }
  return best;
}

}  // namespace slim::sched
