file(REMOVE_RECURSE
  "CMakeFiles/sliced_training_demo.dir/sliced_training_demo.cpp.o"
  "CMakeFiles/sliced_training_demo.dir/sliced_training_demo.cpp.o.d"
  "sliced_training_demo"
  "sliced_training_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sliced_training_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
