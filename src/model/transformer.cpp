#include "src/model/transformer.hpp"

#include "src/util/logging.hpp"

namespace slim::model {

std::int64_t TransformerConfig::params_per_layer() const {
  const std::int64_t h = hidden;
  // Attention: Q (h*h), K and V (h*kv_hidden each), O (h*h).
  const std::int64_t attn = 2 * h * h + 2 * h * kv_hidden();
  // SwiGLU FFN: gate, up, down = 3 * h * H per expert instance.
  std::int64_t ffn_params = 3 * h * ffn;
  if (is_moe()) {
    ffn_params = ffn_params * experts + h * experts;  // experts + router
  }
  // Two RMSNorms.
  const std::int64_t norms = 2 * h;
  return attn + ffn_params + norms;
}

std::int64_t TransformerConfig::params_total() const {
  return layers * params_per_layer() + params_embedding() + hidden /*final norm*/;
}

TransformerConfig llama7b() {
  return {.name = "Llama 7B", .layers = 32, .heads = 32, .kv_groups = 0,
          .hidden = 4096, .ffn = 11008};
}

TransformerConfig llama13b() {
  return {.name = "Llama 13B", .layers = 40, .heads = 40, .kv_groups = 0,
          .hidden = 5120, .ffn = 13824};
}

TransformerConfig llama70b() {
  return {.name = "Llama 70B", .layers = 80, .heads = 64, .kv_groups = 8,
          .hidden = 8192, .ffn = 28672};
}

TransformerConfig llama149b() {
  return {.name = "Llama 149B", .layers = 96, .heads = 96, .kv_groups = 8,
          .hidden = 12288, .ffn = 32768};
}

TransformerConfig mixtral8x7b() {
  return {.name = "Mixtral 8x7B", .layers = 32, .heads = 32, .kv_groups = 8,
          .hidden = 4096, .ffn = 14336, .vocab = 128000, .experts = 8,
          .experts_topk = 2};
}

TransformerConfig mixtral8x22b() {
  return {.name = "Mixtral 8x22B", .layers = 56, .heads = 48, .kv_groups = 8,
          .hidden = 6144, .ffn = 16384, .vocab = 128000, .experts = 8,
          .experts_topk = 2};
}

std::vector<TransformerConfig> model_zoo() {
  return {llama13b(), llama70b(), llama149b(), mixtral8x7b(), mixtral8x22b()};
}

TransformerConfig model_by_name(const std::string& name) {
  for (const TransformerConfig& cfg : model_zoo()) {
    if (cfg.name == name) return cfg;
  }
  if (name == "Llama 7B") return llama7b();
  SLIM_CHECK(false, "unknown model: " + name);
  return {};
}

}  // namespace slim::model
