// Tests for the fault-injection subsystem (src/fault) on both execution
// substrates: plan text round-trip and validation (one corrupted fixture
// per rule id, test_analysis style), deterministic replay of a (seed, plan)
// pair on the simulator, checkpoint-restart accounting, and the threaded
// runtime's shutdown protocol — channel poisoning, the starvation watchdog
// with its per-stage blocked-on table, and crash recovery whose replayed
// gradients must still match monolithic execution.

#include <gtest/gtest.h>

#include <chrono>
#include <cstdlib>
#include <thread>

#include "src/core/runner.hpp"
#include "src/fault/fault_plan.hpp"
#include "src/fault/fault_sim.hpp"
#include "src/runtime/channel.hpp"
#include "src/runtime/pipeline_runtime.hpp"
#include "src/sim/executor.hpp"
#include "src/sim/graph.hpp"

namespace slim::fault {
namespace {

FaultPlan full_plan() {
  FaultPlan plan;
  plan.seed = 42;
  plan.stragglers.push_back({1, OpFilter::Forward, 1.5, 0.1, 2, 9});
  plan.links.push_back({0, 2.0, 1e-5});
  plan.crashes.push_back({2, 37, 2.5});
  plan.stage_crashes.push_back({1, 9});
  plan.stage_hangs.push_back({2, 4});
  plan.delays.push_back({0, 3, 0.002});
  plan.socket_drops.push_back({1, 3, 2, 5});
  plan.socket_connect_fails.push_back({1, 2});
  plan.socket_delays.push_back({0, 2, 0.001});
  return plan;
}

TEST(FaultPlanTextTest, RoundTrip) {
  const FaultPlan plan = full_plan();
  const FaultPlan reparsed = parse_plan(to_text(plan));
  EXPECT_EQ(to_text(reparsed), to_text(plan));
  ASSERT_EQ(reparsed.stragglers.size(), 1u);
  EXPECT_EQ(reparsed.seed, 42u);
  EXPECT_EQ(reparsed.stragglers[0].device, 1);
  EXPECT_EQ(reparsed.stragglers[0].ops, OpFilter::Forward);
  EXPECT_DOUBLE_EQ(reparsed.stragglers[0].factor, 1.5);
  EXPECT_EQ(reparsed.stragglers[0].from_op, 2);
  EXPECT_EQ(reparsed.stragglers[0].to_op, 9);
  ASSERT_EQ(reparsed.crashes.size(), 1u);
  EXPECT_EQ(reparsed.crashes[0].at_op, 37);
  ASSERT_EQ(reparsed.delays.size(), 1u);
  EXPECT_DOUBLE_EQ(reparsed.delays[0].seconds, 0.002);
  ASSERT_EQ(reparsed.socket_drops.size(), 1u);
  EXPECT_EQ(reparsed.socket_drops[0].stage, 1);
  EXPECT_EQ(reparsed.socket_drops[0].every, 3);
  EXPECT_EQ(reparsed.socket_drops[0].count, 2);
  EXPECT_EQ(reparsed.socket_drops[0].max_retries, 5);
  ASSERT_EQ(reparsed.socket_connect_fails.size(), 1u);
  EXPECT_EQ(reparsed.socket_connect_fails[0].stage, 1);
  EXPECT_EQ(reparsed.socket_connect_fails[0].failures, 2);
  ASSERT_EQ(reparsed.socket_delays.size(), 1u);
  EXPECT_EQ(reparsed.socket_delays[0].every, 2);
  EXPECT_DOUBLE_EQ(reparsed.socket_delays[0].seconds, 0.001);
}

TEST(FaultPlanTextTest, CommentsAndBlankLinesIgnored) {
  const FaultPlan plan = parse_plan(
      "# a comment\n\n  seed 7  # trailing\n\nlink src=1 slowdown=3\n");
  EXPECT_EQ(plan.seed, 7u);
  ASSERT_EQ(plan.links.size(), 1u);
  EXPECT_EQ(plan.links[0].src, 1);
}

TEST(FaultPlanTextTest, RejectsMalformedInput) {
  EXPECT_THROW(parse_plan("explode now"), std::logic_error);
  EXPECT_THROW(parse_plan("straggler device"), std::logic_error);
  EXPECT_THROW(parse_plan("straggler speed=2"), std::logic_error);
  EXPECT_THROW(parse_plan("link src=0 src=1"), std::logic_error);
  EXPECT_THROW(parse_plan("straggler ops=sideways"), std::logic_error);
  EXPECT_THROW(parse_plan("seed"), std::logic_error);
}

// ---- validation: one corrupted fixture per rule id ----

TEST(FaultPlanValidateTest, CleanPlanHasNoIssues) {
  EXPECT_TRUE(validate(full_plan(), 4).empty());
}

TEST(FaultPlanValidateTest, StragglerFactorRule) {
  FaultPlan plan;
  plan.stragglers.push_back({0, OpFilter::Any, 0.5, 0.0, 0, -1});
  EXPECT_TRUE(has_rule(validate(plan), "fault-straggler-factor"));
}

TEST(FaultPlanValidateTest, StragglerJitterRule) {
  FaultPlan plan;
  plan.stragglers.push_back({0, OpFilter::Any, 2.0, 1.5, 0, -1});
  EXPECT_TRUE(has_rule(validate(plan), "fault-straggler-jitter"));
}

TEST(FaultPlanValidateTest, StragglerWindowRule) {
  FaultPlan plan;
  plan.stragglers.push_back({0, OpFilter::Any, 2.0, 0.0, 5, 2});
  EXPECT_TRUE(has_rule(validate(plan), "fault-straggler-window"));
}

TEST(FaultPlanValidateTest, DeviceRangeRule) {
  FaultPlan plan;
  plan.stragglers.push_back({9, OpFilter::Any, 2.0, 0.0, 0, -1});
  EXPECT_TRUE(has_rule(validate(plan, 4), "fault-device-range"));
  // Without a world size the range check is skipped (plan unbound).
  EXPECT_FALSE(has_rule(validate(plan), "fault-device-range"));
  // Crashes may not use the -1 wildcard: a whole-cluster crash is not a
  // recoverable fault.
  FaultPlan crash_all;
  crash_all.crashes.push_back({-1, 0, 1.0});
  EXPECT_TRUE(has_rule(validate(crash_all, 4), "fault-device-range"));
}

TEST(FaultPlanValidateTest, LinkDegradationRule) {
  FaultPlan plan;
  plan.links.push_back({0, 0.5, 0.0});
  EXPECT_TRUE(has_rule(validate(plan), "fault-link-degradation"));
}

TEST(FaultPlanValidateTest, CrashPointRule) {
  FaultPlan plan;
  plan.crashes.push_back({0, -1, 1.0});
  EXPECT_TRUE(has_rule(validate(plan), "fault-crash-point"));
}

TEST(FaultPlanValidateTest, StageCrashPointRule) {
  FaultPlan plan;
  plan.stage_crashes.push_back({0, 0});
  EXPECT_TRUE(has_rule(validate(plan), "fault-stage-crash-point"));
}

TEST(FaultPlanValidateTest, StageHangPointRule) {
  FaultPlan plan;
  plan.stage_hangs.push_back({0, 0});
  EXPECT_TRUE(has_rule(validate(plan), "fault-stage-hang-point"));
}

TEST(FaultPlanValidateTest, DelayParamsRule) {
  FaultPlan plan;
  plan.delays.push_back({-1, 0, 0.001});
  EXPECT_TRUE(has_rule(validate(plan), "fault-delay-params"));
}

TEST(FaultPlanValidateTest, SocketDropParamsRule) {
  FaultPlan plan;
  plan.socket_drops.push_back({-1, 0, 1, 3});  // every < 1
  EXPECT_TRUE(has_rule(validate(plan), "fault-socket-drop-params"));
  FaultPlan negative_retries;
  negative_retries.socket_drops.push_back({-1, 1, 1, -1});
  EXPECT_TRUE(
      has_rule(validate(negative_retries), "fault-socket-drop-params"));
}

TEST(FaultPlanValidateTest, SocketConnectParamsRule) {
  FaultPlan plan;
  plan.socket_connect_fails.push_back({0, 0});  // failures < 1
  EXPECT_TRUE(has_rule(validate(plan), "fault-socket-connect-params"));
  // Connect faults bind to a concrete boundary: no -1 wildcard, and the
  // stage must lie inside the pipeline.
  FaultPlan out_of_range;
  out_of_range.socket_connect_fails.push_back({7, 1});
  EXPECT_TRUE(has_rule(validate(out_of_range, 4), "fault-device-range"));
}

TEST(FaultPlanValidateTest, SocketDelayParamsRule) {
  FaultPlan plan;
  plan.socket_delays.push_back({-1, 1, -0.5});  // negative delay
  EXPECT_TRUE(has_rule(validate(plan), "fault-socket-delay-params"));
}

TEST(FaultPlanValidateTest, RenderNamesTheRule) {
  FaultPlan plan;
  plan.links.push_back({0, 0.5, 0.0});
  const auto issues = validate(plan);
  EXPECT_NE(render(issues).find("fault-link-degradation"), std::string::npos);
}

// ---- simulator substrate ----

sim::OpGraph small_graph() {
  sim::OpGraph g(sim::make_cluster(2));
  const sim::OpId f0 = g.add_compute(0, 1.0, sim::OpClass::Forward, {});
  const sim::OpId t0 = g.add_transfer(0, 1, 400e9, sim::OpClass::Send, {f0});
  const sim::OpId f1 = g.add_compute(1, 1.0, sim::OpClass::Forward, {t0});
  const sim::OpId b1 = g.add_compute(1, 2.0, sim::OpClass::Backward, {f1});
  const sim::OpId t1 = g.add_transfer(1, 0, 400e9, sim::OpClass::Send, {b1});
  g.add_compute(0, 2.0, sim::OpClass::Backward, {t1});
  return g;
}

TEST(FaultSimTest, DeterministicReplaySameSeed) {
  FaultPlan plan;
  plan.seed = 5;
  plan.stragglers.push_back({-1, OpFilter::Any, 1.7, 0.5, 0, -1});
  plan.links.push_back({-1, 1.5, 1e-4});

  sim::OpGraph a = small_graph();
  sim::OpGraph b = small_graph();
  const double injected_a = apply_to_graph(a, plan, nullptr);
  const double injected_b = apply_to_graph(b, plan, nullptr);
  EXPECT_DOUBLE_EQ(injected_a, injected_b);
  ASSERT_EQ(a.ops().size(), b.ops().size());
  for (std::size_t i = 0; i < a.ops().size(); ++i) {
    EXPECT_DOUBLE_EQ(a.ops()[i].duration, b.ops()[i].duration) << "op " << i;
  }
  const sim::ExecResult ea = sim::execute(a);
  const sim::ExecResult eb = sim::execute(b);
  EXPECT_DOUBLE_EQ(ea.makespan, eb.makespan);
  for (std::size_t i = 0; i < ea.timings.size(); ++i) {
    EXPECT_DOUBLE_EQ(ea.timings[i].start, eb.timings[i].start);
    EXPECT_DOUBLE_EQ(ea.timings[i].end, eb.timings[i].end);
  }
}

TEST(FaultSimTest, SeedChangesJitterDraws) {
  FaultPlan plan;
  plan.seed = 5;
  plan.stragglers.push_back({-1, OpFilter::Any, 2.0, 0.9, 0, -1});
  FaultPlan other = plan;
  other.seed = 6;

  sim::OpGraph a = small_graph();
  sim::OpGraph b = small_graph();
  apply_to_graph(a, plan, nullptr);
  apply_to_graph(b, other, nullptr);
  bool any_diff = false;
  for (std::size_t i = 0; i < a.ops().size(); ++i) {
    any_diff = any_diff || a.ops()[i].duration != b.ops()[i].duration;
  }
  EXPECT_TRUE(any_diff);
}

TEST(FaultSimTest, WindowSelectsDeviceOpIndices) {
  // Device 0's op sequence: Forward(#0), Send(#1), Backward(#2). A window
  // of [1, 1] on Any must scale only the transfer.
  FaultPlan plan;
  plan.stragglers.push_back({0, OpFilter::Any, 3.0, 0.0, 1, 1});
  sim::OpGraph g = small_graph();
  const double base_fwd = g.ops()[0].duration;
  const double base_send = g.ops()[1].duration;
  const double base_bwd = g.ops()[5].duration;
  apply_to_graph(g, plan, nullptr);
  EXPECT_DOUBLE_EQ(g.ops()[0].duration, base_fwd);
  EXPECT_DOUBLE_EQ(g.ops()[1].duration, 3.0 * base_send);
  EXPECT_DOUBLE_EQ(g.ops()[5].duration, base_bwd);
}

TEST(FaultSimTest, LinkFaultHitsOnlySenderTransfers) {
  FaultPlan plan;
  plan.links.push_back({0, 2.0, 0.0});
  sim::OpGraph g = small_graph();
  const double t0 = g.ops()[1].duration;  // sent by device 0
  const double t1 = g.ops()[4].duration;  // sent by device 1
  apply_to_graph(g, plan, nullptr);
  EXPECT_DOUBLE_EQ(g.ops()[1].duration, 2.0 * t0);
  EXPECT_DOUBLE_EQ(g.ops()[4].duration, t1);
}

TEST(FaultSimTest, RecoveryOverheadIsCrashTimePlusRestart) {
  sim::OpGraph g = small_graph();
  const sim::ExecResult exec = sim::execute(g);
  FaultPlan plan;
  plan.crashes.push_back({1, 1, 2.5});  // device 1's 2nd compute op (b1)
  FaultReport report;
  const double overhead = recovery_overhead(g, exec, plan, &report);
  // b1 ends at f0 + send + f1 + b1.
  const double b1_end = exec.timings[3].end;
  EXPECT_DOUBLE_EQ(overhead, b1_end + 2.5);
  EXPECT_TRUE(report.has_kind(FaultEvent::Kind::Crash));
  EXPECT_DOUBLE_EQ(report.recovery_overhead, overhead);
}

TEST(FaultSimTest, ReportRendersEventsAndTotals) {
  FaultPlan plan;
  plan.stragglers.push_back({0, OpFilter::Any, 2.0, 0.0, 0, -1});
  sim::OpGraph g = small_graph();
  FaultReport report;
  apply_to_graph(g, plan, &report);
  EXPECT_TRUE(report.has_kind(FaultEvent::Kind::Straggler));
  EXPECT_GT(report.injected_seconds, 0.0);
  EXPECT_NE(report.render().find("straggler"), std::string::npos);
}

// ---- scheme-level degradation (core::run_scheme_faulted) ----

sched::PipelineSpec tiny_spec() {
  sched::PipelineSpec spec;
  spec.cfg = model::llama13b();
  spec.gpu = model::hopper80();
  spec.shard = {8, 1, 1, 8};
  spec.p = 4;
  spec.m = 4;
  spec.n = 8;
  spec.seq = 32768;
  return spec;
}

TEST(SchemeFaultTest, StragglerDegradesIterationTime) {
  const auto baseline = core::run_scheme(core::Scheme::SlimPipe, tiny_spec());
  FaultPlan plan;
  plan.stragglers.push_back({2, OpFilter::Any, 1.5, 0.0, 0, -1});
  FaultReport report;
  const auto degraded = core::run_scheme_faulted(core::Scheme::SlimPipe,
                                                 tiny_spec(), plan, &report);
  EXPECT_GT(degraded.iteration_time, baseline.iteration_time);
  EXPECT_GT(degraded.fault_injected_seconds, 0.0);
  EXPECT_DOUBLE_EQ(degraded.fault_recovery_seconds, 0.0);
  EXPECT_LT(degraded.mfu, baseline.mfu);
  EXPECT_TRUE(report.has_kind(FaultEvent::Kind::Straggler));
}

TEST(SchemeFaultTest, CrashAddsRecoveryCost) {
  const auto baseline = core::run_scheme(core::Scheme::OneF1B, tiny_spec());
  FaultPlan plan;
  plan.crashes.push_back({1, 3, 4.0});
  const auto degraded =
      core::run_scheme_faulted(core::Scheme::OneF1B, tiny_spec(), plan);
  EXPECT_NEAR(degraded.iteration_time,
              baseline.iteration_time + degraded.fault_recovery_seconds,
              1e-9);
  EXPECT_GT(degraded.fault_recovery_seconds, 4.0);
}

TEST(SchemeFaultTest, EmptyPlanChangesNothing) {
  const auto baseline = core::run_scheme(core::Scheme::SlimPipe, tiny_spec());
  const auto faulted = core::run_scheme_faulted(core::Scheme::SlimPipe,
                                                tiny_spec(), FaultPlan{});
  EXPECT_DOUBLE_EQ(faulted.iteration_time, baseline.iteration_time);
  EXPECT_DOUBLE_EQ(faulted.fault_injected_seconds, 0.0);
}

TEST(SchemeFaultTest, InvalidPlanRejected) {
  FaultPlan plan;
  plan.crashes.push_back({99, 0, 1.0});  // outside p=4
  EXPECT_THROW(core::run_scheme_faulted(core::Scheme::SlimPipe, tiny_spec(),
                                        plan),
               std::logic_error);
}

}  // namespace
}  // namespace slim::fault

// ---- threaded-runtime substrate ----

namespace slim::rt {
namespace {

TEST(ChannelCloseTest, CloseUnblocksReceiver) {
  Channel<int> ch;
  std::thread closer([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    ch.close();
  });
  int out = 0;
  EXPECT_EQ(ch.receive_status_for(std::chrono::seconds(10), out),
            RecvStatus::Closed);
  closer.join();
}

TEST(ChannelCloseTest, DrainsQueuedMessagesBeforeClosed) {
  Channel<int> ch;
  ch.send(1);
  ch.send(2);
  ch.close();
  int out = 0;
  EXPECT_EQ(ch.receive_status_for(std::chrono::milliseconds(1), out),
            RecvStatus::Ok);
  EXPECT_EQ(out, 1);
  EXPECT_EQ(ch.receive_status_for(std::chrono::milliseconds(1), out),
            RecvStatus::Ok);
  EXPECT_EQ(out, 2);
  EXPECT_EQ(ch.receive_status_for(std::chrono::milliseconds(1), out),
            RecvStatus::Closed);
}

TEST(ChannelCloseTest, SendsAfterCloseAreDropped) {
  Channel<int> ch;
  ch.close();
  ch.send(1);
  ch.send_front(2);
  EXPECT_EQ(ch.size(), 0u);
  EXPECT_TRUE(ch.closed());
}

TEST(ChannelCloseTest, TimeoutStillReportedWhenOpen) {
  Channel<int> ch;
  int out = 0;
  EXPECT_EQ(ch.receive_status_for(std::chrono::milliseconds(5), out),
            RecvStatus::Timeout);
}

std::vector<std::vector<std::int64_t>> random_batch(Rng& rng, int m, int seq,
                                                    std::int64_t vocab) {
  std::vector<std::vector<std::int64_t>> out(static_cast<std::size_t>(m));
  for (auto& sequence : out) {
    for (int i = 0; i < seq; ++i) {
      sequence.push_back(static_cast<std::int64_t>(
          rng.next_below(static_cast<std::uint64_t>(vocab))));
    }
  }
  return out;
}

struct Fixture {
  ThreadedPipeline pipe;
  std::vector<std::vector<std::int64_t>> tokens;
  std::vector<std::vector<std::int64_t>> targets;
};

Fixture make_fixture(int stages, int layers, int m, int chunks = 1,
                     unsigned seed = 900) {
  Rng rng(seed);
  const num::BlockDims dims{16, 2, 2, 24};
  const std::int64_t vocab = 16;
  Fixture f{ThreadedPipeline(dims, vocab, layers, stages, rng, chunks),
            {},
            {}};
  Rng data_rng(seed + 1);
  f.tokens = random_batch(data_rng, m, 24, vocab);
  f.targets = random_batch(data_rng, m, 24, vocab);
  return f;
}

TEST(RuntimeFaultTest, DelayPlanIsDeterministicAndHarmless) {
  Fixture f = make_fixture(3, 3, 2);
  const auto ref = f.pipe.run_reference(f.tokens, f.targets);

  fault::FaultPlan plan;
  plan.delays.push_back({-1, 4, 0.001});
  RunOptions options;
  options.n_slices = 4;
  options.faults = &plan;

  const auto a = f.pipe.run_iteration(f.tokens, f.targets, options);
  const auto b = f.pipe.run_iteration(f.tokens, f.targets, options);
  // Delays shift wall-clock, never the message pattern or the numerics.
  ASSERT_EQ(a.stats.messages.size(), b.stats.messages.size());
  for (std::size_t s = 0; s < a.stats.messages.size(); ++s) {
    EXPECT_EQ(a.stats.messages[s], b.stats.messages[s]) << "stage " << s;
  }
  EXPECT_EQ(a.stats.messages[0], 2 * 2 * 4);  // 2m n: seeded fwd + grads
  EXPECT_DOUBLE_EQ(a.loss, b.loss);
  EXPECT_NEAR(a.loss, ref.loss, 1e-5);
  EXPECT_LT(a.grads.max_abs_diff(ref.grads), 5e-5f);
}

TEST(RuntimeFaultTest, CrashWithoutRecoveryThrowsStructuredError) {
  Fixture f = make_fixture(3, 3, 2);
  fault::FaultPlan plan;
  plan.stage_crashes.push_back({1, 5});
  RunOptions options;
  options.n_slices = 4;
  options.faults = &plan;

  try {
    f.pipe.run_iteration(f.tokens, f.targets, options);
    FAIL() << "expected PipelineError";
  } catch (const PipelineError& e) {
    EXPECT_TRUE(e.report().has_kind(fault::FaultEvent::Kind::Crash));
    EXPECT_FALSE(e.report().blocked_table.empty());
    EXPECT_NE(std::string(e.what()).find("injected crash at stage 1"),
              std::string::npos);
  }
}

TEST(RuntimeFaultTest, HangTriggersWatchdogWithBlockedTable) {
  Fixture f = make_fixture(3, 3, 2);
  fault::FaultPlan plan;
  plan.stage_hangs.push_back({1, 3});
  RunOptions options;
  options.n_slices = 4;
  options.faults = &plan;
  options.starvation_timeout = std::chrono::milliseconds(200);

  try {
    f.pipe.run_iteration(f.tokens, f.targets, options);
    FAIL() << "expected PipelineError";
  } catch (const PipelineError& e) {
    EXPECT_TRUE(e.report().has_kind(fault::FaultEvent::Kind::Watchdog));
    EXPECT_TRUE(e.report().has_kind(fault::FaultEvent::Kind::Hang));
    // The deadlock report names the hung stage and carries the per-channel
    // queue depth and last-received microbatch columns.
    EXPECT_NE(e.report().blocked_table.find("hung"), std::string::npos);
    EXPECT_NE(e.report().blocked_table.find("queue"), std::string::npos);
    EXPECT_NE(e.report().blocked_table.find("last mb"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("starved"), std::string::npos);
  }
}

TEST(RuntimeFaultTest, StarvationTimeoutEnvDefault) {
  // SLIMPIPE_STARVATION_TIMEOUT_MS seeds RunOptions::starvation_timeout;
  // garbage and non-positive values fall back to the built-in 30 s.
  ASSERT_EQ(setenv("SLIMPIPE_STARVATION_TIMEOUT_MS", "1234", 1), 0);
  EXPECT_EQ(default_starvation_timeout(), std::chrono::milliseconds(1234));
  EXPECT_EQ(RunOptions{}.starvation_timeout,
            std::chrono::milliseconds(1234));
  ASSERT_EQ(setenv("SLIMPIPE_STARVATION_TIMEOUT_MS", "0", 1), 0);
  EXPECT_EQ(default_starvation_timeout(), std::chrono::milliseconds(30000));
  ASSERT_EQ(setenv("SLIMPIPE_STARVATION_TIMEOUT_MS", "nonsense", 1), 0);
  EXPECT_EQ(default_starvation_timeout(), std::chrono::milliseconds(30000));
  ASSERT_EQ(unsetenv("SLIMPIPE_STARVATION_TIMEOUT_MS"), 0);
  EXPECT_EQ(default_starvation_timeout(), std::chrono::milliseconds(30000));
}

TEST(RuntimeFaultTest, InvalidPlanRejectedUpFront) {
  Fixture f = make_fixture(3, 3, 1);
  fault::FaultPlan plan;
  plan.stage_crashes.push_back({7, 5});  // outside p=3
  RunOptions options;
  options.n_slices = 4;
  options.faults = &plan;
  EXPECT_THROW(f.pipe.run_iteration(f.tokens, f.targets, options),
               std::logic_error);
}

struct RecoveryCase {
  int stages;
  int chunks;
  int layers;
  int n_slices;
  int microbatches;
  bool vocab_parallel;
  int crash_stage;
  std::int64_t after_messages;
};

class CrashRecoveryTest : public ::testing::TestWithParam<RecoveryCase> {};

// The tentpole guarantee: an injected stage crash, respawn from the
// parameter snapshot and replay of unretired microbatches must reproduce
// the monolithic gradients to the same tolerance as the fault-free
// equivalence tests.
TEST_P(CrashRecoveryTest, RecoveredGradientsMatchReference) {
  const RecoveryCase c = GetParam();
  Fixture f = make_fixture(c.stages, c.layers, c.microbatches, c.chunks,
                           950 + static_cast<unsigned>(c.crash_stage));
  const auto ref = f.pipe.run_reference(f.tokens, f.targets);

  fault::FaultPlan plan;
  plan.stage_crashes.push_back({c.crash_stage, c.after_messages});
  fault::FaultReport report;
  RunOptions options;
  options.n_slices = c.n_slices;
  options.vocab_parallel = c.vocab_parallel;
  options.faults = &plan;
  options.recover = true;
  options.report = &report;

  const auto recovered = f.pipe.run_iteration(f.tokens, f.targets, options);

  EXPECT_NEAR(recovered.loss, ref.loss, 1e-5);
  EXPECT_LT(recovered.grads.max_abs_diff(ref.grads), 5e-5f)
      << "p=" << c.stages << " v=" << c.chunks << " crash@" << c.crash_stage;
  // The crash really happened and microbatches were replayed.
  EXPECT_TRUE(report.has_kind(fault::FaultEvent::Kind::Crash));
  EXPECT_TRUE(report.has_kind(fault::FaultEvent::Kind::Recovery));
  ASSERT_FALSE(report.replayed_microbatches.empty());
  EXPECT_EQ(report.replayed_microbatches,
            recovered.stats.replayed_microbatches);
  for (const int mb : report.replayed_microbatches) {
    EXPECT_GE(mb, 0);
    EXPECT_LT(mb, c.microbatches);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, CrashRecoveryTest,
    ::testing::Values(
        // Early crash on a middle stage: nothing retired, full replay.
        RecoveryCase{3, 1, 3, 4, 2, false, 1, 2},
        // Late crash on the head stage: some microbatches already retired.
        RecoveryCase{3, 1, 3, 4, 3, false, 2, 20},
        // Crash on stage 0 (owns the embedding gradients).
        RecoveryCase{3, 1, 4, 4, 2, false, 0, 7},
        // Vocabulary-parallel head: the two-phase scalar sync must survive
        // the respawn.
        RecoveryCase{2, 1, 3, 4, 2, true, 1, 10},
        // Interleaved stages (v = 2): thread 0 owns chunks 0 and 2.
        RecoveryCase{2, 2, 4, 4, 2, false, 0, 9}));

TEST(RuntimeFaultTest, NoInjectedFaultReachesTerminate) {
  // Crash or hang every stage in turn: every run must either recover or
  // surface a structured PipelineError — never std::terminate.
  for (int stage = 0; stage < 3; ++stage) {
    for (const bool hang : {false, true}) {
      Fixture f = make_fixture(3, 3, 2);
      fault::FaultPlan plan;
      if (hang) {
        plan.stage_hangs.push_back({stage, 4});
      } else {
        plan.stage_crashes.push_back({stage, 4});
      }
      RunOptions options;
      options.n_slices = 4;
      options.faults = &plan;
      options.recover = !hang;
      options.starvation_timeout = std::chrono::milliseconds(200);
      try {
        const auto r = f.pipe.run_iteration(f.tokens, f.targets, options);
        EXPECT_FALSE(hang) << "a hang cannot recover";
        EXPECT_FALSE(r.stats.replayed_microbatches.empty());
      } catch (const PipelineError& e) {
        EXPECT_FALSE(e.report().blocked_table.empty())
            << "stage " << stage << " hang=" << hang;
      }
    }
  }
}

TEST(RuntimeFaultTest, LegacyOverloadUnchanged) {
  // The 4-argument run_iteration keeps its exact fault-free behavior.
  Fixture f = make_fixture(2, 2, 2);
  const auto ref = f.pipe.run_reference(f.tokens, f.targets);
  const auto par = f.pipe.run_iteration(f.tokens, f.targets, 4);
  EXPECT_NEAR(par.loss, ref.loss, 1e-5);
  EXPECT_LT(par.grads.max_abs_diff(ref.grads), 5e-5f);
  EXPECT_TRUE(par.stats.replayed_microbatches.empty());
}

}  // namespace
}  // namespace slim::rt
