file(REMOVE_RECURSE
  "libslim_util.a"
)
