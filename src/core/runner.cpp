#include "src/core/runner.hpp"

#include "src/core/slimpipe.hpp"
#include "src/sched/schemes.hpp"
#include "src/util/logging.hpp"

namespace slim::core {

const char* scheme_name(Scheme scheme) {
  switch (scheme) {
    case Scheme::GPipe: return "GPipe";
    case Scheme::TeraPipe: return "TeraPipe";
    case Scheme::OneF1B: return "1F1B";
    case Scheme::Interleaved1F1B: return "Interleaved 1F1B";
    case Scheme::ZBV: return "ZB-V";
    case Scheme::VHalf: return "V-Half";
    case Scheme::VMin: return "V-Min";
    case Scheme::SlimPipe: return "SlimPipe";
  }
  return "?";
}

std::vector<Scheme> all_schemes() {
  return {Scheme::GPipe,  Scheme::TeraPipe, Scheme::OneF1B,
          Scheme::Interleaved1F1B, Scheme::ZBV, Scheme::VHalf,
          Scheme::VMin, Scheme::SlimPipe};
}

sched::ScheduleResult run_scheme(Scheme scheme, sched::PipelineSpec spec,
                                 bool want_timeline) {
  switch (scheme) {
    case Scheme::GPipe:
      return sched::run_gpipe(std::move(spec), want_timeline);
    case Scheme::TeraPipe:
      return sched::run_terapipe(std::move(spec), want_timeline);
    case Scheme::OneF1B:
      return sched::run_onef1b(std::move(spec), want_timeline);
    case Scheme::Interleaved1F1B:
      return sched::run_interleaved(std::move(spec), want_timeline);
    case Scheme::ZBV:
      return sched::run_zbv(std::move(spec), want_timeline);
    case Scheme::VHalf:
      return sched::run_vhalf(std::move(spec), want_timeline);
    case Scheme::VMin:
      return sched::run_vmin(std::move(spec), want_timeline);
    case Scheme::SlimPipe:
      return run_slimpipe(std::move(spec), want_timeline);
  }
  SLIM_CHECK(false, "unknown scheme");
  return {};
}

}  // namespace slim::core
