file(REMOVE_RECURSE
  "CMakeFiles/bench_fig13_scheme_mfu.dir/bench_common.cpp.o"
  "CMakeFiles/bench_fig13_scheme_mfu.dir/bench_common.cpp.o.d"
  "CMakeFiles/bench_fig13_scheme_mfu.dir/bench_fig13_scheme_mfu.cpp.o"
  "CMakeFiles/bench_fig13_scheme_mfu.dir/bench_fig13_scheme_mfu.cpp.o.d"
  "bench_fig13_scheme_mfu"
  "bench_fig13_scheme_mfu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig13_scheme_mfu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
