# Empty compiler generated dependencies file for slim_model.
# This may be replaced when dependencies are built.
