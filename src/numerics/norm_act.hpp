#pragma once

// RMSNorm and SwiGLU with manual backward passes.
//
// Both follow the paper's memory-thrifty conventions (§5): RMSNorm keeps no
// output (gradients are recomputed from the input), and SwiGLU recomputes
// the swish product from the stored gate/up projections.

#include "src/numerics/tensor.hpp"

namespace slim::num {

inline constexpr float kRmsEps = 1e-5f;

/// y[r] = x[r] / rms(x[r]) * w   (w broadcast over rows).
Tensor rmsnorm(const Tensor& x, const Tensor& weight);

/// Backward from dy; accumulates into dweight, returns dx. Recomputes the
/// normalizer from x (memory-efficient variant).
Tensor rmsnorm_bwd(const Tensor& x, const Tensor& weight, const Tensor& dy,
                   Tensor& dweight);

/// silu(x) = x * sigmoid(x).
float silu(float x);
float silu_grad(float x);

/// out = silu(gate) * up, elementwise.
Tensor swiglu(const Tensor& gate, const Tensor& up);

/// Backward: fills dgate and dup from dout (recomputing silu from gate).
void swiglu_bwd(const Tensor& gate, const Tensor& up, const Tensor& dout,
                Tensor& dgate, Tensor& dup);

}  // namespace slim::num
