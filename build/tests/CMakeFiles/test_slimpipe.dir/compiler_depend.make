# Empty compiler generated dependencies file for test_slimpipe.
# This may be replaced when dependencies are built.
