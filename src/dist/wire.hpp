#pragma once

// Message framing and tensor (de)serialization for the socket transport.
//
// Every message on a data or control socket is one frame:
//
//   header (36 bytes, little-endian):
//     u32 magic 'SLMF'   u8 kind  u8 pad[3]
//     i32 stage  i32 mb  i32 slice
//     u64 payload_size
//     u32 payload_crc32  u32 header_crc32 (over the preceding 32 bytes)
//   payload (payload_size bytes)
//
// Both CRCs make torn and corrupt frames detectable instead of silently
// consumable: a worker SIGKILLed mid-write leaves a frame whose header or
// payload fails validation, the supervisor discards the tail, and the
// microbatch it belonged to simply stays uncommitted — the crash-consistent
// half of the at-most-once commit protocol. Payloads are built/read with
// the little-endian Writer/Reader below; tensors travel as raw fp32 bytes
// (bit-exact — gradient bit-identity across the process boundary depends
// on it).

#include <cstdint>
#include <string>
#include <vector>

#include "src/dist/socket.hpp"
#include "src/fault/fault_plan.hpp"
#include "src/numerics/tensor.hpp"
#include "src/obs/flight_recorder.hpp"
#include "src/runtime/commit.hpp"

namespace slim::dist {

enum class FrameKind : std::uint8_t {
  Hello = 1,      // worker -> supervisor: alive, transport up
  Forward = 2,    // activation slice, stage s -> s+1
  Backward = 3,   // gradient slice, stage s -> s-1
  Heartbeat = 4,  // worker -> supervisor: progress snapshot
  Commit = 5,     // worker -> supervisor: retired microbatch's staged grads
  Event = 6,      // worker -> supervisor: fault events observed so far
  Error = 7,      // worker -> supervisor: structured failure, then exit(2)
  Done = 8,       // worker -> supervisor: all work finished + metrics
  Telemetry = 9,  // worker -> supervisor: flight-recorder flush
  Ping = 10,      // supervisor -> worker: clock probe (payload: f64 t1)
  Pong = 11,      // worker -> supervisor: clock reply (f64 t1, t2, t3)
};

const char* frame_kind_name(FrameKind kind);

struct Frame {
  FrameKind kind = FrameKind::Hello;
  std::int32_t stage = -1;
  std::int32_t mb = -1;
  std::int32_t slice = -1;
  std::vector<std::uint8_t> payload;
};

/// CRC-32 (IEEE 802.3, reflected) over a byte range.
std::uint32_t crc32(const void* data, std::size_t n);

/// Serializes and writes one frame. Returns false when the peer is gone
/// (the caller decides whether a dead peer is fatal).
bool send_frame(int fd, const Frame& frame);

/// Reads and validates one frame: Ok, Eof (clean close at a frame
/// boundary), Torn (peer died mid-frame) or Corrupt (magic/CRC mismatch).
IoStatus recv_frame(int fd, Frame* out);

// ---------------------------------------------------------------------------
// Little-endian payload builder / sequential reader.

class Writer {
 public:
  void u8(std::uint8_t v);
  void i32(std::int32_t v);
  void i64(std::int64_t v);
  void f64(double v);
  void str(const std::string& v);
  void tensor(const num::Tensor& t);  // rows, cols, raw fp32 bytes
  std::vector<std::uint8_t> take() { return std::move(bytes_); }

 private:
  std::vector<std::uint8_t> bytes_;
};

class Reader {
 public:
  explicit Reader(const std::vector<std::uint8_t>& bytes) : bytes_(bytes) {}
  std::uint8_t u8();
  std::int32_t i32();
  std::int64_t i64();
  double f64();
  std::string str();
  num::Tensor tensor();
  bool done() const { return pos_ == bytes_.size(); }

 private:
  const std::vector<std::uint8_t>& bytes_;
  std::size_t pos_ = 0;
};

// ---------------------------------------------------------------------------
// Structured payloads shared by stage workers and the supervisor.

/// Per-data-link transport counters (one per neighbor direction). Bytes are
/// payload bytes (frame headers excluded), matching p2p_bytes elsewhere.
struct WireChannelStats {
  std::int64_t frames_out = 0;
  std::int64_t frames_in = 0;
  std::int64_t bytes_out = 0;
  std::int64_t bytes_in = 0;
  std::int64_t crc_rejects = 0;  // frames discarded by CRC/framing checks
  std::int64_t retries = 0;      // retransmits after injected drops
};

/// Heartbeat payload: the per-stage progress snapshot — the multi-process
/// analogue of the threaded runtime's StageStatus atomics, and the source
/// of the supervisor's postmortem blocked-on table.
struct WireStatus {
  std::int64_t messages = 0;
  std::int32_t done_f = 0;
  std::int32_t done_b = 0;
  std::int32_t live = 0;
  std::int32_t queue = 0;     // worker inbox depth
  std::int32_t deferred = 0;  // live-window parked forwards
  std::int32_t committed = 0;
  std::int32_t last_mb = -1;  // last received microbatch id
  std::int32_t state = 0;     // worker-local StageState as int
  double injected_delay_seconds = 0.0;
  WireChannelStats prev;  // link toward stage-1 (empty on stage 0)
  WireChannelStats next;  // link toward stage+1 (empty on the last stage)
  std::int64_t flight_recorded = 0;  // flight-recorder events so far
};

void write_status(Writer& w, const WireStatus& status);
WireStatus read_status(Reader& r);

void write_event(Writer& w, const fault::FaultEvent& event);
fault::FaultEvent read_event(Reader& r);

/// Telemetry payload: one flight-recorder flush (see obs/flight_recorder.hpp).
/// `dropped` counts ring-overwritten events lost between flushes.
struct WireFlightFlush {
  std::uint64_t dropped = 0;
  std::vector<obs::FlightEvent> events;
};

void write_flight_flush(Writer& w, const WireFlightFlush& flush);
WireFlightFlush read_flight_flush(Reader& r);

/// Deterministic cross-process flow-arrow id: the sender of a data frame and
/// its receiver derive the same id from (attempt, direction, sending stage,
/// microbatch, slice) without coordinating, so the supervisor can pair the
/// two endpoints into one Chrome-trace arrow. Ids start at a high base so
/// they never collide with Recorder::begin_flow's 0-based counter.
std::int64_t wire_flow_id(int attempt, bool backward, int src_stage, int mb,
                          int slice);

/// One flow-arrow endpoint recorded by a worker (times on the worker clock).
struct WireFlow {
  std::int64_t id = -1;
  double ts = 0.0;
  std::uint8_t begin = 1;     // 1 = send side, 0 = receive side
  std::uint8_t backward = 0;  // direction, for the arrow label
};

/// Commit payload: one retired (stage, microbatch) StageCommit.
void write_commit(Writer& w, const rt::StageCommit& commit);
rt::StageCommit read_commit(Reader& r);

/// Worker-local trace records, re-based onto the supervisor's recorder
/// after the Done frame arrives (times are relative to the worker's start).
struct WireSpan {
  double start = 0.0;
  double end = 0.0;
  std::string name;
  std::string category;
  std::int32_t mb = -1;
  std::int32_t slice = -1;
  std::int32_t stage = -1;
};

struct WireInstant {
  double time = 0.0;
  std::string name;
  std::string category;
  std::string detail;
};

/// Done payload: the worker's final status, fault events, per-category
/// arena peaks and trace records — everything observability needs to
/// survive the process boundary.
struct WireStageDone {
  WireStatus status;
  double busy_seconds = 0.0;
  double comm_seconds = 0.0;  // data-frame send time incl. injected latency
  double blocked_recv_seconds = 0.0;
  std::int64_t p2p_messages = 0;
  double p2p_bytes = 0.0;
  std::int32_t peak_queue = 0;
  std::int32_t peak_live = 0;
  std::vector<std::int64_t> arena_peak_bytes;  // per mem::Category
  std::int64_t arena_peak_total = 0;
  std::vector<fault::FaultEvent> events;
  std::vector<WireSpan> spans;
  std::vector<WireInstant> instants;
  std::vector<WireFlow> flows;
};

void write_stage_done(Writer& w, const WireStageDone& done);
WireStageDone read_stage_done(Reader& r);

}  // namespace slim::dist
