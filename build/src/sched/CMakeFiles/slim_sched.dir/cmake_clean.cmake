file(REMOVE_RECURSE
  "CMakeFiles/slim_sched.dir/builder.cpp.o"
  "CMakeFiles/slim_sched.dir/builder.cpp.o.d"
  "CMakeFiles/slim_sched.dir/gpipe.cpp.o"
  "CMakeFiles/slim_sched.dir/gpipe.cpp.o.d"
  "CMakeFiles/slim_sched.dir/onef1b.cpp.o"
  "CMakeFiles/slim_sched.dir/onef1b.cpp.o.d"
  "CMakeFiles/slim_sched.dir/schedule.cpp.o"
  "CMakeFiles/slim_sched.dir/schedule.cpp.o.d"
  "CMakeFiles/slim_sched.dir/ulysses.cpp.o"
  "CMakeFiles/slim_sched.dir/ulysses.cpp.o.d"
  "CMakeFiles/slim_sched.dir/zbv.cpp.o"
  "CMakeFiles/slim_sched.dir/zbv.cpp.o.d"
  "libslim_sched.a"
  "libslim_sched.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/slim_sched.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
