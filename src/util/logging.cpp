#include "src/util/logging.hpp"

#include <atomic>
#include <cstdio>
#include <iostream>
#include <stdexcept>

namespace slim {

namespace {
std::atomic<int> g_level{static_cast<int>(LogLevel::Warn)};
std::mutex g_io_mutex;

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::Debug: return "DEBUG";
    case LogLevel::Info: return "INFO ";
    case LogLevel::Warn: return "WARN ";
    case LogLevel::Error: return "ERROR";
    case LogLevel::Off: return "OFF  ";
  }
  return "?????";
}
}  // namespace

void set_log_level(LogLevel level) { g_level.store(static_cast<int>(level)); }

LogLevel log_level() { return static_cast<LogLevel>(g_level.load()); }

namespace detail {

LogLine::LogLine(LogLevel level, const char* file, int line)
    : enabled_(static_cast<int>(level) >= g_level.load()) {
  if (enabled_) {
    const char* base = file;
    for (const char* p = file; *p != '\0'; ++p) {
      if (*p == '/') base = p + 1;
    }
    stream_ << "[" << level_name(level) << "] " << base << ":" << line << " ";
  }
}

LogLine::~LogLine() {
  if (enabled_) {
    std::lock_guard<std::mutex> lock(g_io_mutex);
    std::cerr << stream_.str() << "\n";
  }
}

void check_failed(const char* cond, const std::string& msg, const char* file,
                  int line) {
  std::ostringstream out;
  out << "SLIM_CHECK failed: (" << cond << ") at " << file << ":" << line
      << ": " << msg;
  {
    std::lock_guard<std::mutex> lock(g_io_mutex);
    std::cerr << out.str() << std::endl;
  }
  throw std::logic_error(out.str());
}

}  // namespace detail
}  // namespace slim
