// Fault degradation over real sockets: the multi-process pipeline backend
// (src/dist — forked stage workers, AF_UNIX transport, supervised
// heartbeats) under socket-level fault plans. Unlike bench_fault_degradation
// this measures actual wall clock on a real transport, not the cost model:
// injected socket latency shows up in measured comm seconds, dropped frames
// cost real retransmit time, and a killed or hung worker costs a real
// detection + backoff-respawn + replay round trip.
//
// Expectation: injected per-frame latency degrades the iteration by roughly
// (frames sent by the faulted stage) x delay; a drop burst within the retry
// budget costs only the retransmit backoff; crash and hang recovery are
// dominated by detection time (immediate via waitpid for a crash, one
// heartbeat deadline for a hang) plus the replayed microbatches' compute.
// Every degraded run still produces bit-identical gradients — asserted
// here, not just in the tests.

#include "bench_common.hpp"

#include <chrono>
#include <cstdio>
#include <cstdlib>

#include "src/dist/process_pipeline.hpp"
#include "src/fault/fault_plan.hpp"
#include "src/util/rng.hpp"

using namespace slim;

namespace {

bool smoke_mode() {
  const char* env = std::getenv("SLIMPIPE_BENCH_SMOKE");
  return env != nullptr && env[0] != '\0' && env[0] != '0';
}

struct Shape {
  num::BlockDims dims;
  std::int64_t vocab;
  int layers;
  int stages;
  int microbatches;
  int n_slices;
  int seq;
};

Shape bench_shape() {
  if (smoke_mode()) {
    return {{32, 4, 2, 48}, 32, 4, 2, 2, 2, 24};
  }
  return {{64, 8, 2, 96}, 64, 8, 4, 4, 2, 48};
}

struct Scenario {
  const char* name;
  fault::FaultPlan plan;
};

std::vector<Scenario> scenarios(const Shape& shape) {
  std::vector<Scenario> out;
  {
    Scenario s{"socket delay 1ms", {}};
    s.plan.socket_delays.push_back({0, 1, 0.001});
    out.push_back(std::move(s));
  }
  {
    Scenario s{"drop burst + retry", {}};
    s.plan.socket_drops.push_back({0, 2, 3, 5});
    out.push_back(std::move(s));
  }
  {
    Scenario s{"worker crash + replay", {}};
    s.plan.stage_crashes.push_back({shape.stages / 2, 4});
    out.push_back(std::move(s));
  }
  {
    Scenario s{"worker hang + watchdog", {}};
    s.plan.stage_hangs.push_back({shape.stages / 2, 4});
    out.push_back(std::move(s));
  }
  return out;
}

struct Measured {
  double wall = 0.0;
  dist::ProcessPipeline::Result result;
  fault::FaultReport report;
};

Measured run_once(dist::ProcessPipeline& pipe, const Shape& shape,
                  const std::vector<std::vector<std::int64_t>>& tokens,
                  const std::vector<std::vector<std::int64_t>>& targets,
                  const fault::FaultPlan* plan) {
  dist::ProcessOptions options;
  options.n_slices = shape.n_slices;
  options.faults = plan;
  // Tight supervision so hang detection, not the bench reader's patience,
  // dominates the recovery row.
  options.heartbeat_interval = std::chrono::milliseconds(10);
  options.heartbeat_timeout = std::chrono::milliseconds(200);
  options.drain_grace = std::chrono::milliseconds(200);
  options.backoff_base = std::chrono::milliseconds(5);
  Measured m;
  options.report = &m.report;
  const auto start = std::chrono::steady_clock::now();
  m.result = pipe.run_iteration(tokens, targets, options);
  m.wall = std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start)
               .count();
  return m;
}

}  // namespace

static void BM_DistSockets(benchmark::State& state) {
  const Shape shape = bench_shape();
  Rng data_rng(11);
  std::vector<std::vector<std::int64_t>> tokens, targets;
  for (int mb = 0; mb < shape.microbatches; ++mb) {
    std::vector<std::int64_t> tok, tgt;
    for (int i = 0; i < shape.seq; ++i) {
      tok.push_back(static_cast<std::int64_t>(
          data_rng.next_below(static_cast<std::uint64_t>(shape.vocab))));
      tgt.push_back(static_cast<std::int64_t>(
          data_rng.next_below(static_cast<std::uint64_t>(shape.vocab))));
    }
    tokens.push_back(std::move(tok));
    targets.push_back(std::move(tgt));
  }
  Rng rng(12);
  dist::ProcessPipeline pipe(shape.dims, shape.vocab, shape.layers,
                             shape.stages, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        run_once(pipe, shape, tokens, targets, nullptr));
  }
}
BENCHMARK(BM_DistSockets)->Unit(benchmark::kMillisecond);

int main(int argc, char** argv) {
  const Shape shape = bench_shape();
  slimbench::open_report("dist_sockets");
  slimbench::print_banner(
      "Fault degradation over sockets — multi-process runtime (src/dist)",
      (smoke_mode() ? std::string("smoke shapes (SLIMPIPE_BENCH_SMOKE), ")
                    : std::string("full shapes, ")) +
          "p=" + std::to_string(shape.stages) +
          ", m=" + std::to_string(shape.microbatches) +
          ", n=" + std::to_string(shape.n_slices) +
          ", layers=" + std::to_string(shape.layers) +
          "; forked workers, AF_UNIX transport, supervised heartbeats",
      "socket latency degrades by ~frames x delay; drops within the retry "
      "budget cost only retransmit backoff; crash/hang recovery = detection "
      "+ backoff + replayed compute; gradients stay bit-identical");

  Rng data_rng(11);
  std::vector<std::vector<std::int64_t>> tokens, targets;
  for (int mb = 0; mb < shape.microbatches; ++mb) {
    std::vector<std::int64_t> tok, tgt;
    for (int i = 0; i < shape.seq; ++i) {
      tok.push_back(static_cast<std::int64_t>(
          data_rng.next_below(static_cast<std::uint64_t>(shape.vocab))));
      tgt.push_back(static_cast<std::int64_t>(
          data_rng.next_below(static_cast<std::uint64_t>(shape.vocab))));
    }
    tokens.push_back(std::move(tok));
    targets.push_back(std::move(tgt));
  }

  Rng rng(12);
  dist::ProcessPipeline pipe(shape.dims, shape.vocab, shape.layers,
                             shape.stages, rng);
  const Measured baseline =
      run_once(pipe, shape, tokens, targets, nullptr);

  // ---- measured vs analytical exchange volume (fault-free run) ----
  //
  // The wire counters (WireChannelStats, folded into StageMetrics) measure
  // what actually crossed each worker's sockets. The analytical prediction
  // is bench_eq2_exchange_volume's counting argument mapped onto the frame
  // format: every interior boundary carries m*n forward frames down and m*n
  // backward frames up, each one tensor payload of slice_len x hidden fp32
  // plus the 16-byte rows/cols header. On a fault-free run the two must
  // agree EXACTLY — any drift means frames are being dropped, duplicated or
  // miscounted.
  {
    const std::int64_t slice_len = shape.seq / shape.n_slices;
    const double frame_payload =
        16.0 +
        static_cast<double>(slice_len * shape.dims.hidden) * 4.0;
    Table wire({"stage", "frames out", "frames in", "bytes out", "bytes in",
                "pred frames", "pred bytes", "crc rej", "retries", "match"});
    bool wire_ok = true;
    for (int s = 0; s < shape.stages; ++s) {
      const obs::StageMetrics& sm =
          baseline.result.stats.metrics.stages[static_cast<std::size_t>(s)];
      const std::int64_t links =
          (s > 0 ? 1 : 0) + (s + 1 < shape.stages ? 1 : 0);
      const std::int64_t pred_frames =
          links * static_cast<std::int64_t>(shape.microbatches) *
          shape.n_slices;
      const double pred_bytes =
          static_cast<double>(pred_frames) * frame_payload;
      const bool ok = sm.frames_sent == pred_frames &&
                      sm.frames_recv == pred_frames &&
                      sm.p2p_bytes == pred_bytes &&
                      sm.bytes_recv == pred_bytes && sm.crc_rejects == 0 &&
                      sm.send_retries == 0;
      wire_ok = wire_ok && ok;
      wire.add_row({fmt(static_cast<std::int64_t>(s)),
                    fmt(sm.frames_sent), fmt(sm.frames_recv),
                    format_bytes(sm.p2p_bytes), format_bytes(sm.bytes_recv),
                    fmt(pred_frames), format_bytes(pred_bytes),
                    fmt(sm.crc_rejects), fmt(sm.send_retries),
                    ok ? "exact" : "MISMATCH"});
    }
    slimbench::print_table(
        "measured vs analytical exchange volume (fault-free)", wire);
    if (!wire_ok) {
      std::fprintf(stderr,
                   "FATAL: measured wire volume does not reconcile with the "
                   "analytical prediction\n");
      return 1;
    }
  }

  Table table({"scenario", "iteration", "comm s0", "injected", "replayed",
               "events", "grads", "slowdown"});
  double baseline_comm = 0.0;
  if (!baseline.result.stats.metrics.stages.empty()) {
    baseline_comm = baseline.result.stats.metrics.stages[0].comm_seconds;
  }
  table.add_row({"fault-free", format_time(baseline.wall),
                 format_time(baseline_comm), "--", "--", "--", "exact",
                 "x1.00"});
  for (const Scenario& scenario : scenarios(shape)) {
    const Measured m =
        run_once(pipe, shape, tokens, targets, &scenario.plan);
    const float diff =
        m.result.grads.max_abs_diff(baseline.result.grads);
    if (diff != 0.0f) {
      std::fprintf(stderr,
                   "FATAL: scenario '%s' changed the gradients "
                   "(max_abs_diff=%g)\n",
                   scenario.name, static_cast<double>(diff));
      return 1;
    }
    table.add_row(
        {scenario.name, format_time(m.wall),
         format_time(m.result.stats.metrics.stages[0].comm_seconds),
         format_time(m.report.injected_seconds),
         fmt(static_cast<std::int64_t>(
             m.report.replayed_microbatches.size())),
         fmt(static_cast<std::int64_t>(m.report.events.size())), "exact",
         "x" + fmt(m.wall / baseline.wall, 2)});
  }
  slimbench::print_table("degradation over the socket transport", table);

  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
