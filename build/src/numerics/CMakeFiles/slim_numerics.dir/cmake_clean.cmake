file(REMOVE_RECURSE
  "CMakeFiles/slim_numerics.dir/attention.cpp.o"
  "CMakeFiles/slim_numerics.dir/attention.cpp.o.d"
  "CMakeFiles/slim_numerics.dir/context_parallel.cpp.o"
  "CMakeFiles/slim_numerics.dir/context_parallel.cpp.o.d"
  "CMakeFiles/slim_numerics.dir/cross_entropy.cpp.o"
  "CMakeFiles/slim_numerics.dir/cross_entropy.cpp.o.d"
  "CMakeFiles/slim_numerics.dir/moe.cpp.o"
  "CMakeFiles/slim_numerics.dir/moe.cpp.o.d"
  "CMakeFiles/slim_numerics.dir/norm_act.cpp.o"
  "CMakeFiles/slim_numerics.dir/norm_act.cpp.o.d"
  "CMakeFiles/slim_numerics.dir/rope.cpp.o"
  "CMakeFiles/slim_numerics.dir/rope.cpp.o.d"
  "CMakeFiles/slim_numerics.dir/tensor.cpp.o"
  "CMakeFiles/slim_numerics.dir/tensor.cpp.o.d"
  "CMakeFiles/slim_numerics.dir/transformer_block.cpp.o"
  "CMakeFiles/slim_numerics.dir/transformer_block.cpp.o.d"
  "libslim_numerics.a"
  "libslim_numerics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/slim_numerics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
